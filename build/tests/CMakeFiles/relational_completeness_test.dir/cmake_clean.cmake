file(REMOVE_RECURSE
  "CMakeFiles/relational_completeness_test.dir/relational_completeness_test.cpp.o"
  "CMakeFiles/relational_completeness_test.dir/relational_completeness_test.cpp.o.d"
  "relational_completeness_test"
  "relational_completeness_test.pdb"
  "relational_completeness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_completeness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
