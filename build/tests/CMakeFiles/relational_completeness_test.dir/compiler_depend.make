# Empty compiler generated dependencies file for relational_completeness_test.
# This may be replaced when dependencies are built.
