file(REMOVE_RECURSE
  "CMakeFiles/grouping_index_test.dir/grouping_index_test.cpp.o"
  "CMakeFiles/grouping_index_test.dir/grouping_index_test.cpp.o.d"
  "grouping_index_test"
  "grouping_index_test.pdb"
  "grouping_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouping_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
