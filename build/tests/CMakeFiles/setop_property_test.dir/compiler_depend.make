# Empty compiler generated dependencies file for setop_property_test.
# This may be replaced when dependencies are built.
