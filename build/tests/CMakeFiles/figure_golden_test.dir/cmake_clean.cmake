file(REMOVE_RECURSE
  "CMakeFiles/figure_golden_test.dir/figure_golden_test.cpp.o"
  "CMakeFiles/figure_golden_test.dir/figure_golden_test.cpp.o.d"
  "figure_golden_test"
  "figure_golden_test.pdb"
  "figure_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
