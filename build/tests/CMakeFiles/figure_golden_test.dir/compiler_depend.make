# Empty compiler generated dependencies file for figure_golden_test.
# This may be replaced when dependencies are built.
