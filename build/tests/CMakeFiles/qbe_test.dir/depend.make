# Empty dependencies file for qbe_test.
# This may be replaced when dependencies are built.
