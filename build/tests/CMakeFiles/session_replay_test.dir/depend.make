# Empty dependencies file for session_replay_test.
# This may be replaced when dependencies are built.
