file(REMOVE_RECURSE
  "CMakeFiles/session_replay_test.dir/session_replay_test.cpp.o"
  "CMakeFiles/session_replay_test.dir/session_replay_test.cpp.o.d"
  "session_replay_test"
  "session_replay_test.pdb"
  "session_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
