
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/session_replay_test.cpp" "tests/CMakeFiles/session_replay_test.dir/session_replay_test.cpp.o" "gcc" "tests/CMakeFiles/session_replay_test.dir/session_replay_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ui/CMakeFiles/isis_ui.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/isis_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/isis_store.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/isis_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/isis_input.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/isis_query.dir/DependInfo.cmake"
  "/root/repo/build/src/sdm/CMakeFiles/isis_sdm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
