file(REMOVE_RECURSE
  "CMakeFiles/multiple_inheritance_test.dir/multiple_inheritance_test.cpp.o"
  "CMakeFiles/multiple_inheritance_test.dir/multiple_inheritance_test.cpp.o.d"
  "multiple_inheritance_test"
  "multiple_inheritance_test.pdb"
  "multiple_inheritance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiple_inheritance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
