# Empty compiler generated dependencies file for multiple_inheritance_test.
# This may be replaced when dependencies are built.
