file(REMOVE_RECURSE
  "CMakeFiles/widgets_test.dir/widgets_test.cpp.o"
  "CMakeFiles/widgets_test.dir/widgets_test.cpp.o.d"
  "widgets_test"
  "widgets_test.pdb"
  "widgets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widgets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
