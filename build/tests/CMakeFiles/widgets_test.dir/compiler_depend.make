# Empty compiler generated dependencies file for widgets_test.
# This may be replaced when dependencies are built.
