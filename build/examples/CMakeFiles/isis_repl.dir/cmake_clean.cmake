file(REMOVE_RECURSE
  "CMakeFiles/isis_repl.dir/isis_repl.cpp.o"
  "CMakeFiles/isis_repl.dir/isis_repl.cpp.o.d"
  "isis_repl"
  "isis_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isis_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
