# Empty dependencies file for isis_repl.
# This may be replaced when dependencies are built.
