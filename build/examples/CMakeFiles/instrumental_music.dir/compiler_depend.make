# Empty compiler generated dependencies file for instrumental_music.
# This may be replaced when dependencies are built.
