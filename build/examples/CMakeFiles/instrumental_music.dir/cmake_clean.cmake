file(REMOVE_RECURSE
  "CMakeFiles/instrumental_music.dir/instrumental_music.cpp.o"
  "CMakeFiles/instrumental_music.dir/instrumental_music.cpp.o.d"
  "instrumental_music"
  "instrumental_music.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrumental_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
