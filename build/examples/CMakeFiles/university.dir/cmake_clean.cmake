file(REMOVE_RECURSE
  "CMakeFiles/university.dir/university.cpp.o"
  "CMakeFiles/university.dir/university.cpp.o.d"
  "university"
  "university.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
