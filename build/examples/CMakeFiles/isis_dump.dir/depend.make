# Empty dependencies file for isis_dump.
# This may be replaced when dependencies are built.
