file(REMOVE_RECURSE
  "CMakeFiles/isis_dump.dir/isis_dump.cpp.o"
  "CMakeFiles/isis_dump.dir/isis_dump.cpp.o.d"
  "isis_dump"
  "isis_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isis_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
