file(REMOVE_RECURSE
  "CMakeFiles/schema_designer.dir/schema_designer.cpp.o"
  "CMakeFiles/schema_designer.dir/schema_designer.cpp.o.d"
  "schema_designer"
  "schema_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
