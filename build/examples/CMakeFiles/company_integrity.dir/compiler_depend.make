# Empty compiler generated dependencies file for company_integrity.
# This may be replaced when dependencies are built.
