file(REMOVE_RECURSE
  "CMakeFiles/company_integrity.dir/company_integrity.cpp.o"
  "CMakeFiles/company_integrity.dir/company_integrity.cpp.o.d"
  "company_integrity"
  "company_integrity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
