
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ui/controller.cc" "src/ui/CMakeFiles/isis_ui.dir/controller.cc.o" "gcc" "src/ui/CMakeFiles/isis_ui.dir/controller.cc.o.d"
  "/root/repo/src/ui/data_view.cc" "src/ui/CMakeFiles/isis_ui.dir/data_view.cc.o" "gcc" "src/ui/CMakeFiles/isis_ui.dir/data_view.cc.o.d"
  "/root/repo/src/ui/forest_view.cc" "src/ui/CMakeFiles/isis_ui.dir/forest_view.cc.o" "gcc" "src/ui/CMakeFiles/isis_ui.dir/forest_view.cc.o.d"
  "/root/repo/src/ui/journal.cc" "src/ui/CMakeFiles/isis_ui.dir/journal.cc.o" "gcc" "src/ui/CMakeFiles/isis_ui.dir/journal.cc.o.d"
  "/root/repo/src/ui/network_view.cc" "src/ui/CMakeFiles/isis_ui.dir/network_view.cc.o" "gcc" "src/ui/CMakeFiles/isis_ui.dir/network_view.cc.o.d"
  "/root/repo/src/ui/render_util.cc" "src/ui/CMakeFiles/isis_ui.dir/render_util.cc.o" "gcc" "src/ui/CMakeFiles/isis_ui.dir/render_util.cc.o.d"
  "/root/repo/src/ui/views.cc" "src/ui/CMakeFiles/isis_ui.dir/views.cc.o" "gcc" "src/ui/CMakeFiles/isis_ui.dir/views.cc.o.d"
  "/root/repo/src/ui/worksheet_view.cc" "src/ui/CMakeFiles/isis_ui.dir/worksheet_view.cc.o" "gcc" "src/ui/CMakeFiles/isis_ui.dir/worksheet_view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/isis_query.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/isis_store.dir/DependInfo.cmake"
  "/root/repo/build/src/gfx/CMakeFiles/isis_gfx.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/isis_input.dir/DependInfo.cmake"
  "/root/repo/build/src/sdm/CMakeFiles/isis_sdm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
