# Empty compiler generated dependencies file for isis_ui.
# This may be replaced when dependencies are built.
