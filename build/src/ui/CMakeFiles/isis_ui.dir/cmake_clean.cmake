file(REMOVE_RECURSE
  "CMakeFiles/isis_ui.dir/controller.cc.o"
  "CMakeFiles/isis_ui.dir/controller.cc.o.d"
  "CMakeFiles/isis_ui.dir/data_view.cc.o"
  "CMakeFiles/isis_ui.dir/data_view.cc.o.d"
  "CMakeFiles/isis_ui.dir/forest_view.cc.o"
  "CMakeFiles/isis_ui.dir/forest_view.cc.o.d"
  "CMakeFiles/isis_ui.dir/journal.cc.o"
  "CMakeFiles/isis_ui.dir/journal.cc.o.d"
  "CMakeFiles/isis_ui.dir/network_view.cc.o"
  "CMakeFiles/isis_ui.dir/network_view.cc.o.d"
  "CMakeFiles/isis_ui.dir/render_util.cc.o"
  "CMakeFiles/isis_ui.dir/render_util.cc.o.d"
  "CMakeFiles/isis_ui.dir/views.cc.o"
  "CMakeFiles/isis_ui.dir/views.cc.o.d"
  "CMakeFiles/isis_ui.dir/worksheet_view.cc.o"
  "CMakeFiles/isis_ui.dir/worksheet_view.cc.o.d"
  "libisis_ui.a"
  "libisis_ui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isis_ui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
