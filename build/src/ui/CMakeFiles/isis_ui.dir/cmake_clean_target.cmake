file(REMOVE_RECURSE
  "libisis_ui.a"
)
