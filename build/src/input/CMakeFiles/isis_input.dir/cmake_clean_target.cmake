file(REMOVE_RECURSE
  "libisis_input.a"
)
