# Empty dependencies file for isis_input.
# This may be replaced when dependencies are built.
