file(REMOVE_RECURSE
  "CMakeFiles/isis_input.dir/event.cc.o"
  "CMakeFiles/isis_input.dir/event.cc.o.d"
  "libisis_input.a"
  "libisis_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isis_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
