file(REMOVE_RECURSE
  "libisis_gfx.a"
)
