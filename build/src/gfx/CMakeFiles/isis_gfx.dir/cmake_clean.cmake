file(REMOVE_RECURSE
  "CMakeFiles/isis_gfx.dir/canvas.cc.o"
  "CMakeFiles/isis_gfx.dir/canvas.cc.o.d"
  "CMakeFiles/isis_gfx.dir/pattern.cc.o"
  "CMakeFiles/isis_gfx.dir/pattern.cc.o.d"
  "CMakeFiles/isis_gfx.dir/widgets.cc.o"
  "CMakeFiles/isis_gfx.dir/widgets.cc.o.d"
  "libisis_gfx.a"
  "libisis_gfx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isis_gfx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
