# Empty dependencies file for isis_gfx.
# This may be replaced when dependencies are built.
