file(REMOVE_RECURSE
  "libisis_sdm.a"
)
