# Empty dependencies file for isis_sdm.
# This may be replaced when dependencies are built.
