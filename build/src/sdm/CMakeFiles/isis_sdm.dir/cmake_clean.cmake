file(REMOVE_RECURSE
  "CMakeFiles/isis_sdm.dir/consistency.cc.o"
  "CMakeFiles/isis_sdm.dir/consistency.cc.o.d"
  "CMakeFiles/isis_sdm.dir/database.cc.o"
  "CMakeFiles/isis_sdm.dir/database.cc.o.d"
  "CMakeFiles/isis_sdm.dir/dot_export.cc.o"
  "CMakeFiles/isis_sdm.dir/dot_export.cc.o.d"
  "CMakeFiles/isis_sdm.dir/schema.cc.o"
  "CMakeFiles/isis_sdm.dir/schema.cc.o.d"
  "CMakeFiles/isis_sdm.dir/stats.cc.o"
  "CMakeFiles/isis_sdm.dir/stats.cc.o.d"
  "CMakeFiles/isis_sdm.dir/value.cc.o"
  "CMakeFiles/isis_sdm.dir/value.cc.o.d"
  "libisis_sdm.a"
  "libisis_sdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isis_sdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
