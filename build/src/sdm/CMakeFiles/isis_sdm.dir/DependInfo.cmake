
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdm/consistency.cc" "src/sdm/CMakeFiles/isis_sdm.dir/consistency.cc.o" "gcc" "src/sdm/CMakeFiles/isis_sdm.dir/consistency.cc.o.d"
  "/root/repo/src/sdm/database.cc" "src/sdm/CMakeFiles/isis_sdm.dir/database.cc.o" "gcc" "src/sdm/CMakeFiles/isis_sdm.dir/database.cc.o.d"
  "/root/repo/src/sdm/dot_export.cc" "src/sdm/CMakeFiles/isis_sdm.dir/dot_export.cc.o" "gcc" "src/sdm/CMakeFiles/isis_sdm.dir/dot_export.cc.o.d"
  "/root/repo/src/sdm/schema.cc" "src/sdm/CMakeFiles/isis_sdm.dir/schema.cc.o" "gcc" "src/sdm/CMakeFiles/isis_sdm.dir/schema.cc.o.d"
  "/root/repo/src/sdm/stats.cc" "src/sdm/CMakeFiles/isis_sdm.dir/stats.cc.o" "gcc" "src/sdm/CMakeFiles/isis_sdm.dir/stats.cc.o.d"
  "/root/repo/src/sdm/value.cc" "src/sdm/CMakeFiles/isis_sdm.dir/value.cc.o" "gcc" "src/sdm/CMakeFiles/isis_sdm.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/isis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
