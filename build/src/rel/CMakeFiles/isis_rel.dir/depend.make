# Empty dependencies file for isis_rel.
# This may be replaced when dependencies are built.
