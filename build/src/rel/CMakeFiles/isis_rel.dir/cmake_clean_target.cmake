file(REMOVE_RECURSE
  "libisis_rel.a"
)
