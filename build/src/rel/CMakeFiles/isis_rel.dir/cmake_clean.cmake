file(REMOVE_RECURSE
  "CMakeFiles/isis_rel.dir/encode.cc.o"
  "CMakeFiles/isis_rel.dir/encode.cc.o.d"
  "CMakeFiles/isis_rel.dir/qbe.cc.o"
  "CMakeFiles/isis_rel.dir/qbe.cc.o.d"
  "CMakeFiles/isis_rel.dir/relation.cc.o"
  "CMakeFiles/isis_rel.dir/relation.cc.o.d"
  "libisis_rel.a"
  "libisis_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isis_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
