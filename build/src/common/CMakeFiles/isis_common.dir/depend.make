# Empty dependencies file for isis_common.
# This may be replaced when dependencies are built.
