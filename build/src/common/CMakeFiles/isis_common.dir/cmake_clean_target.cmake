file(REMOVE_RECURSE
  "libisis_common.a"
)
