file(REMOVE_RECURSE
  "CMakeFiles/isis_common.dir/status.cc.o"
  "CMakeFiles/isis_common.dir/status.cc.o.d"
  "CMakeFiles/isis_common.dir/strings.cc.o"
  "CMakeFiles/isis_common.dir/strings.cc.o.d"
  "libisis_common.a"
  "libisis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
