
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/instrumental_music.cc" "src/datasets/CMakeFiles/isis_datasets.dir/instrumental_music.cc.o" "gcc" "src/datasets/CMakeFiles/isis_datasets.dir/instrumental_music.cc.o.d"
  "/root/repo/src/datasets/scaled_music.cc" "src/datasets/CMakeFiles/isis_datasets.dir/scaled_music.cc.o" "gcc" "src/datasets/CMakeFiles/isis_datasets.dir/scaled_music.cc.o.d"
  "/root/repo/src/datasets/session_script.cc" "src/datasets/CMakeFiles/isis_datasets.dir/session_script.cc.o" "gcc" "src/datasets/CMakeFiles/isis_datasets.dir/session_script.cc.o.d"
  "/root/repo/src/datasets/synthetic.cc" "src/datasets/CMakeFiles/isis_datasets.dir/synthetic.cc.o" "gcc" "src/datasets/CMakeFiles/isis_datasets.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/isis_query.dir/DependInfo.cmake"
  "/root/repo/build/src/sdm/CMakeFiles/isis_sdm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
