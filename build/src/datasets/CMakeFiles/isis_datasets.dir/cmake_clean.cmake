file(REMOVE_RECURSE
  "CMakeFiles/isis_datasets.dir/instrumental_music.cc.o"
  "CMakeFiles/isis_datasets.dir/instrumental_music.cc.o.d"
  "CMakeFiles/isis_datasets.dir/scaled_music.cc.o"
  "CMakeFiles/isis_datasets.dir/scaled_music.cc.o.d"
  "CMakeFiles/isis_datasets.dir/session_script.cc.o"
  "CMakeFiles/isis_datasets.dir/session_script.cc.o.d"
  "CMakeFiles/isis_datasets.dir/synthetic.cc.o"
  "CMakeFiles/isis_datasets.dir/synthetic.cc.o.d"
  "libisis_datasets.a"
  "libisis_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isis_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
