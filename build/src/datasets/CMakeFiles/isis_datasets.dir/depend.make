# Empty dependencies file for isis_datasets.
# This may be replaced when dependencies are built.
