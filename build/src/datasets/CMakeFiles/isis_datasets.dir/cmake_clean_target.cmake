file(REMOVE_RECURSE
  "libisis_datasets.a"
)
