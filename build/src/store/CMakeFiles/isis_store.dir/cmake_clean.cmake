file(REMOVE_RECURSE
  "CMakeFiles/isis_store.dir/serializer.cc.o"
  "CMakeFiles/isis_store.dir/serializer.cc.o.d"
  "libisis_store.a"
  "libisis_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isis_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
