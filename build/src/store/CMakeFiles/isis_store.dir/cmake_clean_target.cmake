file(REMOVE_RECURSE
  "libisis_store.a"
)
