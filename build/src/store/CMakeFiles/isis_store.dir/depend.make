# Empty dependencies file for isis_store.
# This may be replaced when dependencies are built.
