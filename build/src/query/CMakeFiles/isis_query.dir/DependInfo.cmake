
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/constraints.cc" "src/query/CMakeFiles/isis_query.dir/constraints.cc.o" "gcc" "src/query/CMakeFiles/isis_query.dir/constraints.cc.o.d"
  "/root/repo/src/query/eval.cc" "src/query/CMakeFiles/isis_query.dir/eval.cc.o" "gcc" "src/query/CMakeFiles/isis_query.dir/eval.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/isis_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/isis_query.dir/parser.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/query/CMakeFiles/isis_query.dir/predicate.cc.o" "gcc" "src/query/CMakeFiles/isis_query.dir/predicate.cc.o.d"
  "/root/repo/src/query/workspace.cc" "src/query/CMakeFiles/isis_query.dir/workspace.cc.o" "gcc" "src/query/CMakeFiles/isis_query.dir/workspace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdm/CMakeFiles/isis_sdm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
