file(REMOVE_RECURSE
  "CMakeFiles/isis_query.dir/constraints.cc.o"
  "CMakeFiles/isis_query.dir/constraints.cc.o.d"
  "CMakeFiles/isis_query.dir/eval.cc.o"
  "CMakeFiles/isis_query.dir/eval.cc.o.d"
  "CMakeFiles/isis_query.dir/parser.cc.o"
  "CMakeFiles/isis_query.dir/parser.cc.o.d"
  "CMakeFiles/isis_query.dir/predicate.cc.o"
  "CMakeFiles/isis_query.dir/predicate.cc.o.d"
  "CMakeFiles/isis_query.dir/workspace.cc.o"
  "CMakeFiles/isis_query.dir/workspace.cc.o.d"
  "libisis_query.a"
  "libisis_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isis_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
