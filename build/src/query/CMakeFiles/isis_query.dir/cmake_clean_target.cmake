file(REMOVE_RECURSE
  "libisis_query.a"
)
