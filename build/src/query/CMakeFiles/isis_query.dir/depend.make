# Empty dependencies file for isis_query.
# This may be replaced when dependencies are built.
