# Empty compiler generated dependencies file for bench_interaction_steps.
# This may be replaced when dependencies are built.
