file(REMOVE_RECURSE
  "CMakeFiles/bench_interaction_steps.dir/bench_interaction_steps.cpp.o"
  "CMakeFiles/bench_interaction_steps.dir/bench_interaction_steps.cpp.o.d"
  "bench_interaction_steps"
  "bench_interaction_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interaction_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
