# Empty dependencies file for bench_diagram1.
# This may be replaced when dependencies are built.
