file(REMOVE_RECURSE
  "CMakeFiles/bench_diagram1.dir/bench_diagram1.cpp.o"
  "CMakeFiles/bench_diagram1.dir/bench_diagram1.cpp.o.d"
  "bench_diagram1"
  "bench_diagram1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagram1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
