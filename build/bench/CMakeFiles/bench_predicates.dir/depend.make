# Empty dependencies file for bench_predicates.
# This may be replaced when dependencies are built.
