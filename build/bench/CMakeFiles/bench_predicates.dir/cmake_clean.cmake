file(REMOVE_RECURSE
  "CMakeFiles/bench_predicates.dir/bench_predicates.cpp.o"
  "CMakeFiles/bench_predicates.dir/bench_predicates.cpp.o.d"
  "bench_predicates"
  "bench_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
