file(REMOVE_RECURSE
  "CMakeFiles/bench_groupings.dir/bench_groupings.cpp.o"
  "CMakeFiles/bench_groupings.dir/bench_groupings.cpp.o.d"
  "bench_groupings"
  "bench_groupings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_groupings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
