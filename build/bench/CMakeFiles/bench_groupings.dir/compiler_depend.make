# Empty compiler generated dependencies file for bench_groupings.
# This may be replaced when dependencies are built.
