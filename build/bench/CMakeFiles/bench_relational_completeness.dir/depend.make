# Empty dependencies file for bench_relational_completeness.
# This may be replaced when dependencies are built.
