file(REMOVE_RECURSE
  "CMakeFiles/bench_relational_completeness.dir/bench_relational_completeness.cpp.o"
  "CMakeFiles/bench_relational_completeness.dir/bench_relational_completeness.cpp.o.d"
  "bench_relational_completeness"
  "bench_relational_completeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relational_completeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
