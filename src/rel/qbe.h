/// \file qbe.h
/// \brief A Query-by-Example evaluator: the visual-query baseline [Zl].
///
/// QBE queries are skeleton tables whose cells hold example elements
/// (variables), constants with comparison operators, or print markers. Rows
/// over different relations joined by shared variables express joins. This
/// is the interaction model the paper contrasts ISIS with; the evaluator
/// here is used (a) to cross-check ISIS query answers and (b) to count
/// filled template cells for the interaction-effort comparison (bench
/// C3/bench_interaction_steps).

#ifndef ISIS_REL_QBE_H_
#define ISIS_REL_QBE_H_

#include <optional>
#include <string>
#include <vector>

#include "rel/relation.h"

namespace isis::rel {

/// One cell of a QBE skeleton row.
struct QbeCell {
  enum class Kind {
    kBlank,     ///< Unconstrained.
    kConstant,  ///< Must compare to `constant` via `op`.
    kVariable,  ///< Example element: equal cells bind the same value.
  };
  Kind kind = Kind::kBlank;
  CompareOp op = CompareOp::kEq;  ///< For kConstant cells.
  Value constant;
  std::string variable;  ///< For kVariable cells (e.g. "_x").
  bool print = false;    ///< P. marker — include this column in the answer.

  static QbeCell Blank() { return QbeCell{}; }
  static QbeCell Const(Value v, CompareOp op = CompareOp::kEq) {
    QbeCell c;
    c.kind = Kind::kConstant;
    c.op = op;
    c.constant = std::move(v);
    return c;
  }
  static QbeCell Var(std::string name, bool print = false) {
    QbeCell c;
    c.kind = Kind::kVariable;
    c.variable = std::move(name);
    c.print = print;
    return c;
  }
  static QbeCell Print(std::string var) { return Var(std::move(var), true); }
};

/// One skeleton row over a named relation: one cell per column.
struct QbeRow {
  std::string relation;
  std::vector<QbeCell> cells;
};

/// \brief A QBE query: a set of skeleton rows joined on shared variables.
class QbeQuery {
 public:
  void AddRow(QbeRow row) { rows_.push_back(std::move(row)); }
  const std::vector<QbeRow>& rows() const { return rows_; }

  /// Number of non-blank cells the user had to fill — the interaction-effort
  /// metric of bench_interaction_steps.
  int FilledCellCount() const;

  /// Evaluates against `db`: joins rows on shared variables, applies
  /// constant conditions, projects the printed variables (columns named by
  /// their variables, in first-appearance order). Rows are pre-filtered by
  /// their constant cells and then joined smallest-and-connected-first —
  /// natural join is commutative/associative, so the reorder only changes
  /// intermediate sizes, never the result.
  Result<Relation> Evaluate(const RelDatabase& db) const;

 private:
  std::vector<QbeRow> rows_;
};

}  // namespace isis::rel

#endif  // ISIS_REL_QBE_H_
