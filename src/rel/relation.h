/// \file relation.h
/// \brief A small relational engine: the baseline ISIS is compared against.
///
/// The paper positions ISIS against relational visual query systems (QBE
/// [Zl], CUPID [MS]) and claims its predicates "provide the full power of
/// relational algebra". This module provides the comparator: typed
/// relations with set semantics and the classical algebra
/// (select/project/rename/product/join/union/difference/intersection), used
/// by bench_relational_completeness to verify ISIS answers against
/// relational evaluations of the same queries, and by the QBE baseline.

#ifndef ISIS_REL_RELATION_H_
#define ISIS_REL_RELATION_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "sdm/value.h"

namespace isis::rel {

/// Cell values reuse the SDM primitive value type.
using Value = sdm::Value;

/// One tuple (row).
using Tuple = std::vector<Value>;

/// Comparison operators for selection conditions.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Applies `op` to two values (numeric kinds interoperate; strings compare
/// lexicographically; incomparable kinds are never equal and never ordered).
bool CompareValues(const Value& a, CompareOp op, const Value& b);

/// \brief A named-column relation with set semantics.
///
/// Tuples are kept sorted and deduplicated, so equality of relations is
/// structural and results are deterministic.
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t arity() const { return columns_.size(); }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Index of a column by name.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Inserts a tuple (ignored if already present). Arity must match.
  Status Insert(Tuple t);

  bool Contains(const Tuple& t) const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.columns_ == b.columns_ && a.tuples_ == b.tuples_;
  }

 private:
  std::vector<std::string> columns_;
  std::vector<Tuple> tuples_;  // sorted, unique
};

/// One conjunct of a selection: column-vs-constant or column-vs-column.
struct Condition {
  size_t lhs_column = 0;
  CompareOp op = CompareOp::kEq;
  std::variant<Value, size_t> rhs;  ///< constant or other column index

  static Condition WithConst(size_t col, CompareOp op, Value v) {
    return Condition{col, op, std::move(v)};
  }
  static Condition WithColumn(size_t col, CompareOp op, size_t other) {
    return Condition{col, op, other};
  }
};

// --- The algebra. All operators are pure; errors (unknown columns, arity
// mismatches) surface as Status. ---

/// sigma: tuples satisfying the conjunction of `conditions`.
Result<Relation> Select(const Relation& r,
                        const std::vector<Condition>& conditions);

/// Selection with an arbitrary predicate (used by tests as an oracle).
Relation SelectWhere(const Relation& r,
                     const std::function<bool(const Tuple&)>& pred);

/// pi: the named columns, in the given order; duplicates collapse.
Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& columns);

/// rho: renames columns via an old-name -> new-name map.
Result<Relation> Rename(const Relation& r,
                        const std::map<std::string, std::string>& renames);

/// Cartesian product; column names must be disjoint.
Result<Relation> Product(const Relation& a, const Relation& b);

/// Natural join on all shared column names (product if none).
Result<Relation> NaturalJoin(const Relation& a, const Relation& b);

/// Set union/difference/intersection; schemas must match exactly.
Result<Relation> Union(const Relation& a, const Relation& b);
Result<Relation> Difference(const Relation& a, const Relation& b);
Result<Relation> Intersect(const Relation& a, const Relation& b);

/// \brief A named collection of relations (the QBE target).
class RelDatabase {
 public:
  Status AddRelation(const std::string& name, Relation r);
  Result<const Relation*> Find(const std::string& name) const;
  std::vector<std::string> RelationNames() const;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace isis::rel

#endif  // ISIS_REL_RELATION_H_
