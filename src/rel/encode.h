/// \file encode.h
/// \brief The standard SDM -> relational encoding used by the baseline.
///
/// Each class C becomes a unary relation `C(name)`; each attribute A of C
/// becomes a binary relation `C_A(name, A)` with one row per (entity, value)
/// pair (singlevalued attributes contribute at most one row per entity;
/// null values contribute none). Entities are encoded by name (unique per
/// baseclass), values by their primitive value when predefined and by name
/// otherwise. Groupings are derivable and not encoded.
///
/// This mirrors how a relational system (the QBE/CUPID world the paper
/// compares against) would model the same application, and lets
/// bench_relational_completeness check that ISIS derived classes compute
/// exactly the relational answers.

#ifndef ISIS_REL_ENCODE_H_
#define ISIS_REL_ENCODE_H_

#include "rel/relation.h"
#include "sdm/database.h"

namespace isis::rel {

/// Encodes one class as a unary relation over entity names.
Result<Relation> EncodeClass(const sdm::Database& db, ClassId cls);

/// Encodes one attribute as a binary relation (name, value). The value
/// column carries the primitive value for predefined value classes and the
/// entity name otherwise. Rows exist only for members of the attribute's
/// owner class.
Result<Relation> EncodeAttribute(const sdm::Database& db, AttributeId attr);

/// Encodes the entire database: every class and every (non-naming)
/// attribute, with relation names `<class>` and `<class>_<attribute>`.
Result<RelDatabase> EncodeDatabase(const sdm::Database& db);

/// The relational cell encoding one entity (value or name).
Value EncodeEntity(const sdm::Database& db, EntityId e);

}  // namespace isis::rel

#endif  // ISIS_REL_ENCODE_H_
