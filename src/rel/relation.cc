#include "rel/relation.h"

#include <algorithm>
#include <optional>

namespace isis::rel {

using sdm::BaseKind;

bool CompareValues(const Value& a, CompareOp op, const Value& b) {
  // Numeric kinds interoperate.
  auto numeric = [](const Value& v) -> std::optional<double> {
    if (v.kind() == BaseKind::kInteger) {
      return static_cast<double>(v.integer());
    }
    if (v.kind() == BaseKind::kReal) return v.real();
    return std::nullopt;
  };
  std::optional<int> ord;  // -1 / 0 / +1 when comparable
  std::optional<double> na = numeric(a), nb = numeric(b);
  if (na && nb) {
    ord = *na < *nb ? -1 : (*na > *nb ? 1 : 0);
  } else if (a.kind() == b.kind()) {
    if (a.kind() == BaseKind::kString) {
      int c = a.str().compare(b.str());
      ord = c < 0 ? -1 : (c > 0 ? 1 : 0);
    } else if (a.kind() == BaseKind::kBoolean) {
      ord = a.boolean() == b.boolean() ? 0 : (a.boolean() ? 1 : -1);
    }
  }
  if (!ord.has_value()) {
    // Incomparable kinds: only (in)equality is meaningful, and they are
    // never equal.
    return op == CompareOp::kNe;
  }
  switch (op) {
    case CompareOp::kEq:
      return *ord == 0;
    case CompareOp::kNe:
      return *ord != 0;
    case CompareOp::kLt:
      return *ord < 0;
    case CompareOp::kLe:
      return *ord <= 0;
    case CompareOp::kGt:
      return *ord > 0;
    case CompareOp::kGe:
      return *ord >= 0;
  }
  return false;
}

Result<size_t> Relation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return Status::NotFound("no column '" + name + "'");
}

Status Relation::Insert(Tuple t) {
  if (t.size() != columns_.size()) {
    return Status::InvalidArgument("tuple arity " + std::to_string(t.size()) +
                                   " != relation arity " +
                                   std::to_string(columns_.size()));
  }
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) return Status::OK();  // set semantics
  tuples_.insert(it, std::move(t));
  return Status::OK();
}

bool Relation::Contains(const Tuple& t) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

Result<Relation> Select(const Relation& r,
                        const std::vector<Condition>& conditions) {
  for (const Condition& c : conditions) {
    if (c.lhs_column >= r.arity()) {
      return Status::InvalidArgument("condition column out of range");
    }
    if (std::holds_alternative<size_t>(c.rhs) &&
        std::get<size_t>(c.rhs) >= r.arity()) {
      return Status::InvalidArgument("condition rhs column out of range");
    }
  }
  Relation out(r.columns());
  for (const Tuple& t : r.tuples()) {
    bool keep = true;
    for (const Condition& c : conditions) {
      const Value& lhs = t[c.lhs_column];
      const Value& rhs = std::holds_alternative<Value>(c.rhs)
                             ? std::get<Value>(c.rhs)
                             : t[std::get<size_t>(c.rhs)];
      if (!CompareValues(lhs, c.op, rhs)) {
        keep = false;
        break;
      }
    }
    if (keep) (void)out.Insert(t);
  }
  return out;
}

Relation SelectWhere(const Relation& r,
                     const std::function<bool(const Tuple&)>& pred) {
  Relation out(r.columns());
  for (const Tuple& t : r.tuples()) {
    if (pred(t)) (void)out.Insert(t);
  }
  return out;
}

Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& columns) {
  std::vector<size_t> idx;
  for (const std::string& c : columns) {
    ISIS_ASSIGN_OR_RETURN(size_t i, r.ColumnIndex(c));
    idx.push_back(i);
  }
  Relation out(columns);
  for (const Tuple& t : r.tuples()) {
    Tuple p;
    p.reserve(idx.size());
    for (size_t i : idx) p.push_back(t[i]);
    (void)out.Insert(std::move(p));
  }
  return out;
}

Result<Relation> Rename(const Relation& r,
                        const std::map<std::string, std::string>& renames) {
  std::vector<std::string> cols = r.columns();
  for (const auto& [from, to] : renames) {
    bool found = false;
    for (std::string& c : cols) {
      if (c == from) {
        c = to;
        found = true;
      }
    }
    if (!found) return Status::NotFound("no column '" + from + "' to rename");
  }
  Relation out(cols);
  for (const Tuple& t : r.tuples()) (void)out.Insert(t);
  return out;
}

Result<Relation> Product(const Relation& a, const Relation& b) {
  std::vector<std::string> cols = a.columns();
  for (const std::string& c : b.columns()) {
    if (std::find(cols.begin(), cols.end(), c) != cols.end()) {
      return Status::InvalidArgument("product column collision on '" + c +
                                     "'; rename first");
    }
    cols.push_back(c);
  }
  Relation out(cols);
  for (const Tuple& ta : a.tuples()) {
    for (const Tuple& tb : b.tuples()) {
      Tuple t = ta;
      t.insert(t.end(), tb.begin(), tb.end());
      (void)out.Insert(std::move(t));
    }
  }
  return out;
}

Result<Relation> NaturalJoin(const Relation& a, const Relation& b) {
  // Shared columns join; b's copies are dropped from the output.
  std::vector<std::pair<size_t, size_t>> shared;  // (a index, b index)
  std::vector<size_t> b_keep;
  for (size_t j = 0; j < b.columns().size(); ++j) {
    Result<size_t> i = a.ColumnIndex(b.columns()[j]);
    if (i.ok()) {
      shared.emplace_back(*i, j);
    } else {
      b_keep.push_back(j);
    }
  }
  std::vector<std::string> cols = a.columns();
  for (size_t j : b_keep) cols.push_back(b.columns()[j]);
  Relation out(cols);
  for (const Tuple& ta : a.tuples()) {
    for (const Tuple& tb : b.tuples()) {
      bool match = true;
      for (auto [i, j] : shared) {
        if (!(ta[i] == tb[j])) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      Tuple t = ta;
      for (size_t j : b_keep) t.push_back(tb[j]);
      (void)out.Insert(std::move(t));
    }
  }
  return out;
}

namespace {
Status CheckSameSchema(const Relation& a, const Relation& b) {
  if (a.columns() != b.columns()) {
    return Status::TypeError("set operation on different schemas");
  }
  return Status::OK();
}
}  // namespace

Result<Relation> Union(const Relation& a, const Relation& b) {
  ISIS_RETURN_NOT_OK(CheckSameSchema(a, b));
  Relation out(a.columns());
  for (const Tuple& t : a.tuples()) (void)out.Insert(t);
  for (const Tuple& t : b.tuples()) (void)out.Insert(t);
  return out;
}

Result<Relation> Difference(const Relation& a, const Relation& b) {
  ISIS_RETURN_NOT_OK(CheckSameSchema(a, b));
  Relation out(a.columns());
  for (const Tuple& t : a.tuples()) {
    if (!b.Contains(t)) (void)out.Insert(t);
  }
  return out;
}

Result<Relation> Intersect(const Relation& a, const Relation& b) {
  ISIS_RETURN_NOT_OK(CheckSameSchema(a, b));
  Relation out(a.columns());
  for (const Tuple& t : a.tuples()) {
    if (b.Contains(t)) (void)out.Insert(t);
  }
  return out;
}

Status RelDatabase::AddRelation(const std::string& name, Relation r) {
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  relations_.emplace(name, std::move(r));
  return Status::OK();
}

Result<const Relation*> RelDatabase::Find(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> RelDatabase::RelationNames() const {
  std::vector<std::string> out;
  for (const auto& [name, r] : relations_) {
    (void)r;
    out.push_back(name);
  }
  return out;
}

}  // namespace isis::rel
