#include "rel/encode.h"

namespace isis::rel {

using sdm::AttributeDef;
using sdm::ClassDef;
using sdm::Database;
using sdm::EntitySet;
using sdm::Schema;

Value EncodeEntity(const Database& db, EntityId e) {
  const sdm::Entity& ent = db.GetEntity(e);
  if (ent.has_value) return ent.value;
  return Value::String(ent.name);
}

Result<Relation> EncodeClass(const Database& db, ClassId cls) {
  if (!db.schema().HasClass(cls)) {
    return Status::NotFound("class does not exist");
  }
  Relation out({"name"});
  for (EntityId e : db.Members(cls)) {
    ISIS_RETURN_NOT_OK(out.Insert({EncodeEntity(db, e)}));
  }
  return out;
}

Result<Relation> EncodeAttribute(const Database& db, AttributeId attr) {
  if (!db.schema().HasAttribute(attr)) {
    return Status::NotFound("attribute does not exist");
  }
  const AttributeDef& def = db.schema().GetAttribute(attr);
  Relation out({"name", def.name});
  for (EntityId e : db.Members(def.owner)) {
    for (EntityId v : db.GetValueSet(e, attr)) {
      ISIS_RETURN_NOT_OK(
          out.Insert({EncodeEntity(db, e), EncodeEntity(db, v)}));
    }
  }
  return out;
}

Result<RelDatabase> EncodeDatabase(const Database& db) {
  RelDatabase out;
  const Schema& schema = db.schema();
  for (ClassId c : schema.AllClasses()) {
    if (c.value() < 4) continue;  // predefined classes are unbounded
    const ClassDef& cls = schema.GetClass(c);
    ISIS_ASSIGN_OR_RETURN(Relation r, EncodeClass(db, c));
    ISIS_RETURN_NOT_OK(out.AddRelation(cls.name, std::move(r)));
    for (AttributeId a : cls.own_attributes) {
      const AttributeDef& def = schema.GetAttribute(a);
      if (def.naming) continue;  // identical to the class relation
      ISIS_ASSIGN_OR_RETURN(Relation ar, EncodeAttribute(db, a));
      ISIS_RETURN_NOT_OK(
          out.AddRelation(cls.name + "_" + def.name, std::move(ar)));
    }
  }
  return out;
}

}  // namespace isis::rel
