#include "rel/qbe.h"

#include <algorithm>
#include <map>
#include <set>

namespace isis::rel {

int QbeQuery::FilledCellCount() const {
  int n = 0;
  for (const QbeRow& row : rows_) {
    for (const QbeCell& cell : row.cells) {
      if (cell.kind != QbeCell::Kind::kBlank) ++n;
    }
  }
  return n;
}

Result<Relation> QbeQuery::Evaluate(const RelDatabase& db) const {
  if (rows_.empty()) return Status::InvalidArgument("empty QBE query");

  // Per-row relations: columns are variable names (plus synthetic names for
  // anonymous constrained columns, which are filtered then dropped).
  std::vector<Relation> parts;
  std::vector<std::string> print_order;

  for (size_t ri = 0; ri < rows_.size(); ++ri) {
    const QbeRow& row = rows_[ri];
    ISIS_ASSIGN_OR_RETURN(const Relation* base, db.Find(row.relation));
    if (row.cells.size() != base->arity()) {
      return Status::InvalidArgument("QBE row arity mismatch on '" +
                                     row.relation + "'");
    }
    // Select on constants, then project+rename variable columns.
    std::vector<Condition> conds;
    std::vector<std::pair<size_t, std::string>> var_cols;  // col -> var
    for (size_t ci = 0; ci < row.cells.size(); ++ci) {
      const QbeCell& cell = row.cells[ci];
      switch (cell.kind) {
        case QbeCell::Kind::kBlank:
          break;
        case QbeCell::Kind::kConstant:
          conds.push_back(Condition::WithConst(ci, cell.op, cell.constant));
          break;
        case QbeCell::Kind::kVariable:
          var_cols.emplace_back(ci, cell.variable);
          if (cell.print &&
              std::find(print_order.begin(), print_order.end(),
                        cell.variable) == print_order.end()) {
            print_order.push_back(cell.variable);
          }
          break;
      }
    }
    // A variable appearing twice in one row forces equality of the columns.
    std::map<std::string, size_t> first_col;
    for (const auto& [col, var] : var_cols) {
      auto it = first_col.find(var);
      if (it == first_col.end()) {
        first_col[var] = col;
      } else {
        conds.push_back(Condition::WithColumn(col, CompareOp::kEq,
                                              it->second));
      }
    }
    ISIS_ASSIGN_OR_RETURN(Relation filtered, Select(*base, conds));
    // Build the per-row relation with variable-named columns.
    Relation row_rel([&] {
      std::vector<std::string> cols;
      for (const auto& [var, col] : first_col) {
        (void)col;
        cols.push_back(var);
      }
      return cols;
    }());
    for (const Tuple& t : filtered.tuples()) {
      Tuple p;
      for (const auto& [var, col] : first_col) {
        (void)var;
        p.push_back(t[col]);
      }
      ISIS_RETURN_NOT_OK(row_rel.Insert(std::move(p)));
    }
    parts.push_back(std::move(row_rel));
  }

  if (print_order.empty()) {
    return Status::InvalidArgument("QBE query prints nothing (no P. cells)");
  }

  // Natural join is commutative and associative, so any join order yields
  // the same relation; pick one by selectivity: start from the smallest
  // part, then greedily add the smallest part sharing a column with the
  // accumulated schema (a real join) before any that shares none (a cross
  // product, deferred as long as possible).
  std::vector<bool> used(parts.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < parts.size(); ++i) {
    if (parts[i].size() < parts[first].size()) first = i;
  }
  Relation acc = std::move(parts[first]);
  used[first] = true;
  std::set<std::string> acc_cols(acc.columns().begin(), acc.columns().end());
  for (size_t joined = 1; joined < parts.size(); ++joined) {
    size_t best = parts.size();
    bool best_shares = false;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (used[i]) continue;
      bool shares = std::any_of(
          parts[i].columns().begin(), parts[i].columns().end(),
          [&](const std::string& c) { return acc_cols.count(c) > 0; });
      if (best == parts.size() || (shares && !best_shares) ||
          (shares == best_shares && parts[i].size() < parts[best].size())) {
        best = i;
        best_shares = shares;
      }
    }
    ISIS_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, parts[best]));
    used[best] = true;
    acc_cols.insert(parts[best].columns().begin(),
                    parts[best].columns().end());
  }
  return Project(acc, print_order);
}

}  // namespace isis::rel
