#include "rel/qbe.h"

#include <algorithm>
#include <map>

namespace isis::rel {

int QbeQuery::FilledCellCount() const {
  int n = 0;
  for (const QbeRow& row : rows_) {
    for (const QbeCell& cell : row.cells) {
      if (cell.kind != QbeCell::Kind::kBlank) ++n;
    }
  }
  return n;
}

Result<Relation> QbeQuery::Evaluate(const RelDatabase& db) const {
  if (rows_.empty()) return Status::InvalidArgument("empty QBE query");

  // Working relation: columns are variable names (plus synthetic names for
  // anonymous constrained columns, which are filtered then dropped).
  std::optional<Relation> acc;
  std::vector<std::string> print_order;

  for (size_t ri = 0; ri < rows_.size(); ++ri) {
    const QbeRow& row = rows_[ri];
    ISIS_ASSIGN_OR_RETURN(const Relation* base, db.Find(row.relation));
    if (row.cells.size() != base->arity()) {
      return Status::InvalidArgument("QBE row arity mismatch on '" +
                                     row.relation + "'");
    }
    // Select on constants, then project+rename variable columns.
    std::vector<Condition> conds;
    std::vector<std::pair<size_t, std::string>> var_cols;  // col -> var
    for (size_t ci = 0; ci < row.cells.size(); ++ci) {
      const QbeCell& cell = row.cells[ci];
      switch (cell.kind) {
        case QbeCell::Kind::kBlank:
          break;
        case QbeCell::Kind::kConstant:
          conds.push_back(Condition::WithConst(ci, cell.op, cell.constant));
          break;
        case QbeCell::Kind::kVariable:
          var_cols.emplace_back(ci, cell.variable);
          if (cell.print &&
              std::find(print_order.begin(), print_order.end(),
                        cell.variable) == print_order.end()) {
            print_order.push_back(cell.variable);
          }
          break;
      }
    }
    // A variable appearing twice in one row forces equality of the columns.
    std::map<std::string, size_t> first_col;
    for (const auto& [col, var] : var_cols) {
      auto it = first_col.find(var);
      if (it == first_col.end()) {
        first_col[var] = col;
      } else {
        conds.push_back(Condition::WithColumn(col, CompareOp::kEq,
                                              it->second));
      }
    }
    ISIS_ASSIGN_OR_RETURN(Relation filtered, Select(*base, conds));
    // Build the per-row relation with variable-named columns.
    Relation row_rel([&] {
      std::vector<std::string> cols;
      for (const auto& [var, col] : first_col) {
        (void)col;
        cols.push_back(var);
      }
      return cols;
    }());
    for (const Tuple& t : filtered.tuples()) {
      Tuple p;
      for (const auto& [var, col] : first_col) {
        (void)var;
        p.push_back(t[col]);
      }
      ISIS_RETURN_NOT_OK(row_rel.Insert(std::move(p)));
    }
    if (!acc.has_value()) {
      acc = std::move(row_rel);
    } else {
      ISIS_ASSIGN_OR_RETURN(*acc, NaturalJoin(*acc, row_rel));
    }
  }

  if (print_order.empty()) {
    return Status::InvalidArgument("QBE query prints nothing (no P. cells)");
  }
  return Project(*acc, print_order);
}

}  // namespace isis::rel
