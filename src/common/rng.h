/// \file rng.h
/// \brief Deterministic PRNG for workload generators and property tests.
///
/// splitmix64-seeded xoshiro256** — fast, reproducible across platforms, and
/// independent of libstdc++'s distribution implementations (we provide our
/// own bounded-int and unit-double helpers so generated workloads are
/// bit-identical everywhere).

#ifndef ISIS_COMMON_RNG_H_
#define ISIS_COMMON_RNG_H_

#include <cstdint>

namespace isis {

/// Deterministic 64-bit PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double Unit() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli with probability p.
  bool Chance(double p) { return Unit() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace isis

#endif  // ISIS_COMMON_RNG_H_
