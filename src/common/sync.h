/// \file sync.h
/// \brief Synchronization primitives carrying Clang Thread Safety Analysis
/// annotations.
///
/// Every mutex, condition variable and lock guard in ISIS comes from this
/// header -- raw std::mutex / std::shared_mutex are banned outside it
/// (enforced by tools/lint/check_style.py). The wrappers cost nothing over
/// the std types they hold; what they add is the capability vocabulary that
/// lets `clang++ -Wthread-safety -Werror=thread-safety` prove the locking
/// discipline documented in each header:
///
///   * a field annotated `ISIS_GUARDED_BY(mu_)` cannot be touched unless
///     the analysis sees `mu_` held on every path to the access;
///   * a function annotated `ISIS_REQUIRES(mu_)` cannot be called without
///     the caller holding `mu_`;
///   * `MutexLock` / `ReaderLock` / `WriterLock` are scoped capabilities,
///     so an early return or exception cannot leak a lock.
///
/// The attributes are a Clang extension; under GCC (and any other compiler)
/// they compile to nothing and the wrappers degrade to plain forwarding
/// shims. The CI `static-analysis` job is the build where the annotations
/// are load-bearing.
///
/// Lambda caveat: the analysis treats a lambda body as a separate function
/// that holds no locks, even when the enclosing scope provably does. A
/// lambda that reads guarded state under a lock held by its caller (the
/// idiomatic condition-variable predicate) states the fact explicitly with
/// `mu_.AssertHeld()` as its first statement.

#ifndef ISIS_COMMON_SYNC_H_
#define ISIS_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// --- Annotation macros (Clang Thread Safety Analysis). ---
//
// Names follow the capability spelling of the Clang documentation with an
// ISIS_ prefix. On non-Clang compilers every macro expands to nothing.

#if defined(__clang__)
#define ISIS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ISIS_THREAD_ANNOTATION_(x)
#endif

/// Declares a class to be a capability (lockable) type. The string names
/// the capability kind in diagnostics, e.g. ISIS_CAPABILITY("mutex").
#define ISIS_CAPABILITY(x) ISIS_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define ISIS_SCOPED_CAPABILITY ISIS_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define ISIS_GUARDED_BY(x) ISIS_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the data *pointed to* by a pointer member is protected by
/// the given capability (the pointer itself is not).
#define ISIS_PT_GUARDED_BY(x) ISIS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The calling thread must hold the capability exclusively.
#define ISIS_REQUIRES(...) \
  ISIS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The calling thread must hold the capability at least shared.
#define ISIS_REQUIRES_SHARED(...) \
  ISIS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability exclusively; the caller must not
/// already hold it.
#define ISIS_ACQUIRE(...) \
  ISIS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function acquires the capability shared.
#define ISIS_ACQUIRE_SHARED(...) \
  ISIS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (held exclusively, or -- on a
/// scoped capability's destructor -- however it was acquired).
#define ISIS_RELEASE(...) \
  ISIS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function releases a capability held shared.
#define ISIS_RELEASE_SHARED(...) \
  ISIS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function must be called *without* the capability held (deadlock
/// guard for non-reentrant mutexes).
#define ISIS_EXCLUDES(...) ISIS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held here (a fact the analysis
/// cannot derive, e.g. inside a condition-variable predicate lambda).
#define ISIS_ASSERT_CAPABILITY(x) ISIS_THREAD_ANNOTATION_(assert_capability(x))
#define ISIS_ASSERT_SHARED_CAPABILITY(x) \
  ISIS_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Disables the analysis inside one function. Reserved for the lock
/// primitives themselves (whose bodies *implement* the capability protocol
/// and so cannot be checked against it) -- never for application code.
#define ISIS_NO_THREAD_SAFETY_ANALYSIS \
  ISIS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace isis {

class CondVar;
class MutexLock;

/// \brief Annotated std::mutex. Prefer MutexLock over manual Lock/Unlock.
class ISIS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ISIS_ACQUIRE() { mu_.lock(); }
  void Unlock() ISIS_RELEASE() { mu_.unlock(); }

  /// Analysis-only fact: no runtime check (std::mutex cannot name its
  /// holder), but downstream guarded-field accesses type-check. Use inside
  /// condition-variable predicate lambdas (see the header comment).
  void AssertHeld() const ISIS_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Scoped holder of a Mutex; relockable for worker-loop code that
/// drops the lock around a unit of work.
class ISIS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ISIS_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() ISIS_RELEASE() {
    if (held_) mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Drops the lock before scope end (must currently hold it).
  void Unlock() ISIS_RELEASE() {
    held_ = false;
    mu_.Unlock();
  }
  /// Reacquires after Unlock().
  void Lock() ISIS_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

/// \brief Condition variable paired with Mutex/MutexLock.
///
/// Wait() atomically releases and reacquires the underlying mutex, so from
/// the analysis's point of view the capability is held continuously across
/// the call -- which is exactly the guarantee the caller observes. A
/// predicate passed to Wait() runs with the mutex held but is analyzed as a
/// separate function: start it with `mu.AssertHeld()` if it reads guarded
/// state.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) ISIS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> ul(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();  // Ownership stays with `lock`; the mutex is held again.
  }

  template <typename Predicate>
  void Wait(MutexLock& lock, Predicate pred) {
    while (!pred()) Wait(lock);
  }

  /// Timed wait: blocks until notified or `timeout` elapses. Returns false
  /// on timeout. Same capability story as Wait() -- the mutex is held
  /// continuously from the caller's point of view.
  bool WaitFor(MutexLock& lock, std::chrono::milliseconds timeout)
      ISIS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> ul(lock.mu_.mu_, std::adopt_lock);
    bool notified =
        cv_.wait_for(ul, timeout) == std::cv_status::no_timeout;
    ul.release();  // Ownership stays with `lock`; the mutex is held again.
    return notified;
  }

  /// Deadline-bounded predicate wait: every transport wait in the server
  /// stack goes through this (or hand-rolls the same loop), so a lost
  /// response cannot hang the caller. Returns pred() at exit -- false means
  /// the deadline passed with the predicate still unsatisfied.
  template <typename Predicate>
  bool WaitFor(MutexLock& lock, std::chrono::milliseconds timeout,
               Predicate pred) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return pred();
      WaitFor(lock, std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - now) +
                        std::chrono::milliseconds(1));
    }
    return true;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// \brief Writer-preferring reader-writer mutex.
///
/// Built on Mutex + CondVar rather than std::shared_mutex so the preference
/// policy is ours (glibc's pthread rwlock default prefers readers, which
/// lets a saturating read load starve writers indefinitely) and so
/// ThreadSanitizer sees plain mutex/condvar operations it fully
/// understands. New readers block while a writer is waiting.
///
/// Prefer the scoped ReaderLock/WriterLock over the manual methods.
class ISIS_CAPABILITY("rw_mutex") RwMutex {
 public:
  RwMutex() = default;
  RwMutex(const RwMutex&) = delete;
  RwMutex& operator=(const RwMutex&) = delete;

  // The bodies (sync.cc) *implement* the capability protocol, so they are
  // exempt from the analysis; call sites see only the contracts.
  void LockShared() ISIS_ACQUIRE_SHARED() ISIS_NO_THREAD_SAFETY_ANALYSIS;
  void UnlockShared() ISIS_RELEASE_SHARED() ISIS_NO_THREAD_SAFETY_ANALYSIS;
  void LockExclusive() ISIS_ACQUIRE() ISIS_NO_THREAD_SAFETY_ANALYSIS;
  void UnlockExclusive() ISIS_RELEASE() ISIS_NO_THREAD_SAFETY_ANALYSIS;

  /// Analysis-only facts, as Mutex::AssertHeld().
  void AssertHeld() const ISIS_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ISIS_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  Mutex mu_;
  CondVar cv_;
  int active_readers_ ISIS_GUARDED_BY(mu_) = 0;
  int waiting_writers_ ISIS_GUARDED_BY(mu_) = 0;
  bool writer_active_ ISIS_GUARDED_BY(mu_) = false;
};

/// \brief Scoped shared (reader) hold of an RwMutex.
class ISIS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(RwMutex& mu) ISIS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() ISIS_RELEASE() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  RwMutex& mu_;
};

/// \brief Scoped exclusive (writer) hold of an RwMutex.
class ISIS_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(RwMutex& mu) ISIS_ACQUIRE(mu) : mu_(mu) {
    mu_.LockExclusive();
  }
  ~WriterLock() ISIS_RELEASE() { mu_.UnlockExclusive(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  RwMutex& mu_;
};

}  // namespace isis

#endif  // ISIS_COMMON_SYNC_H_
