#include "common/sync.h"

namespace isis {

// The four primitives implement the rw capability protocol, so their bodies
// are exempt from the analysis (ISIS_NO_THREAD_SAFETY_ANALYSIS on the
// declarations); the predicate lambdas still assert the inner mutex they
// run under.

void RwMutex::LockShared() {
  MutexLock lock(mu_);
  // Writer preference: a reader arriving while a writer waits queues behind
  // it, so mutations cannot be starved by a saturating read load.
  cv_.Wait(lock, [this] {
    mu_.AssertHeld();
    return !writer_active_ && waiting_writers_ == 0;
  });
  ++active_readers_;
}

void RwMutex::UnlockShared() {
  MutexLock lock(mu_);
  if (--active_readers_ == 0) cv_.NotifyAll();
}

void RwMutex::LockExclusive() {
  MutexLock lock(mu_);
  ++waiting_writers_;
  cv_.Wait(lock, [this] {
    mu_.AssertHeld();
    return !writer_active_ && active_readers_ == 0;
  });
  --waiting_writers_;
  writer_active_ = true;
}

void RwMutex::UnlockExclusive() {
  MutexLock lock(mu_);
  writer_active_ = false;
  cv_.NotifyAll();
}

}  // namespace isis
