#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace isis {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool IsValidName(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (c == '|' || c == '`' || c == '\n' || c == '\r') return false;
    if (!std::isprint(static_cast<unsigned char>(c))) return false;
  }
  // Names surrounded by whitespace are disallowed; interior spaces are fine
  // ("New York Philharmonic" is a legal entity name).
  return !std::isspace(static_cast<unsigned char>(name.front())) &&
         !std::isspace(static_cast<unsigned char>(name.back()));
}

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '|':
        out += "\\p";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) {
      out += '?';
      break;
    }
    ++i;
    switch (s[i]) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 'p':
        out += '|';
        break;
      default:
        out += '?';
    }
  }
  return out;
}

std::string PadTo(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string FormatReal(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace isis
