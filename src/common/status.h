/// \file status.h
/// \brief Error handling primitives for the ISIS library.
///
/// ISIS follows the Arrow/RocksDB idiom: no exceptions cross public API
/// boundaries. Fallible operations return Status (or Result<T>, see
/// result.h). Status is cheap to return in the OK case (a single pointer).

#ifndef ISIS_COMMON_STATUS_H_
#define ISIS_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace isis {

/// \brief Broad classification of an error.
///
/// Codes mirror the failure classes of the ISIS engine: violations of the
/// schema/data consistency rules of the paper's Section 2 get their own code
/// (kConsistency) because callers often want to distinguish "you asked for
/// something the model forbids" from plain bad arguments.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Malformed request (bad name, bad id, ...).
  kNotFound = 2,          ///< Named/id'd object does not exist.
  kAlreadyExists = 3,     ///< Unique name or id collision.
  kConsistency = 4,       ///< Would violate schema/data consistency (paper §2).
  kTypeError = 5,         ///< Operator applied to incompatible classes.
  kIOError = 6,           ///< Persistence failure (store/).
  kParseError = 7,        ///< Serialized form or script is malformed.
  kUnimplemented = 8,     ///< Feature behind an option that is disabled.
  kInternal = 9,          ///< Invariant breakage inside the engine (a bug).
  kUnavailable = 10,      ///< Retryable: the operation needs a stronger lock
                          ///< (e.g. interning while frozen) or a full queue
                          ///< drained. The server retries these.
};

/// \brief Human-readable name of a status code, e.g. "Consistency".
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// A default-constructed Status is OK and carries no allocation. Error
/// statuses carry a code and a message.
///
/// The class is [[nodiscard]]: silently dropping the return value of a
/// fallible call is a compile error under ISIS_WERROR. A deliberately
/// best-effort call makes that intent explicit with LogIfError() below.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Consistency(std::string msg) {
    return Status(StatusCode::kConsistency, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }

  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsConsistency() const { return code() == StatusCode::kConsistency; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& st);

/// \brief Consumes a Status on a best-effort path, logging any error to
/// stderr as "[isis] <context>: <status>".
///
/// This is the one sanctioned way to drop a Status: it keeps deliberate
/// discards greppable and distinct from forgotten ones (which [[nodiscard]]
/// turns into warnings). Use it only where failure genuinely must not abort
/// the caller -- e.g. journal notes or a shutdown-path checkpoint whose
/// failure the WAL already covers.
void LogIfError(const Status& st, const char* context);

}  // namespace isis

/// Propagates a non-OK Status to the caller.
#define ISIS_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::isis::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // ISIS_COMMON_STATUS_H_
