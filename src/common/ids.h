/// \file ids.h
/// \brief Strongly typed integer ids for SDM objects.
///
/// Entities, classes, attributes and groupings are referred to by stable
/// small-integer ids inside the engine; user-visible names map to ids through
/// the schema/database catalogs. A distinct C++ type per id kind prevents
/// accidentally indexing one catalog with another catalog's id.

#ifndef ISIS_COMMON_IDS_H_
#define ISIS_COMMON_IDS_H_

#include <cstdint>
#include <functional>

namespace isis {

namespace internal {

/// CRTP-free tagged id. Tag is an empty struct naming the id space.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::int64_t;

  constexpr Id() : value_(-1) {}
  constexpr explicit Id(underlying_type v) : value_(v) {}

  constexpr underlying_type value() const { return value_; }
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

 private:
  underlying_type value_;
};

}  // namespace internal

struct EntityIdTag {};
struct ClassIdTag {};
struct AttributeIdTag {};
struct GroupingIdTag {};

/// Identifies one entity in the database's entity universe.
using EntityId = internal::Id<EntityIdTag>;
/// Identifies one class node of the schema.
using ClassId = internal::Id<ClassIdTag>;
/// Identifies one attribute (an arc of the semantic network).
using AttributeId = internal::Id<AttributeIdTag>;
/// Identifies one grouping node of the schema.
using GroupingId = internal::Id<GroupingIdTag>;

}  // namespace isis

namespace std {
template <typename Tag>
struct hash<isis::internal::Id<Tag>> {
  size_t operator()(isis::internal::Id<Tag> id) const {
    return std::hash<std::int64_t>()(id.value());
  }
};
}  // namespace std

#endif  // ISIS_COMMON_IDS_H_
