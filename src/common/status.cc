#include "common/status.h"

#include <cstdio>

namespace isis {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConsistency:
      return "Consistency";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

void LogIfError(const Status& st, const char* context) {
  if (st.ok()) return;
  std::fprintf(stderr, "[isis] %s: %s\n", context, st.ToString().c_str());
}

}  // namespace isis
