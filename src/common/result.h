/// \file result.h
/// \brief Result<T>: a value or an error Status.

#ifndef ISIS_COMMON_RESULT_H_
#define ISIS_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace isis {

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Constructing from an OK status is a programming
/// error (asserted in debug builds, degraded to an Internal error in
/// release).
///
/// [[nodiscard]] like Status: a dropped Result is a dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status st) : repr_(std::move(st)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok());
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  /// The held value, or `alt` when in error.
  T ValueOr(T alt) const {
    return ok() ? std::get<T>(repr_) : std::move(alt);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace isis

/// Assigns a Result's value to `lhs`, or propagates its error status.
#define ISIS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

#define ISIS_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define ISIS_ASSIGN_OR_RETURN_NAME(a, b) ISIS_ASSIGN_OR_RETURN_CONCAT(a, b)

#define ISIS_ASSIGN_OR_RETURN(lhs, expr) \
  ISIS_ASSIGN_OR_RETURN_IMPL(            \
      ISIS_ASSIGN_OR_RETURN_NAME(_isis_result_, __COUNTER__), lhs, expr)

#endif  // ISIS_COMMON_RESULT_H_
