/// \file strings.h
/// \brief Small string utilities shared across the ISIS libraries.

#ifndef ISIS_COMMON_STRINGS_H_
#define ISIS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace isis {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view s);

/// True if `name` is a legal ISIS object name: nonempty, printable ASCII,
/// no newlines or the reserved separator characters `|` and `\``.
bool IsValidName(std::string_view name);

/// Escapes newlines, backslashes and `|` for the store/ text format.
std::string Escape(std::string_view s);

/// Inverse of Escape. Malformed escapes decode to '?' rather than failing;
/// the store parser validates records at a higher level.
std::string Unescape(std::string_view s);

/// Left-pads or truncates `s` to exactly `width` columns.
std::string PadTo(std::string_view s, size_t width);

/// Formats a double the way ISIS displays Reals: shortest round-trip-ish
/// decimal with trailing zero trimming ("3.5", "2", "0.25").
std::string FormatReal(double v);

}  // namespace isis

#endif  // ISIS_COMMON_STRINGS_H_
