/// \file deps.h
/// \brief Dependency analysis of stored queries.
///
/// The engine routes each database delta to only the views that read the
/// changed class or attribute. This module computes, per view, *what* the
/// view reads and *how precisely* a delta on it can be routed:
///
///   * position-0 attributes of a candidate/self map path identify the
///     affected entity exactly (the delta's owner IS the candidate/owner to
///     retest);
///   * deeper path positions, constant-origin paths and class extents do
///     not — a change there can affect any candidate, so the view falls
///     back to a full recompute.
///
/// The buckets deliberately over-approximate (a routed retest that finds
/// nothing to change is a no-op), which is what keeps the engine's results
/// identical to Workspace::ReevaluateAll.

#ifndef ISIS_LIVE_DEPS_H_
#define ISIS_LIVE_DEPS_H_

#include <set>

#include "common/ids.h"
#include "query/cache.h"
#include "query/constraints.h"
#include "query/predicate.h"
#include "sdm/schema.h"

namespace isis::live {

/// The read set of one stored view, bucketed by routing precision.
struct DepSet {
  /// Membership change in one of these ⇒ retest the changed entity as a
  /// candidate (subclass parents; attribute value class; constraint class).
  std::set<std::int64_t> candidate_classes;
  /// Membership change ⇒ recompute/drop the changed entity as an owner
  /// (derived attributes only).
  std::set<std::int64_t> owner_classes;
  /// Membership change ⇒ full view recompute (class extents read wholesale;
  /// owners of map steps not statically walkable; assignment value-class
  /// filters).
  std::set<std::int64_t> coarse_classes;
  /// Value change of one of these ⇒ retest the delta's owner as a candidate
  /// (position 0 of a candidate-origin path).
  std::set<std::int64_t> candidate_attrs;
  /// Value change ⇒ recompute the delta's owner as an owner (position 0 of
  /// a self-origin path).
  std::set<std::int64_t> self_attrs;
  /// Value change ⇒ full view recompute (deeper positions; constant- and
  /// extent-origin paths).
  std::set<std::int64_t> coarse_attrs;
};

/// Read set of a derived subclass' membership predicate.
DepSet AnalyzeSubclass(const sdm::Schema& schema, ClassId cls,
                       const query::Predicate& pred);

/// Read set of a derived attribute's stored derivation.
DepSet AnalyzeAttribute(const sdm::Schema& schema, const sdm::AttributeDef& def,
                        const query::AttributeDerivation& derivation);

/// Read set of a stored constraint.
DepSet AnalyzeConstraint(const sdm::Schema& schema,
                         const query::Constraint& constraint);

/// Read set of an ad-hoc query `{ e in members(cls) | pred }` — the shape
/// the server's kQuery request evaluates. Unlike AnalyzeSubclass the
/// candidate class is `cls` itself (the query filters its members
/// directly), and there is no self operand.
DepSet AnalyzeAdHoc(const sdm::Schema& schema, ClassId cls,
                    const query::Predicate& pred);

/// Flattens a DepSet into the {classes, attrs} shape the query-result
/// cache (query/cache.h) keys invalidation on: the union of every
/// membership bucket and the union of every value bucket. Routing
/// precision is irrelevant to the cache — any matching delta evicts the
/// whole entry — so the buckets collapse.
query::ResultCache::Deps FlattenForCache(const DepSet& deps);

}  // namespace isis::live

#endif  // ISIS_LIVE_DEPS_H_
