#include "live/engine.h"

#include <optional>
#include <utility>

#include "query/eval.h"
#include "query/plan.h"

namespace isis::live {

using query::AttributeDerivation;
using query::Constraint;
using query::ConstraintViolation;
using query::Evaluator;
using query::PlannedPredicate;
using query::Predicate;
using sdm::AttributeDef;
using sdm::ClassDef;
using sdm::EntitySet;
using sdm::kNullEntity;

LiveViewEngine::LiveViewEngine(query::Workspace* ws, int max_rounds)
    : ws_(ws), db_(&ws->db()), max_rounds_(max_rounds) {
  RebuildIndex();
  RecomputeViolatorsBaseline();
  db_->AddObserver(this);
}

LiveViewEngine::~LiveViewEngine() { db_->RemoveObserver(this); }

// --- Observer callbacks: record the delta, never mutate here. ---

void LiveViewEngine::OnMembership(EntityId e, ClassId cls, bool added) {
  ++stats_.deltas_seen;
  if (subclass_view_of_.count(cls.value()) > 0) {
    CountDerivedDelta(0, cls.value(), e);
  }
  Delta d;
  d.kind = Delta::Kind::kMembership;
  d.e = e;
  d.cls = cls;
  d.added = added;
  queue_.push_back(std::move(d));
}

void LiveViewEngine::OnAttributeValue(EntityId e, AttributeId attr,
                                      const EntitySet& before,
                                      const EntitySet& after) {
  (void)before;
  (void)after;  // a retest recomputes from current state; sets not needed
  ++stats_.deltas_seen;
  if (attr_view_of_.count(attr.value()) > 0) {
    CountDerivedDelta(1, attr.value(), e);
  }
  Delta d;
  d.kind = Delta::Kind::kAttribute;
  d.e = e;
  d.attr = attr;
  queue_.push_back(std::move(d));
}

void LiveViewEngine::OnSchemaChange() {
  ++stats_.deltas_seen;
  Delta d;
  d.kind = Delta::Kind::kSchema;
  queue_.push_back(std::move(d));
}

void LiveViewEngine::OnMutationsSettled() {
  if (draining_) return;  // the running drain will consume what was queued
  if (queue_.empty() && ws_->catalog_version() == seen_catalog_version_) {
    return;
  }
  Drain();
}

// --- Introspection. ---

const ViewStats* LiveViewEngine::FindViewStats(const std::string& name) const {
  for (const View& v : views_) {
    if (v.stats.name == name) return &v.stats;
  }
  return nullptr;
}

std::vector<ViewStats> LiveViewEngine::AllViewStats() const {
  std::vector<ViewStats> out;
  out.reserve(views_.size());
  for (const View& v : views_) out.push_back(v.stats);
  return out;
}

std::vector<ConstraintViolation> LiveViewEngine::Violations() {
  // Constraint definitions do not touch the database, so no settled
  // notification fires for them; catch up here if the catalog moved.
  if (!draining_ && ws_->catalog_version() != seen_catalog_version_) Drain();
  std::vector<ConstraintViolation> out;
  for (const Constraint* c : ws_->constraints().All()) {
    if (!db_->schema().HasClass(c->cls)) {
      // Mirrors ConstraintCatalog::CheckAll: a constraint over a vanished
      // class is itself a violation, with no violators.
      out.push_back(ConstraintViolation{c->name, ClassId(), {}});
      continue;
    }
    auto it = violators_.find(c->name);
    if (it != violators_.end() && !it->second.empty()) {
      out.push_back(ConstraintViolation{c->name, c->cls, it->second});
    }
  }
  return out;
}

void LiveViewEngine::FullResync() {
  if (draining_) return;
  draining_ = true;
  drain_counts_.clear();
  abort_drain_ = false;
  Resync();
  while (!queue_.empty() && !abort_drain_) {
    Delta d = queue_.front();
    queue_.pop_front();
    switch (d.kind) {
      case Delta::Kind::kSchema:
        queue_.clear();
        Resync();
        break;
      case Delta::Kind::kMembership:
        ApplyMembershipDelta(d);
        break;
      case Delta::Kind::kAttribute:
        ApplyAttributeDelta(d);
        break;
    }
  }
  if (abort_drain_) queue_.clear();
  drain_counts_.clear();
  draining_ = false;
}

// --- Maintenance. ---

void LiveViewEngine::Drain() {
  draining_ = true;
  ++stats_.drains;
  drain_counts_.clear();
  abort_drain_ = false;
  if (ws_->catalog_version() != seen_catalog_version_) {
    // Stored queries were added/dropped/edited since the index was built:
    // re-derive everything once, then let the queued deltas converge.
    Resync();
  }
  while (!queue_.empty() && !abort_drain_) {
    Delta d = queue_.front();
    queue_.pop_front();
    switch (d.kind) {
      case Delta::Kind::kSchema:
        // A schema edit invalidates fine-grained routing wholesale; the
        // resync supersedes every older queued delta.
        queue_.clear();
        Resync();
        break;
      case Delta::Kind::kMembership:
        ApplyMembershipDelta(d);
        break;
      case Delta::Kind::kAttribute:
        ApplyAttributeDelta(d);
        break;
    }
  }
  if (abort_drain_) queue_.clear();
  drain_counts_.clear();
  draining_ = false;
}

void LiveViewEngine::Resync() {
  RebuildIndex();
  for (View& v : views_) {
    if (abort_drain_) return;
    FullRecompute(&v);
  }
}

void LiveViewEngine::ApplyMembershipDelta(const Delta& d) {
  auto route = [&](const RouteIndex& index, auto&& apply) {
    auto it = index.find(d.cls.value());
    if (it == index.end()) return;
    for (int vi : it->second) {
      if (abort_drain_) return;
      View& v = views_[vi];
      ++v.stats.deltas_applied;
      apply(&v);
    }
  };
  route(by_candidate_class_, [&](View* v) { RetestCandidate(v, d.e); });
  route(by_owner_class_, [&](View* v) {
    // An owner that left the class had its value row dropped by the
    // database already; only (re)compute for current members.
    if (d.added) RecomputeOwner(v, d.e);
  });
  route(by_coarse_class_, [&](View* v) { FullRecompute(v); });
}

void LiveViewEngine::ApplyAttributeDelta(const Delta& d) {
  auto route = [&](const RouteIndex& index, auto&& apply) {
    auto it = index.find(d.attr.value());
    if (it == index.end()) return;
    for (int vi : it->second) {
      if (abort_drain_) return;
      View& v = views_[vi];
      ++v.stats.deltas_applied;
      apply(&v);
    }
  };
  // The changed attribute sits at position 0 of a candidate/self path, so
  // the delta's owner is exactly the candidate/owner whose result may move.
  route(by_candidate_attr_, [&](View* v) { RetestCandidate(v, d.e); });
  route(by_self_attr_, [&](View* v) { RecomputeOwner(v, d.e); });
  route(by_coarse_attr_, [&](View* v) { FullRecompute(v); });
}

void LiveViewEngine::RetestCandidate(View* v, EntityId e) {
  switch (v->kind) {
    case View::Kind::kSubclass: {
      ++v->stats.entities_retested;
      if (!db_->schema().HasClass(v->cls)) return;
      const Predicate* pred = ws_->SubclassPredicate(v->cls);
      if (pred == nullptr) return;
      const ClassDef& def = db_->schema().GetClass(v->cls);
      bool candidate = e != kNullEntity && db_->HasEntity(e);
      for (ClassId p : def.parents) {
        if (!candidate) break;
        candidate = db_->IsMember(e, p);
      }
      bool should =
          candidate && PlannedPredicate(*db_, *pred, v->cls).Test(e);
      bool is = db_->IsMember(e, v->cls);
      if (should == is) return;
      Note(should ? db_->AddToDerivedClass(e, v->cls)
                  : db_->RemoveFromClass(e, v->cls));
      return;
    }
    case View::Kind::kAttribute: {
      // e is a candidate *value*: re-test the pair (x, e) for every owner.
      const AttributeDerivation* der = ws_->GetAttributeDerivation(v->attr);
      if (der == nullptr ||
          der->kind != AttributeDerivation::Kind::kPredicate ||
          !db_->schema().HasAttribute(v->attr)) {
        return;
      }
      const AttributeDef& def = db_->schema().GetAttribute(v->attr);
      bool is_value = e != kNullEntity && db_->HasEntity(e) &&
                      db_->IsMember(e, def.value_class);
      // The loop below mutates v->attr per owner. A PlannedPredicate may
      // only be cached across those mutations when the predicate never
      // reads v->attr (the usual case — reading it would be a cycle);
      // otherwise fall back to the naive per-pair test.
      const bool plan_safe =
          !query::PredicateMentionsAttribute(der->predicate, v->attr);
      std::optional<PlannedPredicate> plan;
      if (plan_safe) plan.emplace(*db_, der->predicate, def.value_class);
      Evaluator eval(*db_);
      const EntitySet& owners = db_->Members(def.owner);
      std::vector<EntityId> owner_list(owners.begin(), owners.end());
      for (EntityId x : owner_list) {
        if (abort_drain_) return;
        ++v->stats.entities_retested;
        bool should =
            is_value && (plan_safe ? plan->Test(e, x)
                                   : eval.EvalPredicate(der->predicate, e, x));
        bool is = db_->GetMulti(x, v->attr).count(e) > 0;
        if (should && !is) {
          Note(db_->AddToMulti(x, v->attr, e));
        } else if (!should && is) {
          Note(db_->RemoveFromMulti(x, v->attr, e));
        }
      }
      return;
    }
    case View::Kind::kConstraint: {
      ++v->stats.entities_retested;
      if (!db_->schema().HasClass(v->cls)) return;
      const Constraint* c = ws_->constraints().Find(v->constraint);
      if (c == nullptr) return;
      bool member =
          e != kNullEntity && db_->HasEntity(e) && db_->IsMember(e, v->cls);
      bool violates =
          member && !PlannedPredicate(*db_, c->predicate, v->cls).Test(e);
      EntitySet& set = violators_[v->constraint];
      if (violates) {
        set.insert(e);
      } else {
        set.erase(e);
      }
      return;
    }
  }
}

void LiveViewEngine::RecomputeOwner(View* v, EntityId x) {
  if (v->kind != View::Kind::kAttribute) return;
  ++v->stats.entities_retested;
  const AttributeDerivation* der = ws_->GetAttributeDerivation(v->attr);
  if (der == nullptr || !db_->schema().HasAttribute(v->attr)) return;
  const AttributeDef& def = db_->schema().GetAttribute(v->attr);
  if (x == kNullEntity || !db_->HasEntity(x) || !db_->IsMember(x, def.owner)) {
    return;
  }
  Note(db_->SetMulti(x, v->attr, ws_->ComputeAttributeValue(*der, def, x)));
}

void LiveViewEngine::FullRecompute(View* v) {
  ++v->stats.full_recomputes;
  switch (v->kind) {
    case View::Kind::kSubclass: {
      Status st = ws_->ReevaluateSubclass(v->cls);
      if (!st.ok() && !st.IsNotFound()) Note(st);
      return;
    }
    case View::Kind::kAttribute: {
      Status st = ws_->ReevaluateAttribute(v->attr);
      if (!st.ok() && !st.IsNotFound()) Note(st);
      return;
    }
    case View::Kind::kConstraint: {
      Result<ConstraintViolation> r =
          ws_->constraints().Check(*db_, v->constraint);
      if (r.ok()) {
        violators_[v->constraint] = std::move(r->violators);
      } else {
        violators_.erase(v->constraint);
      }
      return;
    }
  }
}

void LiveViewEngine::RebuildIndex() {
  // Counters survive index rebuilds: key by object identity.
  std::map<std::pair<int, std::int64_t>, ViewStats> old_stats;
  std::map<std::string, ViewStats> old_constraint_stats;
  for (View& v : views_) {
    if (v.kind == View::Kind::kConstraint) {
      old_constraint_stats[v.constraint] = std::move(v.stats);
    } else {
      int tag = v.kind == View::Kind::kSubclass ? 0 : 1;
      std::int64_t id =
          tag == 0 ? v.cls.value() : v.attr.value();
      old_stats[{tag, id}] = std::move(v.stats);
    }
  }
  views_.clear();
  by_candidate_class_.clear();
  by_owner_class_.clear();
  by_coarse_class_.clear();
  by_candidate_attr_.clear();
  by_self_attr_.clear();
  by_coarse_attr_.clear();
  subclass_view_of_.clear();
  attr_view_of_.clear();

  const sdm::Schema& schema = db_->schema();
  for (const auto& [cls_raw, pred] : ws_->subclass_predicates()) {
    ClassId cls(cls_raw);
    if (!schema.HasClass(cls)) continue;
    View v;
    v.kind = View::Kind::kSubclass;
    v.cls = cls;
    v.deps = AnalyzeSubclass(schema, cls, pred);
    auto it = old_stats.find({0, cls_raw});
    if (it != old_stats.end()) v.stats = std::move(it->second);
    v.stats.name = schema.GetClass(cls).name;
    subclass_view_of_[cls_raw] = static_cast<int>(views_.size());
    views_.push_back(std::move(v));
  }
  for (const auto& [attr_raw, der] : ws_->attribute_derivations()) {
    AttributeId attr(attr_raw);
    if (!schema.HasAttribute(attr)) continue;
    View v;
    v.kind = View::Kind::kAttribute;
    v.attr = attr;
    v.deps = AnalyzeAttribute(schema, schema.GetAttribute(attr), der);
    auto it = old_stats.find({1, attr_raw});
    if (it != old_stats.end()) v.stats = std::move(it->second);
    v.stats.name = schema.GetAttribute(attr).name;
    attr_view_of_[attr_raw] = static_cast<int>(views_.size());
    views_.push_back(std::move(v));
  }
  for (const Constraint* c : ws_->constraints().All()) {
    View v;
    v.kind = View::Kind::kConstraint;
    v.cls = c->cls;
    v.constraint = c->name;
    v.deps = AnalyzeConstraint(schema, *c);
    auto it = old_constraint_stats.find(c->name);
    if (it != old_constraint_stats.end()) v.stats = std::move(it->second);
    v.stats.name = c->name;
    views_.push_back(std::move(v));
  }

  for (size_t i = 0; i < views_.size(); ++i) {
    int vi = static_cast<int>(i);
    const DepSet& deps = views_[i].deps;
    for (std::int64_t c : deps.candidate_classes) {
      by_candidate_class_[c].push_back(vi);
    }
    for (std::int64_t c : deps.owner_classes) by_owner_class_[c].push_back(vi);
    for (std::int64_t c : deps.coarse_classes) {
      by_coarse_class_[c].push_back(vi);
    }
    for (std::int64_t a : deps.candidate_attrs) {
      by_candidate_attr_[a].push_back(vi);
    }
    for (std::int64_t a : deps.self_attrs) by_self_attr_[a].push_back(vi);
    for (std::int64_t a : deps.coarse_attrs) by_coarse_attr_[a].push_back(vi);
  }

  // Drop violator sets of constraints that no longer exist.
  for (auto it = violators_.begin(); it != violators_.end();) {
    if (ws_->constraints().Has(it->first)) {
      ++it;
    } else {
      it = violators_.erase(it);
    }
  }

  seen_catalog_version_ = ws_->catalog_version();
  ++stats_.index_rebuilds;
}

void LiveViewEngine::RecomputeViolatorsBaseline() {
  violators_.clear();
  for (const Constraint* c : ws_->constraints().All()) {
    Result<ConstraintViolation> r = ws_->constraints().Check(*db_, c->name);
    if (r.ok()) violators_[c->name] = std::move(r->violators);
  }
}

void LiveViewEngine::Note(const Status& st) {
  if (!st.ok() && last_error_.ok()) last_error_ = st;
}

void LiveViewEngine::CountDerivedDelta(int kind_tag, std::int64_t object,
                                       EntityId e) {
  if (!draining_ || abort_drain_) return;
  int& n = drain_counts_[{kind_tag, object, e.value()}];
  if (++n > max_rounds_) {
    abort_drain_ = true;
    if (last_error_.ok()) {
      last_error_ = Status::Consistency(
          "live maintenance did not reach a fixpoint (cyclic derivation?)");
    }
  }
}

}  // namespace isis::live
