/// \file stats.h
/// \brief Maintenance counters of the live-view engine.
///
/// Every stored derived subclass, derived attribute and constraint is one
/// "live view" to the engine; these counters make the incremental-vs-
/// recompute ablation measurable (bench_live_views) and give the UI a
/// staleness story ("this class was maintained by N deltas, never fully
/// rescanned").

#ifndef ISIS_LIVE_STATS_H_
#define ISIS_LIVE_STATS_H_

#include <cstdint>
#include <string>

namespace isis::live {

/// Counters for one live view.
struct ViewStats {
  /// Display name (class, attribute or constraint name at index time).
  std::string name;
  /// Deltas routed to this view (a delta may hit several views).
  std::int64_t deltas_applied = 0;
  /// Per-entity predicate tests / owner recomputations performed.
  std::int64_t entities_retested = 0;
  /// Coarse-delta fallbacks: whole-view re-evaluations.
  std::int64_t full_recomputes = 0;
};

/// Whole-engine counters.
struct EngineStats {
  /// Typed deltas received from the database (including the engine's own
  /// cascade writes).
  std::int64_t deltas_seen = 0;
  /// Settled-time queue drains that found work.
  std::int64_t drains = 0;
  /// Dependency-index rebuilds (catalog or schema changes).
  std::int64_t index_rebuilds = 0;
};

}  // namespace isis::live

#endif  // ISIS_LIVE_STATS_H_
