/// \file engine.h
/// \brief LiveViewEngine: incremental maintenance of stored derived
/// subclasses, derived attributes and constraints.
///
/// The seed kept stored queries fresh only through Workspace::ReevaluateAll,
/// a whole-catalog full-scan fixpoint run by hand. The engine replaces that
/// with materialized-view maintenance: it registers as a MutationObserver on
/// the workspace's database, queues the typed deltas each mutation emits,
/// and — once the outermost mutation returns (OnMutationsSettled) — drains
/// the queue, re-testing only the affected candidate entities against only
/// the views whose dependency set (live/deps.h) covers the delta. The
/// engine's own corrective writes emit deltas too, which is exactly how
/// view-feeds-view cascades propagate; a per-drain oscillation bound (the
/// same 16 as ReevaluateAll's round bound) turns cyclic derivations into a
/// recorded Consistency error instead of an endless loop.
///
/// Coarse deltas (schema edits, class extents read wholesale, deep map
/// steps) fall back to per-view full recomputes via the workspace's own
/// Reevaluate* entry points, so results are identical to ReevaluateAll by
/// construction — asserted property-style by tests/live_engine_test.cpp.

#ifndef ISIS_LIVE_ENGINE_H_
#define ISIS_LIVE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "live/deps.h"
#include "live/stats.h"
#include "query/workspace.h"
#include "sdm/database.h"

namespace isis::live {

/// \brief Incremental maintainer attached to one Workspace.
///
/// The engine assumes the workspace's derived data is consistent when it
/// attaches (datasets and freshly-defined views are; call FullResync after
/// attaching to a stale workspace). It must be destroyed (or the workspace
/// must outlive it) before the workspace goes away.
class LiveViewEngine : public sdm::MutationObserver {
 public:
  /// Attaches to `ws`'s database. `max_rounds` bounds per-drain oscillation
  /// per (view, entity), mirroring ReevaluateAll's round bound.
  explicit LiveViewEngine(query::Workspace* ws, int max_rounds = 16);
  ~LiveViewEngine() override;

  LiveViewEngine(const LiveViewEngine&) = delete;
  LiveViewEngine& operator=(const LiveViewEngine&) = delete;

  // --- sdm::MutationObserver. ---

  void OnMembership(EntityId e, ClassId cls, bool added) override;
  void OnAttributeValue(EntityId e, AttributeId attr,
                        const sdm::EntitySet& before,
                        const sdm::EntitySet& after) override;
  void OnSchemaChange() override;
  void OnMutationsSettled() override;

  // --- Introspection. ---

  const EngineStats& stats() const { return stats_; }
  /// Counters of the view named `name` (class/attribute/constraint name);
  /// nullptr if no such view.
  const ViewStats* FindViewStats(const std::string& name) const;
  /// Counters of every view in index order.
  std::vector<ViewStats> AllViewStats() const;

  /// Incrementally maintained constraint violations; same contents as
  /// Workspace::CheckConstraints. Non-const: defining a constraint touches
  /// no database state, so this is where the engine catches up on
  /// catalog-only changes.
  std::vector<query::ConstraintViolation> Violations();

  /// Consistency error recorded when a drain hit the oscillation bound (a
  /// cyclic derivation) or a corrective write failed; sticky until cleared.
  const Status& last_error() const { return last_error_; }
  void ClearLastError() { last_error_ = Status::OK(); }

  /// Rebuilds the dependency index and fully recomputes every view — the
  /// hard-sync fallback (schema edits route here automatically).
  void FullResync();

 private:
  struct Delta {
    enum class Kind { kMembership, kAttribute, kSchema };
    Kind kind = Kind::kSchema;
    EntityId e;
    ClassId cls;
    bool added = false;
    AttributeId attr;
  };

  struct View {
    enum class Kind { kSubclass, kAttribute, kConstraint };
    Kind kind = Kind::kSubclass;
    ClassId cls;              ///< kSubclass / kConstraint.
    AttributeId attr;         ///< kAttribute.
    std::string constraint;   ///< kConstraint.
    DepSet deps;
    ViewStats stats;
  };

  /// class/attr id -> indices into views_.
  using RouteIndex = std::unordered_map<std::int64_t, std::vector<int>>;

  void RebuildIndex();
  void RecomputeViolatorsBaseline();
  void Drain();
  void Resync();
  void ApplyMembershipDelta(const Delta& d);
  void ApplyAttributeDelta(const Delta& d);
  void RetestCandidate(View* v, EntityId e);
  void RecomputeOwner(View* v, EntityId x);
  void FullRecompute(View* v);
  /// Records a failed corrective write (should not happen; kept visible).
  void Note(const Status& st);
  /// Cycle guard: counts per-drain deltas on derived objects.
  void CountDerivedDelta(int kind_tag, std::int64_t object, EntityId e);

  query::Workspace* ws_;
  sdm::Database* db_;
  int max_rounds_;

  std::vector<View> views_;
  RouteIndex by_candidate_class_;
  RouteIndex by_owner_class_;
  RouteIndex by_coarse_class_;
  RouteIndex by_candidate_attr_;
  RouteIndex by_self_attr_;
  RouteIndex by_coarse_attr_;
  /// Derived objects under maintenance (for the cycle guard).
  std::unordered_map<std::int64_t, int> subclass_view_of_;
  std::unordered_map<std::int64_t, int> attr_view_of_;
  std::int64_t seen_catalog_version_ = -1;

  /// Maintained violator sets, keyed by constraint name.
  std::map<std::string, sdm::EntitySet> violators_;

  std::deque<Delta> queue_;
  bool draining_ = false;
  bool abort_drain_ = false;
  /// Per-drain (kind, object, entity) -> delta count; exceeding max_rounds_
  /// means the cascade is oscillating (cyclic derivation).
  std::map<std::tuple<int, std::int64_t, std::int64_t>, int> drain_counts_;

  EngineStats stats_;
  Status last_error_ = Status::OK();
};

}  // namespace isis::live

#endif  // ISIS_LIVE_ENGINE_H_
