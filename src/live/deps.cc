#include "live/deps.h"

#include <algorithm>

namespace isis::live {

using query::AttributeDerivation;
using query::Atom;
using query::Operand;
using query::Predicate;
using query::Term;
using sdm::AttributeDef;
using sdm::Schema;

namespace {

/// Walks one term's map path. `walk_start` is the class the path starts
/// from when it is statically known (candidate/self/extent origins);
/// invalid for constant origins, whose frontier class depends on the picked
/// entities.
void AnalyzeTerm(const Schema& schema, const Term& term, ClassId walk_start,
                 std::set<std::int64_t>* first_step_bucket, DepSet* deps) {
  if (term.origin == Operand::kClassExtent && term.extent_class.valid()) {
    // The extent is read wholesale: any membership change there can change
    // the term's value for every candidate.
    deps->coarse_classes.insert(term.extent_class.value());
  }
  ClassId cur = walk_start;
  for (size_t i = 0; i < term.path.size(); ++i) {
    AttributeId attr = term.path[i];
    if (!schema.HasAttribute(attr)) continue;  // evaluates to the empty set
    (i == 0 ? *first_step_bucket : deps->coarse_attrs).insert(attr.value());
    const AttributeDef& def = schema.GetAttribute(attr);
    if (cur.valid() && schema.HasClass(cur) &&
        schema.AttributeVisibleOn(cur, attr)) {
      // The frontier reaching this step is contained in `cur` (value-class
      // scrubbing keeps stored values inside their value class), and a
      // visible attribute's owner is an ancestor of `cur`, so the per-step
      // IsMember(owner) filter of EvaluateMap cannot cut anything:
      // membership changes in `owner` are already covered by the buckets
      // above. Only non-walkable steps need the coarse membership dep.
      cur = def.value_class;
    } else {
      deps->coarse_classes.insert(def.owner.value());
      cur = def.value_class;
    }
  }
}

void AnalyzePredicate(const Schema& schema, const Predicate& pred,
                      ClassId candidate_class, ClassId self_class,
                      DepSet* deps) {
  // Mirror evaluation: atoms not placed in any clause do not participate.
  std::set<int> placed;
  for (const std::vector<int>& clause : pred.clauses) {
    for (int idx : clause) placed.insert(idx);
  }
  for (int idx : placed) {
    if (idx < 0 || static_cast<size_t>(idx) >= pred.atoms.size()) continue;
    const Atom& atom = pred.atoms[idx];
    for (const Term* term : {&atom.lhs, &atom.rhs}) {
      switch (term->origin) {
        case Operand::kCandidate:
          AnalyzeTerm(schema, *term, candidate_class, &deps->candidate_attrs,
                      deps);
          break;
        case Operand::kSelf:
          AnalyzeTerm(schema, *term, self_class, &deps->self_attrs, deps);
          break;
        case Operand::kConstant:
        case Operand::kClassExtent:
          AnalyzeTerm(schema, *term,
                      term->origin == Operand::kClassExtent
                          ? term->extent_class
                          : ClassId(),
                      &deps->coarse_attrs, deps);
          break;
      }
    }
  }
}

}  // namespace

DepSet AnalyzeSubclass(const Schema& schema, ClassId cls,
                       const Predicate& pred) {
  DepSet deps;
  if (!schema.HasClass(cls)) return deps;
  ClassId candidate_class;
  for (ClassId p : schema.GetClass(cls).parents) {
    deps.candidate_classes.insert(p.value());
    candidate_class = p;
  }
  AnalyzePredicate(schema, pred, candidate_class, ClassId(), &deps);
  return deps;
}

DepSet AnalyzeAttribute(const Schema& schema, const AttributeDef& def,
                        const AttributeDerivation& derivation) {
  DepSet deps;
  deps.owner_classes.insert(def.owner.value());
  if (derivation.kind == AttributeDerivation::Kind::kAssignment) {
    // A(x) = map(x), then filtered to members of the value class: a
    // membership change there can flip the filter for any owner.
    deps.coarse_classes.insert(def.value_class.value());
    const Term& t = derivation.assignment;
    if (t.origin == Operand::kSelf) {
      AnalyzeTerm(schema, t, def.owner, &deps.self_attrs, &deps);
    } else {
      AnalyzeTerm(schema, t,
                  t.origin == Operand::kClassExtent ? t.extent_class
                                                    : ClassId(),
                  &deps.coarse_attrs, &deps);
    }
  } else {
    // A(x) = { e in value_class | P_x(e) }: the value class is the
    // candidate class.
    deps.candidate_classes.insert(def.value_class.value());
    AnalyzePredicate(schema, derivation.predicate, def.value_class, def.owner,
                     &deps);
  }
  return deps;
}

DepSet AnalyzeConstraint(const Schema& schema,
                         const query::Constraint& constraint) {
  DepSet deps;
  if (!schema.HasClass(constraint.cls)) return deps;
  deps.candidate_classes.insert(constraint.cls.value());
  AnalyzePredicate(schema, constraint.predicate, constraint.cls, ClassId(),
                   &deps);
  return deps;
}

DepSet AnalyzeAdHoc(const Schema& schema, ClassId cls,
                    const query::Predicate& pred) {
  DepSet deps;
  if (!schema.HasClass(cls)) return deps;
  deps.candidate_classes.insert(cls.value());
  AnalyzePredicate(schema, pred, cls, ClassId(), &deps);
  return deps;
}

query::ResultCache::Deps FlattenForCache(const DepSet& deps) {
  query::ResultCache::Deps flat;
  auto merge = [](const std::set<std::int64_t>& from,
                  std::vector<std::int64_t>* into) {
    into->insert(into->end(), from.begin(), from.end());
  };
  merge(deps.candidate_classes, &flat.classes);
  merge(deps.owner_classes, &flat.classes);
  merge(deps.coarse_classes, &flat.classes);
  merge(deps.candidate_attrs, &flat.attrs);
  merge(deps.self_attrs, &flat.attrs);
  merge(deps.coarse_attrs, &flat.attrs);
  // Buckets are std::sets but can overlap across buckets.
  auto finish = [](std::vector<std::int64_t>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  finish(&flat.classes);
  finish(&flat.attrs);
  return flat;
}

}  // namespace isis::live
