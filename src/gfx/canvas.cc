#include "gfx/canvas.h"

#include <algorithm>

namespace isis::gfx {

Canvas::Canvas(int width, int height)
    : width_(std::max(1, width)),
      height_(std::max(1, height)),
      cells_(static_cast<size_t>(width_) * height_) {}

void Canvas::Clear(char ch) {
  for (Cell& c : cells_) c = Cell{ch, kPlain};
}

void Canvas::Put(int x, int y, char ch, std::uint8_t style) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
  cells_[static_cast<size_t>(y) * width_ + x] = Cell{ch, style};
}

const Cell& Canvas::At(int x, int y) const {
  static const Cell kOut{};
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return kOut;
  return cells_[static_cast<size_t>(y) * width_ + x];
}

void Canvas::Text(int x, int y, std::string_view s, std::uint8_t style) {
  for (size_t i = 0; i < s.size(); ++i) {
    Put(x + static_cast<int>(i), y, s[i], style);
  }
}

void Canvas::Box(const Rect& r, std::uint8_t style) {
  if (r.w < 2 || r.h < 2) return;
  Put(r.x, r.y, '+', style);
  Put(r.right() - 1, r.y, '+', style);
  Put(r.x, r.bottom() - 1, '+', style);
  Put(r.right() - 1, r.bottom() - 1, '+', style);
  HLine(r.x + 1, r.y, r.w - 2, '-', style);
  HLine(r.x + 1, r.bottom() - 1, r.w - 2, '-', style);
  VLine(r.x, r.y + 1, r.h - 2, '|', style);
  VLine(r.right() - 1, r.y + 1, r.h - 2, '|', style);
}

void Canvas::HeavyBox(const Rect& r, std::uint8_t style) {
  if (r.w < 2 || r.h < 2) return;
  HLine(r.x, r.y, r.w, '#', style);
  HLine(r.x, r.bottom() - 1, r.w, '#', style);
  VLine(r.x, r.y + 1, r.h - 2, '#', style);
  VLine(r.right() - 1, r.y + 1, r.h - 2, '#', style);
}

void Canvas::HLine(int x, int y, int w, char ch, std::uint8_t style) {
  for (int i = 0; i < w; ++i) Put(x + i, y, ch, style);
}

void Canvas::VLine(int x, int y, int h, char ch, std::uint8_t style) {
  for (int i = 0; i < h; ++i) Put(x, y + i, ch, style);
}

void Canvas::Fill(const Rect& r, char ch, std::uint8_t style) {
  for (int yy = r.y; yy < r.bottom(); ++yy) {
    for (int xx = r.x; xx < r.right(); ++xx) Put(xx, yy, ch, style);
  }
}

void Canvas::AddStyle(const Rect& r, std::uint8_t style) {
  for (int yy = std::max(0, r.y); yy < std::min(height_, r.bottom()); ++yy) {
    for (int xx = std::max(0, r.x); xx < std::min(width_, r.right()); ++xx) {
      cells_[static_cast<size_t>(yy) * width_ + xx].style |= style;
    }
  }
}

std::string Canvas::ToString() const {
  std::string out;
  out.reserve(static_cast<size_t>(width_ + 1) * height_);
  for (int y = 0; y < height_; ++y) {
    size_t line_start = out.size();
    for (int x = 0; x < width_; ++x) {
      out += cells_[static_cast<size_t>(y) * width_ + x].ch;
    }
    // Trim trailing spaces for stable, diff-friendly screenshots.
    while (out.size() > line_start && out.back() == ' ') out.pop_back();
    out += '\n';
  }
  return out;
}

std::string Canvas::StyleString() const {
  std::string out;
  out.reserve(static_cast<size_t>(width_ + 1) * height_);
  for (int y = 0; y < height_; ++y) {
    size_t line_start = out.size();
    for (int x = 0; x < width_; ++x) {
      std::uint8_t s = cells_[static_cast<size_t>(y) * width_ + x].style;
      char c = ' ';
      if ((s & kBold) && (s & kReverse)) {
        c = 'B';
      } else if (s & kBold) {
        c = 'b';
      } else if (s & kReverse) {
        c = 'r';
      } else if (s & kDim) {
        c = 'd';
      }
      out += c;
    }
    while (out.size() > line_start && out.back() == ' ') out.pop_back();
    out += '\n';
  }
  return out;
}

}  // namespace isis::gfx
