/// \file pattern.h
/// \brief Characteristic fill patterns.
///
/// The paper (§3.2): every class carries "a characteristic fill pattern
/// unique to the class, which is provided automatically by the system", and
/// set-valued things (groupings, multivalued attribute swatches) show the
/// pattern "with a white border to signify that the ... value is a set".
/// Here a pattern index maps to a deterministic character texture; the
/// engine guarantees uniqueness of indices, and this module guarantees the
/// first kDistinctPatterns indices render distinguishably.

#ifndef ISIS_GFX_PATTERN_H_
#define ISIS_GFX_PATTERN_H_

#include <string>

#include "gfx/canvas.h"

namespace isis::gfx {

/// Number of visually distinct textures before indices cycle (cycled
/// indices stay machine-distinguishable via PatternTag).
inline constexpr int kDistinctPatterns = 16;

/// The texture character of pattern `pattern` at cell (x, y).
char PatternGlyph(int pattern, int x, int y);

/// A short printable tag for a pattern, e.g. "p07", unique per index; used
/// where a swatch is too small to distinguish textures.
std::string PatternTag(int pattern);

/// Fills `r` with pattern `pattern`. When `set_border` is true, a one-cell
/// white (blank) border frames the pattern — the paper's set marker.
void FillPattern(Canvas* canvas, const Rect& r, int pattern, bool set_border);

/// Draws a small inline swatch of `width` cells at (x, y) — used in
/// attribute rows to show the value class's pattern.
void PatternSwatch(Canvas* canvas, int x, int y, int width, int pattern,
                   bool set_border);

}  // namespace isis::gfx

#endif  // ISIS_GFX_PATTERN_H_
