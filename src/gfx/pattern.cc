#include "gfx/pattern.h"

#include <cstdio>

namespace isis::gfx {

namespace {

// Each pattern is a 2x4 tile of texture characters; 16 visually distinct
// tiles before cycling.
const char* const kTiles[kDistinctPatterns][2] = {
    {"....", "...."},  // 0
    {"::::", "::::"},  // 1
    {"/// ", " ///"},  // 2
    {"\\\\\\ ", " \\\\\\"},  // 3
    {"xxxx", "xxxx"},  // 4
    {"+-+-", "-+-+"},  // 5
    {"%%%%", "%%%%"},  // 6
    {"o.o.", ".o.o"},  // 7
    {"====", "    "},  // 8
    {"||||", "||||"},  // 9
    {"^^^^", "vvvv"},  // 10
    {"####", "####"},  // 11
    {"~~~~", "~~~~"},  // 12
    {"*  *", "  * "},  // 13
    {"<><>", "><><"},  // 14
    {"@@  ", "  @@"},  // 15
};

}  // namespace

char PatternGlyph(int pattern, int x, int y) {
  if (pattern < 0) pattern = 0;
  const char* const* tile = kTiles[pattern % kDistinctPatterns];
  return tile[(y % 2 + 2) % 2][(x % 4 + 4) % 4];
}

std::string PatternTag(int pattern) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "p%02d", pattern);
  return buf;
}

void FillPattern(Canvas* canvas, const Rect& r, int pattern, bool set_border) {
  Rect inner = r;
  if (set_border) {
    canvas->Fill(r, ' ');
    inner = Rect{r.x + 1, r.y + 1, r.w - 2, r.h - 2};
  }
  for (int y = inner.y; y < inner.bottom(); ++y) {
    for (int x = inner.x; x < inner.right(); ++x) {
      canvas->Put(x, y, PatternGlyph(pattern, x - inner.x, y - inner.y));
    }
  }
}

void PatternSwatch(Canvas* canvas, int x, int y, int width, int pattern,
                   bool set_border) {
  int start = 0;
  int end = width;
  if (set_border && width >= 3) {
    canvas->Put(x, y, ' ');
    canvas->Put(x + width - 1, y, ' ');
    start = 1;
    end = width - 1;
  }
  for (int i = start; i < end; ++i) {
    canvas->Put(x + i, y, PatternGlyph(pattern, i - start, 0));
  }
}

}  // namespace isis::gfx
