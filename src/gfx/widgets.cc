#include "gfx/widgets.h"

#include <algorithm>

namespace isis::gfx {

std::vector<Rect> Menu::Render(Canvas* canvas, const Rect& r) const {
  std::vector<Rect> hits;
  canvas->Box(r);
  canvas->Text(r.x + 2, r.y, " " + title_ + " ", kReverse);
  int row = r.y + 1;
  for (const Item& item : items_) {
    Rect hit{r.x + 1, row, r.w - 2, 1};
    hits.push_back(hit);
    if (row < r.bottom() - 1) {
      std::string label = item.key.empty() ? "   " : item.key;
      label.resize(3, ' ');
      std::uint8_t style = item.enabled ? kPlain : kDim;
      canvas->Text(r.x + 1, row, label, kDim);
      std::string command = item.command.substr(
          0, static_cast<size_t>(std::max(0, r.w - 7)));
      canvas->Text(r.x + 5, row, command, style);
    }
    ++row;
  }
  return hits;
}

void TextWindow::Set(const std::string& text) {
  lines_.clear();
  Append(text);
}

void TextWindow::Append(const std::string& line) {
  // Split embedded newlines so each stored line is renderable.
  size_t start = 0;
  while (true) {
    size_t nl = line.find('\n', start);
    if (nl == std::string::npos) {
      lines_.push_back(line.substr(start));
      break;
    }
    lines_.push_back(line.substr(start, nl - start));
    start = nl + 1;
  }
}

void TextWindow::Render(Canvas* canvas, const Rect& r) const {
  canvas->Box(r);
  int rows = r.h - 2;
  if (rows <= 0) return;
  size_t first = lines_.size() > static_cast<size_t>(rows)
                     ? lines_.size() - rows
                     : 0;
  int y = r.y + 1;
  for (size_t i = first; i < lines_.size(); ++i, ++y) {
    canvas->Text(r.x + 2, y,
                 std::string_view(lines_[i]).substr(
                     0, std::max(0, r.w - 4)));
  }
}

bool Window::Map(int lx, int ly, int* sx, int* sy) const {
  int x = rect_.x + (lx - pan_x_);
  int y = rect_.y + (ly - pan_y_);
  if (!rect_.Contains(x, y)) return false;
  *sx = x;
  *sy = y;
  return true;
}

void Window::EnsureVisible(const Rect& target) {
  // Horizontal.
  if (target.x < pan_x_) {
    pan_x_ = target.x;
  } else if (target.right() > pan_x_ + rect_.w) {
    pan_x_ = target.right() - rect_.w;
  }
  // Vertical.
  if (target.y < pan_y_) {
    pan_y_ = target.y;
  } else if (target.bottom() > pan_y_ + rect_.h) {
    pan_y_ = target.bottom() - rect_.h;
  }
}

void Window::Put(int lx, int ly, char ch, std::uint8_t style) {
  int sx, sy;
  if (Map(lx, ly, &sx, &sy)) canvas_->Put(sx, sy, ch, style);
}

void Window::Text(int lx, int ly, std::string_view s, std::uint8_t style) {
  for (size_t i = 0; i < s.size(); ++i) {
    Put(lx + static_cast<int>(i), ly, s[i], style);
  }
}

void Window::Box(const Rect& logical, std::uint8_t style) {
  if (logical.w < 2 || logical.h < 2) return;
  Put(logical.x, logical.y, '+', style);
  Put(logical.right() - 1, logical.y, '+', style);
  Put(logical.x, logical.bottom() - 1, '+', style);
  Put(logical.right() - 1, logical.bottom() - 1, '+', style);
  HLine(logical.x + 1, logical.y, logical.w - 2, '-', style);
  HLine(logical.x + 1, logical.bottom() - 1, logical.w - 2, '-', style);
  VLine(logical.x, logical.y + 1, logical.h - 2, '|', style);
  VLine(logical.right() - 1, logical.y + 1, logical.h - 2, '|', style);
}

void Window::HLine(int lx, int ly, int w, char ch, std::uint8_t style) {
  for (int i = 0; i < w; ++i) Put(lx + i, ly, ch, style);
}

void Window::VLine(int lx, int ly, int h, char ch, std::uint8_t style) {
  for (int i = 0; i < h; ++i) Put(lx, ly + i, ch, style);
}

void Window::AddStyle(const Rect& logical, std::uint8_t style) {
  Rect screen = ToScreen(logical);
  if (screen.w > 0 && screen.h > 0) canvas_->AddStyle(screen, style);
}

Rect Window::ToScreen(const Rect& logical) const {
  int x0 = rect_.x + (logical.x - pan_x_);
  int y0 = rect_.y + (logical.y - pan_y_);
  int x1 = x0 + logical.w;
  int y1 = y0 + logical.h;
  x0 = std::max(x0, rect_.x);
  y0 = std::max(y0, rect_.y);
  x1 = std::min(x1, rect_.right());
  y1 = std::min(y1, rect_.bottom());
  if (x1 <= x0 || y1 <= y0) return Rect{0, 0, 0, 0};
  return Rect{x0, y0, x1 - x0, y1 - y0};
}

void Window::ToLogical(int sx, int sy, int* lx, int* ly) const {
  *lx = sx - rect_.x + pan_x_;
  *ly = sy - rect_.y + pan_y_;
}

}  // namespace isis::gfx
