/// \file widgets.h
/// \brief The view building blocks of §3: menus, text windows, and pannable
/// windows over a logical plane.
///
/// "A view corresponds to an entire workstation screen. A view could
/// contain (1) menus, (2) text windows, and/or (3) windows" — all disjoint
/// rectangular areas within the view. Windows show a piece of the schema or
/// data plane through a pan offset.

#ifndef ISIS_GFX_WIDGETS_H_
#define ISIS_GFX_WIDGETS_H_

#include <string>
#include <vector>

#include "gfx/canvas.h"

namespace isis::gfx {

/// \brief A vertical command menu with optional function-key labels.
///
/// Commands are "standardized ... for each view" and "commands in different
/// views with the same names have the same semantics"; rendering keeps one
/// command per row so pick hit-testing is by row.
class Menu {
 public:
  struct Item {
    std::string command;   ///< Canonical command name, e.g. "view contents".
    std::string key;       ///< Function key label, e.g. "F3"; may be empty.
    bool enabled = true;
  };

  explicit Menu(std::string title) : title_(std::move(title)) {}

  void Add(std::string command, std::string key = "", bool enabled = true) {
    items_.push_back(Item{std::move(command), std::move(key), enabled});
  }
  const std::vector<Item>& items() const { return items_; }
  const std::string& title() const { return title_; }

  /// Renders into `r`; returns one hit rectangle per item (same order).
  std::vector<Rect> Render(Canvas* canvas, const Rect& r) const;

 private:
  std::string title_;
  std::vector<Item> items_;
};

/// \brief A text window: prompts, warnings and textual output (§3).
class TextWindow {
 public:
  /// Replaces the contents with one message.
  void Set(const std::string& text);
  /// Appends a line, scrolling older lines away on render if needed.
  void Append(const std::string& line);
  void Clear() { lines_.clear(); }
  const std::vector<std::string>& lines() const { return lines_; }

  /// Renders the last lines that fit into `r` (boxed).
  void Render(Canvas* canvas, const Rect& r) const;

 private:
  std::vector<std::string> lines_;
};

/// \brief A window: a clipped, pannable viewport onto a logical plane.
///
/// Drawing calls take logical coordinates; the window maps them through its
/// pan offset into the screen rect, clipping at the edges. "Commands are
/// always provided for manually changing the window position (e.g. panning
/// commands)."
class Window {
 public:
  Window(Canvas* canvas, const Rect& screen_rect)
      : canvas_(canvas), rect_(screen_rect) {}

  const Rect& rect() const { return rect_; }
  int pan_x() const { return pan_x_; }
  int pan_y() const { return pan_y_; }
  void Pan(int dx, int dy) {
    pan_x_ += dx;
    pan_y_ += dy;
  }
  void SetPan(int x, int y) {
    pan_x_ = x;
    pan_y_ = y;
  }

  /// Pans so that the logical rect `target` is visible (minimal movement).
  void EnsureVisible(const Rect& target);

  // Logical-coordinate drawing (clipped to the window).
  void Put(int lx, int ly, char ch, std::uint8_t style = kPlain);
  void Text(int lx, int ly, std::string_view s, std::uint8_t style = kPlain);
  void Box(const Rect& logical, std::uint8_t style = kPlain);
  void HLine(int lx, int ly, int w, char ch = '-',
             std::uint8_t style = kPlain);
  void VLine(int lx, int ly, int h, char ch = '|',
             std::uint8_t style = kPlain);
  void AddStyle(const Rect& logical, std::uint8_t style);

  /// Screen rect of a logical rect (possibly clipped to zero size); used to
  /// register hit regions for picked objects.
  Rect ToScreen(const Rect& logical) const;
  /// Logical position of a screen cell.
  void ToLogical(int sx, int sy, int* lx, int* ly) const;

 private:
  bool Map(int lx, int ly, int* sx, int* sy) const;

  Canvas* canvas_;
  Rect rect_;
  int pan_x_ = 0;
  int pan_y_ = 0;
};

}  // namespace isis::gfx

#endif  // ISIS_GFX_WIDGETS_H_
