/// \file canvas.h
/// \brief Deterministic character-cell canvas — the stand-in for the Apollo
/// bitmap display driven by Brown's ASH graphics package.
///
/// Every visual element the paper describes maps onto cells with style
/// bits: reverse video (baseclass name sections), bold (selected members,
/// "highlighted with a large boldface type"), borders, characteristic fill
/// patterns, and icons (the hand). A rendered screen serializes to a
/// string, so Figures 1-12 are reproducible byte-for-byte and tests can
/// assert on exact screens.

#ifndef ISIS_GFX_CANVAS_H_
#define ISIS_GFX_CANVAS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace isis::gfx {

/// Cell style bits.
enum Style : std::uint8_t {
  kPlain = 0,
  kBold = 1 << 0,     ///< Selected members ("large boldface type").
  kReverse = 1 << 1,  ///< Baseclass name sections ("in reverse video").
  kDim = 1 << 2,      ///< De-emphasized chrome.
};

/// One character cell.
struct Cell {
  char ch = ' ';
  std::uint8_t style = kPlain;
};

/// An axis-aligned rectangle in cell coordinates.
struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  bool Contains(int px, int py) const {
    return px >= x && px < x + w && py >= y && py < y + h;
  }
  bool Intersects(const Rect& o) const {
    return x < o.x + o.w && o.x < x + w && y < o.y + o.h && o.y < y + h;
  }
  int right() const { return x + w; }
  int bottom() const { return y + h; }
};

/// \brief A fixed-size grid of styled character cells.
class Canvas {
 public:
  Canvas(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  void Clear(char ch = ' ');

  /// Writes one cell; out-of-bounds writes are clipped silently.
  void Put(int x, int y, char ch, std::uint8_t style = kPlain);

  const Cell& At(int x, int y) const;

  /// Writes a string starting at (x, y), clipped at the right edge.
  void Text(int x, int y, std::string_view s, std::uint8_t style = kPlain);

  /// Draws a single-line box (`+--+` corners, `|`/`-` edges).
  void Box(const Rect& r, std::uint8_t style = kPlain);

  /// Draws a double-struck box (`#` corners/edges) used for emphasis.
  void HeavyBox(const Rect& r, std::uint8_t style = kPlain);

  void HLine(int x, int y, int w, char ch = '-', std::uint8_t style = kPlain);
  void VLine(int x, int y, int h, char ch = '|', std::uint8_t style = kPlain);

  /// Fills a rect with one character.
  void Fill(const Rect& r, char ch, std::uint8_t style = kPlain);

  /// ORs `style` over every cell of the rect (e.g. bolding a region).
  void AddStyle(const Rect& r, std::uint8_t style);

  /// The characters only, one line per row, trailing spaces trimmed.
  std::string ToString() const;

  /// Per-cell style map aligned with ToString before trimming: ' ' plain,
  /// 'b' bold, 'r' reverse, 'B' bold+reverse, 'd' dim.
  std::string StyleString() const;

 private:
  int width_;
  int height_;
  std::vector<Cell> cells_;
};

}  // namespace isis::gfx

#endif  // ISIS_GFX_CANVAS_H_
