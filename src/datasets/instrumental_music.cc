#include "datasets/instrumental_music.h"

#include <cstdio>
#include <cstdlib>

#include "query/eval.h"

namespace isis::datasets {

using query::Atom;
using query::NormalForm;
using query::Predicate;
using query::SetOp;
using query::Term;
using query::Workspace;
using sdm::Database;
using sdm::EntitySet;
using sdm::Membership;
using sdm::Schema;

namespace {

/// The dataset is a constant; abort loudly on any construction failure.
void Must(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "instrumental_music: %s: %s\n", what,
                 st.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T MustGet(Result<T> r, const char* what) {
  Must(r.status(), what);
  return std::move(r).ValueOrDie();
}

}  // namespace

std::unique_ptr<Workspace> BuildInstrumentalMusic() {
  auto ws = std::make_unique<Workspace>();
  ws->set_name("Instrumental_Music");
  Database& db = ws->db();

  // --- Baseclasses (in the paper's order). ---
  ClassId musicians =
      MustGet(db.CreateBaseclass("musicians", "stage_name"), "musicians");
  ClassId instruments =
      MustGet(db.CreateBaseclass("instruments", "name"), "instruments");
  ClassId music_groups =
      MustGet(db.CreateBaseclass("music_groups", "name"), "music_groups");
  ClassId families =
      MustGet(db.CreateBaseclass("families", "name"), "families");

  // --- Attributes. ---
  AttributeId plays = MustGet(
      db.CreateAttribute(musicians, "plays", instruments, true), "plays");
  AttributeId union_attr = MustGet(
      db.CreateAttribute(musicians, "union", Schema::kBooleans(), false),
      "union");
  AttributeId family = MustGet(
      db.CreateAttribute(instruments, "family", families, false), "family");
  AttributeId popular = MustGet(
      db.CreateAttribute(instruments, "popular", Schema::kBooleans(), false),
      "popular");
  AttributeId members = MustGet(
      db.CreateAttribute(music_groups, "members", musicians, true),
      "members");
  AttributeId size_attr = MustGet(
      db.CreateAttribute(music_groups, "size", Schema::kIntegers(), false),
      "size");
  AttributeId includes = MustGet(
      db.CreateAttribute(music_groups, "includes", families, true),
      "includes");

  // --- Groupings. ---
  Must(db.CreateGrouping("by_instrument", musicians, plays).status(),
       "by_instrument");
  Must(db.CreateGrouping("work_status", musicians, union_attr).status(),
       "work_status");
  Must(db.CreateGrouping("by_family", instruments, family).status(),
       "by_family");

  // --- Subclasses. ---
  ClassId play_strings = MustGet(
      db.CreateSubclass("play_strings", musicians, Membership::kDerived),
      "play_strings");
  AttributeId in_group = MustGet(
      db.CreateAttribute(play_strings, "in_group", Schema::kBooleans(), false),
      "in_group");
  Must(db.CreateGrouping("by_in_group", play_strings, in_group).status(),
       "by_in_group");
  ClassId soloists = MustGet(
      db.CreateSubclass("soloists", musicians, Membership::kEnumerated),
      "soloists");

  // --- Data: families. ---
  auto family_of = [&](const char* name) {
    return MustGet(db.CreateEntity(families, name), name);
  };
  EntityId stringed = family_of("stringed");
  EntityId brass = family_of("brass");
  EntityId woodwind = family_of("woodwind");
  EntityId percussion = family_of("percussion");
  EntityId keyboard = family_of("keyboard");

  // --- Data: instruments. flute and oboe carry the deliberate error the
  // session corrects (family = brass instead of woodwind). ---
  struct Inst {
    const char* name;
    EntityId fam;
    bool popular;
  };
  const Inst kInstruments[] = {
      {"flute", brass, true},       // wrong on purpose (paper §4.2)
      {"oboe", brass, false},       // wrong on purpose (paper §4.2)
      {"violin", stringed, true},  {"viola", stringed, false},
      {"cello", stringed, true},   {"guitar", stringed, true},
      {"harp", stringed, false},   {"trumpet", brass, true},
      {"trombone", brass, false},  {"tuba", brass, false},
      {"clarinet", woodwind, true}, {"bassoon", woodwind, false},
      {"drums", percussion, true}, {"cymbals", percussion, false},
      {"timpani", percussion, false}, {"piano", keyboard, true},
      {"organ", keyboard, false},
  };
  for (const Inst& inst : kInstruments) {
    EntityId e = MustGet(db.CreateEntity(instruments, inst.name), inst.name);
    Must(db.SetSingle(e, family, inst.fam), "family");
    Must(db.SetSingle(e, popular, db.InternBoolean(inst.popular)), "popular");
  }
  auto instrument = [&](const char* name) {
    return MustGet(db.FindEntity(instruments, name), name);
  };

  // --- Data: musicians. ---
  struct Mus {
    const char* name;
    std::vector<const char*> plays;
    bool in_union;
  };
  const Mus kMusicians[] = {
      {"Edith", {"viola", "violin"}, true},
      {"Karen", {"cello"}, true},
      {"Lucy", {"violin", "harp"}, false},
      {"Mark", {"piano", "organ"}, true},
      {"Ray", {"trumpet"}, true},
      {"Sonia", {"flute", "oboe"}, false},
      {"Theo", {"drums", "cymbals"}, true},
      {"Vera", {"guitar"}, false},
      {"Walt", {"tuba", "trombone"}, true},
      {"Yoko", {"clarinet", "bassoon"}, true},
      {"Zack", {"piano"}, false},
  };
  for (const Mus& m : kMusicians) {
    EntityId e = MustGet(db.CreateEntity(musicians, m.name), m.name);
    for (const char* inst : m.plays) {
      Must(db.AddToMulti(e, plays, instrument(inst)), "plays");
    }
    Must(db.SetSingle(e, union_attr, db.InternBoolean(m.in_union)), "union");
  }
  auto musician = [&](const char* name) {
    return MustGet(db.FindEntity(musicians, name), name);
  };

  // --- Data: music groups. Exactly one quartet includes a piano player
  // (the LaBelle Quartet, with Edith), matching the session's outcome. ---
  struct Group {
    const char* name;
    std::vector<const char*> members;
  };
  const Group kGroups[] = {
      {"LaBelle Quartet", {"Edith", "Karen", "Lucy", "Mark"}},
      {"Brass Trio", {"Ray", "Walt", "Theo"}},
      {"String Quartet West", {"Edith", "Karen", "Lucy", "Vera"}},
      {"Woodwind Quintet", {"Sonia", "Yoko", "Ray", "Walt", "Vera"}},
      {"Duo Zephyr", {"Zack", "Sonia"}},
  };
  for (const Group& g : kGroups) {
    EntityId e = MustGet(db.CreateEntity(music_groups, g.name), g.name);
    EntitySet mset;
    for (const char* m : g.members) mset.insert(musician(m));
    Must(db.SetMulti(e, members, mset), "members");
    Must(db.SetSingle(e, size_attr,
                      db.InternInteger(static_cast<std::int64_t>(
                          g.members.size()))),
         "size");
    // includes: the families of the instruments the group's members play.
    AttributeId path[] = {members, plays, family};
    EntitySet fams = db.EvaluateMap(e, path);
    Must(db.SetMulti(e, includes, fams), "includes");
  }

  // --- play_strings: derived membership — "those musicians who play at
  // least one instrument whose attribute family has the value stringed". ---
  {
    Predicate pred;
    Atom atom;
    atom.lhs = Term::Candidate({plays, family});
    atom.op = SetOp::kWeakMatch;
    atom.rhs = Term::Constant({stringed});
    pred.AddAtom(atom, 0);
    pred.form = NormalForm::kConjunctive;
    Must(ws->DefineSubclassMembership(play_strings, pred), "play_strings");
  }
  // in_group: YES iff the string player is a value of the members attribute
  // of some music group (stored, per the paper's description).
  for (EntityId e : db.Members(play_strings)) {
    bool in_some = false;
    for (EntityId g : db.Members(music_groups)) {
      if (db.GetMulti(g, members).count(e) > 0) {
        in_some = true;
        break;
      }
    }
    Must(db.SetSingle(e, in_group, db.InternBoolean(in_some)), "in_group");
  }

  // --- soloists: user-defined (hand-picked). ---
  for (const char* name : {"Edith", "Mark", "Yoko"}) {
    Must(db.AddToClass(musician(name), soloists), "soloists");
  }

  return ws;
}

}  // namespace isis::datasets
