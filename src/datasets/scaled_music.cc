#include "datasets/scaled_music.h"

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"

namespace isis::datasets {

using query::Workspace;
using sdm::Database;
using sdm::EntitySet;
using sdm::Schema;

namespace {

void Must(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "scaled_music: %s: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T MustGet(Result<T> r, const char* what) {
  Must(r.status(), what);
  return std::move(r).ValueOrDie();
}

}  // namespace

std::unique_ptr<Workspace> BuildScaledMusic(int scale, std::uint64_t seed) {
  return BuildScaledMusic(scale, seed, Database::Options{});
}

std::unique_ptr<Workspace> BuildScaledMusic(int scale, std::uint64_t seed,
                                            Database::Options options) {
  auto ws = std::make_unique<Workspace>(options);
  ws->set_name("Scaled_Music_x" + std::to_string(scale));
  Database& db = ws->db();
  Rng rng(seed);

  ClassId musicians =
      MustGet(db.CreateBaseclass("musicians", "stage_name"), "musicians");
  ClassId instruments =
      MustGet(db.CreateBaseclass("instruments", "name"), "instruments");
  ClassId music_groups =
      MustGet(db.CreateBaseclass("music_groups", "name"), "music_groups");
  ClassId families =
      MustGet(db.CreateBaseclass("families", "name"), "families");

  AttributeId plays = MustGet(
      db.CreateAttribute(musicians, "plays", instruments, true), "plays");
  Must(db.CreateAttribute(musicians, "union", Schema::kBooleans(), false)
           .status(),
       "union");
  AttributeId family = MustGet(
      db.CreateAttribute(instruments, "family", families, false), "family");
  Must(db.CreateAttribute(instruments, "popular", Schema::kBooleans(), false)
           .status(),
       "popular");
  AttributeId members = MustGet(
      db.CreateAttribute(music_groups, "members", musicians, true),
      "members");
  AttributeId size_attr = MustGet(
      db.CreateAttribute(music_groups, "size", Schema::kIntegers(), false),
      "size");
  AttributeId includes = MustGet(
      db.CreateAttribute(music_groups, "includes", families, true),
      "includes");
  Must(db.CreateGrouping("by_family", instruments, family).status(),
       "by_family");

  const int n_families = 8;
  const int n_instruments = std::max(4, 2 * scale);
  const int n_musicians = std::max(8, 16 * scale);
  const int n_groups = std::max(2, 3 * scale);

  std::vector<EntityId> fam_entities;
  for (int i = 0; i < n_families; ++i) {
    fam_entities.push_back(MustGet(
        db.CreateEntity(families, "family" + std::to_string(i)), "family"));
  }
  std::vector<EntityId> inst_entities;
  for (int i = 0; i < n_instruments; ++i) {
    EntityId e = MustGet(
        db.CreateEntity(instruments, "inst" + std::to_string(i)), "inst");
    Must(db.SetSingle(e, family, fam_entities[rng.Below(n_families)]),
         "family value");
    inst_entities.push_back(e);
  }
  AttributeId union_attr =
      MustGet(db.schema().FindAttribute(musicians, "union"), "find union");
  AttributeId popular =
      MustGet(db.schema().FindAttribute(instruments, "popular"), "popular");
  for (EntityId e : inst_entities) {
    Must(db.SetSingle(e, popular, db.InternBoolean(rng.Chance(0.4))),
         "popular value");
  }
  std::vector<EntityId> musician_entities;
  for (int i = 0; i < n_musicians; ++i) {
    EntityId e = MustGet(
        db.CreateEntity(musicians, "musician" + std::to_string(i)), "mus");
    EntitySet kit;
    int k = 1 + static_cast<int>(rng.Below(3));
    for (int j = 0; j < k; ++j) {
      kit.insert(inst_entities[rng.Below(inst_entities.size())]);
    }
    Must(db.SetMulti(e, plays, kit), "plays value");
    Must(db.SetSingle(e, union_attr, db.InternBoolean(rng.Chance(0.6))),
         "union value");
    musician_entities.push_back(e);
  }
  for (int i = 0; i < n_groups; ++i) {
    EntityId g = MustGet(
        db.CreateEntity(music_groups, "group" + std::to_string(i)), "grp");
    EntitySet crew;
    int k = 2 + static_cast<int>(rng.Below(5));  // sizes 2..6
    while (static_cast<int>(crew.size()) < k) {
      crew.insert(musician_entities[rng.Below(musician_entities.size())]);
    }
    Must(db.SetMulti(g, members, crew), "members value");
    Must(db.SetSingle(g, size_attr,
                      db.InternInteger(static_cast<std::int64_t>(crew.size()))),
         "size value");
    AttributeId path[] = {members, plays, family};
    Must(db.SetMulti(g, includes, db.EvaluateMap(g, path)), "includes");
  }
  return ws;
}

ScaledMusicHandles ResolveScaledMusic(const Workspace& ws) {
  const Schema& s = ws.db().schema();
  ScaledMusicHandles h;
  h.musicians = MustGet(s.FindClass("musicians"), "resolve class");
  h.instruments = MustGet(s.FindClass("instruments"), "resolve class");
  h.music_groups = MustGet(s.FindClass("music_groups"), "resolve class");
  h.families = MustGet(s.FindClass("families"), "resolve class");
  h.plays = MustGet(s.FindAttribute(h.musicians, "plays"), "resolve attr");
  h.union_attr =
      MustGet(s.FindAttribute(h.musicians, "union"), "resolve attr");
  h.family = MustGet(s.FindAttribute(h.instruments, "family"), "resolve attr");
  h.popular =
      MustGet(s.FindAttribute(h.instruments, "popular"), "resolve attr");
  h.members =
      MustGet(s.FindAttribute(h.music_groups, "members"), "resolve attr");
  h.size = MustGet(s.FindAttribute(h.music_groups, "size"), "resolve attr");
  h.includes =
      MustGet(s.FindAttribute(h.music_groups, "includes"), "resolve attr");
  h.by_family = MustGet(s.FindGrouping("by_family"), "resolve grouping");
  return h;
}

}  // namespace isis::datasets
