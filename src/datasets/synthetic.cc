#include "datasets/synthetic.h"

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"

namespace isis::datasets {

using query::Workspace;
using sdm::Database;
using sdm::EntitySet;
using sdm::Membership;
using sdm::Schema;

namespace {

void Must(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "synthetic: %s: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T MustGet(Result<T> r, const char* what) {
  Must(r.status(), what);
  return std::move(r).ValueOrDie();
}

std::string ClassName(int i) { return "B" + std::to_string(i); }
std::string SubName(int i, int d) {
  return "B" + std::to_string(i) + "_S" + std::to_string(d);
}
std::string AttrName(int i, int j) {
  return "a" + std::to_string(i) + "_" + std::to_string(j);
}
std::string GroupingName(int i, int j) {
  return "G" + std::to_string(i) + "_" + std::to_string(j);
}
std::string EntityName(int i, int k) {
  return "e" + std::to_string(i) + "_" + std::to_string(k);
}

}  // namespace

std::unique_ptr<Workspace> BuildSynthetic(const SyntheticParams& p) {
  Database::Options options;
  options.incremental_groupings = p.incremental_groupings;
  auto ws = std::make_unique<Workspace>(options);
  ws->set_name("synthetic");
  Database& db = ws->db();
  Rng rng(p.seed);

  const int n = std::max(1, p.baseclasses);
  std::vector<ClassId> bases;
  for (int i = 0; i < n; ++i) {
    bases.push_back(
        MustGet(db.CreateBaseclass(ClassName(i), "name"), "baseclass"));
  }

  // Attributes: a<i>_0 singlevalued into the next tree, a<i>_1 multivalued
  // into the tree after that, the rest singlevalued INTEGERs with small
  // ranges (so groupings have low-cardinality indices).
  std::vector<std::vector<AttributeId>> attrs(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < std::max(2, p.attributes_per_class); ++j) {
      ClassId value_class;
      bool multivalued = false;
      if (j == 0) {
        value_class = bases[(i + 1) % n];
      } else if (j == 1) {
        value_class = bases[(i + 2) % n];
        multivalued = true;
      } else {
        value_class = Schema::kIntegers();
      }
      attrs[i].push_back(MustGet(
          db.CreateAttribute(bases[i], AttrName(i, j), value_class,
                             multivalued),
          "attribute"));
    }
  }

  // Subclass chains (enumerated).
  std::vector<std::vector<ClassId>> chains(n);
  for (int i = 0; i < n; ++i) {
    ClassId parent = bases[i];
    for (int d = 1; d <= p.subclass_depth; ++d) {
      parent = MustGet(
          db.CreateSubclass(SubName(i, d), parent, Membership::kEnumerated),
          "subclass");
      chains[i].push_back(parent);
    }
  }

  // Groupings over the first attributes.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < p.groupings && j < static_cast<int>(attrs[i].size());
         ++j) {
      Must(db.CreateGrouping(GroupingName(i, j), bases[i], attrs[i][j])
               .status(),
           "grouping");
    }
  }

  // Entities.
  std::vector<std::vector<EntityId>> entities(n);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < p.entities_per_class; ++k) {
      entities[i].push_back(
          MustGet(db.CreateEntity(bases[i], EntityName(i, k)), "entity"));
    }
  }

  // Values and subclass memberships.
  for (int i = 0; i < n; ++i) {
    const std::vector<EntityId>& next = entities[(i + 1) % n];
    const std::vector<EntityId>& next2 = entities[(i + 2) % n];
    for (int k = 0; k < p.entities_per_class; ++k) {
      EntityId e = entities[i][k];
      // a<i>_0: clustered values so grouping blocks are non-trivial.
      if (!next.empty()) {
        Must(db.SetSingle(e, attrs[i][0],
                          next[rng.Below(std::max<std::uint64_t>(
                              1, next.size() / 4 + 1))]),
             "single value");
      }
      if (!next2.empty()) {
        EntitySet set;
        for (int f = 0; f < p.multi_fanout; ++f) {
          set.insert(next2[rng.Below(next2.size())]);
        }
        Must(db.SetMulti(e, attrs[i][1], set), "multi value");
      }
      for (size_t j = 2; j < attrs[i].size(); ++j) {
        Must(db.SetSingle(e, attrs[i][j],
                          db.InternInteger(static_cast<std::int64_t>(
                              rng.Below(10)))),
             "int value");
      }
      // Every second entity descends one subclass level deeper.
      int depth = 0;
      int stride = 2;
      for (ClassId sub : chains[i]) {
        if (k % stride == 0) {
          Must(db.AddToClass(e, sub), "subclass member");
          stride *= 2;
          ++depth;
        } else {
          break;
        }
      }
      (void)depth;
    }
  }

  return ws;
}

SyntheticHandles ResolveSynthetic(const Workspace& ws,
                                  const SyntheticParams& p) {
  SyntheticHandles h;
  const Schema& schema = ws.db().schema();
  for (int i = 0; i < std::max(1, p.baseclasses); ++i) {
    ClassId cls = MustGet(schema.FindClass(ClassName(i)), "find baseclass");
    h.baseclasses.push_back(cls);
    h.single_attrs.push_back(
        MustGet(schema.FindAttribute(cls, AttrName(i, 0)), "find attribute"));
    h.multi_attrs.push_back(
        MustGet(schema.FindAttribute(cls, AttrName(i, 1)), "find attribute"));
    for (int j = 0; j < p.groupings; ++j) {
      Result<GroupingId> g = schema.FindGrouping(GroupingName(i, j));
      if (g.ok()) h.groupings.push_back(*g);
    }
  }
  return h;
}

}  // namespace isis::datasets
