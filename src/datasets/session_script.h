/// \file session_script.h
/// \brief The paper's sample session (§4.2) as a replayable event script.
///
/// The session is split into segments; after applying segment k to a fresh
/// Instrumental_Music session, the rendered screen is the reproduction of
/// the paper's figure named by that segment. Replaying all segments in
/// order runs the complete session, ending with the database saved as
/// `entertainment` (paper: "he saves this new database as entertainment").

#ifndef ISIS_DATASETS_SESSION_SCRIPT_H_
#define ISIS_DATASETS_SESSION_SCRIPT_H_

#include <string>
#include <vector>

namespace isis::datasets {

/// One figure of the paper: the script segment leading to it and a short
/// caption (from the paper's figure captions).
struct SessionFigure {
  std::string name;     ///< "figure1" ... "figure12".
  std::string caption;  ///< The paper's caption.
  std::string script;   ///< Events to apply after the previous segment.
};

/// The twelve figure segments, in session order.
const std::vector<SessionFigure>& PaperSessionFigures();

/// The tail of the session after Figure 12 (save as `entertainment`, stop).
std::string PaperSessionEpilogue();

/// The whole session as one script.
std::string FullPaperSession();

}  // namespace isis::datasets

#endif  // ISIS_DATASETS_SESSION_SCRIPT_H_
