/// \file synthetic.h
/// \brief Deterministic synthetic SDM workloads for benchmarks and property
/// tests.
///
/// The paper evaluates on a hand-built example database; the quantitative
/// benches (predicate scaling, grouping maintenance, integrity cost,
/// navigation) need databases of controllable size with the same shape:
/// several baseclass trees, single/multivalued attributes wired across
/// trees, groupings on low-cardinality attributes, and subclass chains.

#ifndef ISIS_DATASETS_SYNTHETIC_H_
#define ISIS_DATASETS_SYNTHETIC_H_

#include <memory>

#include "query/workspace.h"

namespace isis::datasets {

/// Parameters of a synthetic workspace.
struct SyntheticParams {
  int baseclasses = 3;          ///< User baseclass trees.
  int subclass_depth = 2;       ///< Enumerated-subclass chain under each.
  int attributes_per_class = 3; ///< Own attributes per baseclass.
  int entities_per_class = 100; ///< Entities per baseclass.
  int multi_fanout = 3;         ///< Values per multivalued attribute slot.
  int groupings = 2;            ///< Groupings over singlevalued attributes.
  std::uint64_t seed = 42;
  bool incremental_groupings = true;
};

/// Builds a consistent synthetic workspace. Deterministic in `params`.
std::unique_ptr<query::Workspace> BuildSynthetic(const SyntheticParams& params);

/// Handles to interesting objects inside a synthetic workspace (resolved by
/// the fixed naming scheme: class `B<i>`, subclass `B<i>_S<d>`, attribute
/// `a<i>_<j>`, grouping `G<i>_<j>`, entity `e<i>_<k>`).
struct SyntheticHandles {
  std::vector<ClassId> baseclasses;
  std::vector<AttributeId> single_attrs;  ///< One per baseclass: a<i>_0.
  std::vector<AttributeId> multi_attrs;   ///< One per baseclass: a<i>_1.
  std::vector<GroupingId> groupings;
};

/// Resolves the handles of a workspace built by BuildSynthetic.
SyntheticHandles ResolveSynthetic(const query::Workspace& ws,
                                  const SyntheticParams& params);

}  // namespace isis::datasets

#endif  // ISIS_DATASETS_SYNTHETIC_H_
