/// \file instrumental_music.h
/// \brief The paper's sample database (§4.1), reconstructed exactly.
///
/// Schema: baseclasses musicians (naming attribute stage_name; plays ++>
/// instruments; union -> YES/NO), instruments (name; family -> families;
/// popular -> YES/NO), music_groups (name; members ++> musicians; size ->
/// INTEGER; includes ++> families), families (name). Groupings:
/// by_instrument and work_status on musicians, by_family on instruments,
/// by_in_group on play_strings. Subclasses: play_strings (derived: plays at
/// least one stringed instrument; attribute in_group -> YES/NO) and
/// soloists (user-defined).
///
/// The data deliberately contains the error of §4.2: flute and oboe start
/// with family = brass, which the sample session corrects to woodwind. One
/// music group is a quartet (size 4) with a piano player, so the session's
/// `quartets` query finds exactly one group.

#ifndef ISIS_DATASETS_INSTRUMENTAL_MUSIC_H_
#define ISIS_DATASETS_INSTRUMENTAL_MUSIC_H_

#include <memory>

#include "query/workspace.h"

namespace isis::datasets {

/// Builds the Instrumental_Music workspace. Dies on internal error (the
/// dataset is a fixed constant; any failure is a bug).
std::unique_ptr<query::Workspace> BuildInstrumentalMusic();

}  // namespace isis::datasets

#endif  // ISIS_DATASETS_INSTRUMENTAL_MUSIC_H_
