#include "datasets/session_script.h"

namespace isis::datasets {

const std::vector<SessionFigure>& PaperSessionFigures() {
  static const std::vector<SessionFigure> kFigures = {
      {"figure1",
       "The inheritance forest view with soloists as the schema selection",
       "pick class:soloists\n"},

      {"figure2",
       "The semantic network view with instruments as the schema selection",
       "cmd view associations\n"
       "pick class:instruments\n"},

      {"figure3",
       "Selecting the entity oboe from the instruments class at the data "
       "level",
       "cmd pop\n"
       "cmd view contents\n"
       "pick member:flute\n"
       "pick member:oboe\n"},

      {"figure4",
       "After following the family attribute for the entities flute and "
       "oboe",
       "cmd follow\n"
       "pick attr:family\n"},

      {"figure5",
       "Updating the family attribute for both flute and oboe",
       "pick member:brass\n"
       "pick member:woodwind\n"
       "cmd (re)assign att. value\n"},

      {"figure6",
       "The by_family grouping at the data level",
       "cmd view forest\n"
       "pick grouping:by_family\n"
       "cmd display predicate\n"
       "cmd view contents\n"
       "pick member:percussion\n"},

      {"figure7",
       "After following percussion (from the by_family grouping) into the "
       "instruments class",
       "cmd follow\n"},

      {"figure8",
       "Creating a subclass of music_groups",
       "cmd view forest\n"
       "pick class:music_groups\n"
       "cmd create subclass\n"
       "type quartets\n"},

      {"figure9",
       "Constructing a predicate to define the membership of the quartets "
       "class",
       "cmd (re)define membership\n"
       "# atom A: the size of the group is four\n"
       "pick atom:A\n"
       "pick clause:2\n"
       "cmd edit\n"
       "pick attr:size\n"
       "pick op:=\n"
       "cmd rhs constant\n"
       "pick member:4\n"
       "cmd accept constant\n"
       "# atom E: at least one musician in the quartet plays the piano\n"
       "pick atom:E\n"
       "pick clause:1\n"
       "cmd edit\n"
       "pick attr:members\n"
       "pick attr:plays\n"
       "pick op:]=\n"
       "cmd rhs constant\n"
       "cmd members down\n"
       "pick member:piano\n"
       "cmd accept constant\n"
       "cmd switch and/or\n"},

      {"figure10",
       "A completed derivation for the attribute all_inst in the quartets "
       "class",
       "cmd commit\n"
       "cmd create attribute\n"
       "type all_inst\n"
       "cmd (re)specify value class\n"
       "pick class:instruments\n"
       "cmd (re)define derivation\n"
       "cmd hand\n"
       "pick attr:members\n"
       "pick attr:plays\n"},

      {"figure11",
       "Changing the data selection",
       "cmd commit\n"
       "pick class:quartets\n"
       "cmd view contents\n"
       "pick member:LaBelle Quartet\n"
       "cmd follow\n"
       "pick attr:members\n"
       "pick member:Karen\n"
       "pick member:Lucy\n"
       "pick member:Mark\n"},

      {"figure12",
       "The inheritance forest with the new user-defined subclass "
       "edith_plays that was created at the data level",
       "cmd follow\n"
       "pick attr:plays\n"
       "cmd make subclass\n"
       "type edith_plays\n"
       "cmd view forest\n"},
  };
  return kFigures;
}

std::string PaperSessionEpilogue() {
  return
      "cmd save\n"
      "type entertainment\n"
      "cmd stop\n";
}

std::string FullPaperSession() {
  std::string out;
  for (const SessionFigure& f : PaperSessionFigures()) {
    out += "# --- " + f.name + ": " + f.caption + "\n";
    out += f.script;
  }
  out += "# --- epilogue\n";
  out += PaperSessionEpilogue();
  return out;
}

}  // namespace isis::datasets
