/// \file scaled_music.h
/// \brief A size-parameterized version of the paper's Instrumental_Music
/// database, used by the quantitative benchmarks.
///
/// Shape matches §4.1 — musicians play instruments, instruments belong to
/// families, music groups have members/size/includes — but with `scale`
/// controlling cardinalities: ~16*scale musicians, 2*scale instruments,
/// 3*scale groups, 8 families. Deterministic in (scale, seed).

#ifndef ISIS_DATASETS_SCALED_MUSIC_H_
#define ISIS_DATASETS_SCALED_MUSIC_H_

#include <memory>

#include "query/workspace.h"

namespace isis::datasets {

/// Resolved handles into a scaled music workspace.
struct ScaledMusicHandles {
  ClassId musicians, instruments, music_groups, families;
  AttributeId plays, union_attr, family, popular, members, size, includes;
  GroupingId by_family;
};

std::unique_ptr<query::Workspace> BuildScaledMusic(int scale,
                                                   std::uint64_t seed = 7);

/// Same content, custom database options (e.g. grouping maintenance
/// strategy for the A1 ablation). Deterministic in (scale, seed).
std::unique_ptr<query::Workspace> BuildScaledMusic(
    int scale, std::uint64_t seed, sdm::Database::Options options);

ScaledMusicHandles ResolveScaledMusic(const query::Workspace& ws);

}  // namespace isis::datasets

#endif  // ISIS_DATASETS_SCALED_MUSIC_H_
