/// \file state.h
/// \brief The ISIS session state — Diagram 1 of the paper.
///
/// "The state of ISIS consists of a schema selection (the class, attribute,
/// or grouping being examined) and a data selection." The session moves
/// between the schema level (inheritance forest, semantic network,
/// predicate worksheet) and the data level; temporary visits (selecting a
/// constant from the worksheet, naming a subclass created at the data
/// level) preserve both selections on return.

#ifndef ISIS_UI_STATE_H_
#define ISIS_UI_STATE_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "query/predicate.h"
#include "sdm/database.h"

namespace isis::ui {

/// Which view fills the screen (Diagram 1's boxes).
enum class Level {
  kInheritanceForest,
  kSemanticNetwork,
  kPredicateWorksheet,
  kDataLevel,
};

const char* LevelToString(Level level);

/// S — the schema selection.
struct SchemaSelection {
  enum class Kind { kNone, kClass, kGrouping, kAttribute };
  Kind kind = Kind::kNone;
  ClassId cls;            ///< kClass, or the owner context for kAttribute.
  GroupingId grouping;    ///< kGrouping.
  AttributeId attribute;  ///< kAttribute.

  static SchemaSelection None() { return SchemaSelection{}; }
  static SchemaSelection Class(ClassId c) {
    SchemaSelection s;
    s.kind = Kind::kClass;
    s.cls = c;
    return s;
  }
  static SchemaSelection Grouping(GroupingId g) {
    SchemaSelection s;
    s.kind = Kind::kGrouping;
    s.grouping = g;
    return s;
  }
  static SchemaSelection Attribute(ClassId owner_view, AttributeId a) {
    SchemaSelection s;
    s.kind = Kind::kAttribute;
    s.cls = owner_view;
    s.attribute = a;
    return s;
  }

  friend bool operator==(const SchemaSelection& a, const SchemaSelection& b) {
    return a.kind == b.kind && a.cls == b.cls && a.grouping == b.grouping &&
           a.attribute == b.attribute;
  }
};

/// One page of the data level. "The view here contains a number of
/// overlapping pages. ... Each page contains a class, with all of its
/// attributes including inherited ones, or a grouping. To the right of each
/// class or grouping is a pannable list of its members."
struct DataPage {
  bool is_grouping = false;
  ClassId cls;
  GroupingId grouping;
  /// The data selection on this page: highlighted members (entities for a
  /// class page, block-index entities for a grouping page).
  sdm::EntitySet selected;
  /// The attribute followed *from* this page (draws the arrow to the next
  /// page); invalid when this is the top page.
  AttributeId followed;
  /// Pan offset of the member list.
  int member_pan = 0;
};

/// The predicate worksheet's editing state.
struct WorksheetState {
  /// What the committed predicate will define.
  enum class Target { kNone, kMembership, kDerivation, kConstraint };
  Target target = Target::kNone;
  ClassId target_class;       ///< kMembership/kConstraint: the class.
  AttributeId target_attr;    ///< kDerivation: the derived attribute.
  std::string constraint_name;  ///< kConstraint: the constraint's name.

  query::Predicate pred;
  /// Assignment-style derivation under construction (the hand operator);
  /// meaningful only for kDerivation when `use_hand` is set.
  bool use_hand = false;
  query::Term hand_term;

  /// Index of the atom being edited; -1 when none.
  int current_atom = -1;
  /// Which side of the atom picks of attributes extend.
  enum class Focus { kLhs, kRhs } focus = Focus::kLhs;
  /// A pending right-hand-side option that needs a class pick first
  /// ("... starting at class" options choose from the class list window).
  enum class RhsPending { kNone, kConstantClass, kMapClass } rhs_pending =
      RhsPending::kNone;

  /// Number of atom slots shown in the atom list window (the paper's
  /// figures label them A..E).
  static constexpr int kAtomSlots = 5;
  /// Number of clause windows.
  static constexpr int kClauseWindows = 3;
};

/// Temporary-visit bookkeeping (the loop arrows of Diagram 1).
enum class TempVisit {
  kNone,
  /// Worksheet -> data level to select or create a constant.
  kConstantSelection,
  /// Data level -> inheritance forest to name/position a new subclass.
  kSubclassPlacement,
};

/// What the next TextEvent answers.
enum class Prompt {
  kNone,
  kBaseclassName,     ///< Name for "create baseclass".
  kNamingAttrName,    ///< Naming-attribute name (second step of the above).
  kSubclassName,      ///< Name for "create subclass" / "make subclass".
  kAttributeName,     ///< Name for "create attribute".
  kGroupingName,      ///< Name for "create grouping".
  kEntityName,        ///< Name for "create entity" (data level).
  kRename,            ///< New name for the schema selection.
  kSaveName,          ///< Database name for "save".
  kLoadName,          ///< Database name for "load".
  kConstraintName,    ///< Name for "define constraint".
  kDropConstraint,    ///< Name for "drop constraint".
  kConstantText,      ///< Typed constant (e.g. `4`) during kConstantSelection
                      ///< in a predefined baseclass.
};

/// Pending pick-target mode: the previous command asked the user to pick
/// something specific next.
enum class PickMode {
  kNormal,
  kFollowAttribute,    ///< After `follow` on a class page: pick an attribute.
  kAssignAttribute,    ///< After `(re)assign att. value`: pick the attribute.
  kValueClass,         ///< After `(re)specify value class`: pick a class.
  kAddParent,          ///< After `add parent` (multiple-inheritance mode):
                       ///< pick the extra parent class.
};

/// \brief The complete mutable session state.
struct SessionState {
  Level level = Level::kInheritanceForest;
  SchemaSelection selection;              // S
  std::vector<DataPage> pages;            // data level page stack; D = top
  WorksheetState worksheet;
  TempVisit temp_visit = TempVisit::kNone;
  Prompt prompt = Prompt::kNone;
  PickMode pick_mode = PickMode::kNormal;
  /// Scratch for two-step prompts (e.g. baseclass name, then its naming
  /// attribute's name).
  std::string pending_text;

  /// Saved state for returning from a temporary visit.
  Level saved_level = Level::kInheritanceForest;
  SchemaSelection saved_selection;
  std::vector<DataPage> saved_pages;

  /// Forest/network window pan.
  int pan_x = 0;
  int pan_y = 0;

  /// True once `stop` was picked; the session loop exits.
  bool stopped = false;

  const DataPage* top_page() const {
    return pages.empty() ? nullptr : &pages.back();
  }
  DataPage* top_page() { return pages.empty() ? nullptr : &pages.back(); }
};

}  // namespace isis::ui

#endif  // ISIS_UI_STATE_H_
