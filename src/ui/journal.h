/// \file journal.h
/// \brief The design journal — the paper's §5 future work #3.
///
/// "Third, we would like to add features to assist users in the process of
/// designing their schemas ... it would be useful to be able to keep track
/// of the history of a database design."
///
/// The journal records every successful design action of a session (schema
/// and data edits, query definitions, undo/redo, saves) with a logical
/// sequence number. It lives in the controller — deliberately *outside*
/// the undo snapshot, so undoing an edit appends an `undo` entry rather
/// than erasing the record of the edit: the history is the history.

#ifndef ISIS_UI_JOURNAL_H_
#define ISIS_UI_JOURNAL_H_

#include <string>
#include <vector>

namespace isis::ui {

/// One recorded design action.
struct JournalEntry {
  int seq = 0;               ///< Logical timestamp (1-based, monotonic).
  std::string action;        ///< Canonical action name ("create subclass").
  std::string detail;        ///< Human-readable specifics.
};

/// \brief Append-only log of design actions.
class DesignJournal {
 public:
  /// Appends an entry and returns its sequence number.
  int Record(std::string action, std::string detail);

  const std::vector<JournalEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// The last `n` entries, oldest first, one per line:
  /// `#seq action: detail`. Empty string when nothing is recorded.
  std::string Render(size_t n) const;

  /// Entries whose action or detail contains `needle` (design archaeology:
  /// "when did quartets appear?").
  std::vector<JournalEntry> Find(const std::string& needle) const;

 private:
  std::vector<JournalEntry> entries_;
  int next_seq_ = 1;
};

}  // namespace isis::ui

#endif  // ISIS_UI_JOURNAL_H_
