/// \file network_view.cc
/// \brief The semantic network view (paper §3.2, Figure 2).
///
/// The schema selection is drawn with *all* its attributes (inherited ones
/// included — inheritance is implicit in this view) and one labeled arc per
/// attribute to its value class or value grouping: "we use a single arrow
/// for singlevalued and a double one for multivalued attributes". Incoming
/// arcs are listed below the graph. Picking a value node changes the schema
/// selection and re-centers the network on it.

#include <algorithm>
#include <map>

#include "ui/render_util.h"
#include "ui/views.h"

namespace isis::ui {

using gfx::Menu;
using gfx::Rect;
using gfx::Window;
using sdm::Schema;
using sdm::SchemaNode;

namespace {

std::vector<Menu::Item> NetworkMenu() {
  std::vector<Menu::Item> items;
  items.push_back(Menu::Item{"pop", "F0", true});
  items.push_back(Menu::Item{"view contents", "F2", true});
  items.push_back(Menu::Item{"pan left", "", true});
  items.push_back(Menu::Item{"pan right", "", true});
  items.push_back(Menu::Item{"pan up", "", true});
  items.push_back(Menu::Item{"pan down", "", true});
  items.push_back(Menu::Item{"stop", "", true});
  return items;
}

std::string NodeKey(const SchemaNode& n) {
  return n.kind == SchemaNode::Kind::kClass
             ? "c" + std::to_string(n.class_id.value())
             : "g" + std::to_string(n.grouping_id.value());
}

}  // namespace

Screen RenderNetworkView(const RenderContext& ctx) {
  Screen screen;
  Rect content = DrawChrome(&screen, ctx.ws.name(), "semantic network",
                            NetworkMenu(), ctx.message);
  Window win(&screen.canvas, content);
  win.SetPan(ctx.st.pan_x, ctx.st.pan_y);

  const Schema& schema = ctx.ws.db().schema();
  const SchemaSelection& sel = ctx.st.selection;
  if (sel.kind != SchemaSelection::Kind::kClass || !schema.HasClass(sel.cls)) {
    win.Text(2, 2, "pick a class in the inheritance forest first");
    return screen;
  }

  // The selection, with inherited attributes.
  BoxMetrics sm = ClassBoxMetrics(ctx.ws, sel.cls, /*include_inherited=*/true);
  int sx = 2, sy = 2;
  DrawClassBox(&win, &screen, ctx.ws, sel.cls, sx, sy,
               /*include_inherited=*/true);
  // The hand marker sits above the box (no room in the left margin here).
  win.Text(sx, sy - 1, "hand ==v", gfx::kBold);

  // Distinct value nodes in first-arc order; arrows from attribute rows.
  std::vector<Schema::NetworkArc> arcs = schema.OutgoingArcs(sel.cls);
  std::map<std::string, int> node_y;  // node key -> logical y of its box
  int target_x = sx + sm.width + 26;
  int next_y = sy;
  std::vector<AttributeId> attrs = schema.AllAttributesOf(sel.cls);

  for (const Schema::NetworkArc& arc : arcs) {
    std::string key = NodeKey(arc.to);
    int ty;
    auto it = node_y.find(key);
    if (it != node_y.end()) {
      ty = it->second;
    } else {
      ty = next_y;
      BoxMetrics tm =
          arc.to.kind == SchemaNode::Kind::kClass
              ? ClassBoxMetrics(ctx.ws, arc.to.class_id, false)
              : GroupingBoxMetrics(ctx.ws, arc.to.grouping_id);
      if (arc.to.kind == SchemaNode::Kind::kClass) {
        DrawClassBox(&win, &screen, ctx.ws, arc.to.class_id, target_x, ty,
                     /*include_inherited=*/false);
      } else {
        DrawGroupingBox(&win, &screen, ctx.ws, arc.to.grouping_id, target_x,
                        ty);
      }
      node_y[key] = ty;
      next_y = ty + tm.height + 1;
    }
    // The arrow starts at the attribute's row in the selection box.
    int row = 0;
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == arc.attribute) row = static_cast<int>(i);
    }
    int ay = sy + 3 + row;
    const sdm::AttributeDef& def = schema.GetAttribute(arc.attribute);
    int from_x = sx + sm.width;
    int to_x = target_x - 1;
    // Label centered on the shaft; double shaft for multivalued.
    char shaft = def.multivalued ? '=' : '-';
    int len = to_x - from_x;
    if (len < 4) len = 4;
    for (int i = 0; i < len - 1; ++i) win.Put(from_x + i, ay, shaft);
    win.Put(from_x + len - 1, ay, '>');
    std::string label = def.name;
    int lx = from_x + (len - static_cast<int>(label.size())) / 2;
    win.Text(lx, ay, label, gfx::kBold);
    // Elbow down to the target row when the arrow row differs.
    int ty_name = node_y[key] + 1;
    if (ty_name != ay) {
      win.VLine(to_x, std::min(ay, ty_name) + 1, std::abs(ty_name - ay) - 1,
                '|');
      win.Put(to_x, ay, '+');
      win.Put(to_x, ty_name, '>');
    }
  }

  // Incoming arcs, textual.
  std::vector<Schema::NetworkArc> incoming =
      schema.IncomingArcs(SchemaNode::Class(sel.cls));
  if (!incoming.empty()) {
    int y = std::max(next_y, sy + sm.height) + 2;
    std::string line = "incoming: ";
    for (size_t i = 0; i < incoming.size(); ++i) {
      if (i > 0) line += ", ";
      line += schema.GetClass(incoming[i].from).name + "." +
              schema.GetAttribute(incoming[i].attribute).name;
    }
    win.Text(2, y, line, gfx::kDim);
  }

  return screen;
}

}  // namespace isis::ui
