#include "ui/render_util.h"

#include <algorithm>

#include "gfx/pattern.h"

namespace isis::ui {

using gfx::Canvas;
using gfx::Menu;
using gfx::Rect;
using gfx::Window;
using sdm::AttributeDef;
using sdm::ClassDef;
using sdm::GroupingDef;
using sdm::Schema;

namespace {

constexpr int kMinBoxInner = 12;  // minimum inner width of a node box
constexpr int kSwatchWidth = 5;   // attribute-row value-class swatch

std::vector<AttributeId> BoxAttributes(const Schema& schema, ClassId cls,
                                       bool include_inherited) {
  if (include_inherited) return schema.AllAttributesOf(cls);
  std::vector<AttributeId> own;
  for (AttributeId a : schema.GetClass(cls).own_attributes) {
    if (schema.HasAttribute(a)) own.push_back(a);
  }
  return own;
}

int InnerWidthFor(const Schema& schema, ClassId cls,
                  const std::vector<AttributeId>& attrs) {
  int w = std::max<int>(kMinBoxInner,
                        static_cast<int>(schema.GetClass(cls).name.size()));
  for (AttributeId a : attrs) {
    int need = static_cast<int>(schema.GetAttribute(a).name.size()) + 1 +
               kSwatchWidth;
    w = std::max(w, need);
  }
  return w;
}

}  // namespace

BoxMetrics ClassBoxMetrics(const query::Workspace& ws, ClassId cls,
                           bool include_inherited) {
  const Schema& schema = ws.db().schema();
  std::vector<AttributeId> attrs =
      BoxAttributes(schema, cls, include_inherited);
  BoxMetrics m;
  m.width = InnerWidthFor(schema, cls, attrs) + 2;
  m.height = 2 /*border*/ + 1 /*name*/ + 1 /*pattern*/ +
             static_cast<int>(attrs.size());
  return m;
}

BoxMetrics GroupingBoxMetrics(const query::Workspace& ws, GroupingId g) {
  const Schema& schema = ws.db().schema();
  BoxMetrics m;
  m.width = std::max<int>(kMinBoxInner,
                          static_cast<int>(schema.GetGrouping(g).name.size())) +
            2;
  m.height = 4;  // border + name + bordered pattern row
  return m;
}

void DrawClassBox(Window* win, Screen* screen, const query::Workspace& ws,
                  ClassId cls, int x, int y, bool include_inherited) {
  const Schema& schema = ws.db().schema();
  const ClassDef& def = schema.GetClass(cls);
  std::vector<AttributeId> attrs =
      BoxAttributes(schema, cls, include_inherited);
  int inner = InnerWidthFor(schema, cls, attrs);
  BoxMetrics m = ClassBoxMetrics(ws, cls, include_inherited);
  Rect logical{x, y, m.width, m.height};
  win->Box(logical);
  // Name section: reverse video for baseclasses (§3.2).
  std::string name = def.name;
  name.resize(inner, ' ');
  win->Text(x + 1, y + 1, name, def.is_base() ? gfx::kReverse : gfx::kPlain);
  // Characteristic fill pattern row.
  for (int i = 0; i < inner; ++i) {
    win->Put(x + 1 + i, y + 2, gfx::PatternGlyph(def.fill_pattern, i, 0));
  }
  // Register the box region before the attribute rows: hit-testing walks
  // regions topmost-last, so rows must come after the box to stay pickable.
  Rect box_screen = win->ToScreen(logical);
  if (box_screen.w > 0) {
    screen->hits.push_back(HitRegion{box_screen, "class:" + def.name});
  }
  // Attribute rows: name left, value-class swatch right (white-bordered for
  // multivalued attributes — the set marker).
  int row = y + 3;
  for (AttributeId a : attrs) {
    const AttributeDef& attr = schema.GetAttribute(a);
    int value_pattern =
        attr.value_grouping.valid()
            ? schema.GetGrouping(attr.value_grouping).fill_pattern
            : schema.GetClass(attr.value_class).fill_pattern;
    std::string label = attr.name;
    label.resize(inner - kSwatchWidth, ' ');
    win->Text(x + 1, row, label,
              attr.origin == sdm::AttrOrigin::kDerived ? gfx::kDim
                                                        : gfx::kPlain);
    for (int i = 0; i < kSwatchWidth; ++i) {
      bool border = attr.multivalued && (i == 0 || i == kSwatchWidth - 1);
      win->Put(x + 1 + inner - kSwatchWidth + i, row,
               border ? ' ' : gfx::PatternGlyph(value_pattern, i, 0));
    }
    Rect attr_screen = win->ToScreen(Rect{x, row, m.width, 1});
    if (attr_screen.w > 0) {
      // Qualified with the box's class: several classes may define an
      // attribute with the same name (every baseclass has `name`). Named
      // picks with the bare name resolve through the controller's suffix
      // fallback.
      screen->hits.push_back(
          HitRegion{attr_screen, "attr:" + def.name + "." + attr.name});
    }
    ++row;
  }
}

void DrawGroupingBox(Window* win, Screen* screen, const query::Workspace& ws,
                     GroupingId g, int x, int y) {
  const Schema& schema = ws.db().schema();
  const GroupingDef& def = schema.GetGrouping(g);
  BoxMetrics m = GroupingBoxMetrics(ws, g);
  int inner = m.width - 2;
  Rect logical{x, y, m.width, m.height};
  win->Box(logical);
  std::string name = def.name;
  name.resize(inner, ' ');
  win->Text(x + 1, y + 1, name);
  // Pattern row with the white set border.
  for (int i = 0; i < inner; ++i) {
    bool border = i == 0 || i == inner - 1;
    win->Put(x + 1 + i, y + 2,
             border ? ' ' : gfx::PatternGlyph(def.fill_pattern, i, 0));
  }
  Rect box_screen = win->ToScreen(logical);
  if (box_screen.w > 0) {
    screen->hits.push_back(HitRegion{box_screen, "grouping:" + def.name});
  }
}

void DrawHandIcon(Window* win, int x, int y) {
  // The pointing hand, one row below the box top so it indicates the name.
  win->Text(x - 6, y + 1, "hand", gfx::kBold);
  win->Text(x - 2, y + 1, "=>", gfx::kBold);
}

Rect DrawChrome(Screen* screen, const std::string& db_name,
                const std::string& view_name,
                const std::vector<Menu::Item>& menu_items,
                const std::string& message) {
  Canvas& canvas = screen->canvas;
  canvas.Clear();
  // Title bar.
  canvas.Fill(Rect{0, 0, canvas.width(), 1}, ' ', gfx::kReverse);
  std::string title = " ISIS | " + db_name + " | " + view_name + " ";
  canvas.Text((canvas.width() - static_cast<int>(title.size())) / 2, 0, title,
              gfx::kReverse);
  // Right-hand menu.
  const int menu_w = 25;
  Rect menu_rect{canvas.width() - menu_w, 1,
                 menu_w, canvas.height() - 5};
  gfx::Menu menu("commands");
  for (const Menu::Item& item : menu_items) {
    menu.Add(item.command, item.key, item.enabled);
  }
  std::vector<Rect> rows = menu.Render(&canvas, menu_rect);
  for (size_t i = 0; i < rows.size() && i < menu_items.size(); ++i) {
    screen->hits.push_back(
        HitRegion{rows[i], "menu:" + menu_items[i].command});
  }
  // Bottom text window.
  gfx::TextWindow text;
  text.Set(message);
  text.Render(&canvas, Rect{0, canvas.height() - 4, canvas.width(), 4});
  // Content area.
  return Rect{0, 1, canvas.width() - menu_w, canvas.height() - 5};
}

std::string SelectionName(const query::Workspace& ws,
                          const SchemaSelection& sel) {
  const Schema& schema = ws.db().schema();
  switch (sel.kind) {
    case SchemaSelection::Kind::kNone:
      return "(none)";
    case SchemaSelection::Kind::kClass:
      return schema.HasClass(sel.cls) ? schema.GetClass(sel.cls).name : "(?)";
    case SchemaSelection::Kind::kGrouping:
      return schema.HasGrouping(sel.grouping)
                 ? schema.GetGrouping(sel.grouping).name
                 : "(?)";
    case SchemaSelection::Kind::kAttribute:
      return schema.HasAttribute(sel.attribute)
                 ? schema.GetAttribute(sel.attribute).name
                 : "(?)";
  }
  return "(?)";
}

}  // namespace isis::ui
