#include "ui/views.h"

namespace isis::ui {

const char* LevelToString(Level level) {
  switch (level) {
    case Level::kInheritanceForest:
      return "inheritance forest";
    case Level::kSemanticNetwork:
      return "semantic network";
    case Level::kPredicateWorksheet:
      return "predicate worksheet";
    case Level::kDataLevel:
      return "data level";
  }
  return "?";
}

Screen RenderCurrent(const RenderContext& ctx) {
  switch (ctx.st.level) {
    case Level::kInheritanceForest:
      return RenderForestView(ctx);
    case Level::kSemanticNetwork:
      return RenderNetworkView(ctx);
    case Level::kPredicateWorksheet:
      return RenderWorksheetView(ctx);
    case Level::kDataLevel:
      return RenderDataView(ctx);
  }
  return Screen();
}

}  // namespace isis::ui
