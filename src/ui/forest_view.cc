/// \file forest_view.cc
/// \brief The inheritance forest view (paper §3.2, Figures 1, 8, 12).
///
/// "Lines connect parent classes to their children and the system enforces
/// some of the placement decisions. Namely, groupings always appear above
/// their parent class and subclasses below." The layout here is automatic:
/// subtree widths are computed bottom-up, each class is centered over its
/// children, its groupings sit in the band directly above it, and depth
/// bands are sized to the tallest box they contain. (The paper lets the
/// user drag boxes; we document this simplification in DESIGN.md.)

#include <algorithm>
#include <map>

#include "ui/render_util.h"
#include "ui/views.h"

namespace isis::ui {

using gfx::Menu;
using gfx::Rect;
using gfx::Window;
using sdm::Schema;

namespace {

constexpr int kHGap = 7;   // horizontal gap between sibling subtrees (leaves
                           // room for the hand icon between boxes)
constexpr int kVGap = 2;   // rows between a class band and the next band

struct ForestLayout {
  const query::Workspace& ws;
  // Depth bands.
  std::map<int, int> grouping_band_h;  // depth -> rows for groupings
  std::map<int, int> class_band_h;     // depth -> rows for class boxes
  std::map<int, int> class_band_y;     // depth -> logical y of class boxes
  // Results.
  struct Placed {
    ClassId cls;
    int x, y;
    BoxMetrics m;
  };
  struct PlacedGrouping {
    GroupingId g;
    ClassId parent;
    int x, y;
    BoxMetrics m;
  };
  std::vector<Placed> classes;
  std::vector<PlacedGrouping> groupings;

  explicit ForestLayout(const query::Workspace& w) : ws(w) {}

  int GroupingsRowWidth(ClassId cls) const {
    int w = 0;
    for (GroupingId g : ws.db().schema().GroupingsOf(cls)) {
      w += GroupingBoxMetrics(ws, g).width + 2;
    }
    return w > 0 ? w - 2 : 0;
  }

  int SubtreeWidth(ClassId cls) const {
    const Schema& schema = ws.db().schema();
    int own = ClassBoxMetrics(ws, cls, /*include_inherited=*/false).width;
    own = std::max(own, GroupingsRowWidth(cls));
    int kids = 0;
    for (ClassId c : schema.ChildrenOf(cls)) {
      kids += SubtreeWidth(c) + kHGap;
    }
    if (kids > 0) kids -= kHGap;
    return std::max(own, kids);
  }

  void MeasureBands(ClassId cls, int depth) {
    const Schema& schema = ws.db().schema();
    BoxMetrics m = ClassBoxMetrics(ws, cls, /*include_inherited=*/false);
    class_band_h[depth] = std::max(class_band_h[depth], m.height);
    for (GroupingId g : schema.GroupingsOf(cls)) {
      grouping_band_h[depth] =
          std::max(grouping_band_h[depth], GroupingBoxMetrics(ws, g).height);
    }
    for (ClassId c : schema.ChildrenOf(cls)) MeasureBands(c, depth + 1);
  }

  void ComputeBandY() {
    int y = 1;
    int max_depth = 0;
    for (const auto& [d, h] : class_band_h) {
      (void)h;
      max_depth = std::max(max_depth, d);
    }
    for (int d = 0; d <= max_depth; ++d) {
      y += grouping_band_h.count(d) ? grouping_band_h[d] : 0;
      class_band_y[d] = y;
      y += class_band_h[d] + kVGap;
    }
  }

  /// Places the subtree rooted at `cls` starting at logical x0; returns the
  /// subtree span width.
  int Place(ClassId cls, int depth, int x0) {
    const Schema& schema = ws.db().schema();
    int span = SubtreeWidth(cls);
    BoxMetrics m = ClassBoxMetrics(ws, cls, /*include_inherited=*/false);
    int cx = x0 + (span - m.width) / 2;
    int cy = class_band_y[depth];
    classes.push_back(Placed{cls, cx, cy, m});
    // Groupings in the band above, left-aligned with the class box.
    int gx = cx;
    for (GroupingId g : schema.GroupingsOf(cls)) {
      BoxMetrics gm = GroupingBoxMetrics(ws, g);
      int gy = cy - gm.height;
      groupings.push_back(PlacedGrouping{g, cls, gx, gy, gm});
      gx += gm.width + 2;
    }
    // Children below.
    int child_x = x0;
    for (ClassId c : schema.ChildrenOf(cls)) {
      child_x += Place(c, depth + 1, child_x) + kHGap;
    }
    return span;
  }
};

std::vector<Menu::Item> ForestMenu(const RenderContext& ctx) {
  const SchemaSelection& sel = ctx.st.selection;
  std::vector<Menu::Item> items;
  auto add = [&items](const char* cmd, const char* key = "") {
    items.push_back(Menu::Item{cmd, key, true});
  };
  if (ctx.st.temp_visit == TempVisit::kSubclassPlacement) {
    add("abort");
    return items;
  }
  add("(re)name");
  add("create baseclass");
  switch (sel.kind) {
    case SchemaSelection::Kind::kClass:
      add("view associations", "F1");
      add("view contents", "F2");
      add("create subclass", "F3");
      add("create attribute", "F4");
      add("(re)define membership");
      add("define constraint");
      add("display predicate");
      if (ctx.ws.db().schema().options().allow_multiple_parents) {
        add("add parent");
      }
      break;
    case SchemaSelection::Kind::kAttribute:
      add("(re)specify value class");
      add("(re)define derivation");
      add("create grouping");
      add("display predicate");
      break;
    case SchemaSelection::Kind::kGrouping:
      add("view contents", "F2");
      add("display predicate");
      break;
    case SchemaSelection::Kind::kNone:
      break;
  }
  add("check constraints");
  add("drop constraint");
  add("statistics");
  add("show history");
  add("delete");
  add("undo");
  add("redo");
  add("pan left");
  add("pan right");
  add("pan up");
  add("pan down");
  add("save");
  add("load");
  add("stop");
  return items;
}

}  // namespace

Screen RenderForestView(const RenderContext& ctx) {
  Screen screen;
  Rect content = DrawChrome(&screen, ctx.ws.name(), "inheritance forest",
                            ForestMenu(ctx), ctx.message);
  Window win(&screen.canvas, content);
  win.SetPan(ctx.st.pan_x, ctx.st.pan_y);

  const Schema& schema = ctx.ws.db().schema();
  ForestLayout layout(ctx.ws);
  std::vector<ClassId> roots;
  for (ClassId base : schema.Baseclasses()) {
    if (base.value() < 4) continue;  // predefined baseclasses stay implicit
    roots.push_back(base);
  }
  for (ClassId root : roots) layout.MeasureBands(root, 0);
  layout.ComputeBandY();
  int x = 7;  // left gutter for the hand icon on leftmost boxes
  for (ClassId root : roots) {
    x += layout.Place(root, 0, x) + kHGap;
  }

  // Parent-child connector lines (drawn before boxes so boxes overpaint).
  std::map<std::int64_t, const ForestLayout::Placed*> placed_by_class;
  for (const auto& p : layout.classes) placed_by_class[p.cls.value()] = &p;
  for (const auto& p : layout.classes) {
    const sdm::ClassDef& def = schema.GetClass(p.cls);
    for (ClassId parent : def.parents) {
      auto it = placed_by_class.find(parent.value());
      if (it == placed_by_class.end()) continue;
      const auto* pp = it->second;
      int from_x = pp->x + pp->m.width / 2;
      int from_y = pp->y + pp->m.height;
      int to_x = p.x + p.m.width / 2;
      int to_y = p.y - 1;
      int bus_y = to_y - (to_y > from_y ? 1 : 0);
      win.VLine(from_x, from_y, std::max(0, bus_y - from_y), '|');
      int lo = std::min(from_x, to_x);
      int hi = std::max(from_x, to_x);
      if (hi > lo) win.HLine(lo, bus_y, hi - lo + 1, '-');
      win.Put(to_x, to_y, '|');
    }
  }
  // Grouping connector: short line down to the parent class.
  for (const auto& g : layout.groupings) {
    auto it = placed_by_class.find(g.parent.value());
    if (it == placed_by_class.end()) continue;
    win.Put(g.x + g.m.width / 2, g.y + g.m.height, '|');
  }

  for (const auto& p : layout.classes) {
    DrawClassBox(&win, &screen, ctx.ws, p.cls, p.x, p.y,
                 /*include_inherited=*/false);
  }
  for (const auto& g : layout.groupings) {
    DrawGroupingBox(&win, &screen, ctx.ws, g.g, g.x, g.y);
  }

  // "A list of all classes can be created, as a pop-up menu, for selecting
  // the value class" (§3.2) — shown while a class pick is pending, since
  // the predefined baseclasses are not drawn in the forest itself.
  if (ctx.st.pick_mode == PickMode::kValueClass ||
      ctx.st.pick_mode == PickMode::kAddParent) {
    std::vector<ClassId> all = schema.AllClasses();
    int h = static_cast<int>(all.size()) + 2;
    Rect popup{content.x + 1, content.y + 1, 22,
               std::min(h, content.h - 2)};
    screen.canvas.Fill(popup, ' ');
    screen.canvas.Box(popup);
    screen.canvas.Text(popup.x + 2, popup.y, "[all classes]", gfx::kBold);
    int row = popup.y + 1;
    for (ClassId c : all) {
      if (row >= popup.bottom() - 1) break;
      const std::string& nm = schema.GetClass(c).name;
      Rect hit{popup.x + 1, row, popup.w - 2, 1};
      screen.canvas.Text(hit.x + 1, row, nm.substr(0, 18));
      screen.hits.push_back(HitRegion{hit, "class:" + nm});
      ++row;
    }
  }

  // The hand icon at the schema selection.
  const SchemaSelection& sel = ctx.st.selection;
  if (sel.kind == SchemaSelection::Kind::kClass ||
      sel.kind == SchemaSelection::Kind::kAttribute) {
    auto it = placed_by_class.find(sel.cls.value());
    if (it != placed_by_class.end()) {
      const auto* p = it->second;
      if (sel.kind == SchemaSelection::Kind::kClass) {
        DrawHandIcon(&win, p->x, p->y);
      } else {
        // Point at the attribute row inside the box.
        std::vector<AttributeId> own;
        for (AttributeId a : schema.GetClass(sel.cls).own_attributes) {
          if (schema.HasAttribute(a)) own.push_back(a);
        }
        int row = 0;
        for (size_t i = 0; i < own.size(); ++i) {
          if (own[i] == sel.attribute) row = static_cast<int>(i);
        }
        DrawHandIcon(&win, p->x, p->y + 2 + row);
      }
    }
  } else if (sel.kind == SchemaSelection::Kind::kGrouping) {
    for (const auto& g : layout.groupings) {
      if (g.g == sel.grouping) DrawHandIcon(&win, g.x, g.y);
    }
  }

  return screen;
}

}  // namespace isis::ui
