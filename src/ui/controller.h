/// \file controller.h
/// \brief The ISIS session controller: dispatches input events to the
/// current view's semantics and drives the Diagram 1 state machine.
///
/// The controller owns the Workspace and the SessionState, renders the
/// current view on demand, hit-tests picks against the last rendered
/// screen, and implements every menu/function-key command of §3 and §4:
/// navigation (view associations / view contents / pop / follow), schema
/// editing (create subclass/attribute/grouping, (re)name, delete, undo,
/// redo), data editing (select/reject, (re)assign att. value, create
/// entity, make subclass), the whole predicate-worksheet interaction, and
/// save/load.
///
/// Undo/redo snapshot the entire workspace through the store serializer —
/// every command that mutates the database is undoable, matching the
/// editing menu of the paper's forest view.

#ifndef ISIS_UI_CONTROLLER_H_
#define ISIS_UI_CONTROLLER_H_

#include <memory>
#include <string>
#include <vector>

#include "input/event.h"
#include "live/engine.h"
#include "query/workspace.h"
#include "store/file.h"
#include "store/wal.h"
#include "ui/journal.h"
#include "ui/screen.h"
#include "ui/state.h"
#include "ui/views.h"

namespace isis::ui {

/// \brief How a durable session persists itself (see
/// SessionController::OpenDurable).
struct DurabilityConfig {
  /// Directory holding `<name>.isis` checkpoints and the `<name>.isis.wal`
  /// edit log. Must already exist.
  std::string dir;
  /// File system to use; nullptr means store::FileEnv::Default(). Tests
  /// pass a store::FaultInjectingEnv here.
  store::FileEnv* env = nullptr;
};

/// \brief Owns a Workspace and a SessionState and interprets events.
class SessionController {
 public:
  /// Starts a session over `ws` (takes ownership) at the inheritance forest
  /// with no schema selection, as on database load.
  explicit SessionController(std::unique_ptr<query::Workspace> ws);

  /// Starts a *shared* session over a workspace owned by someone else (the
  /// multi-session server): this controller holds only per-session UI state
  /// (selection, pages, worksheet, prompts) while schema and data live in
  /// `*shared_ws`, visible to every session sharing it. Commands that would
  /// replace or snapshot the whole workspace — undo, redo, load — return
  /// Unimplemented, and the controller never attaches its own live engine
  /// (pass the server's in `shared_live`, or null). The caller is
  /// responsible for serializing mutations across sessions; `shared_ws`
  /// must outlive the controller.
  SessionController(query::Workspace* shared_ws,
                    live::LiveViewEngine* shared_live);

  /// Opens a *durable* session in `config.dir`: every successful input
  /// event is appended to a checksummed write-ahead log before the next
  /// event is accepted, so a crash loses at most the action in flight.
  ///
  /// If `<dir>/<ws-name>.isis.wal` is left over from a crashed session, the
  /// log's base checkpoint is loaded, the logged events are replayed
  /// through the normal dispatch path (rebuilding the design journal from
  /// the logged notes), the result is re-validated with the full
  /// ConsistencyChecker, and `ws` is discarded in favour of the recovered
  /// state. A torn final record is truncated and the log repaired;
  /// mid-log corruption fails the open with a record-level error.
  static Result<std::unique_ptr<SessionController>> OpenDurable(
      std::unique_ptr<query::Workspace> ws, const DurabilityConfig& config);

  /// True when this session has a live write-ahead log.
  bool durable() const { return wal_ != nullptr; }
  /// Path of the live WAL ("" when not durable).
  std::string wal_path() const { return wal_ ? wal_->path() : ""; }

  const query::Workspace& workspace() const { return *ws_; }
  query::Workspace& workspace() { return *ws_; }
  const SessionState& state() const { return state_; }
  /// The status/prompt line shown in the bottom text window.
  const std::string& message() const { return message_; }
  bool stopped() const { return state_.stopped; }

  /// Renders the current view (also refreshes the pick hit-map).
  const Screen& Render();

  /// Interprets one event. Unknown targets and illegal commands set an
  /// error message (shown in the text window) and return the error; the
  /// session keeps running either way, like the real interface.
  Status HandleEvent(const input::Event& event);

  /// Parses and replays a session script (see input::ParseScript). Stops at
  /// the first error when `stop_on_error`. Every event re-renders, so the
  /// screen after any prefix equals the interactive result.
  Status RunScript(const std::string& script, bool stop_on_error = true);

  /// Saves the workspace to `<dir>/<name>.isis` (the `save` command uses
  /// the current database name; `type` beforehand answers the name prompt).
  Status SaveAs(const std::string& path) const;

  /// Undo/redo depth available (for tests).
  size_t undo_depth() const { return undo_.size(); }
  size_t redo_depth() const { return redo_.size(); }

  /// The session's design journal (§5: "keep track of the history of a
  /// database design"). Records every successful design action; not rolled
  /// back by undo (the undo itself is recorded).
  const DesignJournal& journal() const { return journal_; }

  /// The live-view engine, if the database was opened with
  /// Options::live_views (nullptr otherwise). For tests and status display.
  const live::LiveViewEngine* live_engine() const { return live_.get(); }

 private:
  /// HandleEvent minus the WAL append: interprets one event. Recovery
  /// replays logged events through this so they are not re-logged.
  Status Dispatch(const input::Event& event);

  // Durability helpers.
  store::FileEnv* env() const;
  /// `<dir>/<name>.isis` in durable mode, `<name>.isis` otherwise.
  std::string SavePathFor(const std::string& name) const;
  std::string WalPathFor(const std::string& name) const;
  /// Best-effort append of one logged event / journal note; a failed
  /// append degrades the message but never fails the action itself.
  /// During a script (wal_batching_) records are buffered instead and
  /// committed by WalFlushBatch with one sync for the whole script.
  void WalAppendEvent(const input::Event& event);
  void WalAppendNote(const std::string& action, const std::string& detail);
  /// Ends a RunScript batch: frames every buffered record with one write
  /// and one sync (store::WalWriter::AppendBatch). Clears wal_batching_.
  void WalFlushBatch();
  /// After a successful `load`, the old log no longer describes the
  /// workspace: start a fresh one whose base is the just-loaded state,
  /// carrying the journal forward as notes.
  void RotateWalForLoad();

  // Event handlers.
  Status HandlePick(int x, int y);
  Status HandleNamedPick(const std::string& target);
  Status HandleCommand(const std::string& command);
  Status HandleText(const std::string& text);

  // Pick dispatch per target namespace.
  Status PickClass(const std::string& name);
  Status PickGrouping(const std::string& name);
  Status PickAttribute(const std::string& name);
  Status PickMember(const std::string& name);
  Status PickWorksheetTarget(const std::string& ns, const std::string& rest);

  // Commands.
  Status CmdViewAssociations();
  Status CmdViewContents();
  Status CmdViewForest();
  Status CmdPop();
  Status CmdFollow();
  Status CmdCreateSubclass();
  Status CmdCreateAttribute();
  Status CmdCreateGrouping();
  Status CmdDefineMembership();
  Status CmdDefineDerivation();
  Status CmdDefineConstraint();
  Status CmdCheckConstraints();
  Status CmdDisplayPredicate();
  Status CmdDelete();
  Status CmdRename();
  Status CmdAssignAttrValue();
  Status CmdMakeSubclass();
  Status CmdCreateEntity();
  Status CmdDeleteEntity();
  Status CmdWorksheet(const std::string& command);
  Status CmdCommit();
  Status CmdAbort();
  Status CmdAcceptConstant();
  Status CmdUndo();
  Status CmdRedo();
  Status CmdSave();
  Status CmdPan(int dx, int dy);
  Status CmdMembersPan(int delta);

  // Worksheet helpers.
  query::Term* FocusedTerm();
  ClassId FocusedTermStart() const;
  ClassId CandidateClass() const;
  ClassId SelfClass() const;

  // State helpers.
  void EnterDataLevel(const SchemaSelection& node);
  void BeginTempVisit(TempVisit kind, Level target_level);
  void EndTempVisit();
  void PushUndoSnapshot();
  /// Attaches a LiveViewEngine when the workspace opted in
  /// (Options::live_views); called on construction and whenever ws_ is
  /// replaced (undo, redo, load).
  void AttachLiveEngine();
  /// Brings derived subclasses/attributes up to date after a data edit:
  /// a no-op with the live engine attached (it already maintained them),
  /// otherwise a full ReevaluateAll.
  void RefreshDerived();
  Status Fail(const Status& st);
  void Say(const std::string& msg);
  /// Records a successful design action in the journal.
  void Journal(const std::string& action, const std::string& detail);

  /// Owned workspace (null in shared mode; ws_ always points at the live
  /// one).
  std::unique_ptr<query::Workspace> owned_ws_;
  query::Workspace* ws_ = nullptr;
  /// Declared after owned_ws_ so it is destroyed first (it unregisters its
  /// observer from ws_'s database).
  std::unique_ptr<live::LiveViewEngine> live_;
  /// The server's engine in shared mode (not owned); makes RefreshDerived a
  /// no-op just like an owned engine would.
  live::LiveViewEngine* shared_live_ = nullptr;
  bool shared_mode_ = false;
  SessionState state_;
  std::string message_;
  Screen screen_;
  bool screen_valid_ = false;
  std::vector<std::string> undo_;
  std::vector<std::string> redo_;
  DesignJournal journal_;

  // Durability state (empty/null outside OpenDurable sessions).
  std::string durable_dir_;
  store::FileEnv* env_ = nullptr;
  std::unique_ptr<store::WalWriter> wal_;
  /// True while OpenDurable replays logged events: suppresses re-logging.
  bool wal_replaying_ = false;
  /// Set by handlers (load) whose effect is already captured in the log by
  /// other means, so HandleEvent must not also append the raw event.
  bool wal_event_logged_ = false;
  /// True inside RunScript on a durable session: appends buffer into
  /// wal_batch_ and commit with one sync at script end, so an N-event
  /// script costs one fsync instead of N.
  bool wal_batching_ = false;
  std::vector<store::WalRecord> wal_batch_;
};

}  // namespace isis::ui

#endif  // ISIS_UI_CONTROLLER_H_
