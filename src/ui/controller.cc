#include "ui/controller.h"

#include <algorithm>

#include "common/strings.h"
#include "query/eval.h"
#include "sdm/consistency.h"
#include "sdm/stats.h"
#include "store/serializer.h"
#include "ui/render_util.h"

namespace isis::ui {

using input::CommandEvent;
using input::Event;
using input::NamedPickEvent;
using input::PickEvent;
using input::TextEvent;
using query::AttributeDerivation;
using query::Atom;
using query::NormalForm;
using query::Operand;
using query::Predicate;
using query::SetOp;
using query::Term;
using sdm::AttributeDef;
using sdm::ClassDef;
using sdm::EntitySet;
using sdm::GroupingDef;
using sdm::Membership;
using sdm::Schema;

SessionController::SessionController(std::unique_ptr<query::Workspace> ws)
    : owned_ws_(std::move(ws)), ws_(owned_ws_.get()) {
  AttachLiveEngine();
  Say("database '" + ws_->name() + "' loaded; pick an object to focus on");
}

SessionController::SessionController(query::Workspace* shared_ws,
                                     live::LiveViewEngine* shared_live)
    : ws_(shared_ws), shared_live_(shared_live), shared_mode_(true) {
  Say("database '" + ws_->name() + "' shared; pick an object to focus on");
}

void SessionController::AttachLiveEngine() {
  live_.reset();
  if (shared_mode_) return;  // The server owns the (one) engine.
  if (ws_->db().options().live_views) {
    live_ = std::make_unique<live::LiveViewEngine>(ws_);
  }
}

void SessionController::RefreshDerived() {
  // Already maintained incrementally by an attached or shared engine.
  if (live_ != nullptr || shared_live_ != nullptr) return;
  Status st = ws_->ReevaluateAll();
  if (!st.ok()) Say(message_ + " [" + st.ToString() + "]");
}

const Screen& SessionController::Render() {
  RenderContext ctx{*ws_, state_, message_};
  screen_ = RenderCurrent(ctx);
  screen_valid_ = true;
  return screen_;
}

Status SessionController::Fail(const Status& st) {
  Say("! " + st.ToString());
  return st;
}

void SessionController::Say(const std::string& msg) { message_ = msg; }

void SessionController::Journal(const std::string& action,
                                const std::string& detail) {
  journal_.Record(action, detail);
}

Status SessionController::HandleEvent(const Event& event) {
  wal_event_logged_ = false;
  Status st = Dispatch(event);
  // Write-ahead in effect: the event only becomes durable once it has
  // succeeded in memory, and the next event is not accepted before the
  // append (Append fsyncs). Failed events are not logged — replay must
  // reproduce exactly the successful history.
  if (st.ok() && wal_ != nullptr && !wal_replaying_ && !wal_event_logged_) {
    WalAppendEvent(event);
  }
  return st;
}

Status SessionController::Dispatch(const Event& event) {
  if (state_.stopped) {
    return Fail(Status::InvalidArgument("session has stopped"));
  }
  if (const auto* p = std::get_if<PickEvent>(&event)) {
    return HandlePick(p->x, p->y);
  }
  if (const auto* n = std::get_if<NamedPickEvent>(&event)) {
    return HandleNamedPick(n->target);
  }
  if (const auto* c = std::get_if<CommandEvent>(&event)) {
    return HandleCommand(c->command);
  }
  return HandleText(std::get<TextEvent>(event).text);
}

Status SessionController::RunScript(const std::string& script,
                                    bool stop_on_error) {
  ISIS_ASSIGN_OR_RETURN(std::vector<Event> events,
                        input::ParseScript(script));
  // Batch the script's WAL: each successful event is buffered and the
  // whole run is framed + fsynced once at the end (AppendBatch), so an
  // N-event script costs one sync instead of N. The durability unit
  // becomes the script -- which is also the unit a caller would re-run
  // after a crash, since replay truncates at the torn tail.
  const bool batch = wal_ != nullptr && !wal_replaying_ && !wal_batching_;
  if (batch) wal_batching_ = true;
  for (const Event& e : events) {
    Status st = HandleEvent(e);
    if (!st.ok() && stop_on_error) {
      if (batch) WalFlushBatch();  // What succeeded stays durable.
      return Status(st.code(),
                    "at event " + input::EventToString(e) + ": " +
                        st.message());
    }
  }
  if (batch) WalFlushBatch();
  return Status::OK();
}

Status SessionController::SaveAs(const std::string& path) const {
  return store::SaveToFile(*ws_, path, env());
}

// --- Durability. ---

store::FileEnv* SessionController::env() const {
  return env_ != nullptr ? env_ : store::FileEnv::Default();
}

std::string SessionController::SavePathFor(const std::string& name) const {
  if (durable_dir_.empty()) return name + ".isis";
  return durable_dir_ + "/" + name + ".isis";
}

std::string SessionController::WalPathFor(const std::string& name) const {
  return durable_dir_ + "/" + name + ".isis.wal";
}

void SessionController::WalAppendEvent(const Event& event) {
  if (wal_batching_) {
    wal_batch_.push_back({"event", input::EncodeEvent(event)});
    return;
  }
  Status st = wal_->Append("event", input::EncodeEvent(event));
  if (!st.ok()) {
    // The action already succeeded in memory; surface the durability gap
    // without failing it.
    Say(message_ + " [WAL append failed: " + st.ToString() + "]");
  }
}

void SessionController::WalAppendNote(const std::string& action,
                                      const std::string& detail) {
  if (wal_ == nullptr || wal_replaying_) return;
  if (wal_batching_) {
    wal_batch_.push_back({"note", Escape(action) + "|" + Escape(detail)});
    return;
  }
  // Best-effort by design: notes are commentary, not replayed state -- a
  // lost one costs journal context, never data. Logged, not propagated.
  LogIfError(wal_->Append("note", Escape(action) + "|" + Escape(detail)),
             "session WAL append (note)");
}

void SessionController::WalFlushBatch() {
  wal_batching_ = false;
  if (wal_batch_.empty()) return;
  std::vector<store::WalRecord> batch;
  batch.swap(wal_batch_);
  if (wal_ == nullptr) return;  // Durability was lost mid-script.
  Status st = wal_->AppendBatch(batch);
  if (!st.ok()) {
    Say(message_ + " [WAL batch append failed: " + st.ToString() + "]");
  }
}

void SessionController::RotateWalForLoad() {
  // The just-dispatched `load` event must not be appended to the old log:
  // its whole effect is captured by the new base checkpoint. The same goes
  // for any records a script buffered before the load -- the base
  // supersedes them, and appending them to the new log would replay them
  // on top of it.
  wal_batch_.clear();
  wal_event_logged_ = true;
  std::vector<store::WalRecord> records;
  records.push_back({"base", store::Save(*ws_)});
  // The journal survives loads, so carry it into the new log as notes —
  // recovery rebuilds it without replaying pre-load events.
  for (const JournalEntry& e : journal_.entries()) {
    records.push_back({"note", Escape(e.action) + "|" + Escape(e.detail)});
  }
  Result<std::unique_ptr<store::WalWriter>> w =
      store::WalWriter::CreateWithRecords(WalPathFor(ws_->name()), env(),
                                          records);
  if (!w.ok()) {
    // Fail safe: a log that no longer matches the workspace is worse than
    // no log. Drop durability and tell the user.
    wal_.reset();
    Say(message_ + " [durability lost: " + w.status().ToString() + "]");
    return;
  }
  wal_ = std::move(*w);
}

Result<std::unique_ptr<SessionController>> SessionController::OpenDurable(
    std::unique_ptr<query::Workspace> ws, const DurabilityConfig& config) {
  store::FileEnv* env =
      config.env != nullptr ? config.env : store::FileEnv::Default();
  const std::string wal_path =
      config.dir + "/" + ws->name() + ".isis.wal";

  std::vector<store::WalRecord> records;
  bool torn = false;
  if (env->Exists(wal_path)) {
    ISIS_ASSIGN_OR_RETURN(store::WalContents contents,
                          store::ReadWal(wal_path, env));
    records = std::move(contents.records);
    torn = contents.truncated_tail;
  }
  if (!records.empty() && records[0].type != "base") {
    return Status::ParseError("'" + wal_path +
                              "': first record is not a base checkpoint");
  }

  if (records.empty()) {
    // Fresh durable session — or a log torn before its base checkpoint
    // made it to disk, which holds nothing recoverable: start from `ws`.
    std::unique_ptr<SessionController> session(
        new SessionController(std::move(ws)));
    session->durable_dir_ = config.dir;
    session->env_ = config.env;
    records.push_back({"base", store::Save(session->workspace())});
    ISIS_ASSIGN_OR_RETURN(
        session->wal_,
        store::WalWriter::CreateWithRecords(wal_path, env, records));
    return session;
  }

  // Crash recovery: load the base checkpoint the log was written against,
  // then replay its notes (journal entries) and events in order.
  Result<std::unique_ptr<query::Workspace>> base =
      store::Load(records[0].payload);
  if (!base.ok()) {
    return Status(base.status().code(),
                  "'" + wal_path +
                      "' base checkpoint: " + base.status().message());
  }
  std::unique_ptr<SessionController> session(
      new SessionController(std::move(*base)));
  session->durable_dir_ = config.dir;
  session->env_ = config.env;
  session->wal_replaying_ = true;
  int replayed_events = 0;
  for (size_t i = 1; i < records.size(); ++i) {
    const store::WalRecord& r = records[i];
    auto bad = [&](const std::string& why) {
      return Status::ParseError("'" + wal_path + "' record " +
                                std::to_string(i) + ": " + why);
    };
    if (r.type == "note") {
      size_t bar = r.payload.find('|');
      if (bar == std::string::npos) return bad("malformed journal note");
      session->journal_.Record(Unescape(r.payload.substr(0, bar)),
                               Unescape(r.payload.substr(bar + 1)));
    } else if (r.type == "event") {
      Result<input::Event> ev = input::DecodeEvent(r.payload);
      if (!ev.ok()) return bad(ev.status().ToString());
      Status st = session->Dispatch(*ev);
      if (!st.ok()) return bad("replay failed: " + st.ToString());
      ++replayed_events;
    } else {
      return bad("unknown record type '" + r.type + "'");
    }
  }
  session->wal_replaying_ = false;

  // The log only ever holds events that succeeded against a consistent
  // workspace, but recovery trusts nothing: re-validate the whole result.
  ISIS_RETURN_NOT_OK(session->ws_->db().schema().Validate());
  ISIS_RETURN_NOT_OK(sdm::ConsistencyChecker(session->ws_->db()).Check());

  if (torn) {
    // Rewrite the log from its intact prefix before appending again.
    ISIS_ASSIGN_OR_RETURN(
        session->wal_,
        store::WalWriter::CreateWithRecords(wal_path, env, records));
  } else {
    ISIS_ASSIGN_OR_RETURN(session->wal_,
                          store::WalWriter::OpenForAppend(wal_path, env));
  }
  session->Say("recovered '" + session->ws_->name() + "' from its edit log (" +
               std::to_string(replayed_events) + " event(s) replayed)");
  return session;
}

// --- Picks. ---

Status SessionController::HandlePick(int x, int y) {
  if (!screen_valid_) Render();
  const HitRegion* hit = screen_.HitTest(x, y);
  if (hit == nullptr) {
    return Fail(Status::NotFound("nothing pickable at (" + std::to_string(x) +
                                 "," + std::to_string(y) + ")"));
  }
  std::string target = hit->target;
  size_t colon = target.find(':');
  std::string ns = target.substr(0, colon);
  std::string rest = target.substr(colon + 1);
  if (ns == "menu") return HandleCommand(rest);
  if (ns == "class") return PickClass(rest);
  if (ns == "grouping") return PickGrouping(rest);
  if (ns == "attr") return PickAttribute(rest);
  if (ns == "member") return PickMember(rest);
  if (ns == "atom" || ns == "clause" || ns == "op" || ns == "page") {
    return PickWorksheetTarget(ns, rest);
  }
  return Fail(Status::Internal("unhandled pick namespace '" + ns + "'"));
}

Status SessionController::HandleNamedPick(const std::string& target) {
  if (!screen_valid_) Render();
  const HitRegion* hit = screen_.FindTarget(target);
  if (hit == nullptr) {
    // Allow bare attribute names to match qualified regions
    // (`attr:<class>.<name>`).
    if (StartsWith(target, "attr:")) {
      std::string bare = target.substr(5);
      for (const HitRegion& h : screen_.hits) {
        if (StartsWith(h.target, "attr:")) {
          std::string name = h.target.substr(5);
          size_t dot = name.rfind('.');
          if (name == bare || (dot != std::string::npos &&
                               name.substr(dot + 1) == bare)) {
            hit = &h;
            break;
          }
        }
      }
    }
    if (hit == nullptr) {
      return Fail(
          Status::NotFound("no pickable object '" + target + "' on screen"));
    }
  }
  // Route through coordinates so named picks exercise hit-testing. The
  // region may be partially shadowed by regions registered later (e.g. a
  // class box's attribute rows), so find a cell where the hit-test resolves
  // back to this region.
  for (int dy = 0; dy < hit->rect.h; ++dy) {
    for (int dx = 0; dx < hit->rect.w; ++dx) {
      const HitRegion* resolved =
          screen_.HitTest(hit->rect.x + dx, hit->rect.y + dy);
      if (resolved == hit) {
        return HandlePick(hit->rect.x + dx, hit->rect.y + dy);
      }
    }
  }
  return Fail(Status::NotFound("object '" + target +
                               "' is fully covered by other objects"));
}

Status SessionController::PickClass(const std::string& name) {
  const Schema& schema = ws_->db().schema();
  ISIS_ASSIGN_OR_RETURN(ClassId cls, schema.FindClass(name));
  // A pending "(re)specify value class".
  if (state_.pick_mode == PickMode::kValueClass) {
    if (state_.selection.kind != SchemaSelection::Kind::kAttribute) {
      state_.pick_mode = PickMode::kNormal;
      return Fail(Status::InvalidArgument("no attribute selected"));
    }
    PushUndoSnapshot();
    Status st = ws_->db().SetValueClass(state_.selection.attribute, cls);
    state_.pick_mode = PickMode::kNormal;
    if (!st.ok()) return Fail(st);
    Journal("(re)specify value class",
            schema.GetAttribute(state_.selection.attribute).name + " -> " +
                name);
    Say("value class of '" +
        schema.GetAttribute(state_.selection.attribute).name + "' is now '" +
        name + "'");
    RefreshDerived();  // Scrubbed values can change derived views.
    screen_valid_ = false;
    return Status::OK();
  }
  // A pending "add parent" (multiple-inheritance extension).
  if (state_.pick_mode == PickMode::kAddParent) {
    state_.pick_mode = PickMode::kNormal;
    if (state_.selection.kind != SchemaSelection::Kind::kClass) {
      return Fail(Status::InvalidArgument("no class selected"));
    }
    PushUndoSnapshot();
    Status st = ws_->db().AddParent(state_.selection.cls, cls);
    if (!st.ok()) {
      undo_.pop_back();
      return Fail(st);
    }
    Journal("add parent",
            schema.GetClass(state_.selection.cls).name + " <- " + name);
    Say("'" + name + "' is now an additional parent of '" +
        schema.GetClass(state_.selection.cls).name + "'");
    RefreshDerived();
    screen_valid_ = false;
    return Status::OK();
  }
  // Worksheet "... starting at class" options.
  if (state_.level == Level::kPredicateWorksheet &&
      state_.worksheet.rhs_pending != WorksheetState::RhsPending::kNone) {
    WorksheetState::RhsPending pending = state_.worksheet.rhs_pending;
    state_.worksheet.rhs_pending = WorksheetState::RhsPending::kNone;
    Term* rhs = FocusedTerm();
    if (rhs == nullptr) {
      return Fail(Status::InvalidArgument("no atom being edited"));
    }
    if (pending == WorksheetState::RhsPending::kMapClass) {
      *rhs = Term::ClassExtent(cls);
      Say("right hand side: map starting at class '" + name + "'");
      screen_valid_ = false;
      return Status::OK();
    }
    // Constant starting at class: temporary visit to the data level.
    BeginTempVisit(TempVisit::kConstantSelection, Level::kDataLevel);
    DataPage page;
    page.cls = cls;
    state_.pages = {page};
    Say("select or create the constant(s) in '" + name +
        "', then 'accept constant'");
    screen_valid_ = false;
    return Status::OK();
  }
  switch (state_.level) {
    case Level::kInheritanceForest:
    case Level::kSemanticNetwork:
      state_.selection = SchemaSelection::Class(cls);
      Say("schema selection: class '" + name + "'");
      break;
    default:
      return Fail(Status::InvalidArgument(
          "picking a class has no meaning here"));
  }
  screen_valid_ = false;
  return Status::OK();
}

Status SessionController::PickGrouping(const std::string& name) {
  ISIS_ASSIGN_OR_RETURN(GroupingId g, ws_->db().schema().FindGrouping(name));
  if (state_.level != Level::kInheritanceForest &&
      state_.level != Level::kSemanticNetwork) {
    return Fail(
        Status::InvalidArgument("picking a grouping has no meaning here"));
  }
  state_.selection = SchemaSelection::Grouping(g);
  Say("schema selection: grouping '" + name + "'");
  screen_valid_ = false;
  return Status::OK();
}

Status SessionController::PickAttribute(const std::string& name) {
  const Schema& schema = ws_->db().schema();
  // Names may arrive qualified as `<class>.<attr>`.
  std::string cls_name, attr_name = name;
  size_t dot = name.rfind('.');
  if (dot != std::string::npos) {
    cls_name = name.substr(0, dot);
    attr_name = name.substr(dot + 1);
  }

  // Data level: `follow` prompt.
  if (state_.level == Level::kDataLevel &&
      state_.pick_mode == PickMode::kFollowAttribute) {
    state_.pick_mode = PickMode::kNormal;
    DataPage* top = state_.top_page();
    if (top == nullptr || top->is_grouping) {
      return Fail(Status::InvalidArgument("no class page to follow from"));
    }
    ISIS_ASSIGN_OR_RETURN(AttributeId attr,
                          schema.FindAttribute(top->cls, attr_name));
    const AttributeDef& def = schema.GetAttribute(attr);
    AttributeId path[] = {attr};
    EntitySet image = ws_->db().EvaluateMap(top->selected, path);
    top->followed = attr;
    DataPage next;
    next.cls = def.value_class;
    next.selected = image;
    state_.pages.push_back(next);
    Say("followed '" + def.name + "' into '" +
        schema.GetClass(def.value_class).name + "' (" +
        std::to_string(image.size()) + " highlighted)");
    screen_valid_ = false;
    return Status::OK();
  }

  // Worksheet: extend the focused map ("forming a stack of classes").
  if (state_.level == Level::kPredicateWorksheet) {
    Term* term = FocusedTerm();
    if (term == nullptr) {
      return Fail(Status::InvalidArgument(
          "pick an atom slot and press 'edit' first"));
    }
    // The attribute must be applicable at the current stack tip.
    query::Evaluator eval(ws_->db());
    query::PredicateContext pctx;
    pctx.candidate_class = CandidateClass();
    if (SelfClass().valid()) pctx.self_class = SelfClass();
    Term extended = *term;
    // Resolve by name at the tip class.
    Result<ClassId> tip = eval.TermTerminalClass(extended, pctx);
    if (!tip.ok()) return Fail(tip.status());
    ISIS_ASSIGN_OR_RETURN(AttributeId attr,
                          schema.FindAttribute(*tip, attr_name));
    extended.path.push_back(attr);
    Result<ClassId> new_tip = eval.TermTerminalClass(extended, pctx);
    if (!new_tip.ok()) return Fail(new_tip.status());
    *term = std::move(extended);
    Say("map extended with '" + attr_name + "'; stack tip: '" +
        schema.GetClass(*new_tip).name + "'");
    screen_valid_ = false;
    return Status::OK();
  }

  // Forest: the attribute becomes the schema selection.
  if (state_.level == Level::kInheritanceForest) {
    ClassId owner_view;
    if (!cls_name.empty()) {
      ISIS_ASSIGN_OR_RETURN(owner_view, schema.FindClass(cls_name));
    } else if (state_.selection.kind == SchemaSelection::Kind::kClass ||
               state_.selection.kind == SchemaSelection::Kind::kAttribute) {
      owner_view = state_.selection.cls;
    }
    AttributeId attr;
    if (owner_view.valid() &&
        schema.FindAttribute(owner_view, attr_name).ok()) {
      attr = *schema.FindAttribute(owner_view, attr_name);
    } else {
      // Search all classes for an own attribute with this name.
      for (ClassId c : schema.AllClasses()) {
        for (AttributeId a : schema.GetClass(c).own_attributes) {
          if (schema.HasAttribute(a) &&
              schema.GetAttribute(a).name == attr_name) {
            attr = a;
            owner_view = c;
            break;
          }
        }
        if (attr.valid()) break;
      }
    }
    if (!attr.valid()) {
      return Fail(Status::NotFound("no attribute '" + attr_name + "'"));
    }
    state_.selection = SchemaSelection::Attribute(
        schema.GetAttribute(attr).owner, attr);
    Say("schema selection: attribute '" + attr_name + "'");
    screen_valid_ = false;
    return Status::OK();
  }
  return Fail(
      Status::InvalidArgument("picking an attribute has no meaning here"));
}

Status SessionController::PickMember(const std::string& name) {
  if (state_.level != Level::kDataLevel) {
    return Fail(Status::InvalidArgument("no member list on this view"));
  }
  DataPage* top = state_.top_page();
  if (top == nullptr) return Fail(Status::InvalidArgument("no data page"));
  Result<EntityId> e = Status::Internal("unset");
  if (top->is_grouping) {
    // Block indices are entities of the grouped attribute's value class.
    const GroupingDef& g = ws_->db().schema().GetGrouping(top->grouping);
    ClassId value_class =
        ws_->db().schema().GetAttribute(g.on_attribute).value_class;
    e = ws_->db().FindMember(value_class, name);
  } else {
    e = ws_->db().FindMember(top->cls, name);
  }
  if (!e.ok()) return Fail(e.status());
  // select/reject: picking toggles the highlight.
  if (top->selected.count(*e) > 0) {
    top->selected.erase(*e);
    Say("rejected '" + name + "'");
  } else {
    top->selected.insert(*e);
    Say("selected '" + name + "'");
  }
  screen_valid_ = false;
  return Status::OK();
}

Status SessionController::PickWorksheetTarget(const std::string& ns,
                                              const std::string& rest) {
  if (state_.level == Level::kDataLevel && ns == "page") {
    return Status::OK();  // pages themselves are inert picks
  }
  if (state_.level != Level::kPredicateWorksheet) {
    return Fail(Status::InvalidArgument("not on the predicate worksheet"));
  }
  WorksheetState& w = state_.worksheet;
  if (ns == "atom") {
    if (rest.size() != 1 || rest[0] < 'A' ||
        rest[0] >= 'A' + WorksheetState::kAtomSlots) {
      return Fail(Status::InvalidArgument("bad atom slot '" + rest + "'"));
    }
    int idx = rest[0] - 'A';
    while (static_cast<int>(w.pred.atoms.size()) <= idx) {
      Atom blank;
      blank.lhs = Term::Candidate();
      blank.rhs = Term::Candidate();
      w.pred.atoms.push_back(blank);
    }
    w.current_atom = idx;
    w.use_hand = false;
    Say("atom " + rest + " selected");
  } else if (ns == "clause") {
    int c = rest[0] - '1';
    if (c < 0 || c >= WorksheetState::kClauseWindows) {
      return Fail(Status::InvalidArgument("bad clause '" + rest + "'"));
    }
    if (w.current_atom < 0) {
      return Fail(Status::InvalidArgument("no atom selected to place"));
    }
    if (static_cast<size_t>(c) >= w.pred.clauses.size()) {
      w.pred.clauses.resize(c + 1);
    }
    std::vector<int>& clause = w.pred.clauses[c];
    auto it = std::find(clause.begin(), clause.end(), w.current_atom);
    if (it == clause.end()) {
      clause.push_back(w.current_atom);
      Say("atom " + std::string(1, static_cast<char>('A' + w.current_atom)) +
          " placed in clause " + rest);
    } else {
      clause.erase(it);
      Say("atom removed from clause " + rest);
    }
  } else if (ns == "op") {
    if (w.current_atom < 0) {
      return Fail(Status::InvalidArgument("no atom selected"));
    }
    static const SetOp kOps[] = {
        SetOp::kEqual,        SetOp::kSubset,         SetOp::kSuperset,
        SetOp::kProperSubset, SetOp::kProperSuperset, SetOp::kWeakMatch,
        SetOp::kLessEqual,    SetOp::kGreater,
    };
    for (SetOp op : kOps) {
      if (rest == query::SetOpToString(op)) {
        w.pred.atoms[w.current_atom].op = op;
        w.focus = WorksheetState::Focus::kRhs;
        Say("operator " + rest + "; proceed to the right hand side");
        screen_valid_ = false;
        return Status::OK();
      }
    }
    return Fail(Status::InvalidArgument("unknown operator '" + rest + "'"));
  }
  screen_valid_ = false;
  return Status::OK();
}

// --- Commands. ---

Status SessionController::HandleCommand(const std::string& command) {
  screen_valid_ = false;
  if (command == "stop") {
    state_.stopped = true;
    Say("session stopped");
    return Status::OK();
  }
  if (command == "view associations") return CmdViewAssociations();
  if (command == "view contents") return CmdViewContents();
  if (command == "view forest") return CmdViewForest();
  if (command == "pop") return CmdPop();
  if (command == "follow") return CmdFollow();
  if (command == "create baseclass") {
    if (state_.level != Level::kInheritanceForest) {
      return Fail(Status::InvalidArgument(
          "create baseclass is a forest-view command"));
    }
    state_.prompt = Prompt::kBaseclassName;
    Say("type the name of the new baseclass");
    return Status::OK();
  }
  if (command == "create subclass") return CmdCreateSubclass();
  if (command == "create attribute") return CmdCreateAttribute();
  if (command == "create grouping") return CmdCreateGrouping();
  if (command == "(re)define membership") return CmdDefineMembership();
  if (command == "(re)define derivation") return CmdDefineDerivation();
  if (command == "add parent") {
    if (!ws_->db().schema().options().allow_multiple_parents) {
      return Fail(Status::Unimplemented(
          "multiple-parent inheritance is disabled for this database"));
    }
    if (state_.selection.kind != SchemaSelection::Kind::kClass) {
      return Fail(Status::InvalidArgument("select the subclass first"));
    }
    state_.pick_mode = PickMode::kAddParent;
    Say("pick the additional parent class for '" +
        SelectionName(*ws_, state_.selection) + "'");
    return Status::OK();
  }
  if (command == "define constraint") return CmdDefineConstraint();
  if (command == "check constraints") return CmdCheckConstraints();
  if (command == "drop constraint") {
    state_.prompt = Prompt::kDropConstraint;
    Say("type the name of the constraint to drop");
    return Status::OK();
  }
  if (command == "display predicate") return CmdDisplayPredicate();
  if (command == "(re)name") return CmdRename();
  if (command == "(re)specify value class") {
    if (state_.selection.kind != SchemaSelection::Kind::kAttribute) {
      return Fail(Status::InvalidArgument("select an attribute first"));
    }
    state_.pick_mode = PickMode::kValueClass;
    Say("pick the value class");
    return Status::OK();
  }
  if (command == "delete") return CmdDelete();
  if (command == "(re)assign att. value") return CmdAssignAttrValue();
  if (command == "make subclass") return CmdMakeSubclass();
  if (command == "create entity") return CmdCreateEntity();
  if (command == "delete entity") return CmdDeleteEntity();
  if (command == "select/reject") {
    Say("pick members to select or reject them");
    return Status::OK();
  }
  if (command == "accept constant") return CmdAcceptConstant();
  if (command == "create constant") {
    state_.prompt = Prompt::kConstantText;
    Say("type the constant value");
    return Status::OK();
  }
  if (command == "statistics") {
    sdm::DatabaseStats stats = sdm::ComputeStats(ws_->db());
    std::vector<std::string> advisories =
        sdm::DesignAdvisories(ws_->db(), stats);
    std::string line = std::to_string(stats.classes) + " class(es), " +
                       std::to_string(stats.attributes) + " attribute(s), " +
                       std::to_string(stats.groupings) + " grouping(s), " +
                       std::to_string(stats.entities) + " entit(ies)";
    if (advisories.empty()) {
      line += "; no design advisories";
    } else {
      line += "; " + std::to_string(advisories.size()) + " advisories: ";
      for (size_t i = 0; i < advisories.size() && i < 2; ++i) {
        if (i > 0) line += " | ";
        line += advisories[i];
      }
      if (advisories.size() > 2) line += " | ...";
    }
    Say(line);
    return Status::OK();
  }
  if (command == "show history") {
    if (journal_.empty()) {
      Say("no design actions recorded yet");
      return Status::OK();
    }
    std::string line = "history (last of " +
                       std::to_string(journal_.size()) + "): ";
    const auto& entries = journal_.entries();
    size_t first = entries.size() > 3 ? entries.size() - 3 : 0;
    for (size_t i = first; i < entries.size(); ++i) {
      if (i > first) line += " | ";
      line += "#" + std::to_string(entries[i].seq) + " " +
              entries[i].action +
              (entries[i].detail.empty() ? "" : " " + entries[i].detail);
    }
    Say(line);
    return Status::OK();
  }
  if (command == "undo") return CmdUndo();
  if (command == "redo") return CmdRedo();
  if (command == "save") return CmdSave();
  if (command == "load") {
    state_.prompt = Prompt::kLoadName;
    Say("type the name of the database to load");
    return Status::OK();
  }
  if (command == "pan left") return CmdPan(-8, 0);
  if (command == "pan right") return CmdPan(8, 0);
  if (command == "pan up") return CmdPan(0, -4);
  if (command == "pan down") return CmdPan(0, 4);
  if (command == "members up") return CmdMembersPan(-10);
  if (command == "members down") return CmdMembersPan(10);
  if (command == "edit" || command == "lhs" || command == "negate" ||
      command == "switch and/or" || command == "clear atom" ||
      command == "hand" || StartsWith(command, "rhs ") ||
      StartsWith(command, "place ")) {
    return CmdWorksheet(command);
  }
  if (command == "commit") return CmdCommit();
  if (command == "abort") return CmdAbort();
  return Fail(Status::NotFound("unknown command '" + command + "'"));
}

Status SessionController::CmdViewAssociations() {
  if (state_.level != Level::kInheritanceForest) {
    return Fail(Status::InvalidArgument(
        "view associations is a forest-view command"));
  }
  if (state_.selection.kind == SchemaSelection::Kind::kAttribute) {
    state_.selection = SchemaSelection::Class(state_.selection.cls);
  }
  if (state_.selection.kind != SchemaSelection::Kind::kClass) {
    return Fail(Status::InvalidArgument("select a class first"));
  }
  state_.level = Level::kSemanticNetwork;
  Say("semantic network of '" + SelectionName(*ws_, state_.selection) + "'");
  return Status::OK();
}

void SessionController::EnterDataLevel(const SchemaSelection& node) {
  DataPage page;
  if (node.kind == SchemaSelection::Kind::kGrouping) {
    page.is_grouping = true;
    page.grouping = node.grouping;
  } else {
    page.cls = node.cls;
  }
  state_.pages = {page};
  state_.level = Level::kDataLevel;
}

Status SessionController::CmdViewContents() {
  if (state_.level != Level::kInheritanceForest &&
      state_.level != Level::kSemanticNetwork) {
    return Fail(Status::InvalidArgument("view contents needs a schema view"));
  }
  if (state_.selection.kind != SchemaSelection::Kind::kClass &&
      state_.selection.kind != SchemaSelection::Kind::kGrouping) {
    return Fail(Status::InvalidArgument("select a class or grouping first"));
  }
  EnterDataLevel(state_.selection);
  Say("data level: contents of '" + SelectionName(*ws_, state_.selection) +
      "'");
  return Status::OK();
}

Status SessionController::CmdViewForest() {
  if (state_.temp_visit == TempVisit::kConstantSelection) {
    return Fail(Status::InvalidArgument(
        "finish the constant selection first (accept constant / abort)"));
  }
  state_.level = Level::kInheritanceForest;
  Say("inheritance forest");
  return Status::OK();
}

Status SessionController::CmdPop() {
  if (state_.level == Level::kSemanticNetwork) {
    state_.level = Level::kInheritanceForest;
    Say("back to the inheritance forest");
    return Status::OK();
  }
  if (state_.level == Level::kDataLevel) {
    if (state_.pages.size() > 1) {
      state_.pages.pop_back();
      state_.top_page()->followed = AttributeId();
      Say("popped back one page");
    } else {
      state_.level = Level::kInheritanceForest;
      state_.pages.clear();
      Say("back to the inheritance forest");
    }
    return Status::OK();
  }
  return Fail(Status::InvalidArgument("nothing to pop"));
}

Status SessionController::CmdFollow() {
  if (state_.level != Level::kDataLevel || state_.pages.empty()) {
    return Fail(Status::InvalidArgument("follow is a data-level command"));
  }
  DataPage* top = state_.top_page();
  if (top->is_grouping) {
    // "When follow is applied to a grouping ... we merely follow the
    // selected set(s) into the parent class and highlight the members."
    const GroupingDef& def =
        ws_->db().schema().GetGrouping(top->grouping);
    EntitySet members;
    for (EntityId index : top->selected) {
      EntitySet block = ws_->db().GetGroupingBlock(top->grouping, index);
      members.insert(block.begin(), block.end());
    }
    DataPage next;
    next.cls = def.parent;
    next.selected = members;
    state_.pages.push_back(next);
    Say("followed the selected set(s) into '" +
        ws_->db().schema().GetClass(def.parent).name + "'");
    return Status::OK();
  }
  state_.pick_mode = PickMode::kFollowAttribute;
  Say("choose an attribute to follow");
  return Status::OK();
}

Status SessionController::CmdCreateSubclass() {
  if (state_.level != Level::kInheritanceForest ||
      state_.selection.kind != SchemaSelection::Kind::kClass) {
    return Fail(Status::InvalidArgument(
        "select a parent class in the forest first"));
  }
  state_.prompt = Prompt::kSubclassName;
  Say("type the name of the new subclass of '" +
      SelectionName(*ws_, state_.selection) + "'");
  return Status::OK();
}

Status SessionController::CmdCreateAttribute() {
  if (state_.level != Level::kInheritanceForest ||
      state_.selection.kind != SchemaSelection::Kind::kClass) {
    return Fail(Status::InvalidArgument("select a class first"));
  }
  state_.prompt = Prompt::kAttributeName;
  Say("type the name of the new attribute of '" +
      SelectionName(*ws_, state_.selection) + "'");
  return Status::OK();
}

Status SessionController::CmdCreateGrouping() {
  if (state_.selection.kind != SchemaSelection::Kind::kAttribute) {
    return Fail(Status::InvalidArgument("select an attribute first"));
  }
  state_.prompt = Prompt::kGroupingName;
  Say("type the name of the grouping on '" +
      SelectionName(*ws_, state_.selection) + "'");
  return Status::OK();
}

Status SessionController::CmdDefineMembership() {
  if (state_.selection.kind != SchemaSelection::Kind::kClass) {
    return Fail(Status::InvalidArgument("select a subclass first"));
  }
  const ClassDef& def = ws_->db().schema().GetClass(state_.selection.cls);
  if (def.is_base()) {
    return Fail(Status::InvalidArgument(
        "a baseclass owns its entities; no membership predicate"));
  }
  WorksheetState& w = state_.worksheet;
  w = WorksheetState{};
  w.target = WorksheetState::Target::kMembership;
  w.target_class = state_.selection.cls;
  // Resume editing an existing predicate if one is stored.
  if (const Predicate* stored = ws_->SubclassPredicate(state_.selection.cls)) {
    w.pred = *stored;
  }
  w.pred.form = w.pred.clauses.empty() ? NormalForm::kDisjunctive
                                       : w.pred.form;
  state_.level = Level::kPredicateWorksheet;
  Say("predicate worksheet: membership of '" + def.name + "'");
  return Status::OK();
}

Status SessionController::CmdDefineDerivation() {
  if (state_.selection.kind != SchemaSelection::Kind::kAttribute) {
    return Fail(Status::InvalidArgument("select an attribute first"));
  }
  const AttributeDef& def =
      ws_->db().schema().GetAttribute(state_.selection.attribute);
  if (!def.multivalued) {
    return Fail(Status::TypeError(
        "derived attributes denote sets; make the attribute multivalued"));
  }
  WorksheetState& w = state_.worksheet;
  w = WorksheetState{};
  w.target = WorksheetState::Target::kDerivation;
  w.target_attr = state_.selection.attribute;
  if (const AttributeDerivation* d =
          ws_->GetAttributeDerivation(state_.selection.attribute)) {
    if (d->kind == AttributeDerivation::Kind::kAssignment) {
      w.use_hand = true;
      w.hand_term = d->assignment;
    } else {
      w.pred = d->predicate;
    }
  }
  state_.level = Level::kPredicateWorksheet;
  Say("predicate worksheet: derivation of '" + def.name + "'");
  return Status::OK();
}

Status SessionController::CmdDefineConstraint() {
  if (state_.selection.kind != SchemaSelection::Kind::kClass) {
    return Fail(Status::InvalidArgument(
        "select the class the constraint ranges over first"));
  }
  state_.prompt = Prompt::kConstraintName;
  Say("type the name of the integrity constraint on '" +
      SelectionName(*ws_, state_.selection) + "'");
  return Status::OK();
}

Status SessionController::CmdCheckConstraints() {
  std::vector<query::ConstraintViolation> violations =
      ws_->CheckConstraints();
  if (ws_->constraints().size() == 0) {
    Say("no integrity constraints are defined");
    return Status::OK();
  }
  if (violations.empty()) {
    Say("all " + std::to_string(ws_->constraints().size()) +
        " constraint(s) hold");
    return Status::OK();
  }
  std::string msg = std::to_string(violations.size()) + " violated:";
  for (const query::ConstraintViolation& v : violations) {
    msg += " " + v.constraint + " (";
    bool first = true;
    size_t shown = 0;
    for (EntityId e : v.violators) {
      if (!first) msg += ", ";
      first = false;
      msg += ws_->db().NameOf(e);
      if (++shown == 3 && v.violators.size() > 3) {
        msg += ", ...";
        break;
      }
    }
    msg += ")";
  }
  Say(msg);
  return Status::OK();
}

Status SessionController::CmdDisplayPredicate() {
  const Schema& schema = ws_->db().schema();
  switch (state_.selection.kind) {
    case SchemaSelection::Kind::kGrouping: {
      const GroupingDef& def = schema.GetGrouping(state_.selection.grouping);
      Say("'" + def.name + "' contains sets of '" +
          schema.GetClass(def.parent).name +
          "' grouped by common value of attribute '" +
          schema.GetAttribute(def.on_attribute).name + "'");
      return Status::OK();
    }
    case SchemaSelection::Kind::kClass: {
      const ClassDef& def = schema.GetClass(state_.selection.cls);
      if (const Predicate* p = ws_->SubclassPredicate(state_.selection.cls)) {
        Say("'" + def.name + "' = { e in " +
            schema.GetClass(def.parent()).name + " | " +
            PredicateToString(ws_->db(), *p) + " }");
      } else if (def.membership == Membership::kEnumerated) {
        Say("'" + def.name + "' is user-defined (hand-picked members)");
      } else {
        Say("'" + def.name + "' is a baseclass");
      }
      return Status::OK();
    }
    case SchemaSelection::Kind::kAttribute: {
      const AttributeDef& def =
          schema.GetAttribute(state_.selection.attribute);
      if (const AttributeDerivation* d =
              ws_->GetAttributeDerivation(state_.selection.attribute)) {
        if (d->kind == AttributeDerivation::Kind::kAssignment) {
          Say("'" + def.name +
              "'(x) := " + TermToString(ws_->db(), d->assignment));
        } else {
          Say("'" + def.name + "'(x) = { e | " +
              PredicateToString(ws_->db(), d->predicate) + " }");
        }
      } else {
        Say("'" + def.name + "' is a stored attribute");
      }
      return Status::OK();
    }
    case SchemaSelection::Kind::kNone:
      break;
  }
  return Fail(Status::InvalidArgument("nothing selected"));
}

Status SessionController::CmdDelete() {
  const Schema& schema = ws_->db().schema();
  PushUndoSnapshot();
  Status st;
  std::string what;
  switch (state_.selection.kind) {
    case SchemaSelection::Kind::kClass:
      what = "class '" + schema.GetClass(state_.selection.cls).name + "'";
      st = ws_->DeleteClass(state_.selection.cls);
      break;
    case SchemaSelection::Kind::kAttribute:
      what = "attribute '" +
             schema.GetAttribute(state_.selection.attribute).name + "'";
      st = ws_->DeleteAttribute(state_.selection.attribute);
      break;
    case SchemaSelection::Kind::kGrouping:
      what = "grouping '" +
             schema.GetGrouping(state_.selection.grouping).name + "'";
      st = ws_->db().DeleteGrouping(state_.selection.grouping);
      break;
    case SchemaSelection::Kind::kNone:
      st = Status::InvalidArgument("nothing selected");
      break;
  }
  if (!st.ok()) {
    undo_.pop_back();  // nothing changed
    return Fail(st);
  }
  state_.selection = SchemaSelection::None();
  Journal("delete", what);
  Say("deleted " + what);
  RefreshDerived();  // Scrubbed references can change remaining views.
  return Status::OK();
}

Status SessionController::CmdRename() {
  if (state_.selection.kind == SchemaSelection::Kind::kNone) {
    return Fail(Status::InvalidArgument("nothing selected"));
  }
  state_.prompt = Prompt::kRename;
  Say("type the new name for '" + SelectionName(*ws_, state_.selection) +
      "'");
  return Status::OK();
}

Status SessionController::CmdAssignAttrValue() {
  // The followed attribute of the page *below* the top gets, for each of
  // that page's selected entities, the top page's selection as its value
  // ("he then uses (re)assign att. value to update the family attribute for
  // both flute and oboe simultaneously").
  if (state_.level != Level::kDataLevel || state_.pages.size() < 2) {
    return Fail(Status::InvalidArgument(
        "(re)assign needs a followed attribute: follow one first"));
  }
  DataPage& source = state_.pages[state_.pages.size() - 2];
  DataPage& value_page = state_.pages.back();
  if (source.is_grouping || !source.followed.valid()) {
    return Fail(Status::InvalidArgument("the previous page followed no "
                                        "attribute"));
  }
  const AttributeDef& def = ws_->db().schema().GetAttribute(source.followed);
  PushUndoSnapshot();
  Status st;
  if (!def.multivalued) {
    if (value_page.selected.size() != 1) {
      undo_.pop_back();
      return Fail(Status::InvalidArgument(
          "select exactly one value for a singlevalued attribute"));
    }
    EntityId v = *value_page.selected.begin();
    for (EntityId target : source.selected) {
      st = ws_->db().SetSingle(target, source.followed, v);
      if (!st.ok()) break;
    }
  } else {
    for (EntityId target : source.selected) {
      st = ws_->db().SetMulti(target, source.followed, value_page.selected);
      if (!st.ok()) break;
    }
  }
  if (!st.ok()) return Fail(st);
  Journal("(re)assign att. value",
          def.name + " for " + std::to_string(source.selected.size()) +
              " entit(ies)");
  Say("assigned '" + def.name + "' for " +
      std::to_string(source.selected.size()) + " entit(ies)");
  RefreshDerived();
  return Status::OK();
}

Status SessionController::CmdMakeSubclass() {
  if (state_.level != Level::kDataLevel || state_.pages.empty() ||
      state_.top_page()->is_grouping) {
    return Fail(Status::InvalidArgument(
        "make subclass works on a class page at the data level"));
  }
  BeginTempVisit(TempVisit::kSubclassPlacement, Level::kInheritanceForest);
  state_.prompt = Prompt::kSubclassName;
  Say("type the name for the new user-defined subclass");
  return Status::OK();
}

Status SessionController::CmdCreateEntity() {
  if (state_.level != Level::kDataLevel || state_.pages.empty()) {
    return Fail(Status::InvalidArgument("create entity is a data-level "
                                        "command"));
  }
  state_.prompt = Prompt::kEntityName;
  Say("type the name of the new entity");
  return Status::OK();
}

Status SessionController::CmdDeleteEntity() {
  if (state_.level != Level::kDataLevel || state_.pages.empty()) {
    return Fail(Status::InvalidArgument("delete entity is a data-level "
                                        "command"));
  }
  DataPage* top = state_.top_page();
  if (top->is_grouping || top->selected.empty()) {
    return Fail(Status::InvalidArgument(
        "select the entities to delete on a class page"));
  }
  PushUndoSnapshot();
  EntitySet doomed = top->selected;
  for (EntityId e : doomed) {
    Status st = ws_->DeleteEntity(e);
    if (!st.ok()) return Fail(st);
  }
  for (DataPage& page : state_.pages) {
    for (EntityId e : doomed) page.selected.erase(e);
  }
  Journal("delete entity", std::to_string(doomed.size()) + " entit(ies)");
  Say("deleted " + std::to_string(doomed.size()) + " entit(ies)");
  RefreshDerived();
  return Status::OK();
}

// --- Worksheet commands. ---

query::Term* SessionController::FocusedTerm() {
  WorksheetState& w = state_.worksheet;
  if (w.use_hand) return &w.hand_term;
  if (w.current_atom < 0 ||
      static_cast<size_t>(w.current_atom) >= w.pred.atoms.size()) {
    return nullptr;
  }
  Atom& atom = w.pred.atoms[w.current_atom];
  return w.focus == WorksheetState::Focus::kLhs ? &atom.lhs : &atom.rhs;
}

ClassId SessionController::CandidateClass() const {
  const Schema& schema = ws_->db().schema();
  const WorksheetState& w = state_.worksheet;
  if (w.target == WorksheetState::Target::kMembership &&
      schema.HasClass(w.target_class)) {
    return schema.GetClass(w.target_class).parent();
  }
  if (w.target == WorksheetState::Target::kDerivation &&
      schema.HasAttribute(w.target_attr)) {
    return schema.GetAttribute(w.target_attr).value_class;
  }
  if (w.target == WorksheetState::Target::kConstraint &&
      schema.HasClass(w.target_class)) {
    // Constraint candidates are the constrained class's own members.
    return w.target_class;
  }
  return ClassId();
}

ClassId SessionController::SelfClass() const {
  const Schema& schema = ws_->db().schema();
  const WorksheetState& w = state_.worksheet;
  if (w.target == WorksheetState::Target::kDerivation &&
      schema.HasAttribute(w.target_attr)) {
    return schema.GetAttribute(w.target_attr).owner;
  }
  return ClassId();
}

Status SessionController::CmdWorksheet(const std::string& command) {
  if (state_.level != Level::kPredicateWorksheet) {
    return Fail(Status::InvalidArgument("not on the predicate worksheet"));
  }
  WorksheetState& w = state_.worksheet;
  if (command == "edit") {
    if (w.current_atom < 0) {
      return Fail(Status::InvalidArgument("pick an atom slot first"));
    }
    w.focus = WorksheetState::Focus::kLhs;
    Say("editing atom " +
        std::string(1, static_cast<char>('A' + w.current_atom)) +
        "; pick attributes to build the left hand side map");
    return Status::OK();
  }
  if (StartsWith(command, "place ")) {
    return PickWorksheetTarget("clause", command.substr(6));
  }
  if (command == "lhs") {
    w.focus = WorksheetState::Focus::kLhs;
    Say("building the left hand side");
    return Status::OK();
  }
  if (command == "negate") {
    if (w.current_atom < 0) {
      return Fail(Status::InvalidArgument("no atom selected"));
    }
    w.pred.atoms[w.current_atom].negated =
        !w.pred.atoms[w.current_atom].negated;
    Say(w.pred.atoms[w.current_atom].negated ? "operator negated"
                                             : "negation removed");
    return Status::OK();
  }
  if (command == "switch and/or") {
    w.pred.form = w.pred.form == NormalForm::kConjunctive
                      ? NormalForm::kDisjunctive
                      : NormalForm::kConjunctive;
    Say(w.pred.form == NormalForm::kConjunctive
            ? "conjunctive normal form (AND of clauses)"
            : "disjunctive normal form (OR of clauses)");
    return Status::OK();
  }
  if (command == "clear atom") {
    if (w.current_atom < 0) {
      return Fail(Status::InvalidArgument("no atom selected"));
    }
    Atom blank;
    blank.lhs = Term::Candidate();
    blank.rhs = Term::Candidate();
    w.pred.atoms[w.current_atom] = blank;
    w.focus = WorksheetState::Focus::kLhs;
    Say("atom cleared");
    return Status::OK();
  }
  if (command == "hand") {
    if (w.target != WorksheetState::Target::kDerivation) {
      return Fail(Status::InvalidArgument(
          "the hand (assignment) operator applies to attribute derivations"));
    }
    w.use_hand = true;
    w.hand_term = Term::Self();
    Say("hand: the derivation is a map from the owner entity x; pick "
        "attributes");
    return Status::OK();
  }
  // Right hand side options.
  Term* rhs_slot = nullptr;
  if (w.current_atom >= 0 &&
      static_cast<size_t>(w.current_atom) < w.pred.atoms.size()) {
    rhs_slot = &w.pred.atoms[w.current_atom].rhs;
  }
  if (command == "rhs map") {
    if (rhs_slot == nullptr) {
      return Fail(Status::InvalidArgument("no atom selected"));
    }
    *rhs_slot = Term::Candidate();
    w.focus = WorksheetState::Focus::kRhs;
    Say("right hand side: map from the entity");
    return Status::OK();
  }
  if (command == "rhs map from owner") {
    if (rhs_slot == nullptr || w.target != WorksheetState::Target::kDerivation) {
      return Fail(Status::InvalidArgument(
          "maps from x are only legal in attribute derivations"));
    }
    *rhs_slot = Term::Self();
    w.focus = WorksheetState::Focus::kRhs;
    Say("right hand side: map from the owner entity x");
    return Status::OK();
  }
  if (command == "rhs map starting at class") {
    if (rhs_slot == nullptr) {
      return Fail(Status::InvalidArgument("no atom selected"));
    }
    w.focus = WorksheetState::Focus::kRhs;
    w.rhs_pending = WorksheetState::RhsPending::kMapClass;
    Say("pick the start class from the class list");
    return Status::OK();
  }
  if (command == "rhs constant") {
    if (rhs_slot == nullptr) {
      return Fail(Status::InvalidArgument("no atom selected"));
    }
    // "the user is taken temporarily into the data level with the class at
    // which the left hand side mapping terminates showing".
    query::Evaluator eval(ws_->db());
    query::PredicateContext pctx;
    pctx.candidate_class = CandidateClass();
    if (SelfClass().valid()) pctx.self_class = SelfClass();
    Result<ClassId> terminal =
        eval.TermTerminalClass(w.pred.atoms[w.current_atom].lhs, pctx);
    if (!terminal.ok()) return Fail(terminal.status());
    w.focus = WorksheetState::Focus::kRhs;
    BeginTempVisit(TempVisit::kConstantSelection, Level::kDataLevel);
    DataPage page;
    page.cls = *terminal;
    state_.pages = {page};
    Say("select or create the constant(s) in '" +
        ws_->db().schema().GetClass(*terminal).name +
        "', then 'accept constant'");
    return Status::OK();
  }
  if (command == "rhs constant starting at class") {
    if (rhs_slot == nullptr) {
      return Fail(Status::InvalidArgument("no atom selected"));
    }
    w.focus = WorksheetState::Focus::kRhs;
    w.rhs_pending = WorksheetState::RhsPending::kConstantClass;
    Say("pick the class to search for the constant");
    return Status::OK();
  }
  return Fail(Status::NotFound("unknown worksheet command '" + command +
                               "'"));
}

Status SessionController::CmdAcceptConstant() {
  if (state_.temp_visit != TempVisit::kConstantSelection ||
      state_.pages.empty()) {
    return Fail(Status::InvalidArgument("no constant selection in progress"));
  }
  EntitySet constants = state_.top_page()->selected;
  EndTempVisit();
  Term* rhs = FocusedTerm();
  if (rhs == nullptr) {
    return Fail(Status::Internal("constant selection lost its atom"));
  }
  *rhs = Term::Constant(constants);
  Say("constant " + TermToString(ws_->db(), *rhs) + " accepted");
  return Status::OK();
}

Status SessionController::CmdCommit() {
  if (state_.level != Level::kPredicateWorksheet) {
    return Fail(Status::InvalidArgument("nothing to commit"));
  }
  WorksheetState& w = state_.worksheet;
  PushUndoSnapshot();
  Status st;
  std::string done;
  if (w.target == WorksheetState::Target::kMembership) {
    st = ws_->DefineSubclassMembership(w.target_class, w.pred);
    if (st.ok()) {
      done = "membership of '" +
             ws_->db().schema().GetClass(w.target_class).name +
             "' evaluated: " +
             std::to_string(ws_->db().Members(w.target_class).size()) +
             " member(s)";
    }
  } else if (w.target == WorksheetState::Target::kDerivation) {
    AttributeDerivation d = w.use_hand
                                ? AttributeDerivation::Assign(w.hand_term)
                                : AttributeDerivation::FromPredicate(w.pred);
    st = ws_->DefineAttributeDerivation(w.target_attr, std::move(d));
    if (st.ok()) {
      done = "derivation of '" +
             ws_->db().schema().GetAttribute(w.target_attr).name +
             "' evaluated";
    }
  } else if (w.target == WorksheetState::Target::kConstraint) {
    // Redefinition replaces the stored predicate.
    if (ws_->constraints().Has(w.constraint_name)) {
      st = ws_->DropConstraint(w.constraint_name);
    }
    if (st.ok()) {
      st = ws_->DefineConstraint(w.constraint_name, w.target_class, w.pred);
    }
    if (st.ok()) {
      Result<query::ConstraintViolation> check =
          ws_->constraints().Check(ws_->db(), w.constraint_name);
      done = "constraint '" + w.constraint_name + "' defined; " +
             (check.ok() && check->violators.empty()
                  ? "it currently holds"
                  : "currently violated by " +
                        std::to_string(check.ok() ? check->violators.size()
                                                  : 0) +
                        " entit(ies)");
    }
  } else {
    st = Status::InvalidArgument("the worksheet has no target");
  }
  if (!st.ok()) {
    undo_.pop_back();
    return Fail(st);
  }
  state_.level = Level::kInheritanceForest;
  state_.worksheet = WorksheetState{};
  Journal("commit", done);
  Say(done);
  return Status::OK();
}

Status SessionController::CmdAbort() {
  if (state_.temp_visit != TempVisit::kNone) {
    EndTempVisit();
    state_.prompt = Prompt::kNone;
    Say("temporary visit aborted");
    return Status::OK();
  }
  if (state_.level == Level::kPredicateWorksheet) {
    state_.level = Level::kInheritanceForest;
    state_.worksheet = WorksheetState{};
    Say("worksheet abandoned");
    return Status::OK();
  }
  state_.prompt = Prompt::kNone;
  state_.pick_mode = PickMode::kNormal;
  Say("aborted");
  return Status::OK();
}

// --- Undo / redo / save. ---

void SessionController::PushUndoSnapshot() {
  if (shared_mode_) {
    // Serializing the shared workspace per mutation would be paid by every
    // session; undo is disabled instead. A single placeholder keeps the
    // handlers' "undo_.pop_back() when nothing changed" pattern safe.
    undo_.assign(1, std::string());
    redo_.clear();
    return;
  }
  undo_.push_back(store::Save(*ws_));
  redo_.clear();
}

Status SessionController::CmdUndo() {
  if (shared_mode_) {
    return Fail(Status::Unimplemented("undo is disabled in shared sessions"));
  }
  if (undo_.empty()) return Fail(Status::InvalidArgument("nothing to undo"));
  Result<std::unique_ptr<query::Workspace>> restored =
      store::Load(undo_.back());
  if (!restored.ok()) return Fail(restored.status());
  redo_.push_back(store::Save(*ws_));
  undo_.pop_back();
  live_.reset();  // Observes the old database; must go before ws_.
  owned_ws_ = std::move(restored).ValueOrDie();
  ws_ = owned_ws_.get();
  AttachLiveEngine();
  // Selections and pages may refer to objects that no longer exist.
  const Schema& schema = ws_->db().schema();
  if ((state_.selection.kind == SchemaSelection::Kind::kClass &&
       !schema.HasClass(state_.selection.cls)) ||
      (state_.selection.kind == SchemaSelection::Kind::kAttribute &&
       !schema.HasAttribute(state_.selection.attribute)) ||
      (state_.selection.kind == SchemaSelection::Kind::kGrouping &&
       !schema.HasGrouping(state_.selection.grouping))) {
    state_.selection = SchemaSelection::None();
  }
  std::vector<DataPage> kept;
  for (DataPage& page : state_.pages) {
    bool live = page.is_grouping ? schema.HasGrouping(page.grouping)
                                 : schema.HasClass(page.cls);
    if (!live) break;
    EntitySet pruned;
    for (EntityId e : page.selected) {
      if (ws_->db().HasEntity(e)) pruned.insert(e);
    }
    page.selected = std::move(pruned);
    kept.push_back(page);
  }
  state_.pages = std::move(kept);
  if (state_.level == Level::kDataLevel && state_.pages.empty()) {
    state_.level = Level::kInheritanceForest;
  }
  Journal("undo", "");
  Say("undone");
  return Status::OK();
}

Status SessionController::CmdRedo() {
  if (shared_mode_) {
    return Fail(Status::Unimplemented("redo is disabled in shared sessions"));
  }
  if (redo_.empty()) return Fail(Status::InvalidArgument("nothing to redo"));
  Result<std::unique_ptr<query::Workspace>> restored =
      store::Load(redo_.back());
  if (!restored.ok()) return Fail(restored.status());
  undo_.push_back(store::Save(*ws_));
  redo_.pop_back();
  live_.reset();  // Observes the old database; must go before ws_.
  owned_ws_ = std::move(restored).ValueOrDie();
  ws_ = owned_ws_.get();
  AttachLiveEngine();
  Journal("redo", "");
  Say("redone");
  return Status::OK();
}

Status SessionController::CmdSave() {
  state_.prompt = Prompt::kSaveName;
  Say("type the name to save the database as");
  return Status::OK();
}

Status SessionController::CmdPan(int dx, int dy) {
  state_.pan_x += dx;
  state_.pan_y += dy;
  Say("panned");
  return Status::OK();
}

Status SessionController::CmdMembersPan(int delta) {
  DataPage* top = state_.top_page();
  if (state_.level != Level::kDataLevel || top == nullptr) {
    return Fail(Status::InvalidArgument("no member list to pan"));
  }
  top->member_pan = std::max(0, top->member_pan + delta);
  Say("member list panned");
  return Status::OK();
}

// --- Text input. ---

Status SessionController::HandleText(const std::string& text) {
  screen_valid_ = false;
  Prompt prompt = state_.prompt;
  state_.prompt = Prompt::kNone;
  const Schema& schema = ws_->db().schema();
  switch (prompt) {
    case Prompt::kNone:
      return Fail(Status::InvalidArgument("no prompt is awaiting input"));
    case Prompt::kBaseclassName: {
      if (!IsValidName(text)) {
        return Fail(Status::InvalidArgument("invalid class name"));
      }
      state_.pending_text = text;
      state_.prompt = Prompt::kNamingAttrName;
      Say("type the name of '" + text +
          "'s naming attribute (e.g. name, stage_name)");
      return Status::OK();
    }
    case Prompt::kNamingAttrName: {
      PushUndoSnapshot();
      Result<ClassId> cls =
          ws_->db().CreateBaseclass(state_.pending_text, text);
      if (!cls.ok()) {
        undo_.pop_back();
        state_.pending_text.clear();
        return Fail(cls.status());
      }
      state_.selection = SchemaSelection::Class(*cls);
      Journal("create baseclass",
              state_.pending_text + " (naming: " + text + ")");
      Say("baseclass '" + state_.pending_text +
          "' created with naming attribute '" + text + "'");
      state_.pending_text.clear();
      return Status::OK();
    }
    case Prompt::kSubclassName: {
      PushUndoSnapshot();
      if (state_.temp_visit == TempVisit::kSubclassPlacement) {
        // `make subclass`: the class on the data page becomes the parent and
        // the selected entities its members.
        DataPage source = state_.saved_pages.empty()
                              ? DataPage{}
                              : state_.saved_pages.back();
        Result<ClassId> cls = ws_->db().CreateSubclass(
            text, source.cls, Membership::kEnumerated);
        if (!cls.ok()) {
          undo_.pop_back();
          EndTempVisit();
          return Fail(cls.status());
        }
        for (EntityId e : source.selected) {
          Status st = ws_->db().AddToClass(e, *cls);
          if (!st.ok()) {
            EndTempVisit();
            return Fail(st);
          }
        }
        EndTempVisit();
        // "Returning ... correctly sets the hand icon pointing at the new
        // schema selection."
        state_.selection = SchemaSelection::Class(*cls);
        Journal("make subclass",
                text + " (" + std::to_string(source.selected.size()) +
                    " member(s))");
        Say("user-defined subclass '" + text + "' created with " +
            std::to_string(source.selected.size()) + " member(s)");
        RefreshDerived();
        return Status::OK();
      }
      Result<ClassId> cls = ws_->db().CreateSubclass(
          text, state_.selection.cls, Membership::kEnumerated);
      if (!cls.ok()) {
        undo_.pop_back();
        return Fail(cls.status());
      }
      state_.selection = SchemaSelection::Class(*cls);
      Journal("create subclass", text);
      Say("subclass '" + text + "' created; use (re)define membership to "
          "give it a predicate");
      return Status::OK();
    }
    case Prompt::kAttributeName: {
      PushUndoSnapshot();
      // Created multivalued into STRING by default; (re)specify value class
      // adjusts it (the paper's flow for all_inst).
      Result<AttributeId> attr = ws_->db().CreateAttribute(
          state_.selection.cls, text, Schema::kStrings(),
          /*multivalued=*/true);
      if (!attr.ok()) {
        undo_.pop_back();
        return Fail(attr.status());
      }
      state_.selection =
          SchemaSelection::Attribute(state_.selection.cls, *attr);
      Journal("create attribute", text);
      Say("attribute '" + text +
          "' created (multivalued, STRING); use (re)specify value class");
      return Status::OK();
    }
    case Prompt::kGroupingName: {
      PushUndoSnapshot();
      const AttributeDef& def =
          schema.GetAttribute(state_.selection.attribute);
      Result<GroupingId> g =
          ws_->db().CreateGrouping(text, def.owner, def.id);
      if (!g.ok()) {
        undo_.pop_back();
        return Fail(g.status());
      }
      state_.selection = SchemaSelection::Grouping(*g);
      Journal("create grouping", text + " on " + def.name);
      Say("grouping '" + text + "' on '" + def.name + "' created");
      return Status::OK();
    }
    case Prompt::kEntityName: {
      DataPage* top = state_.top_page();
      if (top == nullptr || top->is_grouping) {
        return Fail(Status::InvalidArgument("no class page"));
      }
      PushUndoSnapshot();
      ClassId base = schema.RootOf(top->cls);
      Result<EntityId> e = ws_->db().CreateEntity(base, text);
      if (!e.ok()) {
        undo_.pop_back();
        return Fail(e.status());
      }
      Status st = ws_->db().AddToClass(*e, top->cls);
      if (!st.ok() && !schema.GetClass(top->cls).is_base()) return Fail(st);
      top->selected.insert(*e);
      Journal("create entity",
              text + " in " + schema.GetClass(top->cls).name);
      Say("entity '" + text + "' created in '" +
          schema.GetClass(top->cls).name + "'");
      RefreshDerived();
      return Status::OK();
    }
    case Prompt::kRename: {
      PushUndoSnapshot();
      Status st;
      switch (state_.selection.kind) {
        case SchemaSelection::Kind::kClass:
          st = ws_->db().RenameClass(state_.selection.cls, text);
          break;
        case SchemaSelection::Kind::kAttribute:
          st = ws_->db().RenameAttribute(state_.selection.attribute, text);
          break;
        case SchemaSelection::Kind::kGrouping:
          st = ws_->db().RenameGrouping(state_.selection.grouping, text);
          break;
        case SchemaSelection::Kind::kNone:
          st = Status::InvalidArgument("nothing selected");
          break;
      }
      if (!st.ok()) {
        undo_.pop_back();
        return Fail(st);
      }
      Journal("(re)name", text);
      Say("renamed to '" + text + "'");
      return Status::OK();
    }
    case Prompt::kSaveName: {
      const std::string prev_name = ws_->name();
      ws_->set_name(text);
      Status st = SaveAs(SavePathFor(text));
      if (!st.ok()) {
        // A failed save leaves no event in the WAL, so its replay must see
        // no effect at all — undo the rename. The journal still records
        // the attempt (failures are design history too).
        ws_->set_name(prev_name);
        Journal("save FAILED", text + ": " + st.ToString());
        WalAppendNote("save FAILED", text + ": " + st.ToString());
        return Fail(st);
      }
      Journal("save", text);
      Say("database saved as '" + text + "'");
      return Status::OK();
    }
    case Prompt::kLoadName: {
      if (shared_mode_) {
        return Fail(Status::Unimplemented(
            "load is disabled in shared sessions"));
      }
      Result<std::unique_ptr<query::Workspace>> loaded =
          store::LoadFromFile(SavePathFor(text));
      if (!loaded.ok()) {
        Journal("load FAILED", text + ": " + loaded.status().ToString());
        WalAppendNote("load FAILED", text + ": " + loaded.status().ToString());
        return Fail(loaded.status());
      }
      live_.reset();  // Observes the old database; must go before ws_.
      owned_ws_ = std::move(loaded).ValueOrDie();
      ws_ = owned_ws_.get();
      AttachLiveEngine();
      // A fresh database: selections, pages and undo history reset; the
      // session journal keeps running (the load is itself design history).
      state_ = SessionState{};
      undo_.clear();
      redo_.clear();
      Journal("load", text);
      // The old edit log described the old workspace; start a fresh one.
      if (wal_ != nullptr && !wal_replaying_) RotateWalForLoad();
      Say("database '" + ws_->name() + "' loaded; pick an object to focus "
          "on");
      return Status::OK();
    }
    case Prompt::kConstraintName: {
      if (!IsValidName(text)) {
        return Fail(Status::InvalidArgument("invalid constraint name"));
      }
      WorksheetState& w = state_.worksheet;
      w = WorksheetState{};
      w.target = WorksheetState::Target::kConstraint;
      w.target_class = state_.selection.cls;
      w.constraint_name = text;
      if (const query::Constraint* existing =
              ws_->constraints().Find(text)) {
        w.pred = existing->predicate;
      }
      w.pred.form = w.pred.clauses.empty() ? NormalForm::kDisjunctive
                                           : w.pred.form;
      state_.level = Level::kPredicateWorksheet;
      Say("predicate worksheet: constraint '" + text +
          "' — members must satisfy the committed predicate");
      return Status::OK();
    }
    case Prompt::kDropConstraint: {
      PushUndoSnapshot();
      Status st = ws_->DropConstraint(text);
      if (!st.ok()) {
        undo_.pop_back();
        return Fail(st);
      }
      Journal("drop constraint", text);
      Say("constraint '" + text + "' dropped");
      return Status::OK();
    }
    case Prompt::kConstantText: {
      DataPage* top = state_.top_page();
      if (state_.temp_visit != TempVisit::kConstantSelection ||
          top == nullptr) {
        return Fail(Status::InvalidArgument("no constant selection"));
      }
      Result<EntityId> e = ws_->db().FindEntity(schema.RootOf(top->cls),
                                                text);
      if (!e.ok()) return Fail(e.status());
      if (!ws_->db().IsMember(*e, top->cls)) {
        return Fail(Status::Consistency("'" + text +
                                        "' is not a member of the shown "
                                        "class"));
      }
      top->selected.insert(*e);
      Say("constant '" + text + "' selected");
      return Status::OK();
    }
  }
  return Status::Internal("unhandled prompt");
}

// --- Temporary visits (Diagram 1 loop arrows). ---

void SessionController::BeginTempVisit(TempVisit kind, Level target_level) {
  state_.saved_level = state_.level;
  state_.saved_selection = state_.selection;
  state_.saved_pages = state_.pages;
  state_.temp_visit = kind;
  state_.level = target_level;
  if (target_level != Level::kDataLevel) state_.pages.clear();
}

void SessionController::EndTempVisit() {
  state_.level = state_.saved_level;
  state_.selection = state_.saved_selection;
  state_.pages = state_.saved_pages;
  state_.temp_visit = TempVisit::kNone;
  state_.saved_pages.clear();
}

}  // namespace isis::ui
