/// \file views.h
/// \brief The four ISIS views (paper §3.1): inheritance forest, semantic
/// network, predicate worksheet, and the data level.
///
/// Each view is a pure function of (workspace, session state) to a Screen
/// (canvas + hit regions), which makes every one of the paper's Figures
/// 1-12 a deterministic artifact of a session-script prefix.

#ifndef ISIS_UI_VIEWS_H_
#define ISIS_UI_VIEWS_H_

#include <string>

#include "query/workspace.h"
#include "ui/screen.h"
#include "ui/state.h"

namespace isis::ui {

/// Everything a view render needs.
struct RenderContext {
  const query::Workspace& ws;
  const SessionState& st;
  /// Status line contents: prompts, warnings, textual output (§3's text
  /// windows).
  std::string message;
};

/// The inheritance forest view (Figures 1, 8, 12): trees of classes with
/// groupings above and subclasses below, the hand icon at the schema
/// selection, and the editing menu on the right.
Screen RenderForestView(const RenderContext& ctx);

/// The semantic network view (Figure 2): the selected class with its
/// outgoing labeled arcs (single arrow singlevalued, double arrow
/// multivalued), inherited attributes included.
Screen RenderNetworkView(const RenderContext& ctx);

/// The predicate worksheet (Figures 9, 10): clause windows, the atom list,
/// the atom construction window with its class stack, and the class list.
Screen RenderWorksheetView(const RenderContext& ctx);

/// The data level (Figures 3-7, 11): overlapping pages, each with the full
/// attribute section and a pannable member list; selected members bold.
Screen RenderDataView(const RenderContext& ctx);

/// Dispatches on ctx.st.level.
Screen RenderCurrent(const RenderContext& ctx);

}  // namespace isis::ui

#endif  // ISIS_UI_VIEWS_H_
