/// \file render_util.h
/// \brief Shared drawing helpers: the class/grouping box, view chrome, and
/// the hand icon — the "uniform graphical representations" the paper
/// stresses are identical across all views.

#ifndef ISIS_UI_RENDER_UTIL_H_
#define ISIS_UI_RENDER_UTIL_H_

#include <string>
#include <vector>

#include "gfx/widgets.h"
#include "query/workspace.h"
#include "ui/screen.h"
#include "ui/state.h"

namespace isis::ui {

/// Layout metrics of a class box (see DrawClassBox).
struct BoxMetrics {
  int width = 0;
  int height = 0;
};

/// Box size for a class. Attribute rows are the class's own attributes by
/// default ("In this view [the forest] classes do not contain inherited
/// attributes, which appear automatically in all other views").
BoxMetrics ClassBoxMetrics(const query::Workspace& ws, ClassId cls,
                           bool include_inherited);

/// Box size for a grouping (name + bordered pattern, no attribute section).
BoxMetrics GroupingBoxMetrics(const query::Workspace& ws, GroupingId g);

/// Draws a class box at logical (x, y) in `win`:
///   name section (reverse video for baseclasses), the characteristic fill
///   pattern row, and one row per attribute with a swatch of the value
///   class's pattern (white-bordered when the attribute is multivalued).
/// Registers `class:<name>` and `attr:<name>` hit regions on `screen`.
void DrawClassBox(gfx::Window* win, Screen* screen,
                  const query::Workspace& ws, ClassId cls, int x, int y,
                  bool include_inherited);

/// Draws a grouping box; pattern shown with the white set border. Registers
/// a `grouping:<name>` hit region.
void DrawGroupingBox(gfx::Window* win, Screen* screen,
                     const query::Workspace& ws, GroupingId g, int x, int y);

/// Draws the hand icon pointing at a box whose logical top-left is (x, y).
void DrawHandIcon(gfx::Window* win, int x, int y);

/// Draws the standard view chrome: title bar (database name + view name),
/// the right-hand menu (with `menu:<command>` hit regions), and the bottom
/// text window with `message`. Returns the content area for the view's
/// window.
gfx::Rect DrawChrome(Screen* screen, const std::string& db_name,
                     const std::string& view_name,
                     const std::vector<gfx::Menu::Item>& menu_items,
                     const std::string& message);

/// Display name of the current schema selection ("soloists", "plays", ...).
std::string SelectionName(const query::Workspace& ws,
                          const SchemaSelection& sel);

}  // namespace isis::ui

#endif  // ISIS_UI_RENDER_UTIL_H_
