/// \file screen.h
/// \brief A rendered view plus its pick hit-map.
///
/// Views are pure functions of (workspace, session state) to a Screen; the
/// controller hit-tests PickEvents against the regions. Named picks in
/// session scripts resolve through the same regions, so scripted sessions
/// exercise exactly the interactive code path.

#ifndef ISIS_UI_SCREEN_H_
#define ISIS_UI_SCREEN_H_

#include <string>
#include <vector>

#include "gfx/canvas.h"

namespace isis::ui {

/// A pickable region and its canonical target name. Names are namespaced:
///   class:<name>      grouping:<name>     attr:<name>
///   member:<name>     block:<name>        menu:<command>
///   atom:<A..E>       clause:<1..3>       op:<display>
///   rhsopt:<option>   page:<class name>
struct HitRegion {
  gfx::Rect rect;
  std::string target;
};

/// Standard ISIS screen size (the paper's workstation display, scaled to
/// character cells).
inline constexpr int kScreenWidth = 132;
inline constexpr int kScreenHeight = 40;

/// \brief A fully rendered screen.
struct Screen {
  Screen() : canvas(kScreenWidth, kScreenHeight) {}

  gfx::Canvas canvas;
  std::vector<HitRegion> hits;

  /// First region containing (x, y), topmost (= latest registered) wins.
  const HitRegion* HitTest(int x, int y) const {
    for (auto it = hits.rbegin(); it != hits.rend(); ++it) {
      if (it->rect.Contains(x, y)) return &*it;
    }
    return nullptr;
  }

  /// First region whose target matches `name` exactly.
  const HitRegion* FindTarget(const std::string& name) const {
    for (const HitRegion& h : hits) {
      if (h.target == name) return &h;
    }
    return nullptr;
  }
};

}  // namespace isis::ui

#endif  // ISIS_UI_SCREEN_H_
