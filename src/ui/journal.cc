#include "ui/journal.h"

namespace isis::ui {

int DesignJournal::Record(std::string action, std::string detail) {
  JournalEntry entry;
  entry.seq = next_seq_++;
  entry.action = std::move(action);
  entry.detail = std::move(detail);
  entries_.push_back(std::move(entry));
  return entries_.back().seq;
}

std::string DesignJournal::Render(size_t n) const {
  std::string out;
  size_t first = entries_.size() > n ? entries_.size() - n : 0;
  for (size_t i = first; i < entries_.size(); ++i) {
    if (!out.empty()) out += "\n";
    out += "#" + std::to_string(entries_[i].seq) + " " + entries_[i].action;
    if (!entries_[i].detail.empty()) out += ": " + entries_[i].detail;
  }
  return out;
}

std::vector<JournalEntry> DesignJournal::Find(
    const std::string& needle) const {
  std::vector<JournalEntry> out;
  for (const JournalEntry& e : entries_) {
    if (e.action.find(needle) != std::string::npos ||
        e.detail.find(needle) != std::string::npos) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace isis::ui
