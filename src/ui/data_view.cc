/// \file data_view.cc
/// \brief The data level (paper §3.2, Figures 3-7, 11).
///
/// "The view here contains a number of overlapping pages. The top page
/// contains the schema selection ... and the data selection, some of its
/// members. Each page contains a class, with all of its attributes
/// including inherited ones, or a grouping. To the right of each class or
/// grouping is a pannable list of its members. Selected members are
/// highlighted with bold text."
///
/// Pages cascade right-and-down; following an attribute pushes a page, pop
/// goes backwards. Only the top page is interactive (its members and
/// attribute rows register hit regions).

#include <algorithm>

#include "gfx/pattern.h"
#include "ui/render_util.h"
#include "ui/views.h"

namespace isis::ui {

using gfx::Menu;
using gfx::Rect;
using gfx::Window;
using sdm::EntitySet;
using sdm::Schema;

namespace {

constexpr int kPageDx = 7;    // cascade offset per page
constexpr int kPageDy = 2;
constexpr int kListRows = 14;  // member rows visible before panning
constexpr int kNameColumn = 24;
constexpr int kListWidth = 22;

std::vector<Menu::Item> DataMenu(const RenderContext& ctx) {
  std::vector<Menu::Item> items;
  auto add = [&items](const char* cmd, const char* key = "") {
    items.push_back(Menu::Item{cmd, key, true});
  };
  if (ctx.st.temp_visit == TempVisit::kConstantSelection) {
    add("accept constant");
    add("create constant");
    add("abort");
    add("members up");
    add("members down");
    return items;
  }
  add("follow", "F5");
  add("pop", "F0");
  add("select/reject");
  add("(re)assign att. value");
  add("make subclass", "F6");
  add("create entity");
  add("delete entity");
  add("members up");
  add("members down");
  add("view forest", "F1");
  add("save");
  add("stop");
  return items;
}

/// Members listed on a page: entities of a class, or the block indices of a
/// grouping ("each page contains ... a grouping" whose members are sets).
std::vector<EntityId> PageMembers(const query::Workspace& ws,
                                  const DataPage& page) {
  std::vector<EntityId> out;
  if (page.is_grouping) {
    for (const sdm::GroupingBlock& b :
         ws.db().GroupingBlocks(page.grouping)) {
      out.push_back(b.index);
    }
  } else {
    const EntitySet& m = ws.db().Members(page.cls);
    out.assign(m.begin(), m.end());
  }
  return out;
}

}  // namespace

Screen RenderDataView(const RenderContext& ctx) {
  Screen screen;
  const char* view_name = ctx.st.temp_visit == TempVisit::kConstantSelection
                              ? "data level (select constant)"
                              : "data level";
  Rect content = DrawChrome(&screen, ctx.ws.name(), view_name, DataMenu(ctx),
                            ctx.message);
  Window win(&screen.canvas, content);

  const Schema& schema = ctx.ws.db().schema();
  const sdm::Database& db = ctx.ws.db();

  for (size_t pi = 0; pi < ctx.st.pages.size(); ++pi) {
    const DataPage& page = ctx.st.pages[pi];
    bool top = (pi + 1 == ctx.st.pages.size());
    int px = 2 + static_cast<int>(pi) * kPageDx;
    int py = 1 + static_cast<int>(pi) * kPageDy;

    std::string title;
    std::vector<AttributeId> attrs;
    int pattern;
    if (page.is_grouping) {
      const sdm::GroupingDef& def = schema.GetGrouping(page.grouping);
      title = def.name;
      pattern = def.fill_pattern;
    } else {
      const sdm::ClassDef& def = schema.GetClass(page.cls);
      title = def.name;
      pattern = def.fill_pattern;
      attrs = schema.AllAttributesOf(page.cls);
    }

    std::vector<EntityId> members = PageMembers(ctx.ws, page);
    int shown = std::min<int>(kListRows, static_cast<int>(members.size()) -
                                             page.member_pan);
    shown = std::max(shown, 0);
    int body_rows = std::max({static_cast<int>(attrs.size()) + 1, shown, 3});
    int w = kNameColumn + kListWidth + 3;
    int h = body_rows + 3;
    Rect box{px, py, w, h};
    win.Box(box);
    if (top) {
      // The page region goes in first so the attribute and member rows
      // registered below shadow it in hit-testing.
      Rect hit = win.ToScreen(box);
      if (hit.w > 0) screen.hits.push_back(HitRegion{hit, "page:" + title});
    }
    // Header: page title over the characteristic pattern.
    win.Text(px + 2, py, "[ " + title + " ]",
             page.is_grouping ? gfx::kPlain : gfx::kPlain);
    for (int i = 0; i < 4; ++i) {
      win.Put(px + 2 + static_cast<int>(title.size()) + 5 + i, py,
              gfx::PatternGlyph(pattern, i, 0));
    }
    win.VLine(px + kNameColumn + 1, py + 1, h - 2, '|');
    // Attribute section (classes only; groupings have none).
    int row = py + 1;
    for (AttributeId a : attrs) {
      const sdm::AttributeDef& def = schema.GetAttribute(a);
      std::string label = def.name;
      label.resize(kNameColumn - 7, ' ');
      bool followed = page.followed == a;
      win.Text(px + 1, row, label, followed ? gfx::kBold : gfx::kPlain);
      for (int i = 0; i < 5; ++i) {
        bool border = def.multivalued && (i == 0 || i == 4);
        int vp = def.value_grouping.valid()
                     ? schema.GetGrouping(def.value_grouping).fill_pattern
                     : schema.GetClass(def.value_class).fill_pattern;
        win.Put(px + kNameColumn - 5 + i, row,
                border ? ' ' : gfx::PatternGlyph(vp, i, 0));
      }
      if (followed) win.Text(px + kNameColumn - 6, row, ">", gfx::kBold);
      if (top) {
        Rect hit = win.ToScreen(Rect{px + 1, row, kNameColumn, 1});
        if (hit.w > 0) {
          screen.hits.push_back(HitRegion{hit, "attr:" + def.name});
        }
      }
      ++row;
    }
    if (page.is_grouping) {
      win.Text(px + 1, py + 1, "(grouping: sets of", gfx::kDim);
      win.Text(px + 1, py + 2,
               " " + schema.GetClass(
                         schema.GetGrouping(page.grouping).parent)
                         .name +
                   ")",
               gfx::kDim);
    }
    // Member list (pannable).
    std::string header = page.is_grouping ? "blocks" : "members";
    if (page.member_pan > 0) header += " ^";
    if (page.member_pan + shown < static_cast<int>(members.size())) {
      header += " v";
    }
    win.Text(px + kNameColumn + 3, py + 1, header, gfx::kDim);
    for (int i = 0; i < shown; ++i) {
      EntityId e = members[page.member_pan + i];
      bool selected = page.selected.count(e) > 0;
      std::string name = db.NameOf(e);
      if (page.is_grouping) {
        name += " {" + std::to_string(db.GetGroupingBlock(page.grouping, e)
                                          .size()) +
                "}";
      }
      name = name.substr(0, kListWidth - 2);
      win.Text(px + kNameColumn + 3, py + 2 + i,
               (selected ? "*" : " ") + name,
               selected ? gfx::kBold : gfx::kPlain);
      if (top) {
        Rect hit =
            win.ToScreen(Rect{px + kNameColumn + 2, py + 2 + i,
                              kListWidth, 1});
        if (hit.w > 0) {
          screen.hits.push_back(HitRegion{hit, "member:" + db.NameOf(e)});
        }
      }
    }
    // Follow arrow into the next page.
    if (pi + 1 < ctx.st.pages.size() && page.followed.valid() &&
        schema.HasAttribute(page.followed)) {
      std::string label =
          "==[" + schema.GetAttribute(page.followed).name + "]==>";
      win.Text(px + kPageDx, py + h, label, gfx::kBold);
    } else if (pi + 1 < ctx.st.pages.size() && page.is_grouping) {
      win.Text(px + kPageDx, py + h, "==[follow set]==>", gfx::kBold);
    }
  }

  if (ctx.st.pages.empty()) {
    win.Text(2, 2, "no data page: pick 'view contents' on a class first");
  }
  return screen;
}

}  // namespace isis::ui
