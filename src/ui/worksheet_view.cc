/// \file worksheet_view.cc
/// \brief The predicate worksheet (paper §3.2, Figures 9-10).
///
/// "The predicate worksheet consists of several windows. The atom
/// construction window at the lower right contains three subwindows for the
/// left hand side, the operator, and the right hand side. Maps are
/// specified by choosing the map attributes with the mouse and forming a
/// stack of classes. ... As atoms are being constructed, feedback is
/// provided above the atom creation window in the atom list window ...
/// These atoms may be edited and placed in clauses (the set of windows on
/// the left) in disjunctive or conjunctive normal form."

#include <algorithm>

#include "query/eval.h"
#include "ui/render_util.h"
#include "ui/views.h"

namespace isis::ui {

using gfx::Menu;
using gfx::Rect;
using gfx::Window;
using query::Atom;
using query::NormalForm;
using query::Operand;
using query::SetOp;
using query::Term;
using sdm::Schema;

namespace {

std::vector<Menu::Item> WorksheetMenu(const RenderContext& ctx) {
  std::vector<Menu::Item> items;
  auto add = [&items](const char* cmd, const char* key = "") {
    items.push_back(Menu::Item{cmd, key, true});
  };
  add("edit");
  add("place 1");
  add("place 2");
  add("place 3");
  add("lhs");
  add("rhs map");
  add("rhs map starting at class");
  add("rhs constant");
  add("rhs constant starting at class");
  add("negate");
  if (ctx.st.worksheet.target == WorksheetState::Target::kDerivation) {
    add("hand");  // the unary assignment operator's icon
  }
  add("switch and/or");
  add("clear atom");
  add("commit");
  add("abort");
  return items;
}

/// Names of the classes a term's map passes through, for the class stack.
std::vector<std::string> TermClassStack(const query::Workspace& ws,
                                        const Term& term, ClassId start) {
  const Schema& schema = ws.db().schema();
  std::vector<std::string> out;
  ClassId cur = start;
  switch (term.origin) {
    case Operand::kConstant:
      out.push_back("(constants)");
      cur = ClassId();  // the constants carry their own class
      break;
    case Operand::kClassExtent:
      cur = term.extent_class;
      break;
    default:
      break;
  }
  if (cur.valid() && schema.HasClass(cur)) {
    out.push_back(schema.GetClass(cur).name);
  }
  for (AttributeId a : term.path) {
    if (!schema.HasAttribute(a)) break;
    cur = schema.GetAttribute(a).value_class;
    out.push_back(schema.GetClass(cur).name);
  }
  return out;
}

/// The class the focused term currently terminates in (where the next picked
/// attribute must be visible).
ClassId TermTipClass(const query::Workspace& ws, const Term& term,
                     ClassId start) {
  const Schema& schema = ws.db().schema();
  ClassId cur = term.origin == Operand::kClassExtent ? term.extent_class
                                                     : start;
  if (term.origin == Operand::kConstant) {
    query::Evaluator eval(ws.db());
    query::PredicateContext pctx;
    pctx.candidate_class = start;
    Result<ClassId> r = eval.TermTerminalClass(term, pctx);
    return r.ok() ? *r : ClassId();
  }
  for (AttributeId a : term.path) {
    if (!schema.HasAttribute(a)) return ClassId();
    cur = schema.GetAttribute(a).value_class;
  }
  return cur;
}

}  // namespace

/// The class e ranges over (V) for the worksheet's current target.
static ClassId WorksheetCandidateClass(const query::Workspace& ws,
                                       const WorksheetState& w) {
  const Schema& schema = ws.db().schema();
  if (w.target == WorksheetState::Target::kMembership) {
    if (schema.HasClass(w.target_class)) {
      return schema.GetClass(w.target_class).parent();
    }
  } else if (w.target == WorksheetState::Target::kDerivation) {
    if (schema.HasAttribute(w.target_attr)) {
      return schema.GetAttribute(w.target_attr).value_class;
    }
  } else if (w.target == WorksheetState::Target::kConstraint) {
    if (schema.HasClass(w.target_class)) return w.target_class;
  }
  return ClassId();
}

Screen RenderWorksheetView(const RenderContext& ctx) {
  Screen screen;
  Rect content = DrawChrome(&screen, ctx.ws.name(), "predicate worksheet",
                            WorksheetMenu(ctx), ctx.message);
  (void)content;
  gfx::Canvas& canvas = screen.canvas;
  const Schema& schema = ctx.ws.db().schema();
  const WorksheetState& w = ctx.st.worksheet;

  // Header: what is being defined.
  std::string header;
  if (w.target == WorksheetState::Target::kMembership &&
      schema.HasClass(w.target_class)) {
    header = "defining membership of '" + schema.GetClass(w.target_class).name +
             "' (e ranges over '" +
             schema.GetClass(schema.GetClass(w.target_class).parent()).name +
             "')";
  } else if (w.target == WorksheetState::Target::kDerivation &&
             schema.HasAttribute(w.target_attr)) {
    const sdm::AttributeDef& def = schema.GetAttribute(w.target_attr);
    header = "defining derivation of '" + def.name + "' on '" +
             schema.GetClass(def.owner).name + "' (e ranges over '" +
             schema.GetClass(def.value_class).name + "')";
  } else if (w.target == WorksheetState::Target::kConstraint &&
             schema.HasClass(w.target_class)) {
    header = "defining constraint '" + w.constraint_name +
             "': every e in '" + schema.GetClass(w.target_class).name +
             "' must satisfy the predicate";
  } else {
    header = "no worksheet target";
  }
  canvas.Text(2, 1, header, gfx::kBold);
  canvas.Text(2, 2,
              std::string("normal form: ") +
                  (w.pred.form == NormalForm::kConjunctive
                       ? "conjunctive (AND of clauses)"
                       : "disjunctive (OR of clauses)"));

  // Clause windows on the left.
  const int clause_w = 22;
  for (int c = 0; c < WorksheetState::kClauseWindows; ++c) {
    Rect r{1, 4 + c * 5, clause_w, 5};
    canvas.Box(r);
    canvas.Text(r.x + 2, r.y, "[clause " + std::to_string(c + 1) + "]");
    std::string atoms;
    if (static_cast<size_t>(c) < w.pred.clauses.size()) {
      for (int idx : w.pred.clauses[c]) {
        if (!atoms.empty()) {
          atoms += w.pred.form == NormalForm::kConjunctive ? " or " : " and ";
        }
        atoms += static_cast<char>('A' + idx);
      }
    }
    canvas.Text(r.x + 2, r.y + 2, atoms, gfx::kBold);
    screen.hits.push_back(HitRegion{r, "clause:" + std::to_string(c + 1)});
  }

  // Atom list window above the construction window.
  Rect atom_list{clause_w + 3, 4, 46, 3 + WorksheetState::kAtomSlots};
  canvas.Box(atom_list);
  canvas.Text(atom_list.x + 2, atom_list.y, "[atom list]");
  for (int i = 0; i < WorksheetState::kAtomSlots; ++i) {
    char letter = static_cast<char>('A' + i);
    std::string text(1, letter);
    text += ": ";
    if (static_cast<size_t>(i) < w.pred.atoms.size()) {
      text += AtomToString(ctx.ws.db(), w.pred.atoms[i]);
    }
    bool current = w.current_atom == i;
    Rect row{atom_list.x + 1, atom_list.y + 1 + i, atom_list.w - 2, 1};
    canvas.Text(row.x + 1, row.y,
                text.substr(0, static_cast<size_t>(atom_list.w - 4)),
                current ? gfx::kBold : gfx::kPlain);
    if (current) canvas.Put(row.x, row.y, '>');
    screen.hits.push_back(HitRegion{row, std::string("atom:") + letter});
  }

  // The atom construction window.
  Rect cons{clause_w + 3, atom_list.bottom() + 1, 46, 14};
  canvas.Box(cons);
  canvas.Text(cons.x + 2, cons.y, "[atom construction]");
  ClassId v = WorksheetCandidateClass(ctx.ws, w);
  if (w.use_hand) {
    canvas.Text(cons.x + 2, cons.y + 1, "hand (assign):", gfx::kBold);
    canvas.Text(cons.x + 17, cons.y + 1,
                TermToString(ctx.ws.db(), w.hand_term));
    // Stack for the hand term; picks extend it.
    ClassId hand_start =
        w.target == WorksheetState::Target::kDerivation &&
                schema.HasAttribute(w.target_attr)
            ? schema.GetAttribute(w.target_attr).owner
            : ClassId();
    std::vector<std::string> stack =
        TermClassStack(ctx.ws, w.hand_term, hand_start);
    int y = cons.y + 2;
    canvas.Text(cons.x + 2, y, "stack:", gfx::kDim);
    for (size_t i = 0; i < stack.size(); ++i) {
      canvas.Text(cons.x + 9, y + static_cast<int>(i), stack[i]);
    }
    // Attribute palette at the stack tip, so the hand map can be extended
    // by picking, exactly as on the two-sided atom.
    ClassId tip = TermTipClass(ctx.ws, w.hand_term, hand_start);
    if (tip.valid() && schema.HasClass(tip)) {
      canvas.Text(cons.x + 2, cons.y + 9, "attributes:", gfx::kDim);
      int ax = cons.x + 14;
      for (AttributeId a : schema.AllAttributesOf(tip)) {
        const std::string& nm = schema.GetAttribute(a).name;
        if (ax + static_cast<int>(nm.size()) >= cons.right() - 1) break;
        Rect hit{ax, cons.y + 9, static_cast<int>(nm.size()), 1};
        canvas.Text(ax, cons.y + 9, nm);
        screen.hits.push_back(HitRegion{hit, "attr:" + nm});
        ax += static_cast<int>(nm.size()) + 2;
      }
    }
  } else if (w.current_atom >= 0 &&
             static_cast<size_t>(w.current_atom) < w.pred.atoms.size()) {
    const Atom& atom = w.pred.atoms[w.current_atom];
    bool lhs_focus = w.focus == WorksheetState::Focus::kLhs;
    canvas.Text(cons.x + 2, cons.y + 1, "lhs:",
                lhs_focus ? gfx::kBold : gfx::kPlain);
    canvas.Text(cons.x + 7, cons.y + 1, TermToString(ctx.ws.db(), atom.lhs));
    canvas.Text(cons.x + 2, cons.y + 2, "op:");
    canvas.Text(cons.x + 7, cons.y + 2,
                std::string(atom.negated ? "not" : "") +
                    query::SetOpToString(atom.op));
    canvas.Text(cons.x + 2, cons.y + 3, "rhs:",
                !lhs_focus ? gfx::kBold : gfx::kPlain);
    canvas.Text(cons.x + 7, cons.y + 3, TermToString(ctx.ws.db(), atom.rhs));
    // Class stack of the focused side.
    ClassId self_cls =
        w.target == WorksheetState::Target::kDerivation &&
                schema.HasAttribute(w.target_attr)
            ? schema.GetAttribute(w.target_attr).owner
            : ClassId();
    const Term& focused = lhs_focus ? atom.lhs : atom.rhs;
    ClassId start = focused.origin == Operand::kSelf ? self_cls : v;
    std::vector<std::string> stack = TermClassStack(ctx.ws, focused, start);
    canvas.Text(cons.x + 2, cons.y + 4, "stack:", gfx::kDim);
    for (size_t i = 0; i < stack.size() && i < 4; ++i) {
      canvas.Text(cons.x + 9 + static_cast<int>(i) * 2,
                  cons.y + 4 + static_cast<int>(i),
                  (i > 0 ? "> " : "") + stack[i]);
    }
    // Attributes of the stack-tip class, pickable to extend the map.
    ClassId tip = TermTipClass(ctx.ws, focused, start);
    if (tip.valid() && schema.HasClass(tip)) {
      canvas.Text(cons.x + 2, cons.y + 9, "attributes:", gfx::kDim);
      int ax = cons.x + 14;
      for (AttributeId a : schema.AllAttributesOf(tip)) {
        const std::string& nm = schema.GetAttribute(a).name;
        if (ax + static_cast<int>(nm.size()) >= cons.right() - 1) break;
        Rect hit{ax, cons.y + 9, static_cast<int>(nm.size()), 1};
        canvas.Text(ax, cons.y + 9, nm);
        screen.hits.push_back(HitRegion{hit, "attr:" + nm});
        ax += static_cast<int>(nm.size()) + 2;
      }
    }
    // Operator palette.
    canvas.Text(cons.x + 2, cons.y + 11, "operators:", gfx::kDim);
    int ox = cons.x + 14;
    static const SetOp kOps[] = {
        SetOp::kEqual,         SetOp::kSubset,        SetOp::kSuperset,
        SetOp::kProperSubset,  SetOp::kProperSuperset, SetOp::kWeakMatch,
        SetOp::kLessEqual,     SetOp::kGreater,
    };
    for (SetOp op : kOps) {
      std::string sym = query::SetOpToString(op);
      Rect hit{ox, cons.y + 11, static_cast<int>(sym.size()), 1};
      canvas.Text(ox, cons.y + 11, sym, gfx::kBold);
      screen.hits.push_back(HitRegion{hit, "op:" + sym});
      ox += static_cast<int>(sym.size()) + 2;
    }
  } else {
    canvas.Text(cons.x + 2, cons.y + 2,
                "pick an atom slot (A-E) and press 'edit'", gfx::kDim);
  }

  // Class list window on the right of the construction window.
  Rect class_list{cons.right() + 1, 4, 20, 26};
  canvas.Box(class_list);
  canvas.Text(class_list.x + 2, class_list.y, "[class list]");
  int cy = class_list.y + 1;
  for (ClassId c : schema.AllClasses()) {
    if (cy >= class_list.bottom() - 1) break;
    const std::string& nm = schema.GetClass(c).name;
    Rect row{class_list.x + 1, cy, class_list.w - 2, 1};
    canvas.Text(row.x + 1, row.y, nm.substr(0, 16));
    screen.hits.push_back(HitRegion{row, "class:" + nm});
    ++cy;
  }

  return screen;
}

}  // namespace isis::ui
