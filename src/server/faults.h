/// \file faults.h
/// \brief Network chaos: a ClientTransport decorator that injects seeded
/// faults, mirroring the store's FaultInjectingEnv (store/file.h).
///
/// FaultInjectingTransport sits between RetryingClient and a real
/// transport and misbehaves on a deterministic schedule: it delays
/// attempts, drops requests before the server sees them, corrupts or
/// half-writes frames (which on a real stream kills the connection -- the
/// server has no resync point), loses responses *after* the server applied
/// the request, cuts the line mid-request, and fails re-dials. Every fault
/// is drawn from one seeded Rng, so a chaos schedule is a pure function of
/// its seed and the test that found a bug replays it exactly.
///
/// The decorator operates at the frame boundary, not the socket: a fault
/// that would break the byte stream is modeled as "this connection is now
/// dead" (CallFrame fails until Reconnect), which is precisely the
/// contract ClientTransport implementations expose upward. That keeps the
/// same schedule runnable over loopback and TCP. The two effects that only
/// exist below the frame boundary -- what the *server* observes on a torn
/// or corrupt stream -- are covered by server-side tests that write raw
/// bytes at a socket (server_test.cpp).
///
/// The crucial case for the retry protocol is drop_response: the server
/// executed the request, the client cannot know it. A resent read is
/// harmless; a resent write is where the write_seq dedup (retry.h,
/// session.cc) earns its keep, and the chaos suite (chaos_test.cpp)
/// asserts the surviving state is byte-identical to a fault-free oracle.

#ifndef ISIS_SERVER_FAULTS_H_
#define ISIS_SERVER_FAULTS_H_

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "server/retry.h"

namespace isis::server {

/// \brief One seeded fault mix. Probabilities are per CallFrame attempt
/// (or per Reconnect for connect_fail_prob) and independent; the
/// deterministic fail_first_calls knob exists for unit tests that need a
/// fault on a known attempt rather than a distribution.
struct FaultSchedule {
  std::uint64_t seed = 1;
  /// Inject a delay of up to max_delay_us before forwarding the attempt
  /// (stalls the caller; with deadlines armed this manufactures timeouts).
  double delay_prob = 0.0;
  int max_delay_us = 0;
  /// The request vanishes in flight: the server never sees it, the
  /// connection survives. The client just waits out its deadline.
  double drop_request_prob = 0.0;
  /// A bit flips in the encoded frame: the receiver's CRC/flags check
  /// fails and the connection dies with the request undelivered.
  double corrupt_prob = 0.0;
  /// The sender dies mid-frame: the receiver sees a truncated stream and
  /// the connection dies with the request undelivered.
  double partial_write_prob = 0.0;
  /// The server executes the request but the response is lost and the
  /// connection dies -- the write-dedup case.
  double drop_response_prob = 0.0;
  /// The line drops before the request is sent.
  double disconnect_prob = 0.0;
  /// A Reconnect attempt fails outright.
  double connect_fail_prob = 0.0;
  /// Deterministic: treat the first N CallFrames as drop_response faults
  /// (0 = disabled). Applied before any dice are rolled.
  int fail_first_calls = 0;
  /// Deterministic: answer the first N CallFrames with a synthetic kRetry
  /// (as if the lane were full) without forwarding them (0 = disabled).
  int retry_hint_first_calls = 0;
};

/// \brief ClientTransport decorator that executes a FaultSchedule.
///
/// Counters tally which faults actually fired, so a test can assert its
/// schedule exercised the path it claims to.
class FaultInjectingTransport : public ClientTransport {
 public:
  FaultInjectingTransport(std::unique_ptr<ClientTransport> base,
                          const FaultSchedule& schedule)
      : base_(std::move(base)), schedule_(schedule), rng_(schedule.seed) {}

  Status Reconnect(std::int64_t resume_sid) override;
  Result<Frame> CallFrame(const Frame& req) override;
  std::int64_t session_id() const override { return base_->session_id(); }

  struct Counts {
    std::int64_t delays = 0;
    std::int64_t dropped_requests = 0;
    std::int64_t corrupted = 0;
    std::int64_t partial_writes = 0;
    std::int64_t dropped_responses = 0;
    std::int64_t disconnects = 0;
    std::int64_t connect_failures = 0;
    std::int64_t retry_hints = 0;
    std::int64_t faults() const {
      return dropped_requests + corrupted + partial_writes +
             dropped_responses + disconnects + connect_failures;
    }
  };
  const Counts& counts() const { return counts_; }

 private:
  std::unique_ptr<ClientTransport> base_;
  const FaultSchedule schedule_;
  Rng rng_;
  bool connected_ = false;
  int calls_ = 0;
  Counts counts_;
};

}  // namespace isis::server

#endif  // ISIS_SERVER_FAULTS_H_
