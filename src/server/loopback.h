/// \file loopback.h
/// \brief In-process client transport: frames over function calls.
///
/// The loopback client speaks the real wire protocol -- every request is
/// encoded with EncodeFrame, re-decoded on the "server side", and the
/// response makes the same round trip -- so tests and benchmarks exercise
/// framing, checksums and payload conventions without a socket. Call()
/// blocks until the response arrives (requests run on the server's worker
/// pool); CallAsync() returns immediately and is how the backpressure tests
/// overflow a session's queue.

#ifndef ISIS_SERVER_LOOPBACK_H_
#define ISIS_SERVER_LOOPBACK_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "server/proto.h"
#include "server/retry.h"
#include "server/session.h"

namespace isis::server {

/// \brief One client session over an in-process connection.
///
/// Not thread-safe: one LoopbackClient per client thread (the server side
/// is what's concurrent). Connect() performs the hello handshake.
class LoopbackClient {
 public:
  explicit LoopbackClient(Server* server) : server_(server) {}

  /// Hello handshake; fills session_id(). Must be called first.
  Status Connect(const std::string& client_name);

  /// Sends one request and blocks for its response.
  Result<Frame> Call(MsgType type, const std::string& payload);

  /// Sends one request; `done` fires on a server worker thread.
  /// The returned status only covers encoding/submission.
  Status CallAsync(MsgType type, const std::string& payload,
                   std::function<void(const Frame&)> done);

  // Convenience wrappers for the common requests.
  Result<std::vector<std::string>> Query(const std::string& cls,
                                         const std::string& predicate);
  Status Assign(const std::string& cls, const std::string& entity,
                const std::string& attr, const std::string& values);
  Result<std::string> Render();  ///< "message\n<canvas>".

  std::int64_t session_id() const { return session_id_; }

 private:
  /// Encodes, hands the bytes to the server's frame path, decodes the
  /// response bytes -- the full wire round trip, minus the socket.
  void Send(MsgType type, const std::string& payload,
            std::function<void(const Frame&)> done);

  Server* const server_;
  std::int64_t session_id_ = -1;
  std::uint32_t next_seq_ = 1;
};

/// \brief ClientTransport (retry.h) over the in-process connection: what
/// RetryingClient and the chaos harness drive in tests and benchmarks.
///
/// Like LoopbackClient every frame makes the full encode/decode round trip
/// both ways -- including the v1 header extensions -- so deadline_ms and
/// write_seq are exercised as wire bytes, not struct fields. CallFrame
/// waits deadline-bounded when the request carries a deadline: a response
/// that never arrives surfaces as an IOError instead of a hang.
class LoopbackTransport : public ClientTransport {
 public:
  LoopbackTransport(Server* server, std::string client_name)
      : server_(server), client_name_(std::move(client_name)) {}

  Status Reconnect(std::int64_t resume_sid) override;
  Result<Frame> CallFrame(const Frame& req) override;
  std::int64_t session_id() const override { return session_id_; }

 private:
  Server* const server_;
  const std::string client_name_;
  std::int64_t session_id_ = -1;
};

}  // namespace isis::server

#endif  // ISIS_SERVER_LOOPBACK_H_
