/// \file executor.h
/// \brief Thread pool with reader-writer dispatch and per-lane FIFO queues.
///
/// The executor is the server's concurrency layer. Work arrives as tasks on
/// *lanes* (one lane per client session); each task declares whether it
/// needs the database shared (reads: query, explain, render, stats) or
/// exclusive (mutations: events, assigns). Three rules govern dispatch:
///
///   1. Lane order: tasks on one lane run in submission order, at most one
///      in flight -- a session is serial, the server is parallel.
///   2. Lock mode: before running a task the worker acquires the shared
///      RwMutex (common/sync.h) in the declared mode, so any number of
///      reads overlap but a mutation runs alone. The RwMutex is
///      writer-preferring: arriving readers queue behind a waiting writer,
///      so a steady read load cannot starve mutations.
///   3. Bounded queues: each lane holds at most `queue_capacity` tasks.
///      Submitting to a full lane is *shed* -- the caller gets kShed and is
///      expected to answer the client with a retry hint rather than buffer
///      unboundedly.
///   4. Deadlines: a task submitted with a deadline that has passed by the
///      time a worker picks it up is *dropped before dispatch* -- its
///      `on_expired` callback runs instead of the task, without acquiring
///      the database lock. Serving a request nobody is waiting for anymore
///      would only lengthen the queue behind it.
///   5. Shared batching: when a worker finishes a kShared task it keeps its
///      reader hold open and drains up to `shared_batch - 1` more kShared
///      head-of-lane tasks from *other* ready lanes before releasing. With
///      the result cache a read is microseconds, so the RwMutex
///      acquire/release pair dominates; batching amortizes it across
///      several reads. Lane order (rule 1) is preserved -- only head tasks
///      are taken, one per lane at a time. A waiting writer can be passed
///      by at most `shared_batch - 1` reads per hold, a bounded and
///      deliberate trade; the RwMutex's writer preference still blocks
///      fresh reader *acquisitions* behind it.
///   6. Exclusive batching + post-lock continuations: symmetric to rule 5,
///      a worker holding the *writer* lock drains up to `exclusive_batch -
///      1` more kExclusive head-of-lane tasks before releasing, so one
///      writer acquisition covers several sessions' mutations. A task body
///      may return a continuation, which the worker runs only AFTER the
///      database lock is released -- that is where a durable write waits on
///      its group-commit ticket (store/group_commit.h), so the fsync that
///      makes a whole exclusive batch durable happens outside the lock and
///      is paid once for the batch instead of once per mutation.
///
/// Shutdown() closes submission, drains every queued task, then joins the
/// workers -- accepted work always runs exactly once (either its body plus
/// its continuation or, past its deadline, its on_expired callback).
///
/// Lock discipline (checked by -Wthread-safety): all queue state -- lanes_,
/// ready_, closed_, in_flight_ -- is guarded by mu_; the database itself is
/// guarded by db_lock_, held in the task's declared mode around task.fn().
/// mu_ is never held while *acquiring* db_lock_; the shared-batch path does
/// acquire mu_ while db_lock_ is held (to pop the next task), which cannot
/// deadlock precisely because the opposite order never occurs.

#ifndef ISIS_SERVER_EXECUTOR_H_
#define ISIS_SERVER_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/sync.h"

namespace isis::server {

class ServerStats;

/// Which database lock a task needs.
enum class TaskMode {
  kShared,     ///< Read-only; overlaps with other kShared tasks.
  kExclusive,  ///< Mutation; runs alone.
  kNone,       ///< Touches no shared state (e.g. a pure protocol reply).
};

/// Outcome of Executor::Submit.
enum class SubmitResult {
  kAccepted,  ///< Queued; will run exactly once.
  kShed,      ///< Lane full; answer the client with a retry hint.
  kClosed,    ///< Executor is shutting down.
};

/// Work a task defers to after the database lock is released (rule 6);
/// empty = nothing deferred.
using PostLockFn = std::function<void()>;
/// A task body: runs under the declared lock mode and may return the
/// deferred part. Waiting (on a commit ticket, a peer, anything slower than
/// memory) belongs in the returned continuation, never in the body.
using TaskFn = std::function<PostLockFn()>;

class Executor {
 public:
  struct Options {
    int threads = 4;
    int queue_capacity = 64;  ///< Per-lane task bound; beyond this, shed.
    /// Max kShared tasks run under one reader hold (rule 5); 1 disables
    /// batching.
    int shared_batch = 8;
    /// Max kExclusive tasks run under one writer hold (rule 6); 1 disables
    /// batching.
    int exclusive_batch = 8;
  };

  /// `stats` may be null (tests); if set, queue depth and lock-wait times
  /// are recorded there.
  explicit Executor(const Options& options, ServerStats* stats = nullptr);
  ~Executor();  ///< Calls Shutdown() if the caller has not.

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Registers a lane. Submitting to an unknown lane is an error (kClosed).
  void AddLane(std::int64_t lane) ISIS_EXCLUDES(mu_);
  /// Unregisters a lane; queued tasks still drain.
  void RemoveLane(std::int64_t lane) ISIS_EXCLUDES(mu_);

  /// Enqueues `task` on `lane`. `important` bypasses the capacity bound --
  /// used for promoted retries and session teardown, which must not be shed.
  ///
  /// `deadline_ms` > 0 arms rule 4: if the task is still queued when its
  /// budget (measured from this call) runs out, a worker runs `on_expired`
  /// instead of `task`, with no database lock held. `on_expired` must be
  /// set whenever `deadline_ms` is (the response still has to be sent).
  SubmitResult Submit(std::int64_t lane, TaskMode mode, TaskFn task,
                      bool important = false, std::uint32_t deadline_ms = 0,
                      std::function<void()> on_expired = nullptr)
      ISIS_EXCLUDES(mu_);

  /// Closes submission, runs every queued task, joins the workers.
  /// Idempotent.
  void Shutdown() ISIS_EXCLUDES(mu_);

  /// The RW lock workers take around tasks. Exposed so the server can run
  /// inline work (recovery, checkpointing) under the same discipline.
  RwMutex& db_lock() { return db_lock_; }

  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct Task {
    TaskMode mode;
    TaskFn fn;
    /// Validity gated by has_deadline (a default time_point is a real time).
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
    std::function<void()> on_expired;  ///< Set iff has_deadline.
  };
  struct Lane {
    std::deque<Task> queue;
    bool running = false;  ///< A worker is executing this lane's head task.
    bool removed = false;
  };

  void WorkerLoop() ISIS_EXCLUDES(mu_);
  /// Runs `task.fn` under db_lock_ in the task's declared mode, recording
  /// the acquisition wait. One scoped hold per mode keeps the analysis's
  /// lock state balanced on every path. kShared/kExclusive tasks continue
  /// into the same-mode batch drain (rules 5 and 6) before the hold is
  /// released; every collected continuation runs after it.
  void RunTask(Task& task) ISIS_EXCLUDES(mu_, db_lock_);
  /// The rule-5/6 drain: runs up to batch-1 more `mode` head-of-lane tasks
  /// while the caller's lock hold is still open, appending their
  /// continuations to `post`. The caller must hold db_lock_ in `mode`.
  void DrainBatchLocked(TaskMode mode, int batch,
                        std::vector<PostLockFn>* post)
      ISIS_EXCLUDES(mu_);
  /// Claims the head task of some ready lane iff it declares `mode`,
  /// marking the lane running. Lanes whose head needs another mode are
  /// rotated to the back of ready_ untouched. False when no such head is
  /// ready.
  bool PopHeadTask(TaskMode mode, Task* task, std::shared_ptr<Lane>* lane,
                   std::int64_t* lane_id) ISIS_EXCLUDES(mu_);
  /// The post-task lane bookkeeping (requeue / erase / shutdown notify),
  /// shared by WorkerLoop and the batch drain.
  void FinishLane(const std::shared_ptr<Lane>& lane, std::int64_t lane_id)
      ISIS_EXCLUDES(mu_);
  void RecordLockWait(bool exclusive,
                      std::chrono::steady_clock::time_point t0);

  const Options options_;
  ServerStats* const stats_;
  RwMutex db_lock_;

  Mutex mu_;
  CondVar work_cv_;
  std::unordered_map<std::int64_t, std::shared_ptr<Lane>> lanes_
      ISIS_GUARDED_BY(mu_);
  /// Lanes with queued, not-running work.
  std::deque<std::int64_t> ready_ ISIS_GUARDED_BY(mu_);
  bool closed_ ISIS_GUARDED_BY(mu_) = false;
  int in_flight_ ISIS_GUARDED_BY(mu_) = 0;
  /// Written by the constructor before any worker exists, joined by
  /// Shutdown() after submission closes; never touched concurrently.
  std::vector<std::thread> workers_;
};

}  // namespace isis::server

#endif  // ISIS_SERVER_EXECUTOR_H_
