/// \file executor.h
/// \brief Thread pool with reader-writer dispatch and per-lane FIFO queues.
///
/// The executor is the server's concurrency layer. Work arrives as tasks on
/// *lanes* (one lane per client session); each task declares whether it
/// needs the database shared (reads: query, explain, render, stats) or
/// exclusive (mutations: events, assigns). Three rules govern dispatch:
///
///   1. Lane order: tasks on one lane run in submission order, at most one
///      in flight -- a session is serial, the server is parallel.
///   2. Lock mode: before running a task the worker acquires the shared
///      RwMutex in the declared mode, so any number of reads overlap but a
///      mutation runs alone. The RwMutex is writer-preferring: arriving
///      readers queue behind a waiting writer, so a steady read load cannot
///      starve mutations.
///   3. Bounded queues: each lane holds at most `queue_capacity` tasks.
///      Submitting to a full lane is *shed* -- the caller gets kShed and is
///      expected to answer the client with a retry hint rather than buffer
///      unboundedly.
///
/// Shutdown() closes submission, drains every queued task, then joins the
/// workers -- accepted work always runs exactly once.

#ifndef ISIS_SERVER_EXECUTOR_H_
#define ISIS_SERVER_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace isis::server {

class ServerStats;

/// \brief Writer-preferring reader-writer mutex.
///
/// Built on std::mutex + condition_variable rather than std::shared_mutex so
/// the preference policy is ours (glibc's pthread rwlock default prefers
/// readers, which lets a saturating read load starve writers indefinitely)
/// and so ThreadSanitizer sees plain mutex/condvar operations it fully
/// understands. New readers block while a writer is waiting.
class RwMutex {
 public:
  void LockShared();
  void UnlockShared();
  void LockExclusive();
  void UnlockExclusive();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
};

/// Which database lock a task needs.
enum class TaskMode {
  kShared,     ///< Read-only; overlaps with other kShared tasks.
  kExclusive,  ///< Mutation; runs alone.
  kNone,       ///< Touches no shared state (e.g. a pure protocol reply).
};

/// Outcome of Executor::Submit.
enum class SubmitResult {
  kAccepted,  ///< Queued; will run exactly once.
  kShed,      ///< Lane full; answer the client with a retry hint.
  kClosed,    ///< Executor is shutting down.
};

class Executor {
 public:
  struct Options {
    int threads = 4;
    int queue_capacity = 64;  ///< Per-lane task bound; beyond this, shed.
  };

  /// `stats` may be null (tests); if set, queue depth and lock-wait times
  /// are recorded there.
  explicit Executor(const Options& options, ServerStats* stats = nullptr);
  ~Executor();  ///< Calls Shutdown() if the caller has not.

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Registers a lane. Submitting to an unknown lane is an error (kClosed).
  void AddLane(std::int64_t lane);
  /// Unregisters a lane; queued tasks still drain.
  void RemoveLane(std::int64_t lane);

  /// Enqueues `task` on `lane`. `important` bypasses the capacity bound --
  /// used for promoted retries and session teardown, which must not be shed.
  SubmitResult Submit(std::int64_t lane, TaskMode mode,
                      std::function<void()> task, bool important = false);

  /// Closes submission, runs every queued task, joins the workers.
  /// Idempotent.
  void Shutdown();

  /// The RW lock workers take around tasks. Exposed so the server can run
  /// inline work (recovery, checkpointing) under the same discipline.
  RwMutex& db_lock() { return db_lock_; }

  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct Task {
    TaskMode mode;
    std::function<void()> fn;
  };
  struct Lane {
    std::deque<Task> queue;
    bool running = false;  ///< A worker is executing this lane's head task.
    bool removed = false;
  };

  void WorkerLoop();

  const Options options_;
  ServerStats* const stats_;
  RwMutex db_lock_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::unordered_map<std::int64_t, std::shared_ptr<Lane>> lanes_;
  std::deque<std::int64_t> ready_;  ///< Lanes with queued, not-running work.
  bool closed_ = false;
  int in_flight_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace isis::server

#endif  // ISIS_SERVER_EXECUTOR_H_
