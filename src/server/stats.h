/// \file stats.h
/// \brief Server-side metrics: request counts, latency histogram, queue and
/// lock pressure.
///
/// One ServerStats instance is shared by every worker thread of a Server.
/// Counters are individual relaxed atomics rather than a mutex-guarded
/// block: with the query-result cache a read request is down to
/// microseconds, and a shared mutex acquired several times per request
/// becomes a serialization point that flattens multi-thread scaling. Each
/// recording is now a handful of uncontended atomic adds; Snapshot() reads
/// the counters individually, so a snapshot taken mid-traffic may be torn
/// across counters by a few in-flight requests (each counter is itself
/// consistent and monotone), which is fine for the dashboards and benches
/// reading it. Snapshots taken at quiescence -- after joining the clients,
/// as the tests and benches do -- are exact.
///
/// Latencies are kept in 64 log2 buckets (bucket i holds samples in
/// [2^i, 2^(i+1)) microseconds), so percentiles are estimated by linear
/// interpolation inside the winning bucket -- good to ~2x at the tails,
/// exact for the max which is tracked separately. That bound is plenty for
/// the "did p95 explode when threads went 1 -> 8" questions the bench asks.

#ifndef ISIS_SERVER_STATS_H_
#define ISIS_SERVER_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace isis::server {

/// Point-in-time copy of the counters; what Snapshot() returns.
struct StatsSnapshot {
  std::int64_t requests = 0;        ///< Total requests completed.
  std::int64_t errors = 0;          ///< Requests answered with kError.
  std::int64_t sheds = 0;           ///< Requests rejected with kRetry.
  std::int64_t reads = 0;           ///< Completed under the shared lock.
  std::int64_t writes = 0;          ///< Completed under the exclusive lock.
  std::int64_t promotions = 0;      ///< Reads re-run exclusively (intern miss).
  std::int64_t notifications = 0;   ///< kNotify fan-out messages queued.
  std::int64_t deadline_drops = 0;  ///< Requests expired before dispatch.
  std::int64_t dedup_hits = 0;      ///< Resent writes answered from cache.
  std::int64_t heartbeats = 0;      ///< kPing requests answered.
  std::int64_t resumes = 0;         ///< kHello reattaches to a live session.
  std::int64_t idle_reaps = 0;      ///< Connections closed for inactivity.
  std::int64_t eof_clean = 0;       ///< Peer closes on a frame boundary.
  std::int64_t eof_truncated = 0;   ///< Peer closes mid-frame (torn stream).
  std::int64_t queue_depth = 0;     ///< Tasks queued across lanes, right now.
  std::int64_t queue_peak = 0;      ///< High-water mark of queue_depth.
  std::int64_t read_lock_wait_us = 0;   ///< Cumulative shared-lock wait.
  std::int64_t write_lock_wait_us = 0;  ///< Cumulative exclusive-lock wait.
  // Query-result cache (query/cache.h), synced by the owning Server.
  std::int64_t cache_hits = 0;          ///< Reads answered from the cache.
  std::int64_t cache_misses = 0;        ///< Reads that had to evaluate.
  std::int64_t cache_evictions = 0;     ///< Entries dropped by the LRU bound.
  std::int64_t cache_invalidations = 0; ///< Entries evicted by deltas.
  std::int64_t cache_flushes = 0;       ///< Full flushes (schema + version).
  // Group commit (store/group_commit.h), fed through its batch observer.
  std::int64_t wal_batches = 0;    ///< Leader drains (write groups formed).
  std::int64_t wal_records = 0;    ///< WAL records committed.
  std::int64_t wal_syncs = 0;      ///< fsyncs issued; < wal_records = grouping.
  std::int64_t wal_sync_us = 0;    ///< Cumulative fsync time.
  std::int64_t wal_group_max = 0;  ///< Largest group committed by one fsync.
  double fsync_p50_us = 0.0;       ///< Median fsync latency (interpolated).
  double fsync_p95_us = 0.0;       ///< 95th percentile fsync latency.
  std::int64_t fsync_max_us = 0;   ///< Exact slowest fsync.
  double p50_us = 0.0;              ///< Median request latency (interpolated).
  double p95_us = 0.0;              ///< 95th percentile latency (interpolated).
  std::int64_t max_us = 0;          ///< Exact slowest request.
  /// Per-request-type completion counts, indexed by the wire MsgType value.
  std::array<std::int64_t, 32> by_type{};
};

class ServerStats {
 public:
  static constexpr int kBuckets = 64;

  /// Records one completed request of wire type `type` (< 32) that took
  /// `latency_us` microseconds end to end (enqueue to response).
  void RecordRequest(int type, std::int64_t latency_us, bool error) {
    Add(&requests_);
    if (error) Add(&errors_);
    if (type >= 0 && type < static_cast<int>(by_type_.size())) {
      Add(&by_type_[static_cast<std::size_t>(type)]);
    }
    Add(&latency_buckets_[static_cast<std::size_t>(BucketOf(latency_us))]);
    UpdateMax(&max_us_, latency_us);
  }

  void RecordShed() { Add(&sheds_); }

  /// `exclusive` says which lock the task ran under; `lock_wait_us` is how
  /// long the worker blocked acquiring it.
  void RecordDispatch(bool exclusive, std::int64_t lock_wait_us) {
    if (exclusive) {
      Add(&writes_);
      Add(&write_lock_wait_us_, lock_wait_us);
    } else {
      Add(&reads_);
      Add(&read_lock_wait_us_, lock_wait_us);
    }
  }

  void RecordPromotion() { Add(&promotions_); }
  void RecordNotification() { Add(&notifications_); }
  void RecordDeadlineDrop() { Add(&deadline_drops_); }
  void RecordDedupHit() { Add(&dedup_hits_); }
  void RecordHeartbeat() { Add(&heartbeats_); }
  void RecordResume() { Add(&resumes_); }
  void RecordIdleReap() { Add(&idle_reaps_); }

  /// One peer-initiated close; `truncated` says whether it cut a frame (or
  /// header extension) in half rather than landing on a frame boundary.
  void RecordPeerClose(bool truncated) {
    Add(truncated ? &eof_truncated_ : &eof_clean_);
  }

  /// Tracks the global queued-task count; delta is +1 on enqueue, -1 on
  /// dequeue.
  void AdjustQueueDepth(int delta) {
    std::int64_t depth =
        queue_depth_.fetch_add(delta, std::memory_order_relaxed) + delta;
    UpdateMax(&queue_peak_, depth);
  }

  /// One WAL commit group: `records` committed together, `sync_us` spent in
  /// the fsync (when `synced`; the `none` policy never syncs). Wired to
  /// store::GroupCommitter::Options::batch_observer. syncs-per-record
  /// falling below 1 is group commit working.
  void RecordWalBatch(int records, std::int64_t sync_us, bool synced) {
    Add(&wal_batches_);
    Add(&wal_records_, records);
    UpdateMax(&wal_group_max_, records);
    if (synced) {
      Add(&wal_syncs_);
      Add(&wal_sync_us_, sync_us);
      Add(&fsync_buckets_[static_cast<std::size_t>(BucketOf(sync_us))]);
      UpdateMax(&fsync_max_us_, sync_us);
    }
  }

  /// Absolute sync of the result-cache counters (the cache keeps its own
  /// under its own lock; the Server copies them over before a snapshot is
  /// served). Stores, not adds: the cache's counters are the truth.
  void SetCacheCounters(std::int64_t hits, std::int64_t misses,
                        std::int64_t evictions, std::int64_t invalidations,
                        std::int64_t flushes) {
    cache_hits_.store(hits, std::memory_order_relaxed);
    cache_misses_.store(misses, std::memory_order_relaxed);
    cache_evictions_.store(evictions, std::memory_order_relaxed);
    cache_invalidations_.store(invalidations, std::memory_order_relaxed);
    cache_flushes_.store(flushes, std::memory_order_relaxed);
  }

  StatsSnapshot Snapshot() const {
    StatsSnapshot s;
    s.requests = Get(requests_);
    s.errors = Get(errors_);
    s.sheds = Get(sheds_);
    s.reads = Get(reads_);
    s.writes = Get(writes_);
    s.promotions = Get(promotions_);
    s.notifications = Get(notifications_);
    s.deadline_drops = Get(deadline_drops_);
    s.dedup_hits = Get(dedup_hits_);
    s.heartbeats = Get(heartbeats_);
    s.resumes = Get(resumes_);
    s.idle_reaps = Get(idle_reaps_);
    s.eof_clean = Get(eof_clean_);
    s.eof_truncated = Get(eof_truncated_);
    s.queue_depth = Get(queue_depth_);
    s.queue_peak = Get(queue_peak_);
    s.read_lock_wait_us = Get(read_lock_wait_us_);
    s.write_lock_wait_us = Get(write_lock_wait_us_);
    s.cache_hits = Get(cache_hits_);
    s.cache_misses = Get(cache_misses_);
    s.cache_evictions = Get(cache_evictions_);
    s.cache_invalidations = Get(cache_invalidations_);
    s.cache_flushes = Get(cache_flushes_);
    s.wal_batches = Get(wal_batches_);
    s.wal_records = Get(wal_records_);
    s.wal_syncs = Get(wal_syncs_);
    s.wal_sync_us = Get(wal_sync_us_);
    s.wal_group_max = Get(wal_group_max_);
    s.fsync_p50_us = Percentile(fsync_buckets_, fsync_max_us_, 0.50);
    s.fsync_p95_us = Percentile(fsync_buckets_, fsync_max_us_, 0.95);
    s.fsync_max_us = Get(fsync_max_us_);
    s.p50_us = Percentile(latency_buckets_, max_us_, 0.50);
    s.p95_us = Percentile(latency_buckets_, max_us_, 0.95);
    s.max_us = Get(max_us_);
    for (std::size_t t = 0; t < by_type_.size(); ++t) {
      s.by_type[t] = Get(by_type_[t]);
    }
    return s;
  }

  /// One JSON object on one line, the same shape bench_server emits, e.g.
  /// `{"requests": 1200, "p50_us": 140.0, ...}`. Dumped at shutdown and
  /// served by the kStats protocol request.
  std::string ToJsonLine() const;

 private:
  using Counter = std::atomic<std::int64_t>;

  static void Add(Counter* c, std::int64_t delta = 1) {
    c->fetch_add(delta, std::memory_order_relaxed);
  }
  static std::int64_t Get(const Counter& c) {
    return c.load(std::memory_order_relaxed);
  }
  static void UpdateMax(Counter* c, std::int64_t v) {
    std::int64_t cur = c->load(std::memory_order_relaxed);
    while (v > cur &&
           !c->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  static int BucketOf(std::int64_t us) {
    int b = 0;
    while (us > 1 && b < kBuckets - 1) {
      us >>= 1;
      ++b;
    }
    return b;
  }

  /// Percentile of a log2-bucketed histogram by interpolating within the
  /// bucket that holds the q-th sample; `max` answers q past the last
  /// bucket boundary exactly.
  static double Percentile(const std::array<Counter, kBuckets>& buckets,
                           const Counter& max, double q);

  Counter requests_{0};
  Counter errors_{0};
  Counter sheds_{0};
  Counter reads_{0};
  Counter writes_{0};
  Counter promotions_{0};
  Counter notifications_{0};
  Counter deadline_drops_{0};
  Counter dedup_hits_{0};
  Counter heartbeats_{0};
  Counter resumes_{0};
  Counter idle_reaps_{0};
  Counter eof_clean_{0};
  Counter eof_truncated_{0};
  Counter queue_depth_{0};
  Counter queue_peak_{0};
  Counter read_lock_wait_us_{0};
  Counter write_lock_wait_us_{0};
  Counter cache_hits_{0};
  Counter cache_misses_{0};
  Counter cache_evictions_{0};
  Counter cache_invalidations_{0};
  Counter cache_flushes_{0};
  Counter wal_batches_{0};
  Counter wal_records_{0};
  Counter wal_syncs_{0};
  Counter wal_sync_us_{0};
  Counter wal_group_max_{0};
  Counter fsync_max_us_{0};
  Counter max_us_{0};
  std::array<Counter, 32> by_type_{};
  std::array<Counter, kBuckets> latency_buckets_{};
  std::array<Counter, kBuckets> fsync_buckets_{};
};

}  // namespace isis::server

#endif  // ISIS_SERVER_STATS_H_
