/// \file stats.h
/// \brief Server-side metrics: request counts, latency histogram, queue and
/// lock pressure.
///
/// One ServerStats instance is shared by every worker thread of a Server, so
/// all recording goes through a single small mutex. Recording is a handful of
/// integer adds on a lock that is never held across a request, which is noise
/// next to the request itself; the simplicity buys TSan-clean code.
///
/// Latencies are kept in 64 log2 buckets (bucket i holds samples in
/// [2^i, 2^(i+1)) microseconds), so percentiles are estimated by linear
/// interpolation inside the winning bucket -- good to ~2x at the tails, exact
/// for the max which is tracked separately. That bound is plenty for the
/// "did p95 explode when threads went 1 -> 8" questions the bench asks.

#ifndef ISIS_SERVER_STATS_H_
#define ISIS_SERVER_STATS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

#include "common/sync.h"

namespace isis::server {

/// Point-in-time copy of the counters; what Snapshot() returns.
struct StatsSnapshot {
  std::int64_t requests = 0;        ///< Total requests completed.
  std::int64_t errors = 0;          ///< Requests answered with kError.
  std::int64_t sheds = 0;           ///< Requests rejected with kRetry.
  std::int64_t reads = 0;           ///< Completed under the shared lock.
  std::int64_t writes = 0;          ///< Completed under the exclusive lock.
  std::int64_t promotions = 0;      ///< Reads re-run exclusively (intern miss).
  std::int64_t notifications = 0;   ///< kNotify fan-out messages queued.
  std::int64_t deadline_drops = 0;  ///< Requests expired before dispatch.
  std::int64_t dedup_hits = 0;      ///< Resent writes answered from cache.
  std::int64_t heartbeats = 0;      ///< kPing requests answered.
  std::int64_t resumes = 0;         ///< kHello reattaches to a live session.
  std::int64_t idle_reaps = 0;      ///< Connections closed for inactivity.
  std::int64_t eof_clean = 0;       ///< Peer closes on a frame boundary.
  std::int64_t eof_truncated = 0;   ///< Peer closes mid-frame (torn stream).
  std::int64_t queue_depth = 0;     ///< Tasks queued across lanes, right now.
  std::int64_t queue_peak = 0;      ///< High-water mark of queue_depth.
  std::int64_t read_lock_wait_us = 0;   ///< Cumulative shared-lock wait.
  std::int64_t write_lock_wait_us = 0;  ///< Cumulative exclusive-lock wait.
  double p50_us = 0.0;              ///< Median request latency (interpolated).
  double p95_us = 0.0;              ///< 95th percentile latency (interpolated).
  std::int64_t max_us = 0;          ///< Exact slowest request.
  /// Per-request-type completion counts, indexed by the wire MsgType value.
  std::array<std::int64_t, 32> by_type{};
};

class ServerStats {
 public:
  static constexpr int kBuckets = 64;

  /// Records one completed request of wire type `type` (< 32) that took
  /// `latency_us` microseconds end to end (enqueue to response).
  void RecordRequest(int type, std::int64_t latency_us, bool error) {
    MutexLock lock(mu_);
    ++requests_;
    if (error) ++errors_;
    if (type >= 0 && type < static_cast<int>(by_type_.size())) {
      ++by_type_[static_cast<std::size_t>(type)];
    }
    ++latency_buckets_[BucketOf(latency_us)];
    max_us_ = std::max(max_us_, latency_us);
  }

  void RecordShed() {
    MutexLock lock(mu_);
    ++sheds_;
  }

  /// `exclusive` says which lock the task ran under; `lock_wait_us` is how
  /// long the worker blocked acquiring it.
  void RecordDispatch(bool exclusive, std::int64_t lock_wait_us) {
    MutexLock lock(mu_);
    if (exclusive) {
      ++writes_;
      write_lock_wait_us_ += lock_wait_us;
    } else {
      ++reads_;
      read_lock_wait_us_ += lock_wait_us;
    }
  }

  void RecordPromotion() {
    MutexLock lock(mu_);
    ++promotions_;
  }

  void RecordNotification() {
    MutexLock lock(mu_);
    ++notifications_;
  }

  void RecordDeadlineDrop() {
    MutexLock lock(mu_);
    ++deadline_drops_;
  }

  void RecordDedupHit() {
    MutexLock lock(mu_);
    ++dedup_hits_;
  }

  void RecordHeartbeat() {
    MutexLock lock(mu_);
    ++heartbeats_;
  }

  void RecordResume() {
    MutexLock lock(mu_);
    ++resumes_;
  }

  void RecordIdleReap() {
    MutexLock lock(mu_);
    ++idle_reaps_;
  }

  /// One peer-initiated close; `truncated` says whether it cut a frame (or
  /// header extension) in half rather than landing on a frame boundary.
  void RecordPeerClose(bool truncated) {
    MutexLock lock(mu_);
    if (truncated) {
      ++eof_truncated_;
    } else {
      ++eof_clean_;
    }
  }

  /// Tracks the global queued-task count; delta is +1 on enqueue, -1 on
  /// dequeue.
  void AdjustQueueDepth(int delta) {
    MutexLock lock(mu_);
    queue_depth_ += delta;
    queue_peak_ = std::max(queue_peak_, queue_depth_);
  }

  StatsSnapshot Snapshot() const {
    MutexLock lock(mu_);
    StatsSnapshot s;
    s.requests = requests_;
    s.errors = errors_;
    s.sheds = sheds_;
    s.reads = reads_;
    s.writes = writes_;
    s.promotions = promotions_;
    s.notifications = notifications_;
    s.deadline_drops = deadline_drops_;
    s.dedup_hits = dedup_hits_;
    s.heartbeats = heartbeats_;
    s.resumes = resumes_;
    s.idle_reaps = idle_reaps_;
    s.eof_clean = eof_clean_;
    s.eof_truncated = eof_truncated_;
    s.queue_depth = queue_depth_;
    s.queue_peak = queue_peak_;
    s.read_lock_wait_us = read_lock_wait_us_;
    s.write_lock_wait_us = write_lock_wait_us_;
    s.p50_us = PercentileLocked(0.50);
    s.p95_us = PercentileLocked(0.95);
    s.max_us = max_us_;
    s.by_type = by_type_;
    return s;
  }

  /// One JSON object on one line, the same shape bench_server emits, e.g.
  /// `{"requests": 1200, "p50_us": 140.0, ...}`. Dumped at shutdown and
  /// served by the kStats protocol request.
  std::string ToJsonLine() const;

 private:
  static int BucketOf(std::int64_t us) {
    int b = 0;
    while (us > 1 && b < kBuckets - 1) {
      us >>= 1;
      ++b;
    }
    return b;
  }

  /// Latency percentile by interpolating within the log2 bucket that holds
  /// the q-th sample.
  double PercentileLocked(double q) const ISIS_REQUIRES(mu_);

  mutable Mutex mu_;
  std::int64_t requests_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t errors_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t sheds_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t reads_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t writes_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t promotions_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t notifications_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t deadline_drops_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t dedup_hits_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t heartbeats_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t resumes_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t idle_reaps_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t eof_clean_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t eof_truncated_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t queue_depth_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t queue_peak_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t read_lock_wait_us_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t write_lock_wait_us_ ISIS_GUARDED_BY(mu_) = 0;
  std::int64_t max_us_ ISIS_GUARDED_BY(mu_) = 0;
  std::array<std::int64_t, 32> by_type_ ISIS_GUARDED_BY(mu_){};
  std::array<std::int64_t, kBuckets> latency_buckets_ ISIS_GUARDED_BY(mu_){};
};

}  // namespace isis::server

#endif  // ISIS_SERVER_STATS_H_
