/// \file retry.h
/// \brief Client-side fault tolerance: deadlines, jittered backoff,
/// retry-safe writes, automatic reconnect.
///
/// The server has always *emitted* its failure hints -- kRetry on a full
/// lane, a dropped connection on a corrupt frame -- but until this layer
/// nothing on the client side honored them: one transient error killed the
/// session. RetryingClient wraps any ClientTransport and turns transient
/// failure into bounded waiting:
///
///   * every request carries a deadline_ms budget (the frame header
///     extension, proto.h), so neither side ever waits unbounded;
///   * kRetry and kDeadlineExceeded responses -- "nothing happened, back
///     off" -- are resent after jittered exponential backoff;
///   * transport errors (peer gone, response lost, timeout) trigger a
///     reconnect with a hello that *resumes* the previous session id, so
///     per-session UI state, subscriptions and the write-dedup window
///     survive the new connection;
///   * reads are always safe to resend. Writes (kEvent/kAssign) are
///     resent only because they carry a per-session write_seq the server
///     dedupes (session.cc): if the first send was applied but its
///     response was lost, the resend returns the cached response instead
///     of applying twice. The dedup window is one write deep -- exactly
///     what a client that never pipelines writes needs -- and lives as
///     long as the session, so a resume that falls back to a fresh session
///     (the server reaped the old one) re-opens the duplicate window; the
///     client surfaces that as a counter, not silent corruption.
///
/// ClientTransport is the one-attempt SPI this wrapper drives: loopback
/// (loopback.h), TCP (net.h) and the chaos decorator (faults.h) all
/// implement it, so the retry policy is written once and tested against
/// injected faults rather than against the network's mood.

#ifndef ISIS_SERVER_RETRY_H_
#define ISIS_SERVER_RETRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "server/proto.h"

namespace isis::server {

/// \brief One connection to an ISIS server: dial, speak, die, re-dial.
///
/// Implementations are single-attempt and not thread-safe (one transport
/// per client thread); all policy -- retries, backoff, reconnect -- lives
/// in RetryingClient.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  /// (Re)establishes the connection and runs the hello handshake.
  /// `resume_sid` >= 0 asks the server to reattach that session (see
  /// proto.h); the server falls back to a fresh session if it is gone.
  /// Callable again after any failure -- a transport must tear down
  /// whatever half-open state the failure left behind.
  virtual Status Reconnect(std::int64_t resume_sid) = 0;

  /// One attempt: sends `req` (seq, deadline_ms, write_seq already set by
  /// the caller) and waits for the matching response, bounded by
  /// req.deadline_ms (plus transport slack) when nonzero. An error return
  /// leaves the transport disconnected or unusable until Reconnect().
  virtual Result<Frame> CallFrame(const Frame& req) = 0;

  /// Session id from the last successful handshake, -1 before one.
  virtual std::int64_t session_id() const = 0;
};

struct RetryOptions {
  /// Total attempts per request (first try included) before giving up.
  int max_attempts = 5;
  /// Per-attempt budget, stamped into the frame's deadline_ms extension
  /// and used to bound the local wait. 0 disables deadlines (waits become
  /// unbounded -- only sensible in single-threaded tests).
  int timeout_ms = 2000;
  int base_backoff_ms = 2;  ///< First backoff; doubles per failed attempt.
  int max_backoff_ms = 200;  ///< Backoff ceiling.
  std::uint64_t jitter_seed = 1;  ///< Deterministic jitter stream.
};

/// What the retry layer has absorbed so far (all monotone; read after a
/// run, e.g. by the chaos tests and bench_server).
struct RetryCounters {
  std::int64_t attempts = 0;      ///< CallFrame attempts issued.
  std::int64_t retries = 0;       ///< Attempts after the first, any cause.
  std::int64_t retry_hints = 0;   ///< kRetry responses honored.
  std::int64_t timeouts = 0;      ///< kDeadlineExceeded responses honored.
  std::int64_t transport_errors = 0;  ///< Connection-level failures
                                      ///< (includes local read timeouts).
  std::int64_t reconnects = 0;    ///< Successful re-dials.
  std::int64_t resumed = 0;       ///< ...that reattached the old session.
  std::int64_t lost_sessions = 0;  ///< ...that came back with a fresh sid.
};

/// \brief The resilient client: RetryingClient(transport).Call() behaves
/// like the naive client's Call() under a healthy network and degrades to
/// bounded retries under a hostile one. Not thread-safe (like the
/// transports it wraps).
class RetryingClient {
 public:
  RetryingClient(std::unique_ptr<ClientTransport> transport,
                 const RetryOptions& options)
      : transport_(std::move(transport)),
        options_(options),
        rng_(options.jitter_seed) {}

  /// First dial + hello, with the same backoff policy as requests. Must
  /// succeed before Call().
  Status Connect();

  /// Sends one logical request, retrying/reconnecting per the header
  /// comment. The returned frame is a real server answer (possibly
  /// kError); only exhausted retries or a non-retryable transport state
  /// surface as a non-OK status.
  Result<Frame> Call(MsgType type, const std::string& payload);

  // Convenience wrappers matching LoopbackClient's.
  Result<std::vector<std::string>> Query(const std::string& cls,
                                         const std::string& predicate);
  Status Assign(const std::string& cls, const std::string& entity,
                const std::string& attr, const std::string& values);

  std::int64_t session_id() const { return session_id_; }
  const RetryCounters& counters() const { return counters_; }

 private:
  /// Sleeps the jittered exponential backoff for `attempt` (0-based).
  void Backoff(int attempt);
  /// Re-dials with resume; updates session_id_ and the resume counters.
  Status TryReconnect();

  std::unique_ptr<ClientTransport> transport_;
  const RetryOptions options_;
  Rng rng_;
  std::int64_t session_id_ = -1;
  bool connected_ = false;
  std::uint32_t next_seq_ = 1;
  std::uint64_t next_write_seq_ = 1;
  RetryCounters counters_;
};

}  // namespace isis::server

#endif  // ISIS_SERVER_RETRY_H_
