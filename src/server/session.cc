#include "server/session.h"

#include <cstdio>
#include <utility>

#include "common/strings.h"
#include "input/event.h"
#include "live/deps.h"
#include "query/eval.h"
#include "query/parser.h"
#include "store/serializer.h"

namespace isis::server {

namespace {

Frame ErrorFrame(const Frame& req, const Status& st) {
  Frame resp;
  resp.type = MsgType::kError;
  resp.seq = req.seq;
  resp.payload = std::string(StatusCodeToString(st.code())) + "|" +
                 Escape(st.message());
  return resp;
}

bool IsUnavailableResponse(const Frame& resp) {
  return resp.type == MsgType::kError &&
         resp.payload.rfind("Unavailable|", 0) == 0;
}

}  // namespace

// --- Session. ---

void Session::Subscribe(const std::string& cls) {
  MutexLock lock(mu_);
  subs_.insert(cls);
}

void Session::Unsubscribe(const std::string& cls) {
  MutexLock lock(mu_);
  subs_.erase(cls);
}

bool Session::SubscribedTo(const std::string& cls) const {
  MutexLock lock(mu_);
  return subs_.count("*") > 0 || subs_.count(cls) > 0;
}

void Session::PushNotification(const std::string& line) {
  MutexLock lock(mu_);
  pending_.push_back(line);
}

std::vector<std::string> Session::DrainNotifications() {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.swap(pending_);
  return out;
}

// --- DeltaCollector. ---

void Server::DeltaCollector::OnMembership(EntityId e, ClassId cls,
                                          bool added) {
  if (db_ == nullptr) return;
  Change c;
  c.cls = db_->schema().GetClass(cls).name;
  c.entity = db_->NameOf(e);
  c.kind = added ? "member+" : "member-";
  changes_.push_back(std::move(c));
}

void Server::DeltaCollector::OnAttributeValue(EntityId e, AttributeId attr,
                                              const sdm::EntitySet& before,
                                              const sdm::EntitySet& after) {
  (void)before;
  (void)after;
  if (db_ == nullptr) return;
  const sdm::AttributeDef& def = db_->schema().GetAttribute(attr);
  Change c;
  c.cls = db_->schema().GetClass(def.owner).name;
  c.entity = db_->NameOf(e);
  c.kind = "attr:" + def.name;
  changes_.push_back(std::move(c));
}

std::vector<Server::DeltaCollector::Change> Server::DeltaCollector::Drain() {
  std::vector<Change> out;
  out.swap(changes_);
  return out;
}

// --- Server lifecycle. ---

Server::Server(std::unique_ptr<query::Workspace> ws,
               const ServerOptions& options)
    : options_(options), ws_(std::move(ws)) {}

Result<std::unique_ptr<Server>> Server::Open(
    std::unique_ptr<query::Workspace> ws, const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server(std::move(ws), options));
  if (!options.durable_dir.empty()) {
    ISIS_RETURN_NOT_OK(server->InitDurable());
    store::GroupCommitter::Options gc;
    gc.policy = options.wal_sync;
    // stats_ lives inside the heap-allocated Server, so the pointer stays
    // valid for the committer's whole life.
    ServerStats* stats = &server->stats_;
    gc.batch_observer = [stats](int records, std::int64_t sync_us,
                                bool synced) {
      stats->RecordWalBatch(records, sync_us, synced);
    };
    server->committer_ =
        std::make_unique<store::GroupCommitter>(server->wal_.get(), gc);
  }
  if (server->ws_->db().options().live_views) {
    server->live_ = std::make_unique<live::LiveViewEngine>(server->ws_.get());
  }
  server->deltas_.Attach(&server->ws_->db());
  server->ws_->db().AddObserver(&server->deltas_);
  if (options.result_cache) {
    query::ResultCache::Options copts;
    copts.capacity = options.result_cache_capacity;
    server->cache_ =
        std::make_unique<query::ResultCache>(&server->ws_->db(), copts);
  }
  // From here on reads run concurrently: freeze interning (see the
  // "Concurrency" section of sdm/database.h). Exclusive tasks unfreeze
  // around themselves.
  server->ws_->db().set_intern_frozen(true);
  Executor::Options exec_options;
  exec_options.threads = options.threads;
  exec_options.queue_capacity = options.queue_capacity;
  exec_options.exclusive_batch = options.exclusive_batch;
  server->executor_ =
      std::make_unique<Executor>(exec_options, &server->stats_);
  return server;
}

Server::~Server() {
  // Without a prior Shutdown() this is the crash path: workers are joined
  // (they must not outlive the object) but no checkpoint or log rotation
  // happens, so the WAL still holds everything needed for recovery.
  if (executor_ != nullptr) executor_->Shutdown();
  ws_->db().RemoveObserver(&deltas_);
}

Status Server::InitDurable() {
  store::FileEnv* env =
      options_.env != nullptr ? options_.env : store::FileEnv::Default();
  const std::string wal_path =
      options_.durable_dir + "/" + ws_->name() + ".server.wal";
  if (env->Exists(wal_path)) {
    Result<store::WalContents> contents = store::ReadWal(wal_path, env);
    ISIS_RETURN_NOT_OK(contents.status());
    const std::vector<store::WalRecord>& records = contents->records;
    if (records.empty() || records.front().type != "base") {
      return Status::ParseError("server WAL does not start with a base "
                                "checkpoint: " + wal_path);
    }
    Result<std::unique_ptr<query::Workspace>> loaded =
        store::Load(records.front().payload);
    ISIS_RETURN_NOT_OK(loaded.status());
    ws_ = std::move(loaded).ValueOrDie();
    // Replay through the same dispatch path that produced the log, one
    // replay controller per original session (their prompt state machines
    // are independent).
    std::map<std::int64_t, std::unique_ptr<ui::SessionController>> ctrls;
    for (std::size_t i = 1; i < records.size(); ++i) {
      ISIS_RETURN_NOT_OK(ReplayRecord(records[i], &ctrls));
    }
    ISIS_RETURN_NOT_OK(ws_->db().schema().Validate());
  }
  // Fresh log on the current state -- also the torn-tail repair (the WAL
  // reader already dropped a torn final record, and this rewrite makes the
  // file clean again).
  std::vector<store::WalRecord> base;
  base.push_back({"base", store::Save(*ws_)});
  Result<std::unique_ptr<store::WalWriter>> writer =
      store::WalWriter::CreateWithRecords(wal_path, env, base);
  ISIS_RETURN_NOT_OK(writer.status());
  wal_ = std::move(writer).ValueOrDie();
  return Status::OK();
}

Status Server::ReplayRecord(
    const store::WalRecord& rec,
    std::map<std::int64_t, std::unique_ptr<ui::SessionController>>* ctrls) {
  if (rec.type == "sevent") {
    std::size_t bar = rec.payload.find('|');
    if (bar == std::string::npos) {
      return Status::ParseError("malformed sevent record: " + rec.payload);
    }
    std::int64_t sid = 0;
    try {
      sid = std::stoll(rec.payload.substr(0, bar));
    } catch (...) {
      return Status::ParseError("bad session id in sevent record");
    }
    Result<input::Event> ev = input::DecodeEvent(rec.payload.substr(bar + 1));
    ISIS_RETURN_NOT_OK(ev.status());
    std::unique_ptr<ui::SessionController>& ctrl = (*ctrls)[sid];
    if (ctrl == nullptr) {
      ctrl = std::make_unique<ui::SessionController>(ws_.get(), nullptr);
    }
    return ctrl->HandleEvent(*ev);
  }
  if (rec.type == "assign") {
    Status st = ApplyAssign(SplitFields(rec.payload));
    if (!st.ok()) return st;
    return ws_->ReevaluateAll();
  }
  if (rec.type == "note") return Status::OK();  // Journal only.
  return Status::ParseError("unknown server WAL record type: " + rec.type);
}

std::string Server::Shutdown() {
  {
    MutexLock lock(sessions_mu_);
    if (shut_down_) return stats_.ToJsonLine();
    shut_down_ = true;
  }
  executor_->Shutdown();  // Drains every accepted request + continuations.
  if (committer_ != nullptr) {
    // Every request's own continuation already waited; this covers records
    // whose waiter died with a dropped transport, and makes "WAL complete"
    // a precondition of the checkpoint below.
    LogIfError(committer_->Flush(), "WAL flush at shutdown");
  }
  SyncCacheStats();
  ws_->db().set_intern_frozen(false);
  if (wal_ != nullptr) {
    store::FileEnv* env =
        options_.env != nullptr ? options_.env : store::FileEnv::Default();
    const std::string save_path =
        options_.durable_dir + "/" + ws_->name() + ".isis";
    Status st = store::SaveToFile(*ws_, save_path, env);
    if (st.ok()) {
      // The checkpoint captured everything: restart replays nothing.
      std::vector<store::WalRecord> base;
      base.push_back({"base", store::Save(*ws_)});
      Result<std::unique_ptr<store::WalWriter>> writer =
          store::WalWriter::CreateWithRecords(wal_->path(), env, base);
      if (writer.ok()) {
        wal_ = std::move(writer).ValueOrDie();
        // The committer is idle (executor drained, Flush returned) -- the
        // one state set_writer's contract allows.
        committer_->set_writer(wal_.get());
      }
    }
    // A failed checkpoint keeps the old log -- recovery still works.
  }
  std::string json = stats_.ToJsonLine();
  std::fprintf(stderr, "%s\n", json.c_str());
  return json;
}

int Server::session_count() const {
  MutexLock lock(sessions_mu_);
  return static_cast<int>(sessions_.size());
}

std::shared_ptr<Session> Server::FindSession(std::int64_t id) const {
  MutexLock lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void Server::SyncCacheStats() {
  if (cache_ == nullptr) return;
  query::ResultCache::Counters c = cache_->counters();
  stats_.SetCacheCounters(c.hits, c.misses, c.evictions, c.invalidations,
                          c.schema_flushes + c.version_flushes);
}

void Server::Finish(const Frame& req, const Frame& resp,
                    ResponseCallback& done,
                    std::chrono::steady_clock::time_point t0) {
  auto latency = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  stats_.RecordRequest(static_cast<int>(req.type), latency,
                       resp.type == MsgType::kError);
  done(resp);
}

// --- Request routing. ---

void Server::HandleFrame(std::int64_t session_id, const Frame& request,
                         ResponseCallback done) {
  auto t0 = std::chrono::steady_clock::now();

  if (request.type == MsgType::kPing) {
    // The liveness probe: answered inline on the transport's thread, never
    // queued -- a ping must come back even when every lane is saturated.
    stats_.RecordHeartbeat();
    Frame resp;
    resp.type = MsgType::kPong;
    resp.seq = request.seq;
    resp.payload = request.payload;
    Finish(request, resp, done, t0);
    return;
  }

  if (request.type == MsgType::kHello) {
    // A second payload field is a resume request: reattach that session if
    // it is still live (reconnect after a dropped connection), otherwise
    // fall through and mint a fresh one.
    std::vector<std::string> hello_fields = SplitFields(request.payload);
    if (hello_fields.size() >= 2) {
      std::int64_t resume_sid = -1;
      try {
        resume_sid = std::stoll(hello_fields[1]);
      } catch (...) {
        resume_sid = -1;
      }
      std::shared_ptr<Session> prev =
          resume_sid >= 0 ? FindSession(resume_sid) : nullptr;
      if (prev != nullptr) {
        stats_.RecordResume();
        Frame resp;
        resp.type = MsgType::kOk;
        resp.seq = request.seq;
        resp.payload = JoinFields({std::to_string(prev->id()), ws_->name()});
        Finish(request, resp, done, t0);
        return;
      }
    }
    std::int64_t id;
    {
      MutexLock lock(sessions_mu_);
      if (shut_down_) {
        Frame resp = ErrorFrame(
            request, Status::Unavailable("server is shutting down"));
        Finish(request, resp, done, t0);
        return;
      }
      id = next_session_id_++;
    }
    executor_->AddLane(id);
    SubmitResult r = executor_->Submit(
        id, TaskMode::kShared,
        [this, id, request, done, t0]() mutable -> PostLockFn {
          auto s = std::make_shared<Session>(id, ws_.get(), live_.get());
          {
            MutexLock lock(sessions_mu_);
            sessions_[id] = s;
          }
          Frame resp;
          resp.type = MsgType::kOk;
          resp.seq = request.seq;
          resp.payload = JoinFields({std::to_string(id), ws_->name()});
          Finish(request, resp, done, t0);
          return {};
        },
        /*important=*/true);
    if (r != SubmitResult::kAccepted) {
      Frame resp =
          ErrorFrame(request, Status::Unavailable("server is closed"));
      Finish(request, resp, done, t0);
    }
    return;
  }

  std::shared_ptr<Session> s = FindSession(session_id);
  if (s == nullptr) {
    Frame resp = ErrorFrame(
        request, Status::NotFound("unknown session id " +
                                  std::to_string(session_id)));
    Finish(request, resp, done, t0);
    return;
  }

  TaskMode mode;
  bool important = false;
  switch (request.type) {
    case MsgType::kQuery:
    case MsgType::kExplain:
    case MsgType::kRender:
      mode = TaskMode::kShared;
      break;
    case MsgType::kEvent:
    case MsgType::kAssign:
      mode = TaskMode::kExclusive;
      break;
    case MsgType::kStats:
    case MsgType::kPoll:
    case MsgType::kSubscribe:
    case MsgType::kUnsubscribe:
      mode = TaskMode::kNone;
      break;
    case MsgType::kBye:
      mode = TaskMode::kNone;
      important = true;  // Teardown must not be shed behind a full queue.
      break;
    default: {
      Frame resp = ErrorFrame(
          request, Status::InvalidArgument(
                       std::string("not a request type: ") +
                       MsgTypeName(request.type)));
      Finish(request, resp, done, t0);
      return;
    }
  }

  TaskFn task;
  if (mode == TaskMode::kShared) {
    task = [this, s, request, done, t0]() mutable -> PostLockFn {
      // Detect reads that needed to intern an unseen value: either the
      // engine returned Unavailable, or a degraded naming read bumped the
      // thread-local miss counter. Re-run those under the exclusive lock.
      std::int64_t misses_before = sdm::Database::InternMissCount();
      Frame resp = HandleReadLocked(s, request);
      if (sdm::Database::InternMissCount() != misses_before ||
          IsUnavailableResponse(resp)) {
        stats_.RecordPromotion();
        SubmitResult r = executor_->Submit(
            s->id(), TaskMode::kExclusive,
            [this, s, request, done, t0]() mutable -> PostLockFn {
              ws_->db().set_intern_frozen(false);
              Frame retry = HandleReadLocked(s, request);
              ws_->db().set_intern_frozen(true);
              FanOutDeltas();  // Interning may have touched memberships.
              Finish(request, retry, done, t0);
              return {};
            },
            /*important=*/true);
        if (r != SubmitResult::kAccepted) {
          Finish(request,
                 ErrorFrame(request, Status::Unavailable("server is closed")),
                 done, t0);
        }
        return {};
      }
      Finish(request, resp, done, t0);
      return {};
    };
  } else if (mode == TaskMode::kExclusive) {
    // The WAL record is assembled here, on the transport's thread -- string
    // building has no business inside the exclusive section.
    std::string wal_type;
    std::string wal_payload;
    if (request.type == MsgType::kEvent) {
      wal_type = "sevent";
      wal_payload = std::to_string(s->id()) + "|" + request.payload;
    } else {
      wal_type = "assign";
      wal_payload = request.payload;
    }
    task = [this, s, request, done, t0, wal_type = std::move(wal_type),
            wal_payload = std::move(wal_payload)]() mutable -> PostLockFn {
      // A resend of the write we just applied (its response was lost in
      // flight): replay the cached response instead of applying twice.
      if (request.write_seq != 0 &&
          request.write_seq == s->last_write_seq()) {
        stats_.RecordDedupHit();
        Frame resp = s->last_write_response();
        resp.seq = request.seq;
        Finish(request, resp, done, t0);
        return {};
      }
      bool log_wal = false;
      ws_->db().set_intern_frozen(false);
      Frame resp = HandleWriteLocked(s, request, &log_wal);
      ws_->db().set_intern_frozen(true);
      FanOutDeltas();
      if (request.write_seq != 0) s->set_last_write(request.write_seq, resp);
      if (!log_wal || committer_ == nullptr) {
        Finish(request, resp, done, t0);
        return {};
      }
      // Enqueue while the writer lock is still held (a queue push, no
      // I/O), so WAL order always equals apply order. The wait -- and the
      // fsync behind it -- happens in the continuation, after the lock is
      // released; until then the reply does not exist.
      store::GroupCommitter::Ticket ticket =
          committer_->Enqueue(std::move(wal_type), std::move(wal_payload));
      return [this, ticket, request, resp, done, t0]() mutable {
        // Best-effort like the old inline append: the mutation is already
        // applied, so an error here must not fail the request (the client
        // would desync from state that exists); it surfaces in the log and
        // the committer's sticky failure keeps later commits loud.
        LogIfError(committer_->Wait(ticket), "server WAL group commit");
        Finish(request, resp, done, t0);
      };
    };
  } else {
    task = [this, s, request, done, t0]() mutable -> PostLockFn {
      Frame resp;
      resp.seq = request.seq;
      switch (request.type) {
        case MsgType::kStats:
          SyncCacheStats();
          resp.type = MsgType::kStatsResult;
          resp.payload = stats_.ToJsonLine();
          break;
        case MsgType::kPoll: {
          std::vector<std::string> notifs = s->DrainNotifications();
          std::vector<std::string> fields;
          fields.push_back(std::to_string(notifs.size()));
          for (std::string& n : notifs) fields.push_back(std::move(n));
          resp.type = MsgType::kOk;
          resp.payload = JoinFields(fields);
          break;
        }
        case MsgType::kSubscribe:
        case MsgType::kUnsubscribe: {
          std::vector<std::string> fields = SplitFields(request.payload);
          const std::string cls = fields.empty() ? "*" : fields[0];
          if (request.type == MsgType::kSubscribe) {
            s->Subscribe(cls);
          } else {
            s->Unsubscribe(cls);
          }
          resp.type = MsgType::kOk;
          break;
        }
        case MsgType::kBye: {
          {
            MutexLock lock(sessions_mu_);
            sessions_.erase(s->id());
          }
          executor_->RemoveLane(s->id());  // Drains, then the lane dies.
          resp.type = MsgType::kOk;
          break;
        }
        default:
          resp = ErrorFrame(request, Status::Internal("bad kNone dispatch"));
          break;
      }
      Finish(request, resp, done, t0);
      return {};
    };
  }

  std::function<void()> on_expired;
  if (request.deadline_ms > 0) {
    // Expired while queued: answer without touching the database. To the
    // client this is indistinguishable from kRetry -- nothing happened,
    // resend if the budget allows (same write_seq, so a resent write still
    // dedupes against an earlier application).
    on_expired = [this, request, done, t0]() mutable {
      Frame resp;
      resp.type = MsgType::kDeadlineExceeded;
      resp.seq = request.seq;
      resp.payload =
          "deadline_exceeded|" + std::to_string(request.deadline_ms);
      Finish(request, resp, done, t0);
    };
  }
  SubmitResult r =
      executor_->Submit(s->id(), mode, std::move(task), important,
                        request.deadline_ms, std::move(on_expired));
  if (r == SubmitResult::kShed) {
    stats_.RecordShed();
    Frame resp;
    resp.type = MsgType::kRetry;
    resp.seq = request.seq;
    resp.payload =
        "queue_full|" + std::to_string(options_.queue_capacity);
    Finish(request, resp, done, t0);
  } else if (r == SubmitResult::kClosed) {
    Frame resp = ErrorFrame(
        request, Status::Unavailable("server closed or session gone"));
    Finish(request, resp, done, t0);
  }
}

// --- Handlers (lock already held by the worker). ---

Frame Server::HandleReadLocked(std::shared_ptr<Session> s, const Frame& req) {
  switch (req.type) {
    case MsgType::kQuery:
      return DoQuery(req);
    case MsgType::kExplain:
      return DoExplain(req);
    case MsgType::kRender:
      return DoRender(std::move(s), req);
    default:
      return ErrorFrame(req, Status::Internal("bad shared dispatch"));
  }
}

Frame Server::HandleWriteLocked(std::shared_ptr<Session> s, const Frame& req,
                                bool* log_wal) {
  switch (req.type) {
    case MsgType::kEvent:
      return DoEvent(std::move(s), req, log_wal);
    case MsgType::kAssign:
      return DoAssign(req, log_wal);
    default:
      return ErrorFrame(req, Status::Internal("bad exclusive dispatch"));
  }
}

Frame Server::DoQuery(const Frame& req) {
  std::vector<std::string> fields = SplitFields(req.payload);
  if (fields.size() != 2) {
    return ErrorFrame(
        req, Status::InvalidArgument("kQuery payload is class|predicate"));
  }
  const sdm::Database& db = ws_->db();
  // Degraded-read marker, snapshotted before the parse: a frozen-intern
  // read that could not intern (thread-local miss) yields a predicate that
  // must neither consult nor populate the cache -- the caller discards this
  // whole response and re-runs exclusively anyway.
  const std::int64_t misses0 = sdm::Database::InternMissCount();
  Result<ClassId> cls = db.schema().FindClass(fields[0]);
  if (!cls.ok()) return ErrorFrame(req, cls.status());
  Result<query::Predicate> pred =
      query::ParsePredicate(db, *cls, fields[1]);
  if (!pred.ok()) return ErrorFrame(req, pred.status());

  std::shared_ptr<const sdm::EntitySet> result;
  std::string key;
  const bool cacheable =
      cache_ != nullptr && sdm::Database::InternMissCount() == misses0;
  if (cacheable) {
    key = query::ResultCache::NormalizeKey(*pred, *cls);
    result = cache_->Lookup(key);
  }
  if (result == nullptr) {
    // Stamp the version *before* evaluating: Insert refuses the result if
    // the database moved mid-evaluation (REPL-style unfrozen readers can
    // intern while evaluating; under the server's shared lock nothing
    // moves and the stamp always holds).
    const std::uint64_t v0 = db.version();
    query::Evaluator ev(db);
    auto eval = std::make_shared<const sdm::EntitySet>(
        ev.EvaluateSubclass(*pred, *cls));
    if (cacheable && sdm::Database::InternMissCount() == misses0) {
      query::ResultCache::Deps deps = live::FlattenForCache(
          live::AnalyzeAdHoc(db.schema(), *cls, *pred));
      cache_->Insert(key, deps, eval, v0);
    }
    result = std::move(eval);
  }
  // Names are rendered at response time, never cached: the id-keyed result
  // stays valid across renames, and NameOf reflects the current names.
  std::vector<std::string> out;
  out.push_back(std::to_string(result->size()));
  for (EntityId e : *result) out.push_back(db.NameOf(e));
  Frame resp;
  resp.type = MsgType::kQueryResult;
  resp.seq = req.seq;
  resp.payload = JoinFields(out);
  return resp;
}

Frame Server::DoExplain(const Frame& req) {
  std::vector<std::string> fields = SplitFields(req.payload);
  if (fields.size() != 2) {
    return ErrorFrame(
        req, Status::InvalidArgument("kExplain payload is class|predicate"));
  }
  const sdm::Database& db = ws_->db();
  Result<ClassId> cls = db.schema().FindClass(fields[0]);
  if (!cls.ok()) return ErrorFrame(req, cls.status());
  Result<query::Predicate> pred =
      query::ParsePredicate(db, *cls, fields[1]);
  if (!pred.ok()) return ErrorFrame(req, pred.status());
  query::Evaluator ev(db);
  Frame resp;
  resp.type = MsgType::kExplainResult;
  resp.seq = req.seq;
  resp.payload = ev.Explain(*pred, *cls);
  // Whether the identical kQuery would be served from the result cache
  // right now. Peek does not touch the counters or the LRU order, so
  // explaining a query does not perturb what it reports.
  if (cache_ == nullptr) {
    resp.payload += "\ncache: bypass";
  } else if (cache_->Peek(query::ResultCache::NormalizeKey(*pred, *cls))) {
    resp.payload += "\ncache: hit";
  } else {
    resp.payload += "\ncache: miss";
  }
  return resp;
}

Frame Server::DoRender(std::shared_ptr<Session> s, const Frame& req) {
  const ui::Screen& screen = s->ctrl().Render();
  Frame resp;
  resp.type = MsgType::kScreen;
  resp.seq = req.seq;
  resp.payload =
      JoinFields({s->ctrl().message(), screen.canvas.ToString()});
  return resp;
}

Frame Server::DoEvent(std::shared_ptr<Session> s, const Frame& req,
                      bool* log_wal) {
  Result<input::Event> ev = input::DecodeEvent(req.payload);
  if (!ev.ok()) return ErrorFrame(req, ev.status());
  // Errors surface in the session's message line, exactly like the
  // single-user interface; the response is still the rendered screen.
  Status st = s->ctrl().HandleEvent(*ev);
  // The caller commits the record through the group committer once the
  // exclusive lock is released; rejected events replay as no-ops anyway,
  // so only accepted ones are worth a WAL slot.
  if (st.ok() && log_wal != nullptr) *log_wal = true;
  const ui::Screen& screen = s->ctrl().Render();
  Frame resp;
  resp.type = MsgType::kScreen;
  resp.seq = req.seq;
  resp.payload =
      JoinFields({s->ctrl().message(), screen.canvas.ToString()});
  return resp;
}

Status Server::ApplyAssign(const std::vector<std::string>& fields) {
  if (fields.size() != 4) {
    return Status::InvalidArgument(
        "kAssign payload is class|entity|attr|v1,v2,...");
  }
  sdm::Database& db = ws_->db();
  Result<ClassId> cls = db.schema().FindClass(fields[0]);
  ISIS_RETURN_NOT_OK(cls.status());
  Result<EntityId> e = db.FindMember(*cls, fields[1]);
  ISIS_RETURN_NOT_OK(e.status());
  Result<AttributeId> attr = db.schema().FindAttribute(*cls, fields[2]);
  ISIS_RETURN_NOT_OK(attr.status());
  const sdm::AttributeDef& def = db.schema().GetAttribute(*attr);
  sdm::EntitySet values;
  for (const std::string& raw : Split(fields[3], ',')) {
    std::string name(Trim(raw));
    if (name.empty()) continue;
    Result<EntityId> v = db.FindMember(def.value_class, name);
    ISIS_RETURN_NOT_OK(v.status());
    values.insert(*v);
  }
  if (def.multivalued) {
    return db.SetMulti(*e, *attr, values);
  }
  if (values.size() > 1) {
    return Status::InvalidArgument(fields[2] + " is singlevalued");
  }
  EntityId v = values.empty() ? sdm::kNullEntity : *values.begin();
  return db.SetSingle(*e, *attr, v);
}

Frame Server::DoAssign(const Frame& req, bool* log_wal) {
  Status st = ApplyAssign(SplitFields(req.payload));
  if (!st.ok()) return ErrorFrame(req, st);
  if (log_wal != nullptr) *log_wal = true;  // Committed by the caller.
  if (live_ == nullptr) {
    // No live engine: stored derived views go stale on mutation, so bring
    // them up to date before anyone reads (same rule as RefreshDerived).
    Status rs = ws_->ReevaluateAll();
    if (!rs.ok()) return ErrorFrame(req, rs);
  }
  Frame resp;
  resp.type = MsgType::kOk;
  resp.seq = req.seq;
  return resp;
}

void Server::FanOutDeltas() {
  std::vector<DeltaCollector::Change> changes = deltas_.Drain();
  if (changes.empty()) return;
  std::vector<std::shared_ptr<Session>> targets;
  {
    MutexLock lock(sessions_mu_);
    for (const auto& [id, s] : sessions_) targets.push_back(s);
  }
  for (const DeltaCollector::Change& c : changes) {
    const std::string payload = JoinFields({c.cls, c.entity, c.kind});
    for (const std::shared_ptr<Session>& s : targets) {
      if (!s->SubscribedTo(c.cls)) continue;
      s->PushNotification(payload);
      stats_.RecordNotification();
    }
  }
}

}  // namespace isis::server
