#include "server/loopback.h"

#include <chrono>
#include <memory>
#include <utility>

#include "common/strings.h"
#include "common/sync.h"

namespace isis::server {

void LoopbackClient::Send(MsgType type, const std::string& payload,
                          std::function<void(const Frame&)> done) {
  Frame req;
  req.type = type;
  req.seq = next_seq_++;
  req.payload = payload;
  // Round-trip through the real wire encoding both ways, so loopback
  // traffic exercises exactly what a socket would carry.
  std::string bytes = EncodeFrame(req);
  Frame decoded;
  std::size_t consumed = 0;
  std::string error;
  if (DecodeFrame(bytes, &decoded, &consumed, &error) != DecodeResult::kOk) {
    Frame resp;
    resp.type = MsgType::kError;
    resp.seq = req.seq;
    resp.payload = "Internal|loopback encode: " + Escape(error);
    done(resp);
    return;
  }
  server_->HandleFrame(session_id_, decoded,
                       [done = std::move(done)](const Frame& resp) {
                         std::string wire = EncodeFrame(resp);
                         Frame out;
                         std::size_t used = 0;
                         if (DecodeFrame(wire, &out, &used) ==
                             DecodeResult::kOk) {
                           done(out);
                         } else {
                           done(resp);  // Unreachable; belt and braces.
                         }
                       });
}

Result<Frame> LoopbackClient::Call(MsgType type, const std::string& payload) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  Frame result;
  Send(type, payload, [&](const Frame& resp) {
    MutexLock lock(mu);
    result = resp;
    ready = true;
    cv.NotifyOne();
  });
  MutexLock lock(mu);
  cv.Wait(lock, [&] { return ready; });
  return result;
}

Status LoopbackClient::CallAsync(MsgType type, const std::string& payload,
                                 std::function<void(const Frame&)> done) {
  Send(type, payload, std::move(done));
  return Status::OK();
}

Status LoopbackClient::Connect(const std::string& client_name) {
  Result<Frame> resp = Call(MsgType::kHello, JoinFields({client_name}));
  ISIS_RETURN_NOT_OK(resp.status());
  if (resp->type != MsgType::kOk) {
    return Status::Unavailable("hello rejected: " + resp->payload);
  }
  std::vector<std::string> fields = SplitFields(resp->payload);
  if (fields.empty()) return Status::ParseError("malformed hello response");
  try {
    session_id_ = std::stoll(fields[0]);
  } catch (...) {
    return Status::ParseError("bad session id: " + fields[0]);
  }
  return Status::OK();
}

Result<std::vector<std::string>> LoopbackClient::Query(
    const std::string& cls, const std::string& predicate) {
  Result<Frame> resp =
      Call(MsgType::kQuery, JoinFields({cls, predicate}));
  ISIS_RETURN_NOT_OK(resp.status());
  if (resp->type != MsgType::kQueryResult) {
    return Status::Internal("query failed: " + resp->payload);
  }
  std::vector<std::string> fields = SplitFields(resp->payload);
  if (fields.empty()) return Status::ParseError("empty query result");
  fields.erase(fields.begin());  // Drop the count; names follow.
  return fields;
}

Status LoopbackClient::Assign(const std::string& cls,
                              const std::string& entity,
                              const std::string& attr,
                              const std::string& values) {
  Result<Frame> resp =
      Call(MsgType::kAssign, JoinFields({cls, entity, attr, values}));
  ISIS_RETURN_NOT_OK(resp.status());
  if (resp->type != MsgType::kOk) {
    return Status::Internal("assign failed: " + resp->payload);
  }
  return Status::OK();
}

Result<std::string> LoopbackClient::Render() {
  Result<Frame> resp = Call(MsgType::kRender, "");
  ISIS_RETURN_NOT_OK(resp.status());
  if (resp->type != MsgType::kScreen) {
    return Status::Internal("render failed: " + resp->payload);
  }
  std::vector<std::string> fields = SplitFields(resp->payload);
  if (fields.size() != 2) return Status::ParseError("malformed screen");
  return fields[0] + "\n" + fields[1];
}

// --- LoopbackTransport. ---

Result<Frame> LoopbackTransport::CallFrame(const Frame& req) {
  // The wire round trip, as LoopbackClient::Send -- exercised here on
  // frames that may carry deadline/write_seq extensions.
  std::string bytes = EncodeFrame(req);
  Frame decoded;
  std::size_t consumed = 0;
  std::string error;
  if (DecodeFrame(bytes, &decoded, &consumed, &error) != DecodeResult::kOk) {
    return Status::Internal("loopback encode: " + error);
  }

  // The response callback may outlive this call (the worker answers after
  // our deadline passed), so the rendezvous state is shared, not stack.
  struct WaitState {
    Mutex mu;
    CondVar cv;
    bool ready = false;
    Frame resp;
  };
  auto state = std::make_shared<WaitState>();
  server_->HandleFrame(session_id_, decoded, [state](const Frame& resp) {
    std::string wire = EncodeFrame(resp);
    Frame out;
    std::size_t used = 0;
    MutexLock lock(state->mu);
    state->resp =
        DecodeFrame(wire, &out, &used) == DecodeResult::kOk ? out : resp;
    state->ready = true;
    state->cv.NotifyOne();
  });

  MutexLock lock(state->mu);
  if (req.deadline_ms > 0) {
    // Deadline-bounded: the server enforces deadline_ms before dispatch,
    // so allow it slack to produce the kDeadlineExceeded answer; if even
    // that never comes the wait still ends.
    const auto budget =
        std::chrono::milliseconds(req.deadline_ms) +
        std::chrono::milliseconds(250);
    if (!state->cv.WaitFor(lock, budget, [&] {
          state->mu.AssertHeld();
          return state->ready;
        })) {
      return Status::IOError("loopback response timed out");
    }
  } else {
    state->cv.Wait(lock, [&] {
      state->mu.AssertHeld();
      return state->ready;
    });
  }
  return state->resp;
}

Status LoopbackTransport::Reconnect(std::int64_t resume_sid) {
  Frame hello;
  hello.type = MsgType::kHello;
  hello.seq = 1;
  hello.deadline_ms = 5000;  // A dial is bounded too.
  hello.payload =
      resume_sid >= 0
          ? JoinFields({client_name_, std::to_string(resume_sid)})
          : JoinFields({client_name_});
  session_id_ = -1;
  Result<Frame> resp = CallFrame(hello);
  ISIS_RETURN_NOT_OK(resp.status());
  if (resp->type != MsgType::kOk) {
    return Status::Unavailable("hello rejected: " + resp->payload);
  }
  std::vector<std::string> fields = SplitFields(resp->payload);
  if (fields.empty()) return Status::ParseError("malformed hello response");
  try {
    session_id_ = std::stoll(fields[0]);
  } catch (...) {
    return Status::ParseError("bad session id: " + fields[0]);
  }
  return Status::OK();
}

}  // namespace isis::server
