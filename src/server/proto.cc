#include "server/proto.h"

#include <cstring>

#include "common/strings.h"
#include "store/crc32.h"

namespace isis::server {

namespace {

void PutU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t GetU32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

void PutU64(std::string* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xffffffffull));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t GetU64(const char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

/// Extension bytes a given flags byte selects.
std::size_t ExtensionSize(std::uint8_t flags) {
  std::size_t ext = 0;
  if (flags & kFlagDeadline) ext += 4;
  if (flags & kFlagWriteSeq) ext += 8;
  return ext;
}

}  // namespace

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kHello:
      return "kHello";
    case MsgType::kEvent:
      return "kEvent";
    case MsgType::kAssign:
      return "kAssign";
    case MsgType::kQuery:
      return "kQuery";
    case MsgType::kExplain:
      return "kExplain";
    case MsgType::kRender:
      return "kRender";
    case MsgType::kSubscribe:
      return "kSubscribe";
    case MsgType::kUnsubscribe:
      return "kUnsubscribe";
    case MsgType::kStats:
      return "kStats";
    case MsgType::kPoll:
      return "kPoll";
    case MsgType::kBye:
      return "kBye";
    case MsgType::kPing:
      return "kPing";
    case MsgType::kOk:
      return "kOk";
    case MsgType::kError:
      return "kError";
    case MsgType::kScreen:
      return "kScreen";
    case MsgType::kQueryResult:
      return "kQueryResult";
    case MsgType::kExplainResult:
      return "kExplainResult";
    case MsgType::kStatsResult:
      return "kStatsResult";
    case MsgType::kRetry:
      return "kRetry";
    case MsgType::kNotify:
      return "kNotify";
    case MsgType::kDeadlineExceeded:
      return "kDeadlineExceeded";
    case MsgType::kPong:
      return "kPong";
  }
  return "kUnknown";
}

bool IsValidMsgType(std::uint8_t t) {
  return (t >= static_cast<std::uint8_t>(MsgType::kHello) &&
          t <= static_cast<std::uint8_t>(MsgType::kPing)) ||
         (t >= static_cast<std::uint8_t>(MsgType::kOk) &&
          t <= static_cast<std::uint8_t>(MsgType::kPong));
}

std::string EncodeFrame(const Frame& frame) {
  std::uint8_t flags = 0;
  if (frame.deadline_ms != 0) flags |= kFlagDeadline;
  if (frame.write_seq != 0) flags |= kFlagWriteSeq;
  std::string out;
  out.reserve(kHeaderSize + ExtensionSize(flags) + frame.payload.size());
  out += "IS";
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(flags));
  PutU32(&out, frame.seq);
  PutU32(&out, static_cast<std::uint32_t>(frame.payload.size()));
  PutU32(&out, store::Crc32(frame.payload));
  if (flags & kFlagDeadline) PutU32(&out, frame.deadline_ms);
  if (flags & kFlagWriteSeq) PutU64(&out, frame.write_seq);
  out += frame.payload;
  return out;
}

DecodeResult DecodeFrame(const std::string& buf, Frame* out,
                         std::size_t* consumed, std::string* error) {
  *consumed = 0;
  if (buf.size() < kHeaderSize) return DecodeResult::kNeedMore;
  const char* p = buf.data();
  if (p[0] != 'I' || p[1] != 'S') {
    if (error) *error = "bad magic";
    return DecodeResult::kError;
  }
  std::uint8_t type = static_cast<std::uint8_t>(p[2]);
  if (!IsValidMsgType(type)) {
    if (error) *error = "unknown message type";
    return DecodeResult::kError;
  }
  std::uint8_t flags = static_cast<std::uint8_t>(p[3]);
  if (flags & static_cast<std::uint8_t>(~kKnownFlags)) {
    if (error) *error = "unknown header flags";
    return DecodeResult::kError;
  }
  std::uint32_t seq = GetU32(p + 4);
  std::uint32_t len = GetU32(p + 8);
  std::uint32_t crc = GetU32(p + 12);
  if (len > kMaxPayload) {
    if (error) *error = "payload too large";
    return DecodeResult::kError;
  }
  const std::size_t ext = ExtensionSize(flags);
  if (buf.size() < kHeaderSize + ext + len) return DecodeResult::kNeedMore;
  const char* e = p + kHeaderSize;
  std::uint32_t deadline_ms = 0;
  std::uint64_t write_seq = 0;
  if (flags & kFlagDeadline) {
    deadline_ms = GetU32(e);
    e += 4;
  }
  if (flags & kFlagWriteSeq) {
    write_seq = GetU64(e);
    e += 8;
  }
  std::string_view payload(buf.data() + kHeaderSize + ext, len);
  if (store::Crc32(payload) != crc) {
    if (error) *error = "payload checksum mismatch";
    return DecodeResult::kError;
  }
  out->type = static_cast<MsgType>(type);
  out->seq = seq;
  out->deadline_ms = deadline_ms;
  out->write_seq = write_seq;
  out->payload.assign(payload);
  *consumed = kHeaderSize + ext + len;
  return DecodeResult::kOk;
}

DecodeResult FrameReader::Next(Frame* out, std::string* error) {
  std::size_t consumed = 0;
  DecodeResult r = DecodeFrame(buf_, out, &consumed, error);
  if (r == DecodeResult::kOk) buf_.erase(0, consumed);
  return r;
}

std::string JoinFields(const std::vector<std::string>& fields) {
  std::vector<std::string> escaped;
  escaped.reserve(fields.size());
  for (const std::string& f : fields) escaped.push_back(Escape(f));
  return Join(escaped, "|");
}

std::vector<std::string> SplitFields(const std::string& payload) {
  std::vector<std::string> out;
  for (const std::string& f : Split(payload, '|')) out.push_back(Unescape(f));
  return out;
}

}  // namespace isis::server
