#include "server/proto.h"

#include <cstring>

#include "common/strings.h"
#include "store/crc32.h"

namespace isis::server {

namespace {

void PutU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t GetU32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kHello:
      return "kHello";
    case MsgType::kEvent:
      return "kEvent";
    case MsgType::kAssign:
      return "kAssign";
    case MsgType::kQuery:
      return "kQuery";
    case MsgType::kExplain:
      return "kExplain";
    case MsgType::kRender:
      return "kRender";
    case MsgType::kSubscribe:
      return "kSubscribe";
    case MsgType::kUnsubscribe:
      return "kUnsubscribe";
    case MsgType::kStats:
      return "kStats";
    case MsgType::kPoll:
      return "kPoll";
    case MsgType::kBye:
      return "kBye";
    case MsgType::kOk:
      return "kOk";
    case MsgType::kError:
      return "kError";
    case MsgType::kScreen:
      return "kScreen";
    case MsgType::kQueryResult:
      return "kQueryResult";
    case MsgType::kExplainResult:
      return "kExplainResult";
    case MsgType::kStatsResult:
      return "kStatsResult";
    case MsgType::kRetry:
      return "kRetry";
    case MsgType::kNotify:
      return "kNotify";
  }
  return "kUnknown";
}

bool IsValidMsgType(std::uint8_t t) {
  return (t >= static_cast<std::uint8_t>(MsgType::kHello) &&
          t <= static_cast<std::uint8_t>(MsgType::kBye)) ||
         (t >= static_cast<std::uint8_t>(MsgType::kOk) &&
          t <= static_cast<std::uint8_t>(MsgType::kNotify));
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kHeaderSize + frame.payload.size());
  out += "IS";
  out.push_back(static_cast<char>(frame.type));
  out.push_back('\0');  // reserved
  PutU32(&out, frame.seq);
  PutU32(&out, static_cast<std::uint32_t>(frame.payload.size()));
  PutU32(&out, store::Crc32(frame.payload));
  out += frame.payload;
  return out;
}

DecodeResult DecodeFrame(const std::string& buf, Frame* out,
                         std::size_t* consumed, std::string* error) {
  *consumed = 0;
  if (buf.size() < kHeaderSize) return DecodeResult::kNeedMore;
  const char* p = buf.data();
  if (p[0] != 'I' || p[1] != 'S') {
    if (error) *error = "bad magic";
    return DecodeResult::kError;
  }
  std::uint8_t type = static_cast<std::uint8_t>(p[2]);
  if (!IsValidMsgType(type)) {
    if (error) *error = "unknown message type";
    return DecodeResult::kError;
  }
  if (p[3] != '\0') {
    if (error) *error = "nonzero reserved byte";
    return DecodeResult::kError;
  }
  std::uint32_t seq = GetU32(p + 4);
  std::uint32_t len = GetU32(p + 8);
  std::uint32_t crc = GetU32(p + 12);
  if (len > kMaxPayload) {
    if (error) *error = "payload too large";
    return DecodeResult::kError;
  }
  if (buf.size() < kHeaderSize + len) return DecodeResult::kNeedMore;
  std::string_view payload(buf.data() + kHeaderSize, len);
  if (store::Crc32(payload) != crc) {
    if (error) *error = "payload checksum mismatch";
    return DecodeResult::kError;
  }
  out->type = static_cast<MsgType>(type);
  out->seq = seq;
  out->payload.assign(payload);
  *consumed = kHeaderSize + len;
  return DecodeResult::kOk;
}

DecodeResult FrameReader::Next(Frame* out, std::string* error) {
  std::size_t consumed = 0;
  DecodeResult r = DecodeFrame(buf_, out, &consumed, error);
  if (r == DecodeResult::kOk) buf_.erase(0, consumed);
  return r;
}

std::string JoinFields(const std::vector<std::string>& fields) {
  std::vector<std::string> escaped;
  escaped.reserve(fields.size());
  for (const std::string& f : fields) escaped.push_back(Escape(f));
  return Join(escaped, "|");
}

std::vector<std::string> SplitFields(const std::string& payload) {
  std::vector<std::string> out;
  for (const std::string& f : Split(payload, '|')) out.push_back(Unescape(f));
  return out;
}

}  // namespace isis::server
