/// \file session.h
/// \brief The multi-session ISIS server: N client sessions over one shared
/// durable workspace.
///
/// Architecture (one Server instance):
///
///   transports (loopback / net)  --Frame-->  Server::HandleFrame
///        |                                        |
///        |                              per-session lane queue
///        v                                        v
///   FrameReader / EncodeFrame            Executor worker pool
///                                     shared lock: query, explain,
///                                       render, stats, poll
///                                     exclusive lock: event, assign
///                                          |
///                                one query::Workspace + value indexes
///                                + one live::LiveViewEngine + one WAL
///
/// Each client session keeps its *own* UI state -- a shared-mode
/// ui::SessionController holds the selection, pages, prompts and worksheet
/// -- while schema, data, stored queries, value indexes and live views are
/// one copy shared by everyone. Reads run concurrently under the shared
/// lock; mutations run alone under the exclusive lock, append to the
/// server's write-ahead log before the response is sent, and fan change
/// notifications out to subscribed sessions.
///
/// Interning discipline: while read tasks run, the database is
/// *intern-frozen* (sdm/database.h, "Concurrency"): a read that would have
/// to intern a never-seen value -- a parse mentioning the constant `3.5`
/// for the first time -- observes Unavailable or a thread-local miss, and
/// the server transparently re-runs that one request under the exclusive
/// lock, where interning is safe. Results are identical to a
/// single-threaded run; only the lock held differs.
///
/// Durability: in a durable server every mutation is in the WAL
/// (`<dir>/<db>.server.wal`, records "sevent" = `<sid>|<event line>` and
/// "assign") before its response is sent, via group commit
/// (store/group_commit.h, DESIGN.md §14): the exclusive task applies the
/// mutation and *enqueues* the pre-built WAL record while holding the
/// writer lock -- so WAL order equals apply order -- then waits for its
/// commit ticket in a post-lock continuation, after the lock is released.
/// The fsync that makes a whole batch of mutations durable thus never
/// blocks readers or the next writer, and under `wal_sync = kGroup` is
/// paid once per batch instead of once per mutation. Open() replays a
/// leftover log through per-session replay controllers -- the same
/// dispatch path that produced it -- then rotates it onto a fresh base
/// checkpoint. Shutdown() drains the executor, flushes the committer,
/// checkpoints to `<dir>/<db>.isis`, rotates the log and emits one stats
/// JSON line.

#ifndef ISIS_SERVER_SESSION_H_
#define ISIS_SERVER_SESSION_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "live/engine.h"
#include "query/cache.h"
#include "query/workspace.h"
#include "server/executor.h"
#include "server/proto.h"
#include "server/stats.h"
#include "store/file.h"
#include "store/group_commit.h"
#include "store/wal.h"
#include "ui/controller.h"

namespace isis::server {

struct ServerOptions {
  int threads = 4;
  int queue_capacity = 64;  ///< Per-session queued-request bound.
  /// Query-result cache over the shared database (query/cache.h): kQuery
  /// answers are memoized by normalized predicate and invalidated from the
  /// mutation delta stream. Results are identical either way (property-
  /// tested in result_cache_test.cpp); off is only for A/B benching.
  bool result_cache = true;
  int result_cache_capacity = 1024;
  /// Non-empty: run durable -- WAL in this directory (must exist), recovery
  /// on open, checkpoint on shutdown.
  std::string durable_dir;
  /// When fsyncs happen on the durable write path (store/group_commit.h):
  /// `kGroup` amortizes one fsync over every mutation that arrived while
  /// the previous one was flushing; `kPerCommit` is the classic
  /// one-fsync-per-write; `kNone` trades crash durability for speed.
  /// Replies imply durability under the first two. Ignored when not
  /// durable.
  store::WalSyncPolicy wal_sync = store::WalSyncPolicy::kGroup;
  /// Mutations one worker runs under a single writer-lock hold
  /// (executor.h, rule 6); they then commit as one WAL group.
  int exclusive_batch = 8;
  store::FileEnv* env = nullptr;  ///< nullptr = store::FileEnv::Default().
};

/// Delivered exactly once per HandleFrame call, possibly on a worker
/// thread.
using ResponseCallback = std::function<void(const Frame&)>;

/// \brief One connected client: per-session UI state and subscriptions.
class Session {
 public:
  Session(std::int64_t id, query::Workspace* ws, live::LiveViewEngine* live)
      : id_(id), ctrl_(ws, live) {}

  std::int64_t id() const { return id_; }
  /// Only tasks on this session's lane touch the controller.
  ui::SessionController& ctrl() { return ctrl_; }

  // Subscriptions and pending notifications are written by *other*
  // sessions' exclusive tasks (the fan-out), so unlike the controller they
  // are mutex-guarded.
  void Subscribe(const std::string& cls);
  void Unsubscribe(const std::string& cls);
  bool SubscribedTo(const std::string& cls) const;
  void PushNotification(const std::string& line);
  std::vector<std::string> DrainNotifications();

  // Write-dedup window, one write deep (see retry.h): the last applied
  // write_seq and the response it produced. Lane-serial -- only this
  // session's exclusive tasks read or write it -- so no lock, like the
  // controller.
  std::uint64_t last_write_seq() const { return last_write_seq_; }
  const Frame& last_write_response() const { return last_write_resp_; }
  void set_last_write(std::uint64_t seq, const Frame& resp) {
    last_write_seq_ = seq;
    last_write_resp_ = resp;
  }

 private:
  const std::int64_t id_;
  ui::SessionController ctrl_;
  std::uint64_t last_write_seq_ = 0;  ///< 0 = empty window.
  Frame last_write_resp_;
  mutable Mutex mu_;
  /// Class names, or "*".
  std::set<std::string> subs_ ISIS_GUARDED_BY(mu_);
  /// Undelivered kNotify payloads.
  std::vector<std::string> pending_ ISIS_GUARDED_BY(mu_);
};

/// \brief The server. Owns the shared workspace, executor, WAL and stats.
class Server {
 public:
  /// Builds a server over `ws`. Durable mode (options.durable_dir set)
  /// first recovers from a leftover WAL -- in that case the recovered state
  /// replaces `ws` -- and always leaves a fresh log whose base is the
  /// current state.
  static Result<std::unique_ptr<Server>> Open(
      std::unique_ptr<query::Workspace> ws, const ServerOptions& options);

  ~Server();  ///< Without Shutdown(): simulates a crash (WAL left as-is).

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Routes one request. kHello creates a session (`session_id` ignored;
  /// pass -1): response payload "sid|<db name>". A hello whose payload
  /// carries a second field naming a still-live session id *resumes* that
  /// session instead (same sid back; UI state, subscriptions and the
  /// write-dedup window survive the new connection). Every other type needs
  /// the session id from hello. kPing is answered inline with kPong (no
  /// session needed -- it is the liveness probe). A request whose
  /// deadline_ms expired while queued is answered kDeadlineExceeded without
  /// running (executor.h, rule 4). `done` fires exactly once -- kRetry when
  /// the session's queue is full, kError for protocol/engine errors.
  void HandleFrame(std::int64_t session_id, const Frame& request,
                   ResponseCallback done);

  /// Drains every queued request, checkpoints (durable mode), rotates the
  /// WAL and stops the workers. Requests after this get kError. Returns the
  /// final stats JSON line.
  std::string Shutdown();

  const ServerStats& stats() const { return stats_; }
  /// For transports that record connection-level events (idle reaps, EOF
  /// kinds) against the server's counters.
  ServerStats* mutable_stats() { return &stats_; }
  const query::Workspace& workspace() const { return *ws_; }
  /// The query-result cache, or nullptr when disabled (for tests).
  const query::ResultCache* result_cache() const { return cache_.get(); }
  /// Sessions currently open (for tests).
  int session_count() const;

 private:
  /// Records membership/attribute deltas during an exclusive task; drained
  /// into kNotify fan-out while the exclusive lock is still held.
  class DeltaCollector : public sdm::MutationObserver {
   public:
    struct Change {
      std::string cls;     ///< Class scoping the change (subscription key).
      std::string entity;  ///< Entity display name.
      std::string kind;    ///< "member+", "member-" or "attr:<name>".
    };
    void OnMembership(EntityId e, ClassId cls, bool added) override;
    void OnAttributeValue(EntityId e, AttributeId attr,
                          const sdm::EntitySet& before,
                          const sdm::EntitySet& after) override;
    void OnSchemaChange() override {}
    void OnMutationsSettled() override {}

    void Attach(const sdm::Database* db) { db_ = db; }
    std::vector<Change> Drain();

   private:
    const sdm::Database* db_ = nullptr;
    std::vector<Change> changes_;  ///< Only touched under the exclusive lock.
  };

  Server(std::unique_ptr<query::Workspace> ws, const ServerOptions& options);

  Status InitDurable();  ///< Recovery + fresh log; runs before workers see ws.
  Status ApplyAssign(const std::vector<std::string>& fields);
  /// Replays one logged record during recovery (no re-logging, no fan-out).
  Status ReplayRecord(const store::WalRecord& rec,
                      std::map<std::int64_t,
                               std::unique_ptr<ui::SessionController>>* ctrls);

  // Request handlers; `shared` handlers run under the shared lock,
  // `exclusive` ones alone. All return the response frame.
  Frame HandleHello(const Frame& req);
  Frame HandleReadLocked(std::shared_ptr<Session> s, const Frame& req);
  /// `log_wal` (out, may be null): set true iff the mutation applied and
  /// must be in the WAL before the response is sent. The *caller* owns the
  /// commit -- it enqueues the pre-built record on the group committer
  /// under the lock and waits for the ticket after releasing it.
  Frame HandleWriteLocked(std::shared_ptr<Session> s, const Frame& req,
                          bool* log_wal);
  Frame DoQuery(const Frame& req);
  Frame DoExplain(const Frame& req);
  Frame DoRender(std::shared_ptr<Session> s, const Frame& req);
  Frame DoEvent(std::shared_ptr<Session> s, const Frame& req, bool* log_wal);
  Frame DoAssign(const Frame& req, bool* log_wal);
  /// Fan out collected deltas to subscribed sessions (exclusive lock held).
  void FanOutDeltas();

  std::shared_ptr<Session> FindSession(std::int64_t id) const;
  void Finish(const Frame& req, const Frame& resp, ResponseCallback& done,
              std::chrono::steady_clock::time_point t0);
  /// Copies the result cache's counters into stats_ (absolute stores), so
  /// the next Snapshot()/ToJsonLine() reflects them. Cheap; called before
  /// every stats read.
  void SyncCacheStats();

  const ServerOptions options_;
  std::unique_ptr<query::Workspace> ws_;
  std::unique_ptr<live::LiveViewEngine> live_;  ///< Iff db options.live_views.
  /// Declared after ws_ so it is destroyed first (its destructor
  /// deregisters from the database). Null when options_.result_cache is off.
  std::unique_ptr<query::ResultCache> cache_;
  DeltaCollector deltas_;
  ServerStats stats_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<store::WalWriter> wal_;  ///< Null when not durable.
  /// Serializes WAL appends and amortizes fsyncs across concurrent
  /// mutations. Null iff wal_ is. Declared after wal_: destroyed first.
  std::unique_ptr<store::GroupCommitter> committer_;

  mutable Mutex sessions_mu_;
  std::map<std::int64_t, std::shared_ptr<Session>> sessions_
      ISIS_GUARDED_BY(sessions_mu_);
  std::int64_t next_session_id_ ISIS_GUARDED_BY(sessions_mu_) = 1;
  bool shut_down_ ISIS_GUARDED_BY(sessions_mu_) = false;
};

}  // namespace isis::server

#endif  // ISIS_SERVER_SESSION_H_
