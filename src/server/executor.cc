#include "server/executor.h"

#include <utility>

#include "server/stats.h"

namespace isis::server {

Executor::Executor(const Options& options, ServerStats* stats)
    : options_(options), stats_(stats) {
  int n = options_.threads > 0 ? options_.threads : 1;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

void Executor::AddLane(std::int64_t lane) {
  MutexLock lock(mu_);
  auto& slot = lanes_[lane];
  if (slot == nullptr) slot = std::make_shared<Lane>();
  slot->removed = false;
}

void Executor::RemoveLane(std::int64_t lane) {
  MutexLock lock(mu_);
  auto it = lanes_.find(lane);
  if (it == lanes_.end()) return;
  if (!it->second->running && it->second->queue.empty()) {
    lanes_.erase(it);
  } else {
    it->second->removed = true;  // Drains, then the worker erases it.
  }
}

SubmitResult Executor::Submit(std::int64_t lane, TaskMode mode, TaskFn task,
                              bool important, std::uint32_t deadline_ms,
                              std::function<void()> on_expired) {
  Task t{mode, std::move(task)};
  if (deadline_ms > 0) {
    t.deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(deadline_ms);
    t.has_deadline = true;
    t.on_expired = std::move(on_expired);
  }
  MutexLock lock(mu_);
  if (closed_) return SubmitResult::kClosed;
  auto it = lanes_.find(lane);
  if (it == lanes_.end() || it->second->removed) return SubmitResult::kClosed;
  Lane& l = *it->second;
  if (!important &&
      l.queue.size() >= static_cast<std::size_t>(options_.queue_capacity)) {
    return SubmitResult::kShed;
  }
  l.queue.push_back(std::move(t));
  if (stats_) stats_->AdjustQueueDepth(+1);
  if (!l.running && l.queue.size() == 1) {
    ready_.push_back(lane);
    work_cv_.NotifyOne();
  }
  return SubmitResult::kAccepted;
}

void Executor::RecordLockWait(bool exclusive,
                              std::chrono::steady_clock::time_point t0) {
  if (stats_ == nullptr) return;
  auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  stats_->RecordDispatch(exclusive, waited);
}

bool Executor::PopHeadTask(TaskMode mode, Task* task,
                           std::shared_ptr<Lane>* lane,
                           std::int64_t* lane_id) {
  MutexLock lock(mu_);
  std::size_t probes = ready_.size();
  for (std::size_t i = 0; i < probes; ++i) {
    std::int64_t cand = ready_.front();
    ready_.pop_front();
    auto it = lanes_.find(cand);
    if (it == lanes_.end()) continue;  // Stale entry; drop it.
    if (it->second->running || it->second->queue.empty()) continue;
    if (it->second->queue.front().mode != mode) {
      // Not batchable under the current hold; leave it for a fresh
      // dispatch. The rotation to the back is bounded round-robin, not
      // starvation: a worker picks it up as soon as one is free.
      ready_.push_back(cand);
      continue;
    }
    *task = std::move(it->second->queue.front());
    it->second->queue.pop_front();
    it->second->running = true;
    ++in_flight_;
    *lane = it->second;
    *lane_id = cand;
    return true;
  }
  return false;
}

void Executor::FinishLane(const std::shared_ptr<Lane>& lane,
                          std::int64_t lane_id) {
  MutexLock lock(mu_);
  lane->running = false;
  --in_flight_;
  if (!lane->queue.empty()) {
    ready_.push_back(lane_id);
    work_cv_.NotifyOne();
  } else if (lane->removed) {
    lanes_.erase(lane_id);
  }
  if (closed_ && in_flight_ == 0 && ready_.empty()) work_cv_.NotifyAll();
}

void Executor::DrainBatchLocked(TaskMode mode, int batch,
                                std::vector<PostLockFn>* post) {
  // Rules 5 and 6: the hold is already paid for -- drain more same-mode
  // work under it before releasing. Continuations must NOT run here (the
  // lock is still held); they accumulate in `post` for the caller.
  for (int extra = 1; extra < batch; ++extra) {
    Task next;
    std::shared_ptr<Lane> lane;
    std::int64_t lane_id = 0;
    if (!PopHeadTask(mode, &next, &lane, &lane_id)) break;
    if (stats_) stats_->AdjustQueueDepth(-1);
    if (next.has_deadline && next.on_expired != nullptr &&
        std::chrono::steady_clock::now() >= next.deadline) {
      // Rule 4 still applies mid-batch; on_expired acquires nothing.
      if (stats_) stats_->RecordDeadlineDrop();
      next.on_expired();
    } else {
      // A batched task waited zero time for the lock by construction.
      if (stats_) stats_->RecordDispatch(mode == TaskMode::kExclusive, 0);
      PostLockFn after = next.fn();
      if (after) post->push_back(std::move(after));
    }
    FinishLane(lane, lane_id);
  }
}

void Executor::RunTask(Task& task) {
  auto t0 = std::chrono::steady_clock::now();
  // Deferred work from the whole batch, run strictly after the lock hold
  // below closes. Enqueue order is preserved: for durable mutations that
  // means commit tickets are awaited in WAL order, though any order would
  // be correct -- each ticket waits only on its own record.
  std::vector<PostLockFn> post;
  switch (task.mode) {
    case TaskMode::kShared: {
      ReaderLock db(db_lock_);
      RecordLockWait(/*exclusive=*/false, t0);
      PostLockFn after = task.fn();
      if (after) post.push_back(std::move(after));
      DrainBatchLocked(TaskMode::kShared, options_.shared_batch, &post);
      break;
    }
    case TaskMode::kExclusive: {
      WriterLock db(db_lock_);
      RecordLockWait(/*exclusive=*/true, t0);
      PostLockFn after = task.fn();
      if (after) post.push_back(std::move(after));
      DrainBatchLocked(TaskMode::kExclusive, options_.exclusive_batch, &post);
      break;
    }
    case TaskMode::kNone: {
      PostLockFn after = task.fn();
      if (after) post.push_back(std::move(after));
      break;
    }
  }
  // The lock is released; now the batch's deferred work (group-commit
  // waits, replies that imply durability) may block without serializing
  // other workers' database access.
  for (PostLockFn& fn : post) fn();
}

void Executor::WorkerLoop() {
  MutexLock lock(mu_);
  for (;;) {
    work_cv_.Wait(lock, [this] {
      mu_.AssertHeld();
      return !ready_.empty() || (closed_ && in_flight_ == 0);
    });
    if (ready_.empty()) {
      if (closed_ && in_flight_ == 0) return;
      continue;
    }
    std::int64_t lane_id = ready_.front();
    ready_.pop_front();
    auto it = lanes_.find(lane_id);
    if (it == lanes_.end()) continue;
    std::shared_ptr<Lane> lane = it->second;
    if (lane->queue.empty() || lane->running) continue;
    Task task = std::move(lane->queue.front());
    lane->queue.pop_front();
    lane->running = true;
    ++in_flight_;
    lock.Unlock();

    if (stats_) stats_->AdjustQueueDepth(-1);
    if (task.has_deadline && task.on_expired != nullptr &&
        std::chrono::steady_clock::now() >= task.deadline) {
      // Rule 4: expired in the queue -- answer without dispatching (no
      // database lock; the expiry path must never add lock pressure).
      if (stats_) stats_->RecordDeadlineDrop();
      task.on_expired();
    } else {
      RunTask(task);
    }

    FinishLane(lane, lane_id);
    lock.Lock();
  }
}

void Executor::Shutdown() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace isis::server
