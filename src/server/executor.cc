#include "server/executor.h"

#include <chrono>
#include <utility>

#include "server/stats.h"

namespace isis::server {

void RwMutex::LockShared() {
  std::unique_lock<std::mutex> lock(mu_);
  // Writer preference: a reader arriving while a writer waits queues behind
  // it, so mutations cannot be starved by a saturating read load.
  cv_.wait(lock, [&] { return !writer_active_ && waiting_writers_ == 0; });
  ++active_readers_;
}

void RwMutex::UnlockShared() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--active_readers_ == 0) cv_.notify_all();
}

void RwMutex::LockExclusive() {
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_writers_;
  cv_.wait(lock, [&] { return !writer_active_ && active_readers_ == 0; });
  --waiting_writers_;
  writer_active_ = true;
}

void RwMutex::UnlockExclusive() {
  std::lock_guard<std::mutex> lock(mu_);
  writer_active_ = false;
  cv_.notify_all();
}

Executor::Executor(const Options& options, ServerStats* stats)
    : options_(options), stats_(stats) {
  int n = options_.threads > 0 ? options_.threads : 1;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

void Executor::AddLane(std::int64_t lane) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = lanes_[lane];
  if (slot == nullptr) slot = std::make_shared<Lane>();
  slot->removed = false;
}

void Executor::RemoveLane(std::int64_t lane) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lanes_.find(lane);
  if (it == lanes_.end()) return;
  if (!it->second->running && it->second->queue.empty()) {
    lanes_.erase(it);
  } else {
    it->second->removed = true;  // Drains, then the worker erases it.
  }
}

SubmitResult Executor::Submit(std::int64_t lane, TaskMode mode,
                              std::function<void()> task, bool important) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return SubmitResult::kClosed;
  auto it = lanes_.find(lane);
  if (it == lanes_.end() || it->second->removed) return SubmitResult::kClosed;
  Lane& l = *it->second;
  if (!important &&
      l.queue.size() >= static_cast<std::size_t>(options_.queue_capacity)) {
    return SubmitResult::kShed;
  }
  l.queue.push_back(Task{mode, std::move(task)});
  if (stats_) stats_->AdjustQueueDepth(+1);
  if (!l.running && l.queue.size() == 1) {
    ready_.push_back(lane);
    work_cv_.notify_one();
  }
  return SubmitResult::kAccepted;
}

void Executor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return !ready_.empty() || (closed_ && in_flight_ == 0);
    });
    if (ready_.empty()) {
      if (closed_ && in_flight_ == 0) return;
      continue;
    }
    std::int64_t lane_id = ready_.front();
    ready_.pop_front();
    auto it = lanes_.find(lane_id);
    if (it == lanes_.end()) continue;
    std::shared_ptr<Lane> lane = it->second;
    if (lane->queue.empty() || lane->running) continue;
    Task task = std::move(lane->queue.front());
    lane->queue.pop_front();
    lane->running = true;
    ++in_flight_;
    lock.unlock();

    if (stats_) stats_->AdjustQueueDepth(-1);
    auto t0 = std::chrono::steady_clock::now();
    if (task.mode == TaskMode::kShared) {
      db_lock_.LockShared();
    } else if (task.mode == TaskMode::kExclusive) {
      db_lock_.LockExclusive();
    }
    if (stats_ && task.mode != TaskMode::kNone) {
      auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      stats_->RecordDispatch(task.mode == TaskMode::kExclusive, waited);
    }
    task.fn();
    if (task.mode == TaskMode::kShared) {
      db_lock_.UnlockShared();
    } else if (task.mode == TaskMode::kExclusive) {
      db_lock_.UnlockExclusive();
    }

    lock.lock();
    lane->running = false;
    --in_flight_;
    if (!lane->queue.empty()) {
      ready_.push_back(lane_id);
      work_cv_.notify_one();
    } else if (lane->removed) {
      lanes_.erase(lane_id);
    }
    if (closed_ && in_flight_ == 0 && ready_.empty()) work_cv_.notify_all();
  }
}

void Executor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace isis::server
