#include "server/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/strings.h"

namespace isis::server {

namespace {

bool IsWrite(MsgType type) {
  return type == MsgType::kEvent || type == MsgType::kAssign;
}

}  // namespace

void RetryingClient::Backoff(int attempt) {
  std::int64_t ms = options_.base_backoff_ms;
  for (int i = 0; i < attempt && ms < options_.max_backoff_ms; ++i) ms *= 2;
  ms = std::min<std::int64_t>(ms, options_.max_backoff_ms);
  // Full jitter: sleep uniform in [ms/2, ms], so a burst of shed clients
  // does not re-converge on the server in lockstep.
  ms = ms / 2 + static_cast<std::int64_t>(rng_.Below(
                    static_cast<std::uint64_t>(ms / 2 + 1)));
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Status RetryingClient::TryReconnect() {
  Status st = transport_->Reconnect(session_id_);
  if (!st.ok()) return st;
  ++counters_.reconnects;
  std::int64_t sid = transport_->session_id();
  if (session_id_ >= 0 && sid == session_id_) {
    ++counters_.resumed;
  } else if (session_id_ >= 0) {
    // The server no longer knew our session (reaped, or it said bye): we
    // are a fresh session now and the one-deep dedup window restarted.
    ++counters_.lost_sessions;
  }
  session_id_ = sid;
  connected_ = true;
  return Status::OK();
}

Status RetryingClient::Connect() {
  Status last = Status::Unavailable("never attempted");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++counters_.retries;
      Backoff(attempt - 1);
    }
    ++counters_.attempts;
    last = TryReconnect();
    if (last.ok()) return last;
    ++counters_.transport_errors;
  }
  return last;
}

Result<Frame> RetryingClient::Call(MsgType type, const std::string& payload) {
  Frame req;
  req.type = type;
  req.payload = payload;
  req.deadline_ms = options_.timeout_ms > 0
                        ? static_cast<std::uint32_t>(options_.timeout_ms)
                        : 0;
  // One write_seq per *logical* mutation: every resend below reuses it, so
  // the server can tell "try that again" from "do that again".
  if (IsWrite(type)) req.write_seq = next_write_seq_++;

  Status last = Status::Unavailable("never attempted");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++counters_.retries;
      Backoff(attempt - 1);
    }
    if (!connected_) {
      last = TryReconnect();
      if (!last.ok()) {
        ++counters_.transport_errors;
        continue;
      }
    }
    ++counters_.attempts;
    req.seq = next_seq_++;
    Result<Frame> resp = transport_->CallFrame(req);
    if (!resp.ok()) {
      // Connection-level failure: the response (and for a write, whether
      // it was ever applied) is unknown. Reconnect-with-resume plus the
      // stable write_seq makes the resend safe either way.
      ++counters_.transport_errors;
      connected_ = false;
      last = resp.status();
      continue;
    }
    if (resp->type == MsgType::kRetry) {
      // The shed hint this layer exists to honor: the lane was full, the
      // request was never queued. Back off and try again.
      ++counters_.retry_hints;
      last = Status::Unavailable("server shed the request: " + resp->payload);
      continue;
    }
    if (resp->type == MsgType::kDeadlineExceeded) {
      // Expired in the queue, dropped before dispatch -- same "nothing
      // happened" guarantee as kRetry.
      ++counters_.timeouts;
      last = Status::Unavailable("request deadline expired: " + resp->payload);
      continue;
    }
    return resp;
  }
  return Status::Unavailable(
      "retries exhausted after " + std::to_string(options_.max_attempts) +
      " attempts: " + last.message());
}

Result<std::vector<std::string>> RetryingClient::Query(
    const std::string& cls, const std::string& predicate) {
  Result<Frame> resp = Call(MsgType::kQuery, JoinFields({cls, predicate}));
  ISIS_RETURN_NOT_OK(resp.status());
  if (resp->type != MsgType::kQueryResult) {
    return Status::Internal("query failed: " + resp->payload);
  }
  std::vector<std::string> fields = SplitFields(resp->payload);
  if (fields.empty()) return Status::ParseError("empty query result");
  fields.erase(fields.begin());  // Drop the count; names follow.
  return fields;
}

Status RetryingClient::Assign(const std::string& cls,
                              const std::string& entity,
                              const std::string& attr,
                              const std::string& values) {
  Result<Frame> resp =
      Call(MsgType::kAssign, JoinFields({cls, entity, attr, values}));
  ISIS_RETURN_NOT_OK(resp.status());
  if (resp->type != MsgType::kOk) {
    return Status::Internal("assign failed: " + resp->payload);
  }
  return Status::OK();
}

}  // namespace isis::server
