/// \file proto.h
/// \brief The ISIS wire protocol: length-prefixed, checksummed binary frames.
///
/// Every message on a connection -- either direction -- is one frame:
///
///   offset  size  field
///        0     2  magic "IS"
///        2     1  type (MsgType)
///        3     1  flags (was "reserved, must be 0" in protocol v0)
///        4     4  seq, little-endian u32 (echoed in responses)
///        8     4  payload length, little-endian u32 (<= kMaxPayload)
///       12     4  CRC-32 of the payload bytes, little-endian u32
///       16   ext  header extensions selected by `flags` (see below)
///    16+ext     n  payload
///
/// The 16-byte base header makes framing trivial over a byte stream
/// (FrameReader below), and the CRC catches torn or corrupted frames before
/// the payload is interpreted. A frame that fails the magic, type, flags,
/// length-bound or CRC check is a protocol error: the server drops the
/// connection rather than resynchronize, because inside a stream there is no
/// trustworthy resync point.
///
/// Header extensions (protocol v1). Each set bit in `flags` appends a
/// fixed-size little-endian extension between the base header and the
/// payload, in bit order:
///
///   kFlagDeadline (0x1)  4 bytes  deadline_ms: the sender's remaining
///                                 patience. The server drops the request
///                                 without dispatching it once that budget
///                                 is spent and answers kDeadlineExceeded.
///   kFlagWriteSeq (0x2)  8 bytes  write_seq: a per-session, client-chosen
///                                 mutation sequence number. Resending a
///                                 mutation with the write_seq the session
///                                 just applied returns the cached response
///                                 instead of applying twice (the
///                                 retry-safety handshake; server/retry.h).
///
/// A v0 frame is exactly a v1 frame with flags = 0, so old frames still
/// parse; unknown flag bits are a protocol error (there is no way to skip
/// an extension of unknown size). Like the base header, extensions are not
/// covered by the payload CRC.
///
/// Payloads are text: `|`-separated fields, each escaped with
/// isis::Escape so embedded `|`, newlines and backslashes survive (the same
/// convention as the store/ text formats). Request payloads:
///
///   kHello       <client name>                -> kOk "sid|<db name>"
///   kEvent       <EncodeEvent line>           -> kScreen (rendered UI)
///   kAssign      class|entity|attr|v1,...,vk  -> kOk  (direct write; multi
///                                                values comma-split)
///   kQuery       class|predicate text         -> kQueryResult
///                                                "count|name1|name2|..."
///   kExplain     class|predicate text         -> kExplainResult (plan dump)
///   kRender      (empty)                      -> kScreen
///   kSubscribe   class name or "*"            -> kOk
///   kUnsubscribe class name or "*"            -> kOk
///   kPoll        (empty)                      -> kOk "n|notif1|notif2|..."
///   kStats       (empty)                      -> kStatsResult (JSON line)
///   kBye         (empty)                      -> kOk (then close)
///   kPing        (anything; echoed)           -> kPong (same payload)
///
/// kHello's payload may carry a second field, a previous session id: the
/// server reattaches that session if it still exists (same sid comes back,
/// per-session UI state, subscriptions and the write-dedup window survive
/// the reconnect) and creates a fresh one otherwise.
///
/// Error responses use kError with payload "code|message" (code is the
/// StatusCode name, e.g. "Consistency"). An overloaded server answers with
/// kRetry, payload "queue_full|<capacity>"; a request whose deadline_ms
/// budget expired before dispatch gets kDeadlineExceeded, payload
/// "deadline_exceeded|<ms>" -- both mean "nothing happened, back off and
/// resend". Notifications are pulled via kPoll on every transport -- each
/// entry is an escaped "class|entity|kind" triple (kind is "member+",
/// "member-" or "attr:<name>"); kNotify is reserved for transports that
/// push.

#ifndef ISIS_SERVER_PROTO_H_
#define ISIS_SERVER_PROTO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace isis::server {

/// Wire message types. Requests are < 64, responses >= 64 -- keep the
/// numeric values stable, they are the protocol.
enum class MsgType : std::uint8_t {
  // Requests.
  kHello = 1,
  kEvent = 2,
  kAssign = 3,
  kQuery = 4,
  kExplain = 5,
  kRender = 6,
  kSubscribe = 7,
  kUnsubscribe = 8,
  kStats = 9,
  kPoll = 10,
  kBye = 11,
  kPing = 12,
  // Responses.
  kOk = 64,
  kError = 65,
  kScreen = 66,
  kQueryResult = 67,
  kExplainResult = 68,
  kStatsResult = 69,
  kRetry = 70,
  kNotify = 71,
  kDeadlineExceeded = 72,
  kPong = 73,
};

/// Human-readable name for logs/tests, e.g. "kQuery".
const char* MsgTypeName(MsgType t);

/// True if `t` is one of the defined MsgType values.
bool IsValidMsgType(std::uint8_t t);

constexpr std::size_t kHeaderSize = 16;
constexpr std::uint32_t kMaxPayload = 16u * 1024u * 1024u;

// Header extension flags (byte 3). Every defined bit adds a fixed-size
// little-endian field between the base header and the payload.
constexpr std::uint8_t kFlagDeadline = 0x1;  ///< +4 bytes: deadline_ms.
constexpr std::uint8_t kFlagWriteSeq = 0x2;  ///< +8 bytes: write_seq.
constexpr std::uint8_t kKnownFlags = kFlagDeadline | kFlagWriteSeq;

/// One decoded message.
struct Frame {
  MsgType type = MsgType::kHello;
  std::uint32_t seq = 0;
  std::string payload;
  /// Remaining request budget in milliseconds; 0 = none (wire: omitted).
  std::uint32_t deadline_ms = 0;
  /// Client-chosen mutation sequence number for retry-safe resends; 0 =
  /// none (wire: omitted). Only meaningful on kEvent/kAssign requests.
  std::uint64_t write_seq = 0;
};

/// Serializes `frame` into wire bytes (header + payload).
std::string EncodeFrame(const Frame& frame);

enum class DecodeResult {
  kOk,        ///< A full valid frame was decoded into *out.
  kNeedMore,  ///< `buf` is a valid prefix; read more bytes and retry.
  kError,     ///< Malformed (bad magic/type/length/CRC); drop the connection.
};

/// Attempts to decode one frame from the front of `buf`. On kOk fills *out
/// and sets *consumed to the bytes used; on kNeedMore/kError *consumed is 0.
/// On kError *error (if non-null) says what failed.
DecodeResult DecodeFrame(const std::string& buf, Frame* out,
                         std::size_t* consumed, std::string* error = nullptr);

/// \brief Incremental decoder for a byte stream.
///
/// Feed() appends received bytes; Next() pops decoded frames until it
/// returns kNeedMore (keep reading) or kError (drop the connection).
class FrameReader {
 public:
  void Feed(const char* data, std::size_t n) { buf_.append(data, n); }
  void Feed(const std::string& data) { buf_ += data; }

  /// Decodes the next buffered frame, consuming its bytes.
  DecodeResult Next(Frame* out, std::string* error = nullptr);

  /// Bytes buffered but not yet decoded.
  std::size_t pending() const { return buf_.size(); }

 private:
  std::string buf_;
};

// --- Payload helpers (the `|`-separated escaped-field convention). ---

/// Joins fields into a payload, escaping each.
std::string JoinFields(const std::vector<std::string>& fields);

/// Splits a payload into unescaped fields. A malformed escape decodes to
/// '?' (Unescape's behavior) rather than failing.
std::vector<std::string> SplitFields(const std::string& payload);

}  // namespace isis::server

#endif  // ISIS_SERVER_PROTO_H_
