#include "server/stats.h"

#include <cstdio>

namespace isis::server {

double ServerStats::Percentile(const std::array<Counter, kBuckets>& buckets,
                               const Counter& max, double q) {
  std::int64_t total = 0;
  for (const Counter& c : buckets) total += Get(c);
  if (total == 0) return 0.0;
  // Rank of the q-th sample, 1-based.
  std::int64_t rank = static_cast<std::int64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    std::int64_t c = Get(buckets[static_cast<std::size_t>(b)]);
    if (c == 0) continue;
    if (seen + c >= rank) {
      // Interpolate inside bucket b, which spans [lo, 2*lo) microseconds.
      double lo = b == 0 ? 0.0 : static_cast<double>(std::int64_t{1} << b);
      double hi = static_cast<double>(std::int64_t{1} << (b + 1));
      double frac =
          static_cast<double>(rank - seen) / static_cast<double>(c);
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return static_cast<double>(Get(max));
}

std::string ServerStats::ToJsonLine() const {
  StatsSnapshot s = Snapshot();
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\"name\": \"server_stats\", \"requests\": %lld, \"errors\": %lld, "
      "\"sheds\": %lld, \"reads\": %lld, \"writes\": %lld, "
      "\"promotions\": %lld, \"notifications\": %lld, "
      "\"deadline_drops\": %lld, \"dedup_hits\": %lld, "
      "\"heartbeats\": %lld, \"resumes\": %lld, \"idle_reaps\": %lld, "
      "\"eof_clean\": %lld, \"eof_truncated\": %lld, "
      "\"queue_depth\": %lld, \"queue_peak\": %lld, "
      "\"read_lock_wait_us\": %lld, \"write_lock_wait_us\": %lld, "
      "\"cache_hits\": %lld, \"cache_misses\": %lld, "
      "\"cache_evictions\": %lld, \"cache_invalidations\": %lld, "
      "\"cache_flushes\": %lld, "
      "\"wal_batches\": %lld, \"wal_records\": %lld, \"wal_syncs\": %lld, "
      "\"wal_sync_us\": %lld, \"wal_group_max\": %lld, "
      "\"fsync_p50_us\": %.1f, \"fsync_p95_us\": %.1f, "
      "\"fsync_max_us\": %lld, "
      "\"p50_us\": %.1f, \"p95_us\": %.1f, \"max_us\": %lld",
      static_cast<long long>(s.requests), static_cast<long long>(s.errors),
      static_cast<long long>(s.sheds), static_cast<long long>(s.reads),
      static_cast<long long>(s.writes), static_cast<long long>(s.promotions),
      static_cast<long long>(s.notifications),
      static_cast<long long>(s.deadline_drops),
      static_cast<long long>(s.dedup_hits),
      static_cast<long long>(s.heartbeats),
      static_cast<long long>(s.resumes),
      static_cast<long long>(s.idle_reaps),
      static_cast<long long>(s.eof_clean),
      static_cast<long long>(s.eof_truncated),
      static_cast<long long>(s.queue_depth),
      static_cast<long long>(s.queue_peak),
      static_cast<long long>(s.read_lock_wait_us),
      static_cast<long long>(s.write_lock_wait_us),
      static_cast<long long>(s.cache_hits),
      static_cast<long long>(s.cache_misses),
      static_cast<long long>(s.cache_evictions),
      static_cast<long long>(s.cache_invalidations),
      static_cast<long long>(s.cache_flushes),
      static_cast<long long>(s.wal_batches),
      static_cast<long long>(s.wal_records),
      static_cast<long long>(s.wal_syncs),
      static_cast<long long>(s.wal_sync_us),
      static_cast<long long>(s.wal_group_max), s.fsync_p50_us,
      s.fsync_p95_us, static_cast<long long>(s.fsync_max_us), s.p50_us,
      s.p95_us, static_cast<long long>(s.max_us));
  std::string out = buf;
  out += ", \"by_type\": [";
  bool first = true;
  for (std::size_t t = 0; t < s.by_type.size(); ++t) {
    if (s.by_type[t] == 0) continue;
    if (!first) out += ", ";
    first = false;
    std::snprintf(buf, sizeof(buf), "[%d, %lld]", static_cast<int>(t),
                  static_cast<long long>(s.by_type[t]));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace isis::server
