/// \file net.h
/// \brief Poll-based TCP transport for the wire protocol. POSIX sockets
/// only -- no third-party dependencies.
///
/// One I/O thread multiplexes every connection with poll(2): the listener
/// and all client sockets are non-blocking, incoming bytes stream through a
/// per-connection FrameReader, decoded requests go to Server::HandleFrame,
/// and responses -- produced on worker threads -- are queued on the
/// connection's output buffer and flushed when poll reports the socket
/// writable (a self-pipe wakes the poll loop when a worker queues output).
/// A malformed frame closes the connection: mid-stream there is no
/// trustworthy resynchronization point.
///
/// TcpClient is the matching blocking client used by isis_client and the
/// tests; it is not thread-safe (one per thread). It implements the
/// ClientTransport SPI (retry.h), so RetryingClient adds deadlines,
/// backoff and reconnect-with-resume on top of it.

#ifndef ISIS_SERVER_NET_H_
#define ISIS_SERVER_NET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "server/proto.h"
#include "server/retry.h"
#include "server/session.h"

namespace isis::server {

struct TcpServerOptions {
  /// >0: reap connections that have sent no bytes for this long. Clients
  /// that want to stay attached through idle periods send kPing. 0 = never
  /// reap (the pre-heartbeat behavior).
  int idle_timeout_ms = 0;
};

/// \brief TCP front end for one Server.
class TcpServer {
 public:
  explicit TcpServer(Server* server, TcpServerOptions options = {})
      : server_(server), options_(options) {}
  ~TcpServer();  ///< Calls Stop().

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks a free port; see port()) and starts
  /// the I/O thread.
  Status Start(int port);

  /// Closes the listener and every connection, then joins the I/O thread.
  void Stop();

  /// The bound port; valid after Start().
  int port() const { return port_; }

 private:
  /// One client socket. `fd` and `reader` are touched only by the I/O
  /// thread; everything a worker thread can reach through QueueResponse --
  /// the output buffer, the hello handshake state and the broken flag -- is
  /// guarded by out_mu.
  struct Conn {
    int fd = -1;                ///< I/O thread only (workers never write it).
    FrameReader reader;         ///< I/O thread only.
    /// Last moment bytes arrived (I/O thread only; drives idle reaping).
    std::chrono::steady_clock::time_point last_activity =
        std::chrono::steady_clock::now();
    Mutex out_mu;
    std::int64_t session_id ISIS_GUARDED_BY(out_mu) = -1;
    /// Encoded responses awaiting write.
    std::string out ISIS_GUARDED_BY(out_mu);
    /// Decode error or peer gone; reap.
    bool broken ISIS_GUARDED_BY(out_mu) = false;
    std::uint32_t hello_seq ISIS_GUARDED_BY(out_mu) = 0;
    bool hello_pending ISIS_GUARDED_BY(out_mu) = false;

    void MarkBroken() ISIS_EXCLUDES(out_mu) {
      MutexLock lock(out_mu);
      broken = true;
    }
    bool IsBroken() ISIS_EXCLUDES(out_mu) {
      MutexLock lock(out_mu);
      return broken;
    }
  };

  void Run();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void QueueResponse(const std::shared_ptr<Conn>& conn, const Frame& resp);
  void FlushWrites(const std::shared_ptr<Conn>& conn);
  void Wake();

  Server* const server_;
  const TcpServerOptions options_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread io_thread_;
  std::vector<std::shared_ptr<Conn>> conns_;  ///< I/O thread only.
};

/// \brief Blocking protocol client over one TCP connection.
///
/// Two ways to drive it: the legacy Connect()/Call() pair (one dial, no
/// deadlines), or the ClientTransport SPI -- construct with an endpoint,
/// then let RetryingClient own the dialing. Under the SPI every CallFrame
/// wait is bounded by the request's deadline_ms (plus slack) via poll(2),
/// and Reconnect() tears down whatever half-open state a failure left.
class TcpClient : public ClientTransport {
 public:
  TcpClient() = default;  ///< Legacy: endpoint comes from Connect().
  /// Endpoint-storing form for the transport SPI; does not dial --
  /// Reconnect() does.
  TcpClient(std::string host, int port, std::string client_name)
      : host_(std::move(host)),
        port_(port),
        client_name_(std::move(client_name)) {}
  ~TcpClient() override;

  /// Connects and performs the hello handshake (legacy entry point).
  Status Connect(const std::string& host, int port,
                 const std::string& client_name);

  /// Sends one request and blocks for the matching response. Notifications
  /// or other unsolicited frames arriving first are queued aside and
  /// returned by TakeNotifications().
  Result<Frame> Call(MsgType type, const std::string& payload);

  std::vector<Frame> TakeNotifications();

  // ClientTransport.
  Status Reconnect(std::int64_t resume_sid) override;
  Result<Frame> CallFrame(const Frame& req) override;
  std::int64_t session_id() const override { return session_id_; }

 private:
  Status Dial();  ///< socket+connect to host_:port_; fd_ valid on success.
  Status WriteAll(const std::string& bytes);
  /// `deadline_ms` > 0 bounds the wait (plus transport slack); 0 blocks.
  Result<Frame> ReadFrame(int deadline_ms = 0);
  void CloseFd();

  std::string host_;
  int port_ = 0;
  std::string client_name_;
  int fd_ = -1;
  std::int64_t session_id_ = -1;
  std::uint32_t next_seq_ = 1;
  FrameReader reader_;
  std::vector<Frame> notifications_;
};

}  // namespace isis::server

#endif  // ISIS_SERVER_NET_H_
