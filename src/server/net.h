/// \file net.h
/// \brief Poll-based TCP transport for the wire protocol. POSIX sockets
/// only -- no third-party dependencies.
///
/// One I/O thread multiplexes every connection with poll(2): the listener
/// and all client sockets are non-blocking, incoming bytes stream through a
/// per-connection FrameReader, decoded requests go to Server::HandleFrame,
/// and responses -- produced on worker threads -- are queued on the
/// connection's output buffer and flushed when poll reports the socket
/// writable (a self-pipe wakes the poll loop when a worker queues output).
/// A malformed frame closes the connection: mid-stream there is no
/// trustworthy resynchronization point.
///
/// TcpClient is the matching blocking client used by isis_client and the
/// tests; it is not thread-safe (one per thread).

#ifndef ISIS_SERVER_NET_H_
#define ISIS_SERVER_NET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "server/proto.h"
#include "server/session.h"

namespace isis::server {

/// \brief TCP front end for one Server.
class TcpServer {
 public:
  explicit TcpServer(Server* server) : server_(server) {}
  ~TcpServer();  ///< Calls Stop().

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks a free port; see port()) and starts
  /// the I/O thread.
  Status Start(int port);

  /// Closes the listener and every connection, then joins the I/O thread.
  void Stop();

  /// The bound port; valid after Start().
  int port() const { return port_; }

 private:
  /// One client socket. `fd` and `reader` are touched only by the I/O
  /// thread; everything a worker thread can reach through QueueResponse --
  /// the output buffer, the hello handshake state and the broken flag -- is
  /// guarded by out_mu.
  struct Conn {
    int fd = -1;                ///< I/O thread only (workers never write it).
    FrameReader reader;         ///< I/O thread only.
    Mutex out_mu;
    std::int64_t session_id ISIS_GUARDED_BY(out_mu) = -1;
    /// Encoded responses awaiting write.
    std::string out ISIS_GUARDED_BY(out_mu);
    /// Decode error or peer gone; reap.
    bool broken ISIS_GUARDED_BY(out_mu) = false;
    std::uint32_t hello_seq ISIS_GUARDED_BY(out_mu) = 0;
    bool hello_pending ISIS_GUARDED_BY(out_mu) = false;

    void MarkBroken() ISIS_EXCLUDES(out_mu) {
      MutexLock lock(out_mu);
      broken = true;
    }
    bool IsBroken() ISIS_EXCLUDES(out_mu) {
      MutexLock lock(out_mu);
      return broken;
    }
  };

  void Run();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void QueueResponse(const std::shared_ptr<Conn>& conn, const Frame& resp);
  void FlushWrites(const std::shared_ptr<Conn>& conn);
  void Wake();

  Server* const server_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread io_thread_;
  std::vector<std::shared_ptr<Conn>> conns_;  ///< I/O thread only.
};

/// \brief Blocking protocol client over one TCP connection.
class TcpClient {
 public:
  ~TcpClient();

  /// Connects and performs the hello handshake.
  Status Connect(const std::string& host, int port,
                 const std::string& client_name);

  /// Sends one request and blocks for the matching response. Notifications
  /// or other unsolicited frames arriving first are queued aside and
  /// returned by TakeNotifications().
  Result<Frame> Call(MsgType type, const std::string& payload);

  std::vector<Frame> TakeNotifications();

  std::int64_t session_id() const { return session_id_; }

 private:
  Status WriteAll(const std::string& bytes);
  Result<Frame> ReadFrame();

  int fd_ = -1;
  std::int64_t session_id_ = -1;
  std::uint32_t next_seq_ = 1;
  FrameReader reader_;
  std::vector<Frame> notifications_;
};

}  // namespace isis::server

#endif  // ISIS_SERVER_NET_H_
