#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace isis::server {

namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

// --- TcpServer. ---

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(int port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st(StatusCode::kIOError,
              std::string("bind: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 64) < 0) {
    Status st(StatusCode::kIOError,
              std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  ISIS_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  int pipefd[2];
  if (pipe(pipefd) < 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipefd[0];
  wake_write_fd_ = pipefd[1];
  ISIS_RETURN_NOT_OK(SetNonBlocking(wake_read_fd_));
  stop_.store(false);
  io_thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true);
  Wake();
  if (io_thread_.joinable()) io_thread_.join();
  for (const std::shared_ptr<Conn>& c : conns_) {
    if (c->fd >= 0) close(c->fd);
  }
  conns_.clear();
  close(listen_fd_);
  listen_fd_ = -1;
  close(wake_read_fd_);
  close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
}

void TcpServer::Wake() {
  if (wake_write_fd_ >= 0) {
    char b = 'w';
    [[maybe_unused]] ssize_t n = write(wake_write_fd_, &b, 1);
  }
}

void TcpServer::QueueResponse(const std::shared_ptr<Conn>& conn,
                              const Frame& resp) {
  {
    MutexLock lock(conn->out_mu);
    // The hello response carries the session id this connection will tag
    // all later requests with.
    if (conn->hello_pending && resp.seq == conn->hello_seq) {
      conn->hello_pending = false;
      if (resp.type == MsgType::kOk) {
        std::vector<std::string> fields = SplitFields(resp.payload);
        if (!fields.empty()) {
          try {
            conn->session_id = std::stoll(fields[0]);
          } catch (...) {
            conn->broken = true;
          }
        }
      }
    }
    conn->out += EncodeFrame(resp);
  }
  Wake();  // Worker thread -> poll loop: there is output to flush.
}

void TcpServer::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[16384];
  for (;;) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->reader.Feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      conn->MarkBroken();  // Peer closed.
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->MarkBroken();
    return;
  }
  for (;;) {
    Frame req;
    std::string error;
    DecodeResult r = conn->reader.Next(&req, &error);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kError) {
      conn->MarkBroken();  // No resync point inside a corrupt stream.
      return;
    }
    std::int64_t sid;
    {
      MutexLock lock(conn->out_mu);
      sid = conn->session_id;
      if (req.type == MsgType::kHello) {
        conn->hello_seq = req.seq;
        conn->hello_pending = true;
      }
    }
    std::shared_ptr<Conn> target = conn;
    server_->HandleFrame(sid, req, [this, target](const Frame& resp) {
      QueueResponse(target, resp);
    });
  }
}

void TcpServer::FlushWrites(const std::shared_ptr<Conn>& conn) {
  MutexLock lock(conn->out_mu);
  while (!conn->out.empty()) {
    ssize_t n = write(conn->fd, conn->out.data(), conn->out.size());
    if (n > 0) {
      conn->out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->broken = true;
    break;
  }
}

void TcpServer::Run() {
  while (!stop_.load()) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (const std::shared_ptr<Conn>& c : conns_) {
      short events = POLLIN;
      {
        MutexLock lock(c->out_mu);
        if (!c->out.empty()) events |= POLLOUT;
      }
      fds.push_back({c->fd, events, 0});
    }
    int rc = poll(fds.data(), fds.size(), 500);
    if (rc < 0 && errno != EINTR) break;
    if (stop_.load()) break;
    if (fds[0].revents & POLLIN) {
      for (;;) {
        int cfd = accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) break;
        if (!SetNonBlocking(cfd).ok()) {
          close(cfd);
          continue;
        }
        int one = 1;
        setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_shared<Conn>();
        conn->fd = cfd;
        conns_.push_back(conn);
      }
    }
    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      pollfd& p = fds[2 + i];
      const std::shared_ptr<Conn>& c = conns_[i];
      if (p.revents & (POLLERR | POLLHUP)) c->MarkBroken();
      if (!c->IsBroken() && (p.revents & POLLIN)) HandleReadable(c);
      if (!c->IsBroken() && (p.revents & POLLOUT)) FlushWrites(c);
    }
    // Reap broken connections (late worker responses hit a closed fd's
    // buffer harmlessly: the Conn outlives the fd via shared_ptr).
    std::vector<std::shared_ptr<Conn>> alive;
    for (const std::shared_ptr<Conn>& c : conns_) {
      if (c->IsBroken()) {
        close(c->fd);
        c->fd = -1;  // I/O-thread-only field; workers only touch `out`.
      } else {
        alive.push_back(c);
      }
    }
    conns_ = std::move(alive);
  }
}

// --- TcpClient. ---

TcpClient::~TcpClient() {
  if (fd_ >= 0) close(fd_);
}

Status TcpClient::Connect(const std::string& host, int port,
                          const std::string& client_name) {
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Status::IOError(std::string("connect: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Result<Frame> resp = Call(MsgType::kHello, JoinFields({client_name}));
  ISIS_RETURN_NOT_OK(resp.status());
  if (resp->type != MsgType::kOk) {
    return Status::Unavailable("hello rejected: " + resp->payload);
  }
  std::vector<std::string> fields = SplitFields(resp->payload);
  if (fields.empty()) return Status::ParseError("malformed hello response");
  try {
    session_id_ = std::stoll(fields[0]);
  } catch (...) {
    return Status::ParseError("bad session id: " + fields[0]);
  }
  return Status::OK();
}

Status TcpClient::WriteAll(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = write(fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("write: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<Frame> TcpClient::ReadFrame() {
  for (;;) {
    Frame f;
    std::string error;
    DecodeResult r = reader_.Next(&f, &error);
    if (r == DecodeResult::kOk) return f;
    if (r == DecodeResult::kError) {
      return Status::ParseError("bad frame from server: " + error);
    }
    char buf[16384];
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      reader_.Feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return Status::IOError("server closed the connection");
    if (errno == EINTR) continue;
    return Status::IOError(std::string("read: ") + std::strerror(errno));
  }
}

Result<Frame> TcpClient::Call(MsgType type, const std::string& payload) {
  Frame req;
  req.type = type;
  req.seq = next_seq_++;
  req.payload = payload;
  ISIS_RETURN_NOT_OK(WriteAll(EncodeFrame(req)));
  for (;;) {
    Result<Frame> resp = ReadFrame();
    ISIS_RETURN_NOT_OK(resp.status());
    if (resp->type == MsgType::kNotify || resp->seq != req.seq) {
      notifications_.push_back(*resp);
      continue;
    }
    return resp;
  }
}

std::vector<Frame> TcpClient::TakeNotifications() {
  std::vector<Frame> out;
  out.swap(notifications_);
  return out;
}

}  // namespace isis::server
