#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace isis::server {

namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

// --- TcpServer. ---

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(int port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st(StatusCode::kIOError,
              std::string("bind: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 64) < 0) {
    Status st(StatusCode::kIOError,
              std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  ISIS_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  int pipefd[2];
  if (pipe(pipefd) < 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipefd[0];
  wake_write_fd_ = pipefd[1];
  ISIS_RETURN_NOT_OK(SetNonBlocking(wake_read_fd_));
  stop_.store(false);
  io_thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true);
  Wake();
  if (io_thread_.joinable()) io_thread_.join();
  for (const std::shared_ptr<Conn>& c : conns_) {
    if (c->fd >= 0) close(c->fd);
  }
  conns_.clear();
  close(listen_fd_);
  listen_fd_ = -1;
  close(wake_read_fd_);
  close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
}

void TcpServer::Wake() {
  if (wake_write_fd_ >= 0) {
    char b = 'w';
    [[maybe_unused]] ssize_t n = write(wake_write_fd_, &b, 1);
  }
}

void TcpServer::QueueResponse(const std::shared_ptr<Conn>& conn,
                              const Frame& resp) {
  {
    MutexLock lock(conn->out_mu);
    // The hello response carries the session id this connection will tag
    // all later requests with.
    if (conn->hello_pending && resp.seq == conn->hello_seq) {
      conn->hello_pending = false;
      if (resp.type == MsgType::kOk) {
        std::vector<std::string> fields = SplitFields(resp.payload);
        if (!fields.empty()) {
          try {
            conn->session_id = std::stoll(fields[0]);
          } catch (...) {
            conn->broken = true;
          }
        }
      }
    }
    conn->out += EncodeFrame(resp);
  }
  Wake();  // Worker thread -> poll loop: there is output to flush.
}

void TcpServer::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[16384];
  for (;;) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->last_activity = std::chrono::steady_clock::now();
      conn->reader.Feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      // Peer closed. Leftover undecoded bytes mean it died mid-frame (a
      // torn write); a clean goodbye closes on a frame boundary.
      server_->mutable_stats()->RecordPeerClose(conn->reader.pending() > 0);
      conn->MarkBroken();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->MarkBroken();
    return;
  }
  for (;;) {
    Frame req;
    std::string error;
    DecodeResult r = conn->reader.Next(&req, &error);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kError) {
      conn->MarkBroken();  // No resync point inside a corrupt stream.
      return;
    }
    std::int64_t sid;
    {
      MutexLock lock(conn->out_mu);
      sid = conn->session_id;
      if (req.type == MsgType::kHello) {
        conn->hello_seq = req.seq;
        conn->hello_pending = true;
      }
    }
    std::shared_ptr<Conn> target = conn;
    server_->HandleFrame(sid, req, [this, target](const Frame& resp) {
      QueueResponse(target, resp);
    });
  }
}

void TcpServer::FlushWrites(const std::shared_ptr<Conn>& conn) {
  MutexLock lock(conn->out_mu);
  while (!conn->out.empty()) {
    ssize_t n = write(conn->fd, conn->out.data(), conn->out.size());
    if (n > 0) {
      conn->out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->broken = true;
    break;
  }
}

void TcpServer::Run() {
  while (!stop_.load()) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (const std::shared_ptr<Conn>& c : conns_) {
      short events = POLLIN;
      {
        MutexLock lock(c->out_mu);
        if (!c->out.empty()) events |= POLLOUT;
      }
      fds.push_back({c->fd, events, 0});
    }
    // With idle reaping armed, wake often enough that a connection is
    // reaped within ~a quarter of its timeout past the deadline.
    int poll_ms = 500;
    if (options_.idle_timeout_ms > 0) {
      poll_ms = std::min(500, std::max(10, options_.idle_timeout_ms / 4));
    }
    int rc = poll(fds.data(), fds.size(), poll_ms);
    if (rc < 0 && errno != EINTR) break;
    if (stop_.load()) break;
    if (fds[0].revents & POLLIN) {
      for (;;) {
        int cfd = accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) break;
        if (!SetNonBlocking(cfd).ok()) {
          close(cfd);
          continue;
        }
        int one = 1;
        setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_shared<Conn>();
        conn->fd = cfd;
        conns_.push_back(conn);
      }
    }
    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      pollfd& p = fds[2 + i];
      const std::shared_ptr<Conn>& c = conns_[i];
      if (p.revents & (POLLERR | POLLHUP)) c->MarkBroken();
      if (!c->IsBroken() && (p.revents & POLLIN)) HandleReadable(c);
      if (!c->IsBroken() && (p.revents & POLLOUT)) FlushWrites(c);
    }
    if (options_.idle_timeout_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
      for (const std::shared_ptr<Conn>& c : conns_) {
        if (!c->IsBroken() && now - c->last_activity >= limit) {
          server_->mutable_stats()->RecordIdleReap();
          c->MarkBroken();
        }
      }
    }
    // Reap broken connections (late worker responses hit a closed fd's
    // buffer harmlessly: the Conn outlives the fd via shared_ptr).
    std::vector<std::shared_ptr<Conn>> alive;
    for (const std::shared_ptr<Conn>& c : conns_) {
      if (c->IsBroken()) {
        close(c->fd);
        c->fd = -1;  // I/O-thread-only field; workers only touch `out`.
      } else {
        alive.push_back(c);
      }
    }
    conns_ = std::move(alive);
  }
}

// --- TcpClient. ---

TcpClient::~TcpClient() { CloseFd(); }

void TcpClient::CloseFd() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status TcpClient::Dial() {
  CloseFd();
  reader_ = FrameReader();  // A new stream owes us nothing from the old one.
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    CloseFd();
    return Status::InvalidArgument("bad host address: " + host_);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st(StatusCode::kIOError,
              std::string("connect: ") + std::strerror(errno));
    CloseFd();
    return st;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status TcpClient::Connect(const std::string& host, int port,
                          const std::string& client_name) {
  host_ = host;
  port_ = port;
  client_name_ = client_name;
  return Reconnect(-1);
}

Status TcpClient::Reconnect(std::int64_t resume_sid) {
  ISIS_RETURN_NOT_OK(Dial());
  Frame hello;
  hello.type = MsgType::kHello;
  hello.seq = next_seq_++;
  hello.deadline_ms = 5000;  // A dial must not hang either.
  hello.payload =
      resume_sid >= 0
          ? JoinFields({client_name_, std::to_string(resume_sid)})
          : JoinFields({client_name_});
  session_id_ = -1;
  Result<Frame> resp = CallFrame(hello);
  ISIS_RETURN_NOT_OK(resp.status());
  if (resp->type != MsgType::kOk) {
    return Status::Unavailable("hello rejected: " + resp->payload);
  }
  std::vector<std::string> fields = SplitFields(resp->payload);
  if (fields.empty()) return Status::ParseError("malformed hello response");
  try {
    session_id_ = std::stoll(fields[0]);
  } catch (...) {
    return Status::ParseError("bad session id: " + fields[0]);
  }
  return Status::OK();
}

Result<Frame> TcpClient::CallFrame(const Frame& req) {
  if (fd_ < 0) return Status::IOError("not connected");
  Status st = WriteAll(EncodeFrame(req));
  if (!st.ok()) {
    CloseFd();  // SPI contract: an error leaves us down until Reconnect.
    return st;
  }
  // Bound the whole response wait by the request's own budget plus slack
  // for the wire; after a local timeout the stream is unusable (the late
  // response would desync it), so the connection dies with the wait.
  const int budget_ms =
      req.deadline_ms > 0 ? static_cast<int>(req.deadline_ms) + 250 : 0;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    int remaining_ms = 0;
    if (budget_ms > 0) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
      remaining_ms = budget_ms - static_cast<int>(elapsed);
      if (remaining_ms <= 0) {
        CloseFd();
        return Status::IOError("response timed out");
      }
    }
    Result<Frame> resp = ReadFrame(remaining_ms);
    if (!resp.ok()) {
      CloseFd();
      return resp.status();
    }
    if (resp->type == MsgType::kNotify || resp->seq != req.seq) {
      notifications_.push_back(*resp);
      continue;
    }
    return resp;
  }
}

Status TcpClient::WriteAll(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = write(fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("write: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<Frame> TcpClient::ReadFrame(int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  for (;;) {
    Frame f;
    std::string error;
    DecodeResult r = reader_.Next(&f, &error);
    if (r == DecodeResult::kOk) return f;
    if (r == DecodeResult::kError) {
      return Status::ParseError("bad frame from server: " + error);
    }
    if (deadline_ms > 0) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline - std::chrono::steady_clock::now())
                           .count();
      if (remaining <= 0) return Status::IOError("read timed out");
      pollfd p{fd_, POLLIN, 0};
      int rc = poll(&p, 1, static_cast<int>(remaining));
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("poll: ") + std::strerror(errno));
      }
      if (rc == 0) return Status::IOError("read timed out");
    }
    char buf[16384];
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      reader_.Feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return Status::IOError("server closed the connection");
    if (errno == EINTR) continue;
    return Status::IOError(std::string("read: ") + std::strerror(errno));
  }
}

Result<Frame> TcpClient::Call(MsgType type, const std::string& payload) {
  Frame req;
  req.type = type;
  req.seq = next_seq_++;
  req.payload = payload;
  ISIS_RETURN_NOT_OK(WriteAll(EncodeFrame(req)));
  for (;;) {
    Result<Frame> resp = ReadFrame();
    ISIS_RETURN_NOT_OK(resp.status());
    if (resp->type == MsgType::kNotify || resp->seq != req.seq) {
      notifications_.push_back(*resp);
      continue;
    }
    return resp;
  }
}

std::vector<Frame> TcpClient::TakeNotifications() {
  std::vector<Frame> out;
  out.swap(notifications_);
  return out;
}

}  // namespace isis::server
