#include "server/faults.h"

#include <chrono>
#include <thread>

namespace isis::server {

Status FaultInjectingTransport::Reconnect(std::int64_t resume_sid) {
  connected_ = false;
  if (schedule_.connect_fail_prob > 0 &&
      rng_.Chance(schedule_.connect_fail_prob)) {
    ++counts_.connect_failures;
    return Status::IOError("injected: connect failed");
  }
  ISIS_RETURN_NOT_OK(base_->Reconnect(resume_sid));
  connected_ = true;
  return Status::OK();
}

Result<Frame> FaultInjectingTransport::CallFrame(const Frame& req) {
  if (!connected_) {
    return Status::IOError("injected: connection is down");
  }
  ++calls_;
  if (schedule_.retry_hint_first_calls >= calls_) {
    // Synthetic shed: the request never left the client.
    ++counts_.retry_hints;
    Frame shed;
    shed.type = MsgType::kRetry;
    shed.seq = req.seq;
    shed.payload = "queue_full|injected";
    return shed;
  }
  if (schedule_.fail_first_calls >= calls_) {
    Result<Frame> resp = base_->CallFrame(req);
    ISIS_RETURN_NOT_OK(resp.status());
    ++counts_.dropped_responses;
    connected_ = false;
    return Status::IOError("injected: response lost (deterministic)");
  }
  if (schedule_.delay_prob > 0 && rng_.Chance(schedule_.delay_prob)) {
    ++counts_.delays;
    std::this_thread::sleep_for(std::chrono::microseconds(
        rng_.Below(static_cast<std::uint64_t>(schedule_.max_delay_us) + 1)));
  }
  if (schedule_.disconnect_prob > 0 && rng_.Chance(schedule_.disconnect_prob)) {
    ++counts_.disconnects;
    connected_ = false;
    return Status::IOError("injected: connection dropped");
  }
  if (schedule_.drop_request_prob > 0 &&
      rng_.Chance(schedule_.drop_request_prob)) {
    // The packet is gone but the line is fine: the caller times out and
    // resends on the same connection.
    ++counts_.dropped_requests;
    return Status::IOError("injected: request dropped, deadline expired");
  }
  if (schedule_.corrupt_prob > 0 && rng_.Chance(schedule_.corrupt_prob)) {
    // Flip one payload bit in the real encoding and prove the receiver
    // would have caught it -- then model its reaction (drop the stream).
    ++counts_.corrupted;
    std::string wire = EncodeFrame(req);
    if (wire.size() > kHeaderSize) {
      wire[kHeaderSize + rng_.Below(wire.size() - kHeaderSize)] ^=
          static_cast<char>(1u << rng_.Below(8));
      Frame decoded;
      std::size_t used = 0;
      if (DecodeFrame(wire, &decoded, &used) == DecodeResult::kOk) {
        return Status::Internal("corrupted frame passed the CRC check");
      }
    }
    connected_ = false;
    return Status::IOError("injected: frame corrupted, connection dropped");
  }
  if (schedule_.partial_write_prob > 0 &&
      rng_.Chance(schedule_.partial_write_prob)) {
    // Torn send: the receiver holds a prefix forever, the sender gives up.
    ++counts_.partial_writes;
    connected_ = false;
    return Status::IOError("injected: partial write, connection dropped");
  }
  bool drop_response = schedule_.drop_response_prob > 0 &&
                       rng_.Chance(schedule_.drop_response_prob);
  Result<Frame> resp = base_->CallFrame(req);
  if (!resp.ok()) {
    connected_ = false;
    return resp;
  }
  if (drop_response) {
    // The request was executed; the answer died on the way back along
    // with the connection. The caller must resend blind -- the case the
    // write_seq dedup exists for.
    ++counts_.dropped_responses;
    connected_ = false;
    return Status::IOError("injected: response lost, connection dropped");
  }
  return resp;
}

}  // namespace isis::server
