#include "store/file.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define ISIS_HAVE_FSYNC 1
#endif

namespace isis::store {

namespace {

class StdioWritableFile : public WritableFile {
 public:
  StdioWritableFile(std::FILE* f, std::string path)
      : f_(f), path_(std::move(path)) {}

  ~StdioWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Write(std::string_view data) override {
    if (f_ == nullptr) return Status::IOError("'" + path_ + "' is closed");
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return Status::IOError("short write to '" + path_ + "'");
    }
    return Status::OK();
  }

  Status Sync() override {
    if (f_ == nullptr) return Status::IOError("'" + path_ + "' is closed");
    if (std::fflush(f_) != 0) {
      return Status::IOError("flush of '" + path_ + "' failed");
    }
#ifdef ISIS_HAVE_FSYNC
    if (fsync(fileno(f_)) != 0) {
      return Status::IOError("fsync of '" + path_ + "' failed");
    }
#endif
    return Status::OK();
  }

  Status Close() override {
    if (f_ == nullptr) return Status::OK();
    std::FILE* f = f_;
    f_ = nullptr;
    if (std::fclose(f) != 0) {
      return Status::IOError("close of '" + path_ + "' failed");
    }
    return Status::OK();
  }

 private:
  std::FILE* f_;
  std::string path_;
};

class DefaultFileEnv : public FileEnv {
 public:
  Result<std::unique_ptr<WritableFile>> OpenForWrite(const std::string& path,
                                                     bool append) override {
    std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
    if (f == nullptr) {
      return Status::IOError("cannot open '" + path + "' for writing");
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<StdioWritableFile>(f, path));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("rename '" + from + "' -> '" + to + "' failed");
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    std::remove(path.c_str());  // Absence is the goal either way.
    return Status::OK();
  }

  Result<std::string> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) return Status::IOError("I/O error reading '" + path + "'");
    return buf.str();
  }

  bool Exists(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    return static_cast<bool>(in);
  }
};

}  // namespace

FileEnv* FileEnv::Default() {
  static DefaultFileEnv env;
  return &env;
}

Status AtomicWriteFile(FileEnv* env, const std::string& path,
                       std::string_view contents) {
  const std::string tmp = path + ".tmp";
  Status st = [&]() -> Status {
    Result<std::unique_ptr<WritableFile>> file =
        env->OpenForWrite(tmp, /*append=*/false);
    ISIS_RETURN_NOT_OK(file.status());
    ISIS_RETURN_NOT_OK((*file)->Write(contents));
    ISIS_RETURN_NOT_OK((*file)->Sync());
    ISIS_RETURN_NOT_OK((*file)->Close());
    return env->Rename(tmp, path);
  }();
  if (!st.ok()) (void)env->Remove(tmp);
  return st;
}

// --- Fault injection. ---

/// Buffers writes like an OS page cache: bytes become durable in the base
/// file on Sync/Close only, so a crash loses everything unsynced (and a
/// torn write persists just a prefix of the buffer). Named (not in the
/// anonymous namespace) to match the friend declaration in file.h.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Write(std::string_view data) override;
  Status Sync() override;
  Status Close() override;

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string pending_;
};

FaultInjectingEnv::FaultInjectingEnv(FaultPlan plan, FileEnv* base)
    : plan_(plan), base_(base != nullptr ? base : FileEnv::Default()) {}

Status FaultInjectingEnv::Injected(const std::string& what) {
  crashed_ = true;
  return Status::IOError(plan_.enospc
                             ? "injected fault: no space left on device (" +
                                   what + ")"
                             : "injected fault: " + what);
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::OpenForWrite(
    const std::string& path, bool append) {
  if (crashed_) return Status::IOError("crashed env: open '" + path + "'");
  int op = opens_++;
  if (op == plan_.fail_open) return Injected("open '" + path + "'");
  Result<std::unique_ptr<WritableFile>> base =
      base_->OpenForWrite(path, append);
  ISIS_RETURN_NOT_OK(base.status());
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, std::move(*base)));
}

Status FaultInjectingEnv::Rename(const std::string& from,
                                 const std::string& to) {
  if (crashed_) return Status::IOError("crashed env: rename '" + from + "'");
  int op = renames_++;
  if (op == plan_.fail_rename) return Injected("rename '" + from + "'");
  return base_->Rename(from, to);
}

Status FaultInjectingEnv::Remove(const std::string& path) {
  if (crashed_) return Status::IOError("crashed env: remove '" + path + "'");
  return base_->Remove(path);
}

Result<std::string> FaultInjectingEnv::ReadFile(const std::string& path) {
  if (crashed_) return Status::IOError("crashed env: read '" + path + "'");
  return base_->ReadFile(path);
}

bool FaultInjectingEnv::Exists(const std::string& path) {
  return base_->Exists(path);
}

Status FaultWritableFile::Write(std::string_view data) {
  if (env_->crashed()) return Status::IOError("crashed env: write");
  int op = env_->writes_++;
  pending_.append(data);
  if (op == env_->plan_.fail_write) {
    // Torn write: a prefix of the unsynced bytes may still hit the disk.
    size_t keep = static_cast<size_t>(
        std::max(0L, std::min(env_->plan_.persist_prefix,
                              static_cast<long>(pending_.size()))));
    if (keep > 0 && base_->Write(std::string_view(pending_).substr(0, keep))
                        .ok()) {
      (void)base_->Sync();
    }
    pending_.clear();
    return env_->Injected("write");
  }
  return Status::OK();
}

Status FaultWritableFile::Sync() {
  if (env_->crashed()) return Status::IOError("crashed env: sync");
  int op = env_->syncs_++;
  if (op == env_->plan_.fail_sync) {
    size_t keep = static_cast<size_t>(
        std::max(0L, std::min(env_->plan_.persist_prefix,
                              static_cast<long>(pending_.size()))));
    if (keep > 0 && base_->Write(std::string_view(pending_).substr(0, keep))
                        .ok()) {
      (void)base_->Sync();
    }
    pending_.clear();
    return env_->Injected("fsync");
  }
  Status st = base_->Write(pending_);
  pending_.clear();
  ISIS_RETURN_NOT_OK(st);
  return base_->Sync();
}

Status FaultWritableFile::Close() {
  if (env_->crashed()) {
    // The handle dies with the process: unsynced bytes are gone.
    pending_.clear();
    return Status::IOError("crashed env: close");
  }
  Status st = base_->Write(pending_);
  pending_.clear();
  ISIS_RETURN_NOT_OK(st);
  return base_->Close();
}

std::string ResolveDataPath(const std::string& path,
                            const std::string& data_dir) {
  if (!path.empty() && path.front() == '/') return path;
  if (!data_dir.empty()) return data_dir + "/" + path;
  const char* env_dir = std::getenv("ISIS_DATA_DIR");
  if (env_dir != nullptr && env_dir[0] != '\0') {
    return std::string(env_dir) + "/" + path;
  }
  return path;
}

}  // namespace isis::store
