/// \file file.h
/// \brief Store I/O abstraction with an injectable failure policy.
///
/// Every byte the durable store writes — checkpoints and WAL frames — goes
/// through a FileEnv, so tests can crash the save/append path at every
/// write, fsync and rename point and assert the recovery invariant: after
/// any injected failure, load recovers either the old state or the new
/// state, never a corrupt or inconsistent one.
///
/// The fault-injecting env models a process/OS crash pessimistically:
/// written bytes are buffered and reach the underlying file only on Sync
/// or Close (the "page cache"); once a fault fires the env is dead and
/// every later operation fails, like a killed process. A write fault can
/// persist a prefix of the buffered bytes first (a torn write / ENOSPC).

#ifndef ISIS_STORE_FILE_H_
#define ISIS_STORE_FILE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"

namespace isis::store {

/// \brief A writable file handle: buffered writes, durable after Sync.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the current end of the file.
  virtual Status Write(std::string_view data) = 0;

  /// Flushes application and OS buffers (fflush + fsync).
  virtual Status Sync() = 0;

  /// Flushes and closes. Idempotent; the destructor closes without
  /// reporting errors, so call Close() wherever the result matters.
  virtual Status Close() = 0;
};

/// \brief The store's view of the filesystem.
class FileEnv {
 public:
  virtual ~FileEnv() = default;

  /// Opens `path` for writing: truncates when `append` is false.
  virtual Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path, bool append) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Deletes `path`. Not an error if it does not exist.
  virtual Status Remove(const std::string& path) = 0;

  /// Whole-file read (binary).
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;

  /// The real filesystem. Never null; shared, stateless.
  static FileEnv* Default();
};

/// Writes `contents` to `path` atomically: write to `path + ".tmp"`, flush
/// and fsync, close, rename over `path`. A crash at any point leaves either
/// the old file or the new file, never a torn mixture. The temp file is
/// removed on failure (best effort).
Status AtomicWriteFile(FileEnv* env, const std::string& path,
                       std::string_view contents);

/// Resolves a data/golden file path against a base directory, so binaries
/// and tests work from any working directory instead of silently depending
/// on being launched at the repo root. Resolution order:
///   1. `path` is absolute (or `data_dir` and ISIS_DATA_DIR are both
///      empty): returned unchanged;
///   2. `data_dir` is non-empty (a --data_dir flag): `data_dir + "/" +
///      path`;
///   3. the ISIS_DATA_DIR environment variable is set: `$ISIS_DATA_DIR +
///      "/" + path`.
std::string ResolveDataPath(const std::string& path,
                            const std::string& data_dir = "");

/// \brief Which operation of a FaultInjectingEnv's lifetime fails.
///
/// Indices are 0-based counts per operation kind across the whole env
/// (all files), matching the counters a fault-free planning run reports.
/// -1 means "never". After the first fault fires the env is crashed.
struct FaultPlan {
  int fail_write = -1;    ///< Fail the Nth WritableFile::Write.
  int fail_sync = -1;     ///< Fail the Nth WritableFile::Sync.
  int fail_rename = -1;   ///< Fail the Nth FileEnv::Rename.
  int fail_open = -1;     ///< Fail the Nth FileEnv::OpenForWrite.
  /// On a write/sync fault, persist this many of the not-yet-durable bytes
  /// first (a torn write). 0 = nothing of the failed buffer survives.
  long persist_prefix = 0;
  /// Report injected failures as out-of-disk-space instead of generic I/O.
  bool enospc = false;
};

/// \brief FileEnv decorator that injects one fault, then plays dead.
class FaultInjectingEnv : public FileEnv {
 public:
  explicit FaultInjectingEnv(FaultPlan plan, FileEnv* base = nullptr);

  Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path, bool append) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  bool Exists(const std::string& path) override;

  /// Operation totals so far — run once fault-free to enumerate the fault
  /// points, then re-run with each `FaultPlan{.fail_* = i}`.
  int writes() const { return writes_; }
  int syncs() const { return syncs_; }
  int renames() const { return renames_; }
  int opens() const { return opens_; }

  /// True once a fault has fired; every operation fails from then on.
  bool crashed() const { return crashed_; }

 private:
  friend class FaultWritableFile;

  Status Injected(const std::string& what);

  FaultPlan plan_;
  FileEnv* base_;
  int writes_ = 0;
  int syncs_ = 0;
  int renames_ = 0;
  int opens_ = 0;
  bool crashed_ = false;
};

}  // namespace isis::store

#endif  // ISIS_STORE_FILE_H_
