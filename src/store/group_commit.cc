#include "store/group_commit.h"

#include <chrono>
#include <utility>

namespace isis::store {

namespace {

std::int64_t MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Result<WalSyncPolicy> ParseWalSyncPolicy(const std::string& name) {
  if (name == "per_commit") return WalSyncPolicy::kPerCommit;
  if (name == "group") return WalSyncPolicy::kGroup;
  if (name == "none") return WalSyncPolicy::kNone;
  return Status::InvalidArgument(
      "unknown WAL sync policy '" + name +
      "' (expected per_commit, group or none)");
}

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kPerCommit:
      return "per_commit";
    case WalSyncPolicy::kGroup:
      return "group";
    case WalSyncPolicy::kNone:
      return "none";
  }
  return "?";
}

GroupCommitter::GroupCommitter(WalWriter* wal, const Options& options)
    : options_(options), wal_(wal) {}

GroupCommitter::Ticket GroupCommitter::Enqueue(std::string type,
                                               std::string payload) {
  MutexLock lock(mu_);
  if (pending_.size() >= static_cast<std::size_t>(options_.max_queue)) {
    // Backpressure, not rejection: every queued record has a waiter coming,
    // so the leader is (about to be) draining and space frees within one
    // batch. The enqueuer may hold the database writer lock, but the
    // leader needs only mu_, so this wait is fsync-bounded.
    ++counters_.queue_waits;
    cv_.Wait(lock, [this] {
      mu_.AssertHeld();
      return pending_.size() < static_cast<std::size_t>(options_.max_queue);
    });
  }
  const std::uint64_t seq = next_seq_++;
  PendingRecord p;
  p.seq = seq;
  p.record.type = std::move(type);
  p.record.payload = std::move(payload);
  pending_.push_back(std::move(p));
  ++counters_.records;
  // A parked waiter (e.g. Flush) may need to notice new work exists.
  cv_.NotifyAll();
  return Ticket{seq};
}

Status GroupCommitter::StatusForSeqLocked(std::uint64_t seq) const {
  if (failed_from_ != 0 && seq >= failed_from_) return fail_;
  return Status::OK();
}

Status GroupCommitter::WaitForSeq(std::uint64_t seq) {
  MutexLock lock(mu_);
  for (;;) {
    if (durable_seq_ >= seq) return StatusForSeqLocked(seq);
    if (leader_active_ || pending_.empty()) {
      // A leader is on it (or our record is mid-drain): follow.
      cv_.Wait(lock);
      continue;
    }

    // Become the leader: claim a batch, do everyone's I/O, wake them.
    leader_active_ = true;
    std::vector<WalRecord> batch;
    batch.reserve(pending_.size() < static_cast<std::size_t>(
                      options_.max_batch)
                      ? pending_.size()
                      : static_cast<std::size_t>(options_.max_batch));
    const std::uint64_t first = pending_.front().seq;
    while (!pending_.empty() &&
           batch.size() < static_cast<std::size_t>(options_.max_batch)) {
      batch.push_back(std::move(pending_.front().record));
      pending_.pop_front();
    }
    const std::uint64_t last = first + batch.size() - 1;
    const bool already_failed = failed_from_ != 0;
    WalWriter* wal = wal_;
    cv_.NotifyAll();  // Queue space freed: unblock bounded-queue enqueuers.
    lock.Unlock();

    Status st = Status::OK();
    std::uint64_t ok_records = 0;
    std::int64_t sync_us = 0;
    std::int64_t syncs = 0;
    if (already_failed) {
      // The WAL is suspect (possibly torn mid-frame); appending more could
      // bury the tear under fresh frames. Fail fast without touching it.
      st = Status::Unavailable("WAL writer has failed; commit not logged");
    } else {
      switch (options_.policy) {
        case WalSyncPolicy::kPerCommit:
          for (const WalRecord& r : batch) {
            auto t0 = std::chrono::steady_clock::now();
            st = wal->Append(r.type, r.payload);
            const std::int64_t us = MicrosSince(t0);
            if (!st.ok()) break;
            ++ok_records;
            ++syncs;
            sync_us += us;
            if (options_.batch_observer) options_.batch_observer(1, us, true);
          }
          break;
        case WalSyncPolicy::kGroup: {
          st = wal->AppendRecords(batch);
          if (st.ok()) {
            auto t0 = std::chrono::steady_clock::now();
            st = wal->Sync();
            sync_us = MicrosSince(t0);
            ++syncs;
          }
          if (st.ok()) ok_records = batch.size();
          if (options_.batch_observer) {
            options_.batch_observer(static_cast<int>(batch.size()), sync_us,
                                    true);
          }
          break;
        }
        case WalSyncPolicy::kNone:
          st = wal->AppendRecords(batch);
          if (st.ok()) ok_records = batch.size();
          if (options_.batch_observer) {
            options_.batch_observer(static_cast<int>(batch.size()), 0, false);
          }
          break;
      }
    }

    lock.Lock();
    durable_seq_ = last;
    if (!st.ok() && failed_from_ == 0) {
      // Records before the failure point in this batch made it; the rest —
      // and everything after — report the sticky error.
      fail_ = st;
      failed_from_ = first + ok_records;
    }
    ++counters_.batches;
    counters_.syncs += syncs;
    counters_.sync_us += sync_us;
    if (static_cast<std::int64_t>(batch.size()) > counters_.max_group) {
      counters_.max_group = static_cast<std::int64_t>(batch.size());
    }
    leader_active_ = false;
    cv_.NotifyAll();  // Followers of this batch + the next leader.
  }
}

Status GroupCommitter::Wait(Ticket ticket) { return WaitForSeq(ticket.seq); }

Status GroupCommitter::Flush() {
  std::uint64_t target;
  {
    MutexLock lock(mu_);
    if (next_seq_ == 1) return Status::OK();  // Nothing ever enqueued.
    target = next_seq_ - 1;
  }
  return WaitForSeq(target);
}

void GroupCommitter::set_writer(WalWriter* wal) {
  MutexLock lock(mu_);
  wal_ = wal;
}

GroupCommitter::Counters GroupCommitter::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

}  // namespace isis::store
