#include "store/crc32.h"

#include <array>

namespace isis::store {

namespace {

std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = MakeTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = kTable[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string Crc32Hex(std::uint32_t crc) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[i] = kDigits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

bool ParseCrc32Hex(std::string_view text, std::uint32_t* out) {
  if (text.size() != 8) return false;
  std::uint32_t v = 0;
  for (char ch : text) {
    v <<= 4;
    if (ch >= '0' && ch <= '9') {
      v |= static_cast<std::uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      v |= static_cast<std::uint32_t>(ch - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

}  // namespace isis::store
