/// \file serializer.h
/// \brief Versioned text serialization of a Workspace (schema + data +
/// stored queries).
///
/// The paper's sample session ends with the user saving the modified
/// database under a new name ("he saves this new database as
/// entertainment"). This module implements that capability: a whole
/// Workspace round-trips through a line-oriented, escaped, versioned text
/// format. Loading re-validates the result with the full ConsistencyChecker
/// so a corrupted file can never produce an inconsistent database.
///
/// Format sketch (one record per line, fields separated by `|`, names
/// escaped):
///
///   ISIS|2
///   name|Instrumental_Music
///   options|incremental_groupings|allow_multiple_parents|live_views
///   class|id|name|membership|base_kind|fill|parents|own_attrs
///   attr|id|name|owner|value_class|grouping|multi|naming|origin
///   grouping|id|name|parent|attr|fill
///   entity|id|base|kind|text          (kind 0 = named, else value kind)
///   members|class|e1,e2,...
///   single|attr|e|v
///   multi|attr|e|v1,v2,...
///   subpred|class|<predicate>
///   attrderiv|attr|assign|<term>   or   attrderiv|attr|pred|<predicate>
///   end|record_count|body_crc
///
/// Durability (format version 2): every line after the header carries a
/// trailing `|crc32hex` field over the rest of the line, and the file is
/// sealed by the `end|count|crc` trailer (count = number of record lines,
/// crc = CRC-32 chained over every record payload). A torn or bit-flipped
/// checkpoint is rejected at load with an error naming the offending line;
/// nothing may follow the trailer. Version 1 files (no checksums, bare
/// `end` marker) still load.
///
/// Ids are preserved exactly (deletion gaps become dead slots on load), so
/// stored predicates' constant sets and map paths stay valid.

#ifndef ISIS_STORE_SERIALIZER_H_
#define ISIS_STORE_SERIALIZER_H_

#include <memory>
#include <string>

#include "query/workspace.h"
#include "store/file.h"

namespace isis::store {

/// Current file format version (see the header comment; version 1 files
/// still load).
inline constexpr int kFormatVersion = 2;

/// Serializes the whole workspace to the checksummed text format.
std::string Save(const query::Workspace& ws);

/// Parses a serialized workspace. Fails with ParseError on malformed input
/// and with Consistency if the decoded database violates the §2 rules.
Result<std::unique_ptr<query::Workspace>> Load(const std::string& text);

/// Saves atomically: write to `path + ".tmp"`, fsync, rename. A crash or
/// full disk mid-save leaves the previous file intact. `env` routes the
/// I/O (fault injection); nullptr uses the real filesystem.
Status SaveToFile(const query::Workspace& ws, const std::string& path,
                  FileEnv* env = nullptr);
Result<std::unique_ptr<query::Workspace>> LoadFromFile(
    const std::string& path);

}  // namespace isis::store

#endif  // ISIS_STORE_SERIALIZER_H_
