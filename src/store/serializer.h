/// \file serializer.h
/// \brief Versioned text serialization of a Workspace (schema + data +
/// stored queries).
///
/// The paper's sample session ends with the user saving the modified
/// database under a new name ("he saves this new database as
/// entertainment"). This module implements that capability: a whole
/// Workspace round-trips through a line-oriented, escaped, versioned text
/// format. Loading re-validates the result with the full ConsistencyChecker
/// so a corrupted file can never produce an inconsistent database.
///
/// Format sketch (one record per line, fields separated by `|`, names
/// escaped):
///
///   ISIS|1
///   name|Instrumental_Music
///   options|incremental_groupings|allow_multiple_parents|live_views
///   class|id|name|membership|base_kind|fill|parents|own_attrs
///   attr|id|name|owner|value_class|grouping|multi|naming|origin
///   grouping|id|name|parent|attr|fill
///   entity|id|base|kind|text          (kind 0 = named, else value kind)
///   members|class|e1,e2,...
///   single|attr|e|v
///   multi|attr|e|v1,v2,...
///   subpred|class|<predicate>
///   attrderiv|attr|assign|<term>   or   attrderiv|attr|pred|<predicate>
///   end
///
/// Ids are preserved exactly (deletion gaps become dead slots on load), so
/// stored predicates' constant sets and map paths stay valid.

#ifndef ISIS_STORE_SERIALIZER_H_
#define ISIS_STORE_SERIALIZER_H_

#include <memory>
#include <string>

#include "query/workspace.h"

namespace isis::store {

/// Current file format version.
inline constexpr int kFormatVersion = 1;

/// Serializes the whole workspace to the text format.
std::string Save(const query::Workspace& ws);

/// Parses a serialized workspace. Fails with ParseError on malformed input
/// and with Consistency if the decoded database violates the §2 rules.
Result<std::unique_ptr<query::Workspace>> Load(const std::string& text);

/// File convenience wrappers.
Status SaveToFile(const query::Workspace& ws, const std::string& path);
Result<std::unique_ptr<query::Workspace>> LoadFromFile(
    const std::string& path);

}  // namespace isis::store

#endif  // ISIS_STORE_SERIALIZER_H_
