/// \file group_commit.h
/// \brief Group commit: many concurrent WAL commits, one fsync.
///
/// A per-record Write+Sync makes every mutation pay a full disk flush
/// (~100µs-10ms), and when the append happens inside an exclusive database
/// section that flush serializes the whole server. The GroupCommitter
/// decouples the two halves of a commit:
///
///   Enqueue(record)  cheap, ordered — safe to call while holding the
///                    database lock, so WAL order always equals apply order;
///   Wait(ticket)     blocks until the record is durable per the sync
///                    policy — called AFTER the database lock is released,
///                    so the fsync never blocks other writers' mutations.
///
/// Durability uses the classic leader/follower shape (LevelDB's writer
/// group, InnoDB's group commit): the first waiter finding no leader
/// becomes one, drains the pending queue (up to `max_batch` records),
/// writes them as ONE buffer, fsyncs ONCE, then wakes every follower whose
/// record the batch covered. Arrivals during the leader's fsync pile up in
/// the queue and form the next group, so the steady-state sync rate is one
/// per disk rotation's worth of commits, not one per commit.
///
/// Sync policies:
///   kPerCommit  one fsync per record (the pre-group-commit behavior; the
///               baseline the bench sweeps against);
///   kGroup      one fsync per drained batch — replies still imply
///               durability, amortized across the group;
///   kNone       no fsync; the OS decides when bytes hit the platter.
///               Replies do NOT imply durability. For benching and bulk
///               loads only.
///
/// The queue is bounded (`max_queue`): an Enqueue into a full queue blocks
/// until the leader frees space. That is deliberate backpressure — the
/// blocked enqueuer may hold the database writer lock, but the leader needs
/// only the committer's own mutex to make progress, so the stall is bounded
/// by one fsync, never a deadlock.
///
/// Error model: the first failed write/sync is sticky. Records the failed
/// batch did not cover — and everything after them — fail with the same
/// status; commits acknowledged OK before the failure are on disk. A Wait
/// that returns OK is the durability receipt.

#ifndef ISIS_STORE_GROUP_COMMIT_H_
#define ISIS_STORE_GROUP_COMMIT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "store/wal.h"

namespace isis::store {

/// When a WAL commit is flushed to stable storage.
enum class WalSyncPolicy {
  kPerCommit,  ///< fsync every record (slow, maximally paranoid).
  kGroup,      ///< fsync once per drained group (the default).
  kNone,       ///< never fsync explicitly (fast, not crash-durable).
};

/// Flag-value parsing for `--wal_sync=`; accepts "per_commit", "group",
/// "none".
Result<WalSyncPolicy> ParseWalSyncPolicy(const std::string& name);
const char* WalSyncPolicyName(WalSyncPolicy policy);

class GroupCommitter {
 public:
  struct Options {
    WalSyncPolicy policy = WalSyncPolicy::kGroup;
    /// Max records one leader drains per batch (one Write + one Sync).
    int max_batch = 256;
    /// Pending-queue bound; a full queue blocks Enqueue (backpressure).
    int max_queue = 4096;
    /// Called after every drained batch, outside the committer's lock:
    /// (records in the batch, microseconds the fsync took, whether a sync
    /// happened). Under kPerCommit it fires once per record. The server
    /// feeds its stats histogram through this; may be empty.
    std::function<void(int records, std::int64_t sync_us, bool synced)>
        batch_observer;
  };

  /// A claim check for one enqueued record.
  struct Ticket {
    std::uint64_t seq = 0;
  };

  struct Counters {
    std::int64_t records = 0;      ///< Records enqueued.
    std::int64_t batches = 0;      ///< Leader drains.
    std::int64_t syncs = 0;        ///< fsyncs issued.
    std::int64_t sync_us = 0;      ///< Cumulative fsync time.
    std::int64_t max_group = 0;    ///< Largest batch drained.
    std::int64_t queue_waits = 0;  ///< Enqueues that blocked on a full queue.
  };

  /// `wal` must outlive the committer (or be swapped via set_writer while
  /// the committer is idle).
  GroupCommitter(WalWriter* wal, const Options& options);

  /// Queues one record, preserving call order. Cheap (no I/O); may block
  /// only when the queue is at max_queue. Thread-safe.
  Ticket Enqueue(std::string type, std::string payload) ISIS_EXCLUDES(mu_);

  /// Blocks until the ticket's record is durable per the policy (or its
  /// batch failed). The first waiter in becomes the leader and does the
  /// actual I/O for everyone. Thread-safe.
  [[nodiscard]] Status Wait(Ticket ticket) ISIS_EXCLUDES(mu_);

  /// Enqueue + Wait: the synchronous single-caller convenience.
  [[nodiscard]] Status Commit(std::string type, std::string payload) {
    return Wait(Enqueue(std::move(type), std::move(payload)));
  }

  /// Drains every record enqueued so far and returns the status of the
  /// last one. For shutdown and WAL rotation.
  [[nodiscard]] Status Flush() ISIS_EXCLUDES(mu_);

  /// Swaps the underlying writer (after a rotation). The caller must
  /// guarantee the committer is idle: nothing queued, no Wait in flight.
  void set_writer(WalWriter* wal) ISIS_EXCLUDES(mu_);

  WalSyncPolicy policy() const { return options_.policy; }
  Counters counters() const ISIS_EXCLUDES(mu_);

 private:
  struct PendingRecord {
    std::uint64_t seq;
    WalRecord record;
  };

  /// The shared leader/follower loop: returns once `seq` is durable.
  Status WaitForSeq(std::uint64_t seq) ISIS_EXCLUDES(mu_);
  Status StatusForSeqLocked(std::uint64_t seq) const ISIS_REQUIRES(mu_);

  const Options options_;

  mutable Mutex mu_;
  CondVar cv_;
  WalWriter* wal_ ISIS_GUARDED_BY(mu_);
  std::deque<PendingRecord> pending_ ISIS_GUARDED_BY(mu_);
  std::uint64_t next_seq_ ISIS_GUARDED_BY(mu_) = 1;
  /// Every record with seq <= durable_seq_ has been resolved (durable per
  /// policy, or failed).
  std::uint64_t durable_seq_ ISIS_GUARDED_BY(mu_) = 0;
  bool leader_active_ ISIS_GUARDED_BY(mu_) = false;
  /// First seq that failed; 0 = no failure. Sticky: once the WAL errored,
  /// every later commit reports `fail_` (the file may be torn mid-frame).
  std::uint64_t failed_from_ ISIS_GUARDED_BY(mu_) = 0;
  Status fail_ ISIS_GUARDED_BY(mu_) = Status::OK();
  Counters counters_ ISIS_GUARDED_BY(mu_);
};

}  // namespace isis::store

#endif  // ISIS_STORE_GROUP_COMMIT_H_
