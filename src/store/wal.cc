#include "store/wal.h"

#include <cstdlib>

#include "common/strings.h"
#include "store/crc32.h"

namespace isis::store {

namespace {

std::string FrameRecord(std::string_view type, std::string_view payload) {
  std::string frame = "R|";
  frame += std::to_string(payload.size());
  frame += '|';
  frame += Crc32Hex(Crc32(payload));
  frame += '|';
  frame += type;
  frame += '\n';
  frame += payload;
  frame += '\n';
  return frame;
}

}  // namespace

Result<WalContents> ReadWal(const std::string& path, FileEnv* env) {
  ISIS_ASSIGN_OR_RETURN(std::string data, env->ReadFile(path));
  WalContents out;

  // Header. A file shorter than its magic line is a torn creation.
  size_t pos = data.find('\n');
  if (pos == std::string::npos) {
    if (std::string_view(kWalMagic).substr(0, data.size()) != data) {
      return Status::ParseError("'" + path + "': not an ISIS WAL");
    }
    out.truncated_tail = true;
    return out;
  }
  if (std::string_view(data).substr(0, pos) != kWalMagic) {
    return Status::ParseError("'" + path + "': not an ISIS WAL");
  }
  ++pos;

  while (pos < data.size()) {
    auto bad = [&](const std::string& why) {
      return Status::ParseError("'" + path + "' record " +
                                std::to_string(out.records.size()) + ": " +
                                why);
    };
    size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      // Record header torn at end-of-file.
      out.truncated_tail = true;
      return out;
    }
    std::vector<std::string> f =
        Split(std::string_view(data).substr(pos, nl - pos), '|');
    if (f.size() != 4 || f[0] != "R") return bad("malformed record header");
    char* end = nullptr;
    long long len = std::strtoll(f[1].c_str(), &end, 10);
    if (end == f[1].c_str() || *end != '\0' || len < 0) {
      return bad("bad payload length");
    }
    std::uint32_t crc = 0;
    if (!ParseCrc32Hex(f[2], &crc)) return bad("bad checksum field");
    size_t payload_start = nl + 1;
    // The payload and its closing newline must both be present; the file
    // ending inside them is a torn append.
    if (payload_start + static_cast<size_t>(len) + 1 > data.size()) {
      out.truncated_tail = true;
      return out;
    }
    std::string_view payload =
        std::string_view(data).substr(payload_start, len);
    if (data[payload_start + len] != '\n') {
      return bad("payload overruns its length prefix");
    }
    if (Crc32(payload) != crc) {
      return bad("checksum mismatch (corrupted record)");
    }
    out.records.push_back(WalRecord{f[3], std::string(payload)});
    pos = payload_start + len + 1;
  }
  return out;
}

Result<std::unique_ptr<WalWriter>> WalWriter::CreateWithRecords(
    const std::string& path, FileEnv* env,
    const std::vector<WalRecord>& records) {
  std::string contents = kWalMagic;
  contents += '\n';
  for (const WalRecord& r : records) {
    contents += FrameRecord(r.type, r.payload);
  }
  ISIS_RETURN_NOT_OK(AtomicWriteFile(env, path, contents));
  return OpenForAppend(path, env);
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, FileEnv* env) {
  ISIS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->OpenForWrite(path, /*append=*/true));
  return std::unique_ptr<WalWriter>(new WalWriter(path, std::move(file)));
}

Status WalWriter::Append(std::string_view type, std::string_view payload) {
  ISIS_RETURN_NOT_OK(file_->Write(FrameRecord(type, payload)));
  return file_->Sync();
}

Status WalWriter::AppendRecords(const std::vector<WalRecord>& records) {
  if (records.empty()) return Status::OK();
  std::string buffer;
  for (const WalRecord& r : records) {
    buffer += FrameRecord(r.type, r.payload);
  }
  return file_->Write(buffer);
}

Status WalWriter::AppendBatch(const std::vector<WalRecord>& records) {
  if (records.empty()) return Status::OK();
  ISIS_RETURN_NOT_OK(AppendRecords(records));
  return file_->Sync();
}

Status WalWriter::Sync() { return file_->Sync(); }

}  // namespace isis::store
