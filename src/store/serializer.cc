#include "store/serializer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "sdm/consistency.h"
#include "store/crc32.h"

namespace isis::store {

using query::AttributeDerivation;
using query::Atom;
using query::NormalForm;
using query::Operand;
using query::Predicate;
using query::SetOp;
using query::Term;
using query::Workspace;
using sdm::AttributeDef;
using sdm::AttrOrigin;
using sdm::BaseKind;
using sdm::ClassDef;
using sdm::Database;
using sdm::Entity;
using sdm::EntitySet;
using sdm::GroupingDef;
using sdm::Membership;
using sdm::Schema;
using sdm::Value;

namespace {

// --- Encoding helpers. ---

std::string EncodeIdList(const std::vector<std::int64_t>& ids) {
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (std::int64_t v : ids) parts.push_back(std::to_string(v));
  return Join(parts, ",");
}

template <typename IdT>
std::string EncodeIds(const std::vector<IdT>& ids) {
  std::vector<std::int64_t> raw;
  raw.reserve(ids.size());
  for (IdT id : ids) raw.push_back(id.value());
  return EncodeIdList(raw);
}

std::string EncodeEntitySet(const EntitySet& set) {
  std::vector<std::int64_t> raw;
  raw.reserve(set.size());
  for (EntityId e : set) raw.push_back(e.value());
  return EncodeIdList(raw);
}

Result<std::vector<std::int64_t>> DecodeIdList(const std::string& text) {
  std::vector<std::int64_t> out;
  if (text.empty()) return out;
  for (const std::string& part : Split(text, ',')) {
    char* end = nullptr;
    long long v = std::strtoll(part.c_str(), &end, 10);
    if (end == part.c_str() || *end != '\0') {
      return Status::ParseError("bad id list element: '" + part + "'");
    }
    out.push_back(v);
  }
  return out;
}

Result<std::int64_t> DecodeInt(const std::string& text) {
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::ParseError("bad integer field: '" + text + "'");
  }
  return v;
}

// Terms are encoded `origin:c1,c2:extent:a1,a2` (ids only — no escaping
// needed).
std::string EncodeTerm(const Term& term) {
  std::string out = std::to_string(static_cast<int>(term.origin));
  out += ":";
  out += EncodeEntitySet(term.constants);
  out += ":";
  out += std::to_string(term.extent_class.value());
  out += ":";
  out += EncodeIds(term.path);
  return out;
}

Result<Term> DecodeTerm(const std::string& text) {
  std::vector<std::string> parts = Split(text, ':');
  if (parts.size() != 4) return Status::ParseError("bad term: '" + text + "'");
  ISIS_ASSIGN_OR_RETURN(std::int64_t origin, DecodeInt(parts[0]));
  if (origin < 0 || origin > 3) {
    return Status::ParseError("bad term origin");
  }
  Term term;
  term.origin = static_cast<Operand>(origin);
  ISIS_ASSIGN_OR_RETURN(std::vector<std::int64_t> constants,
                        DecodeIdList(parts[1]));
  for (std::int64_t c : constants) term.constants.insert(EntityId(c));
  ISIS_ASSIGN_OR_RETURN(std::int64_t extent, DecodeInt(parts[2]));
  term.extent_class = ClassId(extent);
  ISIS_ASSIGN_OR_RETURN(std::vector<std::int64_t> path,
                        DecodeIdList(parts[3]));
  for (std::int64_t a : path) term.path.push_back(AttributeId(a));
  return term;
}

// Predicates: `form;atom^atom^...;clause^clause^...` where an atom is
// `lhs energetic op neg rhs` joined with `;`... use `^` between atoms and
// `%` inside: atom = lhs%op%neg%rhs, clause = comma list.
std::string EncodePredicate(const Predicate& pred) {
  std::string out = std::to_string(static_cast<int>(pred.form));
  out += ";";
  {
    std::vector<std::string> atoms;
    for (const Atom& a : pred.atoms) {
      atoms.push_back(EncodeTerm(a.lhs) + "%" +
                      std::to_string(static_cast<int>(a.op)) + "%" +
                      (a.negated ? "1" : "0") + "%" + EncodeTerm(a.rhs));
    }
    out += Join(atoms, "^");
  }
  out += ";";
  {
    std::vector<std::string> clauses;
    for (const std::vector<int>& c : pred.clauses) {
      std::vector<std::int64_t> raw(c.begin(), c.end());
      clauses.push_back(EncodeIdList(raw));
    }
    out += Join(clauses, "^");
  }
  return out;
}

Result<Predicate> DecodePredicate(const std::string& text) {
  std::vector<std::string> parts = Split(text, ';');
  if (parts.size() != 3) {
    return Status::ParseError("bad predicate: '" + text + "'");
  }
  Predicate pred;
  ISIS_ASSIGN_OR_RETURN(std::int64_t form, DecodeInt(parts[0]));
  if (form < 0 || form > 1) return Status::ParseError("bad normal form");
  pred.form = static_cast<NormalForm>(form);
  if (!parts[1].empty()) {
    for (const std::string& atom_text : Split(parts[1], '^')) {
      std::vector<std::string> fields = Split(atom_text, '%');
      if (fields.size() != 4) return Status::ParseError("bad atom encoding");
      Atom atom;
      ISIS_ASSIGN_OR_RETURN(atom.lhs, DecodeTerm(fields[0]));
      ISIS_ASSIGN_OR_RETURN(std::int64_t op, DecodeInt(fields[1]));
      if (op < 0 || op > 7) return Status::ParseError("bad operator");
      atom.op = static_cast<SetOp>(op);
      atom.negated = fields[2] == "1";
      ISIS_ASSIGN_OR_RETURN(atom.rhs, DecodeTerm(fields[3]));
      pred.atoms.push_back(std::move(atom));
    }
  }
  if (!parts[2].empty()) {
    for (const std::string& clause_text : Split(parts[2], '^')) {
      ISIS_ASSIGN_OR_RETURN(std::vector<std::int64_t> raw,
                            DecodeIdList(clause_text));
      std::vector<int> clause;
      for (std::int64_t v : raw) clause.push_back(static_cast<int>(v));
      pred.clauses.push_back(std::move(clause));
    }
  }
  ISIS_RETURN_NOT_OK(pred.ValidateStructure());
  return pred;
}

}  // namespace

std::string Save(const Workspace& ws) {
  const Database& db = ws.db();
  const Schema& schema = db.schema();
  std::ostringstream out;
  out << "name|" << Escape(ws.name()) << "\n";
  out << "options|" << (db.options().incremental_groupings ? 1 : 0) << "|"
      << (schema.options().allow_multiple_parents ? 1 : 0) << "|"
      << (db.options().live_views ? 1 : 0) << "\n";

  for (ClassId c : schema.AllClasses()) {
    if (c.value() < 4) continue;  // predefined classes are deterministic
    const ClassDef& def = schema.GetClass(c);
    out << "class|" << def.id.value() << "|" << Escape(def.name) << "|"
        << static_cast<int>(def.membership) << "|"
        << static_cast<int>(def.base_kind) << "|" << def.fill_pattern << "|"
        << EncodeIds(def.parents) << "|" << EncodeIds(def.own_attributes)
        << "\n";
  }
  {
    // Attribute records must be emitted in id order (RestoreAttribute fills
    // slots monotonically), which differs from per-class grouping order.
    std::vector<AttributeId> all_attrs;
    for (ClassId c : schema.AllClasses()) {
      for (AttributeId a : schema.GetClass(c).own_attributes) {
        if (a.value() >= 4) all_attrs.push_back(a);
      }
    }
    std::sort(all_attrs.begin(), all_attrs.end());
    for (AttributeId a : all_attrs) {
      const AttributeDef& def = schema.GetAttribute(a);
      out << "attr|" << def.id.value() << "|" << Escape(def.name) << "|"
          << def.owner.value() << "|" << def.value_class.value() << "|"
          << def.value_grouping.value() << "|" << (def.multivalued ? 1 : 0)
          << "|" << (def.naming ? 1 : 0) << "|"
          << static_cast<int>(def.origin) << "\n";
    }
  }
  for (GroupingId g : schema.AllGroupings()) {
    const GroupingDef& def = schema.GetGrouping(g);
    out << "grouping|" << def.id.value() << "|" << Escape(def.name) << "|"
        << def.parent.value() << "|" << def.on_attribute.value() << "|"
        << def.fill_pattern << "\n";
  }

  for (EntityId e : db.AllEntities()) {
    const Entity& ent = db.GetEntity(e);
    int kind = ent.has_value ? static_cast<int>(ent.value.kind()) : 0;
    out << "entity|" << ent.id.value() << "|" << ent.baseclass.value() << "|"
        << kind << "|" << Escape(ent.name) << "\n";
  }

  for (ClassId c : schema.AllClasses()) {
    const ClassDef& def = schema.GetClass(c);
    if (def.is_base()) continue;  // implied by entity records
    const EntitySet& members = db.Members(c);
    if (!members.empty()) {
      out << "members|" << c.value() << "|" << EncodeEntitySet(members)
          << "\n";
    }
  }

  for (ClassId c : schema.AllClasses()) {
    const ClassDef& cls = schema.GetClass(c);
    for (AttributeId a : cls.own_attributes) {
      const AttributeDef& def = schema.GetAttribute(a);
      if (def.naming) continue;  // implied by entity names
      for (EntityId e : db.Members(c)) {
        if (!def.multivalued) {
          EntityId v = db.GetSingle(e, a);
          if (v != sdm::kNullEntity) {
            out << "single|" << a.value() << "|" << e.value() << "|"
                << v.value() << "\n";
          }
        } else {
          const EntitySet& vs = db.GetMulti(e, a);
          if (!vs.empty()) {
            out << "multi|" << a.value() << "|" << e.value() << "|"
                << EncodeEntitySet(vs) << "\n";
          }
        }
      }
    }
  }

  for (const auto& [cls, pred] : ws.subclass_predicates()) {
    out << "subpred|" << cls << "|" << EncodePredicate(pred) << "\n";
  }
  for (const auto& [attr, d] : ws.attribute_derivations()) {
    if (d.kind == AttributeDerivation::Kind::kAssignment) {
      out << "attrderiv|" << attr << "|assign|" << EncodeTerm(d.assignment)
          << "\n";
    } else {
      out << "attrderiv|" << attr << "|pred|" << EncodePredicate(d.predicate)
          << "\n";
    }
  }
  for (const query::Constraint* c : ws.constraints().All()) {
    out << "constraint|" << Escape(c->name) << "|" << c->cls.value() << "|"
        << EncodePredicate(c->predicate) << "\n";
  }

  // Seal (format v2): each record line gains a trailing CRC-32 field, and
  // the `end` trailer fixes the record count plus a CRC chained over every
  // record payload, so truncation, splicing and bit flips are all detected
  // at load with a record-level error.
  const std::string body = out.str();
  std::ostringstream sealed;
  sealed << "ISIS|" << kFormatVersion << "\n";
  std::uint32_t body_crc = 0;
  size_t count = 0;
  size_t start = 0;
  while (start < body.size()) {
    size_t nl = body.find('\n', start);
    std::string_view payload(body.data() + start, nl - start);
    sealed << payload << '|' << Crc32Hex(Crc32(payload)) << '\n';
    body_crc = Crc32("\n", Crc32(payload, body_crc));
    ++count;
    start = nl + 1;
  }
  std::string trailer =
      "end|" + std::to_string(count) + "|" + Crc32Hex(body_crc);
  sealed << trailer << '|' << Crc32Hex(Crc32(trailer)) << '\n';
  return sealed.str();
}

namespace {

Status LoadInto(const std::string& text, Workspace* ws_out,
                std::unique_ptr<Workspace>* result) {
  (void)ws_out;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return Status::ParseError("empty input");
  std::int64_t version = 0;
  {
    std::vector<std::string> header = Split(line, '|');
    if (header.size() != 2 || header[0] != "ISIS") {
      return Status::ParseError("missing ISIS header");
    }
    ISIS_ASSIGN_OR_RETURN(version, DecodeInt(header[1]));
    if (version != 1 && version != kFormatVersion) {
      return Status::ParseError("unsupported format version " +
                                std::to_string(version));
    }
  }
  std::vector<std::string> raw;
  while (std::getline(in, line)) raw.push_back(line);

  // `lines` holds record payloads, `line_no` their 1-based file lines for
  // error messages. Version 2 strips and verifies the per-line CRC and the
  // sealed trailer here; version 1 records pass through bare.
  std::vector<std::string> lines;
  std::vector<size_t> line_no;
  bool saw_end = false;
  if (version == kFormatVersion) {
    std::uint32_t body_crc = 0;
    bool trailer_seen = false;
    for (size_t i = 0; i < raw.size(); ++i) {
      const size_t n = i + 2;
      auto bad = [&](const std::string& why) {
        return Status::ParseError("line " + std::to_string(n) + ": " + why);
      };
      if (trailer_seen) return bad("content after sealed trailer");
      size_t bar = raw[i].rfind('|');
      std::uint32_t crc = 0;
      if (bar == std::string::npos ||
          !ParseCrc32Hex(std::string_view(raw[i]).substr(bar + 1), &crc)) {
        return bad("missing record checksum (truncated line?)");
      }
      std::string payload = raw[i].substr(0, bar);
      if (Crc32(payload) != crc) {
        return bad("checksum mismatch (corrupted record)");
      }
      if (StartsWith(payload, "end|")) {
        std::vector<std::string> f = Split(payload, '|');
        if (f.size() != 3) return bad("malformed sealed trailer");
        ISIS_ASSIGN_OR_RETURN(std::int64_t count, DecodeInt(f[1]));
        if (count != static_cast<std::int64_t>(lines.size())) {
          return bad("record count mismatch (truncated or spliced file?)");
        }
        if (f[2] != Crc32Hex(body_crc)) {
          return bad("body checksum mismatch (reordered or spliced file?)");
        }
        trailer_seen = true;
        continue;
      }
      body_crc = Crc32("\n", Crc32(payload, body_crc));
      lines.push_back(std::move(payload));
      line_no.push_back(n);
    }
    if (!trailer_seen) {
      return Status::ParseError("missing sealed trailer (truncated file?)");
    }
    saw_end = true;  // The verified trailer is the v2 end marker.
  } else {
    for (size_t i = 0; i < raw.size(); ++i) {
      lines.push_back(raw[i]);
      line_no.push_back(i + 2);
    }
  }

  std::string name = "untitled";
  Database::Options options;
  // First pass over the record lines to find name/options before the
  // Workspace is constructed (options are constructor parameters).
  size_t body_start = 0;
  for (; body_start < lines.size(); ++body_start) {
    std::vector<std::string> f = Split(lines[body_start], '|');
    if (f[0] == "name" && f.size() == 2) {
      name = Unescape(f[1]);
    } else if (f[0] == "options" && (f.size() == 3 || f.size() == 4)) {
      options.incremental_groupings = f[1] == "1";
      options.schema.allow_multiple_parents = f[2] == "1";
      // Field added later; files saved before it default to off.
      options.live_views = f.size() >= 4 && f[3] == "1";
    } else {
      break;
    }
  }

  auto ws = std::make_unique<Workspace>(options);
  ws->set_name(name);
  Database& db = ws->db();
  Schema& schema = db.mutable_schema();

  for (size_t li = body_start; li < lines.size(); ++li) {
    const std::string& record = lines[li];
    if (record.empty()) continue;
    std::vector<std::string> f = Split(record, '|');
    const std::string& tag = f[0];
    auto bad = [&](const std::string& why) {
      return Status::ParseError("line " + std::to_string(line_no[li]) + ": " +
                                why);
    };
    if (tag == "end") {
      saw_end = true;
      continue;
    }
    if (tag == "class") {
      if (f.size() != 8) return bad("class record needs 8 fields");
      ClassDef def;
      ISIS_ASSIGN_OR_RETURN(std::int64_t id, DecodeInt(f[1]));
      def.id = ClassId(id);
      def.name = Unescape(f[2]);
      ISIS_ASSIGN_OR_RETURN(std::int64_t membership, DecodeInt(f[3]));
      if (membership < 0 || membership > 2) return bad("bad membership");
      def.membership = static_cast<Membership>(membership);
      ISIS_ASSIGN_OR_RETURN(std::int64_t kind, DecodeInt(f[4]));
      if (kind < 0 || kind > 4) return bad("bad base kind");
      def.base_kind = static_cast<BaseKind>(kind);
      ISIS_ASSIGN_OR_RETURN(std::int64_t fill, DecodeInt(f[5]));
      def.fill_pattern = static_cast<int>(fill);
      ISIS_ASSIGN_OR_RETURN(std::vector<std::int64_t> parents,
                            DecodeIdList(f[6]));
      for (std::int64_t p : parents) def.parents.push_back(ClassId(p));
      ISIS_ASSIGN_OR_RETURN(std::vector<std::int64_t> attrs,
                            DecodeIdList(f[7]));
      for (std::int64_t a : attrs) def.own_attributes.push_back(AttributeId(a));
      ISIS_RETURN_NOT_OK(schema.RestoreClass(def));
    } else if (tag == "attr") {
      if (f.size() != 9) return bad("attr record needs 9 fields");
      AttributeDef def;
      ISIS_ASSIGN_OR_RETURN(std::int64_t id, DecodeInt(f[1]));
      def.id = AttributeId(id);
      def.name = Unescape(f[2]);
      ISIS_ASSIGN_OR_RETURN(std::int64_t owner, DecodeInt(f[3]));
      def.owner = ClassId(owner);
      ISIS_ASSIGN_OR_RETURN(std::int64_t vc, DecodeInt(f[4]));
      def.value_class = ClassId(vc);
      ISIS_ASSIGN_OR_RETURN(std::int64_t vg, DecodeInt(f[5]));
      def.value_grouping = GroupingId(vg);
      def.multivalued = f[6] == "1";
      def.naming = f[7] == "1";
      ISIS_ASSIGN_OR_RETURN(std::int64_t origin, DecodeInt(f[8]));
      if (origin < 0 || origin > 1) return bad("bad attr origin");
      def.origin = static_cast<AttrOrigin>(origin);
      ISIS_RETURN_NOT_OK(schema.RestoreAttribute(def));
    } else if (tag == "grouping") {
      if (f.size() != 6) return bad("grouping record needs 6 fields");
      GroupingDef def;
      ISIS_ASSIGN_OR_RETURN(std::int64_t id, DecodeInt(f[1]));
      def.id = GroupingId(id);
      def.name = Unescape(f[2]);
      ISIS_ASSIGN_OR_RETURN(std::int64_t parent, DecodeInt(f[3]));
      def.parent = ClassId(parent);
      ISIS_ASSIGN_OR_RETURN(std::int64_t attr, DecodeInt(f[4]));
      def.on_attribute = AttributeId(attr);
      ISIS_ASSIGN_OR_RETURN(std::int64_t fill, DecodeInt(f[5]));
      def.fill_pattern = static_cast<int>(fill);
      ISIS_RETURN_NOT_OK(schema.RestoreGrouping(def));
    } else if (tag == "entity") {
      if (f.size() != 5) return bad("entity record needs 5 fields");
      Entity ent;
      ISIS_ASSIGN_OR_RETURN(std::int64_t id, DecodeInt(f[1]));
      ent.id = EntityId(id);
      ISIS_ASSIGN_OR_RETURN(std::int64_t base, DecodeInt(f[2]));
      ent.baseclass = ClassId(base);
      ISIS_ASSIGN_OR_RETURN(std::int64_t kind, DecodeInt(f[3]));
      ent.name = Unescape(f[4]);
      if (kind != 0) {
        if (kind < 1 || kind > 4) return bad("bad entity value kind");
        ISIS_ASSIGN_OR_RETURN(
            ent.value, Value::Parse(static_cast<BaseKind>(kind), ent.name));
        ent.has_value = true;
        ent.name = ent.value.ToDisplayString();
      }
      ISIS_RETURN_NOT_OK(db.RestoreEntity(ent));
    } else if (tag == "members") {
      if (f.size() != 3) return bad("members record needs 3 fields");
      ISIS_ASSIGN_OR_RETURN(std::int64_t cls, DecodeInt(f[1]));
      ISIS_ASSIGN_OR_RETURN(std::vector<std::int64_t> raw, DecodeIdList(f[2]));
      EntitySet set;
      for (std::int64_t e : raw) set.insert(EntityId(e));
      ISIS_RETURN_NOT_OK(db.RestoreMembers(ClassId(cls), std::move(set)));
    } else if (tag == "single") {
      if (f.size() != 4) return bad("single record needs 4 fields");
      ISIS_ASSIGN_OR_RETURN(std::int64_t attr, DecodeInt(f[1]));
      ISIS_ASSIGN_OR_RETURN(std::int64_t e, DecodeInt(f[2]));
      ISIS_ASSIGN_OR_RETURN(std::int64_t v, DecodeInt(f[3]));
      ISIS_RETURN_NOT_OK(
          db.RestoreSingle(AttributeId(attr), EntityId(e), EntityId(v)));
    } else if (tag == "multi") {
      if (f.size() != 4) return bad("multi record needs 4 fields");
      ISIS_ASSIGN_OR_RETURN(std::int64_t attr, DecodeInt(f[1]));
      ISIS_ASSIGN_OR_RETURN(std::int64_t e, DecodeInt(f[2]));
      ISIS_ASSIGN_OR_RETURN(std::vector<std::int64_t> raw, DecodeIdList(f[3]));
      EntitySet set;
      for (std::int64_t v : raw) set.insert(EntityId(v));
      ISIS_RETURN_NOT_OK(
          db.RestoreMulti(AttributeId(attr), EntityId(e), std::move(set)));
    } else if (tag == "subpred") {
      if (f.size() != 3) return bad("subpred record needs 3 fields");
      ISIS_ASSIGN_OR_RETURN(std::int64_t cls, DecodeInt(f[1]));
      ISIS_ASSIGN_OR_RETURN(Predicate pred, DecodePredicate(f[2]));
      ws->RestoreSubclassPredicate(ClassId(cls), std::move(pred));
    } else if (tag == "attrderiv") {
      if (f.size() != 4) return bad("attrderiv record needs 4 fields");
      ISIS_ASSIGN_OR_RETURN(std::int64_t attr, DecodeInt(f[1]));
      AttributeDerivation d;
      if (f[2] == "assign") {
        d.kind = AttributeDerivation::Kind::kAssignment;
        ISIS_ASSIGN_OR_RETURN(d.assignment, DecodeTerm(f[3]));
      } else if (f[2] == "pred") {
        d.kind = AttributeDerivation::Kind::kPredicate;
        ISIS_ASSIGN_OR_RETURN(d.predicate, DecodePredicate(f[3]));
      } else {
        return bad("bad derivation kind '" + f[2] + "'");
      }
      ws->RestoreAttributeDerivation(AttributeId(attr), std::move(d));
    } else if (tag == "constraint") {
      if (f.size() != 4) return bad("constraint record needs 4 fields");
      query::Constraint c;
      c.name = Unescape(f[1]);
      ISIS_ASSIGN_OR_RETURN(std::int64_t cls, DecodeInt(f[2]));
      c.cls = ClassId(cls);
      ISIS_ASSIGN_OR_RETURN(c.predicate, DecodePredicate(f[3]));
      ws->RestoreConstraint(std::move(c));
    } else {
      return bad("unknown record tag '" + tag + "'");
    }
  }
  if (!saw_end) {
    return Status::ParseError("missing 'end' record (truncated file?)");
  }

  // A corrupted file must never yield an inconsistent database.
  ISIS_RETURN_NOT_OK(schema.Validate());
  ISIS_RETURN_NOT_OK(sdm::ConsistencyChecker(db).Check());
  *result = std::move(ws);
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Workspace>> Load(const std::string& text) {
  std::unique_ptr<Workspace> ws;
  ISIS_RETURN_NOT_OK(LoadInto(text, nullptr, &ws));
  return ws;
}

Status SaveToFile(const Workspace& ws, const std::string& path,
                  FileEnv* env) {
  // Atomic checkpoint: never truncate the only copy in place. A crash or
  // full disk mid-save leaves the previous file; the rename publishes the
  // new one only after its bytes are durable.
  return AtomicWriteFile(env != nullptr ? env : FileEnv::Default(), path,
                         Save(ws));
}

Result<std::unique_ptr<Workspace>> LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    // Without this check an I/O error mid-read would masquerade as a
    // short (or empty) file and surface as a confusing parse error.
    return Status::IOError("I/O error while reading '" + path + "'");
  }
  return Load(buf.str());
}

}  // namespace isis::store
