/// \file wal.h
/// \brief Write-ahead edit log: append-only, length-prefixed, checksummed.
///
/// A WAL makes every successful design action durable the moment it
/// happens, so a crash loses at most the action in flight instead of
/// everything since the last explicit save. On-disk layout:
///
///   ISISWAL|1\n
///   R|<payload_len>|<crc32hex>|<type>\n<payload bytes>\n
///   ...
///
/// The CRC covers the payload. Record types used by the session layer:
///   base   the full checkpoint the log replays on top of (always first)
///   note   a journal entry that is not replayable (action|detail)
///   event  one successful input event (see input::EncodeEvent)
///
/// Reading distinguishes the two corruption shapes: an incomplete final
/// record (the file simply ends early — a torn append) is silently
/// truncated, while anything inconsistent that is followed by more data —
/// or a full-length record whose checksum fails — is mid-log corruption
/// and rejects the whole log with a record-level error.

#ifndef ISIS_STORE_WAL_H_
#define ISIS_STORE_WAL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "store/file.h"

namespace isis::store {

/// WAL format magic/version line (without newline).
inline constexpr const char* kWalMagic = "ISISWAL|1";

/// One decoded WAL record.
struct WalRecord {
  std::string type;
  std::string payload;
};

/// A validated log: the records of its intact prefix.
struct WalContents {
  std::vector<WalRecord> records;
  /// True when a torn final record (or a missing/torn header) was dropped;
  /// the writer must rewrite the file before appending again.
  bool truncated_tail = false;
};

/// Reads and validates a WAL. Fails with IOError when unreadable and with
/// ParseError on mid-log corruption; a torn tail is reported, not fatal.
Result<WalContents> ReadWal(const std::string& path, FileEnv* env);

/// \brief Appender. Append/AppendBatch flush and fsync before returning;
/// AppendRecords leaves the fsync to the caller (the group committer's
/// building block — see store/group_commit.h).
class WalWriter {
 public:
  /// Atomically (re)creates the log at `path` holding `records` (the first
  /// should be the `base` checkpoint), then opens it for appending. Also
  /// the torn-tail repair path: re-create from the intact prefix.
  static Result<std::unique_ptr<WalWriter>> CreateWithRecords(
      const std::string& path, FileEnv* env,
      const std::vector<WalRecord>& records);

  /// Opens an existing, clean log for appending.
  static Result<std::unique_ptr<WalWriter>> OpenForAppend(
      const std::string& path, FileEnv* env);

  /// Appends one record and makes it durable (write + fsync).
  Status Append(std::string_view type, std::string_view payload);

  /// Appends `records` with ONE write and ONE fsync: the frames are
  /// concatenated into a single buffer first, so N records cost one disk
  /// flush instead of N. A crash mid-batch tears the tail like any other
  /// torn append — readers recover the intact prefix.
  Status AppendBatch(const std::vector<WalRecord>& records);

  /// Writes `records` as one buffer WITHOUT syncing: durability arrives at
  /// the next Sync(). Callers that ack commits must Sync() before acking.
  Status AppendRecords(const std::vector<WalRecord>& records);

  /// Flushes everything appended so far to stable storage.
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, std::unique_ptr<WritableFile> file)
      : path_(std::move(path)), file_(std::move(file)) {}

  std::string path_;
  std::unique_ptr<WritableFile> file_;
};

}  // namespace isis::store

#endif  // ISIS_STORE_WAL_H_
