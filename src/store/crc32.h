/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for the durable store.
///
/// Every persistent record — checkpoint lines and WAL frames — carries a
/// CRC so a torn or bit-flipped write is detected at load time with a
/// precise record-level error instead of a downstream parse mystery.

#ifndef ISIS_STORE_CRC32_H_
#define ISIS_STORE_CRC32_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace isis::store {

/// CRC-32 of `data`. `seed` chains checksums across buffers:
/// `Crc32(b, Crc32(a))  ==  Crc32(a + b)`.
std::uint32_t Crc32(std::string_view data, std::uint32_t seed = 0);

/// Fixed-width lowercase hex form, e.g. "00c0ffee".
std::string Crc32Hex(std::uint32_t crc);

/// Parses the 8-hex-digit form; returns false on any other input.
bool ParseCrc32Hex(std::string_view text, std::uint32_t* out);

}  // namespace isis::store

#endif  // ISIS_STORE_CRC32_H_
