/// \file schema.h
/// \brief The ISIS schema: classes, attributes, groupings, and the two graphs
/// the paper derives from them — the inheritance forest and the semantic
/// network (paper §2, "Schema").
///
/// A schema is purely syntactic: it records which classes exist, how they are
/// related by single-parent (optionally multiple-parent, the paper's §5
/// extension) inheritance, which attributes each class defines, and which
/// groupings exist. The data level lives in Database (database.h).

#ifndef ISIS_SDM_SCHEMA_H_
#define ISIS_SDM_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "sdm/value.h"

namespace isis::sdm {

/// How the membership of a class is determined (paper §2 and §4.1).
enum class Membership {
  kBase,        ///< A baseclass: owns its entities directly.
  kEnumerated,  ///< User-defined subclass, hand-picked members (e.g. soloists).
  kDerived,     ///< Predicate-defined subclass (e.g. quartets); the predicate
                ///< itself is owned by the query layer.
};

const char* MembershipToString(Membership m);

/// \brief One class node of the schema.
struct ClassDef {
  ClassId id;
  std::string name;
  /// Empty for baseclasses. Size > 1 only when the schema was created with
  /// Options::allow_multiple_parents (the paper's announced extension).
  std::vector<ClassId> parents;
  Membership membership = Membership::kEnumerated;
  /// Predefined-value kind; kNone for user baseclasses and all subclasses.
  BaseKind base_kind = BaseKind::kNone;
  /// Attributes defined *on this class* (inherited ones are resolved by
  /// Schema::AllAttributesOf). The first attribute of a baseclass is its
  /// naming attribute.
  std::vector<AttributeId> own_attributes;
  /// Index of the characteristic fill pattern "unique to the class,
  /// provided automatically by the system" (paper §3.2). Interpreted by gfx.
  int fill_pattern = 0;

  bool is_base() const { return parents.empty(); }
  /// Single-parent accessor; the first parent in multi-parent mode.
  ClassId parent() const { return parents.empty() ? ClassId() : parents[0]; }
};

/// How an attribute's values are derived (plain stored attribute vs the
/// paper's derived attributes, whose predicate the query layer owns).
enum class AttrOrigin {
  kStored,
  kDerived,
};

/// \brief One attribute — an arc of the semantic network.
struct AttributeDef {
  AttributeId id;
  std::string name;
  ClassId owner;        ///< The class the attribute is defined on.
  ClassId value_class;  ///< Values are drawn from this class…
  /// …or, when valid, from this grouping; the paper treats an attribute into
  /// a grouping G as multivalued into parent(G), and we record the grouping
  /// for display and consistency purposes.
  GroupingId value_grouping;
  bool multivalued = false;
  /// True for the distinguished naming attribute of a baseclass.
  bool naming = false;
  AttrOrigin origin = AttrOrigin::kStored;
};

/// \brief One grouping node. A grouping of class C on attribute A partitions
/// (or, for multivalued A, covers) C by common attribute value. Groupings
/// have no attributes, subclasses or groupings of their own (paper §2).
struct GroupingDef {
  GroupingId id;
  std::string name;
  ClassId parent;             ///< parent(G), the grouped class.
  AttributeId on_attribute;   ///< The attribute whose values index the blocks.
  int fill_pattern = 0;       ///< Shares the visual language of classes but is
                              ///< rendered with a white (set) border.
};

/// A node of either graph: a class or a grouping.
struct SchemaNode {
  enum class Kind { kClass, kGrouping } kind;
  ClassId class_id;        // valid iff kind == kClass
  GroupingId grouping_id;  // valid iff kind == kGrouping
  static SchemaNode Class(ClassId c) {
    return SchemaNode{Kind::kClass, c, GroupingId()};
  }
  static SchemaNode Grouping(GroupingId g) {
    return SchemaNode{Kind::kGrouping, ClassId(), g};
  }
};

/// \brief The schema catalog plus graph operations.
///
/// The four predefined baseclasses (INTEGER, REAL, YES/NO, STRING) are
/// created by the constructor with fixed ids and are always present
/// (paper §2: "We assume that the standard baseclasses … are always in our
/// schema").
class Schema {
 public:
  struct Options {
    /// Enables the paper's §5 extension: a subclass may have several parent
    /// classes and inherits the attributes of all of them. Disabled by
    /// default; with it off, the inheritance structure is a forest.
    bool allow_multiple_parents = false;
  };

  Schema();
  explicit Schema(Options options);

  const Options& options() const { return options_; }

  // --- Predefined baseclasses (stable ids). ---
  static ClassId kIntegers() { return ClassId(0); }
  static ClassId kReals() { return ClassId(1); }
  static ClassId kBooleans() { return ClassId(2); }
  static ClassId kStrings() { return ClassId(3); }
  /// The predefined class for a value kind.
  static ClassId PredefinedClassFor(BaseKind kind);

  // --- Class catalog. ---

  /// Creates a user baseclass with a naming attribute called
  /// `naming_attribute` (value class STRING). In the paper's example,
  /// musicians' naming attribute is stage_name.
  Result<ClassId> CreateBaseclass(const std::string& name,
                                  const std::string& naming_attribute);

  /// Creates a subclass of `parent` with the given membership kind.
  /// kEnumerated matches the paper's user-defined ("hand-picked") subclasses;
  /// kDerived marks predicate-defined ones. Grouping nodes cannot be parents.
  Result<ClassId> CreateSubclass(const std::string& name, ClassId parent,
                                 Membership membership);

  /// Adds `extra_parent` to an existing subclass (multiple-inheritance
  /// extension). Fails unless Options::allow_multiple_parents, or if the new
  /// edge would create a cycle, cross baseclass roots, or duplicate an
  /// inherited attribute name.
  Status AddParent(ClassId cls, ClassId extra_parent);

  /// Deletes a class. Preconditions from the paper: the class must not be
  /// the parent of some other class or the value class of some attribute;
  /// additionally it must not be the parent of a grouping, and predefined
  /// baseclasses are permanent.
  Status DeleteClass(ClassId cls);

  /// Renames a class (the UI's (re)name command).
  Status RenameClass(ClassId cls, const std::string& new_name);

  /// Switches a subclass between enumerated and derived membership (the UI's
  /// (re)define membership turns a hand-picked subclass into a derived one).
  /// Baseclasses cannot change kind.
  Status SetMembership(ClassId cls, Membership membership);

  /// Marks an attribute stored or derived (the query layer attaches the
  /// derivation itself).
  Status SetAttributeOrigin(AttributeId attr, AttrOrigin origin);

  Result<ClassId> FindClass(const std::string& name) const;
  bool HasClass(ClassId id) const;
  const ClassDef& GetClass(ClassId id) const;
  /// All class ids in creation order.
  std::vector<ClassId> AllClasses() const;

  // --- Attribute catalog. ---

  /// Defines an attribute on `owner` with values from `value_class`.
  /// The name must not collide with any attribute visible on `owner`
  /// (own or inherited) nor shadow one in a descendant.
  Result<AttributeId> CreateAttribute(ClassId owner, const std::string& name,
                                      ClassId value_class, bool multivalued,
                                      AttrOrigin origin = AttrOrigin::kStored);

  /// Defines an attribute whose range is a grouping G; per the paper this is
  /// "treated as B: S ++> parent(G)" — i.e. multivalued into parent(G).
  Result<AttributeId> CreateAttributeIntoGrouping(ClassId owner,
                                                  const std::string& name,
                                                  GroupingId grouping);

  /// Changes the value class of an attribute (the UI's (re)specify value
  /// class). The data layer must re-validate affected values.
  Status SetValueClass(AttributeId attr, ClassId value_class);

  /// Deletes an attribute. Fails if a grouping is defined on it or if it is
  /// a naming attribute.
  Status DeleteAttribute(AttributeId attr);

  Status RenameAttribute(AttributeId attr, const std::string& new_name);

  /// Finds an attribute visible on `cls` (own or inherited) by name.
  Result<AttributeId> FindAttribute(ClassId cls, const std::string& name) const;
  bool HasAttribute(AttributeId id) const;
  const AttributeDef& GetAttribute(AttributeId id) const;

  /// All attributes visible on `cls`: inherited first (root-most ancestor
  /// first, matching the paper's automatic addition of inherited attributes
  /// to a class's attribute section), then own.
  std::vector<AttributeId> AllAttributesOf(ClassId cls) const;

  /// True if `attr` is visible on `cls` (defined on it or an ancestor).
  bool AttributeVisibleOn(ClassId cls, AttributeId attr) const;

  // --- Grouping catalog. ---

  /// Creates grouping `name` of class `parent` on attribute `on_attribute`
  /// (which must be visible on `parent`). The paper's restriction: a grouping
  /// is only allowed on common values of an attribute.
  Result<GroupingId> CreateGrouping(const std::string& name, ClassId parent,
                                    AttributeId on_attribute);

  /// Deletes a grouping. Fails if some attribute ranges over it.
  Status DeleteGrouping(GroupingId g);

  Status RenameGrouping(GroupingId g, const std::string& new_name);

  Result<GroupingId> FindGrouping(const std::string& name) const;
  bool HasGrouping(GroupingId id) const;
  const GroupingDef& GetGrouping(GroupingId id) const;
  std::vector<GroupingId> AllGroupings() const;
  /// Groupings whose parent is `cls`.
  std::vector<GroupingId> GroupingsOf(ClassId cls) const;

  // --- Inheritance forest (paper §2). ---

  /// Direct subclasses of `cls`, in creation order.
  std::vector<ClassId> ChildrenOf(ClassId cls) const;
  /// Ancestor chain from `cls` (exclusive) to its root, parent-first.
  /// In multi-parent mode this is a deduplicated topological order.
  std::vector<ClassId> AncestorsOf(ClassId cls) const;
  /// `cls` plus all transitive subclasses (preorder).
  std::vector<ClassId> SelfAndDescendants(ClassId cls) const;
  /// The root baseclass of `cls`'s tree.
  ClassId RootOf(ClassId cls) const;
  /// True if `maybe_ancestor` is `cls` or one of its ancestors. Membership in
  /// `cls` implies membership in every class this returns true for.
  bool IsAncestorOrSelf(ClassId maybe_ancestor, ClassId cls) const;
  /// Root baseclasses in creation order (the roots of the forest).
  std::vector<ClassId> Baseclasses() const;

  // --- Semantic network (paper §2). ---

  /// One arc of the semantic network: class --attr--> value node.
  struct NetworkArc {
    ClassId from;
    AttributeId attribute;
    SchemaNode to;   ///< Value class or grouping node.
    bool inherited;  ///< True when `attribute` is inherited by `from`.
  };

  /// Outgoing arcs of a class node, inherited attributes included — "the
  /// outgoing arcs of a class node correspond to its attributes, including
  /// those that are inherited". Grouping nodes have no outgoing arcs.
  std::vector<NetworkArc> OutgoingArcs(ClassId cls) const;

  /// Arcs arriving at a class or grouping node (attributes whose value class
  /// or value grouping is the node). Used by the semantic network view and by
  /// the class-deletion precondition.
  std::vector<NetworkArc> IncomingArcs(SchemaNode node) const;

  /// True if some attribute uses `cls` as its value class.
  bool IsValueClassOfSomeAttribute(ClassId cls) const;

  /// Structural self-check of the schema graphs: parent links acyclic, arcs
  /// reference live nodes, naming attributes in place, fill patterns unique.
  Status Validate() const;

  // --- Restore API (store/ deserialization only). ---
  //
  // Inserts catalog rows at their original ids, filling id gaps left by
  // deletions with dead slots. Referential integrity is NOT checked here;
  // the loader must call Validate() once everything is restored. The four
  // predefined classes (ids 0-3) and their naming attributes (ids 0-3) are
  // created by the constructor and must not be restored.

  Status RestoreClass(const ClassDef& def);
  Status RestoreAttribute(const AttributeDef& def);
  Status RestoreGrouping(const GroupingDef& def);

 private:
  Result<ClassId> CreateClassNode(const std::string& name,
                                  std::vector<ClassId> parents,
                                  Membership membership, BaseKind base_kind);
  Status CheckNameFree(const std::string& name) const;
  /// Name collision check for a new/renamed attribute on `owner`: looks up
  /// and down the inheritance structure.
  Status CheckAttributeNameFree(ClassId owner, const std::string& name) const;
  int NextFillPattern() { return next_fill_pattern_++; }

  Options options_;
  std::vector<ClassDef> classes_;        // index == id
  std::vector<AttributeDef> attributes_;  // index == id
  std::vector<GroupingDef> groupings_;   // index == id
  std::vector<bool> class_live_;
  std::vector<bool> attribute_live_;
  std::vector<bool> grouping_live_;
  std::unordered_map<std::string, ClassId> class_by_name_;
  std::unordered_map<std::string, GroupingId> grouping_by_name_;
  int next_fill_pattern_ = 0;
};

}  // namespace isis::sdm

#endif  // ISIS_SDM_SCHEMA_H_
