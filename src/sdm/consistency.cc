#include "sdm/consistency.h"

#include <map>
#include <unordered_set>

namespace isis::sdm {

const char* ViolationRuleToString(Violation::Rule r) {
  switch (r) {
    case Violation::Rule::kSchemaStructure:
      return "SchemaStructure";
    case Violation::Rule::kBaseclassPartition:
      return "BaseclassPartition";
    case Violation::Rule::kSubclassSubset:
      return "SubclassSubset";
    case Violation::Rule::kAttributeFunction:
      return "AttributeFunction";
    case Violation::Rule::kNamingUniqueness:
      return "NamingUniqueness";
    case Violation::Rule::kGroupingDerivation:
      return "GroupingDerivation";
  }
  return "?";
}

std::vector<Violation> ConsistencyChecker::CheckAll() const {
  std::vector<Violation> out;
  CheckSchemaStructure(&out);
  CheckBaseclassPartition(&out);
  CheckSubclassSubsets(&out);
  CheckAttributeFunctions(&out);
  CheckNamingUniqueness(&out);
  CheckGroupingDerivations(&out);
  return out;
}

Status ConsistencyChecker::Check() const {
  std::vector<Violation> v = CheckAll();
  if (v.empty()) return Status::OK();
  return Status::Consistency(v[0].description + " (" +
                             std::to_string(v.size()) +
                             " violation(s) total)");
}

void ConsistencyChecker::CheckSchemaStructure(std::vector<Violation>* out) const {
  Status st = db_.schema().Validate();
  if (!st.ok()) {
    out->push_back(
        Violation{Violation::Rule::kSchemaStructure, st.message()});
  }
}

void ConsistencyChecker::CheckBaseclassPartition(
    std::vector<Violation>* out) const {
  const Schema& schema = db_.schema();
  // Every member of a baseclass must record that baseclass as its home, and
  // an entity must be listed by exactly the baseclass it records.
  std::map<EntityId, int> base_count;
  for (ClassId base : schema.Baseclasses()) {
    for (EntityId e : db_.Members(base)) {
      ++base_count[e];
      if (!db_.HasEntity(e) || db_.GetEntity(e).baseclass != base) {
        out->push_back(Violation{
            Violation::Rule::kBaseclassPartition,
            "entity '" + db_.NameOf(e) + "' listed in baseclass '" +
                schema.GetClass(base).name + "' it does not belong to"});
      }
    }
  }
  for (const auto& [e, n] : base_count) {
    if (n > 1) {
      out->push_back(Violation{
          Violation::Rule::kBaseclassPartition,
          "entity '" + db_.NameOf(e) + "' is in " + std::to_string(n) +
              " baseclasses; the partition must be disjoint"});
    }
  }
}

void ConsistencyChecker::CheckSubclassSubsets(std::vector<Violation>* out) const {
  const Schema& schema = db_.schema();
  for (ClassId cls : schema.AllClasses()) {
    const ClassDef& def = schema.GetClass(cls);
    for (ClassId parent : def.parents) {
      for (EntityId e : db_.Members(cls)) {
        if (!db_.IsMember(e, parent)) {
          out->push_back(Violation{
              Violation::Rule::kSubclassSubset,
              "entity '" + db_.NameOf(e) + "' is in subclass '" + def.name +
                  "' but not in its parent '" +
                  schema.GetClass(parent).name + "'"});
        }
      }
    }
  }
}

void ConsistencyChecker::CheckAttributeFunctions(
    std::vector<Violation>* out) const {
  const Schema& schema = db_.schema();
  for (ClassId cls : schema.AllClasses()) {
    const ClassDef& def = schema.GetClass(cls);
    for (AttributeId a : def.own_attributes) {
      const AttributeDef& attr = schema.GetAttribute(a);
      // Naming attributes are implicit (entity name <-> string entity) and
      // validated by CheckNamingUniqueness; reading them here would intern
      // string entities as a side effect, breaking save/load idempotence.
      if (attr.naming) continue;
      for (EntityId e : db_.Members(cls)) {
        if (!attr.multivalued) {
          EntityId v = db_.GetSingle(e, a);
          if (v != kNullEntity && !db_.IsMember(v, attr.value_class)) {
            out->push_back(Violation{
                Violation::Rule::kAttributeFunction,
                "attribute '" + attr.name + "' of '" + db_.NameOf(e) +
                    "' has value '" + db_.NameOf(v) +
                    "' outside value class '" +
                    schema.GetClass(attr.value_class).name + "'"});
          }
        } else {
          for (EntityId v : db_.GetMulti(e, a)) {
            if (v == kNullEntity || !db_.IsMember(v, attr.value_class)) {
              out->push_back(Violation{
                  Violation::Rule::kAttributeFunction,
                  "attribute '" + attr.name + "' of '" + db_.NameOf(e) +
                      "' contains '" + db_.NameOf(v) +
                      "' outside value class '" +
                      schema.GetClass(attr.value_class).name + "'"});
            }
          }
        }
      }
    }
  }
}

void ConsistencyChecker::CheckNamingUniqueness(
    std::vector<Violation>* out) const {
  const Schema& schema = db_.schema();
  for (ClassId base : schema.Baseclasses()) {
    std::unordered_set<std::string> seen;
    for (EntityId e : db_.Members(base)) {
      if (!seen.insert(db_.NameOf(e)).second) {
        out->push_back(Violation{
            Violation::Rule::kNamingUniqueness,
            "duplicate entity name '" + db_.NameOf(e) + "' in baseclass '" +
                schema.GetClass(base).name + "'"});
      }
    }
  }
}

void ConsistencyChecker::CheckGroupingDerivations(
    std::vector<Violation>* out) const {
  const Schema& schema = db_.schema();
  for (GroupingId g : schema.AllGroupings()) {
    const GroupingDef& def = schema.GetGrouping(g);
    // Re-derive the blocks from scratch.
    std::map<EntityId, EntitySet> expected;
    for (EntityId x : db_.Members(def.parent)) {
      for (EntityId v : db_.GetValueSet(x, def.on_attribute)) {
        expected[v].insert(x);
      }
    }
    const std::vector<GroupingBlock>& actual = db_.GroupingBlocks(g);
    bool mismatch = actual.size() != expected.size();
    if (!mismatch) {
      for (const GroupingBlock& block : actual) {
        auto it = expected.find(block.index);
        if (it == expected.end() || it->second != block.members) {
          mismatch = true;
          break;
        }
      }
    }
    if (mismatch) {
      out->push_back(Violation{
          Violation::Rule::kGroupingDerivation,
          "grouping '" + def.name +
              "' blocks differ from their derivation on attribute '" +
              schema.GetAttribute(def.on_attribute).name + "'"});
    }
  }
}

}  // namespace isis::sdm
