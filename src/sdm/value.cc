#include "sdm/value.h"

#include <cstdlib>

#include "common/strings.h"

namespace isis::sdm {

const char* BaseKindToString(BaseKind k) {
  switch (k) {
    case BaseKind::kNone:
      return "none";
    case BaseKind::kInteger:
      return "INTEGER";
    case BaseKind::kReal:
      return "REAL";
    case BaseKind::kBoolean:
      return "YES/NO";
    case BaseKind::kString:
      return "STRING";
  }
  return "?";
}

std::string Value::ToDisplayString() const {
  switch (kind()) {
    case BaseKind::kInteger:
      return std::to_string(integer());
    case BaseKind::kReal:
      return FormatReal(real());
    case BaseKind::kBoolean:
      return boolean() ? "YES" : "NO";
    case BaseKind::kString:
      return str();
    case BaseKind::kNone:
      break;
  }
  return "?";
}

Result<Value> Value::Parse(BaseKind kind, const std::string& text) {
  switch (kind) {
    case BaseKind::kInteger: {
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::ParseError("not an integer: '" + text + "'");
      }
      return Value::Integer(v);
    }
    case BaseKind::kReal: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::ParseError("not a real: '" + text + "'");
      }
      return Value::Real(v);
    }
    case BaseKind::kBoolean: {
      std::string lower = ToLower(text);
      if (lower == "yes" || lower == "true" || lower == "y") {
        return Value::Boolean(true);
      }
      if (lower == "no" || lower == "false" || lower == "n") {
        return Value::Boolean(false);
      }
      return Status::ParseError("not a YES/NO value: '" + text + "'");
    }
    case BaseKind::kString:
      return Value::String(text);
    case BaseKind::kNone:
      break;
  }
  return Status::InvalidArgument("cannot parse value for user baseclass");
}

}  // namespace isis::sdm
