#include "sdm/dot_export.h"

#include <set>
#include <sstream>

namespace isis::sdm {

namespace {

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

std::string ClassNode(const Schema& schema, ClassId c) {
  return Quote(schema.GetClass(c).name);
}

std::string GroupingNode(const Schema& schema, GroupingId g) {
  return Quote(schema.GetGrouping(g).name);
}

}  // namespace

std::string ExportDot(const Schema& schema, DotGraph which) {
  bool forest = which != DotGraph::kSemanticNetwork;
  bool network = which != DotGraph::kInheritanceForest;
  std::ostringstream out;
  out << "digraph isis {\n";
  out << "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";

  // Which predefined classes are referenced by emitted attribute arcs.
  std::set<std::int64_t> referenced_predefined;
  if (network) {
    for (ClassId c : schema.AllClasses()) {
      if (c.value() < 4) continue;
      for (AttributeId a : schema.GetClass(c).own_attributes) {
        const AttributeDef& def = schema.GetAttribute(a);
        if (def.naming || def.value_grouping.valid()) continue;
        if (def.value_class.value() < 4) {
          referenced_predefined.insert(def.value_class.value());
        }
      }
    }
  }

  // Nodes.
  for (ClassId c : schema.AllClasses()) {
    if (c.value() < 4 &&
        referenced_predefined.count(c.value()) == 0) {
      continue;
    }
    const ClassDef& def = schema.GetClass(c);
    out << "  " << ClassNode(schema, c) << " [";
    if (def.is_base()) {
      out << "style=\"filled\", fillcolor=\"lightgray\", ";
    } else if (def.membership == Membership::kDerived) {
      out << "style=\"rounded\", ";
    }
    out << "label=" << Quote(def.name) << "];\n";
  }
  for (GroupingId g : schema.AllGroupings()) {
    // Groupings are set nodes: dashed, per the paper's white set border.
    out << "  " << GroupingNode(schema, g) << " [style=\"dashed\"];\n";
  }

  if (forest) {
    for (ClassId c : schema.AllClasses()) {
      const ClassDef& def = schema.GetClass(c);
      for (ClassId p : def.parents) {
        out << "  " << ClassNode(schema, p) << " -> "
            << ClassNode(schema, c) << " [arrowhead=empty];\n";
      }
    }
    for (GroupingId g : schema.AllGroupings()) {
      const GroupingDef& def = schema.GetGrouping(g);
      out << "  " << ClassNode(schema, def.parent) << " -> "
          << GroupingNode(schema, g) << " [style=dotted, label="
          << Quote("on " + schema.GetAttribute(def.on_attribute).name)
          << "];\n";
    }
  }

  if (network) {
    for (ClassId c : schema.AllClasses()) {
      if (c.value() < 4) continue;
      for (AttributeId a : schema.GetClass(c).own_attributes) {
        const AttributeDef& def = schema.GetAttribute(a);
        if (def.naming) continue;
        std::string target =
            def.value_grouping.valid()
                ? GroupingNode(schema, def.value_grouping)
                : ClassNode(schema, def.value_class);
        // "a single arrow for singlevalued and a double one for
        // multivalued" — DOT's closest analogue is a parallel-line color
        // list; in overlay mode attribute arcs are blue to separate them
        // from inheritance edges.
        const char* base_color = which == DotGraph::kBoth ? "blue" : "black";
        std::string color = def.multivalued
                                ? std::string(base_color) + ":" + base_color
                                : base_color;
        out << "  " << ClassNode(schema, c) << " -> " << target
            << " [label=" << Quote(def.name) << ", color=" << Quote(color);
        if (def.multivalued) out << ", style=bold";
        if (which == DotGraph::kBoth) out << ", fontcolor=blue";
        out << "];\n";
      }
    }
  }

  out << "}\n";
  return out.str();
}

}  // namespace isis::sdm
