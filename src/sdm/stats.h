/// \file stats.h
/// \brief Database statistics and schema-design advisories — the paper's §5
/// wish to "add features to assist users in the process of designing their
/// schemas" [RBBCFKLR].
///
/// ComputeStats summarizes the database (per-class cardinalities, per-
/// attribute fill ratios and distinct-value counts, per-grouping block
/// shapes); DesignAdvisories turns the summary into actionable findings
/// (never-assigned attributes, empty classes, degenerate groupings,
/// subclasses equal to their parents) of the kind a design workbench would
/// surface.

#ifndef ISIS_SDM_STATS_H_
#define ISIS_SDM_STATS_H_

#include <string>
#include <vector>

#include "sdm/database.h"

namespace isis::sdm {

/// Cardinality summary of one class.
struct ClassStats {
  ClassId cls;
  std::string name;
  size_t members = 0;
  bool is_base = false;
  Membership membership = Membership::kEnumerated;
};

/// Value summary of one attribute over its owner's members.
struct AttributeStats {
  AttributeId attr;
  std::string name;       ///< Qualified "<owner>.<attr>".
  size_t owner_members = 0;
  size_t assigned = 0;     ///< Owners with a non-default value.
  size_t distinct_values = 0;
  double avg_set_size = 0.0;  ///< Multivalued: mean set size over assigned.
  bool multivalued = false;

  double fill_ratio() const {
    return owner_members == 0
               ? 0.0
               : static_cast<double>(assigned) / owner_members;
  }
};

/// Shape summary of one grouping.
struct GroupingStats {
  GroupingId grouping;
  std::string name;
  size_t blocks = 0;
  size_t largest_block = 0;
  size_t covered_members = 0;  ///< Parent members appearing in some block.
};

/// Whole-database summary.
struct DatabaseStats {
  size_t classes = 0;     ///< User classes (predefined excluded).
  size_t attributes = 0;  ///< Non-naming attributes.
  size_t groupings = 0;
  size_t entities = 0;    ///< Live entities excluding interned values.
  std::vector<ClassStats> per_class;
  std::vector<AttributeStats> per_attribute;
  std::vector<GroupingStats> per_grouping;
};

/// Computes the full summary (linear in data size).
DatabaseStats ComputeStats(const Database& db);

/// Schema-design findings derived from the statistics, one human-readable
/// sentence each. Empty means nothing noteworthy.
std::vector<std::string> DesignAdvisories(const Database& db,
                                          const DatabaseStats& stats);

/// A printable multi-line report (the `statistics` command's long form).
std::string RenderStatsReport(const DatabaseStats& stats);

}  // namespace isis::sdm

#endif  // ISIS_SDM_STATS_H_
