#include "sdm/database.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace isis::sdm {

const EntitySet Database::kEmptySet;

namespace {
/// Per-thread count of reads degraded by frozen interning (see the
/// "Concurrency" section of database.h). Thread-local so concurrent
/// shared-phase readers can each detect their own misses race-free.
thread_local std::int64_t tls_intern_misses = 0;

/// Source of instance_id(); starts at 1 so 0 means "no database".
std::atomic<std::uint64_t> next_db_instance{1};
}  // namespace

std::int64_t Database::InternMissCount() { return tls_intern_misses; }

Database::Database() : Database(Options{}) {}

Database::Database(Options options)
    : schema_(options.schema),
      options_(options),
      instance_id_(next_db_instance.fetch_add(1, std::memory_order_relaxed)) {
  // Slot 0 is the null entity: "a member of every class", never listed.
  Entity null_entity;
  null_entity.id = kNullEntity;
  null_entity.name = "(null)";
  entities_.push_back(std::move(null_entity));
  entity_live_.push_back(true);
}

// --- Schema mutations. ---

Result<ClassId> Database::CreateBaseclass(const std::string& name,
                                          const std::string& naming_attribute) {
  ISIS_ASSIGN_OR_RETURN(ClassId id,
                        schema_.CreateBaseclass(name, naming_attribute));
  members_[id.value()];  // ensure an (empty) member set exists
  return id;
}

Result<ClassId> Database::CreateSubclass(const std::string& name,
                                         ClassId parent,
                                         Membership membership) {
  ISIS_ASSIGN_OR_RETURN(ClassId id,
                        schema_.CreateSubclass(name, parent, membership));
  members_[id.value()];
  return id;
}

Status Database::AddParent(ClassId cls, ClassId extra_parent) {
  MutationScope scope(this);
  ISIS_RETURN_NOT_OK(schema_.AddParent(cls, extra_parent));
  NotifySchemaChange();
  // Subset consistency: members of cls must belong to the new parent too.
  for (EntityId e : Members(cls)) {
    ISIS_RETURN_NOT_OK(AddToClassInternal(e, extra_parent,
                                          /*allow_derived=*/true));
  }
  return Status::OK();
}

Status Database::DeleteClass(ClassId cls) {
  MutationScope scope(this);
  ISIS_RETURN_NOT_OK(schema_.DeleteClass(cls));
  members_.erase(cls.value());
  NotifySchemaChange();
  return Status::OK();
}

Status Database::RenameClass(ClassId cls, const std::string& new_name) {
  return schema_.RenameClass(cls, new_name);
}

Status Database::SetMembership(ClassId cls, Membership membership) {
  MutationScope scope(this);
  bool changed = schema_.HasClass(cls) &&
                 schema_.GetClass(cls).membership != membership;
  ISIS_RETURN_NOT_OK(schema_.SetMembership(cls, membership));
  if (changed) NotifySchemaChange();
  return Status::OK();
}

Status Database::SetAttributeOrigin(AttributeId attr, AttrOrigin origin) {
  return schema_.SetAttributeOrigin(attr, origin);
}

Result<AttributeId> Database::CreateAttribute(ClassId owner,
                                              const std::string& name,
                                              ClassId value_class,
                                              bool multivalued,
                                              AttrOrigin origin) {
  return schema_.CreateAttribute(owner, name, value_class, multivalued,
                                 origin);
}

Result<AttributeId> Database::CreateAttributeIntoGrouping(
    ClassId owner, const std::string& name, GroupingId grouping) {
  return schema_.CreateAttributeIntoGrouping(owner, name, grouping);
}

Status Database::SetValueClass(AttributeId attr, ClassId value_class) {
  MutationScope scope(this);
  ISIS_RETURN_NOT_OK(schema_.SetValueClass(attr, value_class));
  // Values outside the new value class reset to the defaults.
  const AttributeDef& def = schema_.GetAttribute(attr);
  if (!def.multivalued) {
    auto it = single_.find(attr.value());
    if (it != single_.end()) {
      std::vector<EntityId> reset;
      for (const auto& [e, v] : it->second) {
        if (v != kNullEntity && !IsMember(v, value_class)) reset.push_back(e);
      }
      for (EntityId e : reset) it->second.erase(e);
    }
  } else {
    auto it = multi_.find(attr.value());
    if (it != multi_.end()) {
      for (auto& [e, set] : it->second) {
        for (auto vi = set.begin(); vi != set.end();) {
          if (!IsMember(*vi, value_class)) {
            vi = set.erase(vi);
          } else {
            ++vi;
          }
        }
      }
    }
  }
  {
    MutexLock lock(lazy_mu_);
    MarkGroupingsDirtyOn(attr);
    auto vit = value_index_.find(attr.value());
    if (vit != value_index_.end()) vit->second.dirty = true;
  }
  NotifySchemaChange();
  return Status::OK();
}

Status Database::DeleteAttribute(AttributeId attr) {
  MutationScope scope(this);
  ISIS_RETURN_NOT_OK(schema_.DeleteAttribute(attr));
  single_.erase(attr.value());
  multi_.erase(attr.value());
  {
    MutexLock lock(lazy_mu_);
    value_index_.erase(attr.value());
  }
  NotifySchemaChange();
  return Status::OK();
}

Status Database::RenameAttribute(AttributeId attr,
                                 const std::string& new_name) {
  return schema_.RenameAttribute(attr, new_name);
}

Result<GroupingId> Database::CreateGrouping(const std::string& name,
                                            ClassId parent,
                                            AttributeId on_attribute) {
  ISIS_ASSIGN_OR_RETURN(GroupingId g,
                        schema_.CreateGrouping(name, parent, on_attribute));
  {
    MutexLock lock(lazy_mu_);
    grouping_cache_[g.value()];  // starts dirty
  }
  return g;
}

Status Database::DeleteGrouping(GroupingId g) {
  ISIS_RETURN_NOT_OK(schema_.DeleteGrouping(g));
  {
    MutexLock lock(lazy_mu_);
    grouping_cache_.erase(g.value());
  }
  return Status::OK();
}

Status Database::RenameGrouping(GroupingId g, const std::string& new_name) {
  return schema_.RenameGrouping(g, new_name);
}

// --- Entity lifecycle. ---

Result<EntityId> Database::CreateEntity(ClassId base, const std::string& name) {
  MutationScope scope(this);
  if (!schema_.HasClass(base)) {
    return Status::NotFound("baseclass does not exist");
  }
  const ClassDef& def = schema_.GetClass(base);
  if (!def.is_base()) {
    return Status::Consistency(
        "entities are created in baseclasses; use AddToClass for subclasses");
  }
  if (def.base_kind != BaseKind::kNone) {
    return Status::Consistency(
        "entities of predefined baseclasses are interned from values");
  }
  if (!IsValidName(name)) {
    return Status::InvalidArgument("invalid entity name: '" + name + "'");
  }
  auto& names = by_name_[base.value()];
  if (names.count(name) > 0) {
    return Status::AlreadyExists("entity '" + name +
                                 "' already exists in class '" + def.name +
                                 "'");
  }
  Entity e;
  e.id = EntityId(static_cast<std::int64_t>(entities_.size()));
  e.baseclass = base;
  e.name = name;
  names[name] = e.id;
  members_[base.value()].insert(e.id);
  entities_.push_back(std::move(e));
  entity_live_.push_back(true);
  EntityId id = entities_.back().id;
  OnMembershipChange(id, base, /*added=*/true);
  return id;
}

Result<EntityId> Database::InternValue(const Value& v) const {
  auto it = interned_.find(v);
  if (it != interned_.end()) return it->second;
  ClassId base = Schema::PredefinedClassFor(v.kind());
  if (!base.valid()) {
    return Status::InvalidArgument("cannot intern a value with no kind");
  }
  if (intern_frozen_.load(std::memory_order_relaxed)) {
    // Shared-phase read of a never-seen value: creating it here would
    // mutate the entity universe under concurrent readers. The caller
    // retries under the exclusive lock (see database.h, "Concurrency").
    return Status::Unavailable("interning is frozen; value '" +
                               v.ToDisplayString() +
                               "' needs the exclusive lock");
  }
  Entity e;
  e.id = EntityId(static_cast<std::int64_t>(entities_.size()));
  e.baseclass = base;
  e.name = v.ToDisplayString();
  e.value = v;
  e.has_value = true;
  interned_[v] = e.id;
  by_name_[base.value()].emplace(e.name, e.id);
  members_[base.value()].insert(e.id);
  entities_.push_back(std::move(e));
  entity_live_.push_back(true);
  // Interning grows a predefined class extent without firing observers, so
  // the data version must advance here: consumers that stamp results by
  // version (the query-result cache) see the bump and discard rather than
  // serve answers from before the new entity existed.
  version_.fetch_add(1, std::memory_order_acq_rel);
  return entities_.back().id;
}

namespace {
/// Checked unwrap for the convenience interners: a predefined-kind value
/// always interns unless interning is frozen, and these wrappers are
/// documented exclusive-phase / setup API -- a failure here is a caller
/// holding the wrong lock, which must not limp on.
EntityId InternOrDie(Result<EntityId> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "isis: intern failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).ValueOrDie();
}
}  // namespace

EntityId Database::InternInteger(std::int64_t v) const {
  return InternOrDie(InternValue(Value::Integer(v)));
}
EntityId Database::InternReal(double v) const {
  return InternOrDie(InternValue(Value::Real(v)));
}
EntityId Database::InternBoolean(bool v) const {
  return InternOrDie(InternValue(Value::Boolean(v)));
}
EntityId Database::InternString(const std::string& v) const {
  return InternOrDie(InternValue(Value::String(v)));
}

Result<EntityId> Database::FindEntity(ClassId base,
                                      const std::string& name) const {
  if (!schema_.HasClass(base)) {
    return Status::NotFound("baseclass does not exist");
  }
  const ClassDef& def = schema_.GetClass(base);
  if (def.base_kind != BaseKind::kNone) {
    ISIS_ASSIGN_OR_RETURN(Value v, Value::Parse(def.base_kind, name));
    return InternValue(v);
  }
  auto cit = by_name_.find(base.value());
  if (cit != by_name_.end()) {
    auto it = cit->second.find(name);
    if (it != cit->second.end()) return it->second;
  }
  return Status::NotFound("no entity '" + name + "' in class '" + def.name +
                          "'");
}

Result<EntityId> Database::FindMember(ClassId cls,
                                      const std::string& name) const {
  if (!schema_.HasClass(cls)) return Status::NotFound("class does not exist");
  ISIS_ASSIGN_OR_RETURN(EntityId e,
                        FindEntity(schema_.RootOf(cls), name));
  if (!IsMember(e, cls)) {
    return Status::NotFound("entity '" + name + "' is not a member of '" +
                            schema_.GetClass(cls).name + "'");
  }
  return e;
}

Status Database::RenameEntity(EntityId e, const std::string& new_name) {
  MutationScope scope(this);
  if (!HasEntity(e) || e == kNullEntity) {
    return Status::NotFound("entity does not exist");
  }
  Entity& ent = entities_[e.value()];
  if (ent.has_value) {
    return Status::Consistency(
        "entities of predefined baseclasses cannot be renamed");
  }
  if (ent.name == new_name) return Status::OK();
  if (!IsValidName(new_name)) {
    return Status::InvalidArgument("invalid entity name: '" + new_name + "'");
  }
  auto& names = by_name_[ent.baseclass.value()];
  if (names.count(new_name) > 0) {
    return Status::AlreadyExists("entity '" + new_name + "' already exists");
  }
  std::string old_name = ent.name;
  names.erase(ent.name);
  ent.name = new_name;
  names[new_name] = e;
  NotifyRename(e, ent.baseclass, old_name, new_name);
  return Status::OK();
}

Status Database::DeleteEntity(EntityId e) {
  MutationScope scope(this);
  if (!HasEntity(e) || e == kNullEntity) {
    return Status::NotFound("entity does not exist");
  }
  const Entity& ent = entities_[e.value()];
  // Remove from every class (deepest first is unnecessary: we scrub after).
  std::vector<ClassId> was_member;
  for (ClassId c : schema_.SelfAndDescendants(ent.baseclass)) {
    auto it = members_.find(c.value());
    if (it != members_.end() && it->second.erase(e) > 0) {
      was_member.push_back(c);
      OnMembershipChange(e, c, /*added=*/false);
    }
  }
  ScrubAllReferences(e);
  // Drop the entity's own attribute rows (keeping the value indexes in
  // step: these drops fire no value-change notification).
  for (auto& [attr, rows] : single_) {
    if (rows.count(e) > 0) {
      ValueIndexDropRow(AttributeId(attr), e);
      rows.erase(e);
    }
  }
  for (auto& [attr, rows] : multi_) {
    if (rows.count(e) > 0) {
      ValueIndexDropRow(AttributeId(attr), e);
      rows.erase(e);
    }
  }
  if (ent.has_value) {
    interned_.erase(ent.value);
  }
  by_name_[ent.baseclass.value()].erase(ent.name);
  entity_live_[e.value()] = false;
  return Status::OK();
}

bool Database::HasEntity(EntityId e) const {
  return e.valid() && static_cast<size_t>(e.value()) < entities_.size() &&
         entity_live_[e.value()];
}

const Entity& Database::GetEntity(EntityId e) const {
  return entities_[e.value()];
}

std::vector<EntityId> Database::AllEntities() const {
  std::vector<EntityId> out;
  out.reserve(entities_.size() > 0 ? entities_.size() - 1 : 0);
  for (size_t i = 1; i < entities_.size(); ++i) {
    if (entity_live_[i]) out.push_back(EntityId(static_cast<std::int64_t>(i)));
  }
  return out;
}

const std::string& Database::NameOf(EntityId e) const {
  static const std::string kUnknown = "(?)";
  if (!e.valid() || static_cast<size_t>(e.value()) >= entities_.size()) {
    return kUnknown;
  }
  return entities_[e.value()].name;
}

// --- Membership. ---

Status Database::AddToClassInternal(EntityId e, ClassId cls,
                                    bool allow_derived) {
  if (!HasEntity(e) || e == kNullEntity) {
    return Status::NotFound("entity does not exist");
  }
  if (!schema_.HasClass(cls)) return Status::NotFound("class does not exist");
  const ClassDef& def = schema_.GetClass(cls);
  if (def.is_base()) {
    if (GetEntity(e).baseclass == cls) return Status::OK();  // already there
    return Status::Consistency(
        "an entity belongs to exactly one baseclass (paper: the entity "
        "universe is partitioned into disjoint baseclasses)");
  }
  if (schema_.RootOf(cls) != GetEntity(e).baseclass) {
    return Status::Consistency("entity '" + NameOf(e) +
                               "' belongs to a different baseclass tree");
  }
  if (!allow_derived && def.membership == Membership::kDerived) {
    return Status::Consistency(
        "membership of a derived class is determined by its predicate");
  }
  if (IsMember(e, cls)) return Status::OK();
  // The paper's insertion rule: inserting into a class requires inserting
  // into its parent(s) as well; we propagate up the ancestor chain.
  for (ClassId p : def.parents) {
    ISIS_RETURN_NOT_OK(AddToClassInternal(e, p, /*allow_derived=*/true));
  }
  members_[cls.value()].insert(e);
  OnMembershipChange(e, cls, /*added=*/true);
  return Status::OK();
}

Status Database::AddToClass(EntityId e, ClassId cls) {
  MutationScope scope(this);
  return AddToClassInternal(e, cls, /*allow_derived=*/false);
}

Status Database::AddToDerivedClass(EntityId e, ClassId cls) {
  MutationScope scope(this);
  return AddToClassInternal(e, cls, /*allow_derived=*/true);
}

Status Database::RemoveFromClass(EntityId e, ClassId cls) {
  MutationScope scope(this);
  if (!HasEntity(e) || e == kNullEntity) {
    return Status::NotFound("entity does not exist");
  }
  if (!schema_.HasClass(cls)) return Status::NotFound("class does not exist");
  if (schema_.GetClass(cls).is_base()) {
    return Status::Consistency(
        "removal from a baseclass deletes the entity; use DeleteEntity");
  }
  // Subset consistency: cascade removal to every descendant.
  std::vector<ClassId> affected;
  for (ClassId c : schema_.SelfAndDescendants(cls)) {
    auto it = members_.find(c.value());
    if (it != members_.end() && it->second.erase(e) > 0) {
      affected.push_back(c);
      OnMembershipChange(e, c, /*added=*/false);
    }
  }
  ScrubReferences(e, affected);
  // The entity's own rows for attributes defined on the classes it left are
  // no longer meaningful; drop them so a later re-insertion starts from the
  // defaults. (Grouping blocks were already fixed by the membership hooks.)
  for (ClassId c : affected) {
    for (AttributeId a : schema_.GetClass(c).own_attributes) {
      auto sit = single_.find(a.value());
      if (sit != single_.end() && sit->second.count(e) > 0) {
        ValueIndexDropRow(a, e);
        sit->second.erase(e);
      }
      auto mit = multi_.find(a.value());
      if (mit != multi_.end() && mit->second.count(e) > 0) {
        ValueIndexDropRow(a, e);
        mit->second.erase(e);
      }
    }
  }
  return Status::OK();
}

Status Database::SetDerivedMembers(ClassId cls, const EntitySet& new_members) {
  MutationScope scope(this);
  if (!schema_.HasClass(cls)) return Status::NotFound("class does not exist");
  if (schema_.GetClass(cls).membership != Membership::kDerived) {
    return Status::InvalidArgument("class is not derived");
  }
  EntitySet current = Members(cls);
  for (EntityId e : current) {
    if (new_members.count(e) == 0) {
      ISIS_RETURN_NOT_OK(RemoveFromClass(e, cls));
    }
  }
  for (EntityId e : new_members) {
    if (current.count(e) == 0) {
      ISIS_RETURN_NOT_OK(AddToDerivedClass(e, cls));
    }
  }
  return Status::OK();
}

bool Database::IsMember(EntityId e, ClassId cls) const {
  if (e == kNullEntity) return true;  // the null entity is in every class
  if (!HasEntity(e) || !schema_.HasClass(cls)) return false;
  const ClassDef& def = schema_.GetClass(cls);
  if (def.is_base()) return GetEntity(e).baseclass == cls;
  auto it = members_.find(cls.value());
  return it != members_.end() && it->second.count(e) > 0;
}

const EntitySet& Database::Members(ClassId cls) const {
  auto it = members_.find(cls.value());
  return it == members_.end() ? kEmptySet : it->second;
}

// --- Attribute values. ---

Status Database::CheckAttributeApplies(EntityId e, AttributeId attr,
                                       bool want_multivalued) const {
  if (!HasEntity(e) || e == kNullEntity) {
    return Status::NotFound("entity does not exist");
  }
  if (!schema_.HasAttribute(attr)) {
    return Status::NotFound("attribute does not exist");
  }
  const AttributeDef& def = schema_.GetAttribute(attr);
  if (def.multivalued != want_multivalued) {
    return Status::TypeError(std::string("attribute '") + def.name + "' is " +
                             (def.multivalued ? "multivalued" : "singlevalued"));
  }
  if (!IsMember(e, def.owner)) {
    return Status::Consistency("entity '" + NameOf(e) +
                               "' is not a member of class '" +
                               schema_.GetClass(def.owner).name +
                               "' defining attribute '" + def.name + "'");
  }
  return Status::OK();
}

Status Database::CheckValueAllowed(AttributeId attr, EntityId value) const {
  if (value == kNullEntity) return Status::OK();
  if (!HasEntity(value)) return Status::NotFound("value entity does not exist");
  const AttributeDef& def = schema_.GetAttribute(attr);
  if (!IsMember(value, def.value_class)) {
    return Status::Consistency("entity '" + NameOf(value) +
                               "' is not a member of value class '" +
                               schema_.GetClass(def.value_class).name + "'");
  }
  return Status::OK();
}

Status Database::SetSingle(EntityId e, AttributeId attr, EntityId value) {
  MutationScope scope(this);
  ISIS_RETURN_NOT_OK(CheckAttributeApplies(e, attr, /*want_multivalued=*/false));
  const AttributeDef& def = schema_.GetAttribute(attr);
  if (def.naming) {
    // Assigning the naming attribute renames the entity.
    if (value == kNullEntity || !HasEntity(value) ||
        !GetEntity(value).has_value ||
        GetEntity(value).value.kind() != BaseKind::kString) {
      return Status::Consistency("naming attribute values must be strings");
    }
    return RenameEntity(e, GetEntity(value).value.str());
  }
  ISIS_RETURN_NOT_OK(CheckValueAllowed(attr, value));
  EntitySet before = GetValueSet(e, attr);
  auto& rows = single_[attr.value()];
  if (value == kNullEntity) {
    rows.erase(e);
  } else {
    rows[e] = value;
  }
  OnAttributeValueChange(e, attr, before, GetValueSet(e, attr));
  return Status::OK();
}

Status Database::AddToMulti(EntityId e, AttributeId attr, EntityId value) {
  MutationScope scope(this);
  ISIS_RETURN_NOT_OK(CheckAttributeApplies(e, attr, /*want_multivalued=*/true));
  if (value == kNullEntity) {
    return Status::InvalidArgument(
        "the null entity cannot be added to a multivalued attribute");
  }
  ISIS_RETURN_NOT_OK(CheckValueAllowed(attr, value));
  EntitySet before = GetValueSet(e, attr);
  multi_[attr.value()][e].insert(value);
  OnAttributeValueChange(e, attr, before, GetValueSet(e, attr));
  return Status::OK();
}

Status Database::RemoveFromMulti(EntityId e, AttributeId attr,
                                 EntityId value) {
  MutationScope scope(this);
  ISIS_RETURN_NOT_OK(CheckAttributeApplies(e, attr, /*want_multivalued=*/true));
  EntitySet before = GetValueSet(e, attr);
  auto it = multi_.find(attr.value());
  if (it != multi_.end()) {
    auto row = it->second.find(e);
    if (row != it->second.end()) row->second.erase(value);
  }
  OnAttributeValueChange(e, attr, before, GetValueSet(e, attr));
  return Status::OK();
}

Status Database::SetMulti(EntityId e, AttributeId attr,
                          const EntitySet& values) {
  MutationScope scope(this);
  ISIS_RETURN_NOT_OK(CheckAttributeApplies(e, attr, /*want_multivalued=*/true));
  for (EntityId v : values) {
    if (v == kNullEntity) {
      return Status::InvalidArgument(
          "the null entity cannot be a member of a multivalued attribute");
    }
    ISIS_RETURN_NOT_OK(CheckValueAllowed(attr, v));
  }
  EntitySet before = GetValueSet(e, attr);
  multi_[attr.value()][e] = values;
  OnAttributeValueChange(e, attr, before, GetValueSet(e, attr));
  return Status::OK();
}

EntityId Database::GetSingle(EntityId e, AttributeId attr) const {
  if (!schema_.HasAttribute(attr)) return kNullEntity;
  const AttributeDef& def = schema_.GetAttribute(attr);
  if (def.naming) {
    if (!HasEntity(e) || e == kNullEntity) return kNullEntity;
    // The name string is interned on first read. With interning frozen a
    // miss cannot be served; record it thread-locally and degrade — the
    // caller (the server's shared-lock read path) detects the bumped
    // counter and retries under the exclusive lock.
    Result<EntityId> interned = InternValue(Value::String(NameOf(e)));
    if (!interned.ok()) {
      ++tls_intern_misses;
      return kNullEntity;
    }
    return *interned;
  }
  auto it = single_.find(attr.value());
  if (it == single_.end()) return kNullEntity;
  auto row = it->second.find(e);
  return row == it->second.end() ? kNullEntity : row->second;
}

const EntitySet& Database::GetMulti(EntityId e, AttributeId attr) const {
  auto it = multi_.find(attr.value());
  if (it == multi_.end()) return kEmptySet;
  auto row = it->second.find(e);
  return row == it->second.end() ? kEmptySet : row->second;
}

EntitySet Database::GetValueSet(EntityId e, AttributeId attr) const {
  if (!schema_.HasAttribute(attr)) return {};
  const AttributeDef& def = schema_.GetAttribute(attr);
  if (def.multivalued) return GetMulti(e, attr);
  EntityId v = GetSingle(e, attr);
  if (v == kNullEntity) return {};
  return {v};
}

// --- Maps. ---

EntitySet Database::EvaluateMap(const EntitySet& start,
                                std::span<const AttributeId> path) const {
  EntitySet frontier;
  for (EntityId e : start) {
    if (e != kNullEntity && HasEntity(e)) frontier.insert(e);
  }
  for (AttributeId attr : path) {
    if (!schema_.HasAttribute(attr)) return {};
    const AttributeDef& def = schema_.GetAttribute(attr);
    EntitySet next;
    for (EntityId e : frontier) {
      if (!IsMember(e, def.owner)) continue;
      for (EntityId v : GetValueSet(e, attr)) {
        if (v != kNullEntity) next.insert(v);
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

EntitySet Database::EvaluateMap(EntityId start,
                                std::span<const AttributeId> path) const {
  return EvaluateMap(EntitySet{start}, path);
}

Result<ClassId> Database::MapTerminalClass(
    ClassId from, std::span<const AttributeId> path) const {
  if (!schema_.HasClass(from)) return Status::NotFound("class does not exist");
  ClassId cur = from;
  for (AttributeId attr : path) {
    if (!schema_.HasAttribute(attr)) {
      return Status::NotFound("attribute on map path does not exist");
    }
    if (!schema_.AttributeVisibleOn(cur, attr)) {
      return Status::TypeError("attribute '" +
                               schema_.GetAttribute(attr).name +
                               "' is not visible on class '" +
                               schema_.GetClass(cur).name + "'");
    }
    cur = schema_.GetAttribute(attr).value_class;
  }
  return cur;
}

// --- Groupings as data. ---

const std::vector<GroupingBlock>& Database::GroupingBlocks(GroupingId g) const {
  // Build-then-publish under lazy_mu_: concurrent shared-phase readers
  // serialize on the (at most one) rebuild; the returned reference stays
  // valid and immutable until the next exclusive-phase mutation.
  MutexLock lock(lazy_mu_);
  GroupingCache& cache = grouping_cache_[g.value()];
  if (cache.dirty) RebuildGrouping(g, &cache);
  return cache.blocks;
}

EntitySet Database::GetGroupingBlock(GroupingId g, EntityId index) const {
  MutexLock lock(lazy_mu_);
  GroupingCache& cache = grouping_cache_[g.value()];
  if (cache.dirty) RebuildGrouping(g, &cache);
  auto it = cache.block_of_index.find(index);
  if (it == cache.block_of_index.end()) return {};
  return cache.blocks[it->second].members;
}

void Database::RebuildGrouping(GroupingId g, GroupingCache* cache) const {
  cache->blocks.clear();
  cache->block_of_index.clear();
  if (!schema_.HasGrouping(g)) {
    cache->dirty = false;
    return;
  }
  const GroupingDef& def = schema_.GetGrouping(g);
  // Deterministic: iterate members in id order; blocks sorted by index id.
  std::map<EntityId, EntitySet> acc;
  for (EntityId x : Members(def.parent)) {
    for (EntityId v : GetValueSet(x, def.on_attribute)) {
      acc[v].insert(x);
    }
  }
  for (auto& [index, set] : acc) {
    cache->block_of_index[index] = cache->blocks.size();
    cache->blocks.push_back(GroupingBlock{index, std::move(set)});
  }
  cache->dirty = false;
  ++stats_.grouping_rebuilds;
}

void Database::GroupingInsert(GroupingCache* cache, EntityId index,
                              EntityId member) {
  auto it = cache->block_of_index.find(index);
  if (it == cache->block_of_index.end()) {
    // Insert the new block keeping blocks sorted by index id.
    size_t pos = 0;
    while (pos < cache->blocks.size() && cache->blocks[pos].index < index) {
      ++pos;
    }
    cache->blocks.insert(cache->blocks.begin() + pos,
                         GroupingBlock{index, {member}});
    for (auto& [idx, p] : cache->block_of_index) {
      (void)idx;
      if (p >= pos) ++p;
    }
    cache->block_of_index[index] = pos;
  } else {
    cache->blocks[it->second].members.insert(member);
  }
}

void Database::GroupingErase(GroupingCache* cache, EntityId index,
                             EntityId member) {
  auto it = cache->block_of_index.find(index);
  if (it == cache->block_of_index.end()) return;
  size_t pos = it->second;
  cache->blocks[pos].members.erase(member);
  if (cache->blocks[pos].members.empty()) {
    cache->blocks.erase(cache->blocks.begin() + pos);
    cache->block_of_index.erase(it);
    for (auto& [idx, p] : cache->block_of_index) {
      (void)idx;
      if (p > pos) --p;
    }
  }
}

void Database::IncrementalGroupingUpdate(GroupingId g, EntityId e,
                                         const EntitySet& before,
                                         const EntitySet& after) {
  GroupingCache& cache = grouping_cache_[g.value()];
  if (cache.dirty) return;  // will rebuild at next read anyway
  for (EntityId v : before) {
    if (after.count(v) == 0) GroupingErase(&cache, v, e);
  }
  for (EntityId v : after) {
    if (before.count(v) == 0) GroupingInsert(&cache, v, e);
  }
  ++stats_.grouping_incremental_updates;
}

// --- Attribute-value indexes. ---

bool Database::ValueIndexable(AttributeId attr) const {
  return schema_.HasAttribute(attr) && !schema_.GetAttribute(attr).naming;
}

Database::ValueIndex* Database::EnsureValueIndexLocked(AttributeId attr) const {
  if (!ValueIndexable(attr)) return nullptr;
  ValueIndex& idx = value_index_[attr.value()];
  if (!idx.dirty) return &idx;
  idx.owners_by_value.clear();
  idx.postings = 0;
  // Built from the stored rows, not by scanning members: rows exist exactly
  // for owners with a (non-default) value, which is also the set of entities
  // a probe may legally return.
  if (!schema_.GetAttribute(attr).multivalued) {
    auto it = single_.find(attr.value());
    if (it != single_.end()) {
      for (const auto& [owner, v] : it->second) {
        if (v == kNullEntity) continue;
        idx.owners_by_value[v].insert(owner);
        ++idx.postings;
      }
    }
  } else {
    auto it = multi_.find(attr.value());
    if (it != multi_.end()) {
      for (const auto& [owner, values] : it->second) {
        for (EntityId v : values) {
          idx.owners_by_value[v].insert(owner);
          ++idx.postings;
        }
      }
    }
  }
  idx.dirty = false;
  ++stats_.value_index_rebuilds;
  return &idx;
}

const EntitySet& Database::ValueIndexProbe(AttributeId attr,
                                           EntityId value) const {
  MutexLock lock(lazy_mu_);
  ValueIndex* idx = EnsureValueIndexLocked(attr);
  ++stats_.value_index_probes;
  if (idx == nullptr) return kEmptySet;
  auto it = idx->owners_by_value.find(value);
  return it == idx->owners_by_value.end() ? kEmptySet : it->second;
}

std::int64_t Database::ValueIndexDistinctValues(AttributeId attr) const {
  MutexLock lock(lazy_mu_);
  ValueIndex* idx = EnsureValueIndexLocked(attr);
  return idx == nullptr
             ? 0
             : static_cast<std::int64_t>(idx->owners_by_value.size());
}

std::int64_t Database::ValueIndexPostings(AttributeId attr) const {
  MutexLock lock(lazy_mu_);
  ValueIndex* idx = EnsureValueIndexLocked(attr);
  return idx == nullptr ? 0 : idx->postings;
}

void Database::ValueIndexUpdate(AttributeId attr, EntityId e,
                                const EntitySet& before,
                                const EntitySet& after) {
  auto it = value_index_.find(attr.value());
  if (it == value_index_.end() || it->second.dirty) return;
  ValueIndex& idx = it->second;
  for (EntityId v : before) {
    if (after.count(v) > 0) continue;
    auto oit = idx.owners_by_value.find(v);
    if (oit == idx.owners_by_value.end()) continue;
    idx.postings -= static_cast<std::int64_t>(oit->second.erase(e));
    if (oit->second.empty()) idx.owners_by_value.erase(oit);
  }
  for (EntityId v : after) {
    if (before.count(v) > 0) continue;
    if (idx.owners_by_value[v].insert(e).second) ++idx.postings;
  }
  ++stats_.value_index_incremental_updates;
}

void Database::ValueIndexDropRow(AttributeId attr, EntityId e) {
  MutexLock lock(lazy_mu_);
  auto it = value_index_.find(attr.value());
  if (it == value_index_.end() || it->second.dirty) return;
  ValueIndexUpdate(attr, e, GetValueSet(e, attr), kEmptySet);
}

void Database::OnAttributeValueChange(EntityId e, AttributeId attr,
                                      const EntitySet& before,
                                      const EntitySet& after) {
  if (before == after) return;
  // Observer fan-out stays outside lazy_mu_: observers (live views, the
  // server's delta collector) may re-enter the database's read surface.
  for (MutationObserver* o : observers_) {
    o->OnAttributeValue(e, attr, before, after);
  }
  MutexLock lock(lazy_mu_);
  ValueIndexUpdate(attr, e, before, after);
  for (GroupingId g : schema_.AllGroupings()) {
    const GroupingDef& def = schema_.GetGrouping(g);
    if (def.on_attribute != attr) continue;
    if (!IsMember(e, def.parent)) continue;
    if (options_.incremental_groupings) {
      IncrementalGroupingUpdate(g, e, before, after);
    } else {
      grouping_cache_[g.value()].dirty = true;
    }
  }
}

void Database::OnMembershipChange(EntityId e, ClassId cls, bool added) {
  for (MutationObserver* o : observers_) {
    o->OnMembership(e, cls, added);
  }
  MutexLock lock(lazy_mu_);
  for (GroupingId g : schema_.AllGroupings()) {
    const GroupingDef& def = schema_.GetGrouping(g);
    if (def.parent != cls) continue;
    if (options_.incremental_groupings) {
      GroupingCache& cache = grouping_cache_[g.value()];
      if (cache.dirty) continue;
      EntitySet values = GetValueSet(e, def.on_attribute);
      for (EntityId v : values) {
        if (added) {
          GroupingInsert(&cache, v, e);
        } else {
          GroupingErase(&cache, v, e);
        }
      }
      ++stats_.grouping_incremental_updates;
    } else {
      grouping_cache_[g.value()].dirty = true;
    }
  }
}

void Database::AddObserver(MutationObserver* observer) {
  observers_.push_back(observer);
}

void Database::RemoveObserver(MutationObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

void Database::NotifySchemaChange() {
  for (MutationObserver* o : observers_) o->OnSchemaChange();
}

void Database::NotifySettled() {
  for (MutationObserver* o : observers_) o->OnMutationsSettled();
}

void Database::NotifyRename(EntityId e, ClassId base,
                            const std::string& old_name,
                            const std::string& new_name) {
  if (observers_.empty()) return;
  // A rename is a change of the naming attribute's (virtual) value.
  for (AttributeId a : schema_.GetClass(base).own_attributes) {
    if (!schema_.GetAttribute(a).naming) continue;
    EntitySet before{InternString(old_name)};
    EntitySet after{InternString(new_name)};
    for (MutationObserver* o : observers_) {
      o->OnAttributeValue(e, a, before, after);
    }
    return;
  }
}

void Database::MarkGroupingsDirtyOn(AttributeId attr) {
  for (GroupingId g : schema_.AllGroupings()) {
    if (schema_.GetGrouping(g).on_attribute == attr) {
      grouping_cache_[g.value()].dirty = true;
    }
  }
}

// --- Restore API. ---

Status Database::RestoreEntity(const Entity& e) {
  if (!e.id.valid() || static_cast<size_t>(e.id.value()) < entities_.size()) {
    return Status::ParseError("entity id collides with an existing slot");
  }
  if (!schema_.HasClass(e.baseclass) ||
      !schema_.GetClass(e.baseclass).is_base()) {
    return Status::ParseError("restored entity has no valid baseclass");
  }
  auto& names = by_name_[e.baseclass.value()];
  if (names.count(e.name) > 0) {
    return Status::ParseError("duplicate entity name on restore: '" + e.name +
                              "'");
  }
  while (entities_.size() < static_cast<size_t>(e.id.value())) {
    Entity dead;
    dead.id = EntityId(static_cast<std::int64_t>(entities_.size()));
    entities_.push_back(std::move(dead));
    entity_live_.push_back(false);
  }
  names[e.name] = e.id;
  if (e.has_value) interned_[e.value] = e.id;
  members_[e.baseclass.value()].insert(e.id);
  entities_.push_back(e);
  entity_live_.push_back(true);
  // Restore bypasses observers; advance the version stamp so anything
  // holding version-stamped results across a load discards them.
  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Database::RestoreMembers(ClassId cls, EntitySet members) {
  if (!schema_.HasClass(cls)) {
    return Status::ParseError("restored membership for a dead class");
  }
  if (schema_.GetClass(cls).is_base()) {
    return Status::ParseError(
        "baseclass membership is restored entity by entity");
  }
  members_[cls.value()] = std::move(members);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Database::RestoreSingle(AttributeId attr, EntityId e, EntityId value) {
  if (!schema_.HasAttribute(attr) || schema_.GetAttribute(attr).multivalued) {
    return Status::ParseError("bad singlevalued attribute slot on restore");
  }
  if (value != kNullEntity) single_[attr.value()][e] = value;
  version_.fetch_add(1, std::memory_order_acq_rel);
  MutexLock lock(lazy_mu_);
  auto it = value_index_.find(attr.value());
  if (it != value_index_.end()) it->second.dirty = true;
  return Status::OK();
}

Status Database::RestoreMulti(AttributeId attr, EntityId e, EntitySet values) {
  if (!schema_.HasAttribute(attr) || !schema_.GetAttribute(attr).multivalued) {
    return Status::ParseError("bad multivalued attribute slot on restore");
  }
  if (!values.empty()) multi_[attr.value()][e] = std::move(values);
  version_.fetch_add(1, std::memory_order_acq_rel);
  MutexLock lock(lazy_mu_);
  auto it = value_index_.find(attr.value());
  if (it != value_index_.end()) it->second.dirty = true;
  return Status::OK();
}

// --- Reference scrubbing. ---

void Database::ScrubReferences(EntityId e, const std::vector<ClassId>& classes) {
  if (classes.empty()) return;
  for (ClassId vc : classes) {
    for (const Schema::NetworkArc& arc :
         schema_.IncomingArcs(SchemaNode::Class(vc))) {
      const AttributeDef& def = schema_.GetAttribute(arc.attribute);
      // The entity may still be a member via some other class in rare
      // multi-parent layouts; re-check before scrubbing.
      if (IsMember(e, def.value_class)) continue;
      if (!def.multivalued) {
        auto it = single_.find(def.id.value());
        if (it == single_.end()) continue;
        std::vector<EntityId> owners;
        for (const auto& [owner, v] : it->second) {
          if (v == e) owners.push_back(owner);
        }
        for (EntityId owner : owners) {
          EntitySet before{e};
          it->second.erase(owner);
          OnAttributeValueChange(owner, def.id, before, {});
        }
      } else {
        auto it = multi_.find(def.id.value());
        if (it == multi_.end()) continue;
        for (auto& [owner, set] : it->second) {
          if (set.erase(e) > 0) {
            EntitySet after = set;
            EntitySet before = after;
            before.insert(e);
            OnAttributeValueChange(owner, def.id, before, after);
          }
        }
      }
    }
  }
}

void Database::ScrubAllReferences(EntityId e) {
  for (auto& [attr_raw, rows] : single_) {
    AttributeId attr(attr_raw);
    std::vector<EntityId> owners;
    for (const auto& [owner, v] : rows) {
      if (v == e) owners.push_back(owner);
    }
    for (EntityId owner : owners) {
      EntitySet before{e};
      rows.erase(owner);
      OnAttributeValueChange(owner, attr, before, {});
    }
  }
  for (auto& [attr_raw, rows] : multi_) {
    AttributeId attr(attr_raw);
    for (auto& [owner, set] : rows) {
      if (set.erase(e) > 0) {
        EntitySet after = set;
        EntitySet before = after;
        before.insert(e);
        OnAttributeValueChange(owner, attr, before, after);
      }
    }
  }
}

}  // namespace isis::sdm
