/// \file value.h
/// \brief Primitive values of the four predefined baseclasses.
///
/// The paper (§2) fixes four predefined baseclasses — the Integers, the
/// Reals, the Booleans (Yes/No), and the Strings — and assumes they "contain
/// as data all integers, booleans, reals and strings of interest". In the
/// engine, entities of these classes are interned lazily: referencing the
/// integer 4 creates (once) an entity whose identity is the value 4.

#ifndef ISIS_SDM_VALUE_H_
#define ISIS_SDM_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace isis::sdm {

/// Which predefined baseclass a value belongs to.
enum class BaseKind {
  kNone = 0,  ///< A user-defined baseclass (entities are named objects).
  kInteger,
  kReal,
  kBoolean,
  kString,
};

const char* BaseKindToString(BaseKind k);

/// \brief A primitive value: int64, double, bool or string.
///
/// Identity of predefined-baseclass entities. Ordering is defined within a
/// kind only (the paper's ordering operators <=, > apply to singleton sets
/// of comparable entities).
class Value {
 public:
  Value() : repr_(std::int64_t{0}) {}
  static Value Integer(std::int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value Boolean(bool v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }

  BaseKind kind() const {
    switch (repr_.index()) {
      case 0:
        return BaseKind::kInteger;
      case 1:
        return BaseKind::kReal;
      case 2:
        return BaseKind::kBoolean;
      default:
        return BaseKind::kString;
    }
  }

  std::int64_t integer() const { return std::get<std::int64_t>(repr_); }
  double real() const { return std::get<double>(repr_); }
  bool boolean() const { return std::get<bool>(repr_); }
  const std::string& str() const { return std::get<std::string>(repr_); }

  /// Display form; for Booleans the paper's YES/NO.
  std::string ToDisplayString() const;

  /// Parses `text` as a value of baseclass kind `kind`.
  static Result<Value> Parse(BaseKind kind, const std::string& text);

  /// Total order within a kind; cross-kind compares by kind index (used only
  /// for deterministic container ordering, never exposed as a comparison
  /// result to the query language).
  friend bool operator<(const Value& a, const Value& b) {
    return a.repr_ < b.repr_;
  }
  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }

 private:
  using Repr = std::variant<std::int64_t, double, bool, std::string>;
  explicit Value(Repr r) : repr_(std::move(r)) {}
  Repr repr_;
};

}  // namespace isis::sdm

#endif  // ISIS_SDM_VALUE_H_
