#include "sdm/schema.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>
#include <unordered_map>

#include "common/strings.h"

namespace isis::sdm {

const char* MembershipToString(Membership m) {
  switch (m) {
    case Membership::kBase:
      return "base";
    case Membership::kEnumerated:
      return "enumerated";
    case Membership::kDerived:
      return "derived";
  }
  return "?";
}

Schema::Schema() : Schema(Options{}) {}

Schema::Schema(Options options) : options_(options) {
  // The four predefined baseclasses, in the fixed id order of the static
  // accessors. Their naming attribute renders an entity's value.
  struct Predef {
    const char* name;
    BaseKind kind;
  };
  static const Predef kPredefs[] = {
      {"INTEGER", BaseKind::kInteger},
      {"REAL", BaseKind::kReal},
      {"YES/NO", BaseKind::kBoolean},
      {"STRING", BaseKind::kString},
  };
  // All four classes first (the naming attributes reference STRING, which
  // is created last), then the naming attributes in the same id order.
  for (const Predef& p : kPredefs) {
    // Constructor-time creation of fixed names cannot fail.
    Result<ClassId> made =
        CreateClassNode(p.name, {}, Membership::kBase, p.kind);
    if (!made.ok()) std::abort();
  }
  for (const Predef& p : kPredefs) {
    Result<ClassId> id = FindClass(p.name);
    if (!id.ok()) std::abort();
    Result<AttributeId> naming =
        CreateAttribute(*id, "name", kStrings(), /*multivalued=*/false);
    if (!naming.ok()) std::abort();
    attributes_[naming->value()].naming = true;
  }
}

ClassId Schema::PredefinedClassFor(BaseKind kind) {
  switch (kind) {
    case BaseKind::kInteger:
      return kIntegers();
    case BaseKind::kReal:
      return kReals();
    case BaseKind::kBoolean:
      return kBooleans();
    case BaseKind::kString:
      return kStrings();
    case BaseKind::kNone:
      break;
  }
  return ClassId();
}

Status Schema::CheckNameFree(const std::string& name) const {
  if (!IsValidName(name)) {
    return Status::InvalidArgument("invalid name: '" + name + "'");
  }
  // Classes and groupings share one namespace: both appear as nodes of the
  // inheritance forest and the semantic network.
  if (class_by_name_.count(name) > 0 || grouping_by_name_.count(name) > 0) {
    return Status::AlreadyExists("schema object named '" + name +
                                 "' already exists");
  }
  return Status::OK();
}

Result<ClassId> Schema::CreateClassNode(const std::string& name,
                                        std::vector<ClassId> parents,
                                        Membership membership,
                                        BaseKind base_kind) {
  ISIS_RETURN_NOT_OK(CheckNameFree(name));
  ClassDef def;
  def.id = ClassId(static_cast<std::int64_t>(classes_.size()));
  def.name = name;
  def.parents = std::move(parents);
  def.membership = membership;
  def.base_kind = base_kind;
  def.fill_pattern = NextFillPattern();
  class_by_name_[name] = def.id;
  classes_.push_back(std::move(def));
  class_live_.push_back(true);
  return classes_.back().id;
}

Result<ClassId> Schema::CreateBaseclass(const std::string& name,
                                        const std::string& naming_attribute) {
  ISIS_ASSIGN_OR_RETURN(
      ClassId id,
      CreateClassNode(name, {}, Membership::kBase, BaseKind::kNone));
  Result<AttributeId> naming =
      CreateAttribute(id, naming_attribute, kStrings(), /*multivalued=*/false);
  if (!naming.ok()) {
    // Roll the class back so a bad naming-attribute name leaves no trace.
    class_by_name_.erase(name);
    class_live_[id.value()] = false;
    return naming.status();
  }
  attributes_[naming.ValueOrDie().value()].naming = true;
  return id;
}

Result<ClassId> Schema::CreateSubclass(const std::string& name, ClassId parent,
                                       Membership membership) {
  if (!HasClass(parent)) {
    return Status::NotFound("parent class does not exist");
  }
  if (membership == Membership::kBase) {
    return Status::InvalidArgument("a subclass cannot have base membership");
  }
  return CreateClassNode(name, {parent}, membership, BaseKind::kNone);
}

Status Schema::AddParent(ClassId cls, ClassId extra_parent) {
  if (!options_.allow_multiple_parents) {
    return Status::Unimplemented(
        "multiple-parent inheritance is disabled (Schema::Options)");
  }
  if (!HasClass(cls) || !HasClass(extra_parent)) {
    return Status::NotFound("class does not exist");
  }
  if (GetClass(cls).is_base()) {
    return Status::Consistency("a baseclass cannot acquire a parent");
  }
  if (IsAncestorOrSelf(cls, extra_parent)) {
    return Status::Consistency("adding this parent would create a cycle");
  }
  if (RootOf(extra_parent) != RootOf(cls)) {
    return Status::Consistency(
        "all parents of a class must share one baseclass root (entities live "
        "in a single baseclass)");
  }
  const std::vector<ClassId>& parents = classes_[cls.value()].parents;
  if (std::find(parents.begin(), parents.end(), extra_parent) !=
      parents.end()) {
    return Status::AlreadyExists("already a parent");
  }
  // Inherited attribute names must stay unambiguous across the descendants
  // of cls. The same attribute arriving via two paths through a common
  // ancestor (the diamond) is not a conflict — only two *distinct*
  // attributes sharing a name are.
  std::unordered_map<std::string, AttributeId> incoming;
  for (AttributeId a : AllAttributesOf(extra_parent)) {
    incoming.emplace(GetAttribute(a).name, a);
  }
  for (ClassId d : SelfAndDescendants(cls)) {
    for (AttributeId a : AllAttributesOf(d)) {
      auto it = incoming.find(GetAttribute(a).name);
      if (it != incoming.end() && it->second != a) {
        return Status::Consistency(
            "attribute name conflict under multiple inheritance: '" +
            GetAttribute(a).name + "'");
      }
    }
  }
  classes_[cls.value()].parents.push_back(extra_parent);
  return Status::OK();
}

Status Schema::DeleteClass(ClassId cls) {
  if (!HasClass(cls)) return Status::NotFound("class does not exist");
  if (cls.value() < 4) {
    return Status::Consistency("predefined baseclasses are permanent");
  }
  if (!ChildrenOf(cls).empty()) {
    return Status::Consistency(
        "cannot delete a class that is the parent of some other class");
  }
  if (IsValueClassOfSomeAttribute(cls)) {
    return Status::Consistency(
        "cannot delete a class that is the value class of some attribute");
  }
  if (!GroupingsOf(cls).empty()) {
    return Status::Consistency(
        "cannot delete a class that has groupings; delete them first");
  }
  // Drop the class's own attributes with it.
  for (AttributeId a : classes_[cls.value()].own_attributes) {
    attribute_live_[a.value()] = false;
  }
  class_by_name_.erase(classes_[cls.value()].name);
  class_live_[cls.value()] = false;
  return Status::OK();
}

Status Schema::RenameClass(ClassId cls, const std::string& new_name) {
  if (!HasClass(cls)) return Status::NotFound("class does not exist");
  if (classes_[cls.value()].name == new_name) return Status::OK();
  ISIS_RETURN_NOT_OK(CheckNameFree(new_name));
  class_by_name_.erase(classes_[cls.value()].name);
  classes_[cls.value()].name = new_name;
  class_by_name_[new_name] = cls;
  return Status::OK();
}

Status Schema::SetMembership(ClassId cls, Membership membership) {
  if (!HasClass(cls)) return Status::NotFound("class does not exist");
  if (GetClass(cls).is_base() || membership == Membership::kBase) {
    return Status::Consistency("baseclass membership kind is fixed");
  }
  classes_[cls.value()].membership = membership;
  return Status::OK();
}

Status Schema::SetAttributeOrigin(AttributeId attr, AttrOrigin origin) {
  if (!HasAttribute(attr)) return Status::NotFound("attribute does not exist");
  if (attributes_[attr.value()].naming && origin == AttrOrigin::kDerived) {
    return Status::Consistency("naming attributes cannot be derived");
  }
  attributes_[attr.value()].origin = origin;
  return Status::OK();
}

Result<ClassId> Schema::FindClass(const std::string& name) const {
  auto it = class_by_name_.find(name);
  if (it == class_by_name_.end()) {
    return Status::NotFound("no class named '" + name + "'");
  }
  return it->second;
}

bool Schema::HasClass(ClassId id) const {
  return id.valid() && static_cast<size_t>(id.value()) < classes_.size() &&
         class_live_[id.value()];
}

const ClassDef& Schema::GetClass(ClassId id) const {
  return classes_[id.value()];
}

std::vector<ClassId> Schema::AllClasses() const {
  std::vector<ClassId> out;
  for (const ClassDef& c : classes_) {
    if (class_live_[c.id.value()]) out.push_back(c.id);
  }
  return out;
}

Status Schema::CheckAttributeNameFree(ClassId owner,
                                      const std::string& name) const {
  if (!IsValidName(name)) {
    return Status::InvalidArgument("invalid attribute name: '" + name + "'");
  }
  // Visible on owner already (own or inherited)?
  for (AttributeId a : AllAttributesOf(owner)) {
    if (GetAttribute(a).name == name) {
      return Status::AlreadyExists("attribute '" + name +
                                   "' already visible on class '" +
                                   GetClass(owner).name + "'");
    }
  }
  // Would shadow a name some descendant already uses?
  for (ClassId d : SelfAndDescendants(owner)) {
    if (d == owner) continue;
    for (AttributeId a : GetClass(d).own_attributes) {
      if (attribute_live_[a.value()] && GetAttribute(a).name == name) {
        return Status::AlreadyExists("attribute '" + name +
                                     "' already defined on descendant '" +
                                     GetClass(d).name + "'");
      }
    }
  }
  return Status::OK();
}

Result<AttributeId> Schema::CreateAttribute(ClassId owner,
                                            const std::string& name,
                                            ClassId value_class,
                                            bool multivalued,
                                            AttrOrigin origin) {
  if (!HasClass(owner)) return Status::NotFound("owner class does not exist");
  if (!HasClass(value_class)) {
    return Status::NotFound("value class does not exist");
  }
  ISIS_RETURN_NOT_OK(CheckAttributeNameFree(owner, name));
  AttributeDef def;
  def.id = AttributeId(static_cast<std::int64_t>(attributes_.size()));
  def.name = name;
  def.owner = owner;
  def.value_class = value_class;
  def.multivalued = multivalued;
  def.origin = origin;
  classes_[owner.value()].own_attributes.push_back(def.id);
  attributes_.push_back(std::move(def));
  attribute_live_.push_back(true);
  return attributes_.back().id;
}

Result<AttributeId> Schema::CreateAttributeIntoGrouping(
    ClassId owner, const std::string& name, GroupingId grouping) {
  if (!HasGrouping(grouping)) {
    return Status::NotFound("grouping does not exist");
  }
  const GroupingDef& g = GetGrouping(grouping);
  // "This attribute B is treated as B: S ++> parent(G)."
  ISIS_ASSIGN_OR_RETURN(
      AttributeId id,
      CreateAttribute(owner, name, g.parent, /*multivalued=*/true));
  attributes_[id.value()].value_grouping = grouping;
  return id;
}

Status Schema::SetValueClass(AttributeId attr, ClassId value_class) {
  if (!HasAttribute(attr)) return Status::NotFound("attribute does not exist");
  if (!HasClass(value_class)) {
    return Status::NotFound("value class does not exist");
  }
  if (attributes_[attr.value()].naming) {
    return Status::Consistency("naming attributes always map to STRING");
  }
  attributes_[attr.value()].value_class = value_class;
  attributes_[attr.value()].value_grouping = GroupingId();
  return Status::OK();
}

Status Schema::DeleteAttribute(AttributeId attr) {
  if (!HasAttribute(attr)) return Status::NotFound("attribute does not exist");
  const AttributeDef& def = GetAttribute(attr);
  if (def.naming) {
    return Status::Consistency("the naming attribute cannot be deleted");
  }
  for (const GroupingDef& g : groupings_) {
    if (grouping_live_[g.id.value()] && g.on_attribute == attr) {
      return Status::Consistency("grouping '" + g.name +
                                 "' is defined on this attribute");
    }
  }
  std::vector<AttributeId>& own = classes_[def.owner.value()].own_attributes;
  own.erase(std::remove(own.begin(), own.end(), attr), own.end());
  attribute_live_[attr.value()] = false;
  return Status::OK();
}

Status Schema::RenameAttribute(AttributeId attr, const std::string& new_name) {
  if (!HasAttribute(attr)) return Status::NotFound("attribute does not exist");
  if (attributes_[attr.value()].name == new_name) return Status::OK();
  ISIS_RETURN_NOT_OK(
      CheckAttributeNameFree(attributes_[attr.value()].owner, new_name));
  attributes_[attr.value()].name = new_name;
  return Status::OK();
}

Result<AttributeId> Schema::FindAttribute(ClassId cls,
                                          const std::string& name) const {
  if (!HasClass(cls)) return Status::NotFound("class does not exist");
  for (AttributeId a : AllAttributesOf(cls)) {
    if (GetAttribute(a).name == name) return a;
  }
  return Status::NotFound("no attribute '" + name + "' on class '" +
                          GetClass(cls).name + "'");
}

bool Schema::HasAttribute(AttributeId id) const {
  return id.valid() && static_cast<size_t>(id.value()) < attributes_.size() &&
         attribute_live_[id.value()];
}

const AttributeDef& Schema::GetAttribute(AttributeId id) const {
  return attributes_[id.value()];
}

std::vector<AttributeId> Schema::AllAttributesOf(ClassId cls) const {
  // Root-most ancestor first, then down to cls's own attributes; in
  // multi-parent mode parents contribute in declaration order, deduplicated.
  std::vector<ClassId> chain = AncestorsOf(cls);
  std::reverse(chain.begin(), chain.end());
  chain.push_back(cls);
  std::vector<AttributeId> out;
  std::unordered_set<std::int64_t> seen;
  for (ClassId c : chain) {
    for (AttributeId a : GetClass(c).own_attributes) {
      if (attribute_live_[a.value()] && seen.insert(a.value()).second) {
        out.push_back(a);
      }
    }
  }
  return out;
}

bool Schema::AttributeVisibleOn(ClassId cls, AttributeId attr) const {
  if (!HasAttribute(attr)) return false;
  return IsAncestorOrSelf(GetAttribute(attr).owner, cls);
}

Result<GroupingId> Schema::CreateGrouping(const std::string& name,
                                          ClassId parent,
                                          AttributeId on_attribute) {
  if (!HasClass(parent)) return Status::NotFound("parent class does not exist");
  if (!HasAttribute(on_attribute)) {
    return Status::NotFound("attribute does not exist");
  }
  if (!AttributeVisibleOn(parent, on_attribute)) {
    return Status::Consistency("attribute '" +
                               GetAttribute(on_attribute).name +
                               "' is not visible on class '" +
                               GetClass(parent).name + "'");
  }
  ISIS_RETURN_NOT_OK(CheckNameFree(name));
  GroupingDef def;
  def.id = GroupingId(static_cast<std::int64_t>(groupings_.size()));
  def.name = name;
  def.parent = parent;
  def.on_attribute = on_attribute;
  def.fill_pattern = NextFillPattern();
  grouping_by_name_[name] = def.id;
  groupings_.push_back(std::move(def));
  grouping_live_.push_back(true);
  return groupings_.back().id;
}

Status Schema::DeleteGrouping(GroupingId g) {
  if (!HasGrouping(g)) return Status::NotFound("grouping does not exist");
  for (const AttributeDef& a : attributes_) {
    if (attribute_live_[a.id.value()] && a.value_grouping == g) {
      return Status::Consistency("attribute '" + a.name +
                                 "' ranges over this grouping");
    }
  }
  grouping_by_name_.erase(groupings_[g.value()].name);
  grouping_live_[g.value()] = false;
  return Status::OK();
}

Status Schema::RenameGrouping(GroupingId g, const std::string& new_name) {
  if (!HasGrouping(g)) return Status::NotFound("grouping does not exist");
  if (groupings_[g.value()].name == new_name) return Status::OK();
  ISIS_RETURN_NOT_OK(CheckNameFree(new_name));
  grouping_by_name_.erase(groupings_[g.value()].name);
  groupings_[g.value()].name = new_name;
  grouping_by_name_[new_name] = g;
  return Status::OK();
}

Result<GroupingId> Schema::FindGrouping(const std::string& name) const {
  auto it = grouping_by_name_.find(name);
  if (it == grouping_by_name_.end()) {
    return Status::NotFound("no grouping named '" + name + "'");
  }
  return it->second;
}

bool Schema::HasGrouping(GroupingId id) const {
  return id.valid() && static_cast<size_t>(id.value()) < groupings_.size() &&
         grouping_live_[id.value()];
}

const GroupingDef& Schema::GetGrouping(GroupingId id) const {
  return groupings_[id.value()];
}

std::vector<GroupingId> Schema::AllGroupings() const {
  std::vector<GroupingId> out;
  for (const GroupingDef& g : groupings_) {
    if (grouping_live_[g.id.value()]) out.push_back(g.id);
  }
  return out;
}

std::vector<GroupingId> Schema::GroupingsOf(ClassId cls) const {
  std::vector<GroupingId> out;
  for (const GroupingDef& g : groupings_) {
    if (grouping_live_[g.id.value()] && g.parent == cls) out.push_back(g.id);
  }
  return out;
}

std::vector<ClassId> Schema::ChildrenOf(ClassId cls) const {
  std::vector<ClassId> out;
  for (const ClassDef& c : classes_) {
    if (!class_live_[c.id.value()]) continue;
    if (std::find(c.parents.begin(), c.parents.end(), cls) !=
        c.parents.end()) {
      out.push_back(c.id);
    }
  }
  return out;
}

std::vector<ClassId> Schema::AncestorsOf(ClassId cls) const {
  std::vector<ClassId> out;
  std::unordered_set<std::int64_t> seen;
  // Breadth-first over parents: nearest ancestors first, deterministic in
  // parent declaration order.
  std::vector<ClassId> frontier{cls};
  size_t i = 0;
  while (i < frontier.size()) {
    ClassId cur = frontier[i++];
    for (ClassId p : GetClass(cur).parents) {
      if (seen.insert(p.value()).second) {
        out.push_back(p);
        frontier.push_back(p);
      }
    }
  }
  return out;
}

std::vector<ClassId> Schema::SelfAndDescendants(ClassId cls) const {
  std::vector<ClassId> out;
  std::unordered_set<std::int64_t> seen;
  std::vector<ClassId> stack{cls};
  while (!stack.empty()) {
    ClassId cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur.value()).second) continue;
    out.push_back(cur);
    std::vector<ClassId> kids = ChildrenOf(cur);
    // Push in reverse so preorder visits children in creation order.
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

ClassId Schema::RootOf(ClassId cls) const {
  ClassId cur = cls;
  while (!GetClass(cur).parents.empty()) cur = GetClass(cur).parents[0];
  return cur;
}

bool Schema::IsAncestorOrSelf(ClassId maybe_ancestor, ClassId cls) const {
  if (maybe_ancestor == cls) return true;
  for (ClassId a : AncestorsOf(cls)) {
    if (a == maybe_ancestor) return true;
  }
  return false;
}

std::vector<ClassId> Schema::Baseclasses() const {
  std::vector<ClassId> out;
  for (const ClassDef& c : classes_) {
    if (class_live_[c.id.value()] && c.is_base()) out.push_back(c.id);
  }
  return out;
}

std::vector<Schema::NetworkArc> Schema::OutgoingArcs(ClassId cls) const {
  std::vector<NetworkArc> out;
  for (AttributeId a : AllAttributesOf(cls)) {
    const AttributeDef& def = GetAttribute(a);
    NetworkArc arc;
    arc.from = cls;
    arc.attribute = a;
    arc.to = def.value_grouping.valid()
                 ? SchemaNode::Grouping(def.value_grouping)
                 : SchemaNode::Class(def.value_class);
    arc.inherited = (def.owner != cls);
    out.push_back(arc);
  }
  return out;
}

std::vector<Schema::NetworkArc> Schema::IncomingArcs(SchemaNode node) const {
  std::vector<NetworkArc> out;
  for (const AttributeDef& a : attributes_) {
    if (!attribute_live_[a.id.value()]) continue;
    bool hits;
    if (node.kind == SchemaNode::Kind::kClass) {
      hits = !a.value_grouping.valid() && a.value_class == node.class_id;
    } else {
      hits = a.value_grouping == node.grouping_id;
    }
    if (hits) {
      out.push_back(NetworkArc{a.owner, a.id, node, /*inherited=*/false});
    }
  }
  return out;
}

bool Schema::IsValueClassOfSomeAttribute(ClassId cls) const {
  for (const AttributeDef& a : attributes_) {
    if (attribute_live_[a.id.value()] && a.value_class == cls) return true;
  }
  return false;
}

Status Schema::RestoreClass(const ClassDef& def) {
  if (!def.id.valid() ||
      static_cast<size_t>(def.id.value()) < classes_.size()) {
    return Status::ParseError("class id collides with an existing slot");
  }
  ISIS_RETURN_NOT_OK(CheckNameFree(def.name));
  while (classes_.size() < static_cast<size_t>(def.id.value())) {
    ClassDef dead;
    dead.id = ClassId(static_cast<std::int64_t>(classes_.size()));
    classes_.push_back(std::move(dead));
    class_live_.push_back(false);
  }
  class_by_name_[def.name] = def.id;
  next_fill_pattern_ = std::max(next_fill_pattern_, def.fill_pattern + 1);
  classes_.push_back(def);
  class_live_.push_back(true);
  return Status::OK();
}

Status Schema::RestoreAttribute(const AttributeDef& def) {
  if (!def.id.valid() ||
      static_cast<size_t>(def.id.value()) < attributes_.size()) {
    return Status::ParseError("attribute id collides with an existing slot");
  }
  while (attributes_.size() < static_cast<size_t>(def.id.value())) {
    AttributeDef dead;
    dead.id = AttributeId(static_cast<std::int64_t>(attributes_.size()));
    attributes_.push_back(std::move(dead));
    attribute_live_.push_back(false);
  }
  attributes_.push_back(def);
  attribute_live_.push_back(true);
  return Status::OK();
}

Status Schema::RestoreGrouping(const GroupingDef& def) {
  if (!def.id.valid() ||
      static_cast<size_t>(def.id.value()) < groupings_.size()) {
    return Status::ParseError("grouping id collides with an existing slot");
  }
  ISIS_RETURN_NOT_OK(CheckNameFree(def.name));
  while (groupings_.size() < static_cast<size_t>(def.id.value())) {
    GroupingDef dead;
    dead.id = GroupingId(static_cast<std::int64_t>(groupings_.size()));
    groupings_.push_back(std::move(dead));
    grouping_live_.push_back(false);
  }
  grouping_by_name_[def.name] = def.id;
  next_fill_pattern_ = std::max(next_fill_pattern_, def.fill_pattern + 1);
  groupings_.push_back(def);
  grouping_live_.push_back(true);
  return Status::OK();
}

Status Schema::Validate() const {
  std::unordered_set<int> patterns;
  for (const ClassDef& c : classes_) {
    if (!class_live_[c.id.value()]) continue;
    if (!patterns.insert(c.fill_pattern).second) {
      return Status::Internal("duplicate fill pattern on class " + c.name);
    }
    for (ClassId p : c.parents) {
      if (!HasClass(p)) {
        return Status::Internal("class " + c.name + " has a dead parent");
      }
      if (IsAncestorOrSelf(c.id, p)) {
        return Status::Internal("inheritance cycle at class " + c.name);
      }
    }
    if (!options_.allow_multiple_parents && c.parents.size() > 1) {
      return Status::Internal("multi-parent class in single-parent schema: " +
                              c.name);
    }
    if (c.is_base()) {
      // Every baseclass must lead with a naming attribute.
      if (c.own_attributes.empty() ||
          !GetAttribute(c.own_attributes[0]).naming) {
        return Status::Internal("baseclass " + c.name +
                                " lacks a naming attribute");
      }
    }
    for (AttributeId a : c.own_attributes) {
      if (!HasAttribute(a)) {
        return Status::Internal("class " + c.name + " lists a dead attribute");
      }
      const AttributeDef& def = GetAttribute(a);
      if (def.owner != c.id) {
        return Status::Internal("attribute owner mismatch on " + def.name);
      }
      if (!HasClass(def.value_class)) {
        return Status::Internal("attribute " + def.name +
                                " has a dead value class");
      }
      if (def.value_grouping.valid()) {
        if (!HasGrouping(def.value_grouping)) {
          return Status::Internal("attribute " + def.name +
                                  " ranges over a dead grouping");
        }
        if (GetGrouping(def.value_grouping).parent != def.value_class ||
            !def.multivalued) {
          return Status::Internal(
              "attribute-into-grouping must be multivalued into parent(G): " +
              def.name);
        }
      }
    }
  }
  for (const GroupingDef& g : groupings_) {
    if (!grouping_live_[g.id.value()]) continue;
    if (!patterns.insert(g.fill_pattern).second) {
      return Status::Internal("duplicate fill pattern on grouping " + g.name);
    }
    if (!HasClass(g.parent)) {
      return Status::Internal("grouping " + g.name + " has a dead parent");
    }
    if (!HasAttribute(g.on_attribute) ||
        !AttributeVisibleOn(g.parent, g.on_attribute)) {
      return Status::Internal("grouping " + g.name +
                              " is not on an attribute of its parent");
    }
  }
  return Status::OK();
}

}  // namespace isis::sdm
