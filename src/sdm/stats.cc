#include "sdm/stats.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace isis::sdm {

DatabaseStats ComputeStats(const Database& db) {
  const Schema& schema = db.schema();
  DatabaseStats out;

  for (ClassId c : schema.AllClasses()) {
    if (c.value() < 4) continue;  // predefined baseclasses
    const ClassDef& def = schema.GetClass(c);
    ++out.classes;
    ClassStats cs;
    cs.cls = c;
    cs.name = def.name;
    cs.members = db.Members(c).size();
    cs.is_base = def.is_base();
    cs.membership = def.membership;
    out.per_class.push_back(cs);
    if (def.is_base()) out.entities += cs.members;

    for (AttributeId a : def.own_attributes) {
      if (!schema.HasAttribute(a)) continue;
      const AttributeDef& attr = schema.GetAttribute(a);
      if (attr.naming) continue;
      ++out.attributes;
      AttributeStats as;
      as.attr = a;
      as.name = def.name + "." + attr.name;
      as.multivalued = attr.multivalued;
      as.owner_members = db.Members(c).size();
      std::set<EntityId> distinct;
      size_t total_set_size = 0;
      for (EntityId e : db.Members(c)) {
        EntitySet values = db.GetValueSet(e, a);
        if (values.empty()) continue;
        ++as.assigned;
        total_set_size += values.size();
        distinct.insert(values.begin(), values.end());
      }
      as.distinct_values = distinct.size();
      as.avg_set_size =
          as.assigned == 0
              ? 0.0
              : static_cast<double>(total_set_size) / as.assigned;
      out.per_attribute.push_back(as);
    }
  }

  for (GroupingId g : schema.AllGroupings()) {
    const GroupingDef& def = schema.GetGrouping(g);
    ++out.groupings;
    GroupingStats gs;
    gs.grouping = g;
    gs.name = def.name;
    std::set<EntityId> covered;
    for (const GroupingBlock& block : db.GroupingBlocks(g)) {
      ++gs.blocks;
      gs.largest_block = std::max(gs.largest_block, block.members.size());
      covered.insert(block.members.begin(), block.members.end());
    }
    gs.covered_members = covered.size();
    out.per_grouping.push_back(gs);
  }
  return out;
}

std::vector<std::string> DesignAdvisories(const Database& db,
                                          const DatabaseStats& stats) {
  std::vector<std::string> out;
  const Schema& schema = db.schema();

  for (const ClassStats& cs : stats.per_class) {
    if (cs.members == 0) {
      out.push_back("class '" + cs.name + "' has no members");
      continue;
    }
    if (!cs.is_base) {
      const ClassDef& def = schema.GetClass(cs.cls);
      for (ClassId p : def.parents) {
        if (db.Members(p).size() == cs.members && cs.members > 0) {
          out.push_back("subclass '" + cs.name +
                        "' currently equals its parent '" +
                        schema.GetClass(p).name +
                        "' (every parent member qualifies)");
        }
      }
    }
  }
  for (const AttributeStats& as : stats.per_attribute) {
    if (as.owner_members == 0) continue;
    if (as.assigned == 0) {
      out.push_back("attribute '" + as.name + "' is never assigned");
    } else if (as.distinct_values == 1 && as.owner_members > 1 &&
               as.fill_ratio() >= 1.0) {
      out.push_back("attribute '" + as.name +
                    "' has the same value for every member (consider "
                    "dropping it or moving it up the hierarchy)");
    }
  }
  for (const GroupingStats& gs : stats.per_grouping) {
    if (gs.blocks == 0) {
      out.push_back("grouping '" + gs.name + "' has no blocks");
    } else if (gs.blocks == 1) {
      out.push_back("grouping '" + gs.name +
                    "' has a single block (the attribute does not "
                    "discriminate)");
    }
  }
  return out;
}

std::string RenderStatsReport(const DatabaseStats& stats) {
  std::string out;
  out += "classes: " + std::to_string(stats.classes) +
         "  attributes: " + std::to_string(stats.attributes) +
         "  groupings: " + std::to_string(stats.groupings) +
         "  entities: " + std::to_string(stats.entities) + "\n";
  for (const ClassStats& cs : stats.per_class) {
    out += "  class " + cs.name + ": " + std::to_string(cs.members) +
           " member(s), " + MembershipToString(cs.membership) + "\n";
  }
  for (const AttributeStats& as : stats.per_attribute) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f%%", as.fill_ratio() * 100.0);
    out += "  attr " + as.name + ": " + std::to_string(as.assigned) + "/" +
           std::to_string(as.owner_members) + " assigned (" + buf + "), " +
           std::to_string(as.distinct_values) + " distinct value(s)\n";
  }
  for (const GroupingStats& gs : stats.per_grouping) {
    out += "  grouping " + gs.name + ": " + std::to_string(gs.blocks) +
           " block(s), largest " + std::to_string(gs.largest_block) + "\n";
  }
  return out;
}

}  // namespace isis::sdm
