/// \file dot_export.h
/// \brief Graphviz (DOT) export of the paper's two schema graphs.
///
/// The paper defines the *inheritance forest* and the *semantic network*
/// over the same nodes (§2). ISIS renders them as interactive views; for
/// offline documentation and tooling this module exports either graph (or
/// both overlaid) as DOT, preserving the paper's visual conventions where
/// DOT can express them: baseclasses as emphasized nodes, groupings as
/// dashed (set) nodes, singlevalued attribute arcs as plain edges and
/// multivalued ones as double-line (bold) edges labeled with the attribute
/// name.

#ifndef ISIS_SDM_DOT_EXPORT_H_
#define ISIS_SDM_DOT_EXPORT_H_

#include <string>

#include "sdm/schema.h"

namespace isis::sdm {

/// Which arcs to include.
enum class DotGraph {
  kInheritanceForest,  ///< parent(C) edges and grouping attachments.
  kSemanticNetwork,    ///< attribute arcs (own attributes; inherited arcs
                       ///< are derivable and omitted to keep graphs small).
  kBoth,               ///< Overlay: inheritance solid, attributes colored.
};

/// Serializes the chosen graph(s) as a DOT digraph named "isis".
/// Predefined baseclasses appear only when referenced by an attribute arc.
std::string ExportDot(const Schema& schema, DotGraph which);

}  // namespace isis::sdm

#endif  // ISIS_SDM_DOT_EXPORT_H_
