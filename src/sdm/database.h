/// \file database.h
/// \brief The data level: entities, class membership, attribute values,
/// groupings-as-data, and attribute-map evaluation (paper §2, "Data").
///
/// A Database owns a Schema and the data associated with it, and keeps the
/// data consistent with the schema under every mutation:
///   * each entity is in one baseclass only;
///   * each subclass is a subset of its parent (insertions propagate up the
///     ancestor chain; removals cascade down to descendants);
///   * a singlevalued attribute defines a function (default: the null
///     entity); a multivalued attribute defaults to the empty set;
///   * each grouping is completely determined by its parent class and
///     attribute (maintained incrementally, see GroupingBlocks).
///
/// The null entity is "a member of every class" (paper §2); it never appears
/// in member listings or map images.

#ifndef ISIS_SDM_DATABASE_H_
#define ISIS_SDM_DATABASE_H_

#include <atomic>
#include <map>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sync.h"
#include "common/result.h"
#include "sdm/schema.h"
#include "sdm/value.h"

namespace isis::sdm {

/// The distinguished null entity (default value of unassigned singlevalued
/// attributes).
inline constexpr EntityId kNullEntity = EntityId(0);

/// \brief One entity of the universe.
struct Entity {
  EntityId id;
  /// The unique baseclass holding the entity (invalid for the null entity).
  ClassId baseclass;
  /// Unique name within the baseclass; for predefined baseclasses this is
  /// the display form of `value`.
  std::string name;
  /// Identity value for entities of predefined baseclasses.
  Value value;
  bool has_value = false;
};

/// A deterministic ordered set of entities (creation order == id order).
using EntitySet = std::set<EntityId>;

/// \brief Observer of data-level mutations (the live-view engine's feed).
///
/// A Database fans typed deltas out to registered observers from the same
/// internal hook sites that maintain groupings, so observers see exactly the
/// real state changes (no-op mutations fire nothing). Callbacks run while the
/// mutating call is still on the stack, so an observer must only *record*
/// the delta; any reaction that mutates the database has to wait for
/// OnMutationsSettled, which fires once the outermost mutating call returns
/// (no Database mutator is on the stack at that point, so re-entrant
/// mutation is safe there).
class MutationObserver {
 public:
  virtual ~MutationObserver() = default;

  /// Entity `e` entered (`added`) or left class `cls`. Fired only on actual
  /// change, including cascades (ancestor propagation, descendant removal).
  virtual void OnMembership(EntityId e, ClassId cls, bool added) = 0;

  /// The value set of `attr` on owner `e` changed from `before` to `after`
  /// (always different). Entity renames surface as a change of the naming
  /// attribute.
  virtual void OnAttributeValue(EntityId e, AttributeId attr,
                                const EntitySet& before,
                                const EntitySet& after) = 0;

  /// A schema-level mutation too coarse for per-entity deltas (value-class
  /// change, class/attribute deletion, extra parent, membership-kind
  /// switch).
  virtual void OnSchemaChange() = 0;

  /// The outermost mutating call has returned; queued deltas may now be
  /// processed (mutating the database from here is safe).
  virtual void OnMutationsSettled() = 0;
};

/// One block of a grouping: the set of parent-class entities sharing the
/// index entity as an attribute value.
struct GroupingBlock {
  EntityId index;      ///< The shared attribute value naming the block.
  EntitySet members;   ///< { x in parent(G) | index in A(x) }.
};

/// \brief Database = schema + data + consistency-preserving mutations.
class Database {
 public:
  struct Options {
    Schema::Options schema;
    /// Maintain grouping blocks incrementally on each mutation. When false,
    /// groupings are recomputed from scratch at each read after a mutation
    /// (the ablation benchmarked by bench_groupings).
    bool incremental_groupings = true;
    /// Keep stored derived subclasses/attributes/constraints fresh through
    /// the live-view engine (live::LiveViewEngine) instead of manual
    /// ReevaluateAll calls. The flag only records the intent — the engine is
    /// attached by whoever owns the Workspace (the UI controller, a bench) —
    /// and is persisted by store/ so a saved database reopens live.
    bool live_views = false;
  };

  Database();
  explicit Database(Options options);

  const Schema& schema() const { return schema_; }
  const Options& options() const { return options_; }

  // --- Schema mutations (delegate to Schema, then fix up data). ---

  Result<ClassId> CreateBaseclass(const std::string& name,
                                  const std::string& naming_attribute);
  Result<ClassId> CreateSubclass(const std::string& name, ClassId parent,
                                 Membership membership);
  Status AddParent(ClassId cls, ClassId extra_parent);
  /// Deletes a class; in addition to Schema's preconditions, membership data
  /// and grouping caches are dropped.
  Status DeleteClass(ClassId cls);
  Status RenameClass(ClassId cls, const std::string& new_name);
  /// Switches a subclass between enumerated and derived membership.
  Status SetMembership(ClassId cls, Membership membership);
  /// Marks an attribute stored/derived (query layer bookkeeping).
  Status SetAttributeOrigin(AttributeId attr, AttrOrigin origin);

  Result<AttributeId> CreateAttribute(ClassId owner, const std::string& name,
                                      ClassId value_class, bool multivalued,
                                      AttrOrigin origin = AttrOrigin::kStored);
  Result<AttributeId> CreateAttributeIntoGrouping(ClassId owner,
                                                  const std::string& name,
                                                  GroupingId grouping);
  /// Changes the value class (UI: (re)specify value class); values that are
  /// no longer members of the new value class are reset to the defaults.
  Status SetValueClass(AttributeId attr, ClassId value_class);
  Status DeleteAttribute(AttributeId attr);
  Status RenameAttribute(AttributeId attr, const std::string& new_name);

  Result<GroupingId> CreateGrouping(const std::string& name, ClassId parent,
                                    AttributeId on_attribute);
  Status DeleteGrouping(GroupingId g);
  Status RenameGrouping(GroupingId g, const std::string& new_name);

  // --- Entity lifecycle. ---

  /// Creates an entity named `name` in user baseclass `base`. Names are
  /// unique within a baseclass (paper: "each entity has a unique name").
  Result<EntityId> CreateEntity(ClassId base, const std::string& name);

  /// Returns the entity of a predefined baseclass with identity `v`,
  /// creating ("interning") it on first reference — the predefined classes
  /// "contain as data all integers, booleans, reals and strings of
  /// interest".
  Result<EntityId> InternValue(const Value& v) const;

  /// Convenience interners.
  EntityId InternInteger(std::int64_t v) const;
  EntityId InternReal(double v) const;
  EntityId InternBoolean(bool v) const;
  EntityId InternString(const std::string& v) const;

  /// Finds an entity by name within a baseclass (parses the name as a value
  /// for predefined baseclasses, interning it).
  Result<EntityId> FindEntity(ClassId base, const std::string& name) const;

  /// Looks up an entity by name in `cls` (any class: resolves via the root
  /// baseclass, then checks membership).
  Result<EntityId> FindMember(ClassId cls, const std::string& name) const;

  Status RenameEntity(EntityId e, const std::string& new_name);

  /// Deletes an entity: removes it from every class and scrubs every
  /// attribute slot referring to it (singlevalued slots become null,
  /// multivalued sets drop it).
  Status DeleteEntity(EntityId e);

  bool HasEntity(EntityId e) const;
  const Entity& GetEntity(EntityId e) const;
  /// All live entities in id (creation) order, excluding the null entity.
  std::vector<EntityId> AllEntities() const;
  /// Display name ("(null)" for the null entity).
  const std::string& NameOf(EntityId e) const;

  // --- Class membership. ---

  /// Adds `e` to subclass `cls` and, transitively, to every ancestor between
  /// `cls` and `e`'s baseclass (the paper's insertion rule). Fails if the
  /// class is derived (derived membership comes from its predicate) or if
  /// `e`'s baseclass is not the root of `cls`.
  Status AddToClass(EntityId e, ClassId cls);

  /// Variant used by the query layer when materializing a derived subclass.
  Status AddToDerivedClass(EntityId e, ClassId cls);

  /// Removes `e` from `cls` and from every descendant of `cls`, then scrubs
  /// attribute slots whose value class no longer contains `e`.
  Status RemoveFromClass(EntityId e, ClassId cls);

  /// Replaces the whole membership of a derived class (query layer commit).
  Status SetDerivedMembers(ClassId cls, const EntitySet& members);

  /// True if `e` is a member of `cls`. The null entity is a member of every
  /// class.
  bool IsMember(EntityId e, ClassId cls) const;

  /// Members of `cls` in id (creation) order; excludes the null entity.
  const EntitySet& Members(ClassId cls) const;

  // --- Attribute values. ---

  /// Sets a singlevalued attribute (UI: (re)assign att. value). Preconditions:
  /// `attr` is singlevalued and visible on a class containing `e`; `value`
  /// is null or a member of the value class. Setting the naming attribute
  /// renames the entity.
  Status SetSingle(EntityId e, AttributeId attr, EntityId value);

  Status AddToMulti(EntityId e, AttributeId attr, EntityId value);
  Status RemoveFromMulti(EntityId e, AttributeId attr, EntityId value);
  /// Replaces a multivalued attribute's set wholesale.
  Status SetMulti(EntityId e, AttributeId attr, const EntitySet& values);

  /// Singlevalued read; kNullEntity when unassigned. For a naming attribute
  /// this is the interned string entity of the entity's name.
  EntityId GetSingle(EntityId e, AttributeId attr) const;

  /// Multivalued read; empty set when unassigned.
  const EntitySet& GetMulti(EntityId e, AttributeId attr) const;

  /// Uniform read used by map evaluation: singleton for an assigned
  /// singlevalued attribute, empty for null, the set for multivalued.
  EntitySet GetValueSet(EntityId e, AttributeId attr) const;

  // --- Maps (paper §2, "Map"). ---

  /// Image of `start` under the composition A1 A2 ... An. n == 0 yields
  /// `start` (the identity map). The null entity never enters the image.
  EntitySet EvaluateMap(const EntitySet& start,
                        std::span<const AttributeId> path) const;
  EntitySet EvaluateMap(EntityId start,
                        std::span<const AttributeId> path) const;

  /// Checks a map is well formed from `from`: each step visible on the
  /// reached class. Returns the class the map terminates in.
  Result<ClassId> MapTerminalClass(ClassId from,
                                   std::span<const AttributeId> path) const;

  // --- Groupings as data. ---

  /// The blocks of `g`, ordered by index-entity id. Recomputed or
  /// incrementally maintained per Options::incremental_groupings.
  const std::vector<GroupingBlock>& GroupingBlocks(GroupingId g) const;

  /// The block of `g` indexed by `index` (empty if none).
  EntitySet GetGroupingBlock(GroupingId g, EntityId index) const;

  // --- Attribute-value indexes (query-layer acceleration). ---
  //
  // A per-attribute inverted index value -> { owners }: for a singlevalued
  // attribute the owners whose value *is* the entity, for a multivalued one
  // the owners whose value set *contains* it. Unlike groupings these exist
  // for every stored attribute, need no schema object, and are what the
  // query planner probes for one-placed equality/membership atoms. Built
  // lazily from the attribute's value rows on first probe and then kept
  // fresh through the same mutation hooks that maintain groupings.

  /// True if `attr` can be served by the value index. Naming attributes are
  /// not indexable: their values are computed from entity names, and renames
  /// bypass the value-change hooks.
  bool ValueIndexable(AttributeId attr) const;

  /// Owners of `value` through `attr` (empty for unindexable attributes or
  /// unseen values). Builds the index on first use.
  const EntitySet& ValueIndexProbe(AttributeId attr, EntityId value) const;

  /// Number of distinct values in `attr`'s index (0 when unindexable).
  /// Builds the index; the planner uses it for selectivity estimation.
  std::int64_t ValueIndexDistinctValues(AttributeId attr) const;

  /// Number of (owner, value) postings in `attr`'s index (0 when
  /// unindexable). Builds the index.
  std::int64_t ValueIndexPostings(AttributeId attr) const;

  // --- Restore API (store/ deserialization only). ---
  //
  // Direct state reconstruction bypassing the mutation checks; the loader
  // validates with ConsistencyChecker afterwards. mutable_schema() exposes
  // the schema's own restore API during loading.

  Schema& mutable_schema() { return schema_; }
  /// Restores an entity at its original id (gaps become dead slots).
  Status RestoreEntity(const Entity& e);
  /// Restores the membership set of a subclass wholesale.
  Status RestoreMembers(ClassId cls, EntitySet members);
  /// Restores a singlevalued attribute slot.
  Status RestoreSingle(AttributeId attr, EntityId e, EntityId value);
  /// Restores a multivalued attribute slot.
  Status RestoreMulti(AttributeId attr, EntityId e, EntitySet values);

  /// Statistics for benchmarking.
  struct Stats {
    std::int64_t grouping_rebuilds = 0;
    std::int64_t grouping_incremental_updates = 0;
    std::int64_t value_index_rebuilds = 0;
    std::int64_t value_index_incremental_updates = 0;
    std::int64_t value_index_probes = 0;
  };
  /// Snapshot of the lazy-structure counters (by value: the counters are
  /// bumped under lazy_mu_, so a reference would race).
  Stats stats() const ISIS_EXCLUDES(lazy_mu_) {
    MutexLock lock(lazy_mu_);
    return stats_;
  }

  // --- Mutation observers (live-view engine feed). ---

  /// Registers an observer; it must outlive the database or be removed
  /// first. Restore* calls do not notify (the loader validates wholesale).
  void AddObserver(MutationObserver* observer);
  void RemoveObserver(MutationObserver* observer);

  // --- Concurrency (the server's shared-read phases; see server/). ---
  //
  // A Database is not thread-safe in general: every mutator requires
  // exclusive access. The multi-session server nevertheless runs read-only
  // requests from many threads at once under a shared (reader) lock, with
  // mutations serialized under the matching exclusive (writer) lock. Three
  // internal rules make the const surface safe in that regime:
  //
  //  1. Lazily-built structures reached from const reads — attribute-value
  //     indexes and grouping caches — are built and probed under an
  //     internal mutex (`lazy_mu_`). A build publishes a structure that no
  //     one modifies again until the next exclusive-phase mutation, so the
  //     references these accessors return stay valid for the whole shared
  //     phase (build-then-publish).
  //  2. Interning — a logical read that physically creates an entity — can
  //     be *frozen*. While frozen, looking up an already-interned value is
  //     a plain read, but a value never seen before is NOT created:
  //     InternValue/FindEntity fail with Unavailable, and the naming-
  //     attribute read inside GetSingle records a thread-local miss
  //     (InternMissCount) and degrades to the null entity. A caller holding
  //     only the shared lock detects either signal and retries the whole
  //     request under the exclusive lock with interning unfrozen — the
  //     "promote to exclusive" discipline. Freeze toggles themselves must
  //     happen under the exclusive lock.
  //  3. Stats counters bumped on read paths are updated under `lazy_mu_`;
  //     counters bumped on mutation paths need no lock (exclusive phase).
  //
  // Everything else reachable from const methods (schema, entities, member
  // sets, value rows) is only mutated by exclusive-phase mutators, so the
  // reader/writer lock alone orders those accesses.

  /// Freezes/unfreezes interning. Toggle only while no other thread is
  /// reading the database (the server toggles under its exclusive lock).
  void set_intern_frozen(bool frozen) {
    intern_frozen_.store(frozen, std::memory_order_relaxed);
  }
  bool intern_frozen() const {
    return intern_frozen_.load(std::memory_order_relaxed);
  }

  /// Monotone per-thread count of reads that degraded because interning was
  /// frozen (see rule 2 above). Snapshot before a shared-phase request and
  /// compare after: a change means the result is unreliable and the request
  /// must be retried under the exclusive lock.
  static std::int64_t InternMissCount();

  /// Monotonic data-version stamp. Bumped once when the outermost mutating
  /// call returns (one bump per mutation batch, before OnMutationsSettled
  /// fires, so observers read the post-batch version), and once per entity
  /// interned or restored outside a mutator (interning bypasses the observer
  /// stream; version-stamp consumers such as the query-result cache treat an
  /// unexplained bump as "flush everything"). Equal versions imply equal
  /// query answers; the converse does not hold. Atomic so shared-phase
  /// readers can stamp results without any lock.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Process-unique id of this instance, assigned at construction from a
  /// monotone counter. Per-thread caches keyed by database identity use
  /// (instance_id, version) rather than (pointer, version): a new database
  /// allocated at a recycled address must not inherit the old one's cache.
  std::uint64_t instance_id() const { return instance_id_; }

 private:
  /// RAII depth guard wrapping every public mutator: OnMutationsSettled
  /// fires when the outermost one returns, so observers never mutate the
  /// database re-entrantly under an in-flight mutation.
  class MutationScope {
   public:
    explicit MutationScope(Database* db) : db_(db) { ++db_->mutation_depth_; }
    ~MutationScope() {
      if (--db_->mutation_depth_ == 0) {
        db_->version_.fetch_add(1, std::memory_order_acq_rel);
        if (!db_->observers_.empty()) db_->NotifySettled();
      }
    }
    MutationScope(const MutationScope&) = delete;
    MutationScope& operator=(const MutationScope&) = delete;

   private:
    Database* db_;
  };

  struct GroupingCache {
    bool dirty = true;
    std::vector<GroupingBlock> blocks;
    std::unordered_map<EntityId, size_t> block_of_index;
  };

  struct ValueIndex {
    bool dirty = true;
    std::unordered_map<EntityId, EntitySet> owners_by_value;
    std::int64_t postings = 0;
  };

  Status CheckAttributeApplies(EntityId e, AttributeId attr,
                               bool want_multivalued) const;
  Status CheckValueAllowed(AttributeId attr, EntityId value) const;
  Status AddToClassInternal(EntityId e, ClassId cls, bool allow_derived);
  /// Scrubs attribute slots whose value class is in `classes` and whose
  /// value is `e`.
  void ScrubReferences(EntityId e, const std::vector<ClassId>& classes);
  void ScrubAllReferences(EntityId e);

  /// Grouping maintenance hooks (also the observer fan-out sites).
  void OnAttributeValueChange(EntityId e, AttributeId attr,
                              const EntitySet& before, const EntitySet& after);
  void OnMembershipChange(EntityId e, ClassId cls, bool added);
  void NotifySchemaChange();
  void NotifySettled();
  /// Surfaces an entity rename as a naming-attribute value delta.
  void NotifyRename(EntityId e, ClassId base, const std::string& old_name,
                    const std::string& new_name);
  void MarkGroupingsDirtyOn(AttributeId attr) ISIS_REQUIRES(lazy_mu_);
  /// Lazily (re)builds `attr`'s value index; nullptr when unindexable.
  ValueIndex* EnsureValueIndexLocked(AttributeId attr) const
      ISIS_REQUIRES(lazy_mu_);
  /// Applies a before/after value-set delta to `attr`'s index if built.
  void ValueIndexUpdate(AttributeId attr, EntityId e, const EntitySet& before,
                        const EntitySet& after) ISIS_REQUIRES(lazy_mu_);
  /// Index fix-up for attribute rows dropped without a value-change
  /// notification (entity deletion, class removal). Takes lazy_mu_ itself.
  void ValueIndexDropRow(AttributeId attr, EntityId e) ISIS_EXCLUDES(lazy_mu_);
  void RebuildGrouping(GroupingId g, GroupingCache* cache) const
      ISIS_REQUIRES(lazy_mu_);
  void IncrementalGroupingUpdate(GroupingId g, EntityId e,
                                 const EntitySet& before,
                                 const EntitySet& after)
      ISIS_REQUIRES(lazy_mu_);
  void GroupingInsert(GroupingCache* cache, EntityId index, EntityId member)
      ISIS_REQUIRES(lazy_mu_);
  void GroupingErase(GroupingCache* cache, EntityId index, EntityId member)
      ISIS_REQUIRES(lazy_mu_);

  Schema schema_;
  Options options_;
  const std::uint64_t instance_id_;  ///< See instance_id().

  // Entity universe. Interning predefined-class entities is logically const
  // (the classes "contain all values of interest"), hence mutable.
  mutable std::vector<Entity> entities_;
  mutable std::vector<bool> entity_live_;
  mutable std::unordered_map<std::int64_t,
                             std::unordered_map<std::string, EntityId>>
      by_name_;                                      // baseclass -> name -> id
  mutable std::map<Value, EntityId> interned_;       // predefined identities
  mutable std::unordered_map<std::int64_t, EntitySet> members_;  // class -> set

  // Attribute value stores.
  std::unordered_map<std::int64_t, std::unordered_map<EntityId, EntityId>>
      single_;
  std::unordered_map<std::int64_t, std::unordered_map<EntityId, EntitySet>>
      multi_;

  /// Guards the lazily-built structures (grouping caches, value indexes)
  /// and read-path stats counters against concurrent shared-phase builds;
  /// see the "Concurrency" section above.
  mutable Mutex lazy_mu_;
  /// Atomic, not lazy_mu_-guarded: InternValue reads it and is reachable
  /// from under lazy_mu_ (RebuildGrouping -> GetValueSet -> naming-attribute
  /// GetSingle -> InternString), so guarding it would self-deadlock. Toggles
  /// happen under the server's exclusive lock; relaxed order suffices.
  std::atomic<bool> intern_frozen_{false};
  mutable std::unordered_map<std::int64_t, GroupingCache> grouping_cache_
      ISIS_GUARDED_BY(lazy_mu_);
  mutable std::unordered_map<std::int64_t, ValueIndex> value_index_
      ISIS_GUARDED_BY(lazy_mu_);
  mutable Stats stats_ ISIS_GUARDED_BY(lazy_mu_);
  std::vector<MutationObserver*> observers_;
  int mutation_depth_ = 0;
  /// See version(). Mutable: interning is a logically-const read that still
  /// has to advance the stamp (it grows the entity universe).
  mutable std::atomic<std::uint64_t> version_{0};
  static const EntitySet kEmptySet;
};

}  // namespace isis::sdm

#endif  // ISIS_SDM_DATABASE_H_
