/// \file consistency.h
/// \brief Full schema/data consistency validation (paper §2, "Remark" on
/// integrity).
///
/// The paper requires that "the data be consistent with the schema":
///   1. each entity is in one baseclass only;
///   2. each subclass is a subset of its parent;
///   3. a singlevalued attribute defines a function (into its value class);
///   4. each grouping is completely determined from its parent class and an
///      attribute.
/// The Database maintains these incrementally at mutation time ("low
/// computational cost"); this checker re-derives them from scratch, serving
/// as the oracle in tests and as the full-revalidation baseline in
/// bench_integrity.

#ifndef ISIS_SDM_CONSISTENCY_H_
#define ISIS_SDM_CONSISTENCY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sdm/database.h"

namespace isis::sdm {

/// A single violated consistency rule, with a description naming the
/// offending objects.
struct Violation {
  enum class Rule {
    kSchemaStructure,     ///< Schema::Validate failed.
    kBaseclassPartition,  ///< Entity in zero or several baseclasses.
    kSubclassSubset,      ///< Subclass member missing from a parent.
    kAttributeFunction,   ///< Value outside the value class / not single.
    kNamingUniqueness,    ///< Duplicate entity names within a baseclass.
    kGroupingDerivation,  ///< Grouping blocks differ from their derivation.
  };
  Rule rule;
  std::string description;
};

const char* ViolationRuleToString(Violation::Rule r);

/// \brief Re-derives all §2 consistency requirements from scratch.
class ConsistencyChecker {
 public:
  explicit ConsistencyChecker(const Database& db) : db_(db) {}

  /// Runs every rule; returns all violations found (empty == consistent).
  std::vector<Violation> CheckAll() const;

  /// Convenience: OK iff CheckAll() is empty; otherwise a Consistency error
  /// naming the first violation and the total count.
  Status Check() const;

 private:
  void CheckSchemaStructure(std::vector<Violation>* out) const;
  void CheckBaseclassPartition(std::vector<Violation>* out) const;
  void CheckSubclassSubsets(std::vector<Violation>* out) const;
  void CheckAttributeFunctions(std::vector<Violation>* out) const;
  void CheckNamingUniqueness(std::vector<Violation>* out) const;
  void CheckGroupingDerivations(std::vector<Violation>* out) const;

  const Database& db_;
};

}  // namespace isis::sdm

#endif  // ISIS_SDM_CONSISTENCY_H_
