#include "input/event.h"

#include "common/strings.h"

namespace isis::input {

std::string EventToString(const Event& e) {
  if (const auto* p = std::get_if<PickEvent>(&e)) {
    return "pick(" + std::to_string(p->x) + "," + std::to_string(p->y) + ")";
  }
  if (const auto* c = std::get_if<CommandEvent>(&e)) {
    return "cmd[" + c->command + "]";
  }
  if (const auto* t = std::get_if<TextEvent>(&e)) {
    return "type[" + t->text + "]";
  }
  const auto& n = std::get<NamedPickEvent>(e);
  return "pick[" + n.target + "]";
}

std::string EncodeEvent(const Event& e) {
  if (const auto* p = std::get_if<PickEvent>(&e)) {
    return "pickat " + std::to_string(p->x) + " " + std::to_string(p->y);
  }
  if (const auto* c = std::get_if<CommandEvent>(&e)) {
    return "cmd " + Escape(c->command);
  }
  if (const auto* t = std::get_if<TextEvent>(&e)) {
    return "type " + Escape(t->text);
  }
  return "pick " + Escape(std::get<NamedPickEvent>(e).target);
}

Result<Event> DecodeEvent(const std::string& line) {
  size_t sp = line.find(' ');
  std::string verb = line.substr(0, sp);
  // No Trim: text arguments round-trip exactly, including spaces.
  std::string arg = sp == std::string::npos ? "" : line.substr(sp + 1);
  if (verb == "pickat") {
    std::vector<std::string> parts = Split(arg, ' ');
    if (parts.size() != 2) {
      return Status::ParseError("bad pickat event: '" + line + "'");
    }
    char* end = nullptr;
    int x = static_cast<int>(std::strtol(parts[0].c_str(), &end, 10));
    if (end == parts[0].c_str() || *end != '\0') {
      return Status::ParseError("bad pickat x: '" + line + "'");
    }
    int y = static_cast<int>(std::strtol(parts[1].c_str(), &end, 10));
    if (end == parts[1].c_str() || *end != '\0') {
      return Status::ParseError("bad pickat y: '" + line + "'");
    }
    return Event{PickEvent{x, y}};
  }
  if (verb == "cmd") return Event{CommandEvent{Unescape(arg)}};
  if (verb == "type") return Event{TextEvent{Unescape(arg)}};
  if (verb == "pick") return Event{NamedPickEvent{Unescape(arg)}};
  return Status::ParseError("bad event encoding: '" + line + "'");
}

Event EventQueue::Pop() {
  Event e = std::move(events_.front());
  events_.pop_front();
  return e;
}

// GCC 12's -Wmaybe-uninitialized misfires on the vector-relocation path of
// push_back for string-holding variants (the moved-from alternative's string
// length looks uninitialized to the inliner). False positive: every Event
// pushed below is fully constructed. Scoped to this one function.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
Result<std::vector<Event>> ParseScript(const std::string& script) {
  std::vector<Event> out;
  int line_no = 0;
  for (const std::string& raw : Split(script, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    size_t sp = line.find(' ');
    std::string verb(line.substr(0, sp));
    std::string arg =
        sp == std::string_view::npos ? "" : std::string(Trim(line.substr(sp)));
    auto bad = [&](const std::string& why) {
      return Status::ParseError("script line " + std::to_string(line_no) +
                                ": " + why);
    };
    if (verb == "pick") {
      if (arg.empty()) return bad("pick needs a target name");
      out.push_back(NamedPickEvent{arg});
    } else if (verb == "pickat") {
      std::vector<std::string> parts = Split(arg, ' ');
      if (parts.size() != 2) return bad("pickat needs x and y");
      char* end = nullptr;
      int x = static_cast<int>(std::strtol(parts[0].c_str(), &end, 10));
      if (*end != '\0') return bad("bad x coordinate");
      int y = static_cast<int>(std::strtol(parts[1].c_str(), &end, 10));
      if (*end != '\0') return bad("bad y coordinate");
      out.push_back(PickEvent{x, y});
    } else if (verb == "cmd") {
      if (arg.empty()) return bad("cmd needs a command name");
      out.push_back(CommandEvent{arg});
    } else if (verb == "type") {
      out.push_back(TextEvent{arg});
    } else {
      return bad("unknown verb '" + verb + "'");
    }
  }
  return out;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace isis::input
