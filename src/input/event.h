/// \file event.h
/// \brief Input events — the stand-in for Brown's APIO input package.
///
/// The paper's interaction grammar is small: the one-button mouse *picks*
/// (click at a screen location), function keys fire commands (a "simple
/// convenience, which greatly speeds up interaction"), and the keyboard
/// enters text into prompts. Events arrive through a queue; a scriptable
/// source replays sessions deterministically so every figure of the paper
/// is a pure function of the script prefix.

#ifndef ISIS_INPUT_EVENT_H_
#define ISIS_INPUT_EVENT_H_

#include <deque>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace isis::input {

/// Mouse pick at screen cell (x, y).
struct PickEvent {
  int x = 0;
  int y = 0;
};

/// A function key or menu command by canonical name ("view contents",
/// "follow", "undo", ...). Menus and function keys share semantics, so they
/// share the event.
struct CommandEvent {
  std::string command;
};

/// A line of keyboard input answering the current prompt.
struct TextEvent {
  std::string text;
};

/// A named pick: "pick the object called X". The controller resolves the
/// name against the current screen's hit regions and converts it to a
/// PickEvent — scripts stay readable while exercising the same hit-testing
/// path a raw coordinate pick uses.
struct NamedPickEvent {
  std::string target;
};

using Event =
    std::variant<PickEvent, CommandEvent, TextEvent, NamedPickEvent>;

/// Short display form for traces, e.g. `pick(12,3)` or `cmd[follow]`.
std::string EventToString(const Event& e);

/// Exact one-line encoding for the write-ahead log: the script verb forms
/// with string arguments escaped, so any event round-trips through
/// DecodeEvent byte-for-byte (unlike ParseScript, no trimming/comments).
std::string EncodeEvent(const Event& e);

/// Inverse of EncodeEvent.
Result<Event> DecodeEvent(const std::string& line);

/// \brief FIFO of pending events.
class EventQueue {
 public:
  void Push(Event e) { events_.push_back(std::move(e)); }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  Event Pop();

 private:
  std::deque<Event> events_;
};

/// \brief Parses a textual session script into events.
///
/// One event per line; `#` starts a comment. Forms:
///   pick <name>          named pick (resolved by the controller)
///   pickat <x> <y>       raw coordinate pick
///   cmd <command...>     function key / menu command
///   type <text...>       keyboard input line
/// Blank lines are ignored.
Result<std::vector<Event>> ParseScript(const std::string& script);

}  // namespace isis::input

#endif  // ISIS_INPUT_EVENT_H_
