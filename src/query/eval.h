/// \file eval.h
/// \brief Type checking and evaluation of ISIS predicates.
///
/// TypeCheck validates a predicate against the schema before it can be
/// committed from the worksheet (the UI greys out `commit` otherwise):
/// every map step must be visible on the class reached so far, compared
/// terms must terminate in the same baseclass tree, and the singleton
/// ordering operators require an ordered predefined baseclass. Evaluate
/// then computes memberships/value sets per the paper's set semantics.

#ifndef ISIS_QUERY_EVAL_H_
#define ISIS_QUERY_EVAL_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "query/plan.h"
#include "query/predicate.h"
#include "sdm/database.h"

namespace isis::query {

/// The evaluation context of a predicate: which class the candidate e ranges
/// over, and (for derived attributes, form (c)) which class the owner x
/// belongs to.
struct PredicateContext {
  ClassId candidate_class;                 ///< V — e ranges over members(V).
  std::optional<ClassId> self_class;       ///< C — set for derived attributes.
};

/// \brief Stateless predicate checker/evaluator over a Database.
///
/// With `use_planner` on (the default), set-level evaluation routes through
/// PlannedPredicate (plan.h): one-placed equality/membership atoms probe
/// the database's attribute-value indexes, clauses are ordered by estimated
/// selectivity, and term images are memoized per query. With the planner
/// off, evaluation scans the candidate set and tests the predicate per
/// entity; `use_grouping_index` (also default-on) then still answers
/// single-atom predicates from an existing grouping on the same attribute —
/// the grouping's blocks are exactly the inverted index value -> owners, so
/// "instruments with family = percussion" reads one block of `by_family`
/// instead of scanning the class. Results are identical every way
/// (asserted by tests); bench_predicates measures the ablations.
class Evaluator {
 public:
  explicit Evaluator(const sdm::Database& db) : db_(db) {}

  /// Enables/disables the index-aware planner (ablation hook).
  void set_use_planner(bool on) { use_planner_ = on; }
  bool use_planner() const { return use_planner_; }

  /// Enables/disables the grouping-as-index fast path used when the
  /// planner is off (ablation hook).
  void set_use_grouping_index(bool on) { use_grouping_index_ = on; }
  bool use_grouping_index() const { return use_grouping_index_; }

  // --- Type checking. ---

  /// Schema-level class a term's map terminates in. Constant terms with an
  /// empty path report the common root baseclass of their constants.
  Result<ClassId> TermTerminalClass(const Term& term,
                                    const PredicateContext& ctx) const;

  /// Full atom check: term shapes legal for the context (kSelf only with
  /// self_class), maps well formed, terminal classes comparable, ordering
  /// operators only on INTEGER/REAL/STRING terminals.
  Status TypeCheckAtom(const Atom& atom, const PredicateContext& ctx) const;

  /// Structure + every placed atom.
  Status TypeCheck(const Predicate& pred, const PredicateContext& ctx) const;

  /// Checks an assignment derivation (the hand operator) for an attribute of
  /// `owner` with value class `value_class`: the term must not use the
  /// candidate operand and must terminate in a class of value_class's tree.
  Status TypeCheckAssignment(const Term& term, ClassId owner,
                             ClassId value_class) const;

  // --- Evaluation. ---

  /// The set a term denotes for candidate `e` / owner `x`.
  sdm::EntitySet EvalTerm(const Term& term, EntityId e, EntityId x) const;

  /// Truth of one atom for candidate `e` / owner `x` (x ignored unless a
  /// kSelf term occurs).
  bool EvalAtom(const Atom& atom, EntityId e, EntityId x) const;

  /// Truth of the whole predicate for `e` (and `x` for form-(c) atoms).
  /// Atoms not placed in any clause are ignored, as on the worksheet.
  bool EvalPredicate(const Predicate& pred, EntityId e,
                     EntityId x = sdm::kNullEntity) const;

  /// { e in members(V) | P(e) } — the membership of a derived subclass.
  /// `candidates` defaults to members of ctx.candidate_class.
  sdm::EntitySet EvaluateSubclass(const Predicate& pred, ClassId v) const;
  sdm::EntitySet EvaluateSubclass(const Predicate& pred, ClassId v,
                                  const sdm::EntitySet& candidates) const;

  /// A(x) for a predicate derivation: { e in members(V) | P_x(e) }.
  sdm::EntitySet EvaluateAttributeFor(const Predicate& pred, ClassId v,
                                      EntityId x) const;

  /// Plans `pred` over class `v`, runs it, and returns the plan dump
  /// (probe vs scan per atom, execution order, estimated and actual
  /// cardinalities). For tests and the REPL's `explain` command.
  std::string Explain(const Predicate& pred, ClassId v) const;

  /// Set comparison per the paper's operator list. Ordering operators apply
  /// to singleton sets only (false otherwise); entities of predefined
  /// baseclasses compare by value (INTEGER and REAL interoperate), user
  /// entities by name.
  bool Compare(const sdm::EntitySet& lhs, SetOp op,
               const sdm::EntitySet& rhs) const;

 private:
  Status CheckTermShape(const Term& term, const PredicateContext& ctx) const;
  /// Orders two entities for kLessEqual/kGreater; nullopt when incomparable.
  std::optional<int> OrderEntities(EntityId a, EntityId b) const;
  /// Attempts the grouping-as-index fast path for a one-placed-atom
  /// predicate; nullopt when the shape does not qualify.
  std::optional<sdm::EntitySet> TryGroupingIndex(
      const Predicate& pred, ClassId v,
      const sdm::EntitySet& candidates) const;

  /// Images of e/x-independent (class-extent) terms of placed atoms,
  /// fetched once per predicate evaluation instead of once per candidate.
  std::unordered_map<const Term*, sdm::EntitySet> HoistExtents(
      const Predicate& pred) const;
  bool EvalAtomWith(
      const Atom& atom, EntityId e, EntityId x,
      const std::unordered_map<const Term*, sdm::EntitySet>& hoisted) const;
  bool EvalPredicateWith(
      const Predicate& pred, EntityId e, EntityId x,
      const std::unordered_map<const Term*, sdm::EntitySet>& hoisted) const;

  const sdm::Database& db_;
  bool use_planner_ = true;
  bool use_grouping_index_ = true;
};

}  // namespace isis::query

#endif  // ISIS_QUERY_EVAL_H_
