/// \file predicate.h
/// \brief The ISIS predicate language (paper §2, "Derived Subclass" /
/// "Derived Attributes").
///
/// A query in ISIS is a stored predicate: a derived subclass
/// S = { e in V | P(e) } or a derived attribute A(x) = { e in V | P_x(e) }.
/// Predicates are boolean combinations (in conjunctive or disjunctive normal
/// form — the worksheet's "switch and/or" button toggles which) of atoms:
///
///   (a) <map_V(e)> <op> <map_V(e)>
///   (b) <map_V(e)> <op> <map_C(w)>,  w a constant subset of some class C
///   (c) <map_V(e)> <op> <map_C(x)>   (derived attributes only; x the owner)
///
/// with set comparison operators =, subset, superset, proper variants, the
/// weak match ~ (sets share an element), singleton ordering <=, >, and the
/// negation of each. The unary "hand" operator assigns a map image directly
/// as an attribute derivation.

#ifndef ISIS_QUERY_PREDICATE_H_
#define ISIS_QUERY_PREDICATE_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "sdm/database.h"

namespace isis::query {

/// Set comparison operators of the atom grammar.
enum class SetOp {
  kEqual,           ///< =   set equality
  kSubset,          ///< <=s subset-or-equal
  kSuperset,        ///< >=s superset-or-equal
  kProperSubset,    ///< <s  strict subset
  kProperSuperset,  ///< >s  strict superset
  kWeakMatch,       ///< ~   the two sets have a common element
  kLessEqual,       ///< <=  singleton ordering
  kGreater,         ///< >   singleton ordering
};

/// Display form, e.g. "=", "(=", "~", ">".
const char* SetOpToString(SetOp op);

/// What a term's map starts from.
enum class Operand {
  kCandidate,    ///< e — the entity being tested for membership in V.
  kSelf,         ///< x — the owner entity (form (c), derived attributes only).
  kConstant,     ///< A fixed set of entities picked at the data level.
  kClassExtent,  ///< All current members of a class (the worksheet's "map
                 ///< starting at class" with w = C; evaluated live).
};

/// \brief One side of an atom: a map applied to an operand.
///
/// The identity map (empty path) yields the operand itself; the paper's
/// "constant" right-hand-side option is a kConstant term with an empty path.
struct Term {
  Operand origin = Operand::kCandidate;
  /// Constant entities (used when origin == kConstant).
  sdm::EntitySet constants;
  /// The extent class (used when origin == kClassExtent).
  ClassId extent_class;
  /// The attribute composition A1 A2 ... An to apply.
  std::vector<AttributeId> path;

  static Term Candidate(std::vector<AttributeId> path = {}) {
    return Term{Operand::kCandidate, {}, ClassId(), std::move(path)};
  }
  static Term Self(std::vector<AttributeId> path = {}) {
    return Term{Operand::kSelf, {}, ClassId(), std::move(path)};
  }
  static Term Constant(sdm::EntitySet constants,
                       std::vector<AttributeId> path = {}) {
    return Term{Operand::kConstant, std::move(constants), ClassId(),
                std::move(path)};
  }
  static Term ClassExtent(ClassId cls, std::vector<AttributeId> path = {}) {
    return Term{Operand::kClassExtent, {}, cls, std::move(path)};
  }
};

/// \brief One atom of a predicate.
struct Atom {
  Term lhs;
  SetOp op = SetOp::kEqual;
  /// The paper provides the negation of every operator.
  bool negated = false;
  Term rhs;
};

/// Normal form of the clause structure (worksheet "switch and/or").
enum class NormalForm {
  kConjunctive,  ///< AND over clauses of OR over atoms.
  kDisjunctive,  ///< OR over clauses of AND over atoms.
};

/// \brief A stored predicate: an atom list plus clauses referencing atoms.
///
/// Mirrors the worksheet: atoms are built in the atom list window and placed
/// into clause windows; an atom may appear in several clauses. Atoms not
/// placed in any clause do not participate in evaluation.
struct Predicate {
  std::vector<Atom> atoms;
  /// Each clause is a list of indices into `atoms`.
  std::vector<std::vector<int>> clauses;
  NormalForm form = NormalForm::kConjunctive;

  /// True when no clause holds any atom. An empty conjunction is true (the
  /// derived class equals its parent); an empty disjunction is false.
  bool empty() const {
    for (const std::vector<int>& c : clauses) {
      if (!c.empty()) return false;
    }
    return true;
  }

  /// Structural sanity: every clause index in range. Empty clauses are
  /// legal (unused worksheet windows) and skipped by evaluation.
  Status ValidateStructure() const;

  /// Convenience builder: appends `atom` and places it in clause `clause`
  /// (clauses are created as needed). Returns the atom index.
  int AddAtom(Atom atom, int clause);
};

/// \brief How a derived attribute computes its values.
struct AttributeDerivation {
  enum class Kind {
    /// The hand icon: A(x) = map(x) directly.
    kAssignment,
    /// A(x) = { e in V | P_x(e) }.
    kPredicate,
  };
  Kind kind = Kind::kAssignment;
  /// kAssignment: the map applied to x (origin must be kSelf or kConstant).
  Term assignment;
  /// kPredicate: atoms may use kSelf terms (form (c)).
  Predicate predicate;

  static AttributeDerivation Assign(Term t) {
    AttributeDerivation d;
    d.kind = Kind::kAssignment;
    d.assignment = std::move(t);
    return d;
  }
  static AttributeDerivation FromPredicate(Predicate p) {
    AttributeDerivation d;
    d.kind = Kind::kPredicate;
    d.predicate = std::move(p);
    return d;
  }
};

/// Renders a term as the worksheet displays it, e.g.
/// "e.members.plays" or "{piano}" or "x.size".
std::string TermToString(const sdm::Database& db, const Term& term);

/// Renders one atom, e.g. "e.size = {4}".
std::string AtomToString(const sdm::Database& db, const Atom& atom);

/// Multi-line display of the full predicate, clause per line.
std::string PredicateToString(const sdm::Database& db, const Predicate& pred);

}  // namespace isis::query

#endif  // ISIS_QUERY_PREDICATE_H_
