/// \file plan.h
/// \brief Index-aware predicate planning and execution.
///
/// A PlannedPredicate sits between the stored predicate and the naive
/// per-entity scan of Evaluator::EvalPredicate. At construction it analyzes
/// every placed atom: one-placed equality/membership atoms against constant
/// sets (the shape `e.A <op> {c1,...,ck}`) are rewritten into probes of the
/// database's attribute-value indexes, everything else stays a scan atom.
/// Selectivities are estimated from index cardinalities (probes) or
/// per-operator priors (scans), atoms inside a clause are ordered so the
/// short-circuit fires as early as possible, and clauses are ordered
/// most-selective-first (CNF) / most-likely-true-first (DNF).
///
/// Execution then runs in up to two stages: clauses made entirely of probe
/// atoms are answered set-at-a-time from the index (CNF: intersected into
/// the candidate set as a prefilter; DNF: unioned straight into the result),
/// and only the residual clauses are tested entity-at-a-time over whatever
/// candidates survive. Term images computed during the scan are memoized per
/// query (entity x map-path -> image), so a composition `A1 A2 ... An`
/// shared by several atoms is evaluated once per entity, constants once per
/// query, and class extents once per query instead of once per candidate.
///
/// The plan is an optimization only: results are bit-identical to the naive
/// scan (property-tested in plan_test.cpp). Atoms whose probe rewrite cannot
/// be proven equivalent -- negated atoms, dead or null constants, maps
/// longer than one step, unindexable attributes -- simply stay scan atoms.
///
/// Thread-safety: a PlannedPredicate instance holds per-query memo state and
/// must stay confined to one thread; the multi-session server builds one
/// per request. It is safe to build and run many instances concurrently
/// under the server's *shared* lock: the only database state a plan touches
/// lazily (value indexes, index cardinalities) is built and probed under
/// the database's internal mutex (see the "Concurrency" section of
/// sdm/database.h), and everything else it reads is immutable while the
/// shared lock is held.

#ifndef ISIS_QUERY_PLAN_H_
#define ISIS_QUERY_PLAN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/predicate.h"
#include "sdm/database.h"

namespace isis::query {

/// True when any atom of `pred` (placed or not) walks through `attr` on
/// either side. Used by callers that cache a PlannedPredicate across
/// mutations of one attribute: the cache is only sound when the predicate
/// never reads that attribute.
bool PredicateMentionsAttribute(const Predicate& pred, AttributeId attr);

/// \brief The four-scope term-image memo backing one PlannedPredicate.
///
/// Normally arena-backed: a PlannedPredicate borrows the calling thread's
/// memo block at construction and returns it at destruction, so the map
/// node allocations survive from one request to the next instead of being
/// rebuilt per evaluation. The candidate/self/constant scopes are cleared
/// on every borrow (their keys only mean something within one query --
/// `consts` is keyed by Term address), but the class-extent scope is keyed
/// by (class id, path ids) and survives across borrows for as long as the
/// database's (instance_id, version) stands still: repeated queries over
/// the same extents skip rematerializing them even on result-cache misses.
/// A nested plan (one built while another is alive on the same thread)
/// finds the arena busy and falls back to a privately owned block.
struct TermMemos {
  // Candidate-rooted images are valid for one e, self-rooted for one x;
  // constants and class extents are e/x-independent.
  std::map<std::vector<AttributeId>, sdm::EntitySet> cand;
  EntityId cand_e = sdm::kNullEntity;
  std::map<std::vector<AttributeId>, sdm::EntitySet> self;
  EntityId self_x = sdm::kNullEntity;
  std::unordered_map<const Term*, sdm::EntitySet> consts;
  std::map<std::pair<std::int64_t, std::vector<AttributeId>>, sdm::EntitySet>
      extents;
};

/// How one atom will be executed.
struct AtomPlan {
  int atom_index = 0;       ///< Index into Predicate::atoms.
  bool probe = false;       ///< Answered from the value index.
  bool always_empty = false;  ///< Provably false for every candidate
                              ///< (singlevalued equality vs a 2+ element
                              ///< constant set).
  double est_selectivity = 1.0;  ///< Estimated P(atom true) per candidate.
  double cost = 1.0;             ///< Relative per-entity test cost.
  std::int64_t est_cardinality = -1;  ///< Estimated matches (probes only).
  /// Filled in after set-at-a-time execution; -1 until then.
  std::int64_t actual_cardinality = -1;

  // Probe execution state (lazily materialized).
  sdm::EntitySet matched;
  bool matched_built = false;
};

/// One clause in execution order.
struct ClausePlan {
  std::vector<AtomPlan> atoms;   ///< Short-circuit test order.
  bool probe_only = false;       ///< Every atom is a probe: set-at-a-time.
  double est_selectivity = 1.0;  ///< Estimated P(clause true) per candidate.
  sdm::EntitySet matched;        ///< Probe-only clauses: combined match set.
  bool matched_built = false;
};

/// Counters from the last Evaluate() call.
struct PlanStats {
  std::int64_t candidates_in = 0;    ///< |candidates| handed to Evaluate.
  std::int64_t after_prefilter = 0;  ///< Survivors of the probe prefilter.
  std::int64_t scanned = 0;          ///< Entities tested entity-at-a-time.
  std::int64_t result = 0;           ///< |result|.
  std::int64_t probe_clauses = 0;    ///< Clauses answered set-at-a-time.
  std::int64_t probe_atoms = 0;      ///< Atoms planned as probes.
};

/// \brief A predicate compiled against one candidate class.
///
/// Holds per-query memo state, so one instance serves one logical query:
/// either a single Evaluate() over a candidate set, or a run of Test()
/// calls against an unchanging database. Callers interleaving mutations
/// must build a fresh instance (or prove, via PredicateMentionsAttribute,
/// that the mutated attribute is invisible to the predicate).
class PlannedPredicate {
 public:
  /// Builds the plan. Probe analysis may lazily build value indexes (they
  /// are maintained incrementally afterwards).
  PlannedPredicate(const sdm::Database& db, const Predicate& pred, ClassId v);
  ~PlannedPredicate();  ///< Returns the borrowed memo block to the arena.

  PlannedPredicate(const PlannedPredicate&) = delete;
  PlannedPredicate& operator=(const PlannedPredicate&) = delete;

  /// { e in candidates | P_x(e) } -- bit-identical to filtering candidates
  /// with Evaluator::EvalPredicate.
  sdm::EntitySet Evaluate(const sdm::EntitySet& candidates,
                          EntityId x = sdm::kNullEntity);

  /// Truth of the predicate for one entity, through the plan (probe atoms
  /// become point probes of the index; scan atoms are memoized).
  bool Test(EntityId e, EntityId x = sdm::kNullEntity);

  /// Multi-line dump of the chosen plan: probe vs scan per atom in execution
  /// order, estimated and (after Evaluate) actual cardinalities.
  std::string Explain() const;

  const PlanStats& stats() const { return stats_; }

 private:
  AtomPlan AnalyzeAtom(int atom_index);
  /// Combined matched set of a probe-only clause (CNF: union of its atoms'
  /// matches; DNF: intersection).
  const sdm::EntitySet& ClauseMatched(ClausePlan* cp);
  const sdm::EntitySet& AtomMatched(AtomPlan* ap);
  bool TestProbeAtom(const AtomPlan& ap, EntityId e);
  bool TestScanAtom(const Atom& atom, EntityId e, EntityId x);
  bool TestClause(ClausePlan* cp, EntityId e, EntityId x);
  /// Memoized term image; see file comment for the memo scopes.
  const sdm::EntitySet& TermImage(const Term& term, EntityId e, EntityId x);

  const sdm::Database& db_;
  const Predicate& pred_;
  ClassId class_;
  std::int64_t class_size_ = 0;
  std::vector<ClausePlan> clauses_;
  PlanStats stats_;

  // --- Per-query map-image memo (arena-backed; see TermMemos). ---
  TermMemos* memos_ = nullptr;
  std::unique_ptr<TermMemos> owned_memos_;  ///< Set iff the arena was busy.
};

}  // namespace isis::query

#endif  // ISIS_QUERY_PLAN_H_
