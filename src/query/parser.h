/// \file parser.h
/// \brief A textual surface syntax for ISIS predicates.
///
/// The interface builds predicates graphically; this parser provides the
/// equivalent textual form for programmatic use, the REPL, and tests. The
/// syntax mirrors the worksheet's display format (TermToString /
/// PredicateToString), so what the atom list shows is what you can parse
/// back:
///
///   predicate := group (CONN group)*        CONN is 'and' or 'or', all the
///                                           same at one level
///   group     := '(' atom (DUAL atom)* ')'  DUAL is the other connective
///              | atom
///   atom      := term [not]OP term
///   term      := 'e' path                   map from the candidate
///              | 'x' path                   map from the owner (form (c))
///              | '{' name (',' name)* '}'   constants (resolved in the
///                                           left side's terminal class)
///              | CLASSNAME path             class-extent map
///   path      := ('.' ATTRIBUTE)*
///   OP        := = | [= | ]= | [ | ] | ~ | <= | >
///
/// `e.size = {4} and e.members.plays ]= {piano}` parses to the paper's
/// quartets predicate in conjunctive normal form; a top-level `or` chain
/// yields disjunctive normal form. Attribute names resolve stepwise along
/// the map; constant names resolve in the class the left-hand map
/// terminates in (exactly the worksheet's "constant" flow, including
/// lazily interning predefined values like `{4}`).

#ifndef ISIS_QUERY_PARSER_H_
#define ISIS_QUERY_PARSER_H_

#include <optional>
#include <string>

#include "query/predicate.h"
#include "sdm/database.h"

namespace isis::query {

/// Parses `text` into a predicate over candidates from `candidate_class`.
/// `self_class` enables `x` terms (derived-attribute predicates). The
/// result is type-checked; errors carry positions in their messages.
Result<Predicate> ParsePredicate(const sdm::Database& db,
                                 ClassId candidate_class,
                                 std::optional<ClassId> self_class,
                                 const std::string& text);

/// Convenience overload without an owner class.
Result<Predicate> ParsePredicate(const sdm::Database& db,
                                 ClassId candidate_class,
                                 const std::string& text);

/// Parses a single term (no operator), e.g. a derivation map like
/// `x.members.plays`. `start_hint` gives candidate class context.
Result<Term> ParseTerm(const sdm::Database& db, ClassId candidate_class,
                       std::optional<ClassId> self_class,
                       const std::string& text);

}  // namespace isis::query

#endif  // ISIS_QUERY_PARSER_H_
