#include "query/eval.h"

#include <algorithm>

namespace isis::query {

using sdm::BaseKind;
using sdm::Entity;
using sdm::EntitySet;
using sdm::kNullEntity;
using sdm::Schema;

Status Evaluator::CheckTermShape(const Term& term,
                                 const PredicateContext& ctx) const {
  if (term.origin == Operand::kSelf && !ctx.self_class.has_value()) {
    return Status::TypeError(
        "a map from the owner entity (form (c)) is only legal in a derived "
        "attribute's predicate");
  }
  if (term.origin == Operand::kConstant) {
    for (EntityId c : term.constants) {
      if (c == kNullEntity || !db_.HasEntity(c)) {
        return Status::NotFound("constant entity does not exist");
      }
    }
  }
  if (term.origin == Operand::kClassExtent &&
      !db_.schema().HasClass(term.extent_class)) {
    return Status::NotFound("term extent class does not exist");
  }
  return Status::OK();
}

Result<ClassId> Evaluator::TermTerminalClass(const Term& term,
                                             const PredicateContext& ctx) const {
  ISIS_RETURN_NOT_OK(CheckTermShape(term, ctx));
  const Schema& schema = db_.schema();
  ClassId start;
  switch (term.origin) {
    case Operand::kCandidate:
      start = ctx.candidate_class;
      break;
    case Operand::kSelf:
      start = *ctx.self_class;
      break;
    case Operand::kClassExtent:
      start = term.extent_class;
      break;
    case Operand::kConstant: {
      if (term.constants.empty()) {
        // An empty constant set denotes the empty set in any class; with a
        // nonempty path the first step's owner anchors the start class.
        if (term.path.empty()) {
          return Status::TypeError(
              "an empty constant with no map has no class");
        }
        start = schema.GetAttribute(term.path[0]).owner;
        break;
      }
      // All constants must share one baseclass; the start class is that
      // baseclass (membership of each constant in deeper classes is a data
      // question, checked at evaluation).
      ClassId root;
      for (EntityId c : term.constants) {
        ClassId base = db_.GetEntity(c).baseclass;
        if (!root.valid()) {
          root = base;
        } else if (root != base) {
          return Status::TypeError(
              "constants must be drawn from one baseclass");
        }
      }
      start = root;
      break;
    }
  }
  if (!schema.HasClass(start)) {
    return Status::NotFound("term start class does not exist");
  }
  // Walk the map; each step must be visible on the class reached so far
  // (or on a subclass chain — the paper forms maps along the semantic
  // network, and an attribute of a *subclass* of the reached class is not
  // guaranteed applicable to every entity, so we require visibility).
  ClassId cur = start;
  for (AttributeId a : term.path) {
    if (!schema.HasAttribute(a)) {
      return Status::NotFound("map attribute does not exist");
    }
    if (!schema.AttributeVisibleOn(cur, a)) {
      // Allow a step defined on a *descendant* of cur: the map then simply
      // drops entities outside that descendant (evaluation skips
      // non-members). This matches the worksheet, which lets the user stack
      // any class reachable in the network.
      if (!schema.IsAncestorOrSelf(cur, schema.GetAttribute(a).owner)) {
        return Status::TypeError("attribute '" + schema.GetAttribute(a).name +
                                 "' is not applicable to class '" +
                                 schema.GetClass(cur).name + "'");
      }
    }
    cur = schema.GetAttribute(a).value_class;
  }
  return cur;
}

Status Evaluator::TypeCheckAtom(const Atom& atom,
                                const PredicateContext& ctx) const {
  if (atom.lhs.origin == Operand::kConstant) {
    return Status::TypeError(
        "the left hand side of an atom is a map from e (or x), not a "
        "constant");
  }
  ISIS_ASSIGN_OR_RETURN(ClassId lterm, TermTerminalClass(atom.lhs, ctx));
  ISIS_ASSIGN_OR_RETURN(ClassId rterm, TermTerminalClass(atom.rhs, ctx));
  const Schema& schema = db_.schema();
  if (schema.RootOf(lterm) != schema.RootOf(rterm)) {
    return Status::TypeError(
        "compared maps terminate in different baseclass trees ('" +
        schema.GetClass(lterm).name + "' vs '" + schema.GetClass(rterm).name +
        "')");
  }
  if (atom.op == SetOp::kLessEqual || atom.op == SetOp::kGreater) {
    BaseKind kind = schema.GetClass(schema.RootOf(lterm)).base_kind;
    if (kind != BaseKind::kInteger && kind != BaseKind::kReal &&
        kind != BaseKind::kString) {
      return Status::TypeError(
          "ordering operators require INTEGER, REAL or STRING terminals");
    }
  }
  return Status::OK();
}

Status Evaluator::TypeCheck(const Predicate& pred,
                            const PredicateContext& ctx) const {
  ISIS_RETURN_NOT_OK(pred.ValidateStructure());
  // Only placed atoms need to be well typed; half-built atoms may sit in the
  // atom list while the user works.
  std::vector<bool> placed(pred.atoms.size(), false);
  for (const std::vector<int>& clause : pred.clauses) {
    for (int idx : clause) placed[idx] = true;
  }
  for (size_t i = 0; i < pred.atoms.size(); ++i) {
    if (!placed[i]) continue;
    Status st = TypeCheckAtom(pred.atoms[i], ctx);
    if (!st.ok()) {
      return Status(st.code(),
                    "atom " + std::to_string(i + 1) + ": " + st.message());
    }
  }
  return Status::OK();
}

Status Evaluator::TypeCheckAssignment(const Term& term, ClassId owner,
                                      ClassId value_class) const {
  if (term.origin == Operand::kCandidate) {
    return Status::TypeError(
        "an assignment derivation maps from the owner entity x (or a "
        "constant), not from a candidate e");
  }
  PredicateContext ctx;
  ctx.candidate_class = value_class;  // unused by kSelf/kConstant terms
  ctx.self_class = owner;
  ISIS_ASSIGN_OR_RETURN(ClassId terminal, TermTerminalClass(term, ctx));
  const Schema& schema = db_.schema();
  if (schema.RootOf(terminal) != schema.RootOf(value_class)) {
    return Status::TypeError(
        "the assigned map terminates outside the attribute's value class "
        "tree");
  }
  return Status::OK();
}

EntitySet Evaluator::EvalTerm(const Term& term, EntityId e, EntityId x) const {
  EntitySet start;
  switch (term.origin) {
    case Operand::kCandidate:
      start = {e};
      break;
    case Operand::kSelf:
      start = {x};
      break;
    case Operand::kConstant:
      start = term.constants;
      break;
    case Operand::kClassExtent:
      start = db_.Members(term.extent_class);
      break;
  }
  return db_.EvaluateMap(start, term.path);
}

std::optional<int> Evaluator::OrderEntities(EntityId a, EntityId b) const {
  if (!db_.HasEntity(a) || !db_.HasEntity(b)) return std::nullopt;
  const Entity& ea = db_.GetEntity(a);
  const Entity& eb = db_.GetEntity(b);
  if (ea.has_value && eb.has_value) {
    BaseKind ka = ea.value.kind();
    BaseKind kb = eb.value.kind();
    // INTEGER and REAL compare numerically across kinds.
    auto numeric = [](const Entity& ent) -> std::optional<double> {
      if (ent.value.kind() == BaseKind::kInteger) {
        return static_cast<double>(ent.value.integer());
      }
      if (ent.value.kind() == BaseKind::kReal) return ent.value.real();
      return std::nullopt;
    };
    std::optional<double> na = numeric(ea);
    std::optional<double> nb = numeric(eb);
    if (na && nb) return *na < *nb ? -1 : (*na > *nb ? 1 : 0);
    if (ka == BaseKind::kString && kb == BaseKind::kString) {
      int c = ea.value.str().compare(eb.value.str());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    return std::nullopt;
  }
  if (!ea.has_value && !eb.has_value) {
    int c = ea.name.compare(eb.name);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return std::nullopt;
}

bool Evaluator::Compare(const EntitySet& lhs, SetOp op,
                        const EntitySet& rhs) const {
  switch (op) {
    case SetOp::kEqual:
      return lhs == rhs;
    case SetOp::kSubset:
      return std::includes(rhs.begin(), rhs.end(), lhs.begin(), lhs.end());
    case SetOp::kSuperset:
      return std::includes(lhs.begin(), lhs.end(), rhs.begin(), rhs.end());
    case SetOp::kProperSubset:
      return lhs != rhs &&
             std::includes(rhs.begin(), rhs.end(), lhs.begin(), lhs.end());
    case SetOp::kProperSuperset:
      return lhs != rhs &&
             std::includes(lhs.begin(), lhs.end(), rhs.begin(), rhs.end());
    case SetOp::kWeakMatch: {
      // True iff the sets share an element.
      auto li = lhs.begin();
      auto ri = rhs.begin();
      while (li != lhs.end() && ri != rhs.end()) {
        if (*li == *ri) return true;
        if (*li < *ri) {
          ++li;
        } else {
          ++ri;
        }
      }
      return false;
    }
    case SetOp::kLessEqual:
    case SetOp::kGreater: {
      if (lhs.size() != 1 || rhs.size() != 1) return false;
      std::optional<int> ord = OrderEntities(*lhs.begin(), *rhs.begin());
      if (!ord.has_value()) return false;
      return op == SetOp::kLessEqual ? *ord <= 0 : *ord > 0;
    }
  }
  return false;
}

bool Evaluator::EvalAtom(const Atom& atom, EntityId e, EntityId x) const {
  EntitySet lhs = EvalTerm(atom.lhs, e, x);
  EntitySet rhs = EvalTerm(atom.rhs, e, x);
  bool truth = Compare(lhs, atom.op, rhs);
  return atom.negated ? !truth : truth;
}

bool Evaluator::EvalPredicate(const Predicate& pred, EntityId e,
                              EntityId x) const {
  if (pred.form == NormalForm::kConjunctive) {
    for (const std::vector<int>& clause : pred.clauses) {
      if (clause.empty()) continue;  // unused clause window
      bool any = false;
      for (int idx : clause) {
        if (EvalAtom(pred.atoms[idx], e, x)) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return true;
  }
  for (const std::vector<int>& clause : pred.clauses) {
    if (clause.empty()) continue;  // unused clause window
    bool all = true;
    for (int idx : clause) {
      if (!EvalAtom(pred.atoms[idx], e, x)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

EntitySet Evaluator::EvaluateSubclass(const Predicate& pred, ClassId v) const {
  return EvaluateSubclass(pred, v, db_.Members(v));
}

std::optional<EntitySet> Evaluator::TryGroupingIndex(
    const Predicate& pred, ClassId v, const EntitySet& candidates) const {
  // Shape: exactly one placed atom, not negated, lhs = e.A (one step),
  // rhs = a nonempty constant set with no map.
  const std::vector<int>* only_clause = nullptr;
  for (const std::vector<int>& clause : pred.clauses) {
    if (clause.empty()) continue;
    if (only_clause != nullptr) return std::nullopt;
    only_clause = &clause;
  }
  if (only_clause == nullptr || only_clause->size() != 1) return std::nullopt;
  const Atom& atom = pred.atoms[(*only_clause)[0]];
  if (atom.negated) return std::nullopt;
  if (atom.lhs.origin != Operand::kCandidate || atom.lhs.path.size() != 1) {
    return std::nullopt;
  }
  if (atom.rhs.origin != Operand::kConstant || !atom.rhs.path.empty() ||
      atom.rhs.constants.empty()) {
    return std::nullopt;
  }
  AttributeId attr = atom.lhs.path[0];
  if (!db_.schema().HasAttribute(attr)) return std::nullopt;
  const sdm::AttributeDef& def = db_.schema().GetAttribute(attr);
  // Supported operators: weak match (union of blocks), superset
  // (intersection of blocks), and equality for singlevalued attributes
  // against a singleton constant.
  bool equality_ok = atom.op == SetOp::kEqual && !def.multivalued &&
                     atom.rhs.constants.size() == 1;
  if (atom.op != SetOp::kWeakMatch && atom.op != SetOp::kSuperset &&
      !equality_ok) {
    return std::nullopt;
  }
  // A grouping on this attribute whose parent covers the candidate class.
  GroupingId index;
  for (GroupingId g : db_.schema().AllGroupings()) {
    const sdm::GroupingDef& gdef = db_.schema().GetGrouping(g);
    if (gdef.on_attribute == attr &&
        db_.schema().IsAncestorOrSelf(gdef.parent, v)) {
      index = g;
      break;
    }
  }
  if (!index.valid()) return std::nullopt;

  EntitySet matched;
  if (atom.op == SetOp::kWeakMatch) {
    for (EntityId c : atom.rhs.constants) {
      EntitySet block = db_.GetGroupingBlock(index, c);
      matched.insert(block.begin(), block.end());
    }
  } else if (atom.op == SetOp::kSuperset) {
    bool first = true;
    for (EntityId c : atom.rhs.constants) {
      EntitySet block = db_.GetGroupingBlock(index, c);
      if (first) {
        matched = std::move(block);
        first = false;
      } else {
        EntitySet kept;
        for (EntityId e : matched) {
          if (block.count(e) > 0) kept.insert(e);
        }
        matched = std::move(kept);
      }
      if (matched.empty()) break;
    }
  } else {  // singlevalued equality against one constant
    matched = db_.GetGroupingBlock(index, *atom.rhs.constants.begin());
  }
  // Restrict to the requested candidates (the grouping's parent may be an
  // ancestor of v, i.e. a superset).
  EntitySet out;
  for (EntityId e : matched) {
    if (candidates.count(e) > 0) out.insert(e);
  }
  return out;
}

std::unordered_map<const Term*, EntitySet> Evaluator::HoistExtents(
    const Predicate& pred) const {
  std::unordered_map<const Term*, EntitySet> hoisted;
  for (const std::vector<int>& clause : pred.clauses) {
    for (int idx : clause) {
      const Atom& atom = pred.atoms[idx];
      for (const Term* t : {&atom.lhs, &atom.rhs}) {
        if (t->origin == Operand::kClassExtent && hoisted.count(t) == 0) {
          hoisted.emplace(t, EvalTerm(*t, kNullEntity, kNullEntity));
        }
      }
    }
  }
  return hoisted;
}

bool Evaluator::EvalAtomWith(
    const Atom& atom, EntityId e, EntityId x,
    const std::unordered_map<const Term*, EntitySet>& hoisted) const {
  auto image = [&](const Term& t) {
    auto it = hoisted.find(&t);
    return it != hoisted.end() ? it->second : EvalTerm(t, e, x);
  };
  bool truth = Compare(image(atom.lhs), atom.op, image(atom.rhs));
  return atom.negated ? !truth : truth;
}

bool Evaluator::EvalPredicateWith(
    const Predicate& pred, EntityId e, EntityId x,
    const std::unordered_map<const Term*, EntitySet>& hoisted) const {
  if (pred.form == NormalForm::kConjunctive) {
    for (const std::vector<int>& clause : pred.clauses) {
      if (clause.empty()) continue;
      bool any = false;
      for (int idx : clause) {
        if (EvalAtomWith(pred.atoms[idx], e, x, hoisted)) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return true;
  }
  for (const std::vector<int>& clause : pred.clauses) {
    if (clause.empty()) continue;
    bool all = true;
    for (int idx : clause) {
      if (!EvalAtomWith(pred.atoms[idx], e, x, hoisted)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

EntitySet Evaluator::EvaluateSubclass(const Predicate& pred, ClassId v,
                                      const EntitySet& candidates) const {
  if (use_planner_) {
    PlannedPredicate plan(db_, pred, v);
    return plan.Evaluate(candidates);
  }
  if (use_grouping_index_) {
    std::optional<EntitySet> indexed = TryGroupingIndex(pred, v, candidates);
    if (indexed.has_value()) return std::move(*indexed);
  }
  std::unordered_map<const Term*, EntitySet> hoisted = HoistExtents(pred);
  EntitySet out;
  for (EntityId e : candidates) {
    if (EvalPredicateWith(pred, e, kNullEntity, hoisted)) out.insert(e);
  }
  return out;
}

EntitySet Evaluator::EvaluateAttributeFor(const Predicate& pred, ClassId v,
                                          EntityId x) const {
  if (use_planner_) {
    PlannedPredicate plan(db_, pred, v);
    return plan.Evaluate(db_.Members(v), x);
  }
  std::unordered_map<const Term*, EntitySet> hoisted = HoistExtents(pred);
  EntitySet out;
  for (EntityId e : db_.Members(v)) {
    if (EvalPredicateWith(pred, e, x, hoisted)) out.insert(e);
  }
  return out;
}

std::string Evaluator::Explain(const Predicate& pred, ClassId v) const {
  PlannedPredicate plan(db_, pred, v);
  plan.Evaluate(db_.Members(v));
  return plan.Explain();
}

}  // namespace isis::query
