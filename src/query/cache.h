/// \file cache.h
/// \brief Delta-invalidated query-result cache for the read path.
///
/// ISIS sessions re-issue the same or overlapping predicates constantly
/// (interactive browsing is repetitive by nature), so the server keeps a
/// small LRU map from *normalized predicate* to the result id-set it
/// evaluated to. Three mechanisms keep a hit exactly as correct as a fresh
/// evaluation:
///
///   1. Normalization. The key renders each placed atom by ids (operand
///      origin, path attribute ids, constant entity ids, extent class id,
///      operator, negation), sorts and dedupes atoms within a clause and
///      clauses within the predicate (AND/OR are commutative and
///      idempotent), and drops unplaced atoms and empty clauses — exactly
///      the parts evaluation ignores. Two textually different queries that
///      evaluate identically therefore share one entry, and renames cannot
///      stale a key because names never enter it.
///
///   2. Selective invalidation. The cache registers as a MutationObserver.
///      Each entry carries the flattened read set of its predicate
///      (live/deps.h dependency analysis: the classes whose membership and
///      the attributes whose values the query can read). Deltas collected
///      during a mutation batch evict, at OnMutationsSettled, only the
///      entries whose read set intersects the touched ids; a schema-level
///      change (deletion, value-class switch, extra parent) flushes
///      everything. The analysis over-approximates, so eviction is only
///      ever too eager, never too lazy.
///
///   3. Version stamps. sdm::Database::version() advances once per mutation
///      batch and once per entity interned or restored outside a mutator.
///      The cache tracks the last version it reconciled to; finding the
///      database at any other version at lookup/insert time means a change
///      happened that produced no settle notification (interning grows a
///      predefined class extent silently), and the cache flushes wholesale
///      rather than guess. Results are stored as shared_ptr id-sets and
///      formatted at hit time, so concurrent readers share one copy and
///      eviction never invalidates a reader mid-format.
///
/// Thread-safety: every public method and observer callback locks the
/// cache's own small mutex; hits copy a shared_ptr under it, so the
/// critical section is a hash probe plus a list splice. Observer callbacks
/// only run during the owner's exclusive phase, but the cache does not rely
/// on that — it is safe under any interleaving the database itself allows.
/// The cache registers itself with the database on construction and
/// removes itself on destruction; it must not outlive the database.

#ifndef ISIS_QUERY_CACHE_H_
#define ISIS_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sync.h"
#include "query/predicate.h"
#include "sdm/database.h"

namespace isis::query {

class ResultCache : public sdm::MutationObserver {
 public:
  struct Options {
    int capacity = 1024;  ///< Entry bound; beyond it the LRU tail is evicted.
    /// Register as a mutation observer for *selective* invalidation (the
    /// normal mode). false skips registration -- the destructor then never
    /// touches the database, so the cache may safely outlive it, at the
    /// cost of invalidation degrading to a full flush on any version
    /// advance (SyncLocked's unexplained-bump rule fires for every
    /// mutation). For single-threaded tooling like the REPL, whose
    /// database can be replaced wholesale by undo/redo/load.
    bool observe = true;
  };

  /// Flattened read set of one cached query, as produced by
  /// live::FlattenForCache (live/deps.h). Sorted-unique id vectors.
  struct Deps {
    std::vector<std::int64_t> classes;  ///< Membership reads.
    std::vector<std::int64_t> attrs;    ///< Value reads.
  };

  struct Counters {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t insertions = 0;
    std::int64_t evictions = 0;       ///< Capacity (LRU) evictions.
    std::int64_t invalidations = 0;   ///< Entries evicted by matching deltas.
    std::int64_t schema_flushes = 0;  ///< Full flushes on schema change.
    std::int64_t version_flushes = 0; ///< Full flushes on unexplained bumps.
  };

  /// Registers with `db` as a mutation observer. `db` must outlive this.
  ResultCache(sdm::Database* db, Options options);
  explicit ResultCache(sdm::Database* db) : ResultCache(db, Options()) {}
  ~ResultCache() override;

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Canonical cache key of `{ e in members(v) | pred }`. Pure function of
  /// the predicate structure and ids; see the file comment, rule 1.
  static std::string NormalizeKey(const Predicate& pred, ClassId v);

  /// Version-current result for `key`, or nullptr. Counts a hit or a miss
  /// and refreshes the entry's LRU position.
  std::shared_ptr<const sdm::EntitySet> Lookup(const std::string& key)
      ISIS_EXCLUDES(mu_);

  /// Like Lookup but counts nothing and keeps the LRU order — for `explain`
  /// to report hit/miss without skewing the stats.
  bool Peek(const std::string& key) ISIS_EXCLUDES(mu_);

  /// Publishes a result evaluated while the database was at version
  /// `computed_at`. A no-op if the database has moved since (the result may
  /// reflect a half-applied change) or if an entry for `key` already exists
  /// (a concurrent reader won the race; the results are identical).
  void Insert(const std::string& key, const Deps& deps,
              std::shared_ptr<const sdm::EntitySet> result,
              std::uint64_t computed_at) ISIS_EXCLUDES(mu_);

  Counters counters() const ISIS_EXCLUDES(mu_);
  std::int64_t size() const ISIS_EXCLUDES(mu_);

  // --- sdm::MutationObserver (record now, evict at settle). ---
  void OnMembership(EntityId e, ClassId cls, bool added) override
      ISIS_EXCLUDES(mu_);
  void OnAttributeValue(EntityId e, AttributeId attr,
                        const sdm::EntitySet& before,
                        const sdm::EntitySet& after) override
      ISIS_EXCLUDES(mu_);
  void OnSchemaChange() override ISIS_EXCLUDES(mu_);
  void OnMutationsSettled() override ISIS_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const sdm::EntitySet> result;
    std::uint64_t version = 0;  ///< Database version the result reflects.
    Deps deps;
    std::list<Entry*>::iterator lru_it;
  };

  /// Reconciles to the database's current version: any advance the settle
  /// protocol did not explain flushes everything (file comment, rule 3).
  void SyncLocked() ISIS_REQUIRES(mu_);
  void FlushLocked() ISIS_REQUIRES(mu_);
  /// Unlinks `e` from the LRU list and both dep indexes, then frees it.
  void EraseLocked(Entry* e) ISIS_REQUIRES(mu_);
  void TouchLocked(Entry* e) ISIS_REQUIRES(mu_);

  sdm::Database* const db_;
  const Options options_;

  mutable Mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_
      ISIS_GUARDED_BY(mu_);
  std::list<Entry*> lru_ ISIS_GUARDED_BY(mu_);  ///< Front = most recent.
  /// Inverted dep indexes: touched id -> entries to evict.
  std::unordered_map<std::int64_t, std::set<Entry*>> by_class_
      ISIS_GUARDED_BY(mu_);
  std::unordered_map<std::int64_t, std::set<Entry*>> by_attr_
      ISIS_GUARDED_BY(mu_);
  /// Deltas recorded since the last settle.
  std::set<std::int64_t> pending_classes_ ISIS_GUARDED_BY(mu_);
  std::set<std::int64_t> pending_attrs_ ISIS_GUARDED_BY(mu_);
  bool pending_schema_ ISIS_GUARDED_BY(mu_) = false;
  std::uint64_t synced_version_ ISIS_GUARDED_BY(mu_) = 0;
  Counters counters_ ISIS_GUARDED_BY(mu_);
};

}  // namespace isis::query

#endif  // ISIS_QUERY_CACHE_H_
