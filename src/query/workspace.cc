#include "query/workspace.h"

#include <algorithm>

namespace isis::query {

using sdm::AttributeDef;
using sdm::AttrOrigin;
using sdm::ClassDef;
using sdm::EntitySet;
using sdm::Membership;

Workspace::Workspace() : db_(sdm::Database::Options{}) {}

Workspace::Workspace(sdm::Database::Options options) : db_(options) {}

Result<PredicateContext> Workspace::SubclassContext(ClassId cls) const {
  if (!db_.schema().HasClass(cls)) {
    return Status::NotFound("class does not exist");
  }
  const ClassDef& def = db_.schema().GetClass(cls);
  if (def.is_base()) {
    return Status::Consistency(
        "a baseclass has no membership predicate (it owns its entities)");
  }
  PredicateContext ctx;
  ctx.candidate_class = def.parent();
  return ctx;
}

EntitySet Workspace::SubclassCandidates(ClassId cls) const {
  const ClassDef& def = db_.schema().GetClass(cls);
  EntitySet candidates = db_.Members(def.parents[0]);
  for (size_t i = 1; i < def.parents.size(); ++i) {
    EntitySet filtered;
    for (EntityId e : candidates) {
      if (db_.IsMember(e, def.parents[i])) filtered.insert(e);
    }
    candidates = std::move(filtered);
  }
  return candidates;
}

Status Workspace::DefineSubclassMembership(ClassId cls, Predicate pred) {
  ISIS_ASSIGN_OR_RETURN(PredicateContext ctx, SubclassContext(cls));
  Evaluator eval(db_);
  ISIS_RETURN_NOT_OK(eval.TypeCheck(pred, ctx));
  ISIS_RETURN_NOT_OK(db_.SetMembership(cls, Membership::kDerived));
  subclass_preds_[cls.value()] = std::move(pred);
  ++catalog_version_;
  return ReevaluateSubclass(cls);
}

Status Workspace::ReevaluateSubclass(ClassId cls) {
  auto it = subclass_preds_.find(cls.value());
  if (it == subclass_preds_.end()) {
    return Status::NotFound("class has no stored membership predicate");
  }
  ISIS_ASSIGN_OR_RETURN(PredicateContext ctx, SubclassContext(cls));
  Evaluator eval(db_);
  EntitySet members =
      eval.EvaluateSubclass(it->second, ctx.candidate_class,
                            SubclassCandidates(cls));
  return db_.SetDerivedMembers(cls, members);
}

const Predicate* Workspace::SubclassPredicate(ClassId cls) const {
  auto it = subclass_preds_.find(cls.value());
  return it == subclass_preds_.end() ? nullptr : &it->second;
}

Status Workspace::DefineAttributeDerivation(AttributeId attr,
                                            AttributeDerivation derivation) {
  if (!db_.schema().HasAttribute(attr)) {
    return Status::NotFound("attribute does not exist");
  }
  const AttributeDef& def = db_.schema().GetAttribute(attr);
  if (!def.multivalued) {
    return Status::TypeError(
        "derived attributes denote sets; the attribute must be multivalued");
  }
  Evaluator eval(db_);
  if (derivation.kind == AttributeDerivation::Kind::kAssignment) {
    ISIS_RETURN_NOT_OK(eval.TypeCheckAssignment(derivation.assignment,
                                                def.owner, def.value_class));
  } else {
    PredicateContext ctx;
    ctx.candidate_class = def.value_class;
    ctx.self_class = def.owner;
    ISIS_RETURN_NOT_OK(eval.TypeCheck(derivation.predicate, ctx));
  }
  ISIS_RETURN_NOT_OK(
      db_.SetAttributeOrigin(attr, AttrOrigin::kDerived));
  attr_derivs_[attr.value()] = std::move(derivation);
  ++catalog_version_;
  return ReevaluateAttribute(attr);
}

EntitySet Workspace::ComputeAttributeValue(const AttributeDerivation& d,
                                           const AttributeDef& def,
                                           EntityId x) const {
  Evaluator eval(db_);
  EntitySet values;
  if (d.kind == AttributeDerivation::Kind::kAssignment) {
    values = eval.EvalTerm(d.assignment, sdm::kNullEntity, x);
  } else {
    values = eval.EvaluateAttributeFor(d.predicate, def.value_class, x);
  }
  // The assigned map may terminate in an ancestor of the value class; only
  // entities actually in the value class are storable values.
  EntitySet filtered;
  for (EntityId v : values) {
    if (db_.IsMember(v, def.value_class)) filtered.insert(v);
  }
  return filtered;
}

Status Workspace::ReevaluateAttribute(AttributeId attr) {
  auto it = attr_derivs_.find(attr.value());
  if (it == attr_derivs_.end()) {
    return Status::NotFound("attribute has no stored derivation");
  }
  const AttributeDef& def = db_.schema().GetAttribute(attr);
  // Materialize the derivation for every owner (inherited use included:
  // members of subclasses are members of the owner too).
  for (EntityId x : db_.Members(def.owner)) {
    ISIS_RETURN_NOT_OK(db_.SetMulti(x, attr, ComputeAttributeValue(it->second,
                                                                   def, x)));
  }
  return Status::OK();
}

const AttributeDerivation* Workspace::GetAttributeDerivation(
    AttributeId attr) const {
  auto it = attr_derivs_.find(attr.value());
  return it == attr_derivs_.end() ? nullptr : &it->second;
}

Status Workspace::DefineConstraint(const std::string& name, ClassId cls,
                                   Predicate pred) {
  ISIS_RETURN_NOT_OK(constraints_.Define(db_, name, cls, std::move(pred)));
  ++catalog_version_;
  return Status::OK();
}

Status Workspace::DropConstraint(const std::string& name) {
  ISIS_RETURN_NOT_OK(constraints_.Drop(name));
  ++catalog_version_;
  return Status::OK();
}

Status Workspace::ReevaluateAll(int max_rounds) {
  for (int round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (const auto& [cls_raw, pred] : subclass_preds_) {
      (void)pred;
      ClassId cls(cls_raw);
      if (!db_.schema().HasClass(cls)) continue;
      EntitySet before = db_.Members(cls);
      ISIS_RETURN_NOT_OK(ReevaluateSubclass(cls));
      if (db_.Members(cls) != before) changed = true;
    }
    for (const auto& [attr_raw, d] : attr_derivs_) {
      (void)d;
      AttributeId attr(attr_raw);
      if (!db_.schema().HasAttribute(attr)) continue;
      const AttributeDef& def = db_.schema().GetAttribute(attr);
      // Cheap change detection: compare value sets before/after per owner.
      std::map<EntityId, EntitySet> before;
      for (EntityId x : db_.Members(def.owner)) {
        before[x] = db_.GetMulti(x, attr);
      }
      ISIS_RETURN_NOT_OK(ReevaluateAttribute(attr));
      for (EntityId x : db_.Members(def.owner)) {
        if (db_.GetMulti(x, attr) != before[x]) {
          changed = true;
          break;
        }
      }
    }
    if (!changed) return Status::OK();
  }
  return Status::Consistency(
      "derived definitions did not reach a fixpoint (cyclic derivation?)");
}

bool Workspace::TermMentions(const Term& term, AttributeId attr) {
  return std::find(term.path.begin(), term.path.end(), attr) !=
         term.path.end();
}

bool Workspace::PredicateMentions(const Predicate& p, AttributeId attr) {
  for (const Atom& a : p.atoms) {
    if (TermMentions(a.lhs, attr) || TermMentions(a.rhs, attr)) return true;
  }
  return false;
}

bool Workspace::DerivationMentions(const AttributeDerivation& d,
                                   AttributeId attr) {
  if (d.kind == AttributeDerivation::Kind::kAssignment) {
    return TermMentions(d.assignment, attr);
  }
  return PredicateMentions(d.predicate, attr);
}

bool Workspace::AttributeReferencedByQueries(AttributeId attr) const {
  for (const auto& [cls, pred] : subclass_preds_) {
    (void)cls;
    if (PredicateMentions(pred, attr)) return true;
  }
  for (const auto& [a, d] : attr_derivs_) {
    (void)a;
    if (DerivationMentions(d, attr)) return true;
  }
  if (constraints_.MentionsAttribute(attr)) return true;
  return false;
}

Status Workspace::DeleteClass(ClassId cls) {
  // The class's own predicate dies with it; attributes owned by the class
  // are deleted by the schema, so their derivations must be checked first.
  if (db_.schema().HasClass(cls)) {
    for (AttributeId a : db_.schema().GetClass(cls).own_attributes) {
      if (AttributeReferencedByQueries(a)) {
        return Status::Consistency(
            "attribute '" + db_.schema().GetAttribute(a).name +
            "' of this class is referenced by a stored query");
      }
    }
  }
  ISIS_RETURN_NOT_OK(db_.DeleteClass(cls));
  subclass_preds_.erase(cls.value());
  ++catalog_version_;
  if (db_.schema().HasClass(cls)) return Status::OK();  // unreachable
  return Status::OK();
}

Status Workspace::DeleteAttribute(AttributeId attr) {
  if (AttributeReferencedByQueries(attr)) {
    return Status::Consistency(
        "attribute is referenced by a stored query; delete or edit the query "
        "first");
  }
  ISIS_RETURN_NOT_OK(db_.DeleteAttribute(attr));
  attr_derivs_.erase(attr.value());
  ++catalog_version_;
  return Status::OK();
}

Status Workspace::DeleteEntity(EntityId e) {
  ISIS_RETURN_NOT_OK(db_.DeleteEntity(e));
  for (auto& [cls, pred] : subclass_preds_) {
    (void)cls;
    for (Atom& a : pred.atoms) {
      a.lhs.constants.erase(e);
      a.rhs.constants.erase(e);
    }
  }
  for (auto& [attr, d] : attr_derivs_) {
    (void)attr;
    d.assignment.constants.erase(e);
    for (Atom& a : d.predicate.atoms) {
      a.lhs.constants.erase(e);
      a.rhs.constants.erase(e);
    }
  }
  constraints_.ScrubEntity(e);
  ++catalog_version_;  // constant sets changed
  return Status::OK();
}

void Workspace::RestoreSubclassPredicate(ClassId cls, Predicate pred) {
  subclass_preds_[cls.value()] = std::move(pred);
  ++catalog_version_;
}

void Workspace::RestoreAttributeDerivation(AttributeId attr,
                                           AttributeDerivation d) {
  attr_derivs_[attr.value()] = std::move(d);
  ++catalog_version_;
}

}  // namespace isis::query
