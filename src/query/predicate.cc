#include "query/predicate.h"

#include "common/strings.h"

namespace isis::query {

const char* SetOpToString(SetOp op) {
  switch (op) {
    case SetOp::kEqual:
      return "=";
    case SetOp::kSubset:
      return "[=";  // the worksheet's subset glyph
    case SetOp::kSuperset:
      return "]=";
    case SetOp::kProperSubset:
      return "[";
    case SetOp::kProperSuperset:
      return "]";
    case SetOp::kWeakMatch:
      return "~";
    case SetOp::kLessEqual:
      return "<=";
    case SetOp::kGreater:
      return ">";
  }
  return "?";
}

Status Predicate::ValidateStructure() const {
  // Empty clauses are legal: they are unused clause windows on the
  // worksheet and do not participate in evaluation.
  for (size_t c = 0; c < clauses.size(); ++c) {
    for (int idx : clauses[c]) {
      if (idx < 0 || static_cast<size_t>(idx) >= atoms.size()) {
        return Status::InvalidArgument("clause " + std::to_string(c + 1) +
                                       " references a nonexistent atom");
      }
    }
  }
  return Status::OK();
}

int Predicate::AddAtom(Atom atom, int clause) {
  atoms.push_back(std::move(atom));
  int index = static_cast<int>(atoms.size()) - 1;
  if (clause >= 0) {
    if (static_cast<size_t>(clause) >= clauses.size()) {
      clauses.resize(clause + 1);
    }
    clauses[clause].push_back(index);
  }
  return index;
}

std::string TermToString(const sdm::Database& db, const Term& term) {
  std::string out;
  switch (term.origin) {
    case Operand::kCandidate:
      out = "e";
      break;
    case Operand::kSelf:
      out = "x";
      break;
    case Operand::kConstant: {
      out = "{";
      bool first = true;
      for (EntityId c : term.constants) {
        if (!first) out += ", ";
        first = false;
        out += db.NameOf(c);
      }
      out += "}";
      break;
    }
    case Operand::kClassExtent:
      out = db.schema().HasClass(term.extent_class)
                ? db.schema().GetClass(term.extent_class).name
                : "?";
      break;
  }
  for (AttributeId a : term.path) {
    out += ".";
    out += db.schema().HasAttribute(a) ? db.schema().GetAttribute(a).name
                                       : "?";
  }
  return out;
}

std::string AtomToString(const sdm::Database& db, const Atom& atom) {
  std::string out = TermToString(db, atom.lhs);
  out += " ";
  if (atom.negated) out += "not";
  out += SetOpToString(atom.op);
  out += " ";
  out += TermToString(db, atom.rhs);
  return out;
}

std::string PredicateToString(const sdm::Database& db, const Predicate& pred) {
  const char* inner = pred.form == NormalForm::kConjunctive ? " or " : " and ";
  const char* outer = pred.form == NormalForm::kConjunctive ? " and " : " or ";
  std::string out;
  for (size_t c = 0; c < pred.clauses.size(); ++c) {
    if (c > 0) out += outer;
    out += "(";
    for (size_t i = 0; i < pred.clauses[c].size(); ++i) {
      if (i > 0) out += inner;
      out += AtomToString(db, pred.atoms[pred.clauses[c][i]]);
    }
    out += ")";
  }
  if (pred.clauses.empty()) {
    out = pred.form == NormalForm::kConjunctive ? "(true)" : "(false)";
  }
  return out;
}

}  // namespace isis::query
