/// \file constraints.h
/// \brief Integrity constraints — the paper's §5 future work, built from
/// the worksheet's own predicate language.
///
/// "Second, we would like to be able to specify arbitrarily complex
/// predicates in a similar graphical way as a part of an integrity
/// constraint specification system. For example, how would a user specify
/// that an employee cannot earn more than his/her manager using only a
/// screen and a pointing device?"
///
/// A constraint is a named predicate over a class that every member must
/// satisfy. The manager example is exactly one worksheet atom:
///
///   employees must satisfy  NOT( e.salary > e.manager.salary )
///
/// Constraints use the same Term/Atom/Predicate machinery (and hence the
/// same worksheet interaction) as derived classes. They can be checked on
/// demand, and optionally *enforced*: a mutation batch is rejected when a
/// check after it finds violations (the caller rolls back via the store
/// snapshot, as the UI's undo already does).

#ifndef ISIS_QUERY_CONSTRAINTS_H_
#define ISIS_QUERY_CONSTRAINTS_H_

#include <map>
#include <string>
#include <vector>

#include "query/eval.h"
#include "query/predicate.h"
#include "sdm/database.h"

namespace isis::query {

/// A stored integrity constraint: all members of `cls` must satisfy
/// `predicate`.
struct Constraint {
  std::string name;
  ClassId cls;
  Predicate predicate;
};

/// One violated constraint with the offending entities.
struct ConstraintViolation {
  std::string constraint;
  ClassId cls;
  sdm::EntitySet violators;
};

/// \brief Catalog of named constraints over one database.
///
/// Owned by the Workspace (which serializes it alongside the stored
/// queries). Checking is read-only; enforcement is the caller's
/// snapshot/rollback, matching the UI's undo design.
class ConstraintCatalog {
 public:
  /// Adds a constraint after type-checking its predicate against `cls`
  /// (same rules as a membership predicate: candidate terms range over the
  /// class, no self terms). Names are unique.
  Status Define(const sdm::Database& db, const std::string& name, ClassId cls,
                Predicate predicate);

  /// Removes a constraint by name.
  Status Drop(const std::string& name);

  /// True if a constraint with this name exists.
  bool Has(const std::string& name) const;

  const Constraint* Find(const std::string& name) const;

  /// All constraints in definition order.
  std::vector<const Constraint*> All() const;
  size_t size() const { return order_.size(); }

  /// Evaluates every constraint; returns all violations (empty == all
  /// hold). Constraints over classes that no longer exist are reported as
  /// violations with an empty violator set.
  std::vector<ConstraintViolation> CheckAll(const sdm::Database& db) const;

  /// Evaluates one constraint.
  Result<ConstraintViolation> Check(const sdm::Database& db,
                                    const std::string& name) const;

  /// OK iff every constraint holds; otherwise a Consistency error naming
  /// the first violated constraint and a violator.
  Status Enforce(const sdm::Database& db) const;

  /// True if any constraint's predicate mentions `attr` on a map path.
  bool MentionsAttribute(AttributeId attr) const;

  /// Removes `e` from every stored constant set (entity deletion support).
  void ScrubEntity(EntityId e);

  /// Restores a constraint during deserialization without type-checking.
  void Restore(Constraint c);

 private:
  std::map<std::string, Constraint> by_name_;
  std::vector<std::string> order_;
};

}  // namespace isis::query

#endif  // ISIS_QUERY_CONSTRAINTS_H_
