/// \file workspace.h
/// \brief Workspace: a Database plus the stored queries attached to its
/// schema — the top-level handle the interface, store and examples use.
///
/// The paper's central idea is that "a query is a new derived class": the
/// predicate built on the worksheet is saved as part of the schema and can
/// be re-evaluated later. The Workspace owns that catalog (per-class
/// membership predicates and per-attribute derivations) and the commit
/// machinery, and guards deletions so the schema cannot drop objects a
/// stored query still references.

#ifndef ISIS_QUERY_WORKSPACE_H_
#define ISIS_QUERY_WORKSPACE_H_

#include <map>
#include <optional>
#include <string>

#include "query/constraints.h"
#include "query/eval.h"
#include "query/predicate.h"
#include "sdm/database.h"

namespace isis::query {

/// \brief Database + stored-query catalog.
class Workspace {
 public:
  Workspace();
  explicit Workspace(sdm::Database::Options options);

  /// The underlying data/schema engine. Mutations through this reference are
  /// legal; only deletions of objects referenced by stored queries must go
  /// through the guarded wrappers below.
  sdm::Database& db() { return db_; }
  const sdm::Database& db() const { return db_; }

  /// A name for the whole database ("Instrumental_Music"); shown in the view
  /// title bars and used as the default save name.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Derived subclasses. ---

  /// Stores `pred` as the membership predicate of `cls` (the worksheet's
  /// commit for (re)define membership): type-checks it against the parent
  /// class, marks the class derived, evaluates, and installs the result.
  Status DefineSubclassMembership(ClassId cls, Predicate pred);

  /// Re-runs the stored predicate of one derived class against current data.
  Status ReevaluateSubclass(ClassId cls);

  /// The stored predicate of `cls`, if it is derived.
  const Predicate* SubclassPredicate(ClassId cls) const;

  // --- Derived attributes. ---

  /// Stores `derivation` for `attr` (which must be multivalued — the
  /// paper's derived attributes denote sets), type-checks, evaluates for
  /// every owner entity and installs the values.
  Status DefineAttributeDerivation(AttributeId attr,
                                   AttributeDerivation derivation);

  /// Re-runs one derived attribute against current data.
  Status ReevaluateAttribute(AttributeId attr);

  const AttributeDerivation* GetAttributeDerivation(AttributeId attr) const;

  // --- Integrity constraints (the paper's §5 extension). ---

  /// Defines a named constraint: every member of `cls` must satisfy
  /// `pred`. Type-checked like a membership predicate.
  Status DefineConstraint(const std::string& name, ClassId cls,
                          Predicate pred);
  Status DropConstraint(const std::string& name);
  /// Read access to the catalog (Check/CheckAll/Enforce take the db).
  const ConstraintCatalog& constraints() const { return constraints_; }
  /// Convenience: all violations against current data.
  std::vector<ConstraintViolation> CheckConstraints() const {
    return constraints_.CheckAll(db_);
  }
  /// OK iff every constraint holds.
  Status EnforceConstraints() const { return constraints_.Enforce(db_); }

  // --- Whole-catalog recomputation. ---

  /// Re-evaluates every derived class and attribute until the data reaches a
  /// fixpoint (derived objects may feed each other), bounded by
  /// `max_rounds`; returns Consistency if the bound is hit without
  /// convergence (a cyclic derivation).
  Status ReevaluateAll(int max_rounds = 16);

  // --- Guarded deletions (protect stored-query references). ---

  /// Deletes a class; additionally fails if a stored query draws constants
  /// from an entity of the class... (entities survive class deletion, so the
  /// only extra guard is the class's own predicate, which is dropped).
  Status DeleteClass(ClassId cls);

  /// Deletes an attribute; fails while any stored predicate or derivation
  /// mentions it on a map path or a grouping is defined on it.
  Status DeleteAttribute(AttributeId attr);

  /// Deletes an entity; scrubs it out of every stored constant set first
  /// (an absent constant would otherwise silently change query answers).
  Status DeleteEntity(EntityId e);

  /// True if some stored query's map path mentions `attr`.
  bool AttributeReferencedByQueries(AttributeId attr) const;

  /// Number of stored derived-subclass predicates / attribute derivations.
  size_t StoredSubclassCount() const { return subclass_preds_.size(); }
  size_t StoredAttributeCount() const { return attr_derivs_.size(); }

  /// Raw catalogs for serialization (store/).
  const std::map<std::int64_t, Predicate>& subclass_predicates() const {
    return subclass_preds_;
  }
  const std::map<std::int64_t, AttributeDerivation>& attribute_derivations()
      const {
    return attr_derivs_;
  }
  /// Installs a stored query during load without evaluating (store/).
  void RestoreSubclassPredicate(ClassId cls, Predicate pred);
  void RestoreAttributeDerivation(AttributeId attr, AttributeDerivation d);
  void RestoreConstraint(Constraint c) {
    ++catalog_version_;
    constraints_.Restore(std::move(c));
  }

  // --- Incremental-maintenance support (live/). ---

  /// Bumped whenever the stored-query catalog changes (define, drop,
  /// restore, guarded delete); the live-view engine compares it to decide
  /// when its dependency index is stale.
  std::int64_t catalog_version() const { return catalog_version_; }

  /// Context for the membership predicate of `cls` (candidates = parent).
  Result<PredicateContext> SubclassContext(ClassId cls) const;
  /// Candidate set for a (possibly multi-parent) derived class: entities
  /// belonging to every parent.
  sdm::EntitySet SubclassCandidates(ClassId cls) const;
  /// A(x) for one owner under a stored derivation (value-class filtered).
  sdm::EntitySet ComputeAttributeValue(const AttributeDerivation& d,
                                       const sdm::AttributeDef& def,
                                       EntityId x) const;

 private:
  static bool TermMentions(const Term& term, AttributeId attr);
  static bool DerivationMentions(const AttributeDerivation& d,
                                 AttributeId attr);
  static bool PredicateMentions(const Predicate& p, AttributeId attr);

  sdm::Database db_;
  std::string name_ = "untitled";
  std::int64_t catalog_version_ = 0;
  std::map<std::int64_t, Predicate> subclass_preds_;           // ClassId ->
  std::map<std::int64_t, AttributeDerivation> attr_derivs_;    // AttributeId ->
  ConstraintCatalog constraints_;
};

}  // namespace isis::query

#endif  // ISIS_QUERY_WORKSPACE_H_
