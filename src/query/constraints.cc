#include "query/constraints.h"

#include <algorithm>

#include "common/strings.h"

namespace isis::query {

Status ConstraintCatalog::Define(const sdm::Database& db,
                                 const std::string& name, ClassId cls,
                                 Predicate predicate) {
  if (!IsValidName(name)) {
    return Status::InvalidArgument("invalid constraint name: '" + name + "'");
  }
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("constraint '" + name + "' already exists");
  }
  if (!db.schema().HasClass(cls)) {
    return Status::NotFound("constrained class does not exist");
  }
  Evaluator eval(db);
  PredicateContext ctx;
  ctx.candidate_class = cls;
  ISIS_RETURN_NOT_OK(eval.TypeCheck(predicate, ctx));
  by_name_[name] = Constraint{name, cls, std::move(predicate)};
  order_.push_back(name);
  return Status::OK();
}

Status ConstraintCatalog::Drop(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no constraint named '" + name + "'");
  }
  by_name_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), name),
               order_.end());
  return Status::OK();
}

bool ConstraintCatalog::Has(const std::string& name) const {
  return by_name_.count(name) > 0;
}

const Constraint* ConstraintCatalog::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

std::vector<const Constraint*> ConstraintCatalog::All() const {
  std::vector<const Constraint*> out;
  for (const std::string& name : order_) {
    out.push_back(&by_name_.at(name));
  }
  return out;
}

std::vector<ConstraintViolation> ConstraintCatalog::CheckAll(
    const sdm::Database& db) const {
  std::vector<ConstraintViolation> out;
  for (const std::string& name : order_) {
    Result<ConstraintViolation> v = Check(db, name);
    if (!v.ok()) {
      // A constraint over a vanished class is itself a violation of the
      // catalog; report it with no violators.
      out.push_back(ConstraintViolation{name, ClassId(), {}});
      continue;
    }
    if (!v->violators.empty()) out.push_back(std::move(*v));
  }
  return out;
}

Result<ConstraintViolation> ConstraintCatalog::Check(
    const sdm::Database& db, const std::string& name) const {
  const Constraint* c = Find(name);
  if (c == nullptr) {
    return Status::NotFound("no constraint named '" + name + "'");
  }
  if (!db.schema().HasClass(c->cls)) {
    return Status::NotFound("constrained class no longer exists");
  }
  ConstraintViolation v;
  v.constraint = name;
  v.cls = c->cls;
  // The satisfier set comes through the planner (index probes where the
  // predicate's shape allows); the violators are the complement.
  sdm::EntitySet ok = Evaluator(db).EvaluateSubclass(c->predicate, c->cls);
  for (EntityId e : db.Members(c->cls)) {
    if (ok.count(e) == 0) v.violators.insert(e);
  }
  return v;
}

Status ConstraintCatalog::Enforce(const sdm::Database& db) const {
  std::vector<ConstraintViolation> violations = CheckAll(db);
  if (violations.empty()) return Status::OK();
  const ConstraintViolation& first = violations[0];
  std::string who = first.violators.empty()
                        ? "(class missing)"
                        : "'" + db.NameOf(*first.violators.begin()) + "'";
  return Status::Consistency(
      "constraint '" + first.constraint + "' violated by " + who + " (" +
      std::to_string(first.violators.size()) + " violator(s); " +
      std::to_string(violations.size()) + " constraint(s) failing)");
}

bool ConstraintCatalog::MentionsAttribute(AttributeId attr) const {
  for (const auto& [name, c] : by_name_) {
    (void)name;
    for (const Atom& a : c.predicate.atoms) {
      if (std::find(a.lhs.path.begin(), a.lhs.path.end(), attr) !=
              a.lhs.path.end() ||
          std::find(a.rhs.path.begin(), a.rhs.path.end(), attr) !=
              a.rhs.path.end()) {
        return true;
      }
    }
  }
  return false;
}

void ConstraintCatalog::ScrubEntity(EntityId e) {
  for (auto& [name, c] : by_name_) {
    (void)name;
    for (Atom& a : c.predicate.atoms) {
      a.lhs.constants.erase(e);
      a.rhs.constants.erase(e);
    }
  }
}

void ConstraintCatalog::Restore(Constraint c) {
  if (by_name_.count(c.name) == 0) order_.push_back(c.name);
  by_name_[c.name] = std::move(c);
}

}  // namespace isis::query
