#include "query/cache.h"

#include <algorithm>
#include <utility>

namespace isis::query {

namespace {

void AppendPath(const std::vector<AttributeId>& path, std::string* out) {
  for (AttributeId a : path) {
    out->push_back('.');
    *out += std::to_string(a.value());
  }
}

/// Canonical id-level rendering of one term, e.g. "e.3.5", "c{7,9}.2",
/// "C12.4", "x". Names never appear, so renames cannot stale a key.
std::string TermKey(const Term& term) {
  std::string out;
  switch (term.origin) {
    case Operand::kCandidate:
      out = "e";
      break;
    case Operand::kSelf:
      out = "x";
      break;
    case Operand::kConstant: {
      out = "c{";
      bool first = true;
      for (EntityId c : term.constants) {  // EntitySet: already id-ordered
        if (!first) out.push_back(',');
        first = false;
        out += std::to_string(c.value());
      }
      out.push_back('}');
      break;
    }
    case Operand::kClassExtent:
      out = "C" + std::to_string(term.extent_class.value());
      break;
  }
  AppendPath(term.path, &out);
  return out;
}

std::string AtomKey(const Atom& atom) {
  std::string out = TermKey(atom.lhs);
  out.push_back(' ');
  if (atom.negated) out.push_back('!');
  out += std::to_string(static_cast<int>(atom.op));
  out.push_back(' ');
  out += TermKey(atom.rhs);
  return out;
}

void SortUnique(std::vector<std::string>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out.push_back(sep);
    out += p;
  }
  return out;
}

}  // namespace

std::string ResultCache::NormalizeKey(const Predicate& pred, ClassId v) {
  // Atoms sort and dedupe within a clause, clauses within the predicate:
  // both connectives are commutative and idempotent. Unplaced atoms and
  // empty clauses drop out, exactly as evaluation skips them. The normal
  // form stays in the key because an empty CNF is "everything" while an
  // empty DNF is "nothing", and mixed forms group atoms differently.
  std::vector<std::string> clause_keys;
  for (const std::vector<int>& clause : pred.clauses) {
    std::vector<std::string> atom_keys;
    for (int idx : clause) {
      if (idx < 0 || static_cast<std::size_t>(idx) >= pred.atoms.size()) {
        continue;
      }
      atom_keys.push_back(AtomKey(pred.atoms[idx]));
    }
    if (atom_keys.empty()) continue;
    SortUnique(&atom_keys);
    clause_keys.push_back(Join(atom_keys, ','));
  }
  SortUnique(&clause_keys);
  std::string out(pred.form == NormalForm::kConjunctive ? "&" : "|");
  out += std::to_string(v.value());
  out.push_back(':');
  out += Join(clause_keys, ';');
  return out;
}

ResultCache::ResultCache(sdm::Database* db, Options options)
    : db_(db), options_(options) {
  {
    MutexLock lock(mu_);
    synced_version_ = db_->version();
  }
  if (options_.observe) db_->AddObserver(this);
}

ResultCache::~ResultCache() {
  // Non-observing caches must not touch db_ here: they are allowed to
  // outlive it (Options::observe).
  if (options_.observe) db_->RemoveObserver(this);
}

void ResultCache::SyncLocked() {
  const std::uint64_t v = db_->version();
  if (v == synced_version_) return;
  // The database moved without a settle we processed: an intern or restore
  // grew the entity universe behind the observer stream's back. Nothing
  // says which entries that can affect, so drop them all.
  if (!entries_.empty()) ++counters_.version_flushes;
  FlushLocked();
  synced_version_ = v;
}

void ResultCache::FlushLocked() {
  lru_.clear();
  by_class_.clear();
  by_attr_.clear();
  entries_.clear();
}

void ResultCache::EraseLocked(Entry* e) {
  lru_.erase(e->lru_it);
  for (std::int64_t c : e->deps.classes) {
    auto it = by_class_.find(c);
    if (it != by_class_.end()) {
      it->second.erase(e);
      if (it->second.empty()) by_class_.erase(it);
    }
  }
  for (std::int64_t a : e->deps.attrs) {
    auto it = by_attr_.find(a);
    if (it != by_attr_.end()) {
      it->second.erase(e);
      if (it->second.empty()) by_attr_.erase(it);
    }
  }
  entries_.erase(e->key);  // frees e
}

void ResultCache::TouchLocked(Entry* e) {
  lru_.erase(e->lru_it);
  lru_.push_front(e);
  e->lru_it = lru_.begin();
}

std::shared_ptr<const sdm::EntitySet> ResultCache::Lookup(
    const std::string& key) {
  MutexLock lock(mu_);
  SyncLocked();
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  TouchLocked(it->second.get());
  return it->second->result;
}

bool ResultCache::Peek(const std::string& key) {
  MutexLock lock(mu_);
  SyncLocked();
  return entries_.count(key) > 0;
}

void ResultCache::Insert(const std::string& key, const Deps& deps,
                         std::shared_ptr<const sdm::EntitySet> result,
                         std::uint64_t computed_at) {
  MutexLock lock(mu_);
  if (computed_at != db_->version()) return;  // moved mid-evaluation
  SyncLocked();
  if (entries_.count(key) > 0) return;  // a concurrent reader won the race
  while (static_cast<std::int64_t>(entries_.size()) >=
             static_cast<std::int64_t>(options_.capacity) &&
         !lru_.empty()) {
    ++counters_.evictions;
    EraseLocked(lru_.back());
  }
  if (options_.capacity <= 0) return;
  auto entry = std::make_unique<Entry>();
  Entry* e = entry.get();
  e->key = key;
  e->result = std::move(result);
  e->version = computed_at;
  e->deps = deps;
  lru_.push_front(e);
  e->lru_it = lru_.begin();
  for (std::int64_t c : e->deps.classes) by_class_[c].insert(e);
  for (std::int64_t a : e->deps.attrs) by_attr_[a].insert(e);
  entries_.emplace(key, std::move(entry));
  ++counters_.insertions;
}

ResultCache::Counters ResultCache::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

std::int64_t ResultCache::size() const {
  MutexLock lock(mu_);
  return static_cast<std::int64_t>(entries_.size());
}

void ResultCache::OnMembership(EntityId e, ClassId cls, bool added) {
  (void)e;
  (void)added;
  MutexLock lock(mu_);
  pending_classes_.insert(cls.value());
}

void ResultCache::OnAttributeValue(EntityId e, AttributeId attr,
                                   const sdm::EntitySet& before,
                                   const sdm::EntitySet& after) {
  (void)e;
  (void)before;
  (void)after;
  MutexLock lock(mu_);
  pending_attrs_.insert(attr.value());
}

void ResultCache::OnSchemaChange() {
  MutexLock lock(mu_);
  pending_schema_ = true;
}

void ResultCache::OnMutationsSettled() {
  MutexLock lock(mu_);
  if (pending_schema_) {
    if (!entries_.empty()) ++counters_.schema_flushes;
    FlushLocked();
  } else {
    // Evict exactly the entries whose read set intersects the touched ids.
    // Victims are collected first: EraseLocked edits the very sets being
    // walked.
    std::set<Entry*> victims;
    for (std::int64_t c : pending_classes_) {
      auto it = by_class_.find(c);
      if (it != by_class_.end()) victims.insert(it->second.begin(),
                                                it->second.end());
    }
    for (std::int64_t a : pending_attrs_) {
      auto it = by_attr_.find(a);
      if (it != by_attr_.end()) victims.insert(it->second.begin(),
                                               it->second.end());
    }
    for (Entry* e : victims) {
      ++counters_.invalidations;
      EraseLocked(e);
    }
  }
  pending_classes_.clear();
  pending_attrs_.clear();
  pending_schema_ = false;
  // The settle explains everything up to the current version.
  synced_version_ = db_->version();
}

}  // namespace isis::query
