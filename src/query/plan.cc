#include "query/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "query/eval.h"

namespace isis::query {

using sdm::EntitySet;
using sdm::kNullEntity;

namespace {

/// Prior P(atom true) for scan atoms, by operator. Pure heuristic -- only
/// the relative order matters, and only for short-circuit placement.
double ScanPrior(SetOp op) {
  switch (op) {
    case SetOp::kEqual:
      return 0.10;
    case SetOp::kWeakMatch:
      return 0.25;
    case SetOp::kSubset:
      return 0.50;
    case SetOp::kSuperset:
      return 0.25;
    case SetOp::kProperSubset:
      return 0.40;
    case SetOp::kProperSuperset:
      return 0.20;
    case SetOp::kLessEqual:
    case SetOp::kGreater:
      return 0.50;
  }
  return 0.50;
}

/// Relative per-entity cost of testing a scan atom: one map step is one
/// unit; class-extent starts pay extra for materializing the extent image
/// (amortized by the memo, but the first candidate pays it).
double ScanCost(const Atom& atom) {
  double c = 1.0 + static_cast<double>(atom.lhs.path.size()) +
             static_cast<double>(atom.rhs.path.size());
  if (atom.lhs.origin == Operand::kClassExtent) c += 2.0;
  if (atom.rhs.origin == Operand::kClassExtent) c += 2.0;
  return c;
}

bool TermMentions(const Term& term, AttributeId attr) {
  return std::find(term.path.begin(), term.path.end(), attr) !=
         term.path.end();
}

std::string FmtSel(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

/// One TermMemos block per thread, borrowed for the lifetime of one
/// PlannedPredicate (see TermMemos in plan.h). `busy` routes nested plans
/// to a private block; (db_instance, db_version) gate cross-request extent
/// reuse; the entry bound keeps a long-lived worker thread from pinning
/// every extent image it ever computed.
struct ThreadMemoArena {
  TermMemos memos;
  bool busy = false;
  std::uint64_t db_instance = 0;
  std::uint64_t db_version = 0;
};
thread_local ThreadMemoArena tls_arena;
constexpr std::size_t kMaxRetainedExtents = 64;

}  // namespace

bool PredicateMentionsAttribute(const Predicate& pred, AttributeId attr) {
  for (const Atom& a : pred.atoms) {
    if (TermMentions(a.lhs, attr) || TermMentions(a.rhs, attr)) return true;
  }
  return false;
}

PlannedPredicate::PlannedPredicate(const sdm::Database& db,
                                   const Predicate& pred, ClassId v)
    : db_(db), pred_(pred), class_(v) {
  ThreadMemoArena& arena = tls_arena;
  if (!arena.busy) {
    arena.busy = true;
    memos_ = &arena.memos;
    memos_->cand.clear();
    memos_->self.clear();
    memos_->consts.clear();
    memos_->cand_e = kNullEntity;
    memos_->self_x = kNullEntity;
    if (arena.db_instance != db_.instance_id() ||
        arena.db_version != db_.version() ||
        memos_->extents.size() > kMaxRetainedExtents) {
      memos_->extents.clear();
      arena.db_instance = db_.instance_id();
      arena.db_version = db_.version();
    }
  } else {
    owned_memos_ = std::make_unique<TermMemos>();
    memos_ = owned_memos_.get();
  }
  class_size_ = db_.schema().HasClass(v)
                    ? static_cast<std::int64_t>(db_.Members(v).size())
                    : 0;
  const bool cnf = pred_.form == NormalForm::kConjunctive;
  for (const std::vector<int>& clause : pred_.clauses) {
    if (clause.empty()) continue;  // unused worksheet window
    ClausePlan cp;
    for (int idx : clause) cp.atoms.push_back(AnalyzeAtom(idx));
    cp.probe_only = std::all_of(cp.atoms.begin(), cp.atoms.end(),
                                [](const AtomPlan& a) { return a.probe; });
    if (cnf) {
      // Clause is an OR: true unless every atom is false.
      double none = 1.0;
      for (const AtomPlan& a : cp.atoms) none *= 1.0 - a.est_selectivity;
      cp.est_selectivity = 1.0 - none;
      // Short-circuit on the first true atom: cheap, likely-true first.
      std::stable_sort(cp.atoms.begin(), cp.atoms.end(),
                       [](const AtomPlan& a, const AtomPlan& b) {
                         return a.cost / (a.est_selectivity + 1e-6) <
                                b.cost / (b.est_selectivity + 1e-6);
                       });
    } else {
      // Clause is an AND: short-circuit on the first false atom.
      double all = 1.0;
      for (const AtomPlan& a : cp.atoms) all *= a.est_selectivity;
      cp.est_selectivity = all;
      std::stable_sort(cp.atoms.begin(), cp.atoms.end(),
                       [](const AtomPlan& a, const AtomPlan& b) {
                         return a.cost / (1.0 - a.est_selectivity + 1e-6) <
                                b.cost / (1.0 - b.est_selectivity + 1e-6);
                       });
    }
    clauses_.push_back(std::move(cp));
  }
  // Clause order. Probe-only clauses run set-at-a-time before any scan, so
  // they sort first; among the rest, CNF wants the most-likely-false
  // conjunct first (ascending selectivity), DNF the most-likely-true
  // disjunct first (descending).
  std::stable_sort(clauses_.begin(), clauses_.end(),
                   [cnf](const ClausePlan& a, const ClausePlan& b) {
                     if (a.probe_only != b.probe_only) return a.probe_only;
                     return cnf ? a.est_selectivity < b.est_selectivity
                                : a.est_selectivity > b.est_selectivity;
                   });
  for (const ClausePlan& cp : clauses_) {
    if (cp.probe_only) ++stats_.probe_clauses;
    for (const AtomPlan& a : cp.atoms) {
      if (a.probe) ++stats_.probe_atoms;
    }
  }
}

PlannedPredicate::~PlannedPredicate() {
  if (owned_memos_ == nullptr) tls_arena.busy = false;
}

AtomPlan PlannedPredicate::AnalyzeAtom(int atom_index) {
  AtomPlan ap;
  ap.atom_index = atom_index;
  const Atom& atom = pred_.atoms[atom_index];

  // Probe shape: `e.A <op> {c1..ck}` -- not negated, one map step on the
  // candidate, constant right side with no map. Every constant must be live
  // and non-null: the index only holds live values, while the naive scan
  // compares against the constant set verbatim, so a probe for a dead
  // constant could not be proven equivalent.
  bool probe_shape =
      !atom.negated && atom.lhs.origin == Operand::kCandidate &&
      atom.lhs.path.size() == 1 && atom.rhs.origin == Operand::kConstant &&
      atom.rhs.path.empty() && !atom.rhs.constants.empty();
  if (probe_shape) {
    for (EntityId c : atom.rhs.constants) {
      if (c == kNullEntity || !db_.HasEntity(c)) {
        probe_shape = false;
        break;
      }
    }
  }
  AttributeId attr = probe_shape ? atom.lhs.path[0] : AttributeId();
  if (probe_shape &&
      (!db_.schema().HasAttribute(attr) || !db_.ValueIndexable(attr))) {
    probe_shape = false;
  }
  if (probe_shape) {
    const sdm::AttributeDef& def = db_.schema().GetAttribute(attr);
    const std::int64_t k =
        static_cast<std::int64_t>(atom.rhs.constants.size());
    // Operator-specific rewrites (each proven equivalent because a value
    // index row exists exactly when the owner's value set contains the
    // value, and e.A of a singlevalued attribute has at most one element):
    //   ~  : image shares an element with {c..}  <=>  e in U probe(ci)
    //   )= : image contains every ci             <=>  e in ^ probe(ci)
    //   =  : singlevalued, one constant          <=>  e in probe(c)
    //   =  : singlevalued, 2+ constants          ->   false everywhere
    if (atom.op == SetOp::kWeakMatch || atom.op == SetOp::kSuperset ||
        (atom.op == SetOp::kEqual && !def.multivalued)) {
      ap.probe = true;
      ap.always_empty = atom.op == SetOp::kEqual && !def.multivalued && k > 1;
      const std::int64_t distinct = db_.ValueIndexDistinctValues(attr);
      const std::int64_t postings = db_.ValueIndexPostings(attr);
      const double avg_block =
          distinct > 0 ? static_cast<double>(postings) / distinct : 0.0;
      const double n = static_cast<double>(std::max<std::int64_t>(
          class_size_, 1));
      double est = 0.0;
      if (ap.always_empty) {
        est = 0.0;
      } else if (atom.op == SetOp::kWeakMatch) {
        est = std::min(n, avg_block * k);
      } else if (atom.op == SetOp::kSuperset) {
        // Intersection of k blocks, assuming independence.
        est = n * std::pow(std::min(1.0, avg_block / n), k);
      } else {
        est = avg_block;
      }
      ap.est_cardinality = static_cast<std::int64_t>(est);
      ap.est_selectivity = std::min(1.0, est / n);
      ap.cost = 0.1;  // a point probe is one hash lookup per constant
      return ap;
    }
  }
  ap.probe = false;
  double s = ScanPrior(atom.op);
  ap.est_selectivity = atom.negated ? 1.0 - s : s;
  ap.cost = ScanCost(atom);
  return ap;
}

const EntitySet& PlannedPredicate::AtomMatched(AtomPlan* ap) {
  if (ap->matched_built) return ap->matched;
  ap->matched_built = true;
  const Atom& atom = pred_.atoms[ap->atom_index];
  AttributeId attr = atom.lhs.path[0];
  if (ap->always_empty) {
    // leave matched empty
  } else if (atom.op == SetOp::kWeakMatch) {
    for (EntityId c : atom.rhs.constants) {
      const EntitySet& block = db_.ValueIndexProbe(attr, c);
      ap->matched.insert(block.begin(), block.end());
    }
  } else if (atom.op == SetOp::kSuperset) {
    bool first = true;
    for (EntityId c : atom.rhs.constants) {
      const EntitySet& block = db_.ValueIndexProbe(attr, c);
      if (first) {
        ap->matched = block;
        first = false;
      } else {
        EntitySet kept;
        for (EntityId e : ap->matched) {
          if (block.count(e) > 0) kept.insert(e);
        }
        ap->matched = std::move(kept);
      }
      if (ap->matched.empty()) break;
    }
  } else {  // singlevalued equality against one constant
    ap->matched = db_.ValueIndexProbe(attr, *atom.rhs.constants.begin());
  }
  ap->actual_cardinality = static_cast<std::int64_t>(ap->matched.size());
  return ap->matched;
}

const EntitySet& PlannedPredicate::ClauseMatched(ClausePlan* cp) {
  if (cp->matched_built) return cp->matched;
  cp->matched_built = true;
  const bool cnf = pred_.form == NormalForm::kConjunctive;
  bool first = true;
  for (AtomPlan& ap : cp->atoms) {
    const EntitySet& m = AtomMatched(&ap);
    if (cnf) {
      // OR of probe atoms: union.
      cp->matched.insert(m.begin(), m.end());
    } else if (first) {
      cp->matched = m;
      first = false;
    } else {
      // AND of probe atoms: intersection.
      EntitySet kept;
      for (EntityId e : cp->matched) {
        if (m.count(e) > 0) kept.insert(e);
      }
      cp->matched = std::move(kept);
      if (cp->matched.empty()) break;
    }
  }
  return cp->matched;
}

bool PlannedPredicate::TestProbeAtom(const AtomPlan& ap, EntityId e) {
  if (ap.matched_built) return ap.matched.count(e) > 0;
  if (ap.always_empty) return false;
  const Atom& atom = pred_.atoms[ap.atom_index];
  AttributeId attr = atom.lhs.path[0];
  if (atom.op == SetOp::kSuperset) {
    for (EntityId c : atom.rhs.constants) {
      if (db_.ValueIndexProbe(attr, c).count(e) == 0) return false;
    }
    return true;
  }
  // Weak match or singlevalued singleton equality: member of any block.
  for (EntityId c : atom.rhs.constants) {
    if (db_.ValueIndexProbe(attr, c).count(e) > 0) return true;
  }
  return false;
}

const EntitySet& PlannedPredicate::TermImage(const Term& term, EntityId e,
                                             EntityId x) {
  switch (term.origin) {
    case Operand::kCandidate: {
      if (memos_->cand_e != e) {
        memos_->cand.clear();
        memos_->cand_e = e;
      }
      auto it = memos_->cand.find(term.path);
      if (it == memos_->cand.end()) {
        it = memos_->cand.emplace(term.path, db_.EvaluateMap(e, term.path))
                 .first;
      }
      return it->second;
    }
    case Operand::kSelf: {
      if (memos_->self_x != x) {
        memos_->self.clear();
        memos_->self_x = x;
      }
      auto it = memos_->self.find(term.path);
      if (it == memos_->self.end()) {
        it = memos_->self.emplace(term.path, db_.EvaluateMap(x, term.path))
                 .first;
      }
      return it->second;
    }
    case Operand::kConstant: {
      auto it = memos_->consts.find(&term);
      if (it == memos_->consts.end()) {
        it = memos_->consts
                 .emplace(&term, db_.EvaluateMap(term.constants, term.path))
                 .first;
      }
      return it->second;
    }
    case Operand::kClassExtent: {
      auto key = std::make_pair(term.extent_class.value(), term.path);
      auto it = memos_->extents.find(key);
      if (it == memos_->extents.end()) {
        it = memos_->extents
                 .emplace(std::move(key),
                          db_.EvaluateMap(db_.Members(term.extent_class),
                                          term.path))
                 .first;
      }
      return it->second;
    }
  }
  static const EntitySet kEmpty;
  return kEmpty;
}

bool PlannedPredicate::TestScanAtom(const Atom& atom, EntityId e, EntityId x) {
  const EntitySet& lhs = TermImage(atom.lhs, e, x);
  const EntitySet& rhs = TermImage(atom.rhs, e, x);
  bool truth = Evaluator(db_).Compare(lhs, atom.op, rhs);
  return atom.negated ? !truth : truth;
}

bool PlannedPredicate::TestClause(ClausePlan* cp, EntityId e, EntityId x) {
  const bool cnf = pred_.form == NormalForm::kConjunctive;
  for (AtomPlan& ap : cp->atoms) {
    bool t = ap.probe ? TestProbeAtom(ap, e)
                      : TestScanAtom(pred_.atoms[ap.atom_index], e, x);
    if (cnf && t) return true;    // OR clause: first true wins
    if (!cnf && !t) return false;  // AND clause: first false kills
  }
  return !cnf;
}

bool PlannedPredicate::Test(EntityId e, EntityId x) {
  const bool cnf = pred_.form == NormalForm::kConjunctive;
  for (ClausePlan& cp : clauses_) {
    bool t = TestClause(&cp, e, x);
    if (cnf && !t) return false;
    if (!cnf && t) return true;
  }
  return cnf;
}

EntitySet PlannedPredicate::Evaluate(const EntitySet& candidates, EntityId x) {
  stats_.candidates_in = static_cast<std::int64_t>(candidates.size());
  stats_.after_prefilter = stats_.candidates_in;
  stats_.scanned = 0;

  const bool cnf = pred_.form == NormalForm::kConjunctive;
  bool any_residual = false;
  for (const ClausePlan& cp : clauses_) {
    if (!cp.probe_only) any_residual = true;
  }

  EntitySet out;
  if (cnf) {
    // Stage 1: probe-only conjuncts shrink the candidate set directly.
    EntitySet working;
    const EntitySet* cur = &candidates;
    for (ClausePlan& cp : clauses_) {
      if (!cp.probe_only) continue;
      const EntitySet& matched = ClauseMatched(&cp);
      EntitySet next;
      for (EntityId e : *cur) {
        if (matched.count(e) > 0) next.insert(e);
      }
      working = std::move(next);
      cur = &working;
      if (working.empty()) break;
    }
    stats_.after_prefilter = static_cast<std::int64_t>(cur->size());
    // Stage 2: residual conjuncts over the survivors.
    if (!any_residual) {
      out = (cur == &candidates) ? candidates : std::move(working);
    } else {
      for (EntityId e : *cur) {
        ++stats_.scanned;
        bool ok = true;
        for (ClausePlan& cp : clauses_) {
          if (cp.probe_only) continue;  // already applied set-at-a-time
          if (!TestClause(&cp, e, x)) {
            ok = false;
            break;
          }
        }
        if (ok) out.insert(e);
      }
    }
  } else {
    // Stage 1: probe-only disjuncts union straight into the result.
    for (ClausePlan& cp : clauses_) {
      if (!cp.probe_only) continue;
      const EntitySet& matched = ClauseMatched(&cp);
      for (EntityId e : matched) {
        if (candidates.count(e) > 0) out.insert(e);
      }
    }
    // Stage 2: entities not already accepted get the residual disjuncts.
    if (any_residual) {
      for (EntityId e : candidates) {
        if (out.count(e) > 0) continue;
        ++stats_.scanned;
        for (ClausePlan& cp : clauses_) {
          if (cp.probe_only) continue;
          if (TestClause(&cp, e, x)) {
            out.insert(e);
            break;
          }
        }
      }
      stats_.after_prefilter = stats_.candidates_in;
    }
  }
  stats_.result = static_cast<std::int64_t>(out.size());
  return out;
}

std::string PlannedPredicate::Explain() const {
  std::string out;
  const bool cnf = pred_.form == NormalForm::kConjunctive;
  out += "plan";
  if (db_.schema().HasClass(class_)) {
    out += " class=" + db_.schema().GetClass(class_).name;
  }
  out += cnf ? " form=and-of-ors" : " form=or-of-ands";
  out += " clauses=" + std::to_string(clauses_.size());
  out += " probe-atoms=" + std::to_string(stats_.probe_atoms);
  out += "\n";
  int ci = 0;
  for (const ClausePlan& cp : clauses_) {
    ++ci;
    out += "  clause " + std::to_string(ci) + ": ";
    out += cp.probe_only ? "probe" : "scan";
    out += " est-sel=" + FmtSel(cp.est_selectivity) + "\n";
    for (const AtomPlan& ap : cp.atoms) {
      const Atom& atom = pred_.atoms[ap.atom_index];
      out += "    ";
      out += ap.probe ? (ap.always_empty ? "probe(empty) " : "probe ")
                      : "scan ";
      out += AtomToString(db_, atom);
      out += " est-sel=" + FmtSel(ap.est_selectivity);
      if (ap.probe && ap.est_cardinality >= 0) {
        out += " est=" + std::to_string(ap.est_cardinality);
      }
      if (ap.actual_cardinality >= 0) {
        out += " actual=" + std::to_string(ap.actual_cardinality);
      }
      out += "\n";
    }
  }
  if (stats_.candidates_in > 0 || stats_.result > 0) {
    out += "  candidates=" + std::to_string(stats_.candidates_in) +
           " prefiltered=" + std::to_string(stats_.after_prefilter) +
           " scanned=" + std::to_string(stats_.scanned) +
           " result=" + std::to_string(stats_.result) + "\n";
  }
  return out;
}

}  // namespace isis::query
