#include "query/parser.h"

#include <cctype>
#include <cstring>

#include "query/eval.h"

namespace isis::query {

namespace {

using sdm::Schema;

/// Cursor over the input with position-carrying errors.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(&text) {}

  void SkipWs() {
    while (pos_ < text_->size() &&
           std::isspace(static_cast<unsigned char>((*text_)[pos_]))) {
      ++pos_;
    }
  }
  bool AtEnd() {
    SkipWs();
    return pos_ >= text_->size();
  }
  char Peek() {
    SkipWs();
    return pos_ < text_->size() ? (*text_)[pos_] : '\0';
  }
  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeWord(const char* word) {
    SkipWs();
    size_t len = std::strlen(word);
    if (text_->compare(pos_, len, word) != 0) return false;
    // Must end at a word boundary.
    size_t end = pos_ + len;
    if (end < text_->size() &&
        (std::isalnum(static_cast<unsigned char>((*text_)[end])) ||
         (*text_)[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  /// An identifier: letters, digits, '_' and '/' (for YES/NO).
  Result<std::string> Identifier(const char* what) {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_->size() &&
           (std::isalnum(static_cast<unsigned char>((*text_)[pos_])) ||
            (*text_)[pos_] == '_' || (*text_)[pos_] == '/')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError(std::string("expected ") + what + " at " +
                                Here());
    }
    return text_->substr(start, pos_ - start);
  }

  /// A constant name inside braces: anything up to ',' or '}', trimmed
  /// (entity names may contain spaces, e.g. "LaBelle Quartet").
  Result<std::string> ConstantName() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_->size() && (*text_)[pos_] != ',' && (*text_)[pos_] != '}') {
      ++pos_;
    }
    size_t end = pos_;
    while (end > start &&
           std::isspace(static_cast<unsigned char>((*text_)[end - 1]))) {
      --end;
    }
    if (end == start) {
      return Status::ParseError("empty constant name at " + Here());
    }
    return text_->substr(start, end - start);
  }

  std::string Here() const {
    return "offset " + std::to_string(pos_) + " ('" +
           text_->substr(pos_, 12) + "...')";
  }

 private:
  const std::string* text_;
  size_t pos_ = 0;
};

/// Resolves one map step by name at class `tip`: visible attributes first,
/// then descendant-owned ones (the worksheet's descendant-step rule).
Result<AttributeId> ResolveStep(const sdm::Database& db, ClassId tip,
                                const std::string& name) {
  Result<AttributeId> visible = db.schema().FindAttribute(tip, name);
  if (visible.ok()) return visible;
  for (ClassId d : db.schema().SelfAndDescendants(tip)) {
    for (AttributeId a : db.schema().GetClass(d).own_attributes) {
      if (db.schema().HasAttribute(a) &&
          db.schema().GetAttribute(a).name == name) {
        return a;
      }
    }
  }
  return Status::ParseError("no attribute '" + name + "' reachable from '" +
                            db.schema().GetClass(tip).name + "'");
}

struct ParsedTerm {
  Term term;
  ClassId terminal;  ///< Schema class the map ends in (invalid: unknown).
};

/// Parses `e.path`, `x.path` or `Class.path`. `lhs_terminal` (when valid)
/// is the class constants of a right-hand side resolve in.
Result<ParsedTerm> ParseTermAt(Cursor* cur, const sdm::Database& db,
                               ClassId candidate, std::optional<ClassId> self,
                               ClassId lhs_terminal, bool allow_constants) {
  ParsedTerm out;
  ClassId tip;
  if (cur->Peek() == '{') {
    if (!allow_constants) {
      return Status::ParseError(
          "a constant set is not allowed here (the left side must be a map "
          "from e or x)");
    }
    if (!lhs_terminal.valid()) {
      return Status::ParseError(
          "constants need an atom context (a left-hand side to terminate)");
    }
    cur->Consume('{');
    sdm::EntitySet constants;
    while (true) {
      ISIS_ASSIGN_OR_RETURN(std::string name, cur->ConstantName());
      ISIS_ASSIGN_OR_RETURN(EntityId e, db.FindMember(lhs_terminal, name));
      constants.insert(e);
      if (cur->Consume(',')) continue;
      if (cur->Consume('}')) break;
      return Status::ParseError("expected ',' or '}' at " + cur->Here());
    }
    out.term = Term::Constant(std::move(constants));
    out.terminal = lhs_terminal;
    return out;  // constants take no path (the worksheet's plain constant)
  }
  if (cur->ConsumeWord("e")) {
    out.term = Term::Candidate();
    tip = candidate;
  } else if (cur->ConsumeWord("x")) {
    if (!self.has_value()) {
      return Status::ParseError(
          "'x' (the owner entity) is only legal in derivation predicates");
    }
    out.term = Term::Self();
    tip = *self;
  } else {
    ISIS_ASSIGN_OR_RETURN(std::string cls_name,
                          cur->Identifier("a term ('e', 'x', a class name "
                                          "or '{constants}')"));
    Result<ClassId> cls = db.schema().FindClass(cls_name);
    if (!cls.ok()) {
      return Status::ParseError("unknown class '" + cls_name + "'");
    }
    out.term = Term::ClassExtent(*cls);
    tip = *cls;
  }
  while (cur->Consume('.')) {
    ISIS_ASSIGN_OR_RETURN(std::string attr_name,
                          cur->Identifier("an attribute name"));
    ISIS_ASSIGN_OR_RETURN(AttributeId attr, ResolveStep(db, tip, attr_name));
    out.term.path.push_back(attr);
    tip = db.schema().GetAttribute(attr).value_class;
  }
  out.terminal = tip;
  return out;
}

Result<SetOp> ParseOp(Cursor* cur, bool* negated) {
  *negated = cur->ConsumeWord("not");
  cur->SkipWs();
  struct OpSpec {
    const char* text;
    SetOp op;
  };
  // Longest match first.
  static const OpSpec kOps[] = {
      {"[=", SetOp::kSubset},  {"]=", SetOp::kSuperset},
      {"<=", SetOp::kLessEqual}, {"[", SetOp::kProperSubset},
      {"]", SetOp::kProperSuperset}, {"=", SetOp::kEqual},
      {"~", SetOp::kWeakMatch}, {">", SetOp::kGreater},
  };
  for (const OpSpec& spec : kOps) {
    bool matched = true;
    // Try to consume spec.text character by character (no backtracking
    // needed because prefixes are ordered longest first).
    Cursor probe = *cur;
    for (const char* c = spec.text; *c != '\0'; ++c) {
      if (!probe.Consume(*c)) {
        matched = false;
        break;
      }
    }
    if (matched) {
      *cur = probe;
      return spec.op;
    }
  }
  return Status::ParseError("expected an operator at " + cur->Here());
}

Result<Atom> ParseAtom(Cursor* cur, const sdm::Database& db, ClassId candidate,
                       std::optional<ClassId> self) {
  Atom atom;
  ISIS_ASSIGN_OR_RETURN(
      ParsedTerm lhs,
      ParseTermAt(cur, db, candidate, self, ClassId(),
                  /*allow_constants=*/false));
  atom.lhs = std::move(lhs.term);
  ISIS_ASSIGN_OR_RETURN(atom.op, ParseOp(cur, &atom.negated));
  ISIS_ASSIGN_OR_RETURN(
      ParsedTerm rhs,
      ParseTermAt(cur, db, candidate, self, lhs.terminal,
                  /*allow_constants=*/true));
  atom.rhs = std::move(rhs.term);
  return atom;
}

}  // namespace

Result<Predicate> ParsePredicate(const sdm::Database& db,
                                 ClassId candidate_class,
                                 std::optional<ClassId> self_class,
                                 const std::string& text) {
  if (!db.schema().HasClass(candidate_class)) {
    return Status::NotFound("candidate class does not exist");
  }
  Cursor cur(text);
  Predicate pred;
  // outer: 0 unknown, 1 and (CNF), 2 or (DNF).
  int outer = 0;
  while (true) {
    std::vector<int> clause;
    if (cur.Consume('(')) {
      int inner = 0;  // 1 and, 2 or
      while (true) {
        ISIS_ASSIGN_OR_RETURN(Atom atom,
                              ParseAtom(&cur, db, candidate_class,
                                        self_class));
        pred.atoms.push_back(std::move(atom));
        clause.push_back(static_cast<int>(pred.atoms.size()) - 1);
        if (cur.Consume(')')) break;
        int conn = cur.ConsumeWord("and") ? 1
                   : cur.ConsumeWord("or") ? 2
                                           : 0;
        if (conn == 0) {
          return Status::ParseError("expected 'and', 'or' or ')' at " +
                                    cur.Here());
        }
        if (inner == 0) {
          inner = conn;
        } else if (inner != conn) {
          return Status::ParseError(
              "mixed connectives inside one clause; parenthesize");
        }
      }
      // Inner connective must be the dual of the outer; record implied
      // outer if still unknown (inner 'or' => CNF, inner 'and' => DNF).
      if (inner != 0) {
        int implied_outer = inner == 2 ? 1 : 2;
        if (outer == 0) {
          outer = implied_outer;
        } else if (outer != implied_outer) {
          return Status::ParseError(
              "clause connective must be the dual of the top-level one "
              "(CNF = and-of-ors, DNF = or-of-ands)");
        }
      }
    } else {
      ISIS_ASSIGN_OR_RETURN(
          Atom atom, ParseAtom(&cur, db, candidate_class, self_class));
      pred.atoms.push_back(std::move(atom));
      clause.push_back(static_cast<int>(pred.atoms.size()) - 1);
    }
    pred.clauses.push_back(std::move(clause));
    if (cur.AtEnd()) break;
    int conn = cur.ConsumeWord("and") ? 1 : cur.ConsumeWord("or") ? 2 : 0;
    if (conn == 0) {
      return Status::ParseError("expected 'and' or 'or' at " + cur.Here());
    }
    if (outer == 0) {
      outer = conn;
    } else if (outer != conn) {
      return Status::ParseError(
          "mixed top-level connectives; parenthesize to disambiguate");
    }
  }
  pred.form = outer == 2 ? NormalForm::kDisjunctive
                         : NormalForm::kConjunctive;

  // Commit-time type check, exactly like the worksheet.
  Evaluator eval(db);
  PredicateContext ctx;
  ctx.candidate_class = candidate_class;
  if (self_class.has_value()) ctx.self_class = self_class;
  ISIS_RETURN_NOT_OK(eval.TypeCheck(pred, ctx));
  return pred;
}

Result<Predicate> ParsePredicate(const sdm::Database& db,
                                 ClassId candidate_class,
                                 const std::string& text) {
  return ParsePredicate(db, candidate_class, std::nullopt, text);
}

Result<Term> ParseTerm(const sdm::Database& db, ClassId candidate_class,
                       std::optional<ClassId> self_class,
                       const std::string& text) {
  Cursor cur(text);
  ISIS_ASSIGN_OR_RETURN(
      ParsedTerm parsed,
      ParseTermAt(&cur, db, candidate_class, self_class, ClassId(),
                  /*allow_constants=*/false));
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing input at " + cur.Here());
  }
  return parsed.term;
}

}  // namespace isis::query
