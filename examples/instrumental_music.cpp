/// \file instrumental_music.cpp
/// \brief The paper's complete sample session (§4.2), replayed end to end.
///
/// Builds the Instrumental_Music database of §4.1, starts an ISIS session,
/// replays the event script of the session, and prints the rendered screen
/// at each of the paper's twelve figure points. Finishes with the epilogue:
/// the database is saved as `entertainment` and the session stops.
///
/// Run: ./instrumental_music [--figures-only|--styles-only]
///   --figures-only  print only the figure screens, no captions/messages
///   --styles-only   print the per-cell style maps instead of characters
///                   (' ' plain, 'b' bold, 'r' reverse, 'B' both, 'd' dim)

#include <cstdio>
#include <cstring>

#include "datasets/instrumental_music.h"
#include "datasets/session_script.h"
#include "ui/controller.h"

using namespace isis;  // NOLINT — example brevity

int main(int argc, char** argv) {
  bool figures_only =
      argc > 1 && std::strcmp(argv[1], "--figures-only") == 0;
  bool styles_only =
      argc > 1 && std::strcmp(argv[1], "--styles-only") == 0;
  figures_only = figures_only || styles_only;

  ui::SessionController session(datasets::BuildInstrumentalMusic());

  for (const datasets::SessionFigure& fig :
       datasets::PaperSessionFigures()) {
    Status st = session.RunScript(fig.script);
    if (!st.ok()) {
      std::fprintf(stderr, "session failed at %s: %s\n", fig.name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    const ui::Screen& screen = session.Render();
    if (!figures_only) {
      std::printf("=== %s: %s ===\n", fig.name.c_str(), fig.caption.c_str());
    } else {
      std::printf("=== %s ===\n", fig.name.c_str());
    }
    std::fputs(styles_only ? screen.canvas.StyleString().c_str()
                           : screen.canvas.ToString().c_str(),
               stdout);
    if (!figures_only) {
      std::printf("[status] %s\n\n", session.message().c_str());
    }
  }

  Status st = session.RunScript(datasets::PaperSessionEpilogue());
  if (!st.ok()) {
    std::fprintf(stderr, "epilogue failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("session stopped; database saved as entertainment.isis\n");
  return 0;
}
