/// \file quickstart.cpp
/// \brief Minimal tour of the ISIS public API.
///
/// Builds a tiny library database, defines a derived subclass with the
/// predicate machinery, evaluates it, edits data and watches the derived
/// class follow on re-evaluation, and finally round-trips everything
/// through the store format.
///
/// Run: ./quickstart

#include <cstdio>
#include <cstdlib>

#include "query/eval.h"
#include "query/workspace.h"
#include "sdm/consistency.h"
#include "store/serializer.h"

using namespace isis;  // NOLINT — example brevity

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Get(Result<T> r, const char* what) {
  Check(r.status(), what);
  return std::move(r).ValueOrDie();
}

}  // namespace

int main() {
  std::printf("== ISIS quickstart ==\n\n");

  // 1. A workspace holds the schema, the data, and the stored queries.
  query::Workspace ws;
  ws.set_name("Library");
  sdm::Database& db = ws.db();

  // 2. Schema: two baseclasses wired by attributes.
  ClassId books = Get(db.CreateBaseclass("books", "title"), "books");
  ClassId authors = Get(db.CreateBaseclass("authors", "name"), "authors");
  AttributeId written_by =
      Get(db.CreateAttribute(books, "written_by", authors, true),
          "written_by");
  AttributeId pages =
      Get(db.CreateAttribute(books, "pages", sdm::Schema::kIntegers(), false),
          "pages");
  AttributeId era =
      Get(db.CreateAttribute(authors, "era", sdm::Schema::kStrings(), false),
          "era");

  // 3. Data. Entities of the predefined baseclasses (INTEGER, STRING, ...)
  // are interned from values on first use.
  struct Row {
    const char* title;
    const char* author;
    const char* era;
    int pages;
  };
  const Row rows[] = {
      {"Middlemarch", "George Eliot", "victorian", 880},
      {"Mrs Dalloway", "Virginia Woolf", "modernist", 194},
      {"Ulysses", "James Joyce", "modernist", 730},
      {"Bleak House", "Charles Dickens", "victorian", 989},
  };
  for (const Row& r : rows) {
    EntityId a = db.FindEntity(authors, r.author).ok()
                     ? Get(db.FindEntity(authors, r.author), "find author")
                     : Get(db.CreateEntity(authors, r.author), "author");
    Check(db.SetSingle(a, era, db.InternString(r.era)), "era");
    EntityId b = Get(db.CreateEntity(books, r.title), "book");
    Check(db.AddToMulti(b, written_by, a), "written_by");
    Check(db.SetSingle(b, pages, db.InternInteger(r.pages)), "pages");
  }

  // 4. A query is a derived subclass (the paper's central idea): long
  // modernist books = { e in books | e.pages > 500 AND
  //                                  e.written_by.era = {"modernist"} }.
  ClassId long_modernist =
      Get(db.CreateSubclass("long_modernist", books, sdm::Membership::kDerived),
          "subclass");
  query::Predicate pred;
  {
    query::Atom size_atom;
    size_atom.lhs = query::Term::Candidate({pages});
    size_atom.op = query::SetOp::kGreater;
    size_atom.rhs = query::Term::Constant({db.InternInteger(500)});
    pred.AddAtom(size_atom, 0);

    query::Atom era_atom;
    era_atom.lhs = query::Term::Candidate({written_by, era});
    era_atom.op = query::SetOp::kEqual;
    era_atom.rhs = query::Term::Constant({db.InternString("modernist")});
    pred.AddAtom(era_atom, 1);
    pred.form = query::NormalForm::kConjunctive;  // AND of the two clauses
  }
  Check(ws.DefineSubclassMembership(long_modernist, pred), "define");

  std::printf("long_modernist = {");
  for (EntityId e : db.Members(long_modernist)) {
    std::printf(" %s", db.NameOf(e).c_str());
  }
  std::printf(" }\n");

  // 5. Stored queries re-evaluate against new data.
  EntityId new_book = Get(db.CreateEntity(books, "To the Lighthouse"), "b");
  Check(db.AddToMulti(new_book, written_by,
                      Get(db.FindEntity(authors, "Virginia Woolf"), "vw")),
        "wb");
  Check(db.SetSingle(new_book, pages, db.InternInteger(640)), "pg");
  Check(ws.ReevaluateSubclass(long_modernist), "reevaluate");
  std::printf("after adding a 640-page Woolf novel: %zu members\n",
              db.Members(long_modernist).size());

  // 6. The engine keeps data consistent with the schema at every step; the
  // full checker re-derives the paper's Section 2 rules from scratch.
  Check(sdm::ConsistencyChecker(db).Check(), "consistency");
  std::printf("consistency: OK\n");

  // 7. Save and reload.
  std::string blob = store::Save(ws);
  auto reloaded = store::Load(blob);
  Check(reloaded.status(), "reload");
  std::printf("round-trip: %zu bytes, reloaded database '%s' with %zu stored "
              "quer(ies)\n",
              blob.size(), (*reloaded)->name().c_str(),
              (*reloaded)->StoredSubclassCount());

  std::printf("\nquickstart finished OK\n");
  return 0;
}
