/// \file isis_serve.cpp
/// \brief The multi-session ISIS server over TCP.
///
/// Serves one shared database to N concurrent clients (see
/// src/server/session.h for the architecture): reads run in parallel under
/// a shared lock, mutations run alone, and in durable mode every accepted
/// mutation hits a write-ahead log before its response is sent.
///
/// Run: ./isis_serve [--port N] [--db file.isis] [--durable <dir>]
///                   [--threads N] [--data_dir <dir>]
///   with no --db the paper's Instrumental_Music database is served.
///   Relative --db paths resolve against --data_dir / $ISIS_DATA_DIR.
///   The server runs until stdin closes or a `quit` line arrives, then
///   drains, checkpoints (durable mode) and prints its stats JSON line.
///
/// Try:  ./isis_serve --port 7459 &
///       ./isis_client --port 7459

#include <cstdio>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "datasets/instrumental_music.h"
#include "server/net.h"
#include "server/session.h"
#include "store/serializer.h"

using namespace isis;  // NOLINT — example brevity

int main(int argc, char** argv) {
  int port = 7459;
  int threads = 4;
  std::string db_path;
  std::string durable_dir;
  std::string data_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(1);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--port") {
      port = std::stoi(need_value("--port"));
    } else if (arg == "--threads") {
      threads = std::stoi(need_value("--threads"));
    } else if (arg == "--db") {
      db_path = need_value("--db");
    } else if (arg == "--durable") {
      durable_dir = need_value("--durable");
    } else if (arg == "--data_dir") {
      data_dir = need_value("--data_dir");
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--db file.isis] [--durable <dir>] "
                   "[--threads N] [--data_dir <dir>]\n",
                   argv[0]);
      return 1;
    }
  }

  std::unique_ptr<query::Workspace> ws;
  if (!db_path.empty()) {
    db_path = store::ResolveDataPath(db_path, data_dir);
    Result<std::unique_ptr<query::Workspace>> loaded =
        store::LoadFromFile(db_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load '%s': %s\n", db_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    ws = std::move(loaded).ValueOrDie();
  } else {
    ws = datasets::BuildInstrumentalMusic();
  }

  server::ServerOptions options;
  options.threads = threads;
  options.durable_dir = durable_dir;
  Result<std::unique_ptr<server::Server>> opened =
      server::Server::Open(std::move(ws), options);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open server: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<server::Server> srv = std::move(opened).ValueOrDie();

  server::TcpServer tcp(srv.get());
  Status st = tcp.Start(port);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot listen on port %d: %s\n", port,
                 st.ToString().c_str());
    return 1;
  }
  std::printf("serving '%s' on 127.0.0.1:%d (%d threads%s)\n",
              srv->workspace().name().c_str(), tcp.port(), threads,
              durable_dir.empty() ? "" : ", durable");
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (std::string(Trim(line)) == "quit") break;
  }

  tcp.Stop();
  std::string stats = srv->Shutdown();
  std::printf("%s\n", stats.c_str());
  return 0;
}
