/// \file isis_serve.cpp
/// \brief The multi-session ISIS server over TCP.
///
/// Serves one shared database to N concurrent clients (see
/// src/server/session.h for the architecture): reads run in parallel under
/// a shared lock, mutations run alone, and in durable mode every accepted
/// mutation hits a write-ahead log before its response is sent.
///
/// Run: ./isis_serve [--port N] [--db file.isis] [--durable <dir>]
///                   [--wal_sync per_commit|group|none] [--threads N]
///                   [--data_dir <dir>]
///   with no --db the paper's Instrumental_Music database is served.
///   Relative --db paths resolve against --data_dir / $ISIS_DATA_DIR.
///   --wal_sync picks when WAL commits reach stable storage (default
///   `group`: concurrent writers share one fsync via the group committer;
///   see store/group_commit.h). Only meaningful with --durable.
///   The server runs until stdin closes, a `quit` line arrives, or SIGINT/
///   SIGTERM lands, then drains in-flight requests, checkpoints (durable
///   mode) and prints its stats JSON line. --idle_timeout_ms reaps
///   connections that go silent (clients stay attached by sending pings).
///
/// Try:  ./isis_serve --port 7459 &
///       ./isis_client --port 7459

#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "datasets/instrumental_music.h"
#include "server/net.h"
#include "server/session.h"
#include "store/group_commit.h"
#include "store/serializer.h"

using namespace isis;  // NOLINT — example brevity

namespace {

volatile std::sig_atomic_t g_shutdown_requested = 0;

void OnSignal(int /*sig*/) { g_shutdown_requested = 1; }

}  // namespace

int main(int argc, char** argv) {
  int port = 7459;
  int threads = 4;
  int idle_timeout_ms = 0;
  std::string db_path;
  std::string durable_dir;
  std::string data_dir;
  store::WalSyncPolicy wal_sync = store::WalSyncPolicy::kGroup;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(1);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--port") {
      port = std::stoi(need_value("--port"));
    } else if (arg == "--threads") {
      threads = std::stoi(need_value("--threads"));
    } else if (arg == "--idle_timeout_ms") {
      idle_timeout_ms = std::stoi(need_value("--idle_timeout_ms"));
    } else if (arg == "--db") {
      db_path = need_value("--db");
    } else if (arg == "--durable") {
      durable_dir = need_value("--durable");
    } else if (arg == "--wal_sync") {
      Result<store::WalSyncPolicy> parsed =
          store::ParseWalSyncPolicy(need_value("--wal_sync"));
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      wal_sync = *parsed;
    } else if (arg == "--data_dir") {
      data_dir = need_value("--data_dir");
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--db file.isis] [--durable <dir>] "
                   "[--wal_sync per_commit|group|none] [--threads N] "
                   "[--data_dir <dir>] [--idle_timeout_ms N]\n",
                   argv[0]);
      return 1;
    }
  }

  std::unique_ptr<query::Workspace> ws;
  if (!db_path.empty()) {
    db_path = store::ResolveDataPath(db_path, data_dir);
    Result<std::unique_ptr<query::Workspace>> loaded =
        store::LoadFromFile(db_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load '%s': %s\n", db_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    ws = std::move(loaded).ValueOrDie();
  } else {
    ws = datasets::BuildInstrumentalMusic();
  }

  server::ServerOptions options;
  options.threads = threads;
  options.durable_dir = durable_dir;
  options.wal_sync = wal_sync;
  Result<std::unique_ptr<server::Server>> opened =
      server::Server::Open(std::move(ws), options);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open server: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<server::Server> srv = std::move(opened).ValueOrDie();

  server::TcpServerOptions tcp_options;
  tcp_options.idle_timeout_ms = idle_timeout_ms;
  server::TcpServer tcp(srv.get(), tcp_options);
  Status st = tcp.Start(port);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot listen on port %d: %s\n", port,
                 st.ToString().c_str());
    return 1;
  }
  std::printf("serving '%s' on 127.0.0.1:%d (%d threads%s%s)\n",
              srv->workspace().name().c_str(), tcp.port(), threads,
              durable_dir.empty() ? "" : ", durable wal_sync=",
              durable_dir.empty() ? "" : store::WalSyncPolicyName(wal_sync));
  std::fflush(stdout);

  // SIGINT/SIGTERM request the same graceful drain as `quit`. No
  // SA_RESTART: the signal must interrupt the blocking getline below so
  // the loop notices the flag.
  struct sigaction sa {};
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  std::string line;
  while (g_shutdown_requested == 0 && std::getline(std::cin, line)) {
    if (std::string(Trim(line)) == "quit") break;
  }
  if (g_shutdown_requested != 0) {
    std::fprintf(stderr, "signal received, draining...\n");
  }

  // Graceful drain: stop accepting and close connections first, then let
  // the server finish queued requests, checkpoint and rotate its WAL.
  tcp.Stop();
  std::string stats = srv->Shutdown();
  std::printf("%s\n", stats.c_str());
  return 0;
}
