/// \file isis_repl.cpp
/// \brief An interactive ISIS terminal: the full interface, driven from
/// stdin one event per line.
///
/// This is the closest thing to sitting at the 1985 Apollo: the current
/// view renders after every event, picks hit-test against the screen, and
/// every session-script verb works (see `src/input/event.h`):
///
///   pick <target>      e.g. pick class:musicians, pick member:flute
///   pickat <x> <y>     raw coordinate pick
///   cmd <command>      e.g. cmd view contents, cmd follow, cmd commit
///   type <text>        answer the current prompt
///
/// plus REPL-only conveniences: `screen` (reprint), `hits` (list pickable
/// targets), `query <class> <predicate>` (ad-hoc textual query, e.g.
/// `query music_groups e.size = {4} and e.members.plays ]= {piano}`),
/// `explain <class> <predicate>` (print the query plan — which atoms probe
/// the value index vs scan, execution order, cardinalities — plus whether
/// the identical query would be answered from the result cache), `stats`
/// (result-cache counters), and `quit`.
///
/// Ad-hoc queries go through a query::ResultCache: repeating a query
/// between mutations answers from the cache (byte-identical results —
/// entity ids are cached, names rendered fresh). Any mutation, undo or
/// load flushes it.
///
/// Run: ./isis_repl [--durable <dir>] [database.isis]
///   with no database argument the paper's Instrumental_Music database
///   loads; with one, the named store file. With `--durable <dir>` the
///   session writes a checksummed write-ahead edit log in <dir> and, after
///   a crash, restarting with the same flag replays it — the session
///   resumes exactly where it died, design journal included.
///
/// Try:  echo "pick class:soloists" | ./isis_repl

#include <cstdio>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "datasets/instrumental_music.h"
#include "live/deps.h"
#include "query/cache.h"
#include "query/eval.h"
#include "query/parser.h"
#include "store/serializer.h"
#include "ui/controller.h"

using namespace isis;  // NOLINT — example brevity

namespace {

void PrintScreen(ui::SessionController* session) {
  const ui::Screen& screen = session->Render();
  std::fputs(screen.canvas.ToString().c_str(), stdout);
}

/// The REPL's ad-hoc result cache. Non-observing (Options::observe): undo,
/// redo and load replace the whole workspace, and an observing cache would
/// hold a registration on the destroyed database. Instead the cache is
/// recreated whenever the controller's database is a different *instance*
/// (the id is globally unique, so a new database at a reused address cannot
/// be mistaken for the old one), and within one instance any mutation
/// bumps the version and flushes on the next lookup.
struct AdHocCache {
  std::unique_ptr<query::ResultCache> cache;
  std::uint64_t instance = 0;

  query::ResultCache* For(sdm::Database* db) {
    if (cache == nullptr || instance != db->instance_id()) {
      query::ResultCache::Options opts;
      opts.observe = false;
      cache = std::make_unique<query::ResultCache>(db, opts);
      instance = db->instance_id();
    }
    return cache.get();
  }
};

/// `query <class> <predicate>`: parse, evaluate (through the result
/// cache), print the answer.
/// `explain <class> <predicate>`: same parse, but print the query plan
/// (probe vs scan per atom, execution order, cardinalities) and whether
/// the identical query would hit the cache instead.
void RunAdHocQuery(ui::SessionController* session, AdHocCache* adhoc,
                   const std::string& args, bool explain) {
  size_t sp = args.find(' ');
  if (sp == std::string::npos) {
    std::printf("usage: %s <class> <predicate>\n",
                explain ? "explain" : "query");
    return;
  }
  sdm::Database& db = session->workspace().db();
  Result<ClassId> cls = db.schema().FindClass(args.substr(0, sp));
  if (!cls.ok()) {
    std::printf("%s\n", cls.status().ToString().c_str());
    return;
  }
  Result<query::Predicate> pred =
      query::ParsePredicate(db, *cls, args.substr(sp + 1));
  if (!pred.ok()) {
    std::printf("%s\n", pred.status().ToString().c_str());
    return;
  }
  query::ResultCache* rc = adhoc->For(&db);
  const std::string key = query::ResultCache::NormalizeKey(*pred, *cls);
  if (explain) {
    std::printf("%s", query::Evaluator(db).Explain(*pred, *cls).c_str());
    std::printf("cache: %s\n", rc->Peek(key) ? "hit" : "miss");
    return;
  }
  std::shared_ptr<const sdm::EntitySet> answer = rc->Lookup(key);
  if (answer == nullptr) {
    // Stamp before evaluating: parsing/evaluating may intern a new value
    // (bumping the version), and Insert refuses a stamp the database has
    // moved past -- the next run of the same query re-evaluates cleanly.
    const std::uint64_t v0 = db.version();
    auto eval = std::make_shared<const sdm::EntitySet>(
        query::Evaluator(db).EvaluateSubclass(*pred, *cls));
    rc->Insert(key,
               live::FlattenForCache(
                   live::AnalyzeAdHoc(db.schema(), *cls, *pred)),
               eval, v0);
    answer = std::move(eval);
  }
  std::printf("%s = {", PredicateToString(db, *pred).c_str());
  bool first = true;
  for (EntityId e : *answer) {
    std::printf("%s%s", first ? " " : ", ", db.NameOf(e).c_str());
    first = false;
  }
  std::printf(" }  (%zu member(s))\n", answer->size());
}

void PrintCacheStats(const AdHocCache& adhoc) {
  if (adhoc.cache == nullptr) {
    std::printf("result cache: empty (no ad-hoc queries yet)\n");
    return;
  }
  const query::ResultCache::Counters c = adhoc.cache->counters();
  std::printf(
      "result cache: %lld entr%s, %lld hit(s), %lld miss(es), "
      "%lld insertion(s), %lld eviction(s), %lld invalidation(s), "
      "%lld flush(es)\n",
      static_cast<long long>(adhoc.cache->size()),
      adhoc.cache->size() == 1 ? "y" : "ies", static_cast<long long>(c.hits),
      static_cast<long long>(c.misses), static_cast<long long>(c.insertions),
      static_cast<long long>(c.evictions),
      static_cast<long long>(c.invalidations),
      static_cast<long long>(c.schema_flushes + c.version_flushes));
}

void PrintHits(ui::SessionController* session) {
  const ui::Screen& screen = session->Render();
  std::printf("pickable targets (%zu):\n", screen.hits.size());
  std::string line;
  for (const ui::HitRegion& h : screen.hits) {
    if (line.size() + h.target.size() + 2 > 100) {
      std::printf("  %s\n", line.c_str());
      line.clear();
    }
    if (!line.empty()) line += "  ";
    line += h.target;
  }
  if (!line.empty()) std::printf("  %s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string durable_dir;
  std::string data_dir;
  std::string db_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--durable" || arg == "--data_dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--durable <dir>] [--data_dir <dir>] "
                     "[database.isis]\n",
                     argv[0]);
        return 1;
      }
      (arg == "--durable" ? durable_dir : data_dir) = argv[++i];
    } else {
      db_path = arg;
    }
  }

  std::unique_ptr<query::Workspace> ws;
  if (!db_path.empty()) {
    // Relative paths resolve against --data_dir / $ISIS_DATA_DIR, so the
    // binary works from any working directory.
    db_path = store::ResolveDataPath(db_path, data_dir);
    Result<std::unique_ptr<query::Workspace>> loaded =
        store::LoadFromFile(db_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load '%s': %s\n", db_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    ws = std::move(loaded).ValueOrDie();
  } else {
    ws = datasets::BuildInstrumentalMusic();
  }

  std::unique_ptr<ui::SessionController> owned;
  if (durable_dir.empty()) {
    owned = std::make_unique<ui::SessionController>(std::move(ws));
  } else {
    // Durable: leftover `<dir>/<name>.isis.wal` from a crashed session is
    // replayed; otherwise a fresh log starts at this workspace.
    Result<std::unique_ptr<ui::SessionController>> opened =
        ui::SessionController::OpenDurable(std::move(ws), {durable_dir});
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open durable session in '%s': %s\n",
                   durable_dir.c_str(), opened.status().ToString().c_str());
      return 1;
    }
    owned = std::move(opened).ValueOrDie();
    std::printf("durable session: edit log at %s\n",
                owned->wal_path().c_str());
  }
  ui::SessionController& session = *owned;
  AdHocCache adhoc;
  PrintScreen(&session);
  std::printf("> ");
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::string trimmed(Trim(line));
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed.empty() || trimmed[0] == '#') {
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (trimmed == "screen") {
      PrintScreen(&session);
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (trimmed == "hits") {
      PrintHits(&session);
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (StartsWith(trimmed, "query ")) {
      RunAdHocQuery(&session, &adhoc, trimmed.substr(6), /*explain=*/false);
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (StartsWith(trimmed, "explain ")) {
      RunAdHocQuery(&session, &adhoc, trimmed.substr(8), /*explain=*/true);
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (trimmed == "stats") {
      PrintCacheStats(adhoc);
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    Status st = session.RunScript(trimmed + "\n", /*stop_on_error=*/false);
    (void)st;  // errors already land in the status line
    PrintScreen(&session);
    if (session.stopped()) break;
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("session ended. design history:\n%s\n",
              session.journal().Render(20).c_str());
  return 0;
}
