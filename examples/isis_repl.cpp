/// \file isis_repl.cpp
/// \brief An interactive ISIS terminal: the full interface, driven from
/// stdin one event per line.
///
/// This is the closest thing to sitting at the 1985 Apollo: the current
/// view renders after every event, picks hit-test against the screen, and
/// every session-script verb works (see `src/input/event.h`):
///
///   pick <target>      e.g. pick class:musicians, pick member:flute
///   pickat <x> <y>     raw coordinate pick
///   cmd <command>      e.g. cmd view contents, cmd follow, cmd commit
///   type <text>        answer the current prompt
///
/// plus REPL-only conveniences: `screen` (reprint), `hits` (list pickable
/// targets), `query <class> <predicate>` (ad-hoc textual query, e.g.
/// `query music_groups e.size = {4} and e.members.plays ]= {piano}`), and
/// `quit`.
///
/// Run: ./isis_repl [database.isis]
///   with no argument the paper's Instrumental_Music database loads;
///   with one, the named store file.
///
/// Try:  echo "pick class:soloists" | ./isis_repl

#include <cstdio>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "datasets/instrumental_music.h"
#include "query/eval.h"
#include "query/parser.h"
#include "store/serializer.h"
#include "ui/controller.h"

using namespace isis;  // NOLINT — example brevity

namespace {

void PrintScreen(ui::SessionController* session) {
  const ui::Screen& screen = session->Render();
  std::fputs(screen.canvas.ToString().c_str(), stdout);
}

/// `query <class> <predicate>`: parse, evaluate, print the answer.
void RunAdHocQuery(ui::SessionController* session, const std::string& args) {
  size_t sp = args.find(' ');
  if (sp == std::string::npos) {
    std::printf("usage: query <class> <predicate>\n");
    return;
  }
  const sdm::Database& db = session->workspace().db();
  Result<ClassId> cls = db.schema().FindClass(args.substr(0, sp));
  if (!cls.ok()) {
    std::printf("%s\n", cls.status().ToString().c_str());
    return;
  }
  Result<query::Predicate> pred =
      query::ParsePredicate(db, *cls, args.substr(sp + 1));
  if (!pred.ok()) {
    std::printf("%s\n", pred.status().ToString().c_str());
    return;
  }
  sdm::EntitySet answer =
      query::Evaluator(db).EvaluateSubclass(*pred, *cls);
  std::printf("%s = {", PredicateToString(db, *pred).c_str());
  bool first = true;
  for (EntityId e : answer) {
    std::printf("%s%s", first ? " " : ", ", db.NameOf(e).c_str());
    first = false;
  }
  std::printf(" }  (%zu member(s))\n", answer.size());
}

void PrintHits(ui::SessionController* session) {
  const ui::Screen& screen = session->Render();
  std::printf("pickable targets (%zu):\n", screen.hits.size());
  std::string line;
  for (const ui::HitRegion& h : screen.hits) {
    if (line.size() + h.target.size() + 2 > 100) {
      std::printf("  %s\n", line.c_str());
      line.clear();
    }
    if (!line.empty()) line += "  ";
    line += h.target;
  }
  if (!line.empty()) std::printf("  %s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<query::Workspace> ws;
  if (argc > 1) {
    Result<std::unique_ptr<query::Workspace>> loaded =
        store::LoadFromFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load '%s': %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    ws = std::move(loaded).ValueOrDie();
  } else {
    ws = datasets::BuildInstrumentalMusic();
  }

  ui::SessionController session(std::move(ws));
  PrintScreen(&session);
  std::printf("> ");
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::string trimmed(Trim(line));
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed.empty() || trimmed[0] == '#') {
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (trimmed == "screen") {
      PrintScreen(&session);
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (trimmed == "hits") {
      PrintHits(&session);
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (StartsWith(trimmed, "query ")) {
      RunAdHocQuery(&session, trimmed.substr(6));
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    Status st = session.RunScript(trimmed + "\n", /*stop_on_error=*/false);
    (void)st;  // errors already land in the status line
    PrintScreen(&session);
    if (session.stopped()) break;
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("session ended. design history:\n%s\n",
              session.journal().Render(20).c_str());
  return 0;
}
