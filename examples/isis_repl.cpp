/// \file isis_repl.cpp
/// \brief An interactive ISIS terminal: the full interface, driven from
/// stdin one event per line.
///
/// This is the closest thing to sitting at the 1985 Apollo: the current
/// view renders after every event, picks hit-test against the screen, and
/// every session-script verb works (see `src/input/event.h`):
///
///   pick <target>      e.g. pick class:musicians, pick member:flute
///   pickat <x> <y>     raw coordinate pick
///   cmd <command>      e.g. cmd view contents, cmd follow, cmd commit
///   type <text>        answer the current prompt
///
/// plus REPL-only conveniences: `screen` (reprint), `hits` (list pickable
/// targets), `query <class> <predicate>` (ad-hoc textual query, e.g.
/// `query music_groups e.size = {4} and e.members.plays ]= {piano}`),
/// `explain <class> <predicate>` (print the query plan — which atoms probe
/// the value index vs scan, execution order, cardinalities), and `quit`.
///
/// Run: ./isis_repl [--durable <dir>] [database.isis]
///   with no database argument the paper's Instrumental_Music database
///   loads; with one, the named store file. With `--durable <dir>` the
///   session writes a checksummed write-ahead edit log in <dir> and, after
///   a crash, restarting with the same flag replays it — the session
///   resumes exactly where it died, design journal included.
///
/// Try:  echo "pick class:soloists" | ./isis_repl

#include <cstdio>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "datasets/instrumental_music.h"
#include "query/eval.h"
#include "query/parser.h"
#include "store/serializer.h"
#include "ui/controller.h"

using namespace isis;  // NOLINT — example brevity

namespace {

void PrintScreen(ui::SessionController* session) {
  const ui::Screen& screen = session->Render();
  std::fputs(screen.canvas.ToString().c_str(), stdout);
}

/// `query <class> <predicate>`: parse, evaluate, print the answer.
/// `explain <class> <predicate>`: same parse, but print the query plan
/// (probe vs scan per atom, execution order, cardinalities) instead.
void RunAdHocQuery(ui::SessionController* session, const std::string& args,
                   bool explain) {
  size_t sp = args.find(' ');
  if (sp == std::string::npos) {
    std::printf("usage: %s <class> <predicate>\n",
                explain ? "explain" : "query");
    return;
  }
  const sdm::Database& db = session->workspace().db();
  Result<ClassId> cls = db.schema().FindClass(args.substr(0, sp));
  if (!cls.ok()) {
    std::printf("%s\n", cls.status().ToString().c_str());
    return;
  }
  Result<query::Predicate> pred =
      query::ParsePredicate(db, *cls, args.substr(sp + 1));
  if (!pred.ok()) {
    std::printf("%s\n", pred.status().ToString().c_str());
    return;
  }
  if (explain) {
    std::printf("%s", query::Evaluator(db).Explain(*pred, *cls).c_str());
    return;
  }
  sdm::EntitySet answer =
      query::Evaluator(db).EvaluateSubclass(*pred, *cls);
  std::printf("%s = {", PredicateToString(db, *pred).c_str());
  bool first = true;
  for (EntityId e : answer) {
    std::printf("%s%s", first ? " " : ", ", db.NameOf(e).c_str());
    first = false;
  }
  std::printf(" }  (%zu member(s))\n", answer.size());
}

void PrintHits(ui::SessionController* session) {
  const ui::Screen& screen = session->Render();
  std::printf("pickable targets (%zu):\n", screen.hits.size());
  std::string line;
  for (const ui::HitRegion& h : screen.hits) {
    if (line.size() + h.target.size() + 2 > 100) {
      std::printf("  %s\n", line.c_str());
      line.clear();
    }
    if (!line.empty()) line += "  ";
    line += h.target;
  }
  if (!line.empty()) std::printf("  %s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string durable_dir;
  std::string data_dir;
  std::string db_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--durable" || arg == "--data_dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--durable <dir>] [--data_dir <dir>] "
                     "[database.isis]\n",
                     argv[0]);
        return 1;
      }
      (arg == "--durable" ? durable_dir : data_dir) = argv[++i];
    } else {
      db_path = arg;
    }
  }

  std::unique_ptr<query::Workspace> ws;
  if (!db_path.empty()) {
    // Relative paths resolve against --data_dir / $ISIS_DATA_DIR, so the
    // binary works from any working directory.
    db_path = store::ResolveDataPath(db_path, data_dir);
    Result<std::unique_ptr<query::Workspace>> loaded =
        store::LoadFromFile(db_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load '%s': %s\n", db_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    ws = std::move(loaded).ValueOrDie();
  } else {
    ws = datasets::BuildInstrumentalMusic();
  }

  std::unique_ptr<ui::SessionController> owned;
  if (durable_dir.empty()) {
    owned = std::make_unique<ui::SessionController>(std::move(ws));
  } else {
    // Durable: leftover `<dir>/<name>.isis.wal` from a crashed session is
    // replayed; otherwise a fresh log starts at this workspace.
    Result<std::unique_ptr<ui::SessionController>> opened =
        ui::SessionController::OpenDurable(std::move(ws), {durable_dir});
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open durable session in '%s': %s\n",
                   durable_dir.c_str(), opened.status().ToString().c_str());
      return 1;
    }
    owned = std::move(opened).ValueOrDie();
    std::printf("durable session: edit log at %s\n",
                owned->wal_path().c_str());
  }
  ui::SessionController& session = *owned;
  PrintScreen(&session);
  std::printf("> ");
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::string trimmed(Trim(line));
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed.empty() || trimmed[0] == '#') {
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (trimmed == "screen") {
      PrintScreen(&session);
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (trimmed == "hits") {
      PrintHits(&session);
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (StartsWith(trimmed, "query ")) {
      RunAdHocQuery(&session, trimmed.substr(6), /*explain=*/false);
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (StartsWith(trimmed, "explain ")) {
      RunAdHocQuery(&session, trimmed.substr(8), /*explain=*/true);
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    Status st = session.RunScript(trimmed + "\n", /*stop_on_error=*/false);
    (void)st;  // errors already land in the status line
    PrintScreen(&session);
    if (session.stopped()) break;
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("session ended. design history:\n%s\n",
              session.journal().Render(20).c_str());
  return 0;
}
