/// \file schema_designer.cpp
/// \brief Database construction from scratch, entirely through the
/// interface — the paper's first integrated activity ("a user is able to
/// build a database or modify an existing one").
///
/// Starting from an *empty* workspace, a scripted session creates
/// baseclasses with named naming attributes, wires attributes across trees
/// (using the §3.2 pop-up class list for value classes), creates a
/// grouping, enters data at the data level, defines a derived subclass on
/// the worksheet, checks the design with `statistics`, reviews the design
/// history, and saves. The printed screens show the schema growing.
///
/// Run: ./schema_designer

#include <cstdio>

#include <fstream>

#include "query/workspace.h"
#include "sdm/consistency.h"
#include "sdm/dot_export.h"
#include "ui/controller.h"

using namespace isis;  // NOLINT — example brevity

namespace {

int Fail(const Status& st, const ui::SessionController& session) {
  std::fprintf(stderr, "FAILED: %s\n[last message] %s\n",
               st.ToString().c_str(), session.message().c_str());
  return 1;
}

}  // namespace

int main() {
  std::printf("== ISIS schema designer example ==\n\n");
  auto ws = std::make_unique<query::Workspace>();
  ws->set_name("Recipes");
  ui::SessionController session(std::move(ws));

  // --- Build the schema through the interface. ---
  Status st = session.RunScript(
      // Two baseclasses, each with a chosen naming attribute.
      "cmd create baseclass\n"
      "type recipes\n"
      "type title\n"
      "cmd create baseclass\n"
      "type ingredients\n"
      "type name\n"
      // recipes.uses ++> ingredients (created as STRING, then re-aimed via
      // the pop-up class list, as the paper's session does for all_inst).
      "pick class:recipes\n"
      "cmd create attribute\n"
      "type uses\n"
      "cmd (re)specify value class\n"
      "pick class:ingredients\n"
      // recipes.servings -> INTEGER (the pop-up lists predefined classes).
      "pick class:recipes\n"
      "cmd create attribute\n"
      "type servings_of\n"
      "cmd (re)specify value class\n"
      "pick class:INTEGER\n");
  if (!st.ok()) return Fail(st, session);

  std::printf("[schema after construction]\n%s\n",
              session.Render().canvas.ToString().c_str());

  // --- Enter data at the data level. ---
  st = session.RunScript(
      "pick class:ingredients\n"
      "cmd view contents\n"
      "cmd create entity\ntype flour\n"
      "cmd create entity\ntype egg\n"
      "cmd create entity\ntype sugar\n"
      "cmd view forest\n"
      "pick class:recipes\n"
      "cmd view contents\n"
      "cmd create entity\ntype pancakes\n"
      "cmd create entity\ntype meringue\n");
  if (!st.ok()) return Fail(st, session);

  // Wire values programmatically (the follow/assign flow is shown in the
  // instrumental_music example; here we stay terse).
  {
    sdm::Database& db = session.workspace().db();
    ClassId recipes = *db.schema().FindClass("recipes");
    ClassId ingredients = *db.schema().FindClass("ingredients");
    AttributeId uses = *db.schema().FindAttribute(recipes, "uses");
    AttributeId servings =
        *db.schema().FindAttribute(recipes, "servings_of");
    EntityId pancakes = *db.FindEntity(recipes, "pancakes");
    EntityId meringue = *db.FindEntity(recipes, "meringue");
    for (const char* ing : {"flour", "egg"}) {
      if (!db.AddToMulti(pancakes, uses, *db.FindEntity(ingredients, ing))
               .ok()) {
        return 1;
      }
    }
    for (const char* ing : {"egg", "sugar"}) {
      if (!db.AddToMulti(meringue, uses, *db.FindEntity(ingredients, ing))
               .ok()) {
        return 1;
      }
    }
    (void)db.SetMulti(pancakes, servings, {db.InternInteger(4)});
    (void)db.SetMulti(meringue, servings, {db.InternInteger(8)});
  }

  // --- A derived subclass on the worksheet: recipes using eggs. ---
  st = session.RunScript(
      "cmd view forest\n"
      "pick class:recipes\n"
      "cmd create subclass\n"
      "type egg_recipes\n"
      "cmd (re)define membership\n"
      "pick atom:A\n"
      "pick clause:1\n"
      "cmd edit\n"
      "pick attr:uses\n"
      "pick op:~\n"
      "cmd rhs constant\n"
      "pick member:egg\n"
      "cmd accept constant\n"
      "cmd commit\n");
  if (!st.ok()) return Fail(st, session);
  std::printf("[after commit] %s\n", session.message().c_str());

  // --- Design review: statistics, advisories, history. ---
  st = session.RunScript("cmd statistics\n");
  if (!st.ok()) return Fail(st, session);
  std::printf("[statistics] %s\n", session.message().c_str());
  std::printf("[design history]\n%s\n",
              session.journal().Render(20).c_str());

  // --- Save and verify integrity. ---
  Status consistency =
      sdm::ConsistencyChecker(session.workspace().db()).Check();
  if (!consistency.ok()) return Fail(consistency, session);
  st = session.RunScript("cmd save\ntype recipes_designed\ncmd stop\n");
  if (!st.ok()) return Fail(st, session);

  // Export both schema graphs for external tooling (Graphviz).
  {
    std::ofstream dot("recipes_schema.dot");
    dot << sdm::ExportDot(session.workspace().db().schema(),
                          sdm::DotGraph::kBoth);
  }
  std::printf("saved as recipes_designed.isis and recipes_schema.dot; "
              "schema designer finished OK\n");
  return 0;
}
