/// \file isis_dump.cpp
/// \brief Inspection tool for saved `.isis` databases.
///
/// Loads a store file (re-validating full §2 consistency on the way in)
/// and prints, per section: the statistics report with design advisories,
/// the stored queries (derived-subclass predicates and attribute
/// derivations in the worksheet's display syntax), the integrity
/// constraints and whether each currently holds, and optionally the
/// Graphviz export of the schema graphs.
///
/// Run: ./isis_dump <database.isis> [--dot forest|network|both]

#include <cstdio>
#include <cstring>
#include <string>

#include "query/predicate.h"
#include "sdm/dot_export.h"
#include "sdm/stats.h"
#include "store/serializer.h"

using namespace isis;  // NOLINT — example brevity

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <database.isis> [--dot forest|network|both]\n",
                 argv[0]);
    return 2;
  }
  Result<std::unique_ptr<query::Workspace>> loaded =
      store::LoadFromFile(argv[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load '%s': %s\n", argv[1],
                 loaded.status().ToString().c_str());
    return 1;
  }
  query::Workspace& ws = **loaded;
  const sdm::Database& db = ws.db();
  const sdm::Schema& schema = db.schema();

  if (argc >= 4 && std::strcmp(argv[2], "--dot") == 0) {
    sdm::DotGraph which = sdm::DotGraph::kBoth;
    if (std::strcmp(argv[3], "forest") == 0) {
      which = sdm::DotGraph::kInheritanceForest;
    } else if (std::strcmp(argv[3], "network") == 0) {
      which = sdm::DotGraph::kSemanticNetwork;
    }
    std::fputs(sdm::ExportDot(schema, which).c_str(), stdout);
    return 0;
  }

  std::printf("database: %s  (loaded consistent)\n\n", ws.name().c_str());

  sdm::DatabaseStats stats = sdm::ComputeStats(db);
  std::fputs(sdm::RenderStatsReport(stats).c_str(), stdout);
  for (const std::string& advisory : sdm::DesignAdvisories(db, stats)) {
    std::printf("  advisory: %s\n", advisory.c_str());
  }

  if (!ws.subclass_predicates().empty()) {
    std::printf("\nstored derived subclasses:\n");
    for (const auto& [cls_raw, pred] : ws.subclass_predicates()) {
      ClassId cls(cls_raw);
      if (!schema.HasClass(cls)) continue;
      std::printf("  %s = { e in %s | %s }\n",
                  schema.GetClass(cls).name.c_str(),
                  schema.GetClass(schema.GetClass(cls).parent()).name.c_str(),
                  PredicateToString(db, pred).c_str());
    }
  }
  if (!ws.attribute_derivations().empty()) {
    std::printf("\nstored attribute derivations:\n");
    for (const auto& [attr_raw, d] : ws.attribute_derivations()) {
      AttributeId attr(attr_raw);
      if (!schema.HasAttribute(attr)) continue;
      const sdm::AttributeDef& def = schema.GetAttribute(attr);
      if (d.kind == query::AttributeDerivation::Kind::kAssignment) {
        std::printf("  %s.%s(x) := %s\n",
                    schema.GetClass(def.owner).name.c_str(),
                    def.name.c_str(),
                    TermToString(db, d.assignment).c_str());
      } else {
        std::printf("  %s.%s(x) = { e | %s }\n",
                    schema.GetClass(def.owner).name.c_str(),
                    def.name.c_str(),
                    PredicateToString(db, d.predicate).c_str());
      }
    }
  }
  if (ws.constraints().size() > 0) {
    std::printf("\nintegrity constraints:\n");
    for (const query::Constraint* c : ws.constraints().All()) {
      Result<query::ConstraintViolation> check =
          ws.constraints().Check(db, c->name);
      std::string status =
          !check.ok() ? check.status().ToString()
          : check->violators.empty()
              ? "holds"
              : "VIOLATED by " + std::to_string(check->violators.size()) +
                    " entit(ies)";
      std::printf("  %s on %s: %s   [%s]\n", c->name.c_str(),
                  schema.HasClass(c->cls)
                      ? schema.GetClass(c->cls).name.c_str()
                      : "(missing)",
                  PredicateToString(db, c->predicate).c_str(),
                  status.c_str());
    }
  }
  return 0;
}
