/// \file isis_client.cpp
/// \brief Interactive client for isis_serve: the wire protocol from a
/// terminal.
///
/// Run: ./isis_client [--host 127.0.0.1] [--port 7459]
///                    [--timeout_ms N] [--retries N]
///
/// Fault tolerance: every request carries a --timeout_ms deadline and is
/// retried up to --retries times with jittered backoff (server/retry.h);
/// a dropped connection reconnects and resumes the same session, so the
/// view, subscriptions and worksheet survive a server-side reap or a
/// flaky link. Transient errors are printed, never fatal -- the prompt
/// just comes back.
///
/// Commands (one per line):
///   query <class> <predicate>     e.g. query musicians e.plays ]= {flute}
///   explain <class> <predicate>   print the server-side query plan
///   assign <class> <entity> <attr> <v1,v2,...>   direct write
///   render | screen               print this session's current view
///   pick/pickat/cmd/type ...      raw UI events (input/event.h syntax)
///   subscribe <class|*>           watch changes; unsubscribe <class|*>
///   poll                          fetch pending change notifications
///   stats                         server metrics JSON
///   quit

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "common/strings.h"
#include "server/net.h"
#include "server/retry.h"

using namespace isis;  // NOLINT — example brevity

namespace {

void PrintResponse(const server::Frame& resp) {
  using server::MsgType;
  switch (resp.type) {
    case MsgType::kQueryResult: {
      std::vector<std::string> fields = server::SplitFields(resp.payload);
      if (fields.empty()) break;
      std::printf("%s members:", fields[0].c_str());
      for (std::size_t i = 1; i < fields.size(); ++i) {
        std::printf(" %s", fields[i].c_str());
      }
      std::printf("\n");
      break;
    }
    case MsgType::kScreen: {
      std::vector<std::string> fields = server::SplitFields(resp.payload);
      if (fields.size() == 2) {
        std::fputs(fields[1].c_str(), stdout);
        std::printf("[%s]\n", fields[0].c_str());
      }
      break;
    }
    case MsgType::kExplainResult:
    case MsgType::kStatsResult:
      std::printf("%s\n", resp.payload.c_str());
      break;
    case MsgType::kOk: {
      if (resp.payload.empty()) {
        std::printf("ok\n");
        break;
      }
      std::vector<std::string> fields = server::SplitFields(resp.payload);
      std::printf("ok");
      for (const std::string& f : fields) std::printf(" | %s", f.c_str());
      std::printf("\n");
      break;
    }
    case MsgType::kRetry:
      std::printf("server busy, retry: %s\n", resp.payload.c_str());
      break;
    case MsgType::kError:
      std::printf("error: %s\n", resp.payload.c_str());
      break;
    default:
      std::printf("%s: %s\n", server::MsgTypeName(resp.type),
                  resp.payload.c_str());
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7459;
  int timeout_ms = 5000;
  int retries = 5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::stoi(argv[++i]);
    } else if (arg == "--timeout_ms" && i + 1 < argc) {
      timeout_ms = std::stoi(argv[++i]);
    } else if (arg == "--retries" && i + 1 < argc) {
      retries = std::stoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host H] [--port N] [--timeout_ms N] "
                   "[--retries N]\n",
                   argv[0]);
      return 1;
    }
  }

  server::RetryOptions retry_options;
  retry_options.max_attempts = retries;
  retry_options.timeout_ms = timeout_ms;
  server::RetryingClient client(
      std::make_unique<server::TcpClient>(host, port, "isis_client"),
      retry_options);
  Status st = client.Connect();
  if (!st.ok()) {
    std::fprintf(stderr, "cannot connect to %s:%d: %s\n", host.c_str(), port,
                 st.ToString().c_str());
    return 1;
  }
  std::printf("connected, session %lld\n",
              static_cast<long long>(client.session_id()));
  std::printf("> ");
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::string trimmed(Trim(line));
    using server::MsgType;
    // Placeholder must be an error: Result rejects an OK status with no
    // value (assert in Debug builds). Every dispatch arm overwrites it.
    Result<server::Frame> resp = Status::Internal("no command dispatched");
    if (trimmed.empty() || trimmed[0] == '#') {
      std::printf("> ");
      std::fflush(stdout);
      continue;
    } else if (trimmed == "quit" || trimmed == "exit") {
      (void)client.Call(MsgType::kBye, "");
      break;
    } else if (trimmed == "render" || trimmed == "screen") {
      resp = client.Call(MsgType::kRender, "");
    } else if (trimmed == "poll") {
      resp = client.Call(MsgType::kPoll, "");
    } else if (trimmed == "stats") {
      resp = client.Call(MsgType::kStats, "");
    } else if (StartsWith(trimmed, "subscribe ")) {
      resp = client.Call(MsgType::kSubscribe,
                         server::JoinFields({trimmed.substr(10)}));
    } else if (StartsWith(trimmed, "unsubscribe ")) {
      resp = client.Call(MsgType::kUnsubscribe,
                         server::JoinFields({trimmed.substr(12)}));
    } else if (StartsWith(trimmed, "query ") ||
               StartsWith(trimmed, "explain ")) {
      bool explain = StartsWith(trimmed, "explain ");
      std::string rest = trimmed.substr(explain ? 8 : 6);
      std::size_t sp = rest.find(' ');
      if (sp == std::string::npos) {
        std::printf("usage: %s <class> <predicate>\n",
                    explain ? "explain" : "query");
        std::printf("> ");
        std::fflush(stdout);
        continue;
      }
      resp = client.Call(
          explain ? MsgType::kExplain : MsgType::kQuery,
          server::JoinFields({rest.substr(0, sp), rest.substr(sp + 1)}));
    } else if (StartsWith(trimmed, "assign ")) {
      std::vector<std::string> parts = Split(trimmed.substr(7), ' ');
      if (parts.size() != 4) {
        std::printf("usage: assign <class> <entity> <attr> <v1,v2,...>\n");
        std::printf("> ");
        std::fflush(stdout);
        continue;
      }
      resp = client.Call(MsgType::kAssign, server::JoinFields(parts));
    } else {
      // Anything else is a raw UI event line (pick/pickat/cmd/type).
      resp = client.Call(MsgType::kEvent, trimmed);
    }
    if (!resp.ok()) {
      // Retries are exhausted or the server is gone for good; either way
      // the session survives locally -- report and keep the prompt.
      std::fprintf(stderr, "transport error: %s\n",
                   resp.status().ToString().c_str());
    } else {
      PrintResponse(*resp);
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  return 0;
}
