/// \file company_integrity.cpp
/// \brief The paper's Section 5 challenge, answered with the existing
/// machinery.
///
/// "How would a user specify that an employee cannot earn more than his/her
/// manager using only a screen and a pointing device?" — ISIS's own answer
/// is its future-work integrity subsystem, but the predicate language the
/// system already has can *monitor* the constraint: define the derived
/// subclass
///
///   violators = { e in employees | e.salary > e.manager.salary }
///
/// entirely from worksheet constructs (two maps from e and the singleton
/// ordering operator). The constraint holds iff the class is empty, and
/// because stored queries re-evaluate against current data, a raise that
/// breaks the rule surfaces in the class on the next commit.
///
/// Run: ./company_integrity

#include <cstdio>
#include <cstdlib>

#include "query/workspace.h"
#include "sdm/consistency.h"
#include "store/serializer.h"

using namespace isis;  // NOLINT — example brevity

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Get(Result<T> r, const char* what) {
  Check(r.status(), what);
  return std::move(r).ValueOrDie();
}

void PrintViolators(const query::Workspace& ws, ClassId violators) {
  const sdm::Database& db = ws.db();
  if (db.Members(violators).empty()) {
    std::printf("constraint holds: no employee earns more than their "
                "manager\n");
    return;
  }
  std::printf("constraint VIOLATED by:");
  for (EntityId e : db.Members(violators)) {
    std::printf(" %s", db.NameOf(e).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== ISIS company integrity example (paper section 5) ==\n\n");
  query::Workspace ws;
  ws.set_name("Company");
  sdm::Database& db = ws.db();

  ClassId employees =
      Get(db.CreateBaseclass("employees", "name"), "employees");
  AttributeId salary = Get(
      db.CreateAttribute(employees, "salary", sdm::Schema::kIntegers(), false),
      "salary");
  AttributeId manager =
      Get(db.CreateAttribute(employees, "manager", employees, false),
          "manager");

  struct Emp {
    const char* name;
    int salary;
    const char* manager;  // nullptr for the top
  };
  const Emp kEmps[] = {
      {"Grace", 180, nullptr}, {"Hank", 120, "Grace"},
      {"Irene", 110, "Grace"}, {"Jay", 90, "Hank"},
      {"Kim", 85, "Hank"},     {"Lou", 95, "Irene"},
  };
  for (const Emp& e : kEmps) {
    Get(db.CreateEntity(employees, e.name), e.name);
  }
  for (const Emp& e : kEmps) {
    EntityId id = Get(db.FindEntity(employees, e.name), e.name);
    Check(db.SetSingle(id, salary, db.InternInteger(e.salary)), "salary");
    if (e.manager != nullptr) {
      Check(db.SetSingle(id, manager,
                         Get(db.FindEntity(employees, e.manager), "mgr")),
            "manager");
    }
  }

  // The constraint as a stored query. Both sides are plain worksheet maps
  // from e; the operator is the singleton ordering '>'.
  ClassId violators = Get(
      db.CreateSubclass("violators", employees, sdm::Membership::kDerived),
      "violators");
  {
    query::Predicate pred;
    query::Atom a;
    a.lhs = query::Term::Candidate({salary});
    a.op = query::SetOp::kGreater;
    a.rhs = query::Term::Candidate({manager, salary});
    pred.AddAtom(a, 0);
    Check(ws.DefineSubclassMembership(violators, pred), "violators");
  }
  PrintViolators(ws, violators);

  // A raise that breaks the rule: Lou now out-earns Irene.
  std::printf("\nraising Lou's salary to 130 (manager Irene earns 110)...\n");
  Check(db.SetSingle(Get(db.FindEntity(employees, "Lou"), "Lou"), salary,
                     db.InternInteger(130)),
        "raise");
  Check(ws.ReevaluateSubclass(violators), "reevaluate");
  PrintViolators(ws, violators);

  // Fix it by raising the manager, and re-check.
  std::printf("\nraising Irene's salary to 140...\n");
  Check(db.SetSingle(Get(db.FindEntity(employees, "Irene"), "Irene"), salary,
                     db.InternInteger(140)),
        "raise");
  Check(ws.ReevaluateSubclass(violators), "reevaluate");
  PrintViolators(ws, violators);

  // Note the semantics at the top of the hierarchy: Grace has no manager,
  // her manager-salary map is empty, and ordering against an empty set is
  // false — the paper's singleton-ordering semantics make the top exempt,
  // which is exactly the intended reading of the constraint.
  Check(sdm::ConsistencyChecker(db).Check(), "consistency");

  // --- The same rule as a *stored integrity constraint* (this library's
  // implementation of the paper's §5 proposal): a named predicate every
  // member must satisfy, checked by name on demand. ---
  std::printf("\n-- as a stored integrity constraint --\n");
  {
    query::Predicate rule;
    query::Atom a;
    a.lhs = query::Term::Candidate({salary});
    a.op = query::SetOp::kGreater;
    a.negated = true;  // NOT (e.salary > e.manager.salary)
    a.rhs = query::Term::Candidate({manager, salary});
    rule.AddAtom(a, 0);
    Check(ws.DefineConstraint("salary_cap", employees, rule),
          "define constraint");
  }
  Check(ws.EnforceConstraints(), "constraints hold");
  std::printf("constraint 'salary_cap' defined and holds\n");

  std::printf("giving Kim a raise to 200...\n");
  Check(db.SetSingle(Get(db.FindEntity(employees, "Kim"), "Kim"), salary,
                     db.InternInteger(200)),
        "raise");
  Status enforce = ws.EnforceConstraints();
  std::printf("enforce: %s\n", enforce.ToString().c_str());
  if (enforce.ok()) {
    std::fprintf(stderr, "constraint should have failed\n");
    return 1;
  }
  // The constraint also survives a save/load round trip with the database.
  std::string blob = store::Save(ws);
  auto reloaded = store::Load(blob);
  Check(reloaded.status(), "reload");
  std::printf("after reload: %zu constraint(s), enforce says: %s\n",
              (*reloaded)->constraints().size(),
              (*reloaded)->EnforceConstraints().ToString().c_str());

  std::printf("\ncompany integrity example finished OK\n");
  return 0;
}
