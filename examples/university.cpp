/// \file university.cpp
/// \brief A second application domain: a university registry.
///
/// Demonstrates the breadth of the public API beyond the paper's running
/// example: a multi-tree schema with cross-tree attributes, groupings,
/// subclass chains, the full predicate language (including negation, the
/// weak match, class-extent terms and a derived attribute), the relational
/// encoder cross-check, and an interactive-style scripted session on the
/// result.
///
/// Run: ./university

#include <cstdio>
#include <cstdlib>

#include "query/eval.h"
#include "query/parser.h"
#include "query/workspace.h"
#include "rel/encode.h"
#include "rel/qbe.h"
#include "sdm/consistency.h"
#include "sdm/stats.h"
#include "ui/controller.h"

using namespace isis;  // NOLINT — example brevity

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Get(Result<T> r, const char* what) {
  Check(r.status(), what);
  return std::move(r).ValueOrDie();
}

}  // namespace

int main() {
  std::printf("== ISIS university example ==\n\n");
  auto ws = std::make_unique<query::Workspace>();
  ws->set_name("University");
  sdm::Database& db = ws->db();

  // --- Schema. ---
  ClassId students = Get(db.CreateBaseclass("students", "name"), "students");
  ClassId courses = Get(db.CreateBaseclass("courses", "code"), "courses");
  ClassId depts = Get(db.CreateBaseclass("departments", "name"), "depts");

  AttributeId takes =
      Get(db.CreateAttribute(students, "takes", courses, true), "takes");
  AttributeId gpa = Get(
      db.CreateAttribute(students, "gpa", sdm::Schema::kReals(), false),
      "gpa");
  AttributeId major =
      Get(db.CreateAttribute(students, "major", depts, false), "major");
  AttributeId offered_by =
      Get(db.CreateAttribute(courses, "offered_by", depts, false),
          "offered_by");
  AttributeId credits = Get(
      db.CreateAttribute(courses, "credits", sdm::Schema::kIntegers(), false),
      "credits");

  Get(db.CreateGrouping("by_major", students, major), "by_major");
  Get(db.CreateGrouping("by_department", courses, offered_by), "by_dept");

  // --- Data. ---
  const char* dept_names[] = {"CS", "Math", "History"};
  for (const char* d : dept_names) Get(db.CreateEntity(depts, d), d);
  auto dept = [&](const char* d) {
    return Get(db.FindEntity(depts, d), d);
  };

  struct Course {
    const char* code;
    const char* dept;
    int credits;
  };
  const Course kCourses[] = {
      {"CS101", "CS", 4},    {"CS240", "CS", 4},      {"CS330", "CS", 3},
      {"MA101", "Math", 4},  {"MA215", "Math", 3},    {"HI110", "History", 3},
      {"HI301", "History", 4},
  };
  for (const Course& c : kCourses) {
    EntityId e = Get(db.CreateEntity(courses, c.code), c.code);
    Check(db.SetSingle(e, offered_by, dept(c.dept)), "offered_by");
    Check(db.SetSingle(e, credits, db.InternInteger(c.credits)), "credits");
  }
  auto course = [&](const char* c) {
    return Get(db.FindEntity(courses, c), c);
  };

  struct Student {
    const char* name;
    const char* major;
    double gpa;
    std::vector<const char*> takes;
  };
  const Student kStudents[] = {
      {"Ada", "CS", 3.9, {"CS101", "CS240", "MA101"}},
      {"Ben", "Math", 3.2, {"MA101", "MA215"}},
      {"Cleo", "CS", 3.6, {"CS101", "CS330", "HI110"}},
      {"Dan", "History", 2.8, {"HI110", "HI301"}},
      {"Eve", "Math", 3.95, {"MA101", "MA215", "CS101"}},
      {"Finn", "CS", 2.5, {"CS101"}},
  };
  for (const Student& s : kStudents) {
    EntityId e = Get(db.CreateEntity(students, s.name), s.name);
    Check(db.SetSingle(e, major, dept(s.major)), "major");
    Check(db.SetSingle(e, gpa, db.InternReal(s.gpa)), "gpa");
    for (const char* c : s.takes) {
      Check(db.AddToMulti(e, takes, course(c)), "takes");
    }
  }

  // --- Query 1: honors students (gpa > 3.5), a derived subclass. ---
  ClassId honors = Get(
      db.CreateSubclass("honors", students, sdm::Membership::kDerived),
      "honors");
  {
    query::Predicate pred;
    query::Atom a;
    a.lhs = query::Term::Candidate({gpa});
    a.op = query::SetOp::kGreater;
    a.rhs = query::Term::Constant({db.InternReal(3.5)});
    pred.AddAtom(a, 0);
    Check(ws->DefineSubclassMembership(honors, pred), "honors predicate");
  }
  std::printf("honors students:");
  for (EntityId e : db.Members(honors)) {
    std::printf(" %s", db.NameOf(e).c_str());
  }
  std::printf("\n");

  // --- Query 2: students taking a course OUTSIDE their major department
  // (negated weak match across a two-step map). ---
  ClassId explorers = Get(
      db.CreateSubclass("explorers", students, sdm::Membership::kDerived),
      "explorers");
  {
    query::Predicate pred;
    query::Atom a;
    a.lhs = query::Term::Candidate({takes, offered_by});
    a.op = query::SetOp::kSubset;  // NOT (course depts subset of {major})
    a.negated = true;
    a.rhs = query::Term::Candidate({major});
    pred.AddAtom(a, 0);
    Check(ws->DefineSubclassMembership(explorers, pred), "explorers");
  }
  std::printf("students taking courses outside their major:");
  for (EntityId e : db.Members(explorers)) {
    std::printf(" %s", db.NameOf(e).c_str());
  }
  std::printf("\n");

  // --- Query 3: a derived attribute — the departments a student's courses
  // come from (the hand/assignment operator). ---
  AttributeId course_depts = Get(
      db.CreateAttribute(students, "course_depts", depts, true),
      "course_depts");
  Check(ws->DefineAttributeDerivation(
            course_depts, query::AttributeDerivation::Assign(
                              query::Term::Self({takes, offered_by}))),
        "course_depts derivation");
  std::printf("Ada's course departments:");
  for (EntityId e :
       db.GetMulti(Get(db.FindEntity(students, "Ada"), "Ada"), course_depts)) {
    std::printf(" %s", db.NameOf(e).c_str());
  }
  std::printf("\n");

  // --- Cross-check against the relational encoding with a QBE query:
  // names of CS majors with gpa > 3.5. ---
  {
    rel::RelDatabase reldb = Get(rel::EncodeDatabase(db), "encode");
    rel::QbeQuery q;
    q.AddRow(rel::QbeRow{
        "students_major",
        {rel::QbeCell::Print("_s"),
         rel::QbeCell::Const(rel::Value::String("CS"))}});
    q.AddRow(rel::QbeRow{
        "students_gpa",
        {rel::QbeCell::Var("_s"),
         rel::QbeCell::Const(rel::Value::Real(3.5), rel::CompareOp::kGt)}});
    rel::Relation answer = Get(q.Evaluate(reldb), "qbe");
    std::printf("QBE: CS majors with gpa > 3.5 (via relational baseline):");
    for (const rel::Tuple& t : answer.tuples()) {
      std::printf(" %s", t[0].str().c_str());
    }
    std::printf("\n");
  }

  Check(sdm::ConsistencyChecker(db).Check(), "consistency");

  // --- Query 4: the textual predicate syntax parses straight into the
  // same machinery ("CS majors taking a 4-credit course"). ---
  {
    Result<query::Predicate> parsed = query::ParsePredicate(
        db, students,
        "e.major = {CS} and e.takes.credits ~ {4}");
    Check(parsed.status(), "parse");
    sdm::EntitySet answer =
        query::Evaluator(db).EvaluateSubclass(*parsed, students);
    std::printf("parsed query %s:",
                PredicateToString(db, *parsed).c_str());
    for (EntityId e : answer) std::printf(" %s", db.NameOf(e).c_str());
    std::printf("\n");
  }

  // --- An integrity constraint: every student must take something. ---
  {
    Result<query::Predicate> rule =
        query::ParsePredicate(db, students, "e.takes ~ e.takes");
    Check(rule.status(), "rule parse");
    Check(ws->DefineConstraint("enrolled_somewhere", students, *rule),
          "constraint");
    Check(ws->EnforceConstraints(), "constraints hold");
    std::printf("constraint 'enrolled_somewhere' holds\n");
  }

  // --- Schema-design statistics and advisories. ---
  {
    sdm::DatabaseStats stats = sdm::ComputeStats(db);
    std::printf("\n%s", sdm::RenderStatsReport(stats).c_str());
    for (const std::string& advisory :
         sdm::DesignAdvisories(db, stats)) {
      std::printf("advisory: %s\n", advisory.c_str());
    }
  }

  // --- Finish with a short interactive-style session on this database. ---
  ui::SessionController session(std::move(ws));
  Check(session.RunScript("pick class:honors\n"
                          "cmd display predicate\n"
                          "cmd view contents\n"),
        "session");
  std::printf("\n[data level screen: contents of 'honors']\n%s",
              session.Render().canvas.ToString().c_str());
  std::printf("university example finished OK\n");
  return 0;
}
