/// \file setop_property_test.cpp
/// \brief Parameterized property tests for the set comparison operators:
/// every operator (and its negation) is checked against a brute-force
/// set-theoretic oracle over enumerated small sets, plus algebraic laws.

#include <gtest/gtest.h>

#include <algorithm>

#include "query/eval.h"
#include "sdm/database.h"

namespace isis::query {
namespace {

using sdm::Database;
using sdm::EntitySet;

/// A small universe of interned integers to draw subsets from.
class SetOpPropertyTest : public ::testing::TestWithParam<SetOp> {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) universe_.push_back(db_.InternInteger(i));
  }

  /// The 16 subsets of the 4-element universe.
  std::vector<EntitySet> AllSubsets() const {
    std::vector<EntitySet> out;
    for (int mask = 0; mask < 16; ++mask) {
      EntitySet s;
      for (int i = 0; i < 4; ++i) {
        if (mask & (1 << i)) s.insert(universe_[i]);
      }
      out.push_back(std::move(s));
    }
    return out;
  }

  static bool Includes(const EntitySet& sup, const EntitySet& sub) {
    return std::includes(sup.begin(), sup.end(), sub.begin(), sub.end());
  }

  /// Brute-force oracle for an operator on two sets.
  bool Oracle(const EntitySet& l, SetOp op, const EntitySet& r) const {
    switch (op) {
      case SetOp::kEqual:
        return l == r;
      case SetOp::kSubset:
        return Includes(r, l);
      case SetOp::kSuperset:
        return Includes(l, r);
      case SetOp::kProperSubset:
        return l != r && Includes(r, l);
      case SetOp::kProperSuperset:
        return l != r && Includes(l, r);
      case SetOp::kWeakMatch:
        for (EntityId e : l) {
          if (r.count(e) > 0) return true;
        }
        return false;
      case SetOp::kLessEqual:
      case SetOp::kGreater: {
        if (l.size() != 1 || r.size() != 1) return false;
        std::int64_t a = db_.GetEntity(*l.begin()).value.integer();
        std::int64_t b = db_.GetEntity(*r.begin()).value.integer();
        return op == SetOp::kLessEqual ? a <= b : a > b;
      }
    }
    return false;
  }

  Database db_;
  std::vector<EntityId> universe_;
};

TEST_P(SetOpPropertyTest, MatchesOracleOnAllSubsetPairs) {
  Evaluator eval(db_);
  SetOp op = GetParam();
  std::vector<EntitySet> subsets = AllSubsets();
  int agreements = 0;
  for (const EntitySet& l : subsets) {
    for (const EntitySet& r : subsets) {
      EXPECT_EQ(eval.Compare(l, op, r), Oracle(l, op, r))
          << "op=" << SetOpToString(op) << " |l|=" << l.size()
          << " |r|=" << r.size();
      ++agreements;
    }
  }
  EXPECT_EQ(agreements, 256);
}

TEST_P(SetOpPropertyTest, AtomNegationIsExactComplement) {
  // For every pair, the negated atom is the exact complement of the plain
  // atom (the paper: "the negations of all these operators are also
  // available").
  Evaluator eval(db_);
  SetOp op = GetParam();
  for (const EntitySet& l : AllSubsets()) {
    for (const EntitySet& r : AllSubsets()) {
      Atom plain;
      plain.lhs = Term::Constant(l);
      plain.op = op;
      plain.rhs = Term::Constant(r);
      // Constant-lhs atoms are rejected by the worksheet's type checker but
      // evaluate fine, which is exactly what this oracle needs.
      Atom negated = plain;
      negated.negated = true;
      EXPECT_NE(eval.EvalAtom(plain, sdm::kNullEntity, sdm::kNullEntity),
                eval.EvalAtom(negated, sdm::kNullEntity, sdm::kNullEntity));
    }
  }
}

TEST_P(SetOpPropertyTest, AlgebraicLaws) {
  Evaluator eval(db_);
  SetOp op = GetParam();
  for (const EntitySet& l : AllSubsets()) {
    // Reflexivity classes: =, subset-eq, superset-eq and <= hold on (s, s);
    // the strict and disjointness-style operators never do (except ~ on
    // nonempty sets).
    bool self = eval.Compare(l, op, l);
    switch (op) {
      case SetOp::kEqual:
      case SetOp::kSubset:
      case SetOp::kSuperset:
        EXPECT_TRUE(self);
        break;
      case SetOp::kProperSubset:
      case SetOp::kProperSuperset:
        EXPECT_FALSE(self);
        break;
      case SetOp::kWeakMatch:
        EXPECT_EQ(self, !l.empty());
        break;
      case SetOp::kLessEqual:
        EXPECT_EQ(self, l.size() == 1);
        break;
      case SetOp::kGreater:
        EXPECT_FALSE(self);
        break;
    }
  }
  // Duality: l [= r  <=>  r ]= l (and the proper forms).
  for (const EntitySet& l : AllSubsets()) {
    for (const EntitySet& r : AllSubsets()) {
      EXPECT_EQ(eval.Compare(l, SetOp::kSubset, r),
                eval.Compare(r, SetOp::kSuperset, l));
      EXPECT_EQ(eval.Compare(l, SetOp::kProperSubset, r),
                eval.Compare(r, SetOp::kProperSuperset, l));
      // Weak match is symmetric.
      EXPECT_EQ(eval.Compare(l, SetOp::kWeakMatch, r),
                eval.Compare(r, SetOp::kWeakMatch, l));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, SetOpPropertyTest,
    ::testing::Values(SetOp::kEqual, SetOp::kSubset, SetOp::kSuperset,
                      SetOp::kProperSubset, SetOp::kProperSuperset,
                      SetOp::kWeakMatch, SetOp::kLessEqual, SetOp::kGreater),
    [](const ::testing::TestParamInfo<SetOp>& info) {
      switch (info.param) {
        case SetOp::kEqual:
          return "Equal";
        case SetOp::kSubset:
          return "Subset";
        case SetOp::kSuperset:
          return "Superset";
        case SetOp::kProperSubset:
          return "ProperSubset";
        case SetOp::kProperSuperset:
          return "ProperSuperset";
        case SetOp::kWeakMatch:
          return "WeakMatch";
        case SetOp::kLessEqual:
          return "LessEqual";
        case SetOp::kGreater:
          return "Greater";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace isis::query
