/// \file value_index_test.cpp
/// \brief Tests for the attribute-value indexes (Database::ValueIndexProbe
/// and friends): probe answers must always equal a brute-force scan of the
/// attribute rows, and mutations must keep a built index fresh through the
/// incremental hooks — never by silently rebuilding.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/instrumental_music.h"
#include "datasets/scaled_music.h"
#include "query/workspace.h"

namespace isis::sdm {
namespace {

using query::Workspace;

/// Owners of `value` through `attr`, the slow way: scan every live entity's
/// value set. This is exactly what a from-scratch rebuild would produce.
EntitySet BruteForceOwners(const Database& db, AttributeId attr,
                           EntityId value) {
  EntitySet owners;
  for (EntityId e : db.AllEntities()) {
    if (db.GetValueSet(e, attr).count(value) > 0) owners.insert(e);
  }
  return owners;
}

/// Probes every member of the attribute's value class (plus the given
/// extras) and checks the index against brute force.
void ExpectIndexConsistent(const Database& db, AttributeId attr,
                           const EntitySet& extra_values = {}) {
  const AttributeDef& def = db.schema().GetAttribute(attr);
  EntitySet values = db.Members(def.value_class);
  values.insert(extra_values.begin(), extra_values.end());
  for (EntityId v : values) {
    EXPECT_EQ(db.ValueIndexProbe(attr, v), BruteForceOwners(db, attr, v))
        << "attr " << db.schema().GetAttribute(attr).name << " value "
        << db.NameOf(v);
  }
}

class ValueIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = datasets::BuildInstrumentalMusic();
    db_ = &ws_->db();
    const Schema& s = db_->schema();
    musicians_ = *s.FindClass("musicians");
    instruments_ = *s.FindClass("instruments");
    families_ = *s.FindClass("families");
    family_ = *s.FindAttribute(instruments_, "family");
    plays_ = *s.FindAttribute(musicians_, "plays");
  }

  EntityId E(ClassId cls, const char* name) {
    return *db_->FindEntity(cls, name);
  }

  std::unique_ptr<Workspace> ws_;
  Database* db_ = nullptr;
  ClassId musicians_, instruments_, families_;
  AttributeId family_, plays_;
};

TEST_F(ValueIndexTest, ProbeMatchesBruteForce) {
  ExpectIndexConsistent(*db_, family_);   // singlevalued
  ExpectIndexConsistent(*db_, plays_);    // multivalued
  EXPECT_EQ(db_->ValueIndexProbe(family_, E(families_, "percussion")).size(),
            3u);  // drums, cymbals, timpani
}

TEST_F(ValueIndexTest, NamingAttributesAreNotIndexable) {
  AttributeId name = *db_->schema().FindAttribute(instruments_, "name");
  EXPECT_FALSE(db_->ValueIndexable(name));
  EXPECT_TRUE(
      db_->ValueIndexProbe(name, db_->InternString("flute")).empty());
  EXPECT_EQ(db_->ValueIndexDistinctValues(name), 0);
}

TEST_F(ValueIndexTest, SingleValuedMutationsMaintainTheIndex) {
  ExpectIndexConsistent(*db_, family_);  // builds the index
  const std::int64_t rebuilds = db_->stats().value_index_rebuilds;

  ASSERT_TRUE(db_->SetSingle(E(instruments_, "flute"), family_,
                             E(families_, "percussion"))
                  .ok());
  ExpectIndexConsistent(*db_, family_);
  ASSERT_TRUE(
      db_->SetSingle(E(instruments_, "flute"), family_, kNullEntity).ok());
  ExpectIndexConsistent(*db_, family_);

  // Fresh after every mutation without a rebuild: strictly incremental.
  EXPECT_EQ(db_->stats().value_index_rebuilds, rebuilds);
  EXPECT_GT(db_->stats().value_index_incremental_updates, 0);
}

TEST_F(ValueIndexTest, MultiValuedMutationsMaintainTheIndex) {
  ExpectIndexConsistent(*db_, plays_);
  const std::int64_t rebuilds = db_->stats().value_index_rebuilds;

  EntityId mark = E(musicians_, "Mark");
  ASSERT_TRUE(db_->AddToMulti(mark, plays_, E(instruments_, "drums")).ok());
  ExpectIndexConsistent(*db_, plays_);
  ASSERT_TRUE(
      db_->RemoveFromMulti(mark, plays_, E(instruments_, "drums")).ok());
  ExpectIndexConsistent(*db_, plays_);
  ASSERT_TRUE(db_->SetMulti(mark, plays_,
                            {E(instruments_, "organ"), E(instruments_, "oboe")})
                  .ok());
  ExpectIndexConsistent(*db_, plays_);
  EXPECT_EQ(db_->stats().value_index_rebuilds, rebuilds);
}

TEST_F(ValueIndexTest, EntityDeletionDropsOwnRowsAndPostings) {
  ExpectIndexConsistent(*db_, plays_);
  ExpectIndexConsistent(*db_, family_);
  // Deleting a musician drops its own plays row (owner side); deleting an
  // instrument scrubs it out of every plays set (value side) and drops its
  // family row.
  ASSERT_TRUE(db_->DeleteEntity(E(musicians_, "Edith")).ok());
  ExpectIndexConsistent(*db_, plays_);
  EntityId violin = E(instruments_, "violin");
  ASSERT_TRUE(db_->DeleteEntity(violin).ok());
  ExpectIndexConsistent(*db_, plays_, {violin});
  ExpectIndexConsistent(*db_, family_);
}

TEST_F(ValueIndexTest, ClassRemovalDropsTheRow) {
  // An attribute owned by the enumerated soloists subclass: leaving the
  // class drops the row without any value-change notification, and the
  // index must see it go.
  ClassId soloists = *db_->schema().FindClass("soloists");
  Result<AttributeId> fee =
      db_->CreateAttribute(soloists, "fee", Schema::kIntegers(), false);
  ASSERT_TRUE(fee.ok());
  EntityId mark = E(musicians_, "Mark");
  EntityId hundred = db_->InternInteger(100);
  ASSERT_TRUE(db_->SetSingle(mark, *fee, hundred).ok());
  ExpectIndexConsistent(*db_, *fee, {hundred});
  EXPECT_EQ(db_->ValueIndexProbe(*fee, hundred).count(mark), 1u);
  ASSERT_TRUE(db_->RemoveFromClass(mark, soloists).ok());
  ExpectIndexConsistent(*db_, *fee, {hundred});
  EXPECT_TRUE(db_->ValueIndexProbe(*fee, hundred).empty());
}

TEST_F(ValueIndexTest, NewEntitiesEnterTheIndex) {
  ExpectIndexConsistent(*db_, family_);
  Result<EntityId> kazoo = db_->CreateEntity(instruments_, "kazoo");
  ASSERT_TRUE(kazoo.ok());
  ASSERT_TRUE(
      db_->SetSingle(*kazoo, family_, E(families_, "woodwind")).ok());
  ExpectIndexConsistent(*db_, family_);
  EXPECT_GT(db_->ValueIndexProbe(family_, E(families_, "woodwind")).count(
                *kazoo),
            0u);
}

TEST_F(ValueIndexTest, PostingsAndDistinctValuesTrackContent) {
  std::int64_t postings = db_->ValueIndexPostings(plays_);
  std::int64_t expected = 0;
  for (EntityId e : db_->AllEntities()) {
    expected += static_cast<std::int64_t>(db_->GetValueSet(e, plays_).size());
  }
  EXPECT_EQ(postings, expected);
  EXPECT_GT(db_->ValueIndexDistinctValues(plays_), 0);
  EntityId mark = E(musicians_, "Mark");
  EntitySet before = db_->GetMulti(mark, plays_);
  ASSERT_TRUE(db_->SetMulti(mark, plays_, {}).ok());
  EXPECT_EQ(db_->ValueIndexPostings(plays_),
            expected - static_cast<std::int64_t>(before.size()));
}

TEST_F(ValueIndexTest, RandomizedMutationsAgreeWithRebuild) {
  auto ws = datasets::BuildScaledMusic(4);
  Database& db = ws->db();
  datasets::ScaledMusicHandles h = datasets::ResolveScaledMusic(*ws);
  std::vector<EntityId> musicians(db.Members(h.musicians).begin(),
                                  db.Members(h.musicians).end());
  std::vector<EntityId> instruments(db.Members(h.instruments).begin(),
                                    db.Members(h.instruments).end());
  std::vector<EntityId> families(db.Members(h.families).begin(),
                                 db.Members(h.families).end());
  // Build both indexes, then churn: every probe afterwards must match the
  // brute-force answer while rebuild counters stay flat.
  (void)db.ValueIndexPostings(h.plays);
  (void)db.ValueIndexPostings(h.family);
  const std::int64_t rebuilds = db.stats().value_index_rebuilds;
  Rng rng(99);
  for (int step = 0; step < 200; ++step) {
    EntityId m = musicians[rng.Below(musicians.size())];
    EntityId i = instruments[rng.Below(instruments.size())];
    switch (rng.Below(4)) {
      case 0:
        ASSERT_TRUE(db.AddToMulti(m, h.plays, i).ok());
        break;
      case 1:
        (void)db.RemoveFromMulti(m, h.plays, i);
        break;
      case 2:
        ASSERT_TRUE(
            db.SetSingle(i, h.family, families[rng.Below(families.size())])
                .ok());
        break;
      case 3:
        ASSERT_TRUE(db.SetSingle(i, h.family, kNullEntity).ok());
        break;
    }
    if (step % 20 == 0) {
      ExpectIndexConsistent(db, h.family);
      EXPECT_EQ(db.ValueIndexProbe(h.plays, i),
                BruteForceOwners(db, h.plays, i));
    }
  }
  ExpectIndexConsistent(db, h.family);
  ExpectIndexConsistent(db, h.plays);
  EXPECT_EQ(db.stats().value_index_rebuilds, rebuilds);
  EXPECT_GT(db.stats().value_index_incremental_updates, 0);
}

}  // namespace
}  // namespace isis::sdm
