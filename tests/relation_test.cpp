/// \file relation_test.cpp
/// \brief Tests for the relational baseline engine.

#include <gtest/gtest.h>

#include "rel/relation.h"

namespace isis::rel {
namespace {

Relation People() {
  Relation r({"name", "age", "city"});
  EXPECT_TRUE(r.Insert({Value::String("ada"), Value::Integer(36),
                        Value::String("london")})
                  .ok());
  EXPECT_TRUE(r.Insert({Value::String("ben"), Value::Integer(28),
                        Value::String("oslo")})
                  .ok());
  EXPECT_TRUE(r.Insert({Value::String("cleo"), Value::Integer(36),
                        Value::String("rome")})
                  .ok());
  return r;
}

TEST(RelationTest, InsertDeduplicatesAndSorts) {
  Relation r({"x"});
  ASSERT_TRUE(r.Insert({Value::Integer(2)}).ok());
  ASSERT_TRUE(r.Insert({Value::Integer(1)}).ok());
  ASSERT_TRUE(r.Insert({Value::Integer(2)}).ok());  // duplicate
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuples()[0][0].integer(), 1);  // sorted
  EXPECT_TRUE(r.Contains({Value::Integer(2)}));
  EXPECT_FALSE(r.Contains({Value::Integer(3)}));
  EXPECT_TRUE(r.Insert({Value::Integer(1), Value::Integer(2)})
                  .IsInvalidArgument());  // arity
}

TEST(RelationTest, ColumnIndex) {
  Relation r = People();
  EXPECT_EQ(*r.ColumnIndex("age"), 1u);
  EXPECT_TRUE(r.ColumnIndex("salary").status().IsNotFound());
}

TEST(CompareValuesTest, NumericInterop) {
  EXPECT_TRUE(CompareValues(Value::Integer(2), CompareOp::kLt,
                            Value::Real(2.5)));
  EXPECT_TRUE(CompareValues(Value::Real(3.0), CompareOp::kEq,
                            Value::Integer(3)));
  EXPECT_TRUE(CompareValues(Value::String("a"), CompareOp::kLt,
                            Value::String("b")));
  EXPECT_TRUE(CompareValues(Value::Boolean(true), CompareOp::kGt,
                            Value::Boolean(false)));
  // Incomparable kinds: != only.
  EXPECT_TRUE(CompareValues(Value::String("1"), CompareOp::kNe,
                            Value::Integer(1)));
  EXPECT_FALSE(CompareValues(Value::String("1"), CompareOp::kEq,
                             Value::Integer(1)));
  EXPECT_FALSE(CompareValues(Value::String("1"), CompareOp::kLt,
                             Value::Integer(1)));
}

TEST(SelectTest, ConstantsAndColumns) {
  Relation r = People();
  Result<Relation> aged = Select(
      r, {Condition::WithConst(1, CompareOp::kEq, Value::Integer(36))});
  ASSERT_TRUE(aged.ok());
  EXPECT_EQ(aged->size(), 2u);
  // Column-to-column condition.
  Relation pairs({"a", "b"});
  ASSERT_TRUE(pairs.Insert({Value::Integer(1), Value::Integer(1)}).ok());
  ASSERT_TRUE(pairs.Insert({Value::Integer(1), Value::Integer(2)}).ok());
  Result<Relation> eq =
      Select(pairs, {Condition::WithColumn(0, CompareOp::kEq, 1)});
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->size(), 1u);
  // Out-of-range columns rejected.
  EXPECT_FALSE(
      Select(r, {Condition::WithConst(9, CompareOp::kEq, Value::Integer(0))})
          .ok());
}

TEST(SelectWhereTest, ArbitraryPredicate) {
  Relation r = People();
  Relation young = SelectWhere(r, [](const Tuple& t) {
    return t[1].integer() < 30;
  });
  EXPECT_EQ(young.size(), 1u);
}

TEST(ProjectTest, ReordersAndDeduplicates) {
  Relation r = People();
  Result<Relation> ages = Project(r, {"age"});
  ASSERT_TRUE(ages.ok());
  EXPECT_EQ(ages->size(), 2u);  // 28, 36 (36 deduplicated)
  Result<Relation> swapped = Project(r, {"city", "name"});
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped->columns(),
            (std::vector<std::string>{"city", "name"}));
  EXPECT_TRUE(Project(r, {"salary"}).status().IsNotFound());
}

TEST(RenameTest, Basic) {
  Relation r = People();
  Result<Relation> renamed = Rename(r, {{"name", "person"}});
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE(renamed->ColumnIndex("person").ok());
  EXPECT_FALSE(renamed->ColumnIndex("name").ok());
  EXPECT_TRUE(Rename(r, {{"ghost", "x"}}).status().IsNotFound());
}

TEST(ProductTest, RequiresDisjointColumns) {
  Relation a({"x"});
  ASSERT_TRUE(a.Insert({Value::Integer(1)}).ok());
  ASSERT_TRUE(a.Insert({Value::Integer(2)}).ok());
  Relation b({"y"});
  ASSERT_TRUE(b.Insert({Value::Integer(10)}).ok());
  Result<Relation> prod = Product(a, b);
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(prod->size(), 2u);
  EXPECT_EQ(prod->arity(), 2u);
  EXPECT_TRUE(Product(a, a).status().IsInvalidArgument());
}

TEST(NaturalJoinTest, JoinsOnSharedColumns) {
  Relation lives({"name", "city"});
  ASSERT_TRUE(
      lives.Insert({Value::String("ada"), Value::String("london")}).ok());
  ASSERT_TRUE(
      lives.Insert({Value::String("ben"), Value::String("oslo")}).ok());
  Relation capital({"city", "country"});
  ASSERT_TRUE(
      capital.Insert({Value::String("london"), Value::String("uk")}).ok());
  Result<Relation> joined = NaturalJoin(lives, capital);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->columns(),
            (std::vector<std::string>{"name", "city", "country"}));
  ASSERT_EQ(joined->size(), 1u);
  EXPECT_EQ(joined->tuples()[0][0].str(), "ada");
  // No shared columns degenerates to a product.
  Relation other({"z"});
  ASSERT_TRUE(other.Insert({Value::Integer(1)}).ok());
  Result<Relation> prod = NaturalJoin(lives, other);
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(prod->size(), 2u);
}

TEST(SetOpsTest, UnionDifferenceIntersect) {
  Relation a({"x"});
  ASSERT_TRUE(a.Insert({Value::Integer(1)}).ok());
  ASSERT_TRUE(a.Insert({Value::Integer(2)}).ok());
  Relation b({"x"});
  ASSERT_TRUE(b.Insert({Value::Integer(2)}).ok());
  ASSERT_TRUE(b.Insert({Value::Integer(3)}).ok());
  EXPECT_EQ(Union(a, b)->size(), 3u);
  EXPECT_EQ(Difference(a, b)->size(), 1u);
  EXPECT_EQ(Difference(a, b)->tuples()[0][0].integer(), 1);
  EXPECT_EQ(Intersect(a, b)->size(), 1u);
  Relation c({"y"});
  EXPECT_TRUE(Union(a, c).status().IsTypeError());
}

TEST(RelDatabaseTest, Catalog) {
  RelDatabase db;
  ASSERT_TRUE(db.AddRelation("people", People()).ok());
  EXPECT_TRUE(db.AddRelation("people", People()).IsAlreadyExists());
  ASSERT_TRUE(db.Find("people").ok());
  EXPECT_TRUE(db.Find("ghosts").status().IsNotFound());
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"people"}));
}

TEST(AlgebraLawsTest, SelectionCommutesAndProjectionIdempotent) {
  Relation r = People();
  Condition c1 = Condition::WithConst(1, CompareOp::kGe, Value::Integer(30));
  Condition c2 =
      Condition::WithConst(2, CompareOp::kNe, Value::String("rome"));
  EXPECT_EQ(*Select(*Select(r, {c1}), {c2}), *Select(*Select(r, {c2}), {c1}));
  EXPECT_EQ(*Select(r, {c1, c2}), *Select(*Select(r, {c1}), {c2}));
  Relation p = *Project(r, {"name"});
  EXPECT_EQ(*Project(p, {"name"}), p);
}

}  // namespace
}  // namespace isis::rel
