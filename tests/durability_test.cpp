/// \file durability_test.cpp
/// \brief End-to-end durability tests for the session controller: crash
/// recovery by WAL replay, journal persistence across sessions, log
/// rotation on load, failed-save journaling, and the fault-injection
/// property test — after a crash at *any* injected fault point, recovery
/// lands on a state byte-identical (through store::Save) to the workspace
/// before or after some event of the session, never anything else.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datasets/instrumental_music.h"
#include "sdm/consistency.h"
#include "store/file.h"
#include "store/serializer.h"
#include "store/wal.h"
#include "ui/controller.h"

namespace isis::ui {
namespace {

using datasets::BuildInstrumentalMusic;

std::unique_ptr<query::Workspace> Music(const std::string& name) {
  auto ws = BuildInstrumentalMusic();
  ws->set_name(name);
  return ws;
}

std::string Dir() { return ::testing::TempDir(); }

/// Removes every file a durable session named `name` can leave behind.
void CleanSlate(const std::string& name) {
  store::FileEnv* env = store::FileEnv::Default();
  (void)env->Remove(Dir() + "/" + name + ".isis");
  (void)env->Remove(Dir() + "/" + name + ".isis.tmp");
  (void)env->Remove(Dir() + "/" + name + ".isis.wal");
  (void)env->Remove(Dir() + "/" + name + ".isis.wal.tmp");
}

Result<std::unique_ptr<SessionController>> Open(
    const std::string& name, store::FileEnv* env = nullptr) {
  return SessionController::OpenDurable(Music(name), {Dir(), env});
}

TEST(DurabilityTest, FreshSessionStartsLogWithBaseCheckpoint) {
  CleanSlate("dur_fresh");
  auto s = Open("dur_fresh");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE((*s)->durable());
  auto wal = store::ReadWal((*s)->wal_path(), store::FileEnv::Default());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_FALSE(wal->truncated_tail);
  ASSERT_EQ(wal->records.size(), 1u);
  EXPECT_EQ(wal->records[0].type, "base");
  EXPECT_EQ(wal->records[0].payload, store::Save((*s)->workspace()));
}

TEST(DurabilityTest, CrashRecoveryReplaysEventsAndJournal) {
  CleanSlate("dur_crash");
  std::string expected;
  size_t journal_size = 0;
  {
    auto s = Open("dur_crash");
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    ASSERT_TRUE((*s)
                    ->RunScript("pick class:instruments\n"
                                "cmd create subclass\n"
                                "type zz_brass\n"
                                "pick class:musicians\n"
                                "cmd create subclass\n"
                                "type zz_crooners\n")
                    .ok());
    expected = store::Save((*s)->workspace());
    journal_size = (*s)->journal().size();
    // Crash: the session object goes away with no orderly shutdown.
  }
  auto r = Open("dur_crash");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(store::Save((*r)->workspace()), expected);
  EXPECT_EQ((*r)->journal().size(), journal_size);
  EXPECT_FALSE((*r)->journal().Find("zz_brass").empty());
  EXPECT_NE((*r)->message().find("recovered"), std::string::npos);

  // The recovered session keeps logging: edit, crash again, recover again —
  // the journal accumulates the whole design history across crashes.
  ASSERT_TRUE((*r)
                  ->RunScript("pick class:instruments\n"
                              "cmd create subclass\n"
                              "type zz_woodwind\n")
                  .ok());
  std::string expected2 = store::Save((*r)->workspace());
  r->reset();
  auto r2 = Open("dur_crash");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(store::Save((*r2)->workspace()), expected2);
  EXPECT_FALSE((*r2)->journal().Find("zz_brass").empty());
  EXPECT_FALSE((*r2)->journal().Find("zz_woodwind").empty());
  EXPECT_TRUE(
      sdm::ConsistencyChecker((*r2)->workspace().db()).Check().ok());
}

TEST(DurabilityTest, ScriptCommitsWithOneSyncAndRecovers) {
  CleanSlate("dur_batchsync");
  std::string expected;
  {
    // A fault-free FaultInjectingEnv counts the syncs; its "page cache"
    // model also proves the batch reaches disk only through its one Sync.
    store::FaultInjectingEnv env(store::FaultPlan{},
                                 store::FileEnv::Default());
    auto s = Open("dur_batchsync", &env);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    const int syncs_before = env.syncs();
    ASSERT_TRUE((*s)
                    ->RunScript("pick class:instruments\n"
                                "cmd create subclass\n"
                                "type zz_brass\n"
                                "pick class:musicians\n"
                                "cmd create subclass\n"
                                "type zz_crooners\n")
                    .ok());
    // Six events, ONE sync: the script batched its WAL appends through
    // AppendBatch instead of fsyncing per event.
    EXPECT_EQ(env.syncs() - syncs_before, 1);
    expected = store::Save((*s)->workspace());
    // Crash (no orderly shutdown).
  }
  auto r = Open("dur_batchsync");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(store::Save((*r)->workspace()), expected);
  EXPECT_FALSE((*r)->journal().Find("zz_brass").empty());
  CleanSlate("dur_batchsync");
}

TEST(DurabilityTest, TornFinalAppendIsDroppedAndRepaired) {
  CleanSlate("dur_torn");
  std::string wal_path;
  {
    auto s = Open("dur_torn");
    ASSERT_TRUE(s.ok());
    wal_path = (*s)->wal_path();
    ASSERT_TRUE((*s)
                    ->RunScript("pick class:instruments\n"
                                "cmd create subclass\n"
                                "type zz_brass\n")
                    .ok());
  }
  // Tear the final append: chop bytes off the end of the log.
  auto data = store::FileEnv::Default()->ReadFile(wal_path);
  ASSERT_TRUE(data.ok());
  auto f = store::FileEnv::Default()->OpenForWrite(wal_path, false);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Write(data->substr(0, data->size() - 5)).ok());
  ASSERT_TRUE((*f)->Close().ok());

  auto r = Open("dur_torn");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The torn record was the `type zz_brass` event: the recovered state is
  // exactly the pre-event one, still waiting at the name prompt's edge.
  EXPECT_FALSE(
      (*r)->workspace().db().schema().FindClass("zz_brass").ok());
  // And the log was repaired in place: reads back clean.
  auto wal = store::ReadWal(wal_path, store::FileEnv::Default());
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE(wal->truncated_tail);
}

TEST(DurabilityTest, MidLogCorruptionRejectedAtOpen) {
  CleanSlate("dur_corrupt");
  std::string wal_path;
  {
    auto s = Open("dur_corrupt");
    ASSERT_TRUE(s.ok());
    wal_path = (*s)->wal_path();
    ASSERT_TRUE((*s)
                    ->RunScript("pick class:instruments\n"
                                "cmd create subclass\n"
                                "type zz_brass\n"
                                "pick class:zz_brass\n")
                    .ok());
  }
  // Flip one byte inside a logged event that has records after it.
  auto data = store::FileEnv::Default()->ReadFile(wal_path);
  ASSERT_TRUE(data.ok());
  size_t pos = data->find("create subclass");
  ASSERT_NE(pos, std::string::npos);
  (*data)[pos] ^= 0x20;
  auto f = store::FileEnv::Default()->OpenForWrite(wal_path, false);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Write(*data).ok());
  ASSERT_TRUE((*f)->Close().ok());

  Status st = Open("dur_corrupt").status();
  ASSERT_TRUE(st.IsParseError()) << st.ToString();
  EXPECT_NE(st.message().find("checksum mismatch"), std::string::npos)
      << st.ToString();
}

TEST(DurabilityTest, WalRotatesOnSuccessfulLoad) {
  CleanSlate("dur_rot");
  auto s = Open("dur_rot");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_TRUE((*s)
                  ->RunScript("pick class:instruments\n"
                              "cmd create subclass\n"
                              "type zz_brass\n"
                              "cmd save\n"
                              "type dur_rot\n"
                              "cmd load\n"
                              "type dur_rot\n")
                  .ok());
  // After the load the old log no longer applies: the new one starts at
  // the loaded state with the journal carried over as notes — no events.
  auto wal = store::ReadWal((*s)->wal_path(), store::FileEnv::Default());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_FALSE(wal->records.empty());
  EXPECT_EQ(wal->records[0].type, "base");
  size_t events = 0, notes = 0;
  for (size_t i = 1; i < wal->records.size(); ++i) {
    if (wal->records[i].type == "event") ++events;
    if (wal->records[i].type == "note") ++notes;
  }
  EXPECT_EQ(events, 0u);
  EXPECT_GE(notes, 3u);  // create subclass, save, load.

  // Post-rotation edits land in the new log and survive a crash — with
  // the full pre-load journal still intact.
  ASSERT_TRUE((*s)
                  ->RunScript("pick class:musicians\n"
                              "cmd create subclass\n"
                              "type zz_crooners\n")
                  .ok());
  std::string expected = store::Save((*s)->workspace());
  size_t journal_size = (*s)->journal().size();
  s->reset();
  auto r = Open("dur_rot");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(store::Save((*r)->workspace()), expected);
  EXPECT_EQ((*r)->journal().size(), journal_size);
  EXPECT_FALSE((*r)->journal().Find("zz_brass").empty());
}

TEST(DurabilityTest, FailedSaveAndLoadAreJournaled) {
  SessionController session(Music("keepname"));
  ASSERT_TRUE(session.RunScript("cmd save\n").ok());
  EXPECT_FALSE(session.RunScript("type /no/such/dir/zz_db\n").ok());
  // The failure is design history; the workspace name did not drift.
  EXPECT_FALSE(session.journal().Find("save FAILED").empty());
  EXPECT_EQ(session.workspace().name(), "keepname");
  EXPECT_NE(session.message().find("!"), std::string::npos);

  ASSERT_TRUE(session.RunScript("cmd load\n").ok());
  EXPECT_FALSE(session.RunScript("type zz_definitely_missing_db\n").ok());
  EXPECT_FALSE(session.journal().Find("load FAILED").empty());
}

/// The tentpole property: crash the durable session at every write, fsync,
/// rename and open the whole session performs, with and without torn
/// prefixes; after each crash, recovery must land on the store::Save bytes
/// of the workspace before or after one of the session's events.
TEST(DurabilityFaultTest, EveryFaultPointRecoversPreOrPostEventState) {
  const std::string name = "dur_prop";
  const std::vector<std::string> steps = {
      "pick class:instruments",
      "cmd create subclass",
      "type zz_brass",
      "pick class:zz_brass",
      "cmd save",
      "type " + name,
      "cmd undo",
      "pick class:musicians",
      "cmd create subclass",
      "type zz_crooners",
  };
  constexpr size_t kSaveStep = 5;  // index of "type dur_prop".

  // Ground truth: one fault-free durable run, snapshotting the workspace
  // after every event. Its env counts the fault points to enumerate.
  CleanSlate(name);
  store::FaultInjectingEnv count_env{store::FaultPlan{}};
  auto clean = SessionController::OpenDurable(Music(name),
                                              {Dir(), &count_env});
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  std::set<std::string> legal_states;
  legal_states.insert(store::Save((*clean)->workspace()));
  std::string saved_state;
  for (size_t i = 0; i < steps.size(); ++i) {
    ASSERT_TRUE((*clean)->RunScript(steps[i]).ok()) << steps[i];
    legal_states.insert(store::Save((*clean)->workspace()));
    if (i == kSaveStep) saved_state = store::Save((*clean)->workspace());
  }
  clean->reset();
  ASSERT_GT(count_env.writes(), 5);
  ASSERT_GT(count_env.syncs(), 5);
  ASSERT_GE(count_env.renames(), 2);
  ASSERT_GE(count_env.opens(), 3);

  struct Case {
    store::FaultPlan plan;
    std::string what;
  };
  std::vector<Case> cases;
  for (int i = 0; i < count_env.opens(); ++i) {
    cases.push_back({{.fail_open = i}, "open@" + std::to_string(i)});
  }
  for (int i = 0; i < count_env.writes(); ++i) {
    for (long prefix : {0L, 13L}) {
      cases.push_back({{.fail_write = i, .persist_prefix = prefix},
                       "write@" + std::to_string(i) + "+" +
                           std::to_string(prefix)});
    }
  }
  for (int i = 0; i < count_env.syncs(); ++i) {
    cases.push_back({{.fail_sync = i, .persist_prefix = 5},
                     "fsync@" + std::to_string(i)});
  }
  for (int i = 0; i < count_env.renames(); ++i) {
    cases.push_back({{.fail_rename = i}, "rename@" + std::to_string(i)});
  }
  cases.push_back({{.fail_write = 2, .enospc = true}, "enospc"});

  for (const Case& c : cases) {
    CleanSlate(name);
    store::FaultInjectingEnv env{c.plan};
    auto s = SessionController::OpenDurable(Music(name), {Dir(), &env});
    if (s.ok()) {
      // Keep going after errors, like a user would: once the env has
      // crashed, appends fail silently and a save fails loudly, but the
      // in-memory session stays live until the "process" dies below.
      for (const std::string& step : steps) {
        (void)(*s)->RunScript(step, /*stop_on_error=*/false);
      }
      s->reset();  // Crash.
    }

    // Restart on pristine I/O and recover.
    auto r = SessionController::OpenDurable(Music(name), {Dir()});
    ASSERT_TRUE(r.ok()) << c.what << ": " << r.status().ToString();
    std::string recovered = store::Save((*r)->workspace());
    EXPECT_TRUE(legal_states.count(recovered) > 0)
        << c.what << ": recovered a state that never existed";
    EXPECT_TRUE(
        sdm::ConsistencyChecker((*r)->workspace().db()).Check().ok())
        << c.what;

    // Checkpoint invariant: if a `<name>.isis` was published at all —
    // by the faulted run or by recovery replaying the save — it loads
    // cleanly and holds exactly the state at the save.
    const std::string ckpt = Dir() + "/" + name + ".isis";
    if (store::FileEnv::Default()->Exists(ckpt)) {
      auto loaded = store::LoadFromFile(ckpt);
      ASSERT_TRUE(loaded.ok()) << c.what << ": "
                               << loaded.status().ToString();
      EXPECT_EQ(store::Save(**loaded), saved_state) << c.what;
    }
  }
}

}  // namespace
}  // namespace isis::ui
