/// \file predicate_test.cpp
/// \brief Tests for predicate structure, builders and display forms.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "query/predicate.h"

namespace isis::query {
namespace {

TEST(PredicateStructureTest, AddAtomPlacesIntoClauses) {
  Predicate p;
  Atom a;
  int i0 = p.AddAtom(a, 0);
  int i1 = p.AddAtom(a, 2);
  int i2 = p.AddAtom(a, -1);  // unplaced
  EXPECT_EQ(i0, 0);
  EXPECT_EQ(i1, 1);
  EXPECT_EQ(i2, 2);
  ASSERT_EQ(p.clauses.size(), 3u);
  EXPECT_EQ(p.clauses[0], std::vector<int>{0});
  EXPECT_TRUE(p.clauses[1].empty());
  EXPECT_EQ(p.clauses[2], std::vector<int>{1});
  EXPECT_TRUE(p.ValidateStructure().ok());
}

TEST(PredicateStructureTest, EmptyPredicate) {
  Predicate p;
  EXPECT_TRUE(p.empty());
  p.AddAtom(Atom{}, -1);
  EXPECT_TRUE(p.empty());  // unplaced atoms don't count
  p.AddAtom(Atom{}, 0);
  EXPECT_FALSE(p.empty());
}

TEST(PredicateStructureTest, BadClauseIndexRejected) {
  Predicate p;
  p.clauses.push_back({0});  // references a nonexistent atom
  EXPECT_TRUE(p.ValidateStructure().IsInvalidArgument());
  p.atoms.push_back(Atom{});
  EXPECT_TRUE(p.ValidateStructure().ok());
  p.clauses.push_back({-1});
  EXPECT_TRUE(p.ValidateStructure().IsInvalidArgument());
}

TEST(SetOpTest, DisplayForms) {
  EXPECT_STREQ(SetOpToString(SetOp::kEqual), "=");
  EXPECT_STREQ(SetOpToString(SetOp::kSubset), "[=");
  EXPECT_STREQ(SetOpToString(SetOp::kSuperset), "]=");
  EXPECT_STREQ(SetOpToString(SetOp::kProperSubset), "[");
  EXPECT_STREQ(SetOpToString(SetOp::kProperSuperset), "]");
  EXPECT_STREQ(SetOpToString(SetOp::kWeakMatch), "~");
  EXPECT_STREQ(SetOpToString(SetOp::kLessEqual), "<=");
  EXPECT_STREQ(SetOpToString(SetOp::kGreater), ">");
}

class PredicateDisplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = datasets::BuildInstrumentalMusic();
    const sdm::Schema& s = ws_->db().schema();
    music_groups_ = *s.FindClass("music_groups");
    size_ = *s.FindAttribute(music_groups_, "size");
    members_ = *s.FindAttribute(music_groups_, "members");
    plays_ = *s.FindAttribute(*s.FindClass("musicians"), "plays");
  }
  std::unique_ptr<Workspace> ws_;
  ClassId music_groups_;
  AttributeId size_, members_, plays_;
};

TEST_F(PredicateDisplayTest, TermToString) {
  EXPECT_EQ(TermToString(ws_->db(), Term::Candidate({size_})), "e.size");
  EXPECT_EQ(TermToString(ws_->db(), Term::Candidate({members_, plays_})),
            "e.members.plays");
  EXPECT_EQ(TermToString(ws_->db(), Term::Self()), "x");
  EXPECT_EQ(TermToString(ws_->db(),
                         Term::Constant({ws_->db().InternInteger(4)})),
            "{4}");
  EXPECT_EQ(TermToString(ws_->db(), Term::ClassExtent(music_groups_, {size_})),
            "music_groups.size");
}

TEST_F(PredicateDisplayTest, AtomAndPredicateToString) {
  Predicate p;
  Atom size_atom;
  size_atom.lhs = Term::Candidate({size_});
  size_atom.op = SetOp::kEqual;
  size_atom.rhs = Term::Constant({ws_->db().InternInteger(4)});
  Atom piano_atom;
  piano_atom.lhs = Term::Candidate({members_, plays_});
  piano_atom.op = SetOp::kSuperset;
  piano_atom.rhs = Term::Constant(
      {*ws_->db().FindEntity(*ws_->db().schema().FindClass("instruments"),
                             "piano")});
  p.AddAtom(size_atom, 0);
  p.AddAtom(piano_atom, 1);
  p.form = NormalForm::kConjunctive;
  EXPECT_EQ(AtomToString(ws_->db(), size_atom), "e.size = {4}");
  EXPECT_EQ(PredicateToString(ws_->db(), p),
            "(e.size = {4}) and (e.members.plays ]= {piano})");
  p.form = NormalForm::kDisjunctive;
  EXPECT_EQ(PredicateToString(ws_->db(), p),
            "(e.size = {4}) or (e.members.plays ]= {piano})");
}

TEST_F(PredicateDisplayTest, NegatedAtomToString) {
  Atom a;
  a.lhs = Term::Candidate({size_});
  a.op = SetOp::kLessEqual;
  a.negated = true;
  a.rhs = Term::Constant({ws_->db().InternInteger(3)});
  EXPECT_EQ(AtomToString(ws_->db(), a), "e.size not<= {3}");
}

TEST_F(PredicateDisplayTest, EmptyPredicateDisplay) {
  Predicate p;
  EXPECT_EQ(PredicateToString(ws_->db(), p), "(true)");
  p.form = NormalForm::kDisjunctive;
  EXPECT_EQ(PredicateToString(ws_->db(), p), "(false)");
}

TEST_F(PredicateDisplayTest, DerivationFactories) {
  AttributeDerivation assign =
      AttributeDerivation::Assign(Term::Self({members_}));
  EXPECT_EQ(assign.kind, AttributeDerivation::Kind::kAssignment);
  EXPECT_EQ(assign.assignment.origin, Operand::kSelf);
  Predicate p;
  p.AddAtom(Atom{}, 0);
  AttributeDerivation from_pred = AttributeDerivation::FromPredicate(p);
  EXPECT_EQ(from_pred.kind, AttributeDerivation::Kind::kPredicate);
  EXPECT_EQ(from_pred.predicate.atoms.size(), 1u);
}

}  // namespace
}  // namespace isis::query
