/// \file grouping_index_test.cpp
/// \brief Tests for grouping-accelerated predicate evaluation: groupings
/// double as inverted indexes (value -> owners), and single-atom selection
/// predicates over a grouped attribute must answer identically through the
/// fast path and the scan.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/instrumental_music.h"
#include "datasets/scaled_music.h"
#include "query/eval.h"

namespace isis::query {
namespace {

using sdm::EntitySet;
using sdm::Schema;

class GroupingIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = datasets::BuildInstrumentalMusic();
    db_ = &ws_->db();
    const Schema& s = db_->schema();
    musicians_ = *s.FindClass("musicians");
    instruments_ = *s.FindClass("instruments");
    families_ = *s.FindClass("families");
    family_ = *s.FindAttribute(instruments_, "family");
    plays_ = *s.FindAttribute(musicians_, "plays");
  }

  /// Evaluates three ways — the planner (the default), the grouping fast
  /// path alone (planner off), and the naive scan — and asserts all agree.
  EntitySet BothWays(const Predicate& p, ClassId v) {
    Evaluator planned(*db_);
    Evaluator grouped(*db_);
    grouped.set_use_planner(false);
    Evaluator naive(*db_);
    naive.set_use_planner(false);
    naive.set_use_grouping_index(false);
    EntitySet scan = naive.EvaluateSubclass(p, v);
    EXPECT_EQ(planned.EvaluateSubclass(p, v), scan);
    EXPECT_EQ(grouped.EvaluateSubclass(p, v), scan);
    return scan;
  }

  Predicate OneAtom(Atom a) {
    Predicate p;
    p.AddAtom(std::move(a), 0);
    return p;
  }
  EntityId E(ClassId cls, const char* name) {
    return *db_->FindEntity(cls, name);
  }

  std::unique_ptr<Workspace> ws_;
  sdm::Database* db_ = nullptr;
  ClassId musicians_, instruments_, families_;
  AttributeId family_, plays_;
};

TEST_F(GroupingIndexTest, EqualityOnGroupedSinglevaluedAttribute) {
  // by_family indexes family: `e.family = {percussion}`.
  Atom a;
  a.lhs = Term::Candidate({family_});
  a.op = SetOp::kEqual;
  a.rhs = Term::Constant({E(families_, "percussion")});
  EntitySet answer = BothWays(OneAtom(a), instruments_);
  EXPECT_EQ(answer.size(), 3u);  // drums, cymbals, timpani
}

TEST_F(GroupingIndexTest, WeakMatchUnionsBlocks) {
  Atom a;
  a.lhs = Term::Candidate({family_});
  a.op = SetOp::kWeakMatch;
  a.rhs = Term::Constant(
      {E(families_, "percussion"), E(families_, "keyboard")});
  EntitySet answer = BothWays(OneAtom(a), instruments_);
  EXPECT_EQ(answer.size(), 5u);  // 3 percussion + piano + organ
}

TEST_F(GroupingIndexTest, SupersetIntersectsBlocks) {
  // by_instrument indexes plays (multivalued): musicians who play BOTH
  // viola and violin.
  Atom a;
  a.lhs = Term::Candidate({plays_});
  a.op = SetOp::kSuperset;
  a.rhs = Term::Constant(
      {E(instruments_, "viola"), E(instruments_, "violin")});
  EntitySet answer = BothWays(OneAtom(a), musicians_);
  ASSERT_EQ(answer.size(), 1u);
  EXPECT_EQ(db_->NameOf(*answer.begin()), "Edith");
}

TEST_F(GroupingIndexTest, SubclassCandidatesRestrictTheBlock) {
  // The grouping's parent (musicians) is an ancestor of soloists: the fast
  // path must restrict the block to the subclass members.
  ClassId soloists = *db_->schema().FindClass("soloists");
  Atom a;
  a.lhs = Term::Candidate({plays_});
  a.op = SetOp::kSuperset;
  a.rhs = Term::Constant({E(instruments_, "piano")});
  EntitySet answer = BothWays(OneAtom(a), soloists);
  ASSERT_EQ(answer.size(), 1u);  // Mark (Zack is not a soloist)
  EXPECT_EQ(db_->NameOf(*answer.begin()), "Mark");
}

TEST_F(GroupingIndexTest, UnqualifiedShapesFallBackToTheScan) {
  Evaluator eval(*db_);
  // Negated: must not use the index (and still be correct).
  Atom neg;
  neg.lhs = Term::Candidate({family_});
  neg.op = SetOp::kEqual;
  neg.negated = true;
  neg.rhs = Term::Constant({E(families_, "percussion")});
  EXPECT_EQ(BothWays(OneAtom(neg), instruments_).size(), 14u);
  // No grouping on the attribute (popular): scan.
  AttributeId popular =
      *db_->schema().FindAttribute(instruments_, "popular");
  Atom pop;
  pop.lhs = Term::Candidate({popular});
  pop.op = SetOp::kEqual;
  pop.rhs = Term::Constant({db_->InternBoolean(true)});
  EXPECT_EQ(BothWays(OneAtom(pop), instruments_).size(), 8u);
  // Two-step map: scan.
  Atom path;
  path.lhs = Term::Candidate({plays_, family_});
  path.op = SetOp::kWeakMatch;
  path.rhs = Term::Constant({E(families_, "stringed")});
  EXPECT_EQ(BothWays(OneAtom(path), musicians_).size(), 4u);
  // Multi-clause predicates: scan.
  Predicate multi;
  multi.AddAtom(pop, 0);
  multi.AddAtom(path, 0);
  BothWays(multi, instruments_);
}

TEST_F(GroupingIndexTest, EqualityOnMultivaluedFallsBack) {
  // kEqual on a multivalued attribute is exact-set equality; the index
  // cannot answer it, so the fast path must decline (and the scan answer
  // must hold: nobody's plays-set equals exactly {viola}).
  Atom a;
  a.lhs = Term::Candidate({plays_});
  a.op = SetOp::kEqual;
  a.rhs = Term::Constant({E(instruments_, "viola")});
  EXPECT_TRUE(BothWays(OneAtom(a), musicians_).empty());
}

TEST_F(GroupingIndexTest, IndexTracksMutations) {
  Atom a;
  a.lhs = Term::Candidate({family_});
  a.op = SetOp::kEqual;
  a.rhs = Term::Constant({E(families_, "percussion")});
  Predicate p = OneAtom(a);
  EXPECT_EQ(BothWays(p, instruments_).size(), 3u);
  // Move the flute into percussion; both paths must see it immediately.
  ASSERT_TRUE(db_->SetSingle(E(instruments_, "flute"), family_,
                             E(families_, "percussion"))
                  .ok());
  EXPECT_EQ(BothWays(p, instruments_).size(), 4u);
}

TEST_F(GroupingIndexTest, RandomizedAgreementOnScaledData) {
  auto ws = datasets::BuildScaledMusic(8);
  datasets::ScaledMusicHandles h = datasets::ResolveScaledMusic(*ws);
  Rng rng(17);
  std::vector<EntityId> fams(ws->db().Members(h.families).begin(),
                             ws->db().Members(h.families).end());
  for (int trial = 0; trial < 40; ++trial) {
    Atom a;
    a.lhs = Term::Candidate({h.family});
    a.op = rng.Chance(0.5) ? SetOp::kEqual : SetOp::kWeakMatch;
    EntitySet constants{fams[rng.Below(fams.size())]};
    if (a.op == SetOp::kWeakMatch && rng.Chance(0.5)) {
      constants.insert(fams[rng.Below(fams.size())]);
    }
    a.rhs = Term::Constant(constants);
    Predicate p;
    p.AddAtom(a, 0);
    Evaluator with(ws->db());
    Evaluator without(ws->db());
    without.set_use_grouping_index(false);
    without.set_use_planner(false);
    EXPECT_EQ(with.EvaluateSubclass(p, h.instruments),
              without.EvaluateSubclass(p, h.instruments))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace isis::query
