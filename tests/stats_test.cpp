/// \file stats_test.cpp
/// \brief Tests for database statistics and schema-design advisories (§5:
/// "assist users in the process of designing their schemas").

#include <gtest/gtest.h>

#include <algorithm>

#include "datasets/instrumental_music.h"
#include "sdm/stats.h"
#include "ui/controller.h"

namespace isis::sdm {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = datasets::BuildInstrumentalMusic();
    db_ = &ws_->db();
  }

  const AttributeStats* FindAttr(const DatabaseStats& stats,
                                 const std::string& name) {
    for (const AttributeStats& as : stats.per_attribute) {
      if (as.name == name) return &as;
    }
    return nullptr;
  }

  std::unique_ptr<query::Workspace> ws_;
  Database* db_ = nullptr;
};

TEST_F(StatsTest, HeadlineCounts) {
  DatabaseStats stats = ComputeStats(*db_);
  // 4 baseclasses + play_strings + soloists.
  EXPECT_EQ(stats.classes, 6u);
  // plays, union, family, popular, members, size, includes, in_group.
  EXPECT_EQ(stats.attributes, 8u);
  EXPECT_EQ(stats.groupings, 4u);
  // 5 families + 17 instruments + 11 musicians + 5 groups.
  EXPECT_EQ(stats.entities, 38u);
}

TEST_F(StatsTest, AttributeFillAndDistinct) {
  DatabaseStats stats = ComputeStats(*db_);
  const AttributeStats* family = FindAttr(stats, "instruments.family");
  ASSERT_NE(family, nullptr);
  EXPECT_EQ(family->owner_members, 17u);
  EXPECT_EQ(family->assigned, 17u);
  EXPECT_DOUBLE_EQ(family->fill_ratio(), 1.0);
  EXPECT_EQ(family->distinct_values, 5u);
  EXPECT_FALSE(family->multivalued);

  const AttributeStats* plays = FindAttr(stats, "musicians.plays");
  ASSERT_NE(plays, nullptr);
  EXPECT_TRUE(plays->multivalued);
  EXPECT_GT(plays->avg_set_size, 1.0);
}

TEST_F(StatsTest, GroupingShapes) {
  DatabaseStats stats = ComputeStats(*db_);
  bool found = false;
  for (const GroupingStats& gs : stats.per_grouping) {
    if (gs.name == "by_family") {
      found = true;
      EXPECT_EQ(gs.blocks, 5u);
      EXPECT_EQ(gs.covered_members, 17u);
      EXPECT_GE(gs.largest_block, 5u);  // stringed
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(StatsTest, PaperDatasetAdvisoriesAreExactlyTheRealSmells) {
  // In the paper's §4.1 data every string player happens to belong to some
  // music group, so in_group is YES across play_strings and by_in_group has
  // a single block — the advisor correctly flags exactly these two facts
  // and nothing else.
  DatabaseStats stats = ComputeStats(*db_);
  std::vector<std::string> advisories = DesignAdvisories(*db_, stats);
  ASSERT_EQ(advisories.size(), 2u)
      << (advisories.empty() ? "" : advisories[0]);
  EXPECT_NE(advisories[0].find("play_strings.in_group"), std::string::npos);
  EXPECT_NE(advisories[1].find("by_in_group' has a single block"),
            std::string::npos);
}

TEST_F(StatsTest, AdvisoriesFlagDesignSmells) {
  // An empty class, a never-assigned attribute, and a one-block grouping.
  ClassId ghosts = *db_->CreateBaseclass("ghosts", "name");
  AttributeId mood = *db_->CreateAttribute(ghosts, "mood",
                                           Schema::kStrings(), false);
  (void)mood;
  ClassId instruments = *db_->schema().FindClass("instruments");
  AttributeId unused = *db_->CreateAttribute(instruments, "unused_attr",
                                             Schema::kStrings(), false);
  (void)unused;
  // Grouping on `union` where everyone has the same value.
  ClassId musicians = *db_->schema().FindClass("musicians");
  AttributeId union_attr = *db_->schema().FindAttribute(musicians, "union");
  for (EntityId e : db_->Members(musicians)) {
    ASSERT_TRUE(db_->SetSingle(e, union_attr, db_->InternBoolean(true)).ok());
  }
  DatabaseStats stats = ComputeStats(*db_);
  std::vector<std::string> advisories = DesignAdvisories(*db_, stats);
  auto contains = [&](const std::string& needle) {
    return std::any_of(advisories.begin(), advisories.end(),
                       [&](const std::string& a) {
                         return a.find(needle) != std::string::npos;
                       });
  };
  EXPECT_TRUE(contains("class 'ghosts' has no members"));
  EXPECT_TRUE(contains("'instruments.unused_attr' is never assigned"));
  EXPECT_TRUE(contains("work_status' has a single block"));
  EXPECT_TRUE(contains("same value for every member"));
}

TEST_F(StatsTest, SubclassEqualToParentFlagged) {
  ClassId musicians = *db_->schema().FindClass("musicians");
  ClassId all = *db_->CreateSubclass("everyone", musicians,
                                     Membership::kEnumerated);
  for (EntityId e : db_->Members(musicians)) {
    ASSERT_TRUE(db_->AddToClass(e, all).ok());
  }
  std::vector<std::string> advisories =
      DesignAdvisories(*db_, ComputeStats(*db_));
  bool flagged = std::any_of(
      advisories.begin(), advisories.end(), [](const std::string& a) {
        return a.find("'everyone' currently equals its parent") !=
               std::string::npos;
      });
  EXPECT_TRUE(flagged);
}

TEST_F(StatsTest, ReportRenders) {
  std::string report = RenderStatsReport(ComputeStats(*db_));
  EXPECT_NE(report.find("classes: 6"), std::string::npos);
  EXPECT_NE(report.find("class musicians: 11 member(s)"), std::string::npos);
  EXPECT_NE(report.find("grouping by_family: 5 block(s)"), std::string::npos);
  EXPECT_NE(report.find("attr instruments.family: 17/17 assigned (100%)"),
            std::string::npos);
}

TEST(StatsUiTest, StatisticsCommand) {
  ui::SessionController session(datasets::BuildInstrumentalMusic());
  ASSERT_TRUE(session.RunScript("cmd statistics\n").ok());
  EXPECT_NE(session.message().find("6 class(es)"), std::string::npos);
  EXPECT_NE(session.message().find("2 advisories"), std::string::npos);
  // Introduce another smell and re-run: it joins the summary line.
  ASSERT_TRUE(session.RunScript("pick class:music_groups\n"
                                "cmd create subclass\n"
                                "type empty_sub\n"
                                "cmd statistics\n")
                  .ok());
  EXPECT_NE(session.message().find("3 advisories"), std::string::npos);
  EXPECT_NE(session.message().find("empty_sub"), std::string::npos);
}

}  // namespace
}  // namespace isis::sdm
