/// \file constraints_test.cpp
/// \brief Tests for the integrity-constraint subsystem (the paper's §5
/// future work): definition, checking, enforcement, the manager/salary
/// challenge, UI flow and store round-trip.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "query/workspace.h"
#include "store/serializer.h"
#include "ui/controller.h"

namespace isis::query {
namespace {

using sdm::EntitySet;
using sdm::Schema;

class ConstraintsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = &ws_.db();
    employees_ = *db_->CreateBaseclass("employees", "name");
    salary_ = *db_->CreateAttribute(employees_, "salary",
                                    Schema::kIntegers(), false);
    manager_ =
        *db_->CreateAttribute(employees_, "manager", employees_, false);
    grace_ = *db_->CreateEntity(employees_, "Grace");
    hank_ = *db_->CreateEntity(employees_, "Hank");
    ASSERT_TRUE(db_->SetSingle(grace_, salary_, db_->InternInteger(180)).ok());
    ASSERT_TRUE(db_->SetSingle(hank_, salary_, db_->InternInteger(120)).ok());
    ASSERT_TRUE(db_->SetSingle(hank_, manager_, grace_).ok());
  }

  /// The paper's §5 challenge: NOT(e.salary > e.manager.salary).
  Predicate SalaryRule() {
    Predicate p;
    Atom a;
    a.lhs = Term::Candidate({salary_});
    a.op = SetOp::kGreater;
    a.negated = true;
    a.rhs = Term::Candidate({manager_, salary_});
    p.AddAtom(a, 0);
    return p;
  }

  Workspace ws_;
  sdm::Database* db_ = nullptr;
  ClassId employees_;
  AttributeId salary_, manager_;
  EntityId grace_, hank_;
};

TEST_F(ConstraintsTest, DefineCheckAndViolate) {
  ASSERT_TRUE(
      ws_.DefineConstraint("salary_cap", employees_, SalaryRule()).ok());
  EXPECT_EQ(ws_.constraints().size(), 1u);
  EXPECT_TRUE(ws_.CheckConstraints().empty());
  EXPECT_TRUE(ws_.EnforceConstraints().ok());
  // A raise breaks the rule; the check names the violator.
  ASSERT_TRUE(db_->SetSingle(hank_, salary_, db_->InternInteger(200)).ok());
  std::vector<ConstraintViolation> v = ws_.CheckConstraints();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].constraint, "salary_cap");
  EXPECT_EQ(v[0].violators, EntitySet{hank_});
  Status st = ws_.EnforceConstraints();
  EXPECT_TRUE(st.IsConsistency());
  EXPECT_NE(st.message().find("salary_cap"), std::string::npos);
  EXPECT_NE(st.message().find("Hank"), std::string::npos);
}

TEST_F(ConstraintsTest, TopOfHierarchyIsExempt) {
  // Grace has no manager: the ordering atom over the empty map is false,
  // its negation true — the natural reading of the constraint.
  ASSERT_TRUE(
      ws_.DefineConstraint("salary_cap", employees_, SalaryRule()).ok());
  ASSERT_TRUE(db_->SetSingle(grace_, salary_, db_->InternInteger(9999)).ok());
  EXPECT_TRUE(ws_.CheckConstraints().empty());
}

TEST_F(ConstraintsTest, DefinitionRules) {
  // Duplicate names rejected.
  ASSERT_TRUE(ws_.DefineConstraint("c", employees_, SalaryRule()).ok());
  EXPECT_TRUE(
      ws_.DefineConstraint("c", employees_, SalaryRule()).IsAlreadyExists());
  // Bad names and bad classes rejected.
  EXPECT_TRUE(ws_.DefineConstraint("", employees_, SalaryRule())
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ws_.DefineConstraint("x", ClassId(999), SalaryRule()).IsNotFound());
  // Ill-typed predicates rejected.
  Predicate bad;
  Atom a;
  a.lhs = Term::Candidate({salary_});
  a.op = SetOp::kEqual;
  a.rhs = Term::Candidate({manager_});  // INTEGER vs employees tree
  bad.AddAtom(a, 0);
  EXPECT_TRUE(ws_.DefineConstraint("y", employees_, bad).IsTypeError());
  // Self terms are not legal in constraints.
  Predicate self_pred;
  Atom s;
  s.lhs = Term::Candidate({salary_});
  s.op = SetOp::kEqual;
  s.rhs = Term::Self({salary_});
  self_pred.AddAtom(s, 0);
  EXPECT_TRUE(
      ws_.DefineConstraint("z", employees_, self_pred).IsTypeError());
}

TEST_F(ConstraintsTest, DropAndLookup) {
  ASSERT_TRUE(ws_.DefineConstraint("c1", employees_, SalaryRule()).ok());
  ASSERT_TRUE(ws_.DefineConstraint("c2", employees_, SalaryRule()).ok());
  ASSERT_EQ(ws_.constraints().All().size(), 2u);
  EXPECT_EQ(ws_.constraints().All()[0]->name, "c1");  // definition order
  ASSERT_TRUE(ws_.DropConstraint("c1").ok());
  EXPECT_FALSE(ws_.constraints().Has("c1"));
  EXPECT_TRUE(ws_.DropConstraint("c1").IsNotFound());
  EXPECT_NE(ws_.constraints().Find("c2"), nullptr);
}

TEST_F(ConstraintsTest, GuardsAttributeDeletion) {
  ASSERT_TRUE(
      ws_.DefineConstraint("salary_cap", employees_, SalaryRule()).ok());
  EXPECT_TRUE(ws_.AttributeReferencedByQueries(salary_));
  EXPECT_TRUE(ws_.DeleteAttribute(salary_).IsConsistency());
  ASSERT_TRUE(ws_.DropConstraint("salary_cap").ok());
  EXPECT_FALSE(ws_.AttributeReferencedByQueries(salary_));
}

TEST_F(ConstraintsTest, EntityDeletionScrubsConstants) {
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({manager_});
  a.op = SetOp::kWeakMatch;
  a.negated = true;
  a.rhs = Term::Constant({hank_});  // nobody may report to Hank
  p.AddAtom(a, 0);
  ASSERT_TRUE(ws_.DefineConstraint("not_under_hank", employees_, p).ok());
  ASSERT_TRUE(ws_.DeleteEntity(hank_).ok());
  const Constraint* c = ws_.constraints().Find("not_under_hank");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->predicate.atoms[0].rhs.constants.empty());
  EXPECT_TRUE(ws_.EnforceConstraints().ok());
}

TEST_F(ConstraintsTest, StoreRoundTrip) {
  ASSERT_TRUE(
      ws_.DefineConstraint("salary_cap", employees_, SalaryRule()).ok());
  std::string blob = store::Save(ws_);
  auto loaded = store::Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->constraints().size(), 1u);
  const Constraint* c = (*loaded)->constraints().Find("salary_cap");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->cls, employees_);
  EXPECT_TRUE((*loaded)->EnforceConstraints().ok());
  EXPECT_EQ(store::Save(**loaded), blob);
}

TEST_F(ConstraintsTest, MultipleConstraintsReportIndependently) {
  ASSERT_TRUE(
      ws_.DefineConstraint("salary_cap", employees_, SalaryRule()).ok());
  Predicate min_pay;
  Atom a;
  a.lhs = Term::Candidate({salary_});
  a.op = SetOp::kGreater;
  a.rhs = Term::Constant({db_->InternInteger(50)});
  min_pay.AddAtom(a, 0);
  ASSERT_TRUE(ws_.DefineConstraint("min_pay", employees_, min_pay).ok());
  // Violate only min_pay.
  EntityId intern = *db_->CreateEntity(employees_, "Ida");
  ASSERT_TRUE(db_->SetSingle(intern, salary_, db_->InternInteger(10)).ok());
  std::vector<ConstraintViolation> v = ws_.CheckConstraints();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].constraint, "min_pay");
  EXPECT_EQ(v[0].violators, EntitySet{intern});
}

class ConstraintUiTest : public ::testing::Test {
 protected:
  ConstraintUiTest() : session_(datasets::BuildInstrumentalMusic()) {}
  Status Run(const std::string& script) { return session_.RunScript(script); }
  ui::SessionController session_;
};

TEST_F(ConstraintUiTest, DefineOnTheWorksheetAndCheck) {
  // "every music group has at least 2 members": e.size > 1.
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd define constraint\n"
                  "type at_least_duo\n"
                  "pick atom:A\n"
                  "pick clause:1\n"
                  "cmd edit\n"
                  "pick attr:size\n"
                  "pick op:>\n"
                  "cmd rhs constant\n"
                  "cmd create constant\n"
                  "type 1\n"
                  "cmd accept constant\n"
                  "cmd commit\n")
                  .ok());
  EXPECT_EQ(session_.workspace().constraints().size(), 1u);
  EXPECT_NE(session_.message().find("it currently holds"),
            std::string::npos);
  ASSERT_TRUE(Run("cmd check constraints\n").ok());
  EXPECT_NE(session_.message().find("hold"), std::string::npos);
  // Break it: a one-member group.
  sdm::Database& db = session_.workspace().db();
  ClassId groups = *db.schema().FindClass("music_groups");
  EntityId solo_act = *db.CreateEntity(groups, "One Man Band");
  AttributeId size = *db.schema().FindAttribute(groups, "size");
  ASSERT_TRUE(db.SetSingle(solo_act, size, db.InternInteger(1)).ok());
  ASSERT_TRUE(Run("cmd check constraints\n").ok());
  EXPECT_NE(session_.message().find("at_least_duo"), std::string::npos);
  EXPECT_NE(session_.message().find("One Man Band"), std::string::npos);
  // Drop it.
  ASSERT_TRUE(Run("cmd drop constraint\ntype at_least_duo\n").ok());
  EXPECT_EQ(session_.workspace().constraints().size(), 0u);
  // Undo restores the constraint (snapshots cover the catalog).
  ASSERT_TRUE(Run("cmd undo\n").ok());
  EXPECT_EQ(session_.workspace().constraints().size(), 1u);
}

TEST_F(ConstraintUiTest, DefineRequiresClassSelection) {
  EXPECT_TRUE(Run("cmd define constraint\n").IsInvalidArgument());
}

TEST_F(ConstraintUiTest, CheckWithNoConstraints) {
  ASSERT_TRUE(Run("cmd check constraints\n").ok());
  EXPECT_NE(session_.message().find("no integrity constraints"),
            std::string::npos);
}

}  // namespace
}  // namespace isis::query
