/// \file map_test.cpp
/// \brief Tests for attribute-map evaluation (paper §2, "Map") on the
/// Instrumental_Music database.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "sdm/database.h"

namespace isis::sdm {
namespace {

class MapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = datasets::BuildInstrumentalMusic();
    db_ = &ws_->db();
    const Schema& s = db_->schema();
    musicians_ = *s.FindClass("musicians");
    instruments_ = *s.FindClass("instruments");
    music_groups_ = *s.FindClass("music_groups");
    families_ = *s.FindClass("families");
    plays_ = *s.FindAttribute(musicians_, "plays");
    family_ = *s.FindAttribute(instruments_, "family");
    members_ = *s.FindAttribute(music_groups_, "members");
  }

  EntityId E(ClassId cls, const char* name) {
    return *db_->FindEntity(cls, name);
  }
  std::string Names(const EntitySet& set) {
    std::string out;
    for (EntityId e : set) {
      if (!out.empty()) out += " ";
      out += db_->NameOf(e);
    }
    return out;
  }

  std::unique_ptr<query::Workspace> ws_;
  sdm::Database* db_ = nullptr;
  ClassId musicians_, instruments_, music_groups_, families_;
  AttributeId plays_, family_, members_;
};

TEST_F(MapTest, SingleStepMultivalued) {
  AttributeId path[] = {plays_};
  EXPECT_EQ(Names(db_->EvaluateMap(E(musicians_, "Edith"), path)),
            "violin viola");
}

TEST_F(MapTest, TwoStepComposition) {
  // Edith.plays.family: viola and violin are both stringed.
  AttributeId path[] = {plays_, family_};
  EXPECT_EQ(Names(db_->EvaluateMap(E(musicians_, "Edith"), path)),
            "stringed");
}

TEST_F(MapTest, ThreeStepUnionSemantics) {
  // LaBelle Quartet.members.plays: union of four musicians' instruments.
  AttributeId path[] = {members_, plays_};
  EntitySet insts =
      db_->EvaluateMap(E(music_groups_, "LaBelle Quartet"), path);
  EXPECT_EQ(insts.size(), 6u);  // violin viola cello harp piano organ
  EXPECT_TRUE(insts.count(E(instruments_, "piano")) > 0);
  EXPECT_FALSE(insts.count(E(instruments_, "tuba")) > 0);
}

TEST_F(MapTest, MapOverSetUnionsImages) {
  AttributeId path[] = {family_};
  EntitySet start = {E(instruments_, "violin"), E(instruments_, "tuba")};
  EXPECT_EQ(Names(db_->EvaluateMap(start, path)), "stringed brass");
}

TEST_F(MapTest, IdentityMap) {
  // "For n = 0 we have the identity map."
  EntityId edith = E(musicians_, "Edith");
  EXPECT_EQ(db_->EvaluateMap(edith, {}), EntitySet{edith});
}

TEST_F(MapTest, NullAndNonMembersDropOut) {
  // A musician entity cannot follow `family` (an instruments attribute):
  // the frontier drops non-members, yielding the empty set.
  AttributeId path[] = {family_};
  EXPECT_TRUE(db_->EvaluateMap(E(musicians_, "Edith"), path).empty());
  // The null entity never enters a map image.
  EXPECT_TRUE(db_->EvaluateMap(kNullEntity, {}).empty());
}

TEST_F(MapTest, MapThroughNamingAttribute) {
  AttributeId naming = db_->schema().GetClass(musicians_).own_attributes[0];
  AttributeId path[] = {naming};
  EntitySet names = db_->EvaluateMap(E(musicians_, "Edith"), path);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(db_->NameOf(*names.begin()), "Edith");
  EXPECT_EQ(db_->GetEntity(*names.begin()).baseclass, Schema::kStrings());
}

TEST_F(MapTest, TerminalClassWalksTheNetwork) {
  AttributeId path[] = {members_, plays_, family_};
  EXPECT_EQ(*db_->MapTerminalClass(music_groups_, path), families_);
  // A step not visible on the reached class is a type error.
  AttributeId bad[] = {plays_, plays_};
  EXPECT_TRUE(db_->MapTerminalClass(musicians_, bad).status().IsTypeError());
}

TEST_F(MapTest, SubclassInheritsMapSteps) {
  // soloists inherit plays from musicians; the map works unchanged.
  ClassId soloists = *db_->schema().FindClass("soloists");
  AttributeId path[] = {plays_, family_};
  EXPECT_EQ(*db_->MapTerminalClass(soloists, path), families_);
  EntitySet fams = db_->EvaluateMap(db_->Members(soloists), path);
  EXPECT_GE(fams.size(), 2u);
}

TEST_F(MapTest, SelfReferentialMapTerminates) {
  // A class with an attribute into itself (manager-style) evaluates maps of
  // any finite length without cycling.
  Database db;
  ClassId emp = *db.CreateBaseclass("emp", "name");
  AttributeId boss = *db.CreateAttribute(emp, "boss", emp, false);
  EntityId a = *db.CreateEntity(emp, "a");
  EntityId b = *db.CreateEntity(emp, "b");
  ASSERT_TRUE(db.SetSingle(a, boss, b).ok());
  ASSERT_TRUE(db.SetSingle(b, boss, a).ok());  // a cycle in the data
  std::vector<AttributeId> path(101, boss);
  EntitySet out = db.EvaluateMap(a, path);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.begin(), b);  // odd number of steps lands on b
}

}  // namespace
}  // namespace isis::sdm
