/// \file multiple_inheritance_test.cpp
/// \brief Tests for the paper's announced extension (§2 Remark, §5): "the
/// system is currently being extended to handle multiple parent
/// inheritance". Implemented behind Schema::Options::allow_multiple_parents.

#include <gtest/gtest.h>

#include "query/eval.h"
#include "query/workspace.h"
#include "sdm/consistency.h"
#include "store/serializer.h"

namespace isis::query {
namespace {

using sdm::EntitySet;
using sdm::Membership;
using sdm::Schema;

class MultipleInheritanceTest : public ::testing::Test {
 protected:
  MultipleInheritanceTest() : ws_(MakeOptions()) {}

  static sdm::Database::Options MakeOptions() {
    sdm::Database::Options o;
    o.schema.allow_multiple_parents = true;
    return o;
  }

  void SetUp() override {
    sdm::Database& db = ws_.db();
    people_ = *db.CreateBaseclass("people", "name");
    salary_ =
        *db.CreateAttribute(people_, "salary", Schema::kIntegers(), false);
    // Two sibling subclasses with their own attributes.
    students_ =
        *db.CreateSubclass("students", people_, Membership::kEnumerated);
    gpa_ = *db.CreateAttribute(students_, "gpa", Schema::kReals(), false);
    employees_ =
        *db.CreateSubclass("employees", people_, Membership::kEnumerated);
    hours_ =
        *db.CreateAttribute(employees_, "hours", Schema::kIntegers(), false);
    // The diamond: working students under both.
    working_students_ = *db.CreateSubclass("working_students", students_,
                                           Membership::kEnumerated);
    ASSERT_TRUE(db.AddParent(working_students_, employees_).ok());

    ann_ = *db.CreateEntity(people_, "ann");
    bo_ = *db.CreateEntity(people_, "bo");
  }

  Workspace ws_;
  ClassId people_, students_, employees_, working_students_;
  AttributeId salary_, gpa_, hours_;
  EntityId ann_, bo_;
};

TEST_F(MultipleInheritanceTest, AttributesInheritFromAllParents) {
  const Schema& s = ws_.db().schema();
  std::vector<AttributeId> attrs = s.AllAttributesOf(working_students_);
  // name, salary (from people via either path, once), gpa, hours.
  ASSERT_EQ(attrs.size(), 4u);
  EXPECT_TRUE(s.AttributeVisibleOn(working_students_, gpa_));
  EXPECT_TRUE(s.AttributeVisibleOn(working_students_, hours_));
  EXPECT_TRUE(s.AttributeVisibleOn(working_students_, salary_));
  // The diamond top contributes its attribute exactly once.
  int salary_count = 0;
  for (AttributeId a : attrs) {
    if (a == salary_) ++salary_count;
  }
  EXPECT_EQ(salary_count, 1);
}

TEST_F(MultipleInheritanceTest, MembershipPropagatesToAllParents) {
  ASSERT_TRUE(ws_.db().AddToClass(ann_, working_students_).ok());
  EXPECT_TRUE(ws_.db().IsMember(ann_, students_));
  EXPECT_TRUE(ws_.db().IsMember(ann_, employees_));
  EXPECT_TRUE(ws_.db().IsMember(ann_, people_));
  EXPECT_TRUE(sdm::ConsistencyChecker(ws_.db()).Check().ok());
  // Both parents' attributes are assignable.
  EXPECT_TRUE(
      ws_.db().SetSingle(ann_, gpa_, ws_.db().InternReal(3.5)).ok());
  EXPECT_TRUE(
      ws_.db().SetSingle(ann_, hours_, ws_.db().InternInteger(20)).ok());
}

TEST_F(MultipleInheritanceTest, RemovalFromOneParentCascades) {
  ASSERT_TRUE(ws_.db().AddToClass(ann_, working_students_).ok());
  ASSERT_TRUE(ws_.db().RemoveFromClass(ann_, students_).ok());
  EXPECT_FALSE(ws_.db().IsMember(ann_, working_students_));
  // Membership of the other parent survives (subset rule intact).
  EXPECT_TRUE(ws_.db().IsMember(ann_, employees_));
  EXPECT_TRUE(sdm::ConsistencyChecker(ws_.db()).Check().ok());
}

TEST_F(MultipleInheritanceTest, AddParentRejectsCyclesAndCrossTrees) {
  const Schema& s = ws_.db().schema();
  (void)s;
  EXPECT_TRUE(
      ws_.db().AddParent(students_, working_students_).IsConsistency());
  EXPECT_TRUE(ws_.db().AddParent(students_, students_).IsConsistency());
  ClassId pets = *ws_.db().CreateBaseclass("pets", "name");
  ClassId cats = *ws_.db().CreateSubclass("cats", pets,
                                          Membership::kEnumerated);
  EXPECT_TRUE(ws_.db().AddParent(cats, people_).IsConsistency());
  EXPECT_TRUE(ws_.db().AddParent(people_, pets).IsConsistency());
}

TEST_F(MultipleInheritanceTest, AddParentRejectsAttributeConflicts) {
  // Another subclass defining `gpa` cannot also become a parent of a class
  // that already inherits `gpa` from students.
  ClassId interns =
      *ws_.db().CreateSubclass("interns", people_, Membership::kEnumerated);
  ASSERT_TRUE(
      ws_.db().CreateAttribute(interns, "gpa", Schema::kReals(), false).ok());
  EXPECT_TRUE(ws_.db().AddParent(working_students_, interns).IsConsistency());
}

TEST_F(MultipleInheritanceTest, AddParentBackfillsExistingMembers) {
  ClassId interns =
      *ws_.db().CreateSubclass("interns", people_, Membership::kEnumerated);
  ASSERT_TRUE(ws_.db().AddToClass(bo_, working_students_).ok());
  ASSERT_TRUE(ws_.db().AddParent(working_students_, interns).ok());
  // Subset consistency was repaired for the pre-existing member.
  EXPECT_TRUE(ws_.db().IsMember(bo_, interns));
  EXPECT_TRUE(sdm::ConsistencyChecker(ws_.db()).Check().ok());
}

TEST_F(MultipleInheritanceTest, DerivedClassCandidatesAreTheIntersection) {
  ASSERT_TRUE(ws_.db().AddToClass(ann_, students_).ok());
  ASSERT_TRUE(ws_.db().AddToClass(ann_, employees_).ok());
  ASSERT_TRUE(ws_.db().AddToClass(bo_, students_).ok());  // student only
  ASSERT_TRUE(
      ws_.db().SetSingle(ann_, salary_, ws_.db().InternInteger(10)).ok());
  ASSERT_TRUE(
      ws_.db().SetSingle(bo_, salary_, ws_.db().InternInteger(10)).ok());
  ClassId paid = *ws_.db().CreateSubclass("paid_ws", students_,
                                          Membership::kEnumerated);
  ASSERT_TRUE(ws_.db().AddParent(paid, employees_).ok());
  Predicate p;
  Atom a;
  a.lhs = Term::Candidate({salary_});
  a.op = SetOp::kGreater;
  a.rhs = Term::Constant({ws_.db().InternInteger(5)});
  p.AddAtom(a, 0);
  ASSERT_TRUE(ws_.DefineSubclassMembership(paid, p).ok());
  // bo satisfies the predicate but is not in both parents.
  EXPECT_TRUE(ws_.db().IsMember(ann_, paid));
  EXPECT_FALSE(ws_.db().IsMember(bo_, paid));
}

TEST_F(MultipleInheritanceTest, MultiParentSchemaRoundTripsThroughStore) {
  ASSERT_TRUE(ws_.db().AddToClass(ann_, working_students_).ok());
  std::string blob = store::Save(ws_);
  auto loaded = store::Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Schema& s = (*loaded)->db().schema();
  EXPECT_EQ(s.GetClass(working_students_).parents.size(), 2u);
  EXPECT_TRUE((*loaded)->db().IsMember(ann_, employees_));
  EXPECT_EQ(store::Save(**loaded), blob);
}

TEST_F(MultipleInheritanceTest, AncestorsDeduplicateTheDiamondTop) {
  std::vector<ClassId> anc = ws_.db().schema().AncestorsOf(working_students_);
  // students, employees, people — people once despite two paths.
  EXPECT_EQ(anc.size(), 3u);
}

}  // namespace
}  // namespace isis::query
