/// \file journal_test.cpp
/// \brief Tests for the design journal (§5: "keep track of the history of a
/// database design") and its controller integration.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "datasets/session_script.h"
#include "ui/controller.h"
#include "ui/journal.h"

namespace isis::ui {
namespace {

TEST(DesignJournalTest, RecordsWithMonotonicSequence) {
  DesignJournal j;
  EXPECT_TRUE(j.empty());
  EXPECT_EQ(j.Record("create subclass", "quartets"), 1);
  EXPECT_EQ(j.Record("commit", "membership of quartets"), 2);
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.entries()[0].action, "create subclass");
  EXPECT_EQ(j.entries()[1].seq, 2);
}

TEST(DesignJournalTest, RenderShowsLastN) {
  DesignJournal j;
  for (int i = 0; i < 5; ++i) {
    j.Record("action" + std::to_string(i), "d" + std::to_string(i));
  }
  std::string last2 = j.Render(2);
  EXPECT_EQ(last2, "#4 action3: d3\n#5 action4: d4");
  EXPECT_EQ(j.Render(100), j.Render(5));
  EXPECT_EQ(DesignJournal().Render(3), "");
}

TEST(DesignJournalTest, RenderOmitsEmptyDetail) {
  DesignJournal j;
  j.Record("undo", "");
  EXPECT_EQ(j.Render(1), "#1 undo");
}

TEST(DesignJournalTest, FindSearchesActionAndDetail) {
  DesignJournal j;
  j.Record("create subclass", "quartets");
  j.Record("(re)name", "quartets -> foursomes");
  j.Record("create entity", "piano");
  EXPECT_EQ(j.Find("quartets").size(), 2u);
  EXPECT_EQ(j.Find("create").size(), 2u);
  EXPECT_TRUE(j.Find("nothing").empty());
}

class JournalSessionTest : public ::testing::Test {
 protected:
  JournalSessionTest()
      : session_(datasets::BuildInstrumentalMusic()) {}
  Status Run(const std::string& script) { return session_.RunScript(script); }
  SessionController session_;
};

TEST_F(JournalSessionTest, BrowsingRecordsNothing) {
  ASSERT_TRUE(Run("pick class:musicians\n"
                  "cmd view associations\n"
                  "cmd pop\n"
                  "cmd view contents\n"
                  "pick member:Edith\n"
                  "cmd pop\n")
                  .ok());
  EXPECT_TRUE(session_.journal().empty());
}

TEST_F(JournalSessionTest, DesignActionsAreRecorded) {
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd create subclass\n"
                  "type quartets\n"
                  "cmd (re)name\n"
                  "type foursomes\n"
                  "cmd delete\n")
                  .ok());
  const DesignJournal& j = session_.journal();
  ASSERT_EQ(j.size(), 3u);
  EXPECT_EQ(j.entries()[0].action, "create subclass");
  EXPECT_EQ(j.entries()[0].detail, "quartets");
  EXPECT_EQ(j.entries()[1].action, "(re)name");
  EXPECT_EQ(j.entries()[2].action, "delete");
  EXPECT_NE(j.entries()[2].detail.find("foursomes"), std::string::npos);
}

TEST_F(JournalSessionTest, UndoIsRecordedNotErased) {
  // "The history is the history": undoing an action appends rather than
  // removing the record of the undone edit.
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd create subclass\n"
                  "type doomed\n"
                  "cmd undo\n")
                  .ok());
  const DesignJournal& j = session_.journal();
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.entries()[0].action, "create subclass");
  EXPECT_EQ(j.entries()[1].action, "undo");
  EXPECT_FALSE(
      session_.workspace().db().schema().FindClass("doomed").ok());
}

TEST_F(JournalSessionTest, ShowHistoryCommand) {
  ASSERT_TRUE(Run("cmd show history\n").ok());
  EXPECT_NE(session_.message().find("no design actions"), std::string::npos);
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd create subclass\n"
                  "type trios\n"
                  "cmd show history\n")
                  .ok());
  EXPECT_NE(session_.message().find("create subclass"), std::string::npos);
  EXPECT_NE(session_.message().find("trios"), std::string::npos);
}

TEST_F(JournalSessionTest, FullPaperSessionHistory) {
  for (const auto& fig : datasets::PaperSessionFigures()) {
    ASSERT_TRUE(Run(fig.script).ok()) << fig.name;
  }
  const DesignJournal& j = session_.journal();
  // The session's design actions, in order: the family correction, the
  // quartets subclass, its membership commit, the all_inst attribute, its
  // value class, its derivation commit, and edith_plays.
  ASSERT_GE(j.size(), 7u);
  EXPECT_EQ(j.entries()[0].action, "(re)assign att. value");
  EXPECT_FALSE(j.Find("quartets").empty());
  EXPECT_FALSE(j.Find("all_inst").empty());
  EXPECT_FALSE(j.Find("edith_plays").empty());
}

}  // namespace
}  // namespace isis::ui
