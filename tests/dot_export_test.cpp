/// \file dot_export_test.cpp
/// \brief Tests for the Graphviz export of the two schema graphs.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "sdm/dot_export.h"

namespace isis::sdm {
namespace {

class DotExportTest : public ::testing::Test {
 protected:
  DotExportTest() : ws_(datasets::BuildInstrumentalMusic()) {}
  const Schema& schema() { return ws_->db().schema(); }
  std::unique_ptr<query::Workspace> ws_;
};

TEST_F(DotExportTest, ForestHasInheritanceAndGroupingEdges) {
  std::string dot = ExportDot(schema(), DotGraph::kInheritanceForest);
  EXPECT_NE(dot.find("digraph isis {"), std::string::npos);
  // parent -> child with the empty arrowhead.
  EXPECT_NE(dot.find("\"musicians\" -> \"play_strings\" [arrowhead=empty]"),
            std::string::npos);
  EXPECT_NE(dot.find("\"musicians\" -> \"soloists\""), std::string::npos);
  // grouping attachment, dotted and labeled with its attribute.
  EXPECT_NE(dot.find("\"instruments\" -> \"by_family\" [style=dotted, "
                     "label=\"on family\"]"),
            std::string::npos);
  // No attribute arcs in the forest view.
  EXPECT_EQ(dot.find("label=\"plays\""), std::string::npos);
  // Predefined classes stay out when unreferenced.
  EXPECT_EQ(dot.find("\"INTEGER\""), std::string::npos);
}

TEST_F(DotExportTest, NetworkHasAttributeArcsWithArity) {
  std::string dot = ExportDot(schema(), DotGraph::kSemanticNetwork);
  // Multivalued: bold double line.
  EXPECT_NE(dot.find("\"musicians\" -> \"instruments\" [label=\"plays\", "
                     "color=\"black:black\", style=bold]"),
            std::string::npos);
  // Singlevalued: plain.
  EXPECT_NE(dot.find("\"instruments\" -> \"families\" [label=\"family\", "
                     "color=\"black\"]"),
            std::string::npos);
  // Referenced predefined classes appear.
  EXPECT_NE(dot.find("\"INTEGER\""), std::string::npos);  // size
  EXPECT_NE(dot.find("\"YES/NO\""), std::string::npos);   // union, popular
  // No inheritance edges here.
  EXPECT_EQ(dot.find("arrowhead=empty"), std::string::npos);
}

TEST_F(DotExportTest, NodesCarryTheirRoles) {
  std::string dot = ExportDot(schema(), DotGraph::kBoth);
  // Baseclasses filled, derived subclasses rounded, groupings dashed.
  EXPECT_NE(dot.find("\"musicians\" [style=\"filled\""), std::string::npos);
  EXPECT_NE(dot.find("\"play_strings\" [style=\"rounded\""),
            std::string::npos);
  EXPECT_NE(dot.find("\"by_family\" [style=\"dashed\"]"), std::string::npos);
  // Overlay mode colors attribute arcs blue.
  EXPECT_NE(dot.find("color=\"blue:blue\""), std::string::npos);
  EXPECT_NE(dot.find("arrowhead=empty"), std::string::npos);
}

TEST_F(DotExportTest, AttributeIntoGroupingTargetsTheGroupingNode) {
  sdm::Database& db = ws_->db();
  ClassId venues = *db.CreateBaseclass("venues", "name");
  GroupingId by_family = *db.schema().FindGrouping("by_family");
  ASSERT_TRUE(
      db.CreateAttributeIntoGrouping(venues, "sections", by_family).ok());
  std::string dot = ExportDot(db.schema(), DotGraph::kSemanticNetwork);
  EXPECT_NE(dot.find("\"venues\" -> \"by_family\" [label=\"sections\""),
            std::string::npos);
}

TEST_F(DotExportTest, NamesWithQuotesAreEscaped) {
  sdm::Database& db = ws_->db();
  ASSERT_TRUE(db.CreateBaseclass("odd \"name\"", "name").ok());
  std::string dot = ExportDot(db.schema(), DotGraph::kBoth);
  EXPECT_NE(dot.find("\"odd \\\"name\\\"\""), std::string::npos);
}

TEST_F(DotExportTest, OutputIsDeterministic) {
  EXPECT_EQ(ExportDot(schema(), DotGraph::kBoth),
            ExportDot(schema(), DotGraph::kBoth));
}

}  // namespace
}  // namespace isis::sdm
