/// \file status_test.cpp
/// \brief Unit tests for Status / Result and their propagation macros.

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace isis {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::NotFound("no class named 'x'");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "no class named 'x'");
  EXPECT_EQ(st.ToString(), "NotFound: no class named 'x'");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("m").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("m").IsAlreadyExists());
  EXPECT_TRUE(Status::Consistency("m").IsConsistency());
  EXPECT_TRUE(Status::TypeError("m").IsTypeError());
  EXPECT_TRUE(Status::IOError("m").IsIOError());
  EXPECT_TRUE(Status::ParseError("m").IsParseError());
  EXPECT_TRUE(Status::Unimplemented("m").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("m").IsInternal());
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status st = Status::Consistency("subset rule");
  Status copy = st;
  EXPECT_TRUE(copy.IsConsistency());
  EXPECT_EQ(copy.message(), "subset rule");
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsConsistency());
  Status assigned;
  assigned = copy;
  EXPECT_EQ(assigned.message(), "subset rule");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kConsistency), "Consistency");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

Status FailsWhenNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int v) {
  ISIS_RETURN_NOT_OK(FailsWhenNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_TRUE(Propagates(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_EQ(ok.ValueOrDie(), 7);
  EXPECT_TRUE(ok.status().ok());

  Result<int> bad = ParsePositive(-2);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(bad.ValueOr(42), 42);
  EXPECT_EQ(ok.ValueOr(42), 7);
}

Status UsesAssign(int v, int* out) {
  ISIS_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UsesAssign(5, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UsesAssign(-5, &out).IsInvalidArgument());
  EXPECT_EQ(out, 5);  // untouched on failure
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 3);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("isis"));
  EXPECT_EQ(r->size(), 4u);
}

}  // namespace
}  // namespace isis
