/// \file parser_test.cpp
/// \brief Tests for the textual predicate syntax: round-trips with the
/// worksheet's display form, resolution rules, normal forms, and errors.

#include <gtest/gtest.h>

#include "datasets/instrumental_music.h"
#include "query/eval.h"
#include "query/parser.h"

namespace isis::query {
namespace {

using sdm::EntitySet;
using sdm::Schema;

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ws_ = datasets::BuildInstrumentalMusic();
    db_ = &ws_->db();
    const Schema& s = db_->schema();
    musicians_ = *s.FindClass("musicians");
    instruments_ = *s.FindClass("instruments");
    music_groups_ = *s.FindClass("music_groups");
    families_ = *s.FindClass("families");
  }

  Result<Predicate> Parse(ClassId v, const std::string& text) {
    return ParsePredicate(*db_, v, text);
  }
  EntitySet Eval(ClassId v, const std::string& text) {
    Result<Predicate> p = Parse(v, text);
    EXPECT_TRUE(p.ok()) << p.status().ToString() << " for: " << text;
    if (!p.ok()) return {};
    return Evaluator(*db_).EvaluateSubclass(*p, v);
  }

  std::unique_ptr<Workspace> ws_;
  sdm::Database* db_ = nullptr;
  ClassId musicians_, instruments_, music_groups_, families_;
};

TEST_F(ParserTest, SingleAtomSelection) {
  EntitySet percussion =
      Eval(instruments_, "e.family = {percussion}");
  EXPECT_EQ(percussion.size(), 3u);
  EXPECT_EQ(Eval(music_groups_, "e.size > {3}").size(), 3u);
}

TEST_F(ParserTest, ThePaperQuartetsPredicate) {
  Result<Predicate> p = Parse(
      music_groups_, "e.size = {4} and e.members.plays ]= {piano}");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->form, NormalForm::kConjunctive);
  EXPECT_EQ(p->clauses.size(), 2u);
  EntitySet quartets = Evaluator(*db_).EvaluateSubclass(*p, music_groups_);
  ASSERT_EQ(quartets.size(), 1u);
  EXPECT_EQ(db_->NameOf(*quartets.begin()), "LaBelle Quartet");
  // And it round-trips through the worksheet's display form.
  EXPECT_EQ(PredicateToString(*db_, *p),
            "(e.size = {4}) and (e.members.plays ]= {piano})");
}

TEST_F(ParserTest, DisjunctionYieldsDnf) {
  Result<Predicate> p =
      Parse(music_groups_, "e.size = {2} or e.size = {5}");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->form, NormalForm::kDisjunctive);
  EXPECT_EQ(Evaluator(*db_).EvaluateSubclass(*p, music_groups_).size(), 2u);
}

TEST_F(ParserTest, ParenthesizedCnfOfOrs) {
  // (size=2 or size=5) and members.plays ~ {guitar}.
  EntitySet answer = Eval(
      music_groups_,
      "(e.size = {2} or e.size = {5}) and (e.members.plays ~ {guitar})");
  ASSERT_EQ(answer.size(), 1u);  // Woodwind Quintet (Vera's guitar)
  EXPECT_EQ(db_->NameOf(*answer.begin()), "Woodwind Quintet");
}

TEST_F(ParserTest, NegationAndWeakMatch) {
  EntitySet non_string_players = Eval(
      musicians_, "e.plays.family not~ {stringed}");
  EXPECT_EQ(non_string_players.size(), 7u);  // 11 - 4 string players
}

TEST_F(ParserTest, MultiNameConstantsAndSpaces) {
  EntitySet groups = Eval(
      music_groups_, "e.members ~ {Edith, Mark}");
  EXPECT_EQ(groups.size(), 2u);  // LaBelle Quartet, String Quartet West
  // Entity names with spaces work inside braces.
  EntitySet exact = Eval(
      music_groups_,
      "e.name = {LaBelle Quartet}");
  ASSERT_EQ(exact.size(), 1u);
}

TEST_F(ParserTest, ClassExtentTerm) {
  ClassId play_strings = *db_->schema().FindClass("play_strings");
  (void)play_strings;
  EntitySet all_string_groups = Eval(
      music_groups_, "e.members [= play_strings");
  EXPECT_EQ(all_string_groups.size(), 1u);  // String Quartet West
}

TEST_F(ParserTest, DescendantStepResolves) {
  // in_group lives on play_strings, a descendant of musicians.
  EntitySet in_groups = Eval(musicians_, "e.in_group = {YES}");
  EXPECT_EQ(in_groups.size(), 4u);
}

TEST_F(ParserTest, SelfTermsForDerivations) {
  const Schema& s = db_->schema();
  AttributeId plays = *s.FindAttribute(musicians_, "plays");
  (void)plays;
  Result<Predicate> p = ParsePredicate(
      *db_, musicians_, musicians_, "e.plays ~ x.plays");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EntitySet edith_mates = Evaluator(*db_).EvaluateAttributeFor(
      *p, musicians_, *db_->FindEntity(musicians_, "Edith"));
  EXPECT_TRUE(edith_mates.count(*db_->FindEntity(musicians_, "Lucy")) > 0);
  // Without a self class, `x` is rejected.
  EXPECT_TRUE(
      ParsePredicate(*db_, musicians_, "e.plays ~ x.plays").status()
          .IsParseError());
}

TEST_F(ParserTest, AllOperatorsParse) {
  for (const char* expr : {
           "e.plays = {viola}", "e.plays [= {viola, violin}",
           "e.plays ]= {viola}", "e.plays [ {viola, violin, cello}",
           "e.plays ] {viola}", "e.plays ~ {viola}",
           "e.union not= {YES}",
       }) {
    EXPECT_TRUE(Parse(musicians_, expr).ok()) << expr;
  }
  EXPECT_TRUE(Parse(music_groups_, "e.size <= {3}").ok());
  EXPECT_TRUE(Parse(music_groups_, "e.size > {3}").ok());
}

TEST_F(ParserTest, ErrorsAreCleanAndPositioned) {
  EXPECT_TRUE(Parse(musicians_, "").status().IsParseError());
  EXPECT_TRUE(Parse(musicians_, "e.plays").status().IsParseError());
  EXPECT_TRUE(Parse(musicians_, "e.nosuch = {4}").status().IsParseError());
  EXPECT_TRUE(Parse(musicians_, "{piano} = e.plays").status().IsParseError());
  EXPECT_TRUE(
      Parse(musicians_, "e.plays ~ {ghost_instrument}").status().IsNotFound());
  EXPECT_TRUE(Parse(musicians_, "e.plays ~ {viola} banana")
                  .status()
                  .IsParseError());
  // Mixed connectives without parentheses.
  EXPECT_TRUE(Parse(music_groups_,
                    "e.size = {2} and e.size = {3} or e.size = {4}")
                  .status()
                  .IsParseError());
  // Type errors surface from the commit-time check.
  EXPECT_TRUE(
      Parse(music_groups_, "e.size = {LaBelle Quartet}").status().ok() ==
      false);
}

TEST_F(ParserTest, ParseTermForDerivations) {
  Result<Term> t =
      ParseTerm(*db_, instruments_, music_groups_, "x.members.plays");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->origin, Operand::kSelf);
  EXPECT_EQ(t->path.size(), 2u);
  EXPECT_EQ(TermToString(*db_, *t), "x.members.plays");
  EXPECT_TRUE(
      ParseTerm(*db_, instruments_, std::nullopt, "x.members").status()
          .IsParseError());
  EXPECT_TRUE(ParseTerm(*db_, instruments_, std::nullopt, "e.family extra")
                  .status()
                  .IsParseError());
}

TEST_F(ParserTest, ParsedPredicatesDefineDerivedClasses) {
  // End to end: the parsed text drives the same Workspace machinery.
  ClassId quartets = *db_->CreateSubclass("quartets_text", music_groups_,
                                          sdm::Membership::kEnumerated);
  Result<Predicate> p = Parse(
      music_groups_, "e.size = {4} and e.members.plays ]= {piano}");
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(ws_->DefineSubclassMembership(quartets, *p).ok());
  EXPECT_EQ(db_->Members(quartets).size(), 1u);
}

}  // namespace
}  // namespace isis::query
