/// \file wal_test.cpp
/// \brief Tests for the write-ahead log framing and the atomic-write /
/// fault-injection layer underneath it: round-trips, torn-tail truncation
/// and repair, mid-log corruption rejection, and the old-state-or-new-state
/// guarantee of AtomicWriteFile under injected crashes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "store/file.h"
#include "store/wal.h"

namespace isis::store {
namespace {

std::string TestPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  (void)FileEnv::Default()->Remove(path);
  return path;
}

std::string MustRead(const std::string& path) {
  Result<std::string> data = FileEnv::Default()->ReadFile(path);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return data.ok() ? *data : "";
}

void AppendRaw(const std::string& path, std::string_view bytes) {
  auto f = FileEnv::Default()->OpenForWrite(path, /*append=*/true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Write(bytes).ok());
  ASSERT_TRUE((*f)->Close().ok());
}

TEST(WalTest, RoundTripsAwkwardPayloads) {
  std::string path = TestPath("wal_roundtrip.wal");
  std::vector<WalRecord> initial = {
      {"base", "ISIS|2\nname|demo\n"},
      {"note", "create subclass|brass"},
  };
  auto w = WalWriter::CreateWithRecords(path, FileEnv::Default(), initial);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  // Payloads with pipes, newlines and nothing at all: the length prefix,
  // not any delimiter, bounds them.
  ASSERT_TRUE((*w)->Append("event", "type a|b\\c").ok());
  ASSERT_TRUE((*w)->Append("event", "multi\nline\npayload").ok());
  ASSERT_TRUE((*w)->Append("note", "").ok());

  auto contents = ReadWal(path, FileEnv::Default());
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_FALSE(contents->truncated_tail);
  ASSERT_EQ(contents->records.size(), 5u);
  EXPECT_EQ(contents->records[0].type, "base");
  EXPECT_EQ(contents->records[0].payload, "ISIS|2\nname|demo\n");
  EXPECT_EQ(contents->records[3].payload, "multi\nline\npayload");
  EXPECT_EQ(contents->records[4].payload, "");
}

TEST(WalTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadWal(::testing::TempDir() + "/no_such.wal",
                      FileEnv::Default())
                  .status()
                  .IsIOError());
}

TEST(WalTest, EmptyAndPartialHeaderAreTornCreations) {
  std::string path = TestPath("wal_torn_header.wal");
  AppendRaw(path, "");
  auto empty = ReadWal(path, FileEnv::Default());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->truncated_tail);
  EXPECT_TRUE(empty->records.empty());

  AppendRaw(path, "ISISW");
  auto partial = ReadWal(path, FileEnv::Default());
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial->truncated_tail);
}

TEST(WalTest, WrongMagicRejected) {
  std::string path = TestPath("wal_bad_magic.wal");
  AppendRaw(path, "NOTAWAL|1\n");
  EXPECT_TRUE(ReadWal(path, FileEnv::Default()).status().IsParseError());
}

class TornTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs the cases as concurrent processes.
    path_ = TestPath(
        std::string("wal_torn_tail_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".wal");
    auto w = WalWriter::CreateWithRecords(
        path_, FileEnv::Default(),
        {{"base", "alpha"}, {"event", "bravo"}});
    ASSERT_TRUE(w.ok()) << w.status().ToString();
  }
  std::string path_;
};

TEST_F(TornTailTest, TornRecordHeaderTruncated) {
  AppendRaw(path_, "R|42|0011");
  auto contents = ReadWal(path_, FileEnv::Default());
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->truncated_tail);
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->records[1].payload, "bravo");
}

TEST_F(TornTailTest, TornPayloadTruncatedAndRepaired) {
  // A frame announcing 40 payload bytes of which only a few made it.
  AppendRaw(path_, "R|40|00000000|event\nonly a bit");
  auto contents = ReadWal(path_, FileEnv::Default());
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->truncated_tail);
  ASSERT_EQ(contents->records.size(), 2u);

  // Repair: rewrite from the intact prefix, then appending works again.
  auto w = WalWriter::CreateWithRecords(path_, FileEnv::Default(),
                                        contents->records);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  ASSERT_TRUE((*w)->Append("event", "charlie").ok());
  auto repaired = ReadWal(path_, FileEnv::Default());
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->truncated_tail);
  ASSERT_EQ(repaired->records.size(), 3u);
  EXPECT_EQ(repaired->records[2].payload, "charlie");
}

TEST_F(TornTailTest, MidLogCorruptionRejectedWithRecordIndex) {
  std::string data = MustRead(path_);
  size_t pos = data.find("bravo");
  ASSERT_NE(pos, std::string::npos);
  data[pos] = 'B';
  (void)FileEnv::Default()->Remove(path_);
  AppendRaw(path_, data);
  Status st = ReadWal(path_, FileEnv::Default()).status();
  ASSERT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("record 1"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("checksum mismatch"), std::string::npos)
      << st.ToString();
}

TEST_F(TornTailTest, MalformedHeaderWithDataAfterItRejected) {
  // Garbage that is *followed* by a newline is not a torn tail — it is
  // corruption and must not be silently dropped.
  AppendRaw(path_, "garbage line\nR|1|00000000|x\ny\n");
  EXPECT_TRUE(ReadWal(path_, FileEnv::Default()).status().IsParseError());
}

TEST_F(TornTailTest, BadLengthFieldRejected) {
  AppendRaw(path_, "R|notanumber|00000000|event\nzz\n");
  EXPECT_TRUE(ReadWal(path_, FileEnv::Default()).status().IsParseError());
}

TEST_F(TornTailTest, PayloadOverrunRejected) {
  // Length says 2 but the payload's closing newline is not where it
  // should be: the frame lies about its own extent.
  AppendRaw(path_, "R|2|00000000|event\nzzzz\n");
  EXPECT_TRUE(ReadWal(path_, FileEnv::Default()).status().IsParseError());
}

// --- AtomicWriteFile under injected crashes. ---

class AtomicWriteFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("atomic_fault.txt");
    (void)FileEnv::Default()->Remove(path_ + ".tmp");
    ASSERT_TRUE(AtomicWriteFile(FileEnv::Default(), path_, kOld).ok());
  }

  static constexpr std::string_view kOld = "old contents\n";
  static constexpr std::string_view kNew =
      "new contents, rather longer than the old ones\n";
  std::string path_;
};

TEST_F(AtomicWriteFaultTest, EveryFaultPointLeavesOldOrNew) {
  // Plan run: count the fault points of one atomic overwrite.
  FaultInjectingEnv plan_env{FaultPlan{}};
  ASSERT_TRUE(AtomicWriteFile(&plan_env, path_, kNew).ok());
  EXPECT_EQ(MustRead(path_), kNew);
  ASSERT_TRUE(AtomicWriteFile(FileEnv::Default(), path_, kOld).ok());

  struct Case {
    FaultPlan plan;
    const char* what;
  };
  std::vector<Case> cases;
  for (int i = 0; i < plan_env.opens(); ++i) {
    cases.push_back({FaultPlan{.fail_open = i}, "open"});
  }
  for (int i = 0; i < plan_env.writes(); ++i) {
    for (long prefix : {0L, 5L, 1000L}) {
      cases.push_back(
          {FaultPlan{.fail_write = i, .persist_prefix = prefix}, "write"});
    }
  }
  for (int i = 0; i < plan_env.syncs(); ++i) {
    cases.push_back({FaultPlan{.fail_sync = i, .persist_prefix = 7},
                     "fsync"});
  }
  for (int i = 0; i < plan_env.renames(); ++i) {
    cases.push_back({FaultPlan{.fail_rename = i}, "rename"});
  }
  cases.push_back({FaultPlan{.fail_write = 0, .enospc = true}, "enospc"});
  ASSERT_GT(cases.size(), 4u);

  for (const Case& c : cases) {
    FaultInjectingEnv env{c.plan};
    Status st = AtomicWriteFile(&env, path_, kNew);
    EXPECT_FALSE(st.ok()) << c.what;
    EXPECT_TRUE(env.crashed()) << c.what;
    // The crash invariant: the published file is byte-identical to the
    // old contents — never empty, torn, or mixed.
    EXPECT_EQ(MustRead(path_), kOld) << c.what << ": " << st.ToString();
  }

  // ENOSPC faults say so.
  FaultInjectingEnv env{FaultPlan{.fail_write = 0, .enospc = true}};
  Status st = AtomicWriteFile(&env, path_, kNew);
  EXPECT_NE(st.message().find("no space left"), std::string::npos)
      << st.ToString();

  // And a clean retry after the crash publishes the new contents.
  ASSERT_TRUE(AtomicWriteFile(FileEnv::Default(), path_, kNew).ok());
  EXPECT_EQ(MustRead(path_), kNew);
}

TEST(WalFaultTest, FaultedAppendNeverCorruptsTheLog) {
  std::string path = TestPath("wal_fault_append.wal");
  auto seed = WalWriter::CreateWithRecords(path, FileEnv::Default(),
                                           {{"base", "alpha"}});
  ASSERT_TRUE(seed.ok());
  ASSERT_TRUE((*seed)->Append("event", "bravo").ok());
  seed->reset();

  // Crash the append at every write/sync point, with and without a torn
  // prefix reaching the disk.
  for (int fail_write : {0, -1}) {
    for (long prefix : {0L, 1L, 9L, 26L}) {
      // Restore the two-record log.
      auto w = WalWriter::CreateWithRecords(
          path, FileEnv::Default(), {{"base", "alpha"}, {"event", "bravo"}});
      ASSERT_TRUE(w.ok());
      w->reset();
      FaultPlan plan;
      plan.fail_write = fail_write;
      plan.fail_sync = fail_write == -1 ? 0 : -1;
      plan.persist_prefix = prefix;
      FaultInjectingEnv env{plan};
      auto a = WalWriter::OpenForAppend(path, &env);
      ASSERT_TRUE(a.ok());
      EXPECT_FALSE((*a)->Append("event", "charlie").ok());
      a->reset();

      // Whatever prefix of the frame hit the disk, the log reads back as
      // the intact records, at worst flagged for torn-tail repair.
      auto contents = ReadWal(path, FileEnv::Default());
      ASSERT_TRUE(contents.ok()) << contents.status().ToString();
      ASSERT_GE(contents->records.size(), 2u);
      EXPECT_EQ(contents->records[0].payload, "alpha");
      EXPECT_EQ(contents->records[1].payload, "bravo");
      EXPECT_EQ(contents->records.size(), 2u);
    }
  }
}

}  // namespace
}  // namespace isis::store
