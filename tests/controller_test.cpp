/// \file controller_test.cpp
/// \brief Unit tests for the session controller: command semantics, error
/// handling, prompts, undo/redo, and the Diagram 1 state machine including
/// temporary visits.

#include <gtest/gtest.h>

#include <fstream>

#include "datasets/instrumental_music.h"
#include "sdm/consistency.h"
#include "ui/controller.h"

namespace isis::ui {
namespace {

using datasets::BuildInstrumentalMusic;

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : session_(BuildInstrumentalMusic()) {}

  Status Run(const std::string& script) { return session_.RunScript(script); }
  const sdm::Database& db() { return session_.workspace().db(); }

  SessionController session_;
};

TEST_F(ControllerTest, StartsAtForestWithNoSelection) {
  EXPECT_EQ(session_.state().level, Level::kInheritanceForest);
  EXPECT_EQ(session_.state().selection.kind, SchemaSelection::Kind::kNone);
  EXPECT_FALSE(session_.stopped());
}

TEST_F(ControllerTest, UnknownCommandAndTargetFailSoftly) {
  EXPECT_TRUE(Run("cmd do the thing\n").IsNotFound());
  EXPECT_NE(session_.message().find("unknown command"), std::string::npos);
  EXPECT_TRUE(Run("pick class:atlantis\n").IsNotFound());
  // The session keeps running after errors.
  EXPECT_TRUE(Run("pick class:musicians\n").ok());
}

TEST_F(ControllerTest, PickAtEmptySpaceFails) {
  EXPECT_TRUE(Run("pickat 0 20\n").IsNotFound());
}

TEST_F(ControllerTest, ViewContentsRequiresSelection) {
  EXPECT_TRUE(Run("cmd view contents\n").IsInvalidArgument());
  EXPECT_TRUE(Run("cmd view associations\n").IsInvalidArgument());
}

TEST_F(ControllerTest, NetworkPopReturnsToForestKeepingSelection) {
  ASSERT_TRUE(Run("pick class:musicians\ncmd view associations\n").ok());
  EXPECT_EQ(session_.state().level, Level::kSemanticNetwork);
  ASSERT_TRUE(Run("cmd pop\n").ok());
  EXPECT_EQ(session_.state().level, Level::kInheritanceForest);
  EXPECT_EQ(db().schema().GetClass(session_.state().selection.cls).name,
            "musicians");
}

TEST_F(ControllerTest, DataLevelPopWalksPagesThenLeaves) {
  ASSERT_TRUE(Run("pick class:instruments\n"
                  "cmd view contents\n"
                  "pick member:flute\n"
                  "cmd follow\n"
                  "pick attr:family\n")
                  .ok());
  EXPECT_EQ(session_.state().pages.size(), 2u);
  ASSERT_TRUE(Run("cmd pop\n").ok());
  EXPECT_EQ(session_.state().pages.size(), 1u);
  // The follow marker was cleared on pop.
  EXPECT_FALSE(session_.state().pages[0].followed.valid());
  ASSERT_TRUE(Run("cmd pop\n").ok());
  EXPECT_EQ(session_.state().level, Level::kInheritanceForest);
}

TEST_F(ControllerTest, SelectRejectToggles) {
  ASSERT_TRUE(Run("pick class:instruments\ncmd view contents\n").ok());
  ASSERT_TRUE(Run("pick member:flute\n").ok());
  EXPECT_EQ(session_.state().pages[0].selected.size(), 1u);
  ASSERT_TRUE(Run("pick member:flute\n").ok());  // reject
  EXPECT_TRUE(session_.state().pages[0].selected.empty());
}

TEST_F(ControllerTest, RenameFlow) {
  ASSERT_TRUE(Run("pick class:soloists\ncmd (re)name\ntype stars\n").ok());
  EXPECT_TRUE(db().schema().FindClass("stars").ok());
  EXPECT_FALSE(db().schema().FindClass("soloists").ok());
  // Undo restores the old name.
  ASSERT_TRUE(Run("cmd undo\n").ok());
  EXPECT_TRUE(db().schema().FindClass("soloists").ok());
  ASSERT_TRUE(Run("cmd redo\n").ok());
  EXPECT_TRUE(db().schema().FindClass("stars").ok());
}

TEST_F(ControllerTest, TextWithoutPromptFails) {
  EXPECT_TRUE(Run("type hello\n").IsInvalidArgument());
}

TEST_F(ControllerTest, CreateAttributeThenSpecifyValueClass) {
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd create attribute\n"
                  "type motto\n")
                  .ok());
  EXPECT_EQ(session_.state().selection.kind,
            SchemaSelection::Kind::kAttribute);
  const sdm::Schema& s = db().schema();
  AttributeId motto =
      *s.FindAttribute(*s.FindClass("music_groups"), "motto");
  EXPECT_EQ(s.GetAttribute(motto).value_class, sdm::Schema::kStrings());
  ASSERT_TRUE(Run("cmd (re)specify value class\npick class:families\n").ok());
  EXPECT_EQ(s.GetAttribute(motto).value_class, *s.FindClass("families"));
}

TEST_F(ControllerTest, CreateGroupingFromAttributeSelection) {
  ASSERT_TRUE(Run("pick class:instruments\n"
                  "pick attr:popular\n"
                  "cmd create grouping\n"
                  "type by_popularity\n")
                  .ok());
  Result<GroupingId> g = db().schema().FindGrouping("by_popularity");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(db().schema().GetGrouping(*g).parent,
            *db().schema().FindClass("instruments"));
  EXPECT_EQ(session_.state().selection.kind,
            SchemaSelection::Kind::kGrouping);
  // Its contents are immediately browsable.
  ASSERT_TRUE(Run("cmd view contents\n").ok());
  EXPECT_TRUE(session_.state().pages[0].is_grouping);
}

TEST_F(ControllerTest, DeleteGuardsSurfaceInTheUi) {
  // musicians is a value class: deletion must fail and say so.
  ASSERT_TRUE(Run("pick class:musicians\n").ok());
  EXPECT_TRUE(Run("cmd delete\n").IsConsistency());
  EXPECT_TRUE(db().schema().FindClass("musicians").ok());
  // soloists is deletable.
  ASSERT_TRUE(Run("pick class:soloists\ncmd delete\n").ok());
  EXPECT_FALSE(db().schema().FindClass("soloists").ok());
  EXPECT_EQ(session_.state().selection.kind, SchemaSelection::Kind::kNone);
  // Undo brings it back, members included.
  ASSERT_TRUE(Run("cmd undo\n").ok());
  ASSERT_TRUE(db().schema().FindClass("soloists").ok());
  EXPECT_EQ(db().Members(*db().schema().FindClass("soloists")).size(), 3u);
}

TEST_F(ControllerTest, FailedDeleteDoesNotPolluteUndo) {
  size_t depth = session_.undo_depth();
  ASSERT_TRUE(Run("pick class:musicians\n").ok());
  EXPECT_TRUE(Run("cmd delete\n").IsConsistency());
  EXPECT_EQ(session_.undo_depth(), depth);
}

TEST_F(ControllerTest, UndoNothingFails) {
  EXPECT_TRUE(Run("cmd undo\n").IsInvalidArgument());
  EXPECT_TRUE(Run("cmd redo\n").IsInvalidArgument());
}

TEST_F(ControllerTest, UndoRestoresDataEdits) {
  ASSERT_TRUE(Run("pick class:instruments\n"
                  "cmd view contents\n"
                  "pick member:flute\n"
                  "cmd follow\n"
                  "pick attr:family\n"
                  "pick member:brass\n"
                  "pick member:woodwind\n"
                  "cmd (re)assign att. value\n")
                  .ok());
  const sdm::Schema& s = db().schema();
  ClassId instruments = *s.FindClass("instruments");
  AttributeId family = *s.FindAttribute(instruments, "family");
  EntityId flute = *db().FindEntity(instruments, "flute");
  EXPECT_EQ(db().NameOf(db().GetSingle(flute, family)), "woodwind");
  ASSERT_TRUE(Run("cmd undo\n").ok());
  EXPECT_EQ(db().NameOf(db().GetSingle(flute, family)), "brass");
  EXPECT_TRUE(sdm::ConsistencyChecker(db()).Check().ok());
}

TEST_F(ControllerTest, AssignRequiresSingleValueForSingleValued) {
  ASSERT_TRUE(Run("pick class:instruments\n"
                  "cmd view contents\n"
                  "pick member:flute\n"
                  "cmd follow\n"
                  "pick attr:family\n"
                  "pick member:woodwind\n")  // brass AND woodwind selected
                  .ok());
  EXPECT_TRUE(Run("cmd (re)assign att. value\n").IsInvalidArgument());
}

TEST_F(ControllerTest, AssignMultivaluedTakesWholeSelection) {
  ASSERT_TRUE(Run("pick class:musicians\n"
                  "cmd view contents\n"
                  "pick member:Ray\n"
                  "cmd follow\n"
                  "pick attr:plays\n"
                  "pick member:trumpet\n"  // trumpet was highlighted: reject
                  "pick member:flute\n"
                  "pick member:oboe\n"
                  "cmd (re)assign att. value\n")
                  .ok());
  const sdm::Schema& s = db().schema();
  ClassId musicians = *s.FindClass("musicians");
  EntityId ray = *db().FindEntity(musicians, "Ray");
  AttributeId plays = *s.FindAttribute(musicians, "plays");
  EXPECT_EQ(db().GetMulti(ray, plays).size(), 2u);  // flute, oboe
  EXPECT_TRUE(sdm::ConsistencyChecker(db()).Check().ok());
}

TEST_F(ControllerTest, CreateAndDeleteEntities) {
  ASSERT_TRUE(Run("pick class:families\n"
                  "cmd view contents\n"
                  "cmd create entity\n"
                  "type electronic\n")
                  .ok());
  ClassId families = *db().schema().FindClass("families");
  EXPECT_TRUE(db().FindEntity(families, "electronic").ok());
  // The new entity is auto-selected; delete it again.
  ASSERT_TRUE(Run("cmd delete entity\n").ok());
  EXPECT_FALSE(db().FindEntity(families, "electronic").ok());
  ASSERT_TRUE(Run("cmd undo\n").ok());
  EXPECT_TRUE(db().FindEntity(families, "electronic").ok());
}

TEST_F(ControllerTest, CreateEntityInSubclassPageJoinsBothClasses) {
  ASSERT_TRUE(Run("pick class:soloists\n"
                  "cmd view contents\n"
                  "cmd create entity\n"
                  "type Nina\n")
                  .ok());
  ClassId musicians = *db().schema().FindClass("musicians");
  ClassId soloists = *db().schema().FindClass("soloists");
  EntityId nina = *db().FindEntity(musicians, "Nina");
  EXPECT_TRUE(db().IsMember(nina, soloists));
  EXPECT_TRUE(db().IsMember(nina, musicians));
}

TEST_F(ControllerTest, MembersPanClamps) {
  ASSERT_TRUE(Run("pick class:instruments\ncmd view contents\n").ok());
  EXPECT_TRUE(Run("cmd members up\n").ok());  // clamped at 0
  EXPECT_EQ(session_.state().pages[0].member_pan, 0);
  EXPECT_TRUE(Run("cmd members down\n").ok());
  EXPECT_EQ(session_.state().pages[0].member_pan, 10);
}

TEST_F(ControllerTest, DisplayPredicateForGrouping) {
  ASSERT_TRUE(Run("pick grouping:by_family\ncmd display predicate\n").ok());
  EXPECT_NE(session_.message().find("grouped by common value"),
            std::string::npos);
  EXPECT_NE(session_.message().find("family"), std::string::npos);
}

TEST_F(ControllerTest, DisplayPredicateForDerivedClass) {
  ASSERT_TRUE(Run("pick class:play_strings\ncmd display predicate\n").ok());
  EXPECT_NE(session_.message().find("e.plays.family ~ {stringed}"),
            std::string::npos);
}

TEST_F(ControllerTest, TemporaryConstantVisitPreservesSelections) {
  // Diagram 1: "neither the schema selection nor the data selection are
  // changed upon returning from the temporary visit".
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd create subclass\n"
                  "type trios\n"
                  "cmd (re)define membership\n"
                  "pick atom:A\n"
                  "pick clause:1\n"
                  "cmd edit\n"
                  "pick attr:size\n"
                  "pick op:=\n"
                  "cmd rhs constant\n")
                  .ok());
  EXPECT_EQ(session_.state().level, Level::kDataLevel);
  EXPECT_EQ(session_.state().temp_visit, TempVisit::kConstantSelection);
  ASSERT_TRUE(Run("pick member:3\ncmd accept constant\n").ok());
  EXPECT_EQ(session_.state().level, Level::kPredicateWorksheet);
  EXPECT_EQ(session_.state().temp_visit, TempVisit::kNone);
  // The selection survived the round trip.
  EXPECT_EQ(db().schema().GetClass(session_.state().selection.cls).name,
            "trios");
  ASSERT_TRUE(Run("cmd commit\n").ok());
  ClassId trios = *db().schema().FindClass("trios");
  EXPECT_EQ(db().Members(trios).size(), 1u);  // Brass Trio
}

TEST_F(ControllerTest, AbortLeavesConstantSelection) {
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd create subclass\n"
                  "type temp_class\n"
                  "cmd (re)define membership\n"
                  "pick atom:A\n"
                  "cmd edit\n"
                  "pick attr:size\n"
                  "cmd rhs constant\n")
                  .ok());
  EXPECT_EQ(session_.state().temp_visit, TempVisit::kConstantSelection);
  ASSERT_TRUE(Run("cmd abort\n").ok());
  EXPECT_EQ(session_.state().temp_visit, TempVisit::kNone);
  EXPECT_EQ(session_.state().level, Level::kPredicateWorksheet);
  // Abort again leaves the worksheet entirely.
  ASSERT_TRUE(Run("cmd abort\n").ok());
  EXPECT_EQ(session_.state().level, Level::kInheritanceForest);
}

TEST_F(ControllerTest, CommitRejectsIllTypedWorksheet) {
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd create subclass\n"
                  "type broken\n"
                  "cmd (re)define membership\n"
                  "pick atom:A\n"
                  "pick clause:1\n"
                  "cmd edit\n"
                  "pick attr:size\n"
                  "pick op:~\n")
                  .ok());
  // rhs is still `e` (music_groups tree) while lhs ends in INTEGER.
  EXPECT_TRUE(Run("cmd commit\n").IsTypeError());
  EXPECT_EQ(session_.state().level, Level::kPredicateWorksheet);
}

TEST_F(ControllerTest, WorksheetNegateAndSwitch) {
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd create subclass\n"
                  "type not_quartets\n"
                  "cmd (re)define membership\n"
                  "pick atom:A\n"
                  "pick clause:1\n"
                  "cmd edit\n"
                  "pick attr:size\n"
                  "pick op:=\n"
                  "cmd negate\n"
                  "cmd rhs constant\n"
                  "pick member:4\n"
                  "cmd accept constant\n"
                  "cmd commit\n")
                  .ok());
  ClassId cls = *db().schema().FindClass("not_quartets");
  EXPECT_EQ(db().Members(cls).size(), 3u);  // everything but the quartets
}

TEST_F(ControllerTest, StopEndsTheSession) {
  ASSERT_TRUE(Run("cmd stop\n").ok());
  EXPECT_TRUE(session_.stopped());
  EXPECT_TRUE(Run("pick class:musicians\n").IsInvalidArgument());
}

TEST_F(ControllerTest, PanCommands) {
  ASSERT_TRUE(Run("cmd pan right\ncmd pan down\n").ok());
  EXPECT_EQ(session_.state().pan_x, 8);
  EXPECT_EQ(session_.state().pan_y, 4);
  ASSERT_TRUE(Run("cmd pan left\ncmd pan up\n").ok());
  EXPECT_EQ(session_.state().pan_x, 0);
  EXPECT_EQ(session_.state().pan_y, 0);
}

TEST_F(ControllerTest, QualifiedAttributePicks) {
  // Several classes define an attribute named `name`; the qualified form
  // disambiguates.
  ASSERT_TRUE(Run("pick attr:instruments.name\n").ok());
  EXPECT_EQ(session_.state().selection.kind,
            SchemaSelection::Kind::kAttribute);
  EXPECT_EQ(db()
                .schema()
                .GetAttribute(session_.state().selection.attribute)
                .owner,
            *db().schema().FindClass("instruments"));
}

TEST_F(ControllerTest, SaveWritesAFile) {
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(Run("cmd save\ntype " + dir + "/controller_save\n").ok());
  std::ifstream in(dir + "/controller_save.isis");
  EXPECT_TRUE(in.good());
}


TEST_F(ControllerTest, AddParentDisabledByDefault) {
  ASSERT_TRUE(Run("pick class:soloists\n").ok());
  EXPECT_TRUE(Run("cmd add parent\n").IsUnimplemented());
}

TEST(MultiParentUiTest, AddParentFlow) {
  sdm::Database::Options opts;
  opts.schema.allow_multiple_parents = true;
  auto ws = std::make_unique<query::Workspace>(opts);
  ws->set_name("Multi");
  ClassId people = *ws->db().CreateBaseclass("people", "name");
  ASSERT_TRUE(ws->db()
                  .CreateSubclass("students", people,
                                  sdm::Membership::kEnumerated)
                  .ok());
  ASSERT_TRUE(ws->db()
                  .CreateSubclass("workers", people,
                                  sdm::Membership::kEnumerated)
                  .ok());
  ASSERT_TRUE(ws->db()
                  .CreateSubclass("working_students", *ws->db()
                                                           .schema()
                                                           .FindClass(
                                                               "students"),
                                  sdm::Membership::kEnumerated)
                  .ok());
  SessionController session(std::move(ws));
  ASSERT_TRUE(session
                  .RunScript("pick class:working_students\n"
                             "cmd add parent\n"
                             "pick class:workers\n")
                  .ok());
  const sdm::Schema& s = session.workspace().db().schema();
  EXPECT_EQ(s.GetClass(*s.FindClass("working_students")).parents.size(), 2u);
  // Recorded in the design journal and undoable.
  EXPECT_FALSE(session.journal().Find("add parent").empty());
  ASSERT_TRUE(session.RunScript("cmd undo\n").ok());
  EXPECT_EQ(session.workspace()
                .db()
                .schema()
                .GetClass(*session.workspace().db().schema().FindClass(
                    "working_students"))
                .parents.size(),
            1u);
  // A cycle is refused through the UI too.
  ASSERT_TRUE(session.RunScript("pick class:students\ncmd add parent\n").ok());
  EXPECT_TRUE(session.RunScript("pick class:students\n").IsConsistency());
}


TEST_F(ControllerTest, CreateBaseclassFlow) {
  // Two-step prompt: class name, then its naming attribute.
  ASSERT_TRUE(Run("cmd create baseclass\n"
                  "type venues\n"
                  "type venue_name\n")
                  .ok());
  Result<ClassId> venues = db().schema().FindClass("venues");
  ASSERT_TRUE(venues.ok());
  const sdm::ClassDef& def = db().schema().GetClass(*venues);
  EXPECT_TRUE(def.is_base());
  ASSERT_EQ(def.own_attributes.size(), 1u);
  EXPECT_EQ(db().schema().GetAttribute(def.own_attributes[0]).name,
            "venue_name");
  EXPECT_TRUE(db().schema().GetAttribute(def.own_attributes[0]).naming);
  // The new class is the selection and is undoable.
  EXPECT_EQ(session_.state().selection.cls, *venues);
  ASSERT_TRUE(Run("cmd undo\n").ok());
  EXPECT_FALSE(db().schema().FindClass("venues").ok());
}

TEST_F(ControllerTest, ValueClassPopupListsPredefinedClasses) {
  // While (re)specify value class is pending, the forest shows the pop-up
  // class list, which includes the otherwise-hidden predefined classes.
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd create attribute\n"
                  "type rating\n"
                  "cmd (re)specify value class\n")
                  .ok());
  const Screen& screen = session_.Render();
  ASSERT_NE(screen.FindTarget("class:INTEGER"), nullptr);
  ASSERT_TRUE(Run("pick class:INTEGER\n").ok());
  const sdm::Schema& s = db().schema();
  AttributeId rating =
      *s.FindAttribute(*s.FindClass("music_groups"), "rating");
  EXPECT_EQ(s.GetAttribute(rating).value_class, sdm::Schema::kIntegers());
  // The pop-up is gone after the pick.
  EXPECT_EQ(session_.Render().FindTarget("class:INTEGER"), nullptr);
}


TEST_F(ControllerTest, SaveThenLoadRoundTripsThroughTheUi) {
  std::string base = ::testing::TempDir() + "/ui_roundtrip";
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd create subclass\n"
                  "type saved_marker\n"
                  "cmd save\ntype " + base + "\n")
                  .ok());
  // Mutate after saving, then load the save back: the mutation is gone,
  // the marker class is present, and the session state reset.
  ASSERT_TRUE(Run("pick class:saved_marker\ncmd delete\n").ok());
  EXPECT_FALSE(db().schema().FindClass("saved_marker").ok());
  ASSERT_TRUE(Run("cmd load\ntype " + base + "\n").ok());
  EXPECT_TRUE(db().schema().FindClass("saved_marker").ok());
  EXPECT_EQ(session_.state().selection.kind, SchemaSelection::Kind::kNone);
  EXPECT_EQ(session_.undo_depth(), 0u);
  // The journal recorded the whole arc.
  EXPECT_FALSE(session_.journal().Find("load").empty());
  // Loading a missing database fails cleanly and keeps the session alive.
  EXPECT_TRUE(Run("cmd load\ntype /nonexistent/nope\n").IsIOError());
  EXPECT_TRUE(Run("pick class:musicians\n").ok());
}


TEST_F(ControllerTest, CommitRejectsEmptyConstantSelection) {
  // Accepting a constant with nothing selected yields an empty constant
  // set; the commit-time type check refuses it (an empty constant with no
  // map has no class).
  ASSERT_TRUE(Run("pick class:music_groups\n"
                  "cmd create subclass\n"
                  "type no_consts\n"
                  "cmd (re)define membership\n"
                  "pick atom:A\n"
                  "pick clause:1\n"
                  "cmd edit\n"
                  "pick attr:size\n"
                  "pick op:=\n"
                  "cmd rhs constant\n"
                  "cmd accept constant\n")
                  .ok());
  EXPECT_FALSE(Run("cmd commit\n").ok());
  EXPECT_EQ(session_.state().level, Level::kPredicateWorksheet);
}

TEST_F(ControllerTest, FollowWithEmptySelectionHighlightsNothing) {
  ASSERT_TRUE(Run("pick class:instruments\n"
                  "cmd view contents\n"
                  "cmd follow\n"
                  "pick attr:family\n")
                  .ok());
  ASSERT_EQ(session_.state().pages.size(), 2u);
  EXPECT_TRUE(session_.state().pages[1].selected.empty());
}

TEST_F(ControllerTest, MakeSubclassOnGroupingPageRejected) {
  ASSERT_TRUE(Run("pick grouping:by_family\ncmd view contents\n").ok());
  EXPECT_TRUE(Run("cmd make subclass\n").IsInvalidArgument());
}

TEST_F(ControllerTest, GroupingFollowWithNoSelectionYieldsEmptyPage) {
  ASSERT_TRUE(Run("pick grouping:by_family\n"
                  "cmd view contents\n"
                  "cmd follow\n")
                  .ok());
  ASSERT_EQ(session_.state().pages.size(), 2u);
  EXPECT_TRUE(session_.state().pages[1].selected.empty());
  EXPECT_EQ(db().schema().GetClass(session_.state().pages[1].cls).name,
            "instruments");
}

TEST_F(ControllerTest, RedoClearedByNewMutation) {
  ASSERT_TRUE(Run("pick class:soloists\ncmd (re)name\ntype stars\n").ok());
  ASSERT_TRUE(Run("cmd undo\n").ok());
  EXPECT_EQ(session_.redo_depth(), 1u);
  ASSERT_TRUE(Run("pick class:soloists\ncmd (re)name\ntype idols\n").ok());
  EXPECT_EQ(session_.redo_depth(), 0u);
  EXPECT_TRUE(Run("cmd redo\n").IsInvalidArgument());
}

// Regression: with the live engine off, a data edit must still refresh the
// stored derived views before the next render (the controller re-runs
// ReevaluateAll itself). Ray gains a stringed instrument and must show up in
// the derived play_strings subclass with no explicit recomputation.
TEST_F(ControllerTest, DataEditsRefreshDerivedViewsWithoutEngine) {
  EXPECT_EQ(session_.live_engine(), nullptr);  // default options: engine off
  ASSERT_TRUE(Run("pick class:musicians\n"
                  "cmd view contents\n"
                  "pick member:Ray\n"
                  "cmd follow\n"
                  "pick attr:plays\n"
                  "pick member:violin\n"
                  "cmd (re)assign att. value\n")
                  .ok());
  const sdm::Schema& s = db().schema();
  ClassId musicians = *s.FindClass("musicians");
  ClassId play_strings = *s.FindClass("play_strings");
  EntityId ray = *db().FindEntity(musicians, "Ray");
  EXPECT_TRUE(db().IsMember(ray, play_strings));
  // And dropping the instrument again removes him.
  ASSERT_TRUE(Run("pick member:violin\n"
                  "cmd (re)assign att. value\n")
                  .ok());
  EXPECT_FALSE(db().IsMember(ray, play_strings));
}

// When the database opted into live views, the controller attaches the
// engine and data edits are maintained by deltas instead of ReevaluateAll.
TEST(ControllerLiveViewsTest, EngineAttachesWhenOptedIn) {
  sdm::Database::Options opt;
  opt.live_views = true;
  SessionController session(std::make_unique<query::Workspace>(opt));
  EXPECT_NE(session.live_engine(), nullptr);
}

}  // namespace
}  // namespace isis::ui
